file(REMOVE_RECURSE
  "librrtcp_app.a"
)
