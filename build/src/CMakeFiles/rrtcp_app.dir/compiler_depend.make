# Empty compiler generated dependencies file for rrtcp_app.
# This may be replaced when dependencies are built.
