file(REMOVE_RECURSE
  "CMakeFiles/rrtcp_app.dir/app/flow_factory.cpp.o"
  "CMakeFiles/rrtcp_app.dir/app/flow_factory.cpp.o.d"
  "CMakeFiles/rrtcp_app.dir/app/ftp.cpp.o"
  "CMakeFiles/rrtcp_app.dir/app/ftp.cpp.o.d"
  "librrtcp_app.a"
  "librrtcp_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrtcp_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
