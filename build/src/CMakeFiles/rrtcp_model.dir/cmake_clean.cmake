file(REMOVE_RECURSE
  "CMakeFiles/rrtcp_model.dir/model/mathis.cpp.o"
  "CMakeFiles/rrtcp_model.dir/model/mathis.cpp.o.d"
  "CMakeFiles/rrtcp_model.dir/model/padhye.cpp.o"
  "CMakeFiles/rrtcp_model.dir/model/padhye.cpp.o.d"
  "librrtcp_model.a"
  "librrtcp_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrtcp_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
