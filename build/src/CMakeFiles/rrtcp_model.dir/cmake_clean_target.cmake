file(REMOVE_RECURSE
  "librrtcp_model.a"
)
