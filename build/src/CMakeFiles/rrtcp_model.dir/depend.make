# Empty dependencies file for rrtcp_model.
# This may be replaced when dependencies are built.
