# Empty dependencies file for rrtcp_core.
# This may be replaced when dependencies are built.
