file(REMOVE_RECURSE
  "CMakeFiles/rrtcp_core.dir/core/rr_sender.cpp.o"
  "CMakeFiles/rrtcp_core.dir/core/rr_sender.cpp.o.d"
  "librrtcp_core.a"
  "librrtcp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrtcp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
