file(REMOVE_RECURSE
  "librrtcp_core.a"
)
