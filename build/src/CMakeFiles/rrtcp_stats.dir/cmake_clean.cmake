file(REMOVE_RECURSE
  "CMakeFiles/rrtcp_stats.dir/stats/table.cpp.o"
  "CMakeFiles/rrtcp_stats.dir/stats/table.cpp.o.d"
  "CMakeFiles/rrtcp_stats.dir/stats/throughput.cpp.o"
  "CMakeFiles/rrtcp_stats.dir/stats/throughput.cpp.o.d"
  "CMakeFiles/rrtcp_stats.dir/stats/tracer.cpp.o"
  "CMakeFiles/rrtcp_stats.dir/stats/tracer.cpp.o.d"
  "librrtcp_stats.a"
  "librrtcp_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrtcp_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
