file(REMOVE_RECURSE
  "librrtcp_stats.a"
)
