# Empty compiler generated dependencies file for rrtcp_stats.
# This may be replaced when dependencies are built.
