
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/table.cpp" "src/CMakeFiles/rrtcp_stats.dir/stats/table.cpp.o" "gcc" "src/CMakeFiles/rrtcp_stats.dir/stats/table.cpp.o.d"
  "/root/repo/src/stats/throughput.cpp" "src/CMakeFiles/rrtcp_stats.dir/stats/throughput.cpp.o" "gcc" "src/CMakeFiles/rrtcp_stats.dir/stats/throughput.cpp.o.d"
  "/root/repo/src/stats/tracer.cpp" "src/CMakeFiles/rrtcp_stats.dir/stats/tracer.cpp.o" "gcc" "src/CMakeFiles/rrtcp_stats.dir/stats/tracer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rrtcp_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrtcp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrtcp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
