file(REMOVE_RECURSE
  "librrtcp_sim.a"
)
