file(REMOVE_RECURSE
  "CMakeFiles/rrtcp_sim.dir/sim/log.cpp.o"
  "CMakeFiles/rrtcp_sim.dir/sim/log.cpp.o.d"
  "CMakeFiles/rrtcp_sim.dir/sim/rng.cpp.o"
  "CMakeFiles/rrtcp_sim.dir/sim/rng.cpp.o.d"
  "CMakeFiles/rrtcp_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/rrtcp_sim.dir/sim/simulator.cpp.o.d"
  "CMakeFiles/rrtcp_sim.dir/sim/timer.cpp.o"
  "CMakeFiles/rrtcp_sim.dir/sim/timer.cpp.o.d"
  "librrtcp_sim.a"
  "librrtcp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrtcp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
