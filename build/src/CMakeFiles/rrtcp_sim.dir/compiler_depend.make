# Empty compiler generated dependencies file for rrtcp_sim.
# This may be replaced when dependencies are built.
