# Empty dependencies file for rrtcp_tcp.
# This may be replaced when dependencies are built.
