
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcp/newreno.cpp" "src/CMakeFiles/rrtcp_tcp.dir/tcp/newreno.cpp.o" "gcc" "src/CMakeFiles/rrtcp_tcp.dir/tcp/newreno.cpp.o.d"
  "/root/repo/src/tcp/receiver.cpp" "src/CMakeFiles/rrtcp_tcp.dir/tcp/receiver.cpp.o" "gcc" "src/CMakeFiles/rrtcp_tcp.dir/tcp/receiver.cpp.o.d"
  "/root/repo/src/tcp/related_work.cpp" "src/CMakeFiles/rrtcp_tcp.dir/tcp/related_work.cpp.o" "gcc" "src/CMakeFiles/rrtcp_tcp.dir/tcp/related_work.cpp.o.d"
  "/root/repo/src/tcp/reno.cpp" "src/CMakeFiles/rrtcp_tcp.dir/tcp/reno.cpp.o" "gcc" "src/CMakeFiles/rrtcp_tcp.dir/tcp/reno.cpp.o.d"
  "/root/repo/src/tcp/rto.cpp" "src/CMakeFiles/rrtcp_tcp.dir/tcp/rto.cpp.o" "gcc" "src/CMakeFiles/rrtcp_tcp.dir/tcp/rto.cpp.o.d"
  "/root/repo/src/tcp/sack.cpp" "src/CMakeFiles/rrtcp_tcp.dir/tcp/sack.cpp.o" "gcc" "src/CMakeFiles/rrtcp_tcp.dir/tcp/sack.cpp.o.d"
  "/root/repo/src/tcp/scoreboard.cpp" "src/CMakeFiles/rrtcp_tcp.dir/tcp/scoreboard.cpp.o" "gcc" "src/CMakeFiles/rrtcp_tcp.dir/tcp/scoreboard.cpp.o.d"
  "/root/repo/src/tcp/sender_base.cpp" "src/CMakeFiles/rrtcp_tcp.dir/tcp/sender_base.cpp.o" "gcc" "src/CMakeFiles/rrtcp_tcp.dir/tcp/sender_base.cpp.o.d"
  "/root/repo/src/tcp/tahoe.cpp" "src/CMakeFiles/rrtcp_tcp.dir/tcp/tahoe.cpp.o" "gcc" "src/CMakeFiles/rrtcp_tcp.dir/tcp/tahoe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rrtcp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrtcp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
