file(REMOVE_RECURSE
  "CMakeFiles/rrtcp_tcp.dir/tcp/newreno.cpp.o"
  "CMakeFiles/rrtcp_tcp.dir/tcp/newreno.cpp.o.d"
  "CMakeFiles/rrtcp_tcp.dir/tcp/receiver.cpp.o"
  "CMakeFiles/rrtcp_tcp.dir/tcp/receiver.cpp.o.d"
  "CMakeFiles/rrtcp_tcp.dir/tcp/related_work.cpp.o"
  "CMakeFiles/rrtcp_tcp.dir/tcp/related_work.cpp.o.d"
  "CMakeFiles/rrtcp_tcp.dir/tcp/reno.cpp.o"
  "CMakeFiles/rrtcp_tcp.dir/tcp/reno.cpp.o.d"
  "CMakeFiles/rrtcp_tcp.dir/tcp/rto.cpp.o"
  "CMakeFiles/rrtcp_tcp.dir/tcp/rto.cpp.o.d"
  "CMakeFiles/rrtcp_tcp.dir/tcp/sack.cpp.o"
  "CMakeFiles/rrtcp_tcp.dir/tcp/sack.cpp.o.d"
  "CMakeFiles/rrtcp_tcp.dir/tcp/scoreboard.cpp.o"
  "CMakeFiles/rrtcp_tcp.dir/tcp/scoreboard.cpp.o.d"
  "CMakeFiles/rrtcp_tcp.dir/tcp/sender_base.cpp.o"
  "CMakeFiles/rrtcp_tcp.dir/tcp/sender_base.cpp.o.d"
  "CMakeFiles/rrtcp_tcp.dir/tcp/tahoe.cpp.o"
  "CMakeFiles/rrtcp_tcp.dir/tcp/tahoe.cpp.o.d"
  "librrtcp_tcp.a"
  "librrtcp_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrtcp_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
