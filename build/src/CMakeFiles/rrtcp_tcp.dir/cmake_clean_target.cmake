file(REMOVE_RECURSE
  "librrtcp_tcp.a"
)
