file(REMOVE_RECURSE
  "CMakeFiles/rrtcp_net.dir/net/drop_tail.cpp.o"
  "CMakeFiles/rrtcp_net.dir/net/drop_tail.cpp.o.d"
  "CMakeFiles/rrtcp_net.dir/net/dumbbell.cpp.o"
  "CMakeFiles/rrtcp_net.dir/net/dumbbell.cpp.o.d"
  "CMakeFiles/rrtcp_net.dir/net/link.cpp.o"
  "CMakeFiles/rrtcp_net.dir/net/link.cpp.o.d"
  "CMakeFiles/rrtcp_net.dir/net/loss_model.cpp.o"
  "CMakeFiles/rrtcp_net.dir/net/loss_model.cpp.o.d"
  "CMakeFiles/rrtcp_net.dir/net/node.cpp.o"
  "CMakeFiles/rrtcp_net.dir/net/node.cpp.o.d"
  "CMakeFiles/rrtcp_net.dir/net/packet.cpp.o"
  "CMakeFiles/rrtcp_net.dir/net/packet.cpp.o.d"
  "CMakeFiles/rrtcp_net.dir/net/red.cpp.o"
  "CMakeFiles/rrtcp_net.dir/net/red.cpp.o.d"
  "CMakeFiles/rrtcp_net.dir/net/reorder.cpp.o"
  "CMakeFiles/rrtcp_net.dir/net/reorder.cpp.o.d"
  "librrtcp_net.a"
  "librrtcp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrtcp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
