# Empty dependencies file for rrtcp_net.
# This may be replaced when dependencies are built.
