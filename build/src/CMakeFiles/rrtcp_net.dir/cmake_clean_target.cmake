file(REMOVE_RECURSE
  "librrtcp_net.a"
)
