
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/drop_tail.cpp" "src/CMakeFiles/rrtcp_net.dir/net/drop_tail.cpp.o" "gcc" "src/CMakeFiles/rrtcp_net.dir/net/drop_tail.cpp.o.d"
  "/root/repo/src/net/dumbbell.cpp" "src/CMakeFiles/rrtcp_net.dir/net/dumbbell.cpp.o" "gcc" "src/CMakeFiles/rrtcp_net.dir/net/dumbbell.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/CMakeFiles/rrtcp_net.dir/net/link.cpp.o" "gcc" "src/CMakeFiles/rrtcp_net.dir/net/link.cpp.o.d"
  "/root/repo/src/net/loss_model.cpp" "src/CMakeFiles/rrtcp_net.dir/net/loss_model.cpp.o" "gcc" "src/CMakeFiles/rrtcp_net.dir/net/loss_model.cpp.o.d"
  "/root/repo/src/net/node.cpp" "src/CMakeFiles/rrtcp_net.dir/net/node.cpp.o" "gcc" "src/CMakeFiles/rrtcp_net.dir/net/node.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/CMakeFiles/rrtcp_net.dir/net/packet.cpp.o" "gcc" "src/CMakeFiles/rrtcp_net.dir/net/packet.cpp.o.d"
  "/root/repo/src/net/red.cpp" "src/CMakeFiles/rrtcp_net.dir/net/red.cpp.o" "gcc" "src/CMakeFiles/rrtcp_net.dir/net/red.cpp.o.d"
  "/root/repo/src/net/reorder.cpp" "src/CMakeFiles/rrtcp_net.dir/net/reorder.cpp.o" "gcc" "src/CMakeFiles/rrtcp_net.dir/net/reorder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rrtcp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
