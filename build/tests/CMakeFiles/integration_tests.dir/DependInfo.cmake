
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/test_end_to_end.cpp" "tests/CMakeFiles/integration_tests.dir/integration/test_end_to_end.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/test_end_to_end.cpp.o.d"
  "/root/repo/tests/integration/test_properties.cpp" "tests/CMakeFiles/integration_tests.dir/integration/test_properties.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/test_properties.cpp.o.d"
  "/root/repo/tests/integration/test_rtt_heterogeneity.cpp" "tests/CMakeFiles/integration_tests.dir/integration/test_rtt_heterogeneity.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/test_rtt_heterogeneity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rrtcp_app.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrtcp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrtcp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrtcp_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrtcp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrtcp_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrtcp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
