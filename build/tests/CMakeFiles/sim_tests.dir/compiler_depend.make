# Empty compiler generated dependencies file for sim_tests.
# This may be replaced when dependencies are built.
