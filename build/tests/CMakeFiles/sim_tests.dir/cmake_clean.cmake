file(REMOVE_RECURSE
  "CMakeFiles/sim_tests.dir/sim/test_rng.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/test_rng.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/test_simulator.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/test_simulator.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/test_time.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/test_time.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/test_timer.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/test_timer.cpp.o.d"
  "sim_tests"
  "sim_tests.pdb"
  "sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
