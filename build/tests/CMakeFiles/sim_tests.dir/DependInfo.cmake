
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_rng.cpp" "tests/CMakeFiles/sim_tests.dir/sim/test_rng.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/test_rng.cpp.o.d"
  "/root/repo/tests/sim/test_simulator.cpp" "tests/CMakeFiles/sim_tests.dir/sim/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/test_simulator.cpp.o.d"
  "/root/repo/tests/sim/test_time.cpp" "tests/CMakeFiles/sim_tests.dir/sim/test_time.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/test_time.cpp.o.d"
  "/root/repo/tests/sim/test_timer.cpp" "tests/CMakeFiles/sim_tests.dir/sim/test_timer.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/test_timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rrtcp_app.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrtcp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrtcp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrtcp_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrtcp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrtcp_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrtcp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
