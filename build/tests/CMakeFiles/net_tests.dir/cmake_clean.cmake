file(REMOVE_RECURSE
  "CMakeFiles/net_tests.dir/net/test_drop_tail.cpp.o"
  "CMakeFiles/net_tests.dir/net/test_drop_tail.cpp.o.d"
  "CMakeFiles/net_tests.dir/net/test_link_node.cpp.o"
  "CMakeFiles/net_tests.dir/net/test_link_node.cpp.o.d"
  "CMakeFiles/net_tests.dir/net/test_loss_model.cpp.o"
  "CMakeFiles/net_tests.dir/net/test_loss_model.cpp.o.d"
  "CMakeFiles/net_tests.dir/net/test_red.cpp.o"
  "CMakeFiles/net_tests.dir/net/test_red.cpp.o.d"
  "net_tests"
  "net_tests.pdb"
  "net_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
