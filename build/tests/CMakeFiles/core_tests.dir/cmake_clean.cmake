file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/test_rr.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_rr.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
