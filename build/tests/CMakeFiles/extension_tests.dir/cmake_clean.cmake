file(REMOVE_RECURSE
  "CMakeFiles/extension_tests.dir/app/test_app.cpp.o"
  "CMakeFiles/extension_tests.dir/app/test_app.cpp.o.d"
  "CMakeFiles/extension_tests.dir/core/test_rr_hardening.cpp.o"
  "CMakeFiles/extension_tests.dir/core/test_rr_hardening.cpp.o.d"
  "CMakeFiles/extension_tests.dir/model/test_models.cpp.o"
  "CMakeFiles/extension_tests.dir/model/test_models.cpp.o.d"
  "CMakeFiles/extension_tests.dir/net/test_ecn_reorder.cpp.o"
  "CMakeFiles/extension_tests.dir/net/test_ecn_reorder.cpp.o.d"
  "CMakeFiles/extension_tests.dir/net/test_segment_loss.cpp.o"
  "CMakeFiles/extension_tests.dir/net/test_segment_loss.cpp.o.d"
  "CMakeFiles/extension_tests.dir/stats/test_stats.cpp.o"
  "CMakeFiles/extension_tests.dir/stats/test_stats.cpp.o.d"
  "CMakeFiles/extension_tests.dir/tcp/test_related_work.cpp.o"
  "CMakeFiles/extension_tests.dir/tcp/test_related_work.cpp.o.d"
  "CMakeFiles/extension_tests.dir/tcp/test_smooth_start.cpp.o"
  "CMakeFiles/extension_tests.dir/tcp/test_smooth_start.cpp.o.d"
  "extension_tests"
  "extension_tests.pdb"
  "extension_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
