
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/app/test_app.cpp" "tests/CMakeFiles/extension_tests.dir/app/test_app.cpp.o" "gcc" "tests/CMakeFiles/extension_tests.dir/app/test_app.cpp.o.d"
  "/root/repo/tests/core/test_rr_hardening.cpp" "tests/CMakeFiles/extension_tests.dir/core/test_rr_hardening.cpp.o" "gcc" "tests/CMakeFiles/extension_tests.dir/core/test_rr_hardening.cpp.o.d"
  "/root/repo/tests/model/test_models.cpp" "tests/CMakeFiles/extension_tests.dir/model/test_models.cpp.o" "gcc" "tests/CMakeFiles/extension_tests.dir/model/test_models.cpp.o.d"
  "/root/repo/tests/net/test_ecn_reorder.cpp" "tests/CMakeFiles/extension_tests.dir/net/test_ecn_reorder.cpp.o" "gcc" "tests/CMakeFiles/extension_tests.dir/net/test_ecn_reorder.cpp.o.d"
  "/root/repo/tests/net/test_segment_loss.cpp" "tests/CMakeFiles/extension_tests.dir/net/test_segment_loss.cpp.o" "gcc" "tests/CMakeFiles/extension_tests.dir/net/test_segment_loss.cpp.o.d"
  "/root/repo/tests/stats/test_stats.cpp" "tests/CMakeFiles/extension_tests.dir/stats/test_stats.cpp.o" "gcc" "tests/CMakeFiles/extension_tests.dir/stats/test_stats.cpp.o.d"
  "/root/repo/tests/tcp/test_related_work.cpp" "tests/CMakeFiles/extension_tests.dir/tcp/test_related_work.cpp.o" "gcc" "tests/CMakeFiles/extension_tests.dir/tcp/test_related_work.cpp.o.d"
  "/root/repo/tests/tcp/test_smooth_start.cpp" "tests/CMakeFiles/extension_tests.dir/tcp/test_smooth_start.cpp.o" "gcc" "tests/CMakeFiles/extension_tests.dir/tcp/test_smooth_start.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rrtcp_app.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrtcp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrtcp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrtcp_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrtcp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrtcp_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrtcp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
