# Empty dependencies file for extension_tests.
# This may be replaced when dependencies are built.
