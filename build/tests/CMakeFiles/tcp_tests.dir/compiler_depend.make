# Empty compiler generated dependencies file for tcp_tests.
# This may be replaced when dependencies are built.
