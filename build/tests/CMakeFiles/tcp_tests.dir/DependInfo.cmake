
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tcp/test_receiver.cpp" "tests/CMakeFiles/tcp_tests.dir/tcp/test_receiver.cpp.o" "gcc" "tests/CMakeFiles/tcp_tests.dir/tcp/test_receiver.cpp.o.d"
  "/root/repo/tests/tcp/test_rto.cpp" "tests/CMakeFiles/tcp_tests.dir/tcp/test_rto.cpp.o" "gcc" "tests/CMakeFiles/tcp_tests.dir/tcp/test_rto.cpp.o.d"
  "/root/repo/tests/tcp/test_sack.cpp" "tests/CMakeFiles/tcp_tests.dir/tcp/test_sack.cpp.o" "gcc" "tests/CMakeFiles/tcp_tests.dir/tcp/test_sack.cpp.o.d"
  "/root/repo/tests/tcp/test_scoreboard.cpp" "tests/CMakeFiles/tcp_tests.dir/tcp/test_scoreboard.cpp.o" "gcc" "tests/CMakeFiles/tcp_tests.dir/tcp/test_scoreboard.cpp.o.d"
  "/root/repo/tests/tcp/test_sender_base.cpp" "tests/CMakeFiles/tcp_tests.dir/tcp/test_sender_base.cpp.o" "gcc" "tests/CMakeFiles/tcp_tests.dir/tcp/test_sender_base.cpp.o.d"
  "/root/repo/tests/tcp/test_seq.cpp" "tests/CMakeFiles/tcp_tests.dir/tcp/test_seq.cpp.o" "gcc" "tests/CMakeFiles/tcp_tests.dir/tcp/test_seq.cpp.o.d"
  "/root/repo/tests/tcp/test_variants.cpp" "tests/CMakeFiles/tcp_tests.dir/tcp/test_variants.cpp.o" "gcc" "tests/CMakeFiles/tcp_tests.dir/tcp/test_variants.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rrtcp_app.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrtcp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrtcp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrtcp_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrtcp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrtcp_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrtcp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
