file(REMOVE_RECURSE
  "CMakeFiles/tcp_tests.dir/tcp/test_receiver.cpp.o"
  "CMakeFiles/tcp_tests.dir/tcp/test_receiver.cpp.o.d"
  "CMakeFiles/tcp_tests.dir/tcp/test_rto.cpp.o"
  "CMakeFiles/tcp_tests.dir/tcp/test_rto.cpp.o.d"
  "CMakeFiles/tcp_tests.dir/tcp/test_sack.cpp.o"
  "CMakeFiles/tcp_tests.dir/tcp/test_sack.cpp.o.d"
  "CMakeFiles/tcp_tests.dir/tcp/test_scoreboard.cpp.o"
  "CMakeFiles/tcp_tests.dir/tcp/test_scoreboard.cpp.o.d"
  "CMakeFiles/tcp_tests.dir/tcp/test_sender_base.cpp.o"
  "CMakeFiles/tcp_tests.dir/tcp/test_sender_base.cpp.o.d"
  "CMakeFiles/tcp_tests.dir/tcp/test_seq.cpp.o"
  "CMakeFiles/tcp_tests.dir/tcp/test_seq.cpp.o.d"
  "CMakeFiles/tcp_tests.dir/tcp/test_variants.cpp.o"
  "CMakeFiles/tcp_tests.dir/tcp/test_variants.cpp.o.d"
  "tcp_tests"
  "tcp_tests.pdb"
  "tcp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
