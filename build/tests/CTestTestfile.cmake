# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_tests[1]_include.cmake")
include("/root/repo/build/tests/net_tests[1]_include.cmake")
include("/root/repo/build/tests/tcp_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
include("/root/repo/build/tests/extension_tests[1]_include.cmake")
