file(REMOVE_RECURSE
  "CMakeFiles/red_dynamics.dir/red_dynamics.cpp.o"
  "CMakeFiles/red_dynamics.dir/red_dynamics.cpp.o.d"
  "red_dynamics"
  "red_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/red_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
