# Empty dependencies file for red_dynamics.
# This may be replaced when dependencies are built.
