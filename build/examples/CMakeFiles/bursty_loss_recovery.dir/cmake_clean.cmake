file(REMOVE_RECURSE
  "CMakeFiles/bursty_loss_recovery.dir/bursty_loss_recovery.cpp.o"
  "CMakeFiles/bursty_loss_recovery.dir/bursty_loss_recovery.cpp.o.d"
  "bursty_loss_recovery"
  "bursty_loss_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bursty_loss_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
