# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bursty_loss_recovery.
