# Empty compiler generated dependencies file for bursty_loss_recovery.
# This may be replaced when dependencies are built.
