file(REMOVE_RECURSE
  "CMakeFiles/rrtcp-sim.dir/rrtcp_sim.cpp.o"
  "CMakeFiles/rrtcp-sim.dir/rrtcp_sim.cpp.o.d"
  "rrtcp-sim"
  "rrtcp-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrtcp-sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
