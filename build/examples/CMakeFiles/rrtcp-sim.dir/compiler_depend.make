# Empty compiler generated dependencies file for rrtcp-sim.
# This may be replaced when dependencies are built.
