file(REMOVE_RECURSE
  "CMakeFiles/fairness_matrix.dir/fairness_matrix.cpp.o"
  "CMakeFiles/fairness_matrix.dir/fairness_matrix.cpp.o.d"
  "fairness_matrix"
  "fairness_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairness_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
