# Empty compiler generated dependencies file for fairness_matrix.
# This may be replaced when dependencies are built.
