# Empty dependencies file for bench_table5_fairness.
# This may be replaced when dependencies are built.
