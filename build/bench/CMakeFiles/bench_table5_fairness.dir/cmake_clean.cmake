file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_fairness.dir/bench_table5_fairness.cpp.o"
  "CMakeFiles/bench_table5_fairness.dir/bench_table5_fairness.cpp.o.d"
  "bench_table5_fairness"
  "bench_table5_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
