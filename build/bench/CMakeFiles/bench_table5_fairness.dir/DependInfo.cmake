
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table5_fairness.cpp" "bench/CMakeFiles/bench_table5_fairness.dir/bench_table5_fairness.cpp.o" "gcc" "bench/CMakeFiles/bench_table5_fairness.dir/bench_table5_fairness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rrtcp_app.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrtcp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrtcp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrtcp_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrtcp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrtcp_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rrtcp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
