# Empty dependencies file for bench_fig7_model.
# This may be replaced when dependencies are built.
