file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_model.dir/bench_fig7_model.cpp.o"
  "CMakeFiles/bench_fig7_model.dir/bench_fig7_model.cpp.o.d"
  "bench_fig7_model"
  "bench_fig7_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
