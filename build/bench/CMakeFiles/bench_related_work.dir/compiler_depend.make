# Empty compiler generated dependencies file for bench_related_work.
# This may be replaced when dependencies are built.
