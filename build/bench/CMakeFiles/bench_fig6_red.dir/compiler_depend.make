# Empty compiler generated dependencies file for bench_fig6_red.
# This may be replaced when dependencies are built.
