file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_red.dir/bench_fig6_red.cpp.o"
  "CMakeFiles/bench_fig6_red.dir/bench_fig6_red.cpp.o.d"
  "bench_fig6_red"
  "bench_fig6_red.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_red.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
