file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rr.dir/bench_ablation_rr.cpp.o"
  "CMakeFiles/bench_ablation_rr.dir/bench_ablation_rr.cpp.o.d"
  "bench_ablation_rr"
  "bench_ablation_rr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
