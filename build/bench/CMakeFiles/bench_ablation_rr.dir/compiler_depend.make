# Empty compiler generated dependencies file for bench_ablation_rr.
# This may be replaced when dependencies are built.
