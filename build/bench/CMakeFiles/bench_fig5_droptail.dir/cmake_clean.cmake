file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_droptail.dir/bench_fig5_droptail.cpp.o"
  "CMakeFiles/bench_fig5_droptail.dir/bench_fig5_droptail.cpp.o.d"
  "bench_fig5_droptail"
  "bench_fig5_droptail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_droptail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
