// rrtcp clang-tidy module — registers the six domain checks and anchors
// the plugin so `clang-tidy --load librrtcp_tidy.so --checks=rrtcp-*`
// picks them up. See tools/tidy/README.md for the build recipe and
// DESIGN.md §14 for what each check enforces and why.
#include "ClangTidyModule.h"
#include "ClangTidyModuleRegistry.h"

#include "HotPathAllocCheck.h"
#include "NondeterministicIterationCheck.h"
#include "SimTimeEqualityCheck.h"
#include "SmallFnInlineCheck.h"
#include "UnnamedRngCheck.h"
#include "WallClockCheck.h"

namespace clang::tidy {
namespace rrtcp {

class RrtcpTidyModule : public ClangTidyModule {
 public:
  void addCheckFactories(ClangTidyCheckFactories& Factories) override {
    Factories.registerCheck<HotPathAllocCheck>("rrtcp-hot-path-alloc");
    Factories.registerCheck<UnnamedRngCheck>("rrtcp-unnamed-rng");
    Factories.registerCheck<NondeterministicIterationCheck>(
        "rrtcp-nondeterministic-iteration");
    Factories.registerCheck<SmallFnInlineCheck>("rrtcp-smallfn-inline");
    Factories.registerCheck<SimTimeEqualityCheck>("rrtcp-sim-time-equality");
    Factories.registerCheck<WallClockCheck>("rrtcp-wall-clock");
  }
};

}  // namespace rrtcp

static ClangTidyModuleRegistry::Add<rrtcp::RrtcpTidyModule> RrtcpTidyModuleX(
    "rrtcp-module", "rrtcp hot-path and determinism contract checks");

// Referenced nowhere; exists so linkers keep the registry entry alive.
volatile int RrtcpTidyModuleAnchorSource = 0;  // NOLINT

}  // namespace clang::tidy
