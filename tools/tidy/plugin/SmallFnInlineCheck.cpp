#include "SmallFnInlineCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::rrtcp {

SmallFnInlineCheck::SmallFnInlineCheck(StringRef Name,
                                       ClangTidyContext* Context)
    : ClangTidyCheck(Name, Context),
      InlineBytes(Options.get("InlineBytes", 160U)),
      InlineAlign(Options.get("InlineAlign", 16U)) {}

void SmallFnInlineCheck::storeOptions(ClangTidyOptions::OptionMap& Opts) {
  Options.store(Opts, "InlineBytes", InlineBytes);
  Options.store(Opts, "InlineAlign", InlineAlign);
}

void SmallFnInlineCheck::registerMatchers(MatchFinder* Finder) {
  Finder->addMatcher(
      cxxMemberCallExpr(
          callee(cxxMethodDecl(
              hasAnyName("schedule_at", "schedule_in", "reschedule_at",
                         "reschedule_in"),
              ofClass(hasName("::rrtcp::sim::Simulator")))))
          .bind("call"),
      this);
}

void SmallFnInlineCheck::check(const MatchFinder::MatchResult& Result) {
  const auto* Call = Result.Nodes.getNodeAs<CXXMemberCallExpr>("call");
  if (Call == nullptr || Call->getNumArgs() < 2) return;
  const Expr* Callable = Call->getArg(1)->IgnoreParenImpCasts();
  // Materialized temporaries wrap the lambda/functor expression.
  if (const auto* MTE = dyn_cast<MaterializeTemporaryExpr>(Callable))
    Callable = MTE->getSubExpr()->IgnoreParenImpCasts();
  QualType T = Callable->getType().getNonReferenceType();
  if (T->isDependentType() || !T->isRecordType()) return;

  ASTContext& Ctx = *Result.Context;
  if (T->getAsRecordDecl() == nullptr ||
      !T->getAsRecordDecl()->isCompleteDefinition())
    return;
  const auto Size = Ctx.getTypeSizeInChars(T).getQuantity();
  const auto Align = Ctx.getTypeAlignInChars(T).getQuantity();

  if (static_cast<unsigned>(Size) > InlineBytes) {
    diag(Callable->getBeginLoc(),
         "callable is %0 bytes but SmallFn's inline buffer holds %1; this "
         "schedule call will heap-allocate every time it fires — capture "
         "big state by reference or shrink the capture list")
        << static_cast<unsigned>(Size) << InlineBytes;
  } else if (static_cast<unsigned>(Align) > InlineAlign) {
    diag(Callable->getBeginLoc(),
         "callable requires %0-byte alignment but SmallFn's inline buffer "
         "guarantees %1; this schedule call will heap-allocate")
        << static_cast<unsigned>(Align) << InlineAlign;
  }
}

}  // namespace clang::tidy::rrtcp
