#include "HotPathAllocCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/AST/Attr.h"
#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "llvm/ADT/Twine.h"

using namespace clang::ast_matchers;

namespace clang::tidy::rrtcp {

namespace {

bool hasRrtcpAnnotation(const FunctionDecl* FD, StringRef Tag) {
  if (FD == nullptr) return false;
  for (const auto* A : FD->specific_attrs<AnnotateAttr>())
    if (A->getAnnotation() == Tag) return true;
  return false;
}

// Allocating member surface on std-namespace records. reserve() is
// included: reserving on the hot path means the capacity plan failed.
bool isAllocatingMember(StringRef Name) {
  static const char* kMembers[] = {"push_back", "emplace_back", "push_front",
                                   "emplace_front", "emplace", "insert",
                                   "resize", "reserve", "assign", "append",
                                   "insert_or_assign", "try_emplace"};
  for (const char* M : kMembers)
    if (Name == M) return true;
  return false;
}

bool isMallocFamily(StringRef Name) {
  return Name == "malloc" || Name == "calloc" || Name == "realloc" ||
         Name == "strdup" || Name == "aligned_alloc";
}

bool inStdNamespace(const CXXRecordDecl* RD) {
  if (RD == nullptr) return false;
  const DeclContext* DC = RD->getDeclContext();
  while (DC != nullptr && !DC->isTranslationUnit()) {
    if (const auto* NS = dyn_cast<NamespaceDecl>(DC)) {
      if (NS->isStdNamespace()) return true;
    }
    DC = DC->getParent();
  }
  return false;
}

// Walks a hot function's body, descending into callees defined in this TU
// outside system headers, stopping at rrtcp::cold functions.
class AllocWalker : public RecursiveASTVisitor<AllocWalker> {
 public:
  AllocWalker(HotPathAllocCheck& Check, const SourceManager& SM,
              const FunctionDecl* Root)
      : Check(Check), SM(SM), Root(Root) {}

  bool shouldVisitTemplateInstantiations() const { return true; }

  void run(const FunctionDecl* FD) {
    if (FD == nullptr || !FD->hasBody()) return;
    if (!Visited.insert(FD->getCanonicalDecl()).second) return;
    TraverseStmt(FD->getBody());
  }

  bool VisitCXXNewExpr(CXXNewExpr* E) {
    if (E->getNumPlacementArgs() == 0)
      Check.reportAlloc(E->getBeginLoc(), "operator new", Root, SM);
    return true;
  }

  bool VisitCXXDeleteExpr(CXXDeleteExpr* E) {
    Check.reportAlloc(E->getBeginLoc(), "operator delete", Root, SM);
    return true;
  }

  bool VisitCXXMemberCallExpr(CXXMemberCallExpr* E) {
    const CXXMethodDecl* MD = E->getMethodDecl();
    if (MD == nullptr) return true;
    if (isAllocatingMember(MD->getName()) && inStdNamespace(MD->getParent()))
      Check.reportAlloc(
          E->getBeginLoc(),
          ("allocating container call '" + MD->getName() + "'").str(), Root,
          SM);
    return true;
  }

  bool VisitCallExpr(CallExpr* E) {
    const FunctionDecl* Callee = E->getDirectCallee();
    if (Callee == nullptr) return true;
    const StringRef Name =
        Callee->getDeclName().isIdentifier() ? Callee->getName() : StringRef();
    if (isMallocFamily(Name)) {
      Check.reportAlloc(E->getBeginLoc(),
                        ("allocation '" + Name + "'").str(), Root, SM);
      return true;
    }
    if ((Name == "make_unique" || Name == "make_shared") &&
        Callee->isInStdNamespace()) {
      Check.reportAlloc(E->getBeginLoc(),
                        ("allocation 'std::" + Name + "'").str(), Root, SM);
      return true;
    }
    // Transitive walk: follow callees with visible bodies in user code,
    // but never into an audited cold function.
    if (hasRrtcpAnnotation(Callee, "rrtcp::cold")) return true;
    const FunctionDecl* Def = nullptr;
    if (Callee->hasBody(Def) && Def != nullptr &&
        !SM.isInSystemHeader(Def->getLocation()))
      run(Def);
    return true;
  }

 private:
  HotPathAllocCheck& Check;
  const SourceManager& SM;
  const FunctionDecl* Root;
  std::set<const FunctionDecl*> Visited;
};

}  // namespace

void HotPathAllocCheck::reportAlloc(SourceLocation Loc,
                                    const std::string& What,
                                    const FunctionDecl* Root,
                                    const SourceManager& SM) {
  if (!Loc.isValid() || SM.isInSystemHeader(Loc)) return;
  const unsigned Key = SM.getFileOffset(SM.getExpansionLoc(Loc));
  if (!ReportedOffsets.insert(Key).second) return;
  diag(Loc, "%0 is reachable on the allocation-free hot path") << What;
  diag(Root->getLocation(), "hot root is %0 (annotated rrtcp::hot)",
       DiagnosticIDs::Note)
      << Root;
}

void HotPathAllocCheck::registerMatchers(MatchFinder* Finder) {
  Finder->addMatcher(
      functionDecl(isDefinition(), hasAttr(attr::Annotate)).bind("fn"), this);
}

void HotPathAllocCheck::check(const MatchFinder::MatchResult& Result) {
  const auto* FD = Result.Nodes.getNodeAs<FunctionDecl>("fn");
  if (!hasRrtcpAnnotation(FD, "rrtcp::hot")) return;
  AllocWalker Walker(*this, *Result.SourceManager, FD);
  Walker.run(FD);
}

}  // namespace clang::tidy::rrtcp
