// rrtcp-hot-path-alloc — allocation reachability on annotated hot paths.
//
// Functions carrying [[clang::annotate("rrtcp::hot")]] (spelled RRTCP_HOT,
// sim/hot.hpp) and everything they transitively call within the TU must
// not reach operator new, malloc-family calls, make_unique/make_shared,
// or allocating members of std containers. Functions annotated
// "rrtcp::cold" are audited amortized-growth paths; the walk does not
// descend into them. Diagnostics land on the allocating expression (so
// NOLINT suppression-with-justification works in place), with a note
// naming the hot root it is reachable from.
#ifndef RRTCP_TIDY_HOT_PATH_ALLOC_CHECK_H
#define RRTCP_TIDY_HOT_PATH_ALLOC_CHECK_H

#include "ClangTidyCheck.h"

#include <set>
#include <string>

namespace clang::tidy::rrtcp {

class HotPathAllocCheck : public ClangTidyCheck {
 public:
  HotPathAllocCheck(StringRef Name, ClangTidyContext* Context)
      : ClangTidyCheck(Name, Context) {}

  void registerMatchers(ast_matchers::MatchFinder* Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult& Result) override;
  bool isLanguageVersionSupported(const LangOptions& LangOpts) const override {
    return LangOpts.CPlusPlus;
  }

  // Called by the body walker (a RecursiveASTVisitor that cannot reach the
  // protected diag() itself). Dedupes by expansion file offset: the same
  // allocation is often reachable from several hot roots, and templates
  // instantiate more than once.
  void reportAlloc(SourceLocation Loc, const std::string& What,
                   const FunctionDecl* Root, const SourceManager& SM);

 private:
  std::set<unsigned> ReportedOffsets;
};

}  // namespace clang::tidy::rrtcp

#endif  // RRTCP_TIDY_HOT_PATH_ALLOC_CHECK_H
