// rrtcp-smallfn-inline — Simulator::schedule_at/schedule_in store their
// callable in a SmallFn<160> inline buffer; a callable that doesn't fit
// silently falls back to heap allocation (counted by
// callback_heap_fallbacks, caught at runtime by the alloc-regression
// tests). This check moves that contract to compile time: every schedule
// call site whose callable exceeds the inline budget gets a diagnostic
// naming the actual size, replacing the hand-written
// static_assert(fits_inline<...>) that used to be scattered at call
// sites.
#ifndef RRTCP_TIDY_SMALLFN_INLINE_CHECK_H
#define RRTCP_TIDY_SMALLFN_INLINE_CHECK_H

#include "ClangTidyCheck.h"

namespace clang::tidy::rrtcp {

class SmallFnInlineCheck : public ClangTidyCheck {
 public:
  SmallFnInlineCheck(StringRef Name, ClangTidyContext* Context);

  void registerMatchers(ast_matchers::MatchFinder* Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult& Result) override;
  void storeOptions(ClangTidyOptions::OptionMap& Opts) override;
  bool isLanguageVersionSupported(const LangOptions& LangOpts) const override {
    return LangOpts.CPlusPlus;
  }

 private:
  // Must mirror SmallFn's buffer size in src/sim/small_fn.hpp.
  const unsigned InlineBytes;
  // Must mirror SmallFn's alignment bound (alignof(std::max_align_t)).
  const unsigned InlineAlign;
};

}  // namespace clang::tidy::rrtcp

#endif  // RRTCP_TIDY_SMALLFN_INLINE_CHECK_H
