// rrtcp-sim-time-equality — rrtcp::sim::Time is an integer tick count and
// compares exactly; Time::to_seconds() is a lossy double projection for
// display and config math. Comparing to_seconds() results with ==/!=
// reintroduces exactly the floating-point fragility the tick
// representation exists to avoid (7.5e-5 + 2.5e-5 != 1e-4 in binary).
// Compare Time values directly, or use an explicit tolerance.
#ifndef RRTCP_TIDY_SIM_TIME_EQUALITY_CHECK_H
#define RRTCP_TIDY_SIM_TIME_EQUALITY_CHECK_H

#include "ClangTidyCheck.h"

namespace clang::tidy::rrtcp {

class SimTimeEqualityCheck : public ClangTidyCheck {
 public:
  SimTimeEqualityCheck(StringRef Name, ClangTidyContext* Context)
      : ClangTidyCheck(Name, Context) {}

  void registerMatchers(ast_matchers::MatchFinder* Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult& Result) override;
  bool isLanguageVersionSupported(const LangOptions& LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
};

}  // namespace clang::tidy::rrtcp

#endif  // RRTCP_TIDY_SIM_TIME_EQUALITY_CHECK_H
