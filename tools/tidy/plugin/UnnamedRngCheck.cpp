#include "UnnamedRngCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "llvm/ADT/SmallVector.h"

using namespace clang::ast_matchers;

namespace clang::tidy::rrtcp {

UnnamedRngCheck::UnnamedRngCheck(StringRef Name, ClangTidyContext* Context)
    : ClangTidyCheck(Name, Context),
      ExemptPaths(Options.get("ExemptPaths", "sim/rng.")) {}

void UnnamedRngCheck::storeOptions(ClangTidyOptions::OptionMap& Opts) {
  Options.store(Opts, "ExemptPaths", ExemptPaths);
}

bool UnnamedRngCheck::isExempt(SourceLocation Loc,
                               const SourceManager& SM) const {
  const StringRef File = SM.getFilename(SM.getExpansionLoc(Loc));
  llvm::SmallVector<StringRef, 4> Parts;
  StringRef(ExemptPaths).split(Parts, ';', -1, /*KeepEmpty=*/false);
  for (StringRef P : Parts)
    if (File.contains(P)) return true;
  return false;
}

void UnnamedRngCheck::registerMatchers(MatchFinder* Finder) {
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasAnyName("::rand", "::srand", "::rand_r",
                                              "::std::rand", "::std::srand"))))
          .bind("libc"),
      this);
  Finder->addMatcher(
      cxxConstructExpr(hasType(cxxRecordDecl(hasName("::std::random_device"))))
          .bind("device"),
      this);
  // Wall-clock seeding: time(...) has no legitimate use inside the
  // simulation — sim time comes from Simulator::now().
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasAnyName("::time", "::std::time"))))
          .bind("time"),
      this);
}

void UnnamedRngCheck::check(const MatchFinder::MatchResult& Result) {
  const SourceManager& SM = *Result.SourceManager;
  if (const auto* E = Result.Nodes.getNodeAs<CallExpr>("libc")) {
    if (isExempt(E->getBeginLoc(), SM)) return;
    diag(E->getBeginLoc(),
         "libc rand is not replayable; draw from a named RngStream "
         "(sim/rng.hpp) instead");
  } else if (const auto* E =
                 Result.Nodes.getNodeAs<CXXConstructExpr>("device")) {
    if (isExempt(E->getBeginLoc(), SM)) return;
    diag(E->getBeginLoc(),
         "std::random_device is nondeterministic; seeds must flow from the "
         "scenario seed through named RngStreams");
  } else if (const auto* E = Result.Nodes.getNodeAs<CallExpr>("time")) {
    if (isExempt(E->getBeginLoc(), SM)) return;
    diag(E->getBeginLoc(),
         "wall-clock time() must not reach simulation code; use "
         "Simulator::now() or a scenario-derived seed");
  }
}

}  // namespace clang::tidy::rrtcp
