#include "WallClockCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "llvm/ADT/SmallVector.h"

using namespace clang::ast_matchers;

namespace clang::tidy::rrtcp {

WallClockCheck::WallClockCheck(StringRef Name, ClangTidyContext* Context)
    : ClangTidyCheck(Name, Context),
      ExemptPaths(Options.get("ExemptPaths", "src/live")) {}

void WallClockCheck::storeOptions(ClangTidyOptions::OptionMap& Opts) {
  Options.store(Opts, "ExemptPaths", ExemptPaths);
}

bool WallClockCheck::isExempt(SourceLocation Loc,
                              const SourceManager& SM) const {
  const StringRef File = SM.getFilename(SM.getExpansionLoc(Loc));
  llvm::SmallVector<StringRef, 4> Parts;
  StringRef(ExemptPaths).split(Parts, ';', -1, /*KeepEmpty=*/false);
  for (StringRef P : Parts)
    if (File.contains(P)) return true;
  return false;
}

void WallClockCheck::registerMatchers(MatchFinder* Finder) {
  // Raw POSIX wall-clock reads. clock_gettime is banned wholesale outside
  // the exempt paths: even CLOCK_MONOTONIC belongs behind the environment
  // clock, never inline in transport code.
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasAnyName(
                   "::gettimeofday", "::clock_gettime", "::time",
                   "::std::time"))))
          .bind("posix"),
      this);
  // std::chrono::system_clock reads (now / to_time_t / from_time_t).
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasAnyName(
                   "::std::chrono::system_clock::now",
                   "::std::chrono::system_clock::to_time_t",
                   "::std::chrono::system_clock::from_time_t"))))
          .bind("chrono"),
      this);
}

void WallClockCheck::check(const MatchFinder::MatchResult& Result) {
  const SourceManager& SM = *Result.SourceManager;
  if (const auto* E = Result.Nodes.getNodeAs<CallExpr>("posix")) {
    if (isExempt(E->getBeginLoc(), SM)) return;
    diag(E->getBeginLoc(),
         "wall-clock syscall outside src/live; read the environment clock "
         "(env::Environment::now) instead");
  } else if (const auto* E = Result.Nodes.getNodeAs<CallExpr>("chrono")) {
    if (isExempt(E->getBeginLoc(), SM)) return;
    diag(E->getBeginLoc(),
         "std::chrono::system_clock is wall time and not replayable; use "
         "the environment clock (or steady_clock for host-side "
         "measurement)");
  }
}

}  // namespace clang::tidy::rrtcp
