// rrtcp-unnamed-rng — every random draw must come from the named-stream
// RNG layer (sim/rng.hpp), so traces replay bit-exactly and adding a flow
// never perturbs another flow's stream.
//
// Bans: std::rand/srand/rand_r, std::random_device, and wall-clock
// seeding via time(). The RNG layer itself (paths matching ExemptPaths)
// is the one place allowed to touch raw entropy.
#ifndef RRTCP_TIDY_UNNAMED_RNG_CHECK_H
#define RRTCP_TIDY_UNNAMED_RNG_CHECK_H

#include "ClangTidyCheck.h"

#include <string>

namespace clang::tidy::rrtcp {

class UnnamedRngCheck : public ClangTidyCheck {
 public:
  UnnamedRngCheck(StringRef Name, ClangTidyContext* Context);

  void registerMatchers(ast_matchers::MatchFinder* Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult& Result) override;
  void storeOptions(ClangTidyOptions::OptionMap& Opts) override;
  bool isLanguageVersionSupported(const LangOptions& LangOpts) const override {
    return LangOpts.CPlusPlus;
  }

 private:
  bool isExempt(SourceLocation Loc, const SourceManager& SM) const;

  // Semicolon-separated path substrings naming the RNG layer. Stored as
  // std::string: Options.get's return must not dangle past the ctor.
  const std::string ExemptPaths;
};

}  // namespace clang::tidy::rrtcp

#endif  // RRTCP_TIDY_UNNAMED_RNG_CHECK_H
