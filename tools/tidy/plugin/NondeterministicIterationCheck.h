// rrtcp-nondeterministic-iteration — iteration order over unordered
// containers depends on libstdc++ version, hash seeding, and insertion
// history in ways that leak into packet traces; ordered containers keyed
// by raw pointers iterate in allocation-address order, which varies run
// to run. Both are banned in trace-affecting code (GatedDirs).
#ifndef RRTCP_TIDY_NONDETERMINISTIC_ITERATION_CHECK_H
#define RRTCP_TIDY_NONDETERMINISTIC_ITERATION_CHECK_H

#include "ClangTidyCheck.h"

#include <string>

namespace clang::tidy::rrtcp {

class NondeterministicIterationCheck : public ClangTidyCheck {
 public:
  NondeterministicIterationCheck(StringRef Name, ClangTidyContext* Context);

  void registerMatchers(ast_matchers::MatchFinder* Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult& Result) override;
  void storeOptions(ClangTidyOptions::OptionMap& Opts) override;
  bool isLanguageVersionSupported(const LangOptions& LangOpts) const override {
    return LangOpts.CPlusPlus;
  }

 private:
  bool inGatedDir(SourceLocation Loc, const SourceManager& SM) const;
  void classifyAndReport(const Expr* Range, const char* Where);

  // Semicolon-separated path substrings where trace-affecting code lives.
  // Empty means: gate everywhere. Stored as std::string: Options.get's
  // return must not dangle past the ctor.
  const std::string GatedDirs;
};

}  // namespace clang::tidy::rrtcp

#endif  // RRTCP_TIDY_NONDETERMINISTIC_ITERATION_CHECK_H
