#include "SimTimeEqualityCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::rrtcp {

void SimTimeEqualityCheck::registerMatchers(MatchFinder* Finder) {
  const auto ToSeconds = cxxMemberCallExpr(callee(
      cxxMethodDecl(hasName("to_seconds"),
                    ofClass(hasName("::rrtcp::sim::Time")))));
  Finder->addMatcher(
      binaryOperator(hasAnyOperatorName("==", "!="),
                     hasEitherOperand(ignoringParenImpCasts(ToSeconds)))
          .bind("cmp"),
      this);
}

void SimTimeEqualityCheck::check(const MatchFinder::MatchResult& Result) {
  const auto* Cmp = Result.Nodes.getNodeAs<BinaryOperator>("cmp");
  if (Cmp == nullptr) return;
  diag(Cmp->getOperatorLoc(),
       "exact %0 on Time::to_seconds() compares lossy doubles; compare "
       "Time values directly (integer ticks) or use an explicit tolerance")
      << Cmp->getOpcodeStr();
}

}  // namespace clang::tidy::rrtcp
