#include "NondeterministicIterationCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/AST/DeclTemplate.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "llvm/ADT/SmallVector.h"

using namespace clang::ast_matchers;

namespace clang::tidy::rrtcp {

namespace {

const CXXRecordDecl* containerRecord(QualType QT,
                                     const ClassTemplateSpecializationDecl** Spec) {
  QT = QT.getNonReferenceType().getCanonicalType();
  const auto* RD = QT->getAsCXXRecordDecl();
  if (RD == nullptr) return nullptr;
  *Spec = dyn_cast<ClassTemplateSpecializationDecl>(RD);
  return RD;
}

// "std::unordered_map" → hash-ordered. "std::map<Flow*, ...>" →
// address-ordered. Returns a human-readable reason or nullptr if the
// container iterates deterministically.
const char* nondetReason(QualType QT) {
  const ClassTemplateSpecializationDecl* Spec = nullptr;
  const CXXRecordDecl* RD = containerRecord(QT, &Spec);
  if (RD == nullptr || !RD->isInStdNamespace()) return nullptr;
  const StringRef Name = RD->getName();
  if (Name.starts_with("unordered_"))
    return "iterates in hash-table order, which is not stable across "
           "standard-library versions or insertion histories";
  const bool Keyed = Name == "map" || Name == "multimap" || Name == "set" ||
                     Name == "multiset";
  if (Keyed && Spec != nullptr && Spec->getTemplateArgs().size() > 0) {
    const TemplateArgument& Key = Spec->getTemplateArgs()[0];
    if (Key.getKind() == TemplateArgument::Type &&
        Key.getAsType()->isPointerType())
      return "is keyed by raw pointers, so iteration follows allocation "
             "addresses and varies run to run";
  }
  return nullptr;
}

}  // namespace

NondeterministicIterationCheck::NondeterministicIterationCheck(
    StringRef Name, ClangTidyContext* Context)
    : ClangTidyCheck(Name, Context),
      GatedDirs(Options.get(
          "GatedDirs",
          "src/sim;src/net;src/tcp;src/chaos;src/topo;src/traffic;"
          "tools/tidy/corpus")) {}

void NondeterministicIterationCheck::storeOptions(
    ClangTidyOptions::OptionMap& Opts) {
  Options.store(Opts, "GatedDirs", GatedDirs);
}

bool NondeterministicIterationCheck::inGatedDir(
    SourceLocation Loc, const SourceManager& SM) const {
  if (GatedDirs.empty()) return true;
  const StringRef File = SM.getFilename(SM.getExpansionLoc(Loc));
  llvm::SmallVector<StringRef, 8> Parts;
  StringRef(GatedDirs).split(Parts, ';', -1, /*KeepEmpty=*/false);
  for (StringRef P : Parts)
    if (File.contains(P)) return true;
  return false;
}

void NondeterministicIterationCheck::registerMatchers(MatchFinder* Finder) {
  Finder->addMatcher(cxxForRangeStmt().bind("loop"), this);
  // Explicit iterator loops: flag the .begin() call itself. Range-fors
  // desugar into implicit begin() calls — exclude those to avoid double
  // diagnostics on the same loop.
  Finder->addMatcher(
      cxxMemberCallExpr(callee(cxxMethodDecl(hasAnyName("begin", "cbegin"))),
                        unless(hasAncestor(cxxForRangeStmt())))
          .bind("begin"),
      this);
}

void NondeterministicIterationCheck::classifyAndReport(const Expr* Range,
                                                       const char* Where) {
  const char* Reason = nondetReason(Range->getType());
  if (Reason == nullptr) return;
  diag(Range->getBeginLoc(),
       "%0 a container that %1; trace-affecting code must iterate in a "
       "deterministic order (sort keys, or use FlatTable32::for_each)")
      << Where << Reason;
}

void NondeterministicIterationCheck::check(
    const MatchFinder::MatchResult& Result) {
  const SourceManager& SM = *Result.SourceManager;
  if (const auto* Loop = Result.Nodes.getNodeAs<CXXForRangeStmt>("loop")) {
    if (!inGatedDir(Loop->getBeginLoc(), SM)) return;
    if (const Expr* Range = Loop->getRangeInit())
      classifyAndReport(Range->IgnoreParenImpCasts(), "range-for over");
  } else if (const auto* Begin =
                 Result.Nodes.getNodeAs<CXXMemberCallExpr>("begin")) {
    if (!inGatedDir(Begin->getBeginLoc(), SM)) return;
    if (const Expr* Obj = Begin->getImplicitObjectArgument())
      classifyAndReport(Obj->IgnoreParenImpCasts(), "iteration over");
  }
}

}  // namespace clang::tidy::rrtcp
