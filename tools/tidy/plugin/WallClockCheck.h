// rrtcp-wall-clock — transport and simulation code must never read wall
// time. The simulator's clock is Simulator::now(); the live transport's is
// CLOCK_MONOTONIC rebased to zero inside live::LiveEnvironment. A wall
// clock anywhere else breaks replayability (traces stamped with host time)
// and the sim/live differential contract (the two embodiments would
// disagree about what "now" means).
//
// Bans: gettimeofday, clock_gettime, time(), and std::chrono::system_clock
// reads. Paths matching ExemptPaths (default: the src/live translation
// layer, the one place allowed to touch a real — monotonic — clock) are
// exempt. std::chrono::steady_clock is deliberately NOT banned: harness
// and bench code measuring host elapsed time is not simulated time.
#ifndef RRTCP_TIDY_WALL_CLOCK_CHECK_H
#define RRTCP_TIDY_WALL_CLOCK_CHECK_H

#include "ClangTidyCheck.h"

#include <string>

namespace clang::tidy::rrtcp {

class WallClockCheck : public ClangTidyCheck {
 public:
  WallClockCheck(StringRef Name, ClangTidyContext* Context);

  void registerMatchers(ast_matchers::MatchFinder* Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult& Result) override;
  void storeOptions(ClangTidyOptions::OptionMap& Opts) override;
  bool isLanguageVersionSupported(const LangOptions& LangOpts) const override {
    return LangOpts.CPlusPlus;
  }

 private:
  bool isExempt(SourceLocation Loc, const SourceManager& SM) const;

  // Semicolon-separated path substrings naming the live translation layer.
  // Stored as std::string: Options.get's return must not dangle past the
  // ctor.
  const std::string ExemptPaths;
};

}  // namespace clang::tidy::rrtcp

#endif  // RRTCP_TIDY_WALL_CLOCK_CHECK_H
