// Lint-corpus fixture: MUST fire rrtcp-unnamed-rng.
// EXPECT: rrtcp-unnamed-rng
//
// Every draw in this repo must come from a named stream derived from the
// scenario seed (sim/rng.hpp). This file commits the three classic sins:
// libc rand, std::random_device entropy, and wall-clock seeding.
#include <cstdlib>
#include <ctime>
#include <random>

namespace corpus {

int libc_draw() {
  return std::rand();  // not replayable from a scenario seed
}

unsigned hardware_entropy() {
  std::random_device rd;  // nondeterministic source
  return rd();
}

std::mt19937 wall_clock_engine() {
  return std::mt19937(static_cast<unsigned>(time(nullptr)));  // time-seeded
}

}  // namespace corpus
