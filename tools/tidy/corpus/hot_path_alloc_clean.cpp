// Lint-corpus fixture: must stay clean under every rrtcp check.
//
// The allocation-free shapes the hot path actually uses: index arithmetic
// over pre-sized storage, placement new into an inline buffer, a cold
// grow routine the checker must not descend into, and a capacity-pinned
// push_back suppressed with justification.
#include <cstddef>
#include <new>
#include <vector>

#include "sim/hot.hpp"

namespace corpus {

class Pool {
 public:
  Pool() {
    slots_.resize(64);
    free_.reserve(64);
    for (std::size_t i = 64; i-- > 0;) free_.push_back(i);
  }

  RRTCP_HOT std::size_t acquire() {
    if (free_.empty()) grow();
    const std::size_t s = free_.back();
    free_.pop_back();
    return s;
  }

  RRTCP_HOT void release(std::size_t s) {
    // free_ is reserved to the pool size in grow(), so this push_back
    // never reallocates.
    // NOLINTNEXTLINE(rrtcp-hot-path-alloc)
    free_.push_back(s);
  }

  RRTCP_HOT void store(std::size_t s, long v) {
    ::new (static_cast<void*>(&slots_[s])) long(v);  // placement: no alloc
  }

 private:
  RRTCP_COLD void grow() {
    // Audited cold path: amortized growth is allowed here.
    slots_.resize(slots_.size() * 2);
    free_.reserve(slots_.size());
    for (std::size_t i = slots_.size(); i-- > slots_.size() / 2;)
      free_.push_back(i);
  }

  std::vector<long> slots_;
  std::vector<std::size_t> free_;
};

long drive() {
  Pool p;
  const std::size_t s = p.acquire();
  p.store(s, 42);
  p.release(s);
  return 0;
}

}  // namespace corpus
