// Lint-corpus fixture: must stay clean under every rrtcp check.
//
// The sanctioned comparisons: Time-vs-Time (exact integer picoseconds)
// and floating seconds under an explicit tolerance or an ordering test.
#include <cmath>

#include "sim/time.hpp"

namespace corpus {

bool at_deadline(rrtcp::sim::Time now, rrtcp::sim::Time deadline) {
  return now == deadline;  // integer picoseconds: exact is exact
}

bool close_enough(rrtcp::sim::Time a, rrtcp::sim::Time b) {
  return std::abs(a.to_seconds() - b.to_seconds()) < 1e-9;  // tolerance
}

bool past_deadline(rrtcp::sim::Time now, rrtcp::sim::Time deadline) {
  return now.to_seconds() > deadline.to_seconds();  // ordering is fine
}

}  // namespace corpus
