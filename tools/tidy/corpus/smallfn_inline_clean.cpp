// Lint-corpus fixture: must stay clean under every rrtcp check.
//
// Schedule calls whose captures fit the inline budget: a pointer, a small
// value, and a big buffer captured by reference (referencing, not
// copying — the caller guarantees lifetime, as Link does with `this`).
#include <cstdint>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace corpus {

struct Counter {
  std::uint64_t hits = 0;
};

void arm_small(rrtcp::sim::Simulator& sim, Counter& c) {
  std::uint32_t delta = 1;
  sim.schedule_in(rrtcp::sim::Time::milliseconds(1),
                  [&c, delta] { c.hits += delta; });
}

void arm_by_reference(rrtcp::sim::Simulator& sim) {
  static char big[4096];
  sim.schedule_at(rrtcp::sim::Time::milliseconds(2),
                  [&big] { big[0] = 1; });  // reference capture: 8 bytes
}

}  // namespace corpus
