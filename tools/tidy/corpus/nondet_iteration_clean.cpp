// Lint-corpus fixture: must stay clean under every rrtcp check.
//
// Deterministic iteration shapes: an integer-keyed ordered map, a sorted
// vector, and index loops — order is a pure function of the data.
#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

namespace corpus {

std::uint64_t total(const std::map<std::uint32_t, std::uint64_t>& flows) {
  std::uint64_t sum = 0;
  for (const auto& kv : flows) sum += kv.second;  // key order: deterministic
  return sum;
}

std::uint64_t sorted_total(std::vector<std::uint32_t> ids) {
  std::sort(ids.begin(), ids.end());
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) sum += ids[i];
  return sum;
}

}  // namespace corpus
