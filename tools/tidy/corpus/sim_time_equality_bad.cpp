// Lint-corpus fixture: MUST fire rrtcp-sim-time-equality.
// EXPECT: rrtcp-sim-time-equality
//
// Exact ==/!= on floating sim-time: to_seconds() rounds picoseconds into
// a double, so two logically-equal instants can compare unequal (and two
// different instants equal) depending on magnitude. Compare Time values
// (integer picoseconds) instead.
#include "sim/time.hpp"

namespace corpus {

bool at_deadline(rrtcp::sim::Time now, rrtcp::sim::Time deadline) {
  return now.to_seconds() == deadline.to_seconds();  // float equality
}

bool still_waiting(rrtcp::sim::Time now, rrtcp::sim::Time deadline) {
  return now.to_seconds() != deadline.to_seconds();  // float inequality
}

}  // namespace corpus
