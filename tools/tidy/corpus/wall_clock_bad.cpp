// Lint-corpus fixture: MUST fire rrtcp-wall-clock.
// EXPECT: rrtcp-wall-clock
//
// Wall clocks outside src/live break replayability and the sim/live
// differential contract. This file commits the classic sins: a raw
// gettimeofday read and a std::chrono::system_clock stamp.
#include <chrono>
#include <sys/time.h>

namespace corpus {

double wall_seconds() {
  timeval tv{};
  gettimeofday(&tv, nullptr);  // wall-clock syscall
  return static_cast<double>(tv.tv_sec) + tv.tv_usec * 1e-6;
}

std::chrono::system_clock::time_point stamp_trace() {
  return std::chrono::system_clock::now();  // wall-clock chrono read
}

}  // namespace corpus
