// Lint-corpus fixture: MUST fire rrtcp-nondeterministic-iteration.
// EXPECT: rrtcp-nondeterministic-iteration
//
// Iterating an unordered container (hash order) or a pointer-keyed map
// (address order) in trace-affecting code makes the event trace depend on
// the allocator and the hash seed — the exact bug class that broke
// replayability before Node's tables went flat.
#include <cstdint>
#include <map>
#include <unordered_map>

namespace corpus {

struct Flow {
  std::uint64_t bytes = 0;
};

std::uint64_t total_bytes(
    const std::unordered_map<std::uint32_t, Flow>& flows) {
  std::uint64_t total = 0;
  for (const auto& kv : flows) total += kv.second.bytes;  // hash order
  return total;
}

std::uint64_t drain(std::map<Flow*, std::uint64_t>& by_ptr) {
  std::uint64_t total = 0;
  for (auto it = by_ptr.begin(); it != by_ptr.end(); ++it)
    total += it->second;  // pointer-keyed: address order
  return total;
}

}  // namespace corpus
