// Lint-corpus fixture: must stay SILENT under every rrtcp check.
//
// The legitimate clocks: std::chrono::steady_clock for host-side elapsed
// measurement (harness/bench timing — monotonic, never wall time), and an
// environment-style now() for transport code.
#include <chrono>
#include <cstdint>

namespace corpus {

// Monotonic host measurement is fine; only wall clocks are banned.
double host_elapsed(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Transport code takes its clock from the environment seam.
struct FakeEnv {
  std::int64_t now_ps = 0;
  std::int64_t now() const { return now_ps; }
};

std::int64_t transport_deadline(const FakeEnv& env, std::int64_t rto_ps) {
  return env.now() + rto_ps;
}

}  // namespace corpus
