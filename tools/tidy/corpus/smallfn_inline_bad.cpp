// Lint-corpus fixture: MUST fire rrtcp-smallfn-inline.
// EXPECT: rrtcp-smallfn-inline
//
// A schedule call whose lambda captures a 512-byte buffer by value. It
// compiles (SmallFn falls back to the heap and counts it), but the event
// no longer fits the 160-byte inline budget — the scheduler would
// allocate on every such schedule, which is exactly what the check turns
// into a diagnostic at the call site.
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace corpus {

void arm_oversized(rrtcp::sim::Simulator& sim) {
  char blob[512] = {};
  sim.schedule_in(rrtcp::sim::Time::milliseconds(1),
                  [blob] { (void)blob[0]; });  // 512B capture > 160B budget
}

}  // namespace corpus
