// Lint-corpus fixture: MUST fire rrtcp-hot-path-alloc.
// EXPECT: rrtcp-hot-path-alloc
//
// A hot-annotated per-event callback that reaches the allocator three
// ways: an unpinned container push_back, a raw operator new, and (for the
// plugin's transitive walk) a helper defined in this TU that allocates.
#include <vector>

#include "sim/hot.hpp"

namespace corpus {

class Recorder {
 public:
  RRTCP_HOT void on_event(int value) {
    samples_.push_back(value);  // allocating container call in a hot body
    note(value);
  }

  RRTCP_HOT int* borrow_scratch() {
    return new int[4];  // raw operator new in a hot body
  }

 private:
  void note(int value) {
    // Reached transitively from the hot root on_event(); the plugin's
    // in-TU call walk must still flag this allocation.
    log_.push_back(value);
  }

  std::vector<int> samples_;
  std::vector<int> log_;
};

int drive() {
  Recorder r;
  r.on_event(1);
  return r.borrow_scratch()[0];
}

}  // namespace corpus
