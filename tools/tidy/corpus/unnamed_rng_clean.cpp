// Lint-corpus fixture: must stay clean under every rrtcp check.
//
// The replayable pattern: all randomness flows from an explicit seed
// through a deterministic mixer — the named-stream idiom of sim/rng.hpp.
#include <cstdint>

namespace corpus {

// splitmix64 step: pure function of the passed-in state.
std::uint64_t mix(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double uniform_from_seed(std::uint64_t seed) {
  std::uint64_t stream = seed ^ 0xA5A5A5A5A5A5A5A5ULL;  // named stream
  return static_cast<double>(mix(stream) >> 11) * 0x1.0p-53;
}

}  // namespace corpus
