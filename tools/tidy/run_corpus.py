#!/usr/bin/env python3
"""Lint-corpus runner for the rrtcp-tidy checks.

Runs a checker over the fixture TUs in tools/tidy/corpus and asserts the
contract each fixture encodes:

  *_bad.cpp   must produce at least one diagnostic whose check id matches
              the fixture's `// EXPECT: rrtcp-...` marker;
  *_clean.cpp must produce no rrtcp-* diagnostic at all.

Two interchangeable checkers (same diagnostic format):

  --lite <binary>         the portable token-level fallback
                          (tools/tidy/lite), run directly on each file;
  --clang-tidy <exe> --plugin <path.so>
                          the real plugin, loaded via --load with
                          --checks=-*,rrtcp-*.

A third mode sweeps arbitrary sources and fails on any diagnostic:

  --sweep file...         (with --lite or --clang-tidy as above)

Exit status: 0 on success, 1 on contract violation, 2 on usage error.
"""

import argparse
import pathlib
import re
import subprocess
import sys

DIAG_RE = re.compile(r"\[(rrtcp-[a-z-]+)\]")
EXPECT_RE = re.compile(r"//\s*EXPECT:\s*(rrtcp-[a-z-]+)")


def run_checker(args, files):
    """Returns (set of rrtcp check ids seen, raw output)."""
    if args.lite:
        cmd = [args.lite] + [str(f) for f in files]
    else:
        cmd = [
            args.clang_tidy,
            f"--load={args.plugin}",
            "--checks=-*,rrtcp-*",
            "--quiet",
        ] + [str(f) for f in files] + [
            "--",
            "-std=c++20",
            f"-I{args.include}",
        ]
    proc = subprocess.run(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True
    )
    ids = set(DIAG_RE.findall(proc.stdout))
    return ids, proc.stdout


def check_corpus(args):
    corpus = pathlib.Path(args.corpus)
    bad = sorted(corpus.glob("*_bad.cpp"))
    clean = sorted(corpus.glob("*_clean.cpp"))
    if len(bad) < 5 or len(clean) < 5:
        print(
            f"error: corpus at {corpus} incomplete "
            f"({len(bad)} bad / {len(clean)} clean fixtures)"
        )
        return 2

    failures = 0
    for fixture in bad:
        expect = EXPECT_RE.search(fixture.read_text())
        if not expect:
            print(f"FAIL {fixture.name}: missing '// EXPECT: rrtcp-...'")
            failures += 1
            continue
        expected = expect.group(1)
        ids, output = run_checker(args, [fixture])
        if expected in ids:
            print(f"ok   {fixture.name}: fired {expected}")
        else:
            print(
                f"FAIL {fixture.name}: expected {expected}, "
                f"got {sorted(ids) or 'nothing'}"
            )
            print(output)
            failures += 1

    for fixture in clean:
        ids, output = run_checker(args, [fixture])
        if ids:
            print(f"FAIL {fixture.name}: expected clean, fired {sorted(ids)}")
            print(output)
            failures += 1
        else:
            print(f"ok   {fixture.name}: clean")

    if failures:
        print(f"{failures} corpus contract(s) violated")
        return 1
    print(f"corpus ok: {len(bad)} firing + {len(clean)} clean fixtures")
    return 0


def check_sweep(args):
    files = [pathlib.Path(f) for f in args.sweep]
    # One invocation over all files: the hot-path analyzer needs header
    # declarations and out-of-line definitions in the same run.
    ids, output = run_checker(args, files)
    if ids:
        sys.stdout.write(output)
        print(f"sweep FAILED: {sorted(ids)} over {len(files)} files")
        return 1
    print(f"sweep ok: {len(files)} files, no rrtcp diagnostics")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--lite", help="path to the rrtcp_tidy_lite binary")
    parser.add_argument("--clang-tidy", dest="clang_tidy",
                        help="path to a clang-tidy executable")
    parser.add_argument("--plugin", help="path to the rrtcp-tidy plugin .so")
    parser.add_argument("--include", default="src",
                        help="include root for corpus TUs (clang-tidy mode)")
    parser.add_argument("--corpus", help="fixture directory to validate")
    parser.add_argument("--sweep", nargs="*",
                        help="source files that must produce no diagnostics")
    args = parser.parse_args()

    if bool(args.lite) == bool(args.clang_tidy):
        parser.error("exactly one of --lite / --clang-tidy is required")
    if args.clang_tidy and not args.plugin:
        parser.error("--clang-tidy requires --plugin")
    if bool(args.corpus) == bool(args.sweep):
        parser.error("exactly one of --corpus / --sweep is required")

    if args.corpus:
        return check_corpus(args)
    return check_sweep(args)


if __name__ == "__main__":
    sys.exit(main())
