// rrtcp_tidy_lite — portable fallback for the rrtcp clang-tidy plugin.
//
// The real enforcement rail is tools/tidy/*.cpp: a clang-tidy module with
// full AST and type information, built against the LLVM dev packages in
// the CI tidy-plugin job. This tool is the second rail: a dependency-free
// token-level checker that implements conservative approximations of the
// same six check IDs, so the lint corpus (tools/tidy/corpus) and a sweep
// of src/ run under plain ctest on any machine with a C++ compiler — no
// clang, no LLVM headers.
//
// Shared conventions with the plugin:
//  * diagnostics print in clang-tidy format:
//      file:line:col: warning: <message> [rrtcp-<check>]
//  * `// NOLINT(<id>)` on the line and `// NOLINTNEXTLINE(<id>)` on the
//    preceding line suppress a diagnostic, as does a bare NOLINT.
//
// Being token-level, the lite checker is deliberately conservative: it
// only reports patterns it can classify with near-certainty (it must stay
// clean over all of src/, where the plugin is the precise tool). Its
// approximations per check are documented at each analyzer below.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Diagnostic {
  std::string file;
  std::size_t line = 0;
  std::size_t col = 0;
  std::string message;
  std::string check;
};

// One logical source line with its original 1-based number.
struct Line {
  std::string text;  // comments and string literals blanked out
  std::size_t number = 0;
};

struct SourceFile {
  std::string path;
  std::vector<Line> lines;
  // line number -> set of suppressed check ids ("*" = all).
  std::map<std::size_t, std::set<std::string>> nolint;
};

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// True when `text[pos]` begins the whole identifier `word` (not a substring
// of a longer identifier).
bool word_at(const std::string& text, std::size_t pos,
             const std::string& word) {
  if (text.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && ident_char(text[pos - 1])) return false;
  const std::size_t end = pos + word.size();
  return end >= text.size() || !ident_char(text[end]);
}

std::size_t find_word(const std::string& text, const std::string& word,
                      std::size_t from = 0) {
  for (std::size_t p = text.find(word, from); p != std::string::npos;
       p = text.find(word, p + 1)) {
    if (word_at(text, p, word)) return p;
  }
  return std::string::npos;
}

// Record NOLINT markers, then blank comments, string and char literals so
// the analyzers never match inside them. Line structure is preserved.
SourceFile load(const std::string& path) {
  SourceFile f;
  f.path = path;
  std::ifstream in(path);
  if (!in) {
    std::cerr << "rrtcp_tidy_lite: cannot open " << path << "\n";
    std::exit(2);
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string src = ss.str();

  // Pass 1: split into raw lines and harvest NOLINT directives.
  std::vector<std::string> raw;
  {
    std::string cur;
    for (char c : src) {
      if (c == '\n') {
        raw.push_back(cur);
        cur.clear();
      } else {
        cur += c;
      }
    }
    raw.push_back(cur);
  }
  auto parse_nolint = [&](const std::string& line, std::size_t lineno) {
    for (const char* kind : {"NOLINTNEXTLINE", "NOLINT"}) {
      const std::size_t p = line.find(kind);
      if (p == std::string::npos) continue;
      const std::size_t target =
          std::strcmp(kind, "NOLINTNEXTLINE") == 0 ? lineno + 1 : lineno;
      std::set<std::string>& ids = f.nolint[target];
      std::size_t q = p + std::strlen(kind);
      if (q < line.size() && line[q] == '(') {
        const std::size_t close = line.find(')', q);
        std::string inner = line.substr(q + 1, close == std::string::npos
                                                   ? std::string::npos
                                                   : close - q - 1);
        std::string id;
        std::stringstream items(inner);
        while (std::getline(items, id, ',')) {
          id.erase(std::remove_if(id.begin(), id.end(), ::isspace), id.end());
          if (!id.empty()) ids.insert(id);
        }
      } else {
        ids.insert("*");
      }
      break;  // NOLINTNEXTLINE contains NOLINT; handle the longest only
    }
  };
  for (std::size_t i = 0; i < raw.size(); ++i) parse_nolint(raw[i], i + 1);

  // Pass 2: blank comments / literals.
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State st = State::kCode;
  std::string out;
  out.reserve(src.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char n = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (st) {
      case State::kCode:
        if (c == '/' && n == '/') {
          st = State::kLineComment;
          out += "  ";
          ++i;
        } else if (c == '/' && n == '*') {
          st = State::kBlockComment;
          out += "  ";
          ++i;
        } else if (c == '"') {
          st = State::kString;
          out += '"';
        } else if (c == '\'') {
          st = State::kChar;
          out += '\'';
        } else {
          out += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          st = State::kCode;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && n == '/') {
          st = State::kCode;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out += "  ";
          ++i;
          if (n == '\n') out.back() = '\n';
        } else if (c == '"') {
          st = State::kCode;
          out += '"';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out += "  ";
          ++i;
        } else if (c == '\'') {
          st = State::kCode;
          out += '\'';
        } else {
          out += ' ';
        }
        break;
    }
  }

  std::string cur;
  std::size_t lineno = 1;
  for (char c : out) {
    if (c == '\n') {
      f.lines.push_back(Line{cur, lineno});
      cur.clear();
      ++lineno;
    } else {
      cur += c;
    }
  }
  f.lines.push_back(Line{cur, lineno});
  return f;
}

bool suppressed(const SourceFile& f, std::size_t line,
                const std::string& check) {
  auto it = f.nolint.find(line);
  if (it == f.nolint.end()) return false;
  return it->second.count("*") > 0 || it->second.count(check) > 0;
}

void emit(std::vector<Diagnostic>& diags, const SourceFile& f,
          std::size_t line, std::size_t col, const std::string& check,
          const std::string& message) {
  if (suppressed(f, line, check)) return;
  diags.push_back(Diagnostic{f.path, line, col + 1, message, check});
}

// Whole-file text with a map from offset back to (line, col); preprocessor
// directives blanked so `#include <unordered_map>` never matches.
struct FlatText {
  std::string text;
  std::vector<std::size_t> line_of;  // offset -> 1-based line
  std::vector<std::size_t> col_of;   // offset -> 0-based column
};

FlatText flatten(const SourceFile& f) {
  FlatText ft;
  for (const Line& l : f.lines) {
    std::string t = l.text;
    std::size_t first = t.find_first_not_of(" \t");
    if (first != std::string::npos && t[first] == '#')
      t.assign(t.size(), ' ');
    for (std::size_t c = 0; c < t.size(); ++c) {
      ft.text += t[c];
      ft.line_of.push_back(l.number);
      ft.col_of.push_back(c);
    }
    ft.text += '\n';
    ft.line_of.push_back(l.number);
    ft.col_of.push_back(t.size());
  }
  return ft;
}

std::size_t match_paren(const std::string& t, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i] == '(') ++depth;
    if (t[i] == ')' && --depth == 0) return i;
  }
  return std::string::npos;
}

std::size_t match_brace(const std::string& t, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i] == '{') ++depth;
    if (t[i] == '}' && --depth == 0) return i;
  }
  return std::string::npos;
}

// ---------------------------------------------------------------------------
// rrtcp-hot-path-alloc
//
// Approximation: bodies lexically attached to an RRTCP_HOT (or raw
// [[clang::annotate("rrtcp::hot")]]) marker are scanned for a curated
// allocating surface; RRTCP_HOT declarations without bodies contribute the
// function name to a hot set, and `Qualifier::name(...) {` definitions of
// hot names (across all files of the run) are scanned too. No transitive
// call following and no type information — the plugin's precise domain.

struct HotAnalyzer {
  // Qualified "Class::name" entries, so an out-of-line definition is only
  // treated as hot when its class matches the annotated declaration —
  // `LegacyScheduler::run` must not inherit hotness from `Simulator::run`.
  std::set<std::string> hot_names;
  std::set<std::string> cold_names;

  static std::string decl_name(const std::string& t, std::size_t decl_begin,
                               std::size_t paren) {
    // Identifier immediately before the '(' of the parameter list.
    std::size_t e = paren;
    while (e > decl_begin &&
           std::isspace(static_cast<unsigned char>(t[e - 1])) != 0)
      --e;
    std::size_t b = e;
    while (b > decl_begin && ident_char(t[b - 1])) --b;
    return t.substr(b, e - b);
  }

  // Name of the class/struct whose body encloses offset `at` (innermost
  // named scope), or "" at namespace/function scope. One forward pass
  // maintaining a brace-scope stack.
  static std::string enclosing_class(const std::string& t, std::size_t at) {
    std::vector<std::string> stack;
    std::string pending;
    for (std::size_t i = 0; i < at && i < t.size(); ++i) {
      const char c = t[i];
      if (c == '{') {
        stack.push_back(pending);
        pending.clear();
      } else if (c == '}') {
        if (!stack.empty()) stack.pop_back();
      } else if (c == ';' || c == '(') {
        pending.clear();  // forward declaration / function parameters
      } else if (word_at(t, i, "class") || word_at(t, i, "struct")) {
        std::size_t q = i + (word_at(t, i, "class") ? 5 : 6);
        while (q < t.size() &&
               std::isspace(static_cast<unsigned char>(t[q])) != 0)
          ++q;
        std::size_t b = q;
        while (q < t.size() && ident_char(t[q])) ++q;
        if (q > b) pending = t.substr(b, q - b);
        i = q - 1;
      }
    }
    for (std::size_t i = stack.size(); i-- > 0;)
      if (!stack[i].empty()) return stack[i];
    return "";
  }

  // First pass over one file: collect hot/cold qualified names.
  void collect(const FlatText& ft) {
    for (const char* marker : {"RRTCP_HOT", "RRTCP_COLD"}) {
      const bool hot = std::strcmp(marker, "RRTCP_HOT") == 0;
      for (std::size_t p = find_word(ft.text, marker); p != std::string::npos;
           p = find_word(ft.text, marker, p + 1)) {
        if (p > 0 && ft.text[p - 1] == '#') continue;  // the #define itself
        const std::size_t paren = ft.text.find('(', p);
        if (paren == std::string::npos) continue;
        const std::string name = decl_name(ft.text, p, paren);
        if (name.empty()) continue;
        const std::string cls = enclosing_class(ft.text, p);
        if (cls.empty()) continue;  // free functions scan inline only
        (hot ? hot_names : cold_names).insert(cls + "::" + name);
      }
    }
  }

  // Scan `body` (text range [begin, end)) of hot root `root`.
  void scan_body(const SourceFile& f, const FlatText& ft, std::size_t begin,
                 std::size_t end, const std::string& root,
                 std::vector<Diagnostic>& diags) const {
    static const char* kMemberSurface[] = {"push_back", "emplace_back",
                                           "resize"};
    static const char* kCallSurface[] = {"make_unique", "make_shared",
                                         "malloc", "calloc", "realloc",
                                         "strdup"};
    for (std::size_t i = begin; i < end; ++i) {
      if (word_at(ft.text, i, "new")) {
        // Placement new ("new (addr) T") does not allocate; skip it.
        std::size_t q = i + 3;
        while (q < end && std::isspace(static_cast<unsigned char>(ft.text[q])))
          ++q;
        if (q < end && ft.text[q] == '(') continue;
        emit(diags, f, ft.line_of[i], ft.col_of[i], "rrtcp-hot-path-alloc",
             "operator new reachable in hot function '" + root + "'");
      }
      for (const char* m : kMemberSurface) {
        if (word_at(ft.text, i, m) && i > 0 &&
            (ft.text[i - 1] == '.' ||
             (i > 1 && ft.text[i - 2] == '-' && ft.text[i - 1] == '>'))) {
          emit(diags, f, ft.line_of[i], ft.col_of[i], "rrtcp-hot-path-alloc",
               std::string("allocating container call '") + m +
                   "' in hot function '" + root + "'");
        }
      }
      for (const char* m : kCallSurface) {
        if (word_at(ft.text, i, m)) {
          emit(diags, f, ft.line_of[i], ft.col_of[i], "rrtcp-hot-path-alloc",
               std::string("allocation '") + m + "' in hot function '" +
                   root + "'");
        }
      }
    }
  }

  void analyze(const SourceFile& f, const FlatText& ft,
               std::vector<Diagnostic>& diags) const {
    // Inline bodies behind an explicit marker.
    for (const char* marker :
         {"RRTCP_HOT", "[[clang::annotate(\"rrtcp::hot\")]]"}) {
      for (std::size_t p = find_word(ft.text, "RRTCP_HOT");
           p != std::string::npos;
           p = find_word(ft.text, "RRTCP_HOT", p + 1)) {
        (void)marker;
        if (p > 0 && ft.text[p - 1] == '#') continue;
        const std::size_t paren = ft.text.find('(', p);
        if (paren == std::string::npos) continue;
        const std::size_t close = match_paren(ft.text, paren);
        if (close == std::string::npos) continue;
        // Body or declaration? First of '{' / ';' after the param list.
        std::size_t q = close + 1;
        while (q < ft.text.size() && ft.text[q] != '{' && ft.text[q] != ';')
          ++q;
        if (q >= ft.text.size() || ft.text[q] == ';') continue;
        const std::size_t body_end = match_brace(ft.text, q);
        if (body_end == std::string::npos) continue;
        scan_body(f, ft, q, body_end, decl_name(ft.text, p, paren), diags);
      }
      break;  // the raw attribute spelling is folded into RRTCP_HOT here
    }
    // Out-of-line definitions of declarations annotated hot elsewhere:
    // `Class::name(...) {`, matched with the qualifier so an unrelated
    // class's same-named method is never swept in.
    for (const std::string& qualified : hot_names) {
      if (cold_names.count(qualified)) continue;
      for (std::size_t p = ft.text.find(qualified + "(");
           p != std::string::npos;
           p = ft.text.find(qualified + "(", p + 1)) {
        if (!word_at(ft.text, p, qualified.substr(0, qualified.find(':'))))
          continue;
        const std::size_t paren = p + qualified.size();
        const std::size_t close = match_paren(ft.text, paren);
        if (close == std::string::npos) continue;
        std::size_t q = close + 1;
        // Allow `const` / `noexcept` / `override` between ')' and '{'.
        while (q < ft.text.size() &&
               (std::isspace(static_cast<unsigned char>(ft.text[q])) != 0 ||
                ident_char(ft.text[q])))
          ++q;
        if (q >= ft.text.size() || ft.text[q] != '{') continue;
        const std::size_t body_end = match_brace(ft.text, q);
        if (body_end == std::string::npos) continue;
        scan_body(f, ft, q, body_end, qualified, diags);
      }
    }
  }
};

// ---------------------------------------------------------------------------
// rrtcp-unnamed-rng
//
// Flags std::rand/srand/rand_r, std::random_device, and time()-seeding.
// The named-stream layer itself (sim/rng.hpp, sim/rng.cpp) is exempt.

void check_unnamed_rng(const SourceFile& f, const FlatText& ft,
                       std::vector<Diagnostic>& diags) {
  const bool rng_layer = f.path.find("sim/rng.") != std::string::npos;
  if (rng_layer) return;
  struct Banned {
    const char* word;
    const char* why;
  };
  static const Banned kBanned[] = {
      {"rand", "std::rand is not replayable from a scenario seed"},
      {"srand", "global srand seeding breaks named-stream isolation"},
      {"rand_r", "rand_r draws outside the named-stream RNG layer"},
      {"random_device",
       "std::random_device is nondeterministic; derive a named stream from "
       "the scenario seed instead"},
  };
  for (const Banned& b : kBanned) {
    for (std::size_t p = find_word(ft.text, b.word); p != std::string::npos;
         p = find_word(ft.text, b.word, p + 1)) {
      // Member access (x.rand / x->rand) is some other API, not libc.
      if (p > 0 && (ft.text[p - 1] == '.' ||
                    (p > 1 && ft.text[p - 2] == '-' && ft.text[p - 1] == '>')))
        continue;
      emit(diags, f, ft.line_of[p], ft.col_of[p], "rrtcp-unnamed-rng",
           b.why);
    }
  }
  // Time-seeded engines: time(...) used as a constructor/seed argument.
  for (std::size_t p = find_word(ft.text, "time"); p != std::string::npos;
       p = find_word(ft.text, "time", p + 1)) {
    std::size_t q = p + 4;
    while (q < ft.text.size() &&
           std::isspace(static_cast<unsigned char>(ft.text[q])))
      ++q;
    if (q >= ft.text.size() || ft.text[q] != '(') continue;
    // Only the seeding idiom: time(nullptr) / time(0) / time(NULL).
    const std::size_t close = match_paren(ft.text, q);
    if (close == std::string::npos) continue;
    std::string arg = ft.text.substr(q + 1, close - q - 1);
    arg.erase(std::remove_if(arg.begin(), arg.end(), ::isspace), arg.end());
    if (arg == "nullptr" || arg == "0" || arg == "NULL") {
      emit(diags, f, ft.line_of[p], ft.col_of[p], "rrtcp-unnamed-rng",
           "wall-clock seeding makes runs unreplayable; seed from the "
           "scenario seed via a named stream");
    }
  }
}

// ---------------------------------------------------------------------------
// rrtcp-nondeterministic-iteration
//
// Collects variables declared as unordered containers or pointer-keyed
// maps, then flags range-for loops over them and .begin() iteration.
// Applies everywhere the lite tool is pointed (the ctest sweep passes the
// trace-affecting directories).

void check_nondet_iteration(const SourceFile& f, const FlatText& ft,
                            std::vector<Diagnostic>& diags) {
  std::set<std::string> tainted;
  static const char* kUnordered[] = {"unordered_map", "unordered_set",
                                     "unordered_multimap",
                                     "unordered_multiset"};
  auto collect_after_template = [&](std::size_t p, const char* what) {
    // `unordered_map<K, V> name` — find the '>' closing the template
    // argument list, then the declared identifier.
    std::size_t i = ft.text.find('<', p);
    if (i == std::string::npos) return;
    int depth = 0;
    for (; i < ft.text.size(); ++i) {
      if (ft.text[i] == '<') ++depth;
      if (ft.text[i] == '>' && --depth == 0) break;
    }
    if (i >= ft.text.size()) return;
    std::size_t q = i + 1;
    while (q < ft.text.size() &&
           (std::isspace(static_cast<unsigned char>(ft.text[q])) ||
            ft.text[q] == '&'))
      ++q;
    std::size_t b = q;
    while (q < ft.text.size() && ident_char(ft.text[q])) ++q;
    if (q > b) {
      tainted.insert(ft.text.substr(b, q - b));
      (void)what;
    }
  };
  for (const char* u : kUnordered) {
    for (std::size_t p = find_word(ft.text, u); p != std::string::npos;
         p = find_word(ft.text, u, p + 1)) {
      collect_after_template(p, u);
    }
  }
  // Pointer-keyed std::map / std::set: `map<T*, ...>` / `set<T*>`.
  for (const char* m : {"map", "set", "multimap", "multiset"}) {
    for (std::size_t p = find_word(ft.text, m); p != std::string::npos;
         p = find_word(ft.text, m, p + 1)) {
      std::size_t i = p + std::strlen(m);
      if (i >= ft.text.size() || ft.text[i] != '<') continue;
      // First template argument, up to ',' or matching '>'.
      std::size_t j = i + 1;
      int depth = 0;
      std::string key;
      for (; j < ft.text.size(); ++j) {
        const char c = ft.text[j];
        if (c == '<') ++depth;
        if (c == '>' && depth-- == 0) break;
        if (c == ',' && depth == 0) break;
        key += c;
      }
      if (key.find('*') != std::string::npos) collect_after_template(p, m);
    }
  }
  if (tainted.empty()) return;
  // Range-for over a tainted variable: `for (... : name)`.
  for (std::size_t p = find_word(ft.text, "for"); p != std::string::npos;
       p = find_word(ft.text, "for", p + 1)) {
    std::size_t q = ft.text.find('(', p);
    if (q == std::string::npos) continue;
    const std::size_t close = match_paren(ft.text, q);
    if (close == std::string::npos) continue;
    const std::string head = ft.text.substr(q, close - q);
    // The range-for ':' — a single colon, not part of a '::' qualifier.
    std::size_t colon = std::string::npos;
    for (std::size_t c = 1; c + 1 < head.size(); ++c) {
      if (head[c] == ':' && head[c - 1] != ':' && head[c + 1] != ':') {
        colon = c;
        break;
      }
    }
    if (colon == std::string::npos) continue;
    std::string range = head.substr(colon + 1);
    range.erase(std::remove_if(range.begin(), range.end(), ::isspace),
                range.end());
    if (tainted.count(range)) {
      emit(diags, f, ft.line_of[p], ft.col_of[p],
           "rrtcp-nondeterministic-iteration",
           "iteration order over '" + range +
               "' depends on hashing/pointer values and is not replayable");
    }
  }
  // Explicit iterator loops: name.begin().
  for (const std::string& name : tainted) {
    const std::string pat = name + ".begin";
    for (std::size_t p = ft.text.find(pat); p != std::string::npos;
         p = ft.text.find(pat, p + 1)) {
      if (!word_at(ft.text, p, name)) continue;
      emit(diags, f, ft.line_of[p], ft.col_of[p],
           "rrtcp-nondeterministic-iteration",
           "iteration order over '" + name +
               "' depends on hashing/pointer values and is not replayable");
    }
  }
}

// ---------------------------------------------------------------------------
// rrtcp-smallfn-inline
//
// At schedule_at/schedule_in call sites taking a lambda, estimate the
// by-value capture footprint from visible declarations (char arrays and
// std::array<char, N>); flag estimates above the inline budget. Purely
// size-visible cases only — the plugin computes real sizeof.

void check_smallfn_inline(const SourceFile& f, const FlatText& ft,
                          std::vector<Diagnostic>& diags) {
  constexpr std::size_t kInlineBytes = 160;
  // Visible fixed-size char buffers: name -> bytes.
  std::map<std::string, std::size_t> buffers;
  for (std::size_t p = find_word(ft.text, "char"); p != std::string::npos;
       p = find_word(ft.text, "char", p + 1)) {
    std::size_t q = p + 4;
    while (q < ft.text.size() &&
           std::isspace(static_cast<unsigned char>(ft.text[q])))
      ++q;
    std::size_t b = q;
    while (q < ft.text.size() && ident_char(ft.text[q])) ++q;
    if (q == b || q >= ft.text.size() || ft.text[q] != '[') continue;
    const std::string name = ft.text.substr(b, q - b);
    std::size_t bytes = 0;
    for (std::size_t j = q + 1; j < ft.text.size() && ft.text[j] != ']'; ++j)
      if (std::isdigit(static_cast<unsigned char>(ft.text[j])))
        bytes = bytes * 10 + static_cast<std::size_t>(ft.text[j] - '0');
    if (bytes > 0) buffers[name] = bytes;
  }
  if (buffers.empty()) return;
  for (const char* call : {"schedule_at", "schedule_in"}) {
    for (std::size_t p = find_word(ft.text, call); p != std::string::npos;
         p = find_word(ft.text, call, p + 1)) {
      const std::size_t open = ft.text.find('(', p);
      if (open == std::string::npos) continue;
      const std::size_t close = match_paren(ft.text, open);
      if (close == std::string::npos) continue;
      const std::string args = ft.text.substr(open, close - open);
      // Lambda capture list inside the argument text.
      const std::size_t lb = args.find('[');
      if (lb == std::string::npos) continue;
      const std::size_t rb = args.find(']', lb);
      if (rb == std::string::npos) continue;
      std::size_t estimate = 0;
      std::string captured_big;
      std::string item;
      std::stringstream caps(args.substr(lb + 1, rb - lb - 1));
      while (std::getline(caps, item, ',')) {
        item.erase(std::remove_if(item.begin(), item.end(), ::isspace),
                   item.end());
        if (item.empty() || item[0] == '&') continue;  // by-reference
        const std::size_t eq = item.find('=');
        if (eq != std::string::npos) item = item.substr(0, eq);
        auto it = buffers.find(item);
        if (it != buffers.end()) {
          estimate += it->second;
          captured_big = item;
        }
      }
      if (estimate > kInlineBytes) {
        emit(diags, f, ft.line_of[p], ft.col_of[p], "rrtcp-smallfn-inline",
             "callable captures '" + captured_big + "' by value (~" +
                 std::to_string(estimate) + " bytes > " +
                 std::to_string(kInlineBytes) +
                 "-byte inline budget); the event will heap-allocate");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// rrtcp-wall-clock
//
// Transport/simulation code must never read wall time: the sim clock is
// Simulator::now() and the live clock is LiveEnvironment's rebased
// CLOCK_MONOTONIC. Bans gettimeofday, clock_gettime, std::chrono::
// system_clock, and the time(nullptr) idiom everywhere except src/live —
// the one translation layer allowed to touch a real (monotonic) clock.
// std::chrono::steady_clock stays legal: harness/bench measurement of
// host elapsed time is not simulated time.

void check_wall_clock(const SourceFile& f, const FlatText& ft,
                      std::vector<Diagnostic>& diags) {
  if (f.path.find("src/live") != std::string::npos) return;
  struct Banned {
    const char* word;
    const char* why;
  };
  static const Banned kBanned[] = {
      {"gettimeofday",
       "wall-clock syscall outside src/live; read the environment clock "
       "(env::Environment::now) instead"},
      {"clock_gettime",
       "raw clock syscall outside src/live; even CLOCK_MONOTONIC belongs "
       "behind the environment clock"},
      {"system_clock",
       "std::chrono::system_clock is wall time and not replayable; use the "
       "environment clock (or steady_clock for host-side measurement)"},
  };
  for (const Banned& b : kBanned) {
    for (std::size_t p = find_word(ft.text, b.word); p != std::string::npos;
         p = find_word(ft.text, b.word, p + 1)) {
      emit(diags, f, ft.line_of[p], ft.col_of[p], "rrtcp-wall-clock", b.why);
    }
  }
  // The time(nullptr) wall-clock read (same idiom rrtcp-unnamed-rng flags
  // as seeding; here it is banned as a clock regardless of what the value
  // feeds).
  for (std::size_t p = find_word(ft.text, "time"); p != std::string::npos;
       p = find_word(ft.text, "time", p + 1)) {
    if (p > 0 && (ft.text[p - 1] == '.' ||
                  (p > 1 && ft.text[p - 2] == '-' && ft.text[p - 1] == '>')))
      continue;  // member access: some other API
    std::size_t q = p + 4;
    while (q < ft.text.size() &&
           std::isspace(static_cast<unsigned char>(ft.text[q])))
      ++q;
    if (q >= ft.text.size() || ft.text[q] != '(') continue;
    const std::size_t close = match_paren(ft.text, q);
    if (close == std::string::npos) continue;
    std::string arg = ft.text.substr(q + 1, close - q - 1);
    arg.erase(std::remove_if(arg.begin(), arg.end(), ::isspace), arg.end());
    if (arg == "nullptr" || arg == "0" || arg == "NULL") {
      emit(diags, f, ft.line_of[p], ft.col_of[p], "rrtcp-wall-clock",
           "time() reads the wall clock; transport code takes its clock "
           "from env::Environment::now");
    }
  }
}

// ---------------------------------------------------------------------------
// rrtcp-sim-time-equality
//
// Flags == / != where either side of the operator (on the same logical
// statement) is a floating sim-time expression — recognized by a
// to_seconds()/to_double() call feeding the comparison.

void check_sim_time_equality(const SourceFile& f, const FlatText& ft,
                             std::vector<Diagnostic>& diags) {
  // Statement-granular scan: split on ';' and compare within fragments.
  std::size_t start = 0;
  for (std::size_t i = 0; i <= ft.text.size(); ++i) {
    if (i != ft.text.size() && ft.text[i] != ';') continue;
    const std::string stmt = ft.text.substr(start, i - start);
    const std::size_t stmt_off = start;
    start = i + 1;
    const std::size_t secs = stmt.find("to_seconds()");
    if (secs == std::string::npos) continue;
    for (std::size_t p = 0; p + 1 < stmt.size(); ++p) {
      const char a = stmt[p];
      const char b = stmt[p + 1];
      const bool eq = a == '=' && b == '=';
      const bool ne = a == '!' && b == '=';
      if (!eq && !ne) continue;
      if (p > 0 && (stmt[p - 1] == '<' || stmt[p - 1] == '>' ||
                    stmt[p - 1] == '=' || stmt[p - 1] == '!'))
        continue;
      if (p + 2 < stmt.size() && stmt[p + 2] == '=') continue;
      const std::size_t off = stmt_off + p;
      emit(diags, f, ft.line_of[off], ft.col_of[off],
           "rrtcp-sim-time-equality",
           "exact floating comparison of sim-time seconds; compare Time "
           "values (integer picoseconds) or use an explicit tolerance");
      break;  // one diagnostic per statement is enough
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: rrtcp_tidy_lite <file>...\n"
                   "Token-level fallback for the rrtcp clang-tidy checks.\n"
                   "Prints clang-tidy-style diagnostics; exit 1 if any.\n";
      return 0;
    }
    files.push_back(arg);
  }
  if (files.empty()) {
    std::cerr << "rrtcp_tidy_lite: no input files\n";
    return 2;
  }

  std::vector<SourceFile> sources;
  std::vector<FlatText> flats;
  HotAnalyzer hot;
  for (const std::string& path : files) {
    sources.push_back(load(path));
    flats.push_back(flatten(sources.back()));
    hot.collect(flats.back());
  }

  std::vector<Diagnostic> diags;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    hot.analyze(sources[i], flats[i], diags);
    check_unnamed_rng(sources[i], flats[i], diags);
    check_nondet_iteration(sources[i], flats[i], diags);
    check_smallfn_inline(sources[i], flats[i], diags);
    check_wall_clock(sources[i], flats[i], diags);
    check_sim_time_equality(sources[i], flats[i], diags);
  }

  for (const Diagnostic& d : diags) {
    std::printf("%s:%zu:%zu: warning: %s [%s]\n", d.file.c_str(), d.line,
                d.col, d.message.c_str(), d.check.c_str());
  }
  return diags.empty() ? 0 : 1;
}
