// Fuzz soak: seeded scenario-fuzzing campaigns with the full oracle stack
// (audit invariants, liveness watchdog, dead-flow check, double-run
// determinism, timer-wheel/heap engine equivalence), delta-debugging
// shrinking of every new failure bucket, and replayable repro emission.
//
// Usage:
//   fuzz_soak [--cases=N] [--seed=S] [--threads=N] [--csv=PATH]
//             [--json=PATH] [--corpus-out=DIR] [--mutant=NAME]
//             [--mutant-every=K] [--no-shrink] [--no-determinism]
//             [--no-equivalence] [--budget-s=T] [--quick]
//   fuzz_soak --replay=PATH        # re-run a repro file, grade `expect`
//   fuzz_soak --replay=0xSEED      # re-run a chaos-soak schedule seed
//   fuzz_soak --list-mutants
//
// Exit code: with no --mutant, 0 iff the campaign found nothing (the
// steady-state expectation); with --mutant, 0 iff the injected bug was
// caught in at least one bucket naming that mutant (the teeth test).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fuzz/campaign.hpp"
#include "fuzz/mutants.hpp"
#include "fuzz/replay.hpp"
#include "harness/result_sink.hpp"

namespace {

using namespace rrtcp;  // NOLINT(google-build-using-namespace)

[[noreturn]] void usage(const char* bad) {
  std::fprintf(
      stderr,
      "unknown argument: %s\n"
      "usage: fuzz_soak [--cases=N] [--seed=S] [--threads=N] [--csv=PATH]\n"
      "                 [--json=PATH] [--corpus-out=DIR] [--mutant=NAME]\n"
      "                 [--mutant-every=K] [--no-shrink] [--no-determinism]\n"
      "                 [--no-equivalence] [--budget-s=T] [--quick]\n"
      "                 [--replay=PATH|0xSEED] [--list-mutants]\n",
      bad);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  fuzz::CampaignOptions opts;
  std::string csv_path;
  std::string json_path;
  std::string corpus_out;
  std::string replay_arg;
  bool quick = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    char* end = nullptr;
    if (const char* v = value_of("--cases=")) {
      opts.n_cases = std::strtoull(v, &end, 10);
      if (end == v || *end != '\0' || opts.n_cases < 1) usage(argv[i]);
    } else if (const char* v = value_of("--seed=")) {
      opts.seed = std::strtoull(v, &end, 0);
      if (end == v || *end != '\0') usage(argv[i]);
    } else if (const char* v = value_of("--threads=")) {
      opts.threads = static_cast<int>(std::strtol(v, &end, 10));
      if (end == v || *end != '\0') usage(argv[i]);
    } else if (const char* v = value_of("--csv=")) {
      csv_path = v;
    } else if (const char* v = value_of("--json=")) {
      json_path = v;
    } else if (const char* v = value_of("--corpus-out=")) {
      corpus_out = v;
    } else if (const char* v = value_of("--mutant=")) {
      if (!fuzz::is_mutant(v)) {
        std::fprintf(stderr, "unknown mutant '%s' (try --list-mutants)\n", v);
        return 2;
      }
      opts.mutant = v;
    } else if (const char* v = value_of("--mutant-every=")) {
      opts.mutant_every = std::strtoull(v, &end, 10);
      if (end == v || *end != '\0' || opts.mutant_every < 1) usage(argv[i]);
    } else if (arg == "--no-shrink") {
      opts.shrink = false;
    } else if (arg == "--no-determinism") {
      opts.run.check_determinism = false;
    } else if (arg == "--no-equivalence") {
      opts.run.check_equivalence = false;
    } else if (const char* v = value_of("--budget-s=")) {
      opts.budget_seconds = std::strtod(v, &end);
      if (end == v || *end != '\0' || opts.budget_seconds <= 0.0)
        usage(argv[i]);
    } else if (arg == "--quick") {
      quick = true;
    } else if (const char* v = value_of("--replay=")) {
      replay_arg = v;
    } else if (arg == "--list-mutants") {
      for (const std::string_view name : fuzz::mutant_names())
        std::printf("%.*s\n", static_cast<int>(name.size()), name.data());
      return 0;
    } else {
      usage(argv[i]);
    }
  }

  if (!replay_arg.empty()) return fuzz::replay_main(replay_arg);
  if (quick) opts.n_cases = std::min<std::uint64_t>(opts.n_cases, 25);

  const fuzz::CampaignResult result = fuzz::run_campaign(opts);

  if (!csv_path.empty())
    harness::write_file(csv_path, result.sink->to_csv());
  if (!json_path.empty())
    harness::write_file(json_path,
                        result.sink->to_json("fuzz_soak", opts.seed));

  std::printf(
      "fuzz soak: %llu case(s) run, %llu skipped (budget), %llu failing, "
      "%zu bucket(s), %.1fs wall on %d thread(s)\n",
      static_cast<unsigned long long>(result.cases_run),
      static_cast<unsigned long long>(result.cases_skipped),
      static_cast<unsigned long long>(result.cases_failed),
      result.triage.n_buckets(), result.timing.wall_seconds,
      result.timing.threads);
  if (!result.triage.empty()) {
    std::printf("%s", result.triage.report().c_str());
    if (!corpus_out.empty()) {
      const int written = result.triage.write_corpus(corpus_out);
      if (written < 0) {
        std::fprintf(stderr, "failed writing corpus to %s\n",
                     corpus_out.c_str());
        return 2;
      }
      std::printf("wrote %d repro file(s) to %s (replay: fuzz_soak "
                  "--replay=%s/<bucket>.repro)\n",
                  written, corpus_out.c_str(), corpus_out.c_str());
    }
  }

  if (!opts.mutant.empty()) {
    // Teeth test: the injected bug must surface in a bucket naming it.
    bool caught = false;
    for (const auto& [key, t] : result.triage.buckets())
      caught |= key.size() >= opts.mutant.size() &&
                key.compare(key.size() - opts.mutant.size(),
                            opts.mutant.size(), opts.mutant) == 0;
    std::printf("mutant '%s': %s\n", opts.mutant.c_str(),
                caught ? "CAUGHT" : "MISSED");
    return caught ? 0 : 1;
  }
  return result.triage.empty() ? 0 : 1;
}
