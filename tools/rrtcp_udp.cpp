// rrtcp_udp: the live embodiment as a command-line pair.
//
// The same TcpSenderBase variants and TcpReceiver that run in the
// simulator, driven over a real UDP socket through live::LiveEnvironment.
//
//   # terminal 1: receive 1 MB on port 9000
//   rrtcp_udp server --port=9000 --bytes=1000000 --variant=rr
//   # terminal 2: send it
//   rrtcp_udp client --connect=127.0.0.1:9000 --bytes=1000000 --variant=rr
//
// Both sides exit 0 on a completed transfer and 1 on timeout or error,
// printing a one-line machine-greppable summary either way. --fault adds a
// deterministic ingress drop filter (chaos::FaultSpec text form, e.g.
// --fault='kind=outage start=1000000000000 duration=500000000000') for
// recovery demos under real loss.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "app/sender_factory.hpp"
#include "app/variant.hpp"
#include "chaos/fault.hpp"
#include "live/live_env.hpp"
#include "sim/log.hpp"
#include "tcp/receiver.hpp"
#include "tcp/sender_base.hpp"

namespace {

using namespace rrtcp;

struct Options {
  bool server = false;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;          // server: bind port; client: peer port
  std::uint64_t bytes = 100'000;
  app::Variant variant = app::Variant::kRr;
  double timeout_s = 30.0;
  bool verbose = false;
  chaos::FaultPlan faults;
  std::uint64_t fault_seed = 1;
};

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: rrtcp_udp server --port=P [options]\n"
               "       rrtcp_udp client --connect=HOST:PORT [options]\n"
               "options:\n"
               "  --bytes=N        transfer size in bytes (default 100000)\n"
               "  --variant=NAME   TCP variant (default rr)\n"
               "  --timeout=SECS   give up after this long (default 30)\n"
               "  --fault=SPEC     ingress drop filter, FaultSpec text form\n"
               "                   (repeatable)\n"
               "  --fault-seed=N   seed for probabilistic fault kinds\n"
               "  --verbose        trace-level logging\n"
               "  --list-variants  print the variant registry and exit\n");
}

bool parse_hostport(std::string_view s, std::string* host,
                    std::uint16_t* port) {
  const std::size_t colon = s.rfind(':');
  if (colon == std::string_view::npos || colon + 1 >= s.size()) return false;
  *host = std::string(s.substr(0, colon));
  const long p = std::atol(std::string(s.substr(colon + 1)).c_str());
  if (p <= 0 || p > 65535) return false;
  *port = static_cast<std::uint16_t>(p);
  return true;
}

bool parse_args(int argc, char** argv, Options* o) {
  if (argc < 2) return false;
  const std::string_view mode = argv[1];
  if (mode == "--list-variants") {
    app::SenderFactory::instance().print_registry(stdout);
    std::exit(0);
  }
  if (mode == "server")
    o->server = true;
  else if (mode == "client")
    o->server = false;
  else
    return false;

  for (int i = 2; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto value = [&arg](std::string_view key) -> const char* {
      if (arg.size() > key.size() && arg.substr(0, key.size()) == key &&
          arg[key.size()] == '=')
        return arg.data() + key.size() + 1;
      return nullptr;
    };
    if (const char* v = value("--port")) {
      o->port = static_cast<std::uint16_t>(std::atoi(v));
    } else if (const char* v = value("--connect")) {
      if (!parse_hostport(v, &o->host, &o->port)) return false;
    } else if (const char* v = value("--bytes")) {
      o->bytes = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--variant")) {
      try {
        o->variant = app::variant_from_string(v);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return false;
      }
    } else if (const char* v = value("--timeout")) {
      o->timeout_s = std::atof(v);
    } else if (const char* v = value("--fault")) {
      chaos::FaultSpec spec;
      if (!chaos::FaultSpec::from_text(v, &spec)) {
        std::fprintf(stderr, "bad --fault spec: %s\n", v);
        return false;
      }
      o->faults.faults.push_back(spec);
    } else if (const char* v = value("--fault-seed")) {
      o->fault_seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--verbose") {
      o->verbose = true;
    } else if (arg == "--list-variants") {
      app::SenderFactory::instance().print_registry(stdout);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      return false;
    }
  }
  if (o->server && o->port == 0) {
    std::fprintf(stderr, "server needs --port\n");
    return false;
  }
  if (!o->server && o->port == 0) {
    std::fprintf(stderr, "client needs --connect=HOST:PORT\n");
    return false;
  }
  return true;
}

constexpr net::FlowId kFlow = 1;

int run_server(const Options& o) {
  live::LiveConfig lc;
  lc.bind_addr = "0.0.0.0";
  lc.bind_port = o.port;
  lc.local_id = 1;
  lc.peer_id = 0;
  lc.faults = o.faults;
  lc.fault_seed = o.fault_seed;
  live::LiveEnvironment env{lc};

  tcp::ReceiverConfig rcfg;
  rcfg.sack_enabled = app::SenderFactory::instance().at(o.variant).sack_receiver;
  tcp::TcpReceiver receiver{env, kFlow, rcfg};

  std::fprintf(stderr, "rrtcp_udp server: port=%u expecting %llu B (%s)\n",
               env.local_port(),
               static_cast<unsigned long long>(o.bytes),
               app::SenderFactory::instance().name_of(o.variant));

  const bool ok = env.run_until(
      [&] { return receiver.rcv_nxt() >= o.bytes; },
      sim::Time::seconds(o.timeout_s));

  std::printf(
      "server done=%d bytes=%llu acks=%llu dupacks=%llu ooo=%llu "
      "rx=%llu tx=%llu filtered=%llu t=%.3fs\n",
      ok ? 1 : 0, static_cast<unsigned long long>(receiver.rcv_nxt()),
      static_cast<unsigned long long>(receiver.stats().acks_sent),
      static_cast<unsigned long long>(receiver.stats().dupacks_sent),
      static_cast<unsigned long long>(receiver.stats().out_of_order),
      static_cast<unsigned long long>(env.datagrams_received()),
      static_cast<unsigned long long>(env.datagrams_sent()),
      static_cast<unsigned long long>(env.filtered_drops()),
      env.now().to_seconds());
  return ok ? 0 : 1;
}

int run_client(const Options& o) {
  live::LiveConfig lc;
  lc.bind_port = 0;
  lc.peer_addr = o.host;
  lc.peer_port = o.port;
  lc.local_id = 0;
  lc.peer_id = 1;
  lc.faults = o.faults;
  lc.fault_seed = o.fault_seed;
  live::LiveEnvironment env{lc};

  auto sender =
      app::SenderFactory::instance().make(o.variant, env, kFlow, {});
  sender->set_app_bytes(o.bytes);
  sender->start();

  std::fprintf(stderr, "rrtcp_udp client: %s:%u sending %llu B (%s)\n",
               o.host.c_str(), o.port,
               static_cast<unsigned long long>(o.bytes),
               sender->variant_name());

  const bool ok = env.run_until([&] { return sender->complete(); },
                                sim::Time::seconds(o.timeout_s));

  const tcp::SenderStats& s = sender->stats();
  std::printf(
      "client done=%d bytes=%llu sent=%llu rtx=%llu timeouts=%llu "
      "fast_rtx=%llu rx=%llu tx=%llu t=%.3fs\n",
      ok ? 1 : 0, static_cast<unsigned long long>(sender->snd_una()),
      static_cast<unsigned long long>(s.data_packets_sent),
      static_cast<unsigned long long>(s.retransmissions),
      static_cast<unsigned long long>(s.timeouts),
      static_cast<unsigned long long>(s.fast_retransmits),
      static_cast<unsigned long long>(env.datagrams_received()),
      static_cast<unsigned long long>(env.datagrams_sent()),
      env.now().to_seconds());
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  if (!parse_args(argc, argv, &o)) {
    usage(stderr);
    return 2;
  }
  if (o.verbose) sim::Log::set_level(sim::LogLevel::kTrace);
  try {
    return o.server ? run_server(o) : run_client(o);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rrtcp_udp: %s\n", e.what());
    return 1;
  }
}
