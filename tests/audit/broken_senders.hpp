// Test-only mutants of RrSender that re-introduce the classic accounting
// bugs the paper's design rules out. Each subclass breaks exactly one rule;
// tests/audit/test_mutation_checks.cpp asserts that the InvariantAuditor
// catches every one by its specific invariant ID — the proof that the audit
// layer has teeth and is not a tautology over the implementation.
#pragma once

#include "core/rr_sender.hpp"

namespace rrtcp::test {

// Bug: treats cwnd as the transmission controller during the probe
// sub-phase — the very over-count (dormant + dropped packets included) the
// paper's actnum replaces. Each dup ACK bursts new data up to cwnd instead
// of releasing exactly one self-clocked packet.
// Expected catch: RR_PROBE_CLOCK.
class BrokenDormantCountingSender : public core::RrSender {
 public:
  using core::RrSender::RrSender;

 protected:
  void handle_dup_ack(const net::TcpHeader& h) override {
    core::RrSender::handle_dup_ack(h);
    if (in_probe()) {
      // "cwnd says there is room" — but cwnd counts dormant packets, so
      // each dup ACK bursts instead of releasing one self-clocked packet.
      send_one_new_segment(true);
      send_one_new_segment(true);
    }
  }
};

// Bug: skips the retreat back-off — sends one new packet per dup ACK in
// the first RTT instead of one per two, treating the loss burst as many
// congestion signals' worth of self-clocking instead of one.
// Expected catch: RR_RETREAT_HALF.
class BrokenRetreatSender : public core::RrSender {
 public:
  using core::RrSender::RrSender;

 protected:
  void handle_dup_ack(const net::TcpHeader& h) override {
    const long before = sent_in_retreat();
    core::RrSender::handle_dup_ack(h);
    if (in_retreat() && sent_in_retreat() == before) {
      send_one_new_segment(true);  // full rate: no halving
    }
  }
};

// Bug: exits recovery on the stale pre-loss cwnd instead of actnum x MSS —
// New-Reno's deflate-to-ssthresh mistake in its worst form. The restored
// window counts packets that are dormant at the receiver or dropped, so the
// exit ACK releases a line-rate burst.
// Expected catch: WND_GROWTH (the restore is window the sender never
// earned), with the burst itself visible to RR_EXIT_BURST.
class BrokenExitSender : public core::RrSender {
 public:
  using core::RrSender::RrSender;

 protected:
  void handle_dup_ack(const net::TcpHeader& h) override {
    const bool was = in_recovery();
    core::RrSender::handle_dup_ack(h);
    if (!was && in_recovery()) stale_cwnd_ = cwnd_bytes();
  }

  void handle_new_ack(const net::TcpHeader& h,
                      std::uint64_t newly_acked) override {
    const bool was = in_recovery();
    core::RrSender::handle_new_ack(h, newly_acked);
    if (was && !in_recovery() && stale_cwnd_ > 0) {
      set_cwnd(stale_cwnd_);  // "restore" the pre-loss window
      send_new_data();
    }
  }

 private:
  std::uint64_t stale_cwnd_ = 0;
};

// Bug: undoes the entrance ssthresh halving — the sender keeps its old
// slow-start threshold through recovery, so after exit it climbs straight
// back into the regime that just caused the loss.
// Expected catch: RR_SSTHRESH_HALVE.
class BrokenSsthreshSender : public core::RrSender {
 public:
  using core::RrSender::RrSender;

 protected:
  void handle_dup_ack(const net::TcpHeader& h) override {
    const bool was = in_recovery();
    const std::uint64_t pre = ssthresh_bytes();
    core::RrSender::handle_dup_ack(h);
    if (!was && in_recovery()) set_ssthresh(pre);  // un-halve
  }
};

}  // namespace rrtcp::test
