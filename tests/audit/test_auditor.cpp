// Mechanism tests for the audit layer itself: session bookkeeping (record
// vs abort modes, violation capture, assert-context registration) and the
// queue auditor's accounting cross-checks, including a deliberately lying
// queue that proves Q_CONSERVE is checked against the event stream rather
// than trusted from the queue's own stats.
#include <gtest/gtest.h>

#include <deque>
#include <optional>

#include "../testutil.hpp"
#include "audit/invariant_auditor.hpp"
#include "broken_senders.hpp"
#include "net/drop_tail.hpp"
#include "net/red.hpp"
#include "sim/simulator.hpp"

namespace rrtcp::audit {
namespace {

[[maybe_unused]] tcp::TcpConfig cwnd(std::uint64_t pkts) {
  tcp::TcpConfig cfg;
  cfg.init_cwnd_pkts = pkts;
  return cfg;
}

// A queue whose stats lie: admissions bypass the stats counter while still
// emitting the observer event, exactly the kind of silent accounting drift
// the auditor exists to catch.
class LyingQueue final : public net::QueueDisc {
 public:
  bool enqueue(net::Packet p) override {
    q_.push_back(std::move(p));  // "forgets" ++stats_.enqueued
    note_enqueue(q_.back());
    return true;
  }
  std::optional<net::Packet> dequeue() override {
    if (q_.empty()) return std::nullopt;
    net::Packet p = std::move(q_.front());
    q_.pop_front();
    ++stats_.dequeued;
    note_dequeue(p);
    return p;
  }
  std::size_t len_packets() const override { return q_.size(); }
  std::uint64_t len_bytes() const override { return 0; }

 private:
  std::deque<net::Packet> q_;
};

TEST(AuditSessionTest, DropTailAccountingIsClean) {
  sim::Simulator sim;
  net::DropTailQueue q{2};
  AuditSession session{sim, AuditSession::FailMode::kRecord};
  session.attach_queue(q, "dt");
  EXPECT_TRUE(q.enqueue(test::make_data(1, 0, 1000)));
  EXPECT_TRUE(q.enqueue(test::make_data(1, 1000, 1000)));
  EXPECT_FALSE(q.enqueue(test::make_data(1, 2000, 1000)));  // overflow
  EXPECT_TRUE(q.dequeue().has_value());
  EXPECT_TRUE(q.dequeue().has_value());
  EXPECT_FALSE(q.dequeue().has_value());
  EXPECT_TRUE(session.clean());
}

TEST(AuditSessionTest, LyingQueueStatsTripQueueConserve) {
  sim::Simulator sim;
  LyingQueue q;
  AuditSession session{sim, AuditSession::FailMode::kRecord};
  session.attach_queue(q, "liar");
  q.enqueue(test::make_data(1, 0, 1000));
  EXPECT_GT(session.count(InvariantId::kQueueConserve), 0u);
}

TEST(AuditSessionTest, RedQueueUnderLoadIsClean) {
  sim::Simulator sim;
  net::RedConfig cfg;  // paper Table 4 defaults: buffer 25, th 5/20
  net::RedQueue q{sim, cfg};
  AuditSession session{sim, AuditSession::FailMode::kRecord};
  session.attach_queue(q, "red");
  // Push the queue through empty -> congested -> drained so the average
  // crosses min_th and early drops occur, all of which must self-account.
  std::uint64_t seq = 0;
  for (int round = 0; round < 40; ++round) {
    for (int burst = 0; burst < 4; ++burst)
      q.enqueue(test::make_data(1, (seq++) * 1000, 1000));
    q.dequeue();
  }
  while (q.dequeue().has_value()) {
  }
  EXPECT_GT(q.stats().dropped, 0u);  // the scenario actually exercised drops
  EXPECT_TRUE(session.clean());
}

TEST(AuditSessionTest, ViolationsRecordIdTimeAndDetail) {
  sim::Simulator sim;
  LyingQueue q;
  AuditSession session{sim, AuditSession::FailMode::kRecord};
  session.attach_queue(q, "liar");
  q.enqueue(test::make_data(1, 0, 1000));
  ASSERT_FALSE(session.clean());
  const Violation& v = session.violations().front();
  EXPECT_EQ(v.id, InvariantId::kQueueConserve);
  EXPECT_FALSE(v.detail.empty());
  EXPECT_EQ(session.total_violations(), session.violations().size());
}

TEST(AuditSessionTest, EveryInvariantHasNameAndCitation) {
  for (int i = 0; i < static_cast<int>(InvariantId::kCount); ++i) {
    const auto id = static_cast<InvariantId>(i);
    EXPECT_NE(to_string(id), nullptr);
    EXPECT_GT(std::string(to_string(id)).size(), 0u);
    EXPECT_GT(std::string(citation(id)).size(), 0u);
  }
}

#if GTEST_HAS_DEATH_TEST
[[maybe_unused]] void drive_broken_ssthresh_abort() {
  test::SenderHarness<test::BrokenSsthreshSender> h{cwnd(10)};
  AuditSession session{h.sim, AuditSession::FailMode::kAbort};
  session.attach(h.sender());
  h.sender().start();
  h.dupacks(3);  // mutant un-halves ssthresh at entry
}

TEST(AuditSessionDeathTest, AbortModeDiesLoudlyWithInvariantName) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ASSERT_DEATH(drive_broken_ssthresh_abort(), "RR_SSTHRESH_HALVE");
}
#endif  // GTEST_HAS_DEATH_TEST

}  // namespace
}  // namespace rrtcp::audit
