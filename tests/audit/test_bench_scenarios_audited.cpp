// Every bench family, replayed at test scale under an EXPLICIT recording
// AuditSession — independent of the RRTCP_AUDIT build flag, so the full
// invariant set runs against the real scenarios in every CI configuration.
// The assertion in each test is the acceptance criterion: zero violations.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "app/flow_factory.hpp"
#include "app/ftp.hpp"
#include "audit/invariant_auditor.hpp"
#include "net/drop_tail.hpp"
#include "net/dumbbell.hpp"
#include "net/loss_model.hpp"
#include "net/red.hpp"
#include "sim/simulator.hpp"

namespace rrtcp::audit {
namespace {

struct AuditedScenario {
  std::vector<app::Variant> variants;  // one flow per entry
  std::optional<std::uint64_t> bytes = 100'000;
  sim::Time stagger = sim::Time::zero();
  sim::Time horizon = sim::Time::seconds(60);
  // Bottleneck queue factory (default: the topology's drop-tail).
  std::function<std::unique_ptr<net::QueueDisc>(sim::Simulator&)> make_queue;
  std::function<std::unique_ptr<net::LossModel>()> make_loss;
  std::function<std::unique_ptr<net::LossModel>()> make_ack_loss;
};

// Builds the paper dumbbell, runs it with a recording session attached to
// every flow and both bottleneck queues, and returns the session verdict.
std::uint64_t audited_violations(const AuditedScenario& s) {
  sim::Simulator sim;
  net::DumbbellConfig netcfg;
  netcfg.n_flows = static_cast<int>(s.variants.size());
  if (s.make_queue)
    netcfg.make_bottleneck_queue = [&] { return s.make_queue(sim); };
  net::DumbbellTopology topo{sim, netcfg};
  if (s.make_loss) topo.bottleneck().set_loss_model(s.make_loss());
  if (s.make_ack_loss)
    topo.reverse_bottleneck().set_loss_model(s.make_ack_loss());

  std::vector<app::Flow> flows;
  std::vector<std::unique_ptr<app::FtpSource>> sources;
  for (std::size_t i = 0; i < s.variants.size(); ++i) {
    flows.push_back(app::make_flow(
        s.variants[i], sim, topo.sender_node(static_cast<int>(i)),
        topo.receiver_node(static_cast<int>(i)),
        static_cast<net::FlowId>(i + 1), {}));
    sources.push_back(std::make_unique<app::FtpSource>(
        sim, *flows.back().sender, s.stagger * static_cast<std::int64_t>(i),
        s.bytes));
  }

  AuditSession session{sim, AuditSession::FailMode::kRecord};
  session.attach_topology(topo);
  for (auto& f : flows) session.attach(*f.sender, f.receiver.get());

  sim.run_until(s.horizon);
  if (!session.clean()) session.dump(stderr);
  return session.total_violations();
}

// Fig. 5 family: exact k-packet loss bursts at the drop-tail gateway, every
// paper variant.
TEST(BenchScenariosAudited, Fig5DropTailBurstsAllVariants) {
  for (app::Variant v : app::kAllVariants) {
    for (int burst : {3, 6}) {
      AuditedScenario s;
      s.variants = {v};
      s.make_loss = [burst] {
        std::vector<std::pair<net::FlowId, std::uint64_t>> losses;
        for (int k = 0; k < burst; ++k)
          losses.emplace_back(1, 30'000 + 2000u * static_cast<unsigned>(k));
        return std::make_unique<net::ListLossModel>(losses);
      };
      EXPECT_EQ(audited_violations(s), 0u)
          << "variant=" << app::to_string(v) << " burst=" << burst;
    }
  }
}

// Fig. 6 family: RED gateway (paper Table 4 parameters), competing RR and
// SACK flows, congestion-driven early drops.
TEST(BenchScenariosAudited, Fig6RedGatewayCompetingFlows) {
  AuditedScenario s;
  s.variants = {app::Variant::kRr, app::Variant::kSack, app::Variant::kRr,
                app::Variant::kNewReno};
  s.bytes = std::nullopt;  // long-lived
  s.horizon = sim::Time::seconds(8);
  s.make_queue = [](sim::Simulator& sim) {
    net::RedConfig rc;  // Table 4 values are the defaults
    return std::make_unique<net::RedQueue>(sim, rc);
  };
  EXPECT_EQ(audited_violations(s), 0u);
}

// Fig. 7 family: random loss at a rate high enough to include timeouts —
// the harshest path through the auditor's episode state machine.
TEST(BenchScenariosAudited, Fig7RandomLossWithTimeouts) {
  AuditedScenario s;
  s.variants = {app::Variant::kRr};
  s.bytes = std::nullopt;
  s.horizon = sim::Time::seconds(30);
  s.make_loss = [] {
    return std::make_unique<net::UniformLossModel>(0.03, 42);
  };
  EXPECT_EQ(audited_violations(s), 0u);
}

// Table 5 family: staggered mixed-variant flows sharing a shallow buffer
// (fairness scenario), recovery driven purely by queue overflow.
TEST(BenchScenariosAudited, Table5FairnessSharedBottleneck) {
  AuditedScenario s;
  s.variants = {app::Variant::kRr, app::Variant::kRr, app::Variant::kSack,
                app::Variant::kReno};
  s.bytes = std::nullopt;
  s.stagger = sim::Time::seconds(0.25);
  s.horizon = sim::Time::seconds(20);
  EXPECT_EQ(audited_violations(s), 0u);
}

// Ablation family: a lost retransmission (rescue/timeout path) combined
// with ACK loss on the reverse path.
TEST(BenchScenariosAudited, AblationLostRetransmissionAndAckLoss) {
  AuditedScenario s;
  s.variants = {app::Variant::kRr};
  s.make_loss = [] {
    return std::make_unique<net::SegmentLossModel>(1, 30'000, 2);
  };
  s.make_ack_loss = [] {
    return std::make_unique<net::UniformLossModel>(0.05, 77,
                                                   /*data_only=*/false);
  };
  EXPECT_EQ(audited_violations(s), 0u);
}

}  // namespace
}  // namespace rrtcp::audit
