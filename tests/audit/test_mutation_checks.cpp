// Teeth tests for the invariant auditor: every BrokenSender mutant in
// broken_senders.hpp re-introduces one classic accounting bug, and each
// test pins that the auditor flags it under the SPECIFIC invariant ID the
// mutation violates. Control tests drive the healthy RrSender through the
// same scenarios and assert a spotless session, so the checks are proven
// both sensitive and precise.
#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "audit/invariant_auditor.hpp"
#include "broken_senders.hpp"
#include "core/rr_sender.hpp"

namespace rrtcp::audit {
namespace {

using test::SenderHarness;

tcp::TcpConfig cwnd(std::uint64_t pkts) {
  tcp::TcpConfig cfg;
  cfg.init_cwnd_pkts = pkts;
  return cfg;
}

// Attaches a recording session to a harness-driven sender.
template <typename SenderT>
struct AuditedHarness {
  explicit AuditedHarness(tcp::TcpConfig cfg)
      : h{cfg}, session{h.sim, AuditSession::FailMode::kRecord} {
    session.attach(h.sender());
  }
  SenderHarness<SenderT> h;
  AuditSession session;
};

TEST(MutationChecks, DormantCountingTripsProbeClock) {
  AuditedHarness<test::BrokenDormantCountingSender> a{cwnd(10)};
  a.h.sender().start();
  a.h.dupacks(3);  // entrance: retreat
  a.h.ack(4000);   // first partial ACK: probe
  a.h.dupacks(2);  // mutant bursts 3 new packets per dup ACK
  EXPECT_GT(a.session.count(InvariantId::kRrProbeClock), 0u);
}

TEST(MutationChecks, FullRateRetreatTripsRetreatHalf) {
  AuditedHarness<test::BrokenRetreatSender> a{cwnd(10)};
  a.h.sender().start();
  a.h.dupacks(3);  // entrance
  a.h.dupacks(4);  // mutant sends one NEW packet per dup ACK (no back-off)
  EXPECT_GT(a.session.count(InvariantId::kRrRetreatHalf), 0u);
}

TEST(MutationChecks, StaleCwndExitTripsWindowGrowth) {
  AuditedHarness<test::BrokenExitSender> a{cwnd(10)};
  a.h.sender().start();
  a.h.dupacks(3);
  a.h.dupacks(4);   // retreat: 2 new packets
  a.h.ack(4000);    // probe, actnum 2
  a.h.dupacks(2);
  a.h.ack(8000);    // clean boundary, actnum 3
  a.h.dupacks(3);
  a.h.ack(18'000);  // exit, pipe emptied — mutant restores pre-loss window
  EXPECT_GT(a.session.count(InvariantId::kWndGrowth), 0u);
  // The restored over-count also releases a visible line-rate burst.
  EXPECT_GT(a.session.count(InvariantId::kRrExitBurst), 0u);
}

TEST(MutationChecks, UnhalvedSsthreshTripsSsthreshHalve) {
  AuditedHarness<test::BrokenSsthreshSender> a{cwnd(10)};
  a.h.sender().start();
  a.h.dupacks(3);  // entrance — mutant restores the old ssthresh
  EXPECT_GT(a.session.count(InvariantId::kRrSsthreshHalve), 0u);
}

// ---- Controls: the healthy sender through the same journeys is clean. ----

TEST(MutationChecks, CleanSenderFullEpisodeIsViolationFree) {
  AuditedHarness<core::RrSender> a{cwnd(10)};
  a.h.sender().start();
  a.h.dupacks(3);
  a.h.dupacks(4);
  a.h.ack(4000);
  a.h.dupacks(2);
  a.h.ack(8000);
  a.h.dupacks(3);
  a.h.ack(12'000);  // exit: cwnd = actnum * MSS
  if (!a.session.clean()) a.session.dump(stderr);
  EXPECT_TRUE(a.session.clean());
  EXPECT_EQ(a.session.total_violations(), 0u);
}

TEST(MutationChecks, CleanSenderFurtherLossIsViolationFree) {
  AuditedHarness<core::RrSender> a{cwnd(10)};
  a.h.sender().start();
  a.h.dupacks(3);
  a.h.dupacks(5);
  a.h.ack(4000);
  a.h.dupacks(1);   // one retreat packet lost
  a.h.ack(10'000);  // further loss detected via ndup < actnum
  a.h.dupacks(1);
  a.h.ack(13'000);  // exit at the extended recover point
  if (!a.session.clean()) a.session.dump(stderr);
  EXPECT_TRUE(a.session.clean());
}

TEST(MutationChecks, CleanSenderTimeoutAbortIsViolationFree) {
  AuditedHarness<core::RrSender> a{cwnd(10)};
  a.h.sender().start();
  a.h.dupacks(3);
  a.h.sim.run_until(sim::Time::seconds(5));  // RTO abandons recovery
  ASSERT_GE(a.h.sender().stats().timeouts, 1u);
  if (!a.session.clean()) a.session.dump(stderr);
  EXPECT_TRUE(a.session.clean());
}

}  // namespace
}  // namespace rrtcp::audit
