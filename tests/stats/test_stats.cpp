// Tests for the measurement layer: sequence/phase tracers, throughput
// meters, and the table/series printers the benches rely on.
#include <gtest/gtest.h>

#include "stats/table.hpp"
#include "stats/throughput.hpp"
#include "stats/tracer.hpp"

namespace rrtcp::stats {
namespace {

using sim::Time;
using tcp::TcpPhase;

TEST(SeqTracer, ConvertsBytesToPacketNumbers) {
  SeqTracer t{1000};
  t.on_send(Time::seconds(1), 5000, 1000, false);
  t.on_ack(Time::seconds(2), 6000, false);
  ASSERT_EQ(t.sends().size(), 1u);
  EXPECT_EQ(t.sends()[0].seq_pkts, 5u);
  ASSERT_EQ(t.acks().size(), 1u);
  EXPECT_EQ(t.acks()[0].ack_pkts, 6u);
}

TEST(SeqTracer, AckedPacketsAtIsMonotoneStep) {
  SeqTracer t{1000};
  t.on_ack(Time::seconds(1), 2000, false);
  t.on_ack(Time::seconds(3), 5000, false);
  EXPECT_EQ(t.acked_packets_at(Time::seconds(0)), 0u);
  EXPECT_EQ(t.acked_packets_at(Time::seconds(1)), 2u);
  EXPECT_EQ(t.acked_packets_at(Time::seconds(2)), 2u);
  EXPECT_EQ(t.acked_packets_at(Time::seconds(3)), 5u);
  EXPECT_EQ(t.acked_packets_at(Time::seconds(99)), 5u);
}

TEST(SeqTracer, AckSeriesSamplesUniformly) {
  SeqTracer t{1000};
  t.on_ack(Time::seconds(1), 3000, false);
  auto series = t.ack_series(Time::seconds(1), Time::seconds(3));
  ASSERT_EQ(series.size(), 4u);  // t = 0, 1, 2, 3
  EXPECT_EQ(series[0].second, 0u);
  EXPECT_EQ(series[1].second, 3u);
  EXPECT_EQ(series[3].second, 3u);
}

TEST(PhaseTracer, TracksIntervals) {
  PhaseTracer t;
  t.on_phase(Time::seconds(1), TcpPhase::kCongestionAvoidance);
  t.on_phase(Time::seconds(2), TcpPhase::kRetreat);
  t.on_phase(Time::seconds(3), TcpPhase::kProbe);
  t.on_phase(Time::seconds(5), TcpPhase::kCongestionAvoidance);
  ASSERT_EQ(t.intervals().size(), 4u);
  EXPECT_EQ(t.first_recovery_start(), Time::seconds(2));
  EXPECT_EQ(t.last_recovery_end(), Time::seconds(5));
  EXPECT_EQ(t.time_in_recovery(Time::seconds(10)), Time::seconds(3));
}

TEST(PhaseTracer, OpenIntervalClampsToHorizon) {
  PhaseTracer t;
  t.on_phase(Time::seconds(2), TcpPhase::kFastRecovery);
  EXPECT_EQ(t.time_in_recovery(Time::seconds(6)), Time::seconds(4));
  EXPECT_TRUE(t.last_recovery_end().is_infinite());
}

TEST(PhaseTracer, NoRecoveryMeansInfinity) {
  PhaseTracer t;
  t.on_phase(Time::seconds(1), TcpPhase::kSlowStart);
  EXPECT_TRUE(t.first_recovery_start().is_infinite());
  EXPECT_EQ(t.time_in_recovery(Time::seconds(10)), Time::zero());
}

TEST(ThroughputMeter, IgnoresDupAcks) {
  ThroughputMeter m;
  m.on_ack(Time::seconds(1), 1000, false);
  m.on_ack(Time::seconds(2), 1000, true);  // dup: not a progress sample
  m.on_ack(Time::seconds(3), 4000, false);
  EXPECT_EQ(m.bytes_acked_at(Time::seconds(2)), 1000u);
  EXPECT_EQ(m.bytes_acked_between(Time::seconds(1), Time::seconds(3)), 3000u);
}

TEST(ThroughputMeter, ThroughputBps) {
  ThroughputMeter m;
  m.on_ack(Time::seconds(0), 0, false);
  m.on_ack(Time::seconds(10), 100'000, false);
  EXPECT_DOUBLE_EQ(m.throughput_bps(Time::zero(), Time::seconds(10)),
                   80'000.0);
}

TEST(ThroughputMeter, TimeToAck) {
  ThroughputMeter m;
  m.on_ack(Time::seconds(1), 1000, false);
  m.on_ack(Time::seconds(5), 9000, false);
  EXPECT_EQ(m.time_to_ack(500), Time::seconds(1));
  EXPECT_EQ(m.time_to_ack(1000), Time::seconds(1));
  EXPECT_EQ(m.time_to_ack(1001), Time::seconds(5));
  EXPECT_TRUE(m.time_to_ack(10'000).is_infinite());
}

TEST(ThroughputMeter, TimeToAckZeroBytesIsTimeZero) {
  // Zero bytes are trivially acknowledged from the start — NOT at the
  // first sample's timestamp, and not at infinity on an empty meter.
  ThroughputMeter m;
  EXPECT_EQ(m.time_to_ack(0), Time::zero());
  m.on_ack(Time::seconds(3), 1000, false);
  EXPECT_EQ(m.time_to_ack(0), Time::zero());
}

TEST(Table, PrintsAlignedCells) {
  Table t{{"name", "value"}};
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  char buf[512] = {};
  std::FILE* f = fmemopen(buf, sizeof buf, "w");
  t.print(f);
  std::fclose(f);
  const std::string out{buf};
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22222 |"), std::string::npos);
  EXPECT_NE(out.find("+-------+-------+"), std::string::npos);
}

TEST(Table, CellFormats) {
  EXPECT_EQ(Table::cell("%.2f", 3.14159), "3.14");
  EXPECT_EQ(Table::cell("%d%%", 42), "42%");
}

TEST(Series, PrintsGnuplotColumns) {
  char buf[512] = {};
  std::FILE* f = fmemopen(buf, sizeof buf, "w");
  print_series("demo", {"x", "y"}, {{1.0, 2.0}, {10.0, 20.0}}, f);
  std::fclose(f);
  const std::string out{buf};
  EXPECT_NE(out.find("# demo"), std::string::npos);
  EXPECT_NE(out.find("1.00000"), std::string::npos);
  EXPECT_NE(out.find("20.00000"), std::string::npos);
}

TEST(TableDeath, RowWidthMismatchAborts) {
  Table t{{"a", "b"}};
  EXPECT_DEATH(t.add_row({"only-one"}), "row width");
}

}  // namespace
}  // namespace rrtcp::stats
