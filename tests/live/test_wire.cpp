// Wire codec unit tests: exact layout, round-trip fidelity, and strict
// rejection of every malformation class a hostile datagram can carry.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "live/wire.hpp"
#include "net/packet.hpp"

namespace rrtcp::live {
namespace {

net::Packet sample_data() {
  net::Packet p;
  p.uid = 0x0123456789abcdefULL;
  p.flow = 42;
  p.type = net::PacketType::kData;
  p.size_bytes = 1040;
  p.tcp.seq = 123'000;
  p.tcp.payload = 1000;
  p.tcp.ect = true;
  p.tcp.cwr = true;
  return p;
}

net::Packet sample_ack() {
  net::Packet p;
  p.uid = 7;
  p.flow = 42;
  p.type = net::PacketType::kAck;
  p.size_bytes = 40;
  p.tcp.ack = 124'000;
  p.tcp.ece = true;
  p.tcp.n_sack = 3;
  p.tcp.sack[0] = {126'000, 127'000};
  p.tcp.sack[1] = {129'000, 131'000};
  p.tcp.sack[2] = {133'000, 134'000};
  return p;
}

TEST(Wire, SizeReflectsHeaderSacksAndFiller) {
  EXPECT_EQ(wire_size(sample_data()), kWireHeaderBytes + 1000u);
  EXPECT_EQ(wire_size(sample_ack()), kWireHeaderBytes + 3 * kWireSackBytes);
}

TEST(Wire, DataPacketRoundTrips) {
  const net::Packet in = sample_data();
  std::uint8_t buf[kMaxWireDatagram];
  const std::size_t n = encode(in, buf, sizeof buf);
  ASSERT_EQ(n, wire_size(in));

  net::Packet out;
  ASSERT_TRUE(decode(buf, n, &out));
  EXPECT_EQ(out.uid, in.uid);
  EXPECT_EQ(out.flow, in.flow);
  EXPECT_EQ(out.type, in.type);
  EXPECT_EQ(out.size_bytes, in.size_bytes);
  EXPECT_EQ(out.tcp.seq, in.tcp.seq);
  EXPECT_EQ(out.tcp.payload, in.tcp.payload);
  EXPECT_EQ(out.tcp.ect, in.tcp.ect);
  EXPECT_EQ(out.tcp.ce, in.tcp.ce);
  EXPECT_EQ(out.tcp.ece, in.tcp.ece);
  EXPECT_EQ(out.tcp.cwr, in.tcp.cwr);
}

TEST(Wire, SackAckRoundTrips) {
  const net::Packet in = sample_ack();
  std::uint8_t buf[kMaxWireDatagram];
  const std::size_t n = encode(in, buf, sizeof buf);
  ASSERT_EQ(n, kWireHeaderBytes + 3 * kWireSackBytes);

  net::Packet out;
  ASSERT_TRUE(decode(buf, n, &out));
  EXPECT_EQ(out.tcp.ack, in.tcp.ack);
  ASSERT_EQ(out.tcp.n_sack, 3);
  EXPECT_EQ(out.tcp.sack, in.tcp.sack);
  EXPECT_TRUE(out.tcp.ece);
}

TEST(Wire, LayoutIsLittleEndianWithMagicFirst) {
  std::uint8_t buf[kMaxWireDatagram];
  ASSERT_GT(encode(sample_data(), buf, sizeof buf), 0u);
  // "RRTP"
  EXPECT_EQ(buf[0], 'R');
  EXPECT_EQ(buf[1], 'R');
  EXPECT_EQ(buf[2], 'T');
  EXPECT_EQ(buf[3], 'P');
  EXPECT_EQ(buf[4], kWireVersion);
  EXPECT_EQ(buf[6], 0x09);  // ect | cwr
  // payload = 1000 = 0x3e8 LE at offset 40
  EXPECT_EQ(buf[40], 0xe8);
  EXPECT_EQ(buf[41], 0x03);
}

TEST(Wire, EncodeRejectsOversizeAndSmallBuffers) {
  net::Packet p = sample_data();
  std::uint8_t buf[kMaxWireDatagram];
  p.tcp.payload = kMaxWirePayload + 1;
  EXPECT_EQ(encode(p, buf, sizeof buf), 0u);

  p = sample_data();
  EXPECT_EQ(encode(p, buf, wire_size(p) - 1), 0u);

  p = sample_ack();
  p.tcp.n_sack = net::kMaxSackBlocks + 1;
  EXPECT_EQ(encode(p, buf, sizeof buf), 0u);
}

// Each mutation of a valid datagram must be rejected, and a rejected
// decode must leave *out untouched.
TEST(Wire, DecodeRejectsMalformedDatagrams) {
  std::uint8_t good[kMaxWireDatagram];
  const std::size_t n = encode(sample_ack(), good, sizeof good);
  ASSERT_GT(n, 0u);

  auto rejects = [&](auto mutate, std::size_t len) {
    std::vector<std::uint8_t> buf(good, good + n);
    buf.resize(std::max(len, n), 0);
    mutate(buf.data());
    net::Packet out;
    out.uid = 0xdeadbeef;
    EXPECT_FALSE(decode(buf.data(), len, &out));
    EXPECT_EQ(out.uid, 0xdeadbeefu);  // untouched on failure
  };

  rejects([](std::uint8_t* b) { b[0] ^= 0xff; }, n);        // bad magic
  rejects([](std::uint8_t* b) { b[4] = 99; }, n);           // bad version
  rejects([](std::uint8_t* b) { b[5] = 17; }, n);           // bad type
  rejects([](std::uint8_t* b) { b[6] |= 0x10; }, n);        // reserved flag
  rejects([](std::uint8_t* b) { b[7] = 4; }, n);            // n_sack > max
  rejects([](std::uint8_t*) {}, kWireHeaderBytes - 1);      // truncated hdr
  rejects([](std::uint8_t*) {}, n - 1);                     // truncated sack
  rejects([](std::uint8_t*) {}, n + 1);                     // trailing junk
}

TEST(Wire, DecodeRejectsFillerLengthMismatch) {
  net::Packet p = sample_data();
  std::uint8_t buf[kMaxWireDatagram];
  const std::size_t n = encode(p, buf, sizeof buf);
  ASSERT_EQ(n, kWireHeaderBytes + 1000u);

  net::Packet out;
  EXPECT_FALSE(decode(buf, n - 1, &out));  // short one filler byte
  EXPECT_FALSE(decode(buf, kWireHeaderBytes, &out));  // no filler at all
  EXPECT_TRUE(decode(buf, n, &out));
}

}  // namespace
}  // namespace rrtcp::live
