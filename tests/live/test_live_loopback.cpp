// Live-loopback and differential sim-vs-live tests (ctest -L live).
//
// Two LiveEnvironments — client and server — over 127.0.0.1 in ONE thread,
// alternately polled, carrying the same TcpSenderBase/TcpReceiver objects
// the simulator runs. The differential test pins the tentpole claim: the
// identical transfer completes in-sim (under the full protocol audit) and
// over real UDP sockets, from one congestion-control core.
#include <gtest/gtest.h>

#include <memory>

#include "app/sender_factory.hpp"
#include "chaos/fault.hpp"
#include "integration/scenario.hpp"
#include "live/live_env.hpp"
#include "tcp/receiver.hpp"

namespace rrtcp::test {
namespace {

constexpr net::FlowId kFlow = 1;

struct LiveRun {
  bool ok = false;
  std::uint64_t rcv_bytes = 0;
  tcp::SenderStats stats;
  std::uint64_t server_filtered = 0;
  std::uint64_t server_ooo = 0;
};

// One full transfer over loopback, both endpoints polled from this thread.
LiveRun run_live(app::Variant v, std::uint64_t bytes,
                 const tcp::TcpConfig& tcfg = {},
                 const chaos::FaultPlan& server_faults = {},
                 sim::Time deadline = sim::Time::seconds(15)) {
  live::LiveConfig scfg;
  scfg.bind_addr = "127.0.0.1";
  scfg.local_id = 2;
  scfg.peer_id = 1;
  scfg.faults = server_faults;
  live::LiveEnvironment server{scfg};

  live::LiveConfig ccfg;
  ccfg.bind_addr = "127.0.0.1";
  ccfg.peer_addr = "127.0.0.1";
  ccfg.peer_port = server.local_port();
  ccfg.local_id = 1;
  ccfg.peer_id = 2;
  live::LiveEnvironment client{ccfg};

  tcp::ReceiverConfig rcfg;
  rcfg.sack_enabled = app::SenderFactory::instance().at(v).sack_receiver;
  tcp::TcpReceiver receiver{server, kFlow, rcfg};

  auto sender = app::SenderFactory::instance().make(v, client, kFlow, tcfg);
  sender->set_app_bytes(bytes);
  sender->start();

  while (client.now() < deadline) {
    if (sender->complete() && receiver.rcv_nxt() >= bytes) break;
    client.poll(1);
    server.poll(0);
  }

  LiveRun r;
  r.ok = sender->complete() && receiver.rcv_nxt() >= bytes;
  r.rcv_bytes = receiver.bytes_in_order();
  r.stats = sender->stats();
  r.server_filtered = server.filtered_drops();
  r.server_ooo = receiver.stats().out_of_order;
  return r;
}

TEST(LiveLoopback, RrTransferCompletesOverRealSockets) {
  const auto r = run_live(app::Variant::kRr, 200'000);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.rcv_bytes, 200'000u);
  EXPECT_GE(r.stats.data_packets_sent, 200u);
}

TEST(LiveLoopback, DifferentialSimAndLiveCompleteTheSameTransfer) {
  constexpr std::uint64_t kBytes = 200'000;

  // In-sim, under the full invariant audit (abort-on-violation when the
  // audit build is on): the reference run.
  ScenarioConfig sim_cfg;
  sim_cfg.variant = app::Variant::kRr;
  sim_cfg.bytes = kBytes;
  sim_cfg.buffer_packets = 100;
  const auto sim_r = run_scenario(sim_cfg);
  ASSERT_TRUE(sim_r.flows[0].complete);
  ASSERT_EQ(sim_r.flows[0].rcv_bytes, kBytes);

  // The same core objects over real UDP loopback.
  const auto live_r = run_live(app::Variant::kRr, kBytes);
  ASSERT_TRUE(live_r.ok);
  EXPECT_EQ(live_r.rcv_bytes, sim_r.flows[0].rcv_bytes);
}

TEST(LiveLoopback, RecoversFromDeterministicIngressOutage) {
  // A [0, 30ms) ingress outage at the server swallows the opening flight;
  // the sender's retransmission timer (shortened so the test stays fast)
  // must recover and finish the transfer — real loss, real recovery.
  chaos::FaultSpec outage;
  outage.kind = chaos::FaultKind::kOutage;
  outage.start = sim::Time::zero();
  outage.duration = sim::Time::milliseconds(30);
  chaos::FaultPlan plan;
  plan.faults.push_back(outage);

  tcp::TcpConfig tcfg;
  tcfg.min_rto = sim::Time::milliseconds(100);
  tcfg.initial_rto = sim::Time::milliseconds(300);
  tcfg.rto_granularity = sim::Time::milliseconds(10);

  const auto r = run_live(app::Variant::kRr, 50'000, tcfg, plan);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.rcv_bytes, 50'000u);
  EXPECT_GE(r.server_filtered, 1u);
  EXPECT_GE(r.stats.timeouts, 1u);
  EXPECT_GE(r.stats.retransmissions, 1u);
}

TEST(LiveLoopback, ServerLearnsPeerFromFirstDatagram) {
  live::LiveConfig scfg;
  scfg.bind_addr = "127.0.0.1";
  scfg.local_id = 2;
  scfg.peer_id = 1;
  live::LiveEnvironment server{scfg};
  EXPECT_FALSE(server.peer_known());
  EXPECT_GT(server.local_port(), 0);

  live::LiveConfig ccfg;
  ccfg.bind_addr = "127.0.0.1";
  ccfg.peer_addr = "127.0.0.1";
  ccfg.peer_port = server.local_port();
  live::LiveEnvironment client{ccfg};

  tcp::TcpReceiver receiver{server, kFlow};
  auto sender =
      app::SenderFactory::instance().make(app::Variant::kRr, client, kFlow, {});
  sender->set_app_bytes(1'000);
  sender->start();

  const sim::Time deadline = sim::Time::seconds(5);
  while (client.now() < deadline && !sender->complete()) {
    client.poll(1);
    server.poll(0);
  }
  EXPECT_TRUE(server.peer_known());
  EXPECT_TRUE(sender->complete());
  EXPECT_EQ(receiver.rcv_nxt(), 1'000u);
}

}  // namespace
}  // namespace rrtcp::test
