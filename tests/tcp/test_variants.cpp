// State-machine tests for the Tahoe, Reno and New-Reno variants, driven by
// hand-crafted ACK streams.
#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "tcp/newreno.hpp"
#include "tcp/reno.hpp"
#include "tcp/tahoe.hpp"

namespace rrtcp::tcp {
namespace {

using test::SenderHarness;

TcpConfig cwnd8() {
  TcpConfig cfg;
  cfg.init_cwnd_pkts = 8;
  return cfg;
}

// ---------------------------------------------------------------- Tahoe

TEST(Tahoe, TwoDupAcksAreIgnored) {
  SenderHarness<TahoeSender> h{cwnd8()};
  h.sender().start();
  h.wire.clear();
  h.dupacks(2);
  EXPECT_TRUE(h.wire.packets.empty());
  EXPECT_EQ(h.sender().cwnd_packets(), 8.0);
  EXPECT_EQ(h.sender().stats().fast_retransmits, 0u);
}

TEST(Tahoe, ThirdDupAckCollapsesToSlowStart) {
  SenderHarness<TahoeSender> h{cwnd8()};
  h.sender().start();
  h.wire.clear();
  h.dupacks(3);
  EXPECT_EQ(h.sender().stats().fast_retransmits, 1u);
  EXPECT_EQ(h.sender().ssthresh_bytes(), 4000u);  // half of the window
  EXPECT_EQ(h.sender().cwnd_bytes(), 1000u);
  EXPECT_EQ(h.sender().phase(), TcpPhase::kSlowStart);
  // Exactly the first lost segment goes out (go-back-N restart).
  EXPECT_EQ(h.sent_seqs(), (std::vector<std::uint64_t>{0}));
  EXPECT_TRUE(h.wire.data()[0].tcp.seq == 0);
}

TEST(Tahoe, GoBackNResendsSuffix) {
  SenderHarness<TahoeSender> h{cwnd8()};
  h.sender().start();
  h.dupacks(3);
  h.wire.clear();
  // The rtx of 0 is ACKed cumulatively to 4000 (receiver had 1..3 cached):
  // slow start resumes from 4000, resending data already transmitted once.
  h.ack(4000);
  auto seqs = h.sent_seqs();
  ASSERT_EQ(seqs.size(), 2u);  // cwnd 2 packets
  EXPECT_EQ(seqs[0], 4000u);
  EXPECT_EQ(seqs[1], 5000u);
  EXPECT_GE(h.sender().stats().retransmissions, 3u);  // 0, 4000, 5000
}

TEST(Tahoe, FurtherDupAcksDuringSlowStartIgnoredUntilThreshold) {
  SenderHarness<TahoeSender> h{cwnd8()};
  h.sender().start();
  h.dupacks(3);
  h.wire.clear();
  h.dupacks(2);  // dupack count restarted; below threshold again
  EXPECT_TRUE(h.wire.packets.empty());
}

// ----------------------------------------------------------------- Reno

TEST(Reno, EntryHalvesAndInflatesByThree) {
  SenderHarness<RenoSender> h{cwnd8()};
  h.sender().start();
  h.wire.clear();
  h.dupacks(3);
  EXPECT_TRUE(h.sender().in_recovery());
  EXPECT_EQ(h.sender().phase(), TcpPhase::kFastRecovery);
  EXPECT_EQ(h.sender().ssthresh_bytes(), 4000u);
  EXPECT_EQ(h.sender().cwnd_bytes(), 7000u);  // ssthresh + 3 MSS
  EXPECT_EQ(h.sent_seqs(), (std::vector<std::uint64_t>{0}));  // the rtx
}

TEST(Reno, InflationReleasesNewDataWhenWindowOpens) {
  SenderHarness<RenoSender> h{cwnd8()};
  h.sender().start();  // flight 8000
  h.dupacks(3);        // cwnd 7000 < flight: nothing new yet
  h.wire.clear();
  h.dupacks(1);  // cwnd 8000 == flight: still nothing
  EXPECT_TRUE(h.wire.data().empty());
  h.dupacks(1);  // cwnd 9000 > flight: one new packet
  auto seqs = h.sent_seqs();
  ASSERT_EQ(seqs.size(), 1u);
  EXPECT_EQ(seqs[0], 8000u);  // new data beyond maxseq
}

TEST(Reno, AnyNewAckDeflatesAndExits) {
  SenderHarness<RenoSender> h{cwnd8()};
  h.sender().start();
  h.dupacks(3);
  h.ack(4000);  // partial coverage, but Reno can't tell: exits anyway
  EXPECT_FALSE(h.sender().in_recovery());
  EXPECT_EQ(h.sender().cwnd_bytes(), 4000u);  // deflated to ssthresh
}

TEST(Reno, SecondBurstLossHalvesAgain) {
  SenderHarness<RenoSender> h{cwnd8()};
  h.sender().start();
  h.dupacks(3);
  h.ack(4000);  // first exit: cwnd 4000
  h.dupacks(3);  // second loss in the same original window
  EXPECT_TRUE(h.sender().in_recovery());
  EXPECT_EQ(h.sender().ssthresh_bytes(), 2000u);  // halved again: 4000/2
}

TEST(Reno, TimeoutClearsRecovery) {
  SenderHarness<RenoSender> h{cwnd8()};
  h.sender().start();
  h.dupacks(3);
  ASSERT_TRUE(h.sender().in_recovery());
  h.sim.run_until(sim::Time::seconds(5));
  EXPECT_GE(h.sender().stats().timeouts, 1u);
  EXPECT_FALSE(h.sender().in_recovery());
  EXPECT_EQ(h.sender().phase(), TcpPhase::kRtoRecovery);
}

// -------------------------------------------------------------- New-Reno

TEST(NewReno, EntryRecordsRecoverPoint) {
  SenderHarness<NewRenoSender> h{cwnd8()};
  h.sender().start();
  h.dupacks(3);
  EXPECT_TRUE(h.sender().in_recovery());
  EXPECT_EQ(h.sender().recover_point(), 8000u);
}

TEST(NewReno, PartialAckRetransmitsNextHoleAndStays) {
  SenderHarness<NewRenoSender> h{cwnd8()};
  h.sender().start();
  h.dupacks(3);
  h.wire.clear();
  h.ack(4000);  // partial: hole at 4000
  EXPECT_TRUE(h.sender().in_recovery());
  auto seqs = h.sent_seqs();
  ASSERT_GE(seqs.size(), 1u);
  EXPECT_EQ(seqs[0], 4000u);
  // Deflation: 7000 - 4000 acked + 1000 = 4000.
  EXPECT_EQ(h.sender().cwnd_bytes(), 4000u);
}

TEST(NewReno, RecoversOneHolePerPartialAck) {
  SenderHarness<NewRenoSender> h{cwnd8()};
  h.sender().start();
  h.dupacks(3);  // rtx 0
  h.wire.clear();
  h.ack(2000);  // hole at 2000
  h.ack(5000);  // hole at 5000
  auto seqs = h.sent_seqs();
  ASSERT_GE(seqs.size(), 2u);
  EXPECT_EQ(seqs[0], 2000u);
  EXPECT_EQ(seqs[1], 5000u);
  EXPECT_TRUE(h.sender().in_recovery());
}

TEST(NewReno, FullAckExitsToSsthresh) {
  SenderHarness<NewRenoSender> h{cwnd8()};
  h.sender().start();
  h.dupacks(3);
  h.ack(8000);  // ack == recover: full
  EXPECT_FALSE(h.sender().in_recovery());
  EXPECT_EQ(h.sender().cwnd_bytes(), 4000u);
  EXPECT_EQ(h.sender().phase(), TcpPhase::kCongestionAvoidance);
}

TEST(NewReno, DupAcksInflateDuringRecovery) {
  SenderHarness<NewRenoSender> h{cwnd8()};
  h.sender().start();
  h.dupacks(3);
  const auto before = h.sender().cwnd_bytes();
  h.dupacks(2);
  EXPECT_EQ(h.sender().cwnd_bytes(), before + 2000u);
}

TEST(NewReno, NoSecondFastRetransmitAfterTimeoutForOldData) {
  SenderHarness<NewRenoSender> h{cwnd8()};
  h.sender().start();
  h.sim.run_until(sim::Time::seconds(4));  // RTO fires
  ASSERT_GE(h.sender().stats().timeouts, 1u);
  h.wire.clear();
  h.dupacks(3);  // dup ACKs for pre-timeout data must not re-trigger
  EXPECT_FALSE(h.sender().in_recovery());
  EXPECT_EQ(h.sender().stats().fast_retransmits, 0u);
}

TEST(NewReno, PartialAckSendsAtMostOneNewSegment) {
  // The paper's observation: one new packet per two dup ACKs, and a
  // bounded release on partial ACKs — never a burst.
  SenderHarness<NewRenoSender> h{cwnd8()};
  h.sender().start();
  h.dupacks(3);
  for (int i = 0; i < 4; ++i) h.dupacks(1);  // inflate cwnd well past flight
  h.wire.clear();
  h.ack(1000);  // partial ack
  // One retransmission (hole) + at most one new segment.
  EXPECT_LE(h.wire.data().size(), 2u);
}

}  // namespace
}  // namespace rrtcp::tcp
