// Backoff saturation behavior of the RTO estimator (the liveness hardening
// that keeps a flow's escape hatch meaningful through arbitrarily long
// fault windows): backoff() pins at max_rto without inflating the counter,
// and a successful sample() fully resets both the counter and the timeout.
#include <gtest/gtest.h>

#include "tcp/rto.hpp"

namespace rrtcp::tcp {
namespace {

using sim::Time;

TcpConfig fine_cfg() {
  TcpConfig cfg;
  cfg.min_rto = Time::milliseconds(1);
  cfg.max_rto = Time::seconds(64);
  cfg.rto_granularity = Time::zero();
  return cfg;
}

TEST(RtoBackoff, SaturationPinsTheCounter) {
  RtoEstimator e{fine_cfg()};
  e.sample(Time::seconds(1));  // rto = 3 s; doublings: 6, 12, 24, 48, 96^
  int pinned = -1;
  for (int i = 0; i < 10'000; ++i) {
    e.backoff();
    if (e.rto() == Time::seconds(64) && pinned < 0) pinned = e.backoff_count();
  }
  ASSERT_GE(pinned, 0);
  EXPECT_EQ(e.rto(), Time::seconds(64));
  // Once pinned, further calls are no-ops: the counter never ran past the
  // first saturating doubling, no matter how many timeouts fired.
  EXPECT_EQ(e.backoff_count(), pinned);
  EXPECT_LT(e.backoff_count(), 10);
}

TEST(RtoBackoff, CounterCannotOverflowUnderEndlessTimeouts) {
  TcpConfig cfg;  // defaults: coarse timers, initial_rto before any sample
  RtoEstimator e{cfg};
  for (int i = 0; i < 1'000'000; ++i) e.backoff();
  EXPECT_EQ(e.rto(), cfg.max_rto);
  EXPECT_LT(e.backoff_count(), 64);  // bounded, nowhere near overflow
}

TEST(RtoBackoff, SampleAfterSaturationFullyResets) {
  RtoEstimator e{fine_cfg()};
  e.sample(Time::seconds(1));
  for (int i = 0; i < 100; ++i) e.backoff();
  ASSERT_EQ(e.rto(), Time::seconds(64));
  e.sample(Time::seconds(1));
  EXPECT_EQ(e.backoff_count(), 0);
  // The timeout recovers to the sane sampled range, not a stale doubling.
  EXPECT_LT(e.rto(), Time::seconds(8));
  EXPECT_GT(e.rto(), Time::zero());
}

TEST(RtoBackoff, MinRtoFloorCanMaskEarlyDoublings) {
  // With a tiny srtt the raw timeout sits far below the floor: the first
  // few backoffs change the counter but not rto(). Liveness checks must
  // read backoff_count(), not rto(), to see that backoff happened — this
  // pins the behavior the audit's RTO_BACKOFF invariant depends on.
  TcpConfig cfg;  // min_rto = 1 s
  RtoEstimator e{cfg};
  e.sample(Time::milliseconds(10));
  ASSERT_EQ(e.rto(), cfg.min_rto);
  e.backoff();
  EXPECT_EQ(e.backoff_count(), 1);
  EXPECT_EQ(e.rto(), cfg.min_rto);  // still floored — and that is correct
}

}  // namespace
}  // namespace rrtcp::tcp
