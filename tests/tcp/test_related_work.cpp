// State-machine tests for the related-work recovery schemes (right-edge
// recovery and Lin-Kung) the paper's introduction discusses.
#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "tcp/related_work.hpp"

namespace rrtcp::tcp {
namespace {

using test::SenderHarness;

TcpConfig cwnd8() {
  TcpConfig cfg;
  cfg.init_cwnd_pkts = 8;
  return cfg;
}

TEST(RightEdge, EntryMatchesNewReno) {
  SenderHarness<RightEdgeSender> h{cwnd8()};
  h.sender().start();
  h.wire.clear();
  h.dupacks(3);
  EXPECT_TRUE(h.sender().in_recovery());
  EXPECT_EQ(h.sender().ssthresh_bytes(), 4000u);
  EXPECT_EQ(h.sent_seqs(), (std::vector<std::uint64_t>{0}));
}

TEST(RightEdge, EveryDupAckReleasesOneNewPacket) {
  // The defining feature: one new packet per dup ACK during recovery —
  // not gated on cwnd inflation crossing the flight size.
  SenderHarness<RightEdgeSender> h{cwnd8()};
  h.sender().start();
  h.dupacks(3);
  h.wire.clear();
  h.dupacks(4);
  EXPECT_EQ(h.sent_seqs(),
            (std::vector<std::uint64_t>{8000, 9000, 10'000, 11'000}));
}

TEST(RightEdge, PartialAckRepairsHoleAndStays) {
  SenderHarness<RightEdgeSender> h{cwnd8()};
  h.sender().start();
  h.dupacks(3);
  h.wire.clear();
  h.ack(4000);
  EXPECT_TRUE(h.sender().in_recovery());
  ASSERT_GE(h.sent_seqs().size(), 1u);
  EXPECT_EQ(h.sent_seqs()[0], 4000u);
}

TEST(RightEdge, FullAckExits) {
  SenderHarness<RightEdgeSender> h{cwnd8()};
  h.sender().start();
  h.dupacks(3);
  h.ack(8000);
  EXPECT_FALSE(h.sender().in_recovery());
  EXPECT_EQ(h.sender().cwnd_bytes(), 4000u);
}

TEST(LinKung, FirstTwoDupAcksEachReleaseNewData) {
  // The defining feature: dup ACKs 1 and 2 (BEFORE fast retransmit) each
  // clock out one new packet.
  SenderHarness<LinKungSender> h{cwnd8()};
  h.sender().start();
  h.wire.clear();
  h.dupacks(1);
  EXPECT_EQ(h.sent_seqs(), (std::vector<std::uint64_t>{8000}));
  h.dupacks(1);
  EXPECT_EQ(h.sent_seqs(), (std::vector<std::uint64_t>{8000, 9000}));
  EXPECT_FALSE(h.sender().in_recovery());
}

TEST(LinKung, ThirdDupAckEntersNewRenoRecovery) {
  SenderHarness<LinKungSender> h{cwnd8()};
  h.sender().start();
  h.wire.clear();
  h.dupacks(3);
  EXPECT_TRUE(h.sender().in_recovery());
  // Sent: new data on dups 1,2 then the retransmission on dup 3.
  auto seqs = h.sent_seqs();
  ASSERT_EQ(seqs.size(), 3u);
  EXPECT_EQ(seqs[2], 0u);
  EXPECT_EQ(h.sender().ssthresh_bytes(), 4000u);
}

TEST(LinKung, ReorderingCostsNothing) {
  // Two dup ACKs caused by reordering, then the "missing" segment's ACK:
  // Lin-Kung used the dup ACKs productively and never slowed down.
  SenderHarness<LinKungSender> h{cwnd8()};
  h.sender().start();
  h.dupacks(2);
  const auto cwnd = h.sender().cwnd_bytes();
  h.ack(3000);  // reordering resolved, no loss
  EXPECT_FALSE(h.sender().in_recovery());
  EXPECT_GT(h.sender().cwnd_bytes(), cwnd);  // normal growth continued
  EXPECT_EQ(h.sender().stats().fast_retransmits, 0u);
}

TEST(LinKung, PreRecoverySendsRespectReceiverWindow) {
  TcpConfig cfg = cwnd8();
  cfg.max_window_pkts = 8;  // flight already at the cap
  SenderHarness<LinKungSender> h{cfg};
  h.sender().start();
  h.wire.clear();
  h.dupacks(2);
  EXPECT_TRUE(h.wire.data().empty());  // nothing beyond the window
}

}  // namespace
}  // namespace rrtcp::tcp
