#include "tcp/rto.hpp"

#include <gtest/gtest.h>

namespace rrtcp::tcp {
namespace {

using sim::Time;

TcpConfig fine_cfg() {
  TcpConfig cfg;
  cfg.min_rto = Time::milliseconds(1);
  cfg.max_rto = Time::seconds(64);
  cfg.rto_granularity = Time::zero();  // exact arithmetic for unit tests
  return cfg;
}

TEST(Rto, InitialRtoBeforeAnySample) {
  TcpConfig cfg;
  RtoEstimator e{cfg};
  EXPECT_FALSE(e.has_samples());
  EXPECT_EQ(e.rto(), cfg.initial_rto);
}

TEST(Rto, FirstSampleSetsSrttAndVar) {
  RtoEstimator e{fine_cfg()};
  e.sample(Time::milliseconds(200));
  EXPECT_EQ(e.srtt(), Time::milliseconds(200));
  EXPECT_EQ(e.rttvar(), Time::milliseconds(100));
  // RTO = srtt + 4*rttvar = 600 ms.
  EXPECT_EQ(e.rto(), Time::milliseconds(600));
}

TEST(Rto, ConvergesOnConstantRtt) {
  RtoEstimator e{fine_cfg()};
  for (int i = 0; i < 200; ++i) e.sample(Time::milliseconds(100));
  EXPECT_NEAR(e.srtt().to_seconds(), 0.100, 0.001);
  EXPECT_LT(e.rttvar(), Time::milliseconds(2));
  // RTO floors at min_rto... which is 1ms here, so ~srtt.
  EXPECT_LT(e.rto(), Time::milliseconds(110));
}

TEST(Rto, VarianceGrowsWithJitter) {
  RtoEstimator lo{fine_cfg()}, hi{fine_cfg()};
  for (int i = 0; i < 100; ++i) {
    lo.sample(Time::milliseconds(100));
    hi.sample(Time::milliseconds(i % 2 ? 50 : 150));
  }
  EXPECT_GT(hi.rttvar(), lo.rttvar());
  EXPECT_GT(hi.rto(), lo.rto());
}

TEST(Rto, BackoffDoubles) {
  RtoEstimator e{fine_cfg()};
  e.sample(Time::milliseconds(100));
  const Time base = e.rto();
  e.backoff();
  EXPECT_EQ(e.rto(), base * 2);
  e.backoff();
  EXPECT_EQ(e.rto(), base * 4);
}

TEST(Rto, BackoffCapsAtMax) {
  RtoEstimator e{fine_cfg()};
  e.sample(Time::milliseconds(500));
  for (int i = 0; i < 40; ++i) e.backoff();
  EXPECT_EQ(e.rto(), Time::seconds(64));
}

TEST(Rto, SampleResetsBackoff) {
  RtoEstimator e{fine_cfg()};
  e.sample(Time::milliseconds(100));
  e.backoff();
  e.backoff();
  EXPECT_EQ(e.backoff_count(), 2);
  e.sample(Time::milliseconds(100));
  EXPECT_EQ(e.backoff_count(), 0);
}

TEST(Rto, RespectsMinimum) {
  TcpConfig cfg;  // default min_rto = 1 s (coarse timers of the era)
  RtoEstimator e{cfg};
  for (int i = 0; i < 50; ++i) e.sample(Time::milliseconds(10));
  EXPECT_EQ(e.rto(), cfg.min_rto);
}

TEST(Rto, GranularityRoundsUp) {
  TcpConfig cfg;
  cfg.min_rto = Time::milliseconds(1);
  cfg.rto_granularity = Time::milliseconds(500);
  RtoEstimator e{cfg};
  e.sample(Time::milliseconds(200));  // raw RTO 600 ms -> 1000 ms rounded
  EXPECT_EQ(e.rto(), Time::milliseconds(1000));
}

TEST(Rto, ClampedToMaxEvenWithHugeSamples) {
  auto cfg = fine_cfg();
  cfg.max_rto = Time::seconds(10);
  RtoEstimator e{cfg};
  e.sample(Time::seconds(30));
  EXPECT_EQ(e.rto(), Time::seconds(10));
}

}  // namespace
}  // namespace rrtcp::tcp
