#include "tcp/scoreboard.hpp"

#include <gtest/gtest.h>

#include "../testutil.hpp"

namespace rrtcp::tcp {
namespace {

net::TcpHeader ack_with_sacks(std::uint64_t ack,
                              std::vector<net::SackBlock> sacks) {
  net::TcpHeader h;
  h.ack = ack;
  h.n_sack = static_cast<std::uint8_t>(sacks.size());
  for (std::size_t i = 0; i < sacks.size(); ++i) h.sack[i] = sacks[i];
  return h;
}

TEST(Scoreboard, EmptyInitially) {
  Scoreboard b;
  EXPECT_EQ(b.highest_sacked(), 0u);
  EXPECT_EQ(b.sacked_bytes(), 0u);
  EXPECT_FALSE(b.next_hole(0, 1000, 3, false).has_value());
}

TEST(Scoreboard, RecordsSackBlocks) {
  Scoreboard b;
  b.update(ack_with_sacks(0, {{2000, 3000}}), 0);
  EXPECT_TRUE(b.is_sacked(2000));
  EXPECT_FALSE(b.is_sacked(1000));
  EXPECT_FALSE(b.is_sacked(3000));
  EXPECT_EQ(b.highest_sacked(), 3000u);
  EXPECT_EQ(b.sacked_bytes(), 1000u);
}

TEST(Scoreboard, NextHoleIsLowestUnsackedBelowHighest) {
  Scoreboard b;
  // una=1000; sacked: [2000,3000) and [4000,5000). Holes: 1000, 3000.
  b.update(ack_with_sacks(1000, {{2000, 3000}, {4000, 5000}}), 1000);
  auto hole = b.next_hole(1000, 1000, 3, false);
  ASSERT_TRUE(hole.has_value());
  EXPECT_EQ(*hole, 1000u);
  b.mark_retransmitted(1000);
  hole = b.next_hole(1000, 1000, 3, false);
  ASSERT_TRUE(hole.has_value());
  EXPECT_EQ(*hole, 3000u);
  b.mark_retransmitted(3000);
  EXPECT_FALSE(b.next_hole(1000, 1000, 3, false).has_value());
}

TEST(Scoreboard, NoHoleBeyondHighestSacked) {
  Scoreboard b;
  b.update(ack_with_sacks(0, {{2000, 3000}}), 0);
  // 3000+ is above highest evidence: not a hole yet.
  auto hole = b.next_hole(3000, 1000, 3, false);
  EXPECT_FALSE(hole.has_value());
}

TEST(Scoreboard, MergesAdjacentAndOverlappingBlocks) {
  Scoreboard b;
  b.update(ack_with_sacks(0, {{2000, 3000}}), 0);
  b.update(ack_with_sacks(0, {{3000, 4000}}), 0);  // adjacent
  b.update(ack_with_sacks(0, {{3500, 5000}}), 0);  // overlapping
  EXPECT_EQ(b.sacked_bytes(), 3000u);              // one block [2000,5000)
  EXPECT_EQ(b.block_count(), 1u);
}

TEST(Scoreboard, CumulativeAckPrunesState) {
  Scoreboard b;
  b.update(ack_with_sacks(0, {{2000, 3000}, {5000, 6000}}), 0);
  b.mark_retransmitted(1000);
  // Cumulative ACK to 4000 swallows the first block and the rtx mark.
  b.update(ack_with_sacks(4000, {}), 4000);
  EXPECT_FALSE(b.is_sacked(2000));
  EXPECT_TRUE(b.is_sacked(5000));
  EXPECT_EQ(b.sacked_bytes(), 1000u);
  auto hole = b.next_hole(4000, 1000, 3, false);
  ASSERT_TRUE(hole.has_value());
  EXPECT_EQ(*hole, 4000u);
}

TEST(Scoreboard, PartialOverlapWithAckTruncatesBlock) {
  Scoreboard b;
  b.update(ack_with_sacks(0, {{2000, 6000}}), 0);
  b.update(ack_with_sacks(3000, {}), 3000);
  EXPECT_FALSE(b.is_sacked(2500));
  EXPECT_TRUE(b.is_sacked(3000));
  EXPECT_EQ(b.sacked_bytes(), 3000u);  // [3000, 6000)
}

TEST(Scoreboard, IgnoresStaleBlocksBelowAck) {
  Scoreboard b;
  b.update(ack_with_sacks(5000, {{1000, 2000}}), 5000);
  EXPECT_EQ(b.sacked_bytes(), 0u);
}

TEST(Scoreboard, IgnoresEmptyOrInvertedBlocks) {
  Scoreboard b;
  b.update(ack_with_sacks(0, {{3000, 3000}, {4000, 2000}}), 0);
  EXPECT_EQ(b.sacked_bytes(), 0u);
}

TEST(Scoreboard, ResetClearsEverything) {
  Scoreboard b;
  b.update(ack_with_sacks(0, {{2000, 3000}}), 0);
  b.mark_retransmitted(0);
  b.reset();
  EXPECT_EQ(b.sacked_bytes(), 0u);
  EXPECT_EQ(b.highest_sacked(), 0u);
  EXPECT_FALSE(b.was_retransmitted(0));
}

TEST(Scoreboard, IsLostRequiresDupThreshWorthOfEvidence) {
  Scoreboard b;
  b.update(ack_with_sacks(0, {{1000, 3000}}), 0);  // 2000 B above seq 0
  EXPECT_FALSE(b.is_lost(0, 1000, 3));
  b.update(ack_with_sacks(0, {{1000, 4000}}), 0);  // 3000 B above seq 0
  EXPECT_TRUE(b.is_lost(0, 1000, 3));
  // But not for a segment above the evidence.
  EXPECT_FALSE(b.is_lost(4000, 1000, 3));
}

TEST(Scoreboard, SackedBytesAboveCountsStrictlyAbove) {
  Scoreboard b;
  b.update(ack_with_sacks(0, {{2000, 3000}, {5000, 8000}}), 0);
  EXPECT_EQ(b.sacked_bytes_above(0), 4000u);
  EXPECT_EQ(b.sacked_bytes_above(2000), 4000u);  // clips at seq
  EXPECT_EQ(b.sacked_bytes_above(2500), 3500u);
  EXPECT_EQ(b.sacked_bytes_above(4000), 3000u);
  EXPECT_EQ(b.sacked_bytes_above(6000), 2000u);
  EXPECT_EQ(b.sacked_bytes_above(8000), 0u);
}

TEST(Scoreboard, PipeExcludesSackedAndLostSegments) {
  Scoreboard b;
  // Flight [0, 10000); SACKed [1000, 4000). Segment 0 is lost (3000 B of
  // evidence above); segments 4000..9000 are simply in flight.
  b.update(ack_with_sacks(0, {{1000, 4000}}), 0);
  EXPECT_EQ(b.pipe_packets(0, 10'000, 1000, 3), 6);
  // Retransmitting the lost segment puts one packet back in the pipe.
  b.mark_retransmitted(0);
  EXPECT_EQ(b.pipe_packets(0, 10'000, 1000, 3), 7);
}

TEST(Scoreboard, PipeOfCleanFlightIsEverything) {
  Scoreboard b;
  EXPECT_EQ(b.pipe_packets(0, 8000, 1000, 3), 8);
}

TEST(Scoreboard, NextHoleStrictModeNeedsLostEvidence) {
  Scoreboard b;
  // Hole at 1000 with only 1000 B SACKed above: not yet "lost".
  b.update(ack_with_sacks(1000, {{2000, 3000}}), 1000);
  EXPECT_FALSE(b.next_hole(1000, 1000, 3, true).has_value());
  EXPECT_TRUE(b.next_hole(1000, 1000, 3, false).has_value());
  // More evidence arrives: strict mode now returns it.
  b.update(ack_with_sacks(1000, {{2000, 5000}}), 1000);
  auto hole = b.next_hole(1000, 1000, 3, true);
  ASSERT_TRUE(hole.has_value());
  EXPECT_EQ(*hole, 1000u);
}

TEST(Scoreboard, WasRetransmittedTracksMarks) {
  Scoreboard b;
  EXPECT_FALSE(b.was_retransmitted(7000));
  b.mark_retransmitted(7000);
  EXPECT_TRUE(b.was_retransmitted(7000));
}

}  // namespace
}  // namespace rrtcp::tcp
