// Tests of the shared sender machinery (window growth, segmentation,
// timers, RTT sampling) using TahoeSender as the concrete vehicle.
#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "tcp/tahoe.hpp"

namespace rrtcp::tcp {
namespace {

using test::SenderHarness;

TcpConfig cfg_with_cwnd(std::uint64_t pkts, std::uint64_t ssthresh = 64) {
  TcpConfig cfg;
  cfg.init_cwnd_pkts = pkts;
  cfg.init_ssthresh_pkts = ssthresh;
  return cfg;
}

TEST(SenderBase, StartSendsInitialWindow) {
  SenderHarness<TahoeSender> h{cfg_with_cwnd(4)};
  h.sender().start();
  EXPECT_EQ(h.sent_seqs(), (std::vector<std::uint64_t>{0, 1000, 2000, 3000}));
  EXPECT_EQ(h.sender().snd_nxt(), 4000u);
  EXPECT_EQ(h.sender().flight_bytes(), 4000u);
}

TEST(SenderBase, FiniteTransferHasShortTail) {
  SenderHarness<TahoeSender> h{cfg_with_cwnd(4)};
  h.sender().set_app_bytes(2500);
  h.sender().start();
  auto data = h.wire.data();
  ASSERT_EQ(data.size(), 3u);
  EXPECT_EQ(data[2].tcp.seq, 2000u);
  EXPECT_EQ(data[2].tcp.payload, 500u);
  EXPECT_EQ(h.sender().snd_nxt(), 2500u);
}

TEST(SenderBase, SlowStartGrowsOnePacketPerAck) {
  SenderHarness<TahoeSender> h{cfg_with_cwnd(1)};
  h.sender().start();
  EXPECT_EQ(h.sender().cwnd_packets(), 1.0);
  h.ack(1000);
  EXPECT_EQ(h.sender().cwnd_packets(), 2.0);
  h.ack(2000);
  EXPECT_EQ(h.sender().cwnd_packets(), 3.0);
  EXPECT_EQ(h.sender().phase(), TcpPhase::kSlowStart);
}

TEST(SenderBase, SlowStartExponentialPerRtt) {
  SenderHarness<TahoeSender> h{cfg_with_cwnd(1)};
  h.sender().start();
  // "RTT" 1: ACK the one outstanding packet -> 2 sent. "RTT" 2: ACK both
  // -> 4 sent. Window doubles per round.
  h.wire.clear();
  h.ack(1000);
  EXPECT_EQ(h.wire.data().size(), 2u);
  h.wire.clear();
  h.ack(2000);
  h.ack(3000);
  EXPECT_EQ(h.wire.data().size(), 4u);
}

TEST(SenderBase, CongestionAvoidanceIsLinear) {
  SenderHarness<TahoeSender> h{cfg_with_cwnd(4, /*ssthresh=*/1)};
  h.sender().start();
  EXPECT_EQ(h.sender().phase(), TcpPhase::kCongestionAvoidance);
  const double before = h.sender().cwnd_packets();
  // One full window of ACKs grows cwnd by roughly one packet.
  for (int i = 1; i <= 4; ++i) h.ack(i * 1000);
  EXPECT_NEAR(h.sender().cwnd_packets(), before + 1.0, 0.3);
}

TEST(SenderBase, PhaseFlipsAtSsthresh) {
  SenderHarness<TahoeSender> h{cfg_with_cwnd(1, /*ssthresh=*/3)};
  h.sender().start();
  h.ack(1000);  // cwnd 2 < 3
  EXPECT_EQ(h.sender().phase(), TcpPhase::kSlowStart);
  h.ack(2000);  // cwnd 3 >= 3
  EXPECT_EQ(h.sender().phase(), TcpPhase::kCongestionAvoidance);
}

TEST(SenderBase, ReceiverWindowCapsFlight) {
  TcpConfig cfg = cfg_with_cwnd(10);
  cfg.max_window_pkts = 2;
  SenderHarness<TahoeSender> h{cfg};
  h.sender().start();
  EXPECT_EQ(h.wire.data().size(), 2u);
  EXPECT_EQ(h.sender().flight_bytes(), 2000u);
}

TEST(SenderBase, DupAcksDoNotGrowWindow) {
  SenderHarness<TahoeSender> h{cfg_with_cwnd(4)};
  h.sender().start();
  const auto cwnd = h.sender().cwnd_bytes();
  h.dupacks(2);
  EXPECT_EQ(h.sender().cwnd_bytes(), cwnd);
  EXPECT_EQ(h.sender().dupacks(), 2);
}

TEST(SenderBase, OldAcksIgnored) {
  SenderHarness<TahoeSender> h{cfg_with_cwnd(4)};
  h.sender().start();
  h.ack(2000);
  const auto stats_before = h.sender().stats();
  h.ack(1000);  // below snd_una: ignored entirely
  EXPECT_EQ(h.sender().snd_una(), 2000u);
  EXPECT_EQ(h.sender().dupacks(), 0);
  EXPECT_EQ(h.sender().stats().dupacks_received,
            stats_before.dupacks_received);
}

TEST(SenderBase, CompletionDetected) {
  SenderHarness<TahoeSender> h{cfg_with_cwnd(4)};
  h.sender().set_app_bytes(3000);
  bool done = false;
  h.sender().set_complete_callback([&](sim::Time) { done = true; });
  h.sender().start();
  h.ack(3000);
  EXPECT_TRUE(h.sender().complete());
  EXPECT_TRUE(done);
}

TEST(SenderBase, RtoRetransmitsFirstSegment) {
  SenderHarness<TahoeSender> h{cfg_with_cwnd(4)};
  h.sender().start();
  h.wire.clear();
  h.sim.run_until(sim::Time::seconds(10));
  // Initial RTO is 3 s; expect at least one timeout and a retransmission
  // of segment 0.
  EXPECT_GE(h.sender().stats().timeouts, 1u);
  auto data = h.wire.data();
  ASSERT_GE(data.size(), 1u);
  EXPECT_EQ(data[0].tcp.seq, 0u);
  EXPECT_EQ(h.sender().cwnd_bytes(), 1000u);
  EXPECT_EQ(h.sender().phase(), TcpPhase::kRtoRecovery);
}

TEST(SenderBase, RtoBacksOffExponentially) {
  SenderHarness<TahoeSender> h{cfg_with_cwnd(1)};
  h.sender().start();
  // Initial RTO 3 s; back-offs double: next fire 6 s later (t=9), then
  // 12 s later (t=21). By t=22 we expect exactly 3 timeouts.
  h.sim.run_until(sim::Time::seconds(22));
  EXPECT_EQ(h.sender().stats().timeouts, 3u);
  // And not a fourth before t=45.
  h.sim.run_until(sim::Time::seconds(44));
  EXPECT_EQ(h.sender().stats().timeouts, 3u);
}

TEST(SenderBase, AckCancelsRtoWhenAllDataAcked) {
  SenderHarness<TahoeSender> h{cfg_with_cwnd(2)};
  h.sender().set_app_bytes(2000);
  h.sender().start();
  h.ack(2000);
  h.sim.run_until(sim::Time::seconds(60));
  EXPECT_EQ(h.sender().stats().timeouts, 0u);
}

TEST(SenderBase, RttSamplesFeedEstimator) {
  SenderHarness<TahoeSender> h{cfg_with_cwnd(1)};
  h.sender().start();
  h.sim.run_until(sim::Time::milliseconds(80));
  h.ack(1000);
  EXPECT_EQ(h.sender().stats().rtt_samples, 1u);
}

TEST(SenderBase, KarnNoSampleFromRetransmittedSegment) {
  SenderHarness<TahoeSender> h{cfg_with_cwnd(4)};
  h.sender().start();
  // Force a timeout, which retransmits segment 0.
  h.sim.run_until(sim::Time::seconds(4));
  ASSERT_GE(h.sender().stats().timeouts, 1u);
  h.ack(1000);  // covers a retransmitted range: must not be sampled
  EXPECT_EQ(h.sender().stats().rtt_samples, 0u);
}

TEST(SenderBase, ObserversSeeSendsAndAcks) {
  struct Counter : SenderObserver {
    int sends = 0, acks = 0, dups = 0;
    void on_send(sim::Time, std::uint64_t, std::uint32_t, bool) override {
      ++sends;
    }
    void on_ack(sim::Time, std::uint64_t, bool dup) override {
      ++(dup ? dups : acks);
    }
  } counter;
  SenderHarness<TahoeSender> h{cfg_with_cwnd(2)};
  h.sender().add_observer(&counter);
  h.sender().start();
  h.ack(1000);
  h.dupacks(1);
  EXPECT_GE(counter.sends, 2);
  EXPECT_EQ(counter.acks, 1);
  EXPECT_EQ(counter.dups, 1);
}

TEST(SenderBase, StatsCountFirstTransmissionsSeparately) {
  SenderHarness<TahoeSender> h{cfg_with_cwnd(4)};
  h.sender().start();
  h.sim.run_until(sim::Time::seconds(4));  // one RTO -> one retransmission
  const auto& st = h.sender().stats();
  EXPECT_EQ(st.data_packets_sent, 4u);
  EXPECT_GE(st.retransmissions, 1u);
}

TEST(SenderBaseDeath, DoubleStartAborts) {
  SenderHarness<TahoeSender> h{cfg_with_cwnd(1)};
  h.sender().start();
  EXPECT_DEATH(h.sender().start(), "started twice");
}

}  // namespace
}  // namespace rrtcp::tcp
