// Smooth-Start (paper reference [21], implemented as a TcpConfig knob):
// slow-start growth halves through the upper half of the slow-start
// region, reducing the overshoot burst into the bottleneck queue.
#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "app/flow_factory.hpp"
#include "app/ftp.hpp"
#include "net/drop_tail.hpp"
#include "net/dumbbell.hpp"
#include "tcp/tahoe.hpp"

namespace rrtcp::tcp {
namespace {

using test::SenderHarness;

TEST(SmoothStart, FullRateBelowHalfSsthresh) {
  TcpConfig cfg;
  cfg.init_cwnd_pkts = 1;
  cfg.init_ssthresh_pkts = 16;
  cfg.smooth_start = true;
  SenderHarness<TahoeSender> h{cfg};
  h.sender().start();
  // Below ssthresh/2 (8 packets) growth is the classic +1 per ACK.
  for (int i = 1; i <= 6; ++i) h.ack(i * 1000);
  EXPECT_EQ(h.sender().cwnd_packets(), 7.0);
}

TEST(SmoothStart, HalfRateInSmoothingRegion) {
  TcpConfig cfg;
  cfg.init_cwnd_pkts = 8;  // start exactly at ssthresh/2
  cfg.init_ssthresh_pkts = 16;
  cfg.smooth_start = true;
  SenderHarness<TahoeSender> h{cfg};
  h.sender().start();
  // Four ACKs grow the window by two packets, not four.
  for (int i = 1; i <= 4; ++i) h.ack(i * 1000);
  EXPECT_EQ(h.sender().cwnd_packets(), 10.0);
  EXPECT_EQ(h.sender().phase(), TcpPhase::kSlowStart);
}

TEST(SmoothStart, OffByDefaultKeepsClassicDoubling) {
  TcpConfig cfg;
  cfg.init_cwnd_pkts = 8;
  cfg.init_ssthresh_pkts = 16;
  SenderHarness<TahoeSender> h{cfg};
  h.sender().start();
  for (int i = 1; i <= 4; ++i) h.ack(i * 1000);
  EXPECT_EQ(h.sender().cwnd_packets(), 12.0);
}

TEST(SmoothStart, ReducesSlowStartOvershootDrops) {
  // One flow against the paper's 8-packet drop-tail buffer: the smoothed
  // ramp must overshoot by less, i.e. lose fewer packets in the initial
  // slow-start burst.
  auto drops_with = [](bool smooth) {
    sim::Simulator sim;
    net::DumbbellConfig netcfg;
    netcfg.n_flows = 1;
    net::DumbbellTopology topo{sim, netcfg};  // drop-tail 8
    TcpConfig tcfg;
    tcfg.smooth_start = smooth;
    auto flow = app::make_flow(app::Variant::kRr, sim, topo.sender_node(0),
                               topo.receiver_node(0), 1, tcfg);
    app::FtpSource src{sim, *flow.sender, sim::Time::zero(), std::nullopt};
    sim.run_until(sim::Time::seconds(5));  // the start-up phase
    return topo.bottleneck().queue().stats().dropped;
  };
  EXPECT_LE(drops_with(true), drops_with(false));
}

}  // namespace
}  // namespace rrtcp::tcp
