#include "tcp/receiver.hpp"

#include <gtest/gtest.h>

#include "../testutil.hpp"

namespace rrtcp::tcp {
namespace {

using test::CaptureHandler;
using test::make_data;

struct ReceiverFixture : ::testing::Test {
  ReceiverFixture() : node{2} { node.set_default_route(&wire); }

  TcpReceiver make(ReceiverConfig cfg = {}) {
    return TcpReceiver{sim, node, kFlow, /*peer=*/1, cfg};
  }

  // ACK packets captured so far.
  std::vector<net::Packet> acks() const { return wire.packets; }

  static constexpr net::FlowId kFlow = 7;
  sim::Simulator sim;
  net::Node node;
  CaptureHandler wire;
};

TEST_F(ReceiverFixture, AcksEveryInOrderPacket) {
  auto rcv = make();
  for (int i = 0; i < 5; ++i)
    rcv.receive(make_data(kFlow, i * 1000, 1000));
  ASSERT_EQ(wire.count(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(wire.packets[i].is_ack());
    EXPECT_EQ(wire.packets[i].tcp.ack, static_cast<std::uint64_t>(i + 1) * 1000);
    EXPECT_EQ(wire.packets[i].size_bytes, 40u);
  }
  EXPECT_EQ(rcv.rcv_nxt(), 5000u);
  EXPECT_EQ(rcv.stats().dupacks_sent, 0u);
}

TEST_F(ReceiverFixture, OutOfOrderGeneratesDupAcks) {
  auto rcv = make();
  rcv.receive(make_data(kFlow, 0, 1000));     // ack 1000
  rcv.receive(make_data(kFlow, 2000, 1000));  // hole at 1000 -> dup ack 1000
  rcv.receive(make_data(kFlow, 3000, 1000));  // dup ack 1000
  ASSERT_EQ(wire.count(), 3u);
  EXPECT_EQ(wire.packets[1].tcp.ack, 1000u);
  EXPECT_EQ(wire.packets[2].tcp.ack, 1000u);
  EXPECT_EQ(rcv.stats().dupacks_sent, 2u);
  EXPECT_EQ(rcv.buffered_out_of_order(), 2000u);
}

TEST_F(ReceiverFixture, HoleFillAcksCumulatively) {
  auto rcv = make();
  rcv.receive(make_data(kFlow, 0, 1000));
  rcv.receive(make_data(kFlow, 2000, 1000));
  rcv.receive(make_data(kFlow, 3000, 1000));
  wire.clear();
  rcv.receive(make_data(kFlow, 1000, 1000));  // fills the hole
  ASSERT_EQ(wire.count(), 1u);
  EXPECT_EQ(wire.packets[0].tcp.ack, 4000u);  // jumps past buffered data
  EXPECT_EQ(rcv.buffered_out_of_order(), 0u);
}

TEST_F(ReceiverFixture, SpuriousRetransmissionReAcked) {
  auto rcv = make();
  rcv.receive(make_data(kFlow, 0, 1000));
  rcv.receive(make_data(kFlow, 1000, 1000));
  wire.clear();
  rcv.receive(make_data(kFlow, 0, 1000));  // duplicate of old data
  ASSERT_EQ(wire.count(), 1u);
  EXPECT_EQ(wire.packets[0].tcp.ack, 2000u);
  EXPECT_EQ(rcv.stats().duplicates, 1u);
}

TEST_F(ReceiverFixture, MultipleHolesMergeCorrectly) {
  auto rcv = make();
  // Deliver 0, then 2000, 4000, 6000 (three holes), then fill them.
  rcv.receive(make_data(kFlow, 0, 1000));
  rcv.receive(make_data(kFlow, 2000, 1000));
  rcv.receive(make_data(kFlow, 4000, 1000));
  rcv.receive(make_data(kFlow, 6000, 1000));
  EXPECT_EQ(rcv.buffered_out_of_order(), 3000u);
  rcv.receive(make_data(kFlow, 1000, 1000));
  EXPECT_EQ(rcv.rcv_nxt(), 3000u);
  rcv.receive(make_data(kFlow, 3000, 1000));
  EXPECT_EQ(rcv.rcv_nxt(), 5000u);
  rcv.receive(make_data(kFlow, 5000, 1000));
  EXPECT_EQ(rcv.rcv_nxt(), 7000u);
  EXPECT_EQ(rcv.buffered_out_of_order(), 0u);
}

TEST_F(ReceiverFixture, OverlappingSegmentsMerge) {
  auto rcv = make();
  rcv.receive(make_data(kFlow, 2000, 1000));
  rcv.receive(make_data(kFlow, 2500, 1000));  // overlaps previous
  EXPECT_EQ(rcv.buffered_out_of_order(), 1500u);  // [2000, 3500)
}

TEST_F(ReceiverFixture, NoSackBlocksWhenDisabled) {
  auto rcv = make();
  rcv.receive(make_data(kFlow, 2000, 1000));
  EXPECT_EQ(wire.last().tcp.n_sack, 0);
}

TEST_F(ReceiverFixture, SackBlocksReportHoles) {
  ReceiverConfig cfg;
  cfg.sack_enabled = true;
  auto rcv = make(cfg);
  rcv.receive(make_data(kFlow, 2000, 1000));
  ASSERT_EQ(wire.last().tcp.n_sack, 1);
  EXPECT_EQ(wire.last().tcp.sack[0], (net::SackBlock{2000, 3000}));
}

TEST_F(ReceiverFixture, MostRecentSackBlockFirst) {
  ReceiverConfig cfg;
  cfg.sack_enabled = true;
  auto rcv = make(cfg);
  rcv.receive(make_data(kFlow, 2000, 1000));
  rcv.receive(make_data(kFlow, 5000, 1000));
  rcv.receive(make_data(kFlow, 8000, 1000));
  const auto& h = wire.last().tcp;
  ASSERT_EQ(h.n_sack, 3);
  EXPECT_EQ(h.sack[0], (net::SackBlock{8000, 9000}));  // newest first
  EXPECT_EQ(h.sack[1], (net::SackBlock{5000, 6000}));
  EXPECT_EQ(h.sack[2], (net::SackBlock{2000, 3000}));
}

TEST_F(ReceiverFixture, SackBlockGrowsWithAdjacentData) {
  ReceiverConfig cfg;
  cfg.sack_enabled = true;
  auto rcv = make(cfg);
  rcv.receive(make_data(kFlow, 2000, 1000));
  rcv.receive(make_data(kFlow, 3000, 1000));  // extends the same block
  const auto& h = wire.last().tcp;
  ASSERT_EQ(h.n_sack, 1);
  EXPECT_EQ(h.sack[0], (net::SackBlock{2000, 4000}));
}

TEST_F(ReceiverFixture, AtMostThreeSackBlocks) {
  ReceiverConfig cfg;
  cfg.sack_enabled = true;
  auto rcv = make(cfg);
  for (int i = 1; i <= 5; ++i)
    rcv.receive(make_data(kFlow, i * 2000, 1000));  // 5 separate blocks
  EXPECT_EQ(wire.last().tcp.n_sack, 3);
}

TEST_F(ReceiverFixture, DelayedAckCoalescesInOrderData) {
  ReceiverConfig cfg;
  cfg.delayed_ack = true;
  cfg.delack_timeout = sim::Time::milliseconds(200);
  auto rcv = make(cfg);
  rcv.receive(make_data(kFlow, 0, 1000));
  EXPECT_EQ(wire.count(), 0u);  // held back
  rcv.receive(make_data(kFlow, 1000, 1000));
  EXPECT_EQ(wire.count(), 1u);  // second in-order segment flushes
  EXPECT_EQ(wire.last().tcp.ack, 2000u);
}

TEST_F(ReceiverFixture, DelayedAckTimerFlushesSingleSegment) {
  ReceiverConfig cfg;
  cfg.delayed_ack = true;
  cfg.delack_timeout = sim::Time::milliseconds(200);
  auto rcv = make(cfg);
  rcv.receive(make_data(kFlow, 0, 1000));
  EXPECT_EQ(wire.count(), 0u);
  sim.run_until(sim::Time::milliseconds(250));
  ASSERT_EQ(wire.count(), 1u);
  EXPECT_EQ(wire.last().tcp.ack, 1000u);
}

TEST_F(ReceiverFixture, DelayedAckDisabledForOutOfOrder) {
  // Paper Section 2.2: out-of-sequence arrivals are ACKed immediately even
  // with delayed ACKs on.
  ReceiverConfig cfg;
  cfg.delayed_ack = true;
  auto rcv = make(cfg);
  rcv.receive(make_data(kFlow, 2000, 1000));
  EXPECT_EQ(wire.count(), 1u);  // immediate dup ACK
  EXPECT_EQ(wire.last().tcp.ack, 0u);
}

TEST_F(ReceiverFixture, NotifyFiresAtThreshold) {
  auto rcv = make();
  sim::Time done = sim::Time::zero();
  rcv.notify_at(3000, [&](sim::Time t) { done = t; });
  rcv.receive(make_data(kFlow, 0, 1000));
  rcv.receive(make_data(kFlow, 1000, 1000));
  EXPECT_EQ(done, sim::Time::zero());
  rcv.receive(make_data(kFlow, 2000, 1000));
  EXPECT_EQ(rcv.bytes_in_order(), 3000u);
  // Fires synchronously at current sim time (zero here) exactly once.
  EXPECT_EQ(done, sim.now());
}

}  // namespace
}  // namespace rrtcp::tcp
