#include "tcp/seq.hpp"

#include <gtest/gtest.h>

namespace rrtcp::tcp {
namespace {

TEST(Seq32, PlainOrdering) {
  EXPECT_LT(Seq32{100}, Seq32{200});
  EXPECT_GT(Seq32{200}, Seq32{100});
  EXPECT_LE(Seq32{100}, Seq32{100});
  EXPECT_GE(Seq32{100}, Seq32{100});
  EXPECT_EQ(Seq32{7}, Seq32{7});
  EXPECT_NE(Seq32{7}, Seq32{8});
}

TEST(Seq32, OrderingAcrossWrap) {
  const Seq32 before_wrap{0xFFFFFFF0u};
  const Seq32 after_wrap{0x00000010u};
  EXPECT_LT(before_wrap, after_wrap);
  EXPECT_GT(after_wrap, before_wrap);
}

TEST(Seq32, AdditionWraps) {
  Seq32 s{0xFFFFFFFFu};
  EXPECT_EQ((s + 1).raw(), 0u);
  EXPECT_EQ((s + 1001).raw(), 1000u);
}

TEST(Seq32, SubtractionGivesSignedDistance) {
  EXPECT_EQ(Seq32{2000} - Seq32{1000}, 1000);
  EXPECT_EQ(Seq32{1000} - Seq32{2000}, -1000);
  // Across the wrap point.
  EXPECT_EQ(Seq32{16} - Seq32{0xFFFFFFF0u}, 32);
}

TEST(Seq32, CompoundAdd) {
  Seq32 s{0xFFFFFFFEu};
  s += 4;
  EXPECT_EQ(s.raw(), 2u);
}

TEST(Seq32, HalfRangeBoundary) {
  // Exactly 2^31 apart the ordering is genuinely ambiguous (RFC 1982):
  // the signed distance is INT32_MIN from both directions, so each
  // compares "less" than the other. Real windows must stay < 2^31.
  const Seq32 a{0};
  const Seq32 b{0x80000000u};
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b < a);
  EXPECT_TRUE(b - a < 0);
  EXPECT_TRUE(a - b < 0);
}

TEST(Seq32, InWindowBasic) {
  EXPECT_TRUE(in_window(Seq32{150}, Seq32{100}, 100));
  EXPECT_TRUE(in_window(Seq32{100}, Seq32{100}, 100));   // inclusive low
  EXPECT_FALSE(in_window(Seq32{200}, Seq32{100}, 100));  // exclusive high
  EXPECT_FALSE(in_window(Seq32{99}, Seq32{100}, 100));
}

TEST(Seq32, InWindowAcrossWrap) {
  const Seq32 lo{0xFFFFFFF0u};
  EXPECT_TRUE(in_window(Seq32{0xFFFFFFFFu}, lo, 64));
  EXPECT_TRUE(in_window(Seq32{8}, lo, 64));
  EXPECT_FALSE(in_window(Seq32{100}, lo, 64));
}

}  // namespace
}  // namespace rrtcp::tcp
