// State-machine tests for the SACK sender (scoreboard + pipe algorithm).
#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "tcp/sack.hpp"

namespace rrtcp::tcp {
namespace {

using net::SackBlock;
using test::SenderHarness;

TcpConfig cwnd10() {
  TcpConfig cfg;
  cfg.init_cwnd_pkts = 10;
  return cfg;
}

TEST(Sack, EntryRetransmitsFirstHoleUnconditionally) {
  SenderHarness<SackSender> h{cwnd10()};
  h.sender().start();  // flight 10
  h.wire.clear();
  h.dupacks(3, {SackBlock{1000, 4000}});
  EXPECT_TRUE(h.sender().in_recovery());
  EXPECT_EQ(h.sender().ssthresh_bytes(), 5000u);
  EXPECT_EQ(h.sender().cwnd_bytes(), 5000u);
  // RFC 3517 pipe: seg 0 is lost (3000 B SACKed above) but retransmitted
  // (+1); [1000,4000) SACKed; six segments simply in flight -> pipe 7,
  // at/above cwnd 5: only the unconditional first rtx goes out.
  auto seqs = h.sent_seqs();
  ASSERT_EQ(seqs.size(), 1u);
  EXPECT_EQ(seqs[0], 0u);
  EXPECT_EQ(h.sender().pipe_packets(), 7);
}

TEST(Sack, DupAcksDrainPipeThenRelease) {
  SenderHarness<SackSender> h{cwnd10()};
  h.sender().start();
  h.dupacks(3, {SackBlock{1000, 4000}});  // pipe 7, cwnd 5
  h.wire.clear();
  h.dupacks(1, {SackBlock{1000, 5000}});  // pipe 6
  h.dupacks(1, {SackBlock{1000, 6000}});  // pipe 5
  EXPECT_TRUE(h.wire.data().empty());     // pipe never below cwnd yet
  h.dupacks(1, {SackBlock{1000, 7000}});  // pipe 4 < 5: send one
  auto seqs = h.sent_seqs();
  ASSERT_EQ(seqs.size(), 1u);
  // No unsacked hole below highest_sacked except 0 (already rtx'd): sends
  // new data beyond maxseq.
  EXPECT_EQ(seqs[0], 10000u);
  EXPECT_EQ(h.sender().pipe_packets(), 5);
}

TEST(Sack, RetransmitsHolesBeforeNewData) {
  SenderHarness<SackSender> h{cwnd10()};
  h.sender().start();
  // Holes at 0, 3000, 6000; SACKed: [1000,3000) [4000,6000) [7000,10000).
  // All three holes are immediately "lost" per IsLost (>= 3000 B SACKed
  // above each), so the scoreboard pipe is just the 3 retransmissions:
  // entry repairs everything hole-first, then opens new data.
  const std::vector<SackBlock> blocks{
      SackBlock{7000, 10000}, SackBlock{4000, 6000}, SackBlock{1000, 3000}};
  h.wire.clear();
  h.dupacks(3, blocks);
  auto seqs = h.sent_seqs();
  ASSERT_GE(seqs.size(), 3u);
  EXPECT_EQ(seqs[0], 0u);     // unconditional first rtx
  EXPECT_EQ(seqs[1], 3000u);  // hole before any new data
  EXPECT_EQ(seqs[2], 6000u);  // next hole
  for (std::size_t i = 3; i < seqs.size(); ++i)
    EXPECT_GE(seqs[i], 10'000u);  // only then new data
}

TEST(Sack, PartialAckDecrementsPipeByTwo) {
  SenderHarness<SackSender> h{cwnd10()};
  h.sender().start();
  h.dupacks(3, {SackBlock{1000, 4000}});
  const long pipe_before = h.sender().pipe_packets();
  h.ack(1000, {SackBlock{2000, 4000}});  // partial ack (hole at 1000... )
  // pipe -2, then possibly +sends; bound it instead of pinning exact value.
  EXPECT_LE(h.sender().pipe_packets(), pipe_before);
  EXPECT_TRUE(h.sender().in_recovery());
}

TEST(Sack, FullAckExitsAndResetsScoreboard) {
  SenderHarness<SackSender> h{cwnd10()};
  h.sender().start();
  h.dupacks(3, {SackBlock{1000, 4000}});
  h.ack(10000);  // everything outstanding at entry is covered
  EXPECT_FALSE(h.sender().in_recovery());
  EXPECT_EQ(h.sender().cwnd_bytes(), 5000u);  // ssthresh
  EXPECT_EQ(h.sender().scoreboard().sacked_bytes(), 0u);
  EXPECT_EQ(h.sender().pipe_packets(), 0);
}

TEST(Sack, NeverRetransmitsSackedData) {
  SenderHarness<SackSender> h{cwnd10()};
  h.sender().start();
  const std::vector<SackBlock> blocks{SackBlock{1000, 10000}};
  h.dupacks(3, blocks);
  h.wire.clear();
  for (int i = 0; i < 8; ++i) h.dupacks(1, blocks);
  for (const auto& p : h.wire.data())
    EXPECT_GE(p.tcp.seq, 10000u);  // only new data; [1000,10000) is SACKed
}

TEST(Sack, MaxburstLimitsReleasePerAck) {
  TcpConfig cfg = cwnd10();
  cfg.maxburst = 2;
  SenderHarness<SackSender> h{cfg};
  h.sender().start();
  h.dupacks(3, {SackBlock{1000, 4000}});
  // A partial ack that frees lots of window must still release <= 2.
  h.wire.clear();
  h.ack(9000, {});
  EXPECT_LE(h.wire.data().size(), 2u);
}

TEST(Sack, TimeoutResetsPipeAndBoard) {
  SenderHarness<SackSender> h{cwnd10()};
  h.sender().start();
  h.dupacks(3, {SackBlock{1000, 4000}});
  h.sim.run_until(sim::Time::seconds(5));
  EXPECT_GE(h.sender().stats().timeouts, 1u);
  EXPECT_FALSE(h.sender().in_recovery());
  EXPECT_EQ(h.sender().pipe_packets(), 0);
  EXPECT_EQ(h.sender().scoreboard().sacked_bytes(), 0u);
}

}  // namespace
}  // namespace rrtcp::tcp
