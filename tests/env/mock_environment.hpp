// A hand-cranked env::Environment for unit tests: manual clock, recorded
// egress, deterministic timer firing — and no simulator anywhere. This is
// the interface-sufficiency proof for the environment seam: if a sender
// variant or the receiver runs correctly against this ~100-line fake, it
// depends on nothing but the five Environment capabilities.
//
// advance_to() honors the ordering contract the real embodiments guarantee
// (env/environment.hpp): timers due on the way to the target fire in
// (deadline, arm order), now() reads the firing deadline inside each
// callback, and now() never decreases.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "env/environment.hpp"
#include "net/packet.hpp"
#include "sim/assert.hpp"
#include "sim/time.hpp"

namespace rrtcp::test {

class MockEnvironment final : public env::Environment {
 public:
  explicit MockEnvironment(net::NodeId local = 1, net::NodeId peer = 2)
      : local_{local}, peer_{peer} {}

  // ---- env::Environment ------------------------------------------------
  sim::Time now() const override { return now_; }
  net::NodeId local_id() const override { return local_; }
  net::NodeId peer_id() const override { return peer_; }

  void attach(net::FlowId flow, net::Agent* agent) override {
    for (auto& [f, a] : agents_)
      if (f == flow) {
        a = agent;
        return;
      }
    agents_.push_back({flow, agent});
  }
  void detach(net::FlowId flow) override {
    std::erase_if(agents_, [flow](const auto& e) { return e.first == flow; });
  }
  void send(net::Packet p) override { sent.push_back(std::move(p)); }

  TimerId timer_create(std::function<void()> on_fire) override {
    timers_.push_back({std::move(on_fire), true, false, sim::Time::zero(), 0});
    return static_cast<TimerId>(timers_.size() - 1);
  }
  void timer_destroy(TimerId id) override {
    Slot& s = slot(id);
    s.live = false;
    s.armed = false;
  }
  void timer_arm(TimerId id, sim::Time delay) override {
    RRTCP_ASSERT(delay >= sim::Time::zero());
    Slot& s = slot(id);
    s.armed = true;
    s.deadline = now_ + delay;
    s.arm_seq = next_arm_seq_++;
  }
  void timer_cancel(TimerId id) override { slot(id).armed = false; }
  bool timer_pending(TimerId id) const override {
    const Slot& s = timers_.at(id);
    return s.live && s.armed;
  }

  // ---- Test controls ---------------------------------------------------
  // Advance the clock to `t`, firing every timer due on the way in
  // (deadline, arm order). A callback that re-arms within the window fires
  // again in the same call.
  void advance_to(sim::Time t) {
    RRTCP_ASSERT(t >= now_);
    for (;;) {
      int due = -1;
      for (int i = 0; i < static_cast<int>(timers_.size()); ++i) {
        const Slot& s = timers_[i];
        if (!s.live || !s.armed || s.deadline > t) continue;
        if (due < 0 || s.deadline < timers_[due].deadline ||
            (s.deadline == timers_[due].deadline &&
             s.arm_seq < timers_[due].arm_seq))
          due = i;
      }
      if (due < 0) break;
      timers_[due].armed = false;
      now_ = timers_[due].deadline;
      timers_[due].on_fire();
    }
    now_ = t;
  }
  void advance(sim::Time d) { advance_to(now_ + d); }

  // Deliver an ingress packet to the agent attached under p.flow.
  void deliver(net::Packet p) {
    for (auto& [f, a] : agents_)
      if (f == p.flow) {
        a->receive(std::move(p));
        return;
      }
    RRTCP_ASSERT(false && "deliver: no agent attached for flow");
  }

  // Earliest armed deadline, if any timer is pending.
  std::optional<sim::Time> next_deadline() const {
    std::optional<sim::Time> best;
    for (const Slot& s : timers_)
      if (s.live && s.armed && (!best || s.deadline < *best))
        best = s.deadline;
    return best;
  }

  // Every egress packet, in send order. Tests clear() between phases.
  std::vector<net::Packet> sent;

 private:
  struct Slot {
    std::function<void()> on_fire;
    bool live = false;
    bool armed = false;
    sim::Time deadline = sim::Time::zero();
    std::uint64_t arm_seq = 0;
  };

  Slot& slot(TimerId id) {
    RRTCP_ASSERT(id < timers_.size() && timers_[id].live);
    return timers_[id];
  }

  net::NodeId local_;
  net::NodeId peer_;
  sim::Time now_ = sim::Time::zero();
  std::vector<std::pair<net::FlowId, net::Agent*>> agents_;
  std::vector<Slot> timers_;
  std::uint64_t next_arm_seq_ = 0;
};

}  // namespace rrtcp::test
