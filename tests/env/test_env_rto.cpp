// Sender timing against MockEnvironment: RTO arm/backoff/re-arm and fast
// retransmit, asserted to the picosecond with a hand-cranked clock and no
// simulator in the process. This is satellite proof that the environment
// interface is sufficient for the transport's time-driven behavior.
#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "env/mock_environment.hpp"
#include "tcp/receiver.hpp"
#include "tcp/reno.hpp"
#include "tcp/tahoe.hpp"

namespace rrtcp::test {
namespace {

constexpr net::FlowId kFlow = 7;

std::vector<std::uint64_t> data_seqs(const std::vector<net::Packet>& pkts) {
  std::vector<std::uint64_t> out;
  for (const auto& p : pkts)
    if (p.is_data()) out.push_back(p.tcp.seq);
  return out;
}

TEST(MockEnvRto, ArmedOnFirstSendAtNowPlusRto) {
  MockEnvironment env;
  tcp::TcpConfig cfg;
  tcp::TahoeSender s{env, kFlow, cfg};
  s.set_app_bytes(10'000);
  EXPECT_FALSE(s.rto_pending());

  env.advance(sim::Time::milliseconds(5));  // start at a non-zero instant
  s.start();

  ASSERT_EQ(data_seqs(env.sent), (std::vector<std::uint64_t>{0}));
  ASSERT_TRUE(s.rto_pending());
  EXPECT_EQ(s.rto_expiry(), env.now() + s.rto_estimator().rto());
  // No samples yet: the timeout is the configured initial RTO.
  EXPECT_FALSE(s.rto_estimator().has_samples());
  EXPECT_EQ(s.rto_estimator().rto(), cfg.initial_rto);
  EXPECT_EQ(*env.next_deadline(), s.rto_expiry());
}

TEST(MockEnvRto, TimeoutBacksOffRetransmitsAndRearms) {
  MockEnvironment env;
  tcp::TahoeSender s{env, kFlow, {}};
  s.set_app_bytes(10'000);
  s.start();
  const sim::Time first_expiry = s.rto_expiry();
  const sim::Time rto0 = s.rto_estimator().rto();

  env.advance_to(first_expiry);  // fire the retransmission timer

  EXPECT_EQ(s.stats().timeouts, 1u);
  EXPECT_EQ(s.rto_estimator().backoff_count(), 1);
  EXPECT_EQ(s.rto_estimator().rto(), rto0 * 2);
  // Go-back-N: the segment at snd_una left again...
  EXPECT_EQ(data_seqs(env.sent), (std::vector<std::uint64_t>{0, 0}));
  EXPECT_EQ(s.stats().retransmissions, 1u);
  // ...and the timer is re-armed from the firing instant, backed off.
  ASSERT_TRUE(s.rto_pending());
  EXPECT_EQ(s.rto_expiry(), first_expiry + rto0 * 2);

  // A second unanswered timeout doubles again.
  env.advance_to(s.rto_expiry());
  EXPECT_EQ(s.stats().timeouts, 2u);
  EXPECT_EQ(s.rto_estimator().rto(), rto0 * 4);
}

TEST(MockEnvRto, NewAckRearmsFromAckInstant) {
  MockEnvironment env;
  tcp::TahoeSender s{env, kFlow, {}};
  s.set_app_bytes(10'000);
  s.start();
  const sim::Time armed_at_start = s.rto_expiry();

  env.advance(sim::Time::milliseconds(50));
  env.deliver(make_ack(kFlow, 1000));

  // The ACK sampled an RTT and restarted the timer for the still-
  // outstanding data: expiry moved to ack-time + current rto.
  EXPECT_TRUE(s.rto_estimator().has_samples());
  EXPECT_EQ(s.rto_estimator().backoff_count(), 0);
  ASSERT_TRUE(s.rto_pending());
  EXPECT_GT(s.flight_bytes(), 0u);
  EXPECT_EQ(s.rto_expiry(), env.now() + s.rto_estimator().rto());
  EXPECT_NE(s.rto_expiry(), armed_at_start);
}

TEST(MockEnvRto, TimerStopsAndCompletionFiresOnceWhenFullyAcked) {
  MockEnvironment env;
  tcp::TahoeSender s{env, kFlow, {}};
  s.set_app_bytes(2'000);
  int fires = 0;
  sim::Time done_at = sim::Time::zero();
  s.set_complete_callback([&](sim::Time t) {
    ++fires;
    done_at = t;
  });
  s.start();

  env.advance(sim::Time::milliseconds(10));
  env.deliver(make_ack(kFlow, 1000));  // grows cwnd, sends the tail
  EXPECT_TRUE(s.rto_pending());
  env.advance(sim::Time::milliseconds(10));
  env.deliver(make_ack(kFlow, 2000));

  EXPECT_TRUE(s.complete());
  EXPECT_FALSE(s.rto_pending());
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(done_at, env.now());
  EXPECT_EQ(s.completion_time(), done_at);

  // A stray duplicate of the final ACK must not re-fire completion.
  env.deliver(make_ack(kFlow, 2000));
  EXPECT_EQ(fires, 1);
}

TEST(MockEnvFastRtx, ThirdDupackTriggersFastRetransmit) {
  MockEnvironment env;
  tcp::TcpConfig cfg;
  cfg.init_cwnd_pkts = 8;
  tcp::RenoSender s{env, kFlow, cfg};
  s.set_app_bytes(20'000);
  s.start();
  ASSERT_EQ(env.sent.size(), 8u);

  env.advance(sim::Time::milliseconds(20));
  env.sent.clear();
  env.deliver(make_ack(kFlow, 0));
  env.deliver(make_ack(kFlow, 0));
  EXPECT_EQ(s.dupacks(), 2);
  EXPECT_EQ(s.stats().fast_retransmits, 0u);
  EXPECT_TRUE(data_seqs(env.sent).empty());

  env.deliver(make_ack(kFlow, 0));  // threshold: retransmit NOW, no timer

  EXPECT_EQ(s.dupacks(), 3);
  EXPECT_EQ(s.stats().fast_retransmits, 1u);
  const auto rtx = data_seqs(env.sent);
  ASSERT_FALSE(rtx.empty());
  EXPECT_EQ(rtx[0], 0u);  // the hole at snd_una, immediately
  EXPECT_EQ(s.stats().timeouts, 0u);
  EXPECT_EQ(s.phase(), tcp::TcpPhase::kFastRecovery);
}

TEST(MockEnvReceiver, AcksEveryInOrderSegmentWithoutSimulator) {
  MockEnvironment env{/*local=*/2, /*peer=*/1};
  tcp::TcpReceiver r{env, kFlow};

  env.deliver(make_data(kFlow, 0, 1000));
  env.deliver(make_data(kFlow, 1000, 1000));
  EXPECT_EQ(r.rcv_nxt(), 2000u);
  ASSERT_EQ(env.sent.size(), 2u);
  EXPECT_TRUE(env.sent[0].is_ack());
  EXPECT_EQ(env.sent[0].tcp.ack, 1000u);
  EXPECT_EQ(env.sent[1].tcp.ack, 2000u);
  // ACKs carry the environment's addressing.
  EXPECT_EQ(env.sent[0].src, 2u);
  EXPECT_EQ(env.sent[0].dst, 1u);
}

TEST(MockEnvReceiver, DelayedAckTimerFiresOnMockClock) {
  MockEnvironment env{/*local=*/2, /*peer=*/1};
  tcp::ReceiverConfig cfg;
  cfg.delayed_ack = true;
  tcp::TcpReceiver r{env, kFlow, cfg};

  env.deliver(make_data(kFlow, 0, 1000));
  // One in-order segment: the ACK is held back for the delack window.
  EXPECT_EQ(env.sent.size(), 0u);
  ASSERT_TRUE(env.next_deadline().has_value());
  EXPECT_EQ(*env.next_deadline(), env.now() + cfg.delack_timeout);

  env.advance(cfg.delack_timeout);
  ASSERT_EQ(env.sent.size(), 1u);
  EXPECT_EQ(env.sent[0].tcp.ack, 1000u);
}

}  // namespace
}  // namespace rrtcp::test
