// Replay codec: to_replay_text/parse_replay_text are exact inverses for
// every field (including the FaultPlan and awkward doubles), the parser is
// strict about garbage, and --replay operand classification separates
// chaos seeds from repro paths.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "chaos/fault.hpp"
#include "fuzz/replay.hpp"
#include "fuzz/serialize.hpp"

namespace rrtcp::fuzz {
namespace {

// Every field off its default, doubles chosen to need full precision.
CaseSpec ornate_case() {
  CaseSpec cs;
  cs.seed = 0xdeadbeefcafeull;
  cs.variant = app::Variant::kSack;
  cs.mutant = "dead-rto";
  cs.topo = TopoKind::kRandomMesh;
  cs.hops = 4;
  cs.extra_receivers = 3;
  cs.mesh_routers = 6;
  cs.mesh_chords = 2;
  cs.bottleneck_bps = 1'234'567;
  cs.bottleneck_delay = sim::Time::picoseconds(123'456'789'012'345);
  cs.queue = QueueKind::kRed;
  cs.queue_packets = 17;
  cs.red_min_th = 0.1 + 0.2;  // 0.30000000000000004
  cs.red_max_th = 19.7;
  cs.red_max_p = 1.0 / 3.0;
  cs.n_flows = 3;
  cs.bytes_per_flow = 123'456;
  cs.stagger = sim::Time::picoseconds(1);
  cs.smooth_start = true;
  cs.n_cbr = 2;
  cs.cbr_load = 0.15;
  cs.horizon = sim::Time::seconds(99);
  cs.wd_check_interval = sim::Time::milliseconds(123);
  cs.wd_stall_rto_factor = 7;
  cs.wd_livelock_rtx = 11;
  cs.wd_stall_ceiling = sim::Time::seconds(33);

  chaos::FaultSpec f;
  f.kind = chaos::FaultKind::kBurstLoss;
  f.path = chaos::FaultPath::kAck;
  f.start = sim::Time::seconds(2);
  f.duration = sim::Time::milliseconds(750);
  f.period = sim::Time::seconds(3);
  f.probability = 0.1 + 0.7;
  f.p_enter_bad = 0.017;
  f.p_exit_bad = 0.3;
  f.loss_in_bad = 0.99;
  f.data_only = true;
  cs.plan.faults.push_back(f);
  f.kind = chaos::FaultKind::kDelaySpike;
  f.extra_delay = sim::Time::picoseconds(999'999'999'999);
  cs.plan.faults.push_back(f);
  return cs;
}

TEST(ReplayCodec, RoundTripsEveryField) {
  const CaseSpec original = ornate_case();
  const std::string text =
      to_replay_text(original, {"watchdog/WD_SILENT_DEATH/dead-rto"});

  ReplayCase loaded;
  std::string error;
  ASSERT_TRUE(parse_replay_text(text, &loaded, &error)) << error;
  // Re-serializing the parsed case must reproduce the text byte-for-byte:
  // the strongest whole-struct equality available without operator==.
  EXPECT_EQ(to_replay_text(loaded.spec, loaded.expect), text);
  ASSERT_EQ(loaded.expect.size(), 1u);
  EXPECT_EQ(loaded.expect[0], "watchdog/WD_SILENT_DEATH/dead-rto");
  // Spot-check the hairy fields.
  EXPECT_EQ(loaded.spec.seed, original.seed);
  EXPECT_EQ(loaded.spec.red_min_th, original.red_min_th);
  EXPECT_EQ(loaded.spec.bottleneck_delay.ps(), original.bottleneck_delay.ps());
  ASSERT_TRUE(loaded.spec.wd_stall_ceiling.has_value());
  EXPECT_EQ(loaded.spec.wd_stall_ceiling->ps(), sim::Time::seconds(33).ps());
  ASSERT_EQ(loaded.spec.plan.faults.size(), 2u);
  EXPECT_EQ(loaded.spec.plan.faults[0].probability,
            original.plan.faults[0].probability);
  EXPECT_EQ(loaded.spec.plan.faults[1].extra_delay.ps(),
            original.plan.faults[1].extra_delay.ps());
}

TEST(ReplayCodec, DefaultCaseRoundTrips) {
  const std::string text = to_replay_text(CaseSpec{});
  ReplayCase loaded;
  ASSERT_TRUE(parse_replay_text(text, &loaded));
  EXPECT_EQ(to_replay_text(loaded.spec), text);
  EXPECT_FALSE(loaded.spec.wd_stall_ceiling.has_value());
  EXPECT_TRUE(loaded.expect.empty());
}

TEST(ReplayCodec, CommentsAndBlankLinesIgnored) {
  std::string text = to_replay_text(CaseSpec{});
  text.insert(0, "\n# a comment\n\n");
  text += "\n# trailing comment\n";
  ReplayCase loaded;
  EXPECT_TRUE(parse_replay_text(text, &loaded));
}

TEST(ReplayCodec, RejectsMissingFormatLine) {
  std::string text = to_replay_text(CaseSpec{});
  text = text.substr(text.find('\n') + 1);  // drop the format line
  ReplayCase loaded;
  std::string error;
  EXPECT_FALSE(parse_replay_text(text, &loaded, &error));
  EXPECT_NE(error.find("format"), std::string::npos) << error;
}

TEST(ReplayCodec, RejectsUnknownKey) {
  std::string text = to_replay_text(CaseSpec{});
  text += "no_such_key = 1\n";
  ReplayCase loaded;
  std::string error;
  EXPECT_FALSE(parse_replay_text(text, &loaded, &error));
  EXPECT_NE(error.find("no_such_key"), std::string::npos) << error;
}

TEST(ReplayCodec, RejectsMalformedValue) {
  std::string text = to_replay_text(CaseSpec{});
  text += "n_flows = banana\n";
  ReplayCase loaded;
  EXPECT_FALSE(parse_replay_text(text, &loaded));
}

TEST(ReplayCodec, RejectsUnknownMutantAtLoadTime) {
  CaseSpec cs;
  cs.mutant = "dead-rto";
  std::string text = to_replay_text(cs);
  const std::size_t at = text.find("dead-rto");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 8, "not-real");
  ReplayCase loaded;
  std::string error;
  EXPECT_FALSE(parse_replay_text(text, &loaded, &error));
  EXPECT_NE(error.find("not-real"), std::string::npos) << error;
}

TEST(ReplayCodec, RejectsBadFaultLine) {
  std::string text = to_replay_text(CaseSpec{});
  text += "fault = kind=outage path=data start_ps=oops\n";
  ReplayCase loaded;
  EXPECT_FALSE(parse_replay_text(text, &loaded));
}

TEST(ReplayCodec, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "rrtcp_replay_rt.repro";
  const CaseSpec original = ornate_case();
  ASSERT_TRUE(write_replay_file(path, original, {"a/b/c"}));
  ReplayCase loaded;
  std::string error;
  ASSERT_TRUE(load_replay_file(path, &loaded, &error)) << error;
  EXPECT_EQ(to_replay_text(loaded.spec, loaded.expect),
            to_replay_text(original, {"a/b/c"}));
  std::remove(path.c_str());
}

TEST(ReplayCodec, LoadReportsMissingFile) {
  ReplayCase loaded;
  std::string error;
  EXPECT_FALSE(load_replay_file("/nonexistent/x.repro", &loaded, &error));
  EXPECT_FALSE(error.empty());
}

TEST(FaultCodec, EveryKindRoundTripsThroughText) {
  for (int k = 0; k < static_cast<int>(chaos::FaultKind::kCount); ++k) {
    chaos::FaultSpec f;
    f.kind = static_cast<chaos::FaultKind>(k);
    f.path = chaos::FaultPath::kAck;
    f.start = sim::Time::milliseconds(1'234);
    f.duration = sim::Time::milliseconds(567);
    f.period = sim::Time::seconds(4);
    f.probability = 0.123456789012345678;
    f.extra_delay = sim::Time::picoseconds(31);
    f.p_enter_bad = 1e-9;
    f.p_exit_bad = 0.25;
    f.loss_in_bad = 0.875;
    f.data_only = true;
    chaos::FaultSpec parsed;
    ASSERT_TRUE(chaos::FaultSpec::from_text(f.to_text(), &parsed))
        << f.to_text();
    EXPECT_EQ(parsed.to_text(), f.to_text());
  }
}

TEST(ReplayArgClassify, IntegersAreSeedsPathsArePaths) {
  ReplayArg a = classify_replay_arg("291");
  EXPECT_TRUE(a.is_seed);
  EXPECT_EQ(a.seed, 291u);
  a = classify_replay_arg("0x1a3");
  EXPECT_TRUE(a.is_seed);
  EXPECT_EQ(a.seed, 0x1a3u);
  a = classify_replay_arg("corpus/audit-x.repro");
  EXPECT_FALSE(a.is_seed);
  EXPECT_EQ(a.path, "corpus/audit-x.repro");
  EXPECT_FALSE(classify_replay_arg("12x").is_seed);
  EXPECT_FALSE(classify_replay_arg("").is_seed);
}

}  // namespace
}  // namespace rrtcp::fuzz
