// Oracle-stack teeth: a healthy case runs clean through every oracle
// (audit, watchdog, dead-flow, double-run determinism, engine
// equivalence); each known-bug mutant is caught and bucketed under ITS
// invariant; structurally invalid cases come back as build-reject buckets
// instead of aborting the campaign.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "fuzz/case_spec.hpp"
#include "fuzz/mutants.hpp"
#include "fuzz/runner.hpp"

namespace rrtcp::fuzz {
namespace {

// Small and hostile enough to exercise loss recovery: three flows into a
// four-packet drop-tail bottleneck. ~1 s of simulated time.
CaseSpec small_case() {
  CaseSpec cs;
  cs.seed = 42;
  cs.n_flows = 3;
  cs.queue_packets = 4;
  cs.bytes_per_flow = 40'000;
  cs.stagger = sim::Time::milliseconds(50);
  cs.horizon = sim::Time::seconds(30);
  cs.wd_stall_ceiling = sim::Time::seconds(10);
  return cs;
}

std::set<std::string> buckets_of(const CaseSpec& cs,
                                 const RunOptions& opts = {}) {
  const RunOutcome out = run_case(cs, opts);
  std::set<std::string> keys;
  for (const Failure& f : out.failures) keys.insert(bucket_key(cs, f));
  return keys;
}

TEST(FuzzOracle, HealthyCaseIsClean) {
  const RunOutcome out = run_case(small_case());
  EXPECT_TRUE(out.built);
  EXPECT_TRUE(out.failures.empty());
  EXPECT_GT(out.events, 0u);
  EXPECT_NE(out.digest, 0u);
}

TEST(FuzzOracle, RunCaseIsDeterministic) {
  const RunOutcome a = run_case(small_case());
  const RunOutcome b = run_case(small_case());
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.events, b.events);
}

TEST(FuzzOracle, DeadRtoMutantCaughtBySpecificBuckets) {
  CaseSpec cs = small_case();
  cs.mutant = "dead-rto";
  const std::set<std::string> keys = buckets_of(cs);
  EXPECT_TRUE(keys.count("audit/RTO_ARMED/dead-rto")) << *keys.begin();
  EXPECT_TRUE(keys.count("watchdog/WD_SILENT_DEATH/dead-rto"));
}

TEST(FuzzOracle, BrokenProbeMutantCaughtByProbeClockInvariant) {
  CaseSpec cs = small_case();
  cs.mutant = "broken-probe";
  EXPECT_TRUE(buckets_of(cs).count("audit/RR_PROBE_CLOCK/broken-probe"));
}

TEST(FuzzOracle, LivelockMutantCaughtByWatchdog) {
  CaseSpec cs = small_case();
  cs.mutant = "livelock-rtx";
  EXPECT_TRUE(buckets_of(cs).count("watchdog/WD_LIVELOCK/livelock-rtx"));
}

TEST(FuzzOracle, InvalidSpecBucketsAsBuildReject) {
  CaseSpec cs = small_case();
  cs.n_flows = 0;
  const RunOutcome out = run_case(cs);
  ASSERT_EQ(out.failures.size(), 1u);
  EXPECT_FALSE(out.built);
  EXPECT_EQ(out.failures[0].kind, OracleKind::kBuildReject);
  EXPECT_EQ(out.failures[0].id, "no-flows");
  EXPECT_EQ(bucket_key(cs, out.failures[0]), "build-reject/no-flows/rr");
}

TEST(FuzzOracle, BucketKeyUsesMutantOverVariant) {
  CaseSpec cs;
  cs.variant = app::Variant::kRr;
  const Failure f{OracleKind::kAudit, "RTO_ARMED", ""};
  EXPECT_EQ(bucket_key(cs, f), "audit/RTO_ARMED/rr");
  cs.mutant = "dead-rto";
  EXPECT_EQ(bucket_key(cs, f), "audit/RTO_ARMED/dead-rto");
}

TEST(FuzzOracle, EveryTopologyFamilyRunsClean) {
  // The oracle stack (including wheel/heap equivalence) holds on every
  // topology family the generator samples, not just the dumbbell.
  for (int t = 0; t < static_cast<int>(TopoKind::kCount); ++t) {
    CaseSpec cs = small_case();
    cs.topo = static_cast<TopoKind>(t);
    cs.queue_packets = 8;  // mesh access links are pre-sized; keep it mild
    const RunOutcome out = run_case(cs);
    EXPECT_TRUE(out.built) << to_string(cs.topo);
    EXPECT_TRUE(out.failures.empty())
        << to_string(cs.topo) << ": "
        << (out.failures.empty() ? "" : out.failures[0].detail);
  }
}

TEST(FuzzOracle, MutantRegistryIsSortedAndResolvable) {
  const auto names = mutant_names();
  ASSERT_GE(names.size(), 3u);
  for (std::size_t i = 1; i < names.size(); ++i)
    EXPECT_LT(names[i - 1], names[i]);
  for (const std::string_view n : names) {
    EXPECT_TRUE(is_mutant(n));
    EXPECT_NE(mutant_flow_maker(n), nullptr);
  }
  EXPECT_FALSE(is_mutant("no-such-mutant"));
  EXPECT_EQ(mutant_flow_maker("no-such-mutant"), nullptr);
}

}  // namespace
}  // namespace rrtcp::fuzz
