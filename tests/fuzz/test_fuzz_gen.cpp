// SpecGenerator properties: generate(i) is a pure function of
// (master_seed, i), every sample is valid by construction, and the sample
// space actually covers the topology/queue families it claims to.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "fuzz/campaign.hpp"
#include "fuzz/serialize.hpp"
#include "fuzz/spec_gen.hpp"
#include "harness/scenario.hpp"

namespace rrtcp::fuzz {
namespace {

TEST(SpecGen, DeterministicPerIndex) {
  const SpecGenerator a{42};
  const SpecGenerator b{42};
  for (std::uint64_t i = 0; i < 16; ++i) {
    // to_replay_text serializes every field; equal text == equal case.
    EXPECT_EQ(to_replay_text(a.generate(i)), to_replay_text(b.generate(i)))
        << "index " << i;
  }
}

TEST(SpecGen, DifferentIndicesDiffer) {
  const SpecGenerator gen{42};
  EXPECT_NE(to_replay_text(gen.generate(0)), to_replay_text(gen.generate(1)));
}

TEST(SpecGen, DifferentMasterSeedsDiffer) {
  EXPECT_NE(to_replay_text(SpecGenerator{1}.generate(0)),
            to_replay_text(SpecGenerator{2}.generate(0)));
}

TEST(SpecGen, EverySampleIsValid) {
  // A kBuildReject from a generated case is a generator bug; pin the
  // validity contract directly against Scenario::validate.
  const SpecGenerator gen{7};
  for (std::uint64_t i = 0; i < 200; ++i) {
    const CaseSpec cs = gen.generate(i);
    const harness::ScenarioSpec spec = materialize(cs);
    const auto err = harness::Scenario::validate(spec);
    EXPECT_FALSE(err.has_value())
        << "index " << i << ": " << harness::to_string(err->code) << " ("
        << err->detail << ")";
  }
}

TEST(SpecGen, CoversTopologyAndQueueSpace) {
  const SpecGenerator gen{7};
  std::set<TopoKind> topos;
  std::set<QueueKind> queues;
  bool faulted = false;
  bool fault_free = false;
  for (std::uint64_t i = 0; i < 200; ++i) {
    const CaseSpec cs = gen.generate(i);
    topos.insert(cs.topo);
    queues.insert(cs.queue);
    (cs.plan.empty() ? fault_free : faulted) = true;
  }
  EXPECT_EQ(topos.size(), static_cast<std::size_t>(TopoKind::kCount));
  EXPECT_EQ(queues.size(), static_cast<std::size_t>(QueueKind::kCount));
  EXPECT_TRUE(faulted);
  EXPECT_TRUE(fault_free);
}

TEST(SpecGen, GeneratedCasesAreNeverMutants) {
  const SpecGenerator gen{7};
  for (std::uint64_t i = 0; i < 50; ++i)
    EXPECT_TRUE(gen.generate(i).mutant.empty());
}

TEST(CampaignCase, MutantInjectedOnEveryKthIndex) {
  CampaignOptions opts;
  opts.seed = 42;
  opts.mutant = "dead-rto";
  opts.mutant_every = 5;
  EXPECT_EQ(campaign_case(opts, 0).mutant, "dead-rto");
  EXPECT_EQ(campaign_case(opts, 5).mutant, "dead-rto");
  EXPECT_TRUE(campaign_case(opts, 1).mutant.empty());
  EXPECT_TRUE(campaign_case(opts, 4).mutant.empty());
  // Everything except the mutant marker matches the plain sample: the
  // mutant runs the very scenario the healthy sender would have.
  CaseSpec plain = SpecGenerator{opts.seed}.generate(5);
  CaseSpec mutated = campaign_case(opts, 5);
  mutated.mutant.clear();
  EXPECT_EQ(to_replay_text(mutated), to_replay_text(plain));
}

}  // namespace
}  // namespace rrtcp::fuzz
