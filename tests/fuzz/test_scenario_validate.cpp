// Graceful spec rejection (satellite S1): structurally invalid
// ScenarioSpecs come back from Scenario::validate / Scenario::try_build as
// typed SpecErrors instead of tripping construction-time asserts — the
// contract the fuzz generator (discard-and-resample) and the replay loader
// (bucket a bad file as build-reject) both rest on.
#include <gtest/gtest.h>

#include "harness/scenario.hpp"

namespace rrtcp::harness {
namespace {

using Code = SpecError::Code;

ScenarioSpec minimal_dumbbell() {
  ScenarioSpec spec;
  FlowSpec f;
  f.bytes = 20'000;
  spec.add_flow(f);
  spec.horizon = sim::Time::seconds(30);
  return spec;
}

// A two-node graph with one duplex link and a single flow across it.
ScenarioSpec minimal_graph() {
  ScenarioSpec spec;
  spec.graph.add_node("a");
  spec.graph.add_node("b");
  spec.graph.add_duplex(0, 1, 1'000'000, sim::Time::milliseconds(10), 16);
  FlowSpec f;
  f.bytes = 20'000;
  f.src_node = 0;
  f.dst_node = 1;
  spec.add_flow(f);
  spec.horizon = sim::Time::seconds(30);
  return spec;
}

std::optional<Code> code_of(const ScenarioSpec& spec) {
  const std::optional<SpecError> err = Scenario::validate(spec);
  if (!err) return std::nullopt;
  return err->code;
}

TEST(SpecValidate, MinimalSpecsAreValidAndBuild) {
  EXPECT_EQ(code_of(minimal_dumbbell()), std::nullopt);
  EXPECT_EQ(code_of(minimal_graph()), std::nullopt);
  SpecError err;
  EXPECT_NE(Scenario::try_build(minimal_dumbbell(), &err), nullptr);
  EXPECT_NE(Scenario::try_build(minimal_graph(), &err), nullptr);
}

TEST(SpecValidate, EmptyFlowListRejected) {
  ScenarioSpec spec = minimal_dumbbell();
  spec.flows.clear();
  EXPECT_EQ(code_of(spec), Code::kNoFlows);
}

TEST(SpecValidate, NonPositiveHorizonRejected) {
  ScenarioSpec spec = minimal_dumbbell();
  spec.horizon = sim::Time::zero();
  EXPECT_EQ(code_of(spec), Code::kBadHorizon);
}

TEST(SpecValidate, ZeroBottleneckRateRejected) {
  ScenarioSpec spec = minimal_dumbbell();
  spec.topology.bottleneck_bps = 0;
  EXPECT_EQ(code_of(spec), Code::kBadRate);
}

TEST(SpecValidate, ZeroGraphLinkRateRejected) {
  ScenarioSpec spec = minimal_graph();
  spec.graph.links[0].bandwidth_bps = 0;
  EXPECT_EQ(code_of(spec), Code::kBadRate);
}

TEST(SpecValidate, LinkEndpointOutOfRangeRejected) {
  ScenarioSpec spec = minimal_graph();
  spec.graph.links[0].to = 9;  // only nodes 0 and 1 exist
  EXPECT_EQ(code_of(spec), Code::kBadLink);
}

TEST(SpecValidate, FlowEndpointOutOfRangeRejected) {
  ScenarioSpec spec = minimal_graph();
  spec.flows[0].dst_node = 7;
  EXPECT_EQ(code_of(spec), Code::kBadEndpoint);
}

TEST(SpecValidate, MissingGraphEndpointRejected) {
  ScenarioSpec spec = minimal_graph();
  spec.flows[0].src_node = -1;  // graph mode requires explicit placement
  EXPECT_EQ(code_of(spec), Code::kBadEndpoint);
}

TEST(SpecValidate, DisconnectedEndpointsRejected) {
  // Four nodes, one duplex link between 0 and 1: a flow 2 -> 3 has no
  // path in either direction.
  ScenarioSpec spec = minimal_graph();
  spec.graph.add_node("c");
  spec.graph.add_node("d");
  spec.flows[0].src_node = 2;
  spec.flows[0].dst_node = 3;
  EXPECT_EQ(code_of(spec), Code::kUnroutable);
}

TEST(SpecValidate, OneWayReachabilityStillUnroutable) {
  // A single directed link 0 -> 1: data can cross but ACKs cannot return.
  ScenarioSpec spec = minimal_graph();
  spec.graph.links.pop_back();  // drop the reverse half of the duplex
  EXPECT_EQ(code_of(spec), Code::kUnroutable);
}

TEST(SpecValidate, BadCbrRejected) {
  ScenarioSpec spec = minimal_graph();
  CbrSpec cbr;  // graph mode with no endpoints and no rate
  spec.add_cbr(cbr);
  EXPECT_EQ(code_of(spec), Code::kBadCbr);
}

TEST(SpecValidate, TryBuildReportsTheError) {
  ScenarioSpec spec = minimal_dumbbell();
  spec.flows.clear();
  SpecError err;
  EXPECT_EQ(Scenario::try_build(spec, &err), nullptr);
  EXPECT_EQ(err.code, Code::kNoFlows);
  EXPECT_FALSE(err.detail.empty());
}

TEST(SpecValidate, CodeNamesAreStable) {
  // The fuzz runner embeds these names in bucket keys; renaming one
  // silently orphans checked-in corpus files.
  EXPECT_STREQ(to_string(Code::kNoFlows), "no-flows");
  EXPECT_STREQ(to_string(Code::kBadHorizon), "bad-horizon");
  EXPECT_STREQ(to_string(Code::kBadRate), "bad-rate");
  EXPECT_STREQ(to_string(Code::kBadLink), "bad-link");
  EXPECT_STREQ(to_string(Code::kBadEndpoint), "bad-endpoint");
  EXPECT_STREQ(to_string(Code::kUnroutable), "unroutable");
  EXPECT_STREQ(to_string(Code::kBadCbr), "bad-cbr");
}

}  // namespace
}  // namespace rrtcp::harness
