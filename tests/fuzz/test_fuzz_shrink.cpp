// Delta-debugging shrinker coverage (satellite S3): shrinking preserves
// the failure bucket, minimized cases are fixed points (idempotence), an
// input that does not reproduce its bucket comes back untouched, and the
// whole campaign — sweep, triage, shrink, report — is byte-identical
// whatever --threads says.
#include <gtest/gtest.h>

#include <string>

#include "fuzz/campaign.hpp"
#include "fuzz/runner.hpp"
#include "fuzz/serialize.hpp"
#include "fuzz/shrink.hpp"

namespace rrtcp::fuzz {
namespace {

// A deliberately bloated failing case: parking lot, four faults, three
// flows, RED-ish sized drop-tail, long horizon. The dead-rto mutant fails
// in it for reasons independent of all that bloat, so the shrinker has
// real material to remove.
CaseSpec bloated_dead_rto_case() {
  CaseSpec cs;
  cs.seed = 42;
  cs.mutant = "dead-rto";
  cs.topo = TopoKind::kParkingLot;
  cs.hops = 3;
  cs.n_flows = 3;
  cs.bytes_per_flow = 60'000;
  cs.stagger = sim::Time::milliseconds(200);
  cs.horizon = sim::Time::seconds(60);
  cs.wd_stall_ceiling = sim::Time::seconds(10);
  for (int i = 0; i < 4; ++i) {
    chaos::FaultSpec f;
    f.kind = chaos::FaultKind::kDelaySpike;
    f.path = i % 2 == 0 ? chaos::FaultPath::kData : chaos::FaultPath::kAck;
    f.start = sim::Time::seconds(1 + i);
    f.duration = sim::Time::milliseconds(500);
    f.probability = 0.5;
    f.extra_delay = sim::Time::milliseconds(40);
    cs.plan.faults.push_back(f);
  }
  return cs;
}

bool hits_bucket(const CaseSpec& cs, const std::string& bucket) {
  const RunOutcome out = run_case(cs, RunOptions{false, false});
  for (const Failure& f : out.failures)
    if (bucket_key(cs, f) == bucket) return true;
  return false;
}

constexpr const char* kBucket = "watchdog/WD_SILENT_DEATH/dead-rto";

TEST(Shrink, PreservesBucketAndHalvesTheCase) {
  const CaseSpec original = bloated_dead_rto_case();
  ASSERT_TRUE(hits_bucket(original, kBucket));

  const ShrinkResult r = shrink(original, kBucket);
  EXPECT_GT(r.attempts, 0);
  EXPECT_GT(r.accepted, 0);
  // The minimized case still fails the same way...
  EXPECT_TRUE(hits_bucket(r.spec, kBucket));
  // ...with at most half the fault events and flows of the original (the
  // acceptance bar; in practice both collapse much further).
  EXPECT_LE(r.spec.plan.faults.size(), original.plan.faults.size() / 2);
  EXPECT_LE(r.spec.n_flows, original.n_flows / 2);
  EXPECT_LT(r.spec.horizon.ps(), original.horizon.ps());
  // Structural collapse: parking lot reduced to the dumbbell.
  EXPECT_EQ(r.spec.topo, TopoKind::kDumbbell);
  // The mutant marker itself is never shrunk away.
  EXPECT_EQ(r.spec.mutant, "dead-rto");
}

TEST(Shrink, IsIdempotent) {
  const ShrinkResult first = shrink(bloated_dead_rto_case(), kBucket);
  const ShrinkResult second = shrink(first.spec, kBucket);
  EXPECT_EQ(second.accepted, 0);
  EXPECT_EQ(to_replay_text(second.spec), to_replay_text(first.spec));
}

TEST(Shrink, NonReproducingInputReturnedUnchanged) {
  CaseSpec healthy = bloated_dead_rto_case();
  healthy.mutant.clear();  // the same scenario with a working sender
  const ShrinkResult r = shrink(healthy, kBucket);
  EXPECT_EQ(r.accepted, 0);
  EXPECT_EQ(to_replay_text(r.spec), to_replay_text(healthy));
}

TEST(Campaign, OutputByteIdenticalAcrossThreadCounts) {
  CampaignOptions opts;
  opts.n_cases = 16;
  opts.seed = 11;
  opts.mutant = "dead-rto";
  opts.mutant_every = 8;
  opts.shrink_opts.max_attempts = 60;

  opts.threads = 1;
  const CampaignResult serial = run_campaign(opts);
  opts.threads = 3;
  const CampaignResult parallel = run_campaign(opts);

  EXPECT_EQ(serial.cases_run, opts.n_cases);
  EXPECT_GT(serial.triage.n_buckets(), 0u);
  EXPECT_EQ(serial.sink->to_csv(), parallel.sink->to_csv());
  EXPECT_EQ(serial.triage.report(), parallel.triage.report());
}

TEST(Campaign, TriageDedupsAndRecordsFirstIndex) {
  CampaignOptions opts;
  opts.n_cases = 16;
  opts.seed = 11;
  opts.mutant = "dead-rto";
  opts.mutant_every = 8;
  opts.shrink = false;  // dedup behavior only; shrinking pinned above
  const CampaignResult result = run_campaign(opts);

  // Indices 0 and 8 ran the mutant; every mutant bucket dedups to first
  // sighting at index 0 and counts hits from both.
  for (const auto& [key, t] : result.triage.buckets()) {
    if (key.find("dead-rto") == std::string::npos) continue;
    EXPECT_EQ(t.first_index, 0u) << key;
    EXPECT_GE(t.hits, 2u) << key;
    EXPECT_FALSE(t.minimized);
  }
  EXPECT_GE(result.cases_failed, 2u);
}

}  // namespace
}  // namespace rrtcp::fuzz
