// ACK-path robustness for Robust Recovery: the feedback channel itself is
// unreliable — ACKs get lost, duplicated, and reordered — and the state
// machine must come out of every mangled episode with the paper's exit
// property intact (cwnd = actnum x MSS) and zero invariant violations.
// Every scenario runs with a recording AuditSession attached, so the
// checks of src/audit watch the whole journey.
#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "audit/invariant_auditor.hpp"
#include "core/rr_sender.hpp"

namespace rrtcp::core {
namespace {

using sim::Time;
using test::SenderHarness;

tcp::TcpConfig cwnd(std::uint64_t pkts) {
  tcp::TcpConfig cfg;
  cfg.init_cwnd_pkts = pkts;
  return cfg;
}

// Window of 10 packets in flight, audit armed from the first segment.
struct AckPathFixture : ::testing::Test {
  AckPathFixture()
      : h{cwnd(10)},
        session{h.sim, audit::AuditSession::FailMode::kRecord} {
    session.attach(h.sender());
    h.sender().start();
    EXPECT_EQ(h.wire.data().size(), 10u);
  }
  SenderHarness<RrSender> h;
  audit::AuditSession session;
};

TEST_F(AckPathFixture, DuplicatedCumulativeAckIsIdempotent) {
  h.dupacks(3);   // entry
  h.dupacks(4);   // retreat: 2 new packets
  h.ack(4000);    // probe, actnum 2
  const long actnum = h.sender().actnum();
  h.wire.clear();
  h.ack(4000);  // the network re-delivers the partial ACK: now a dup ACK
  // One more dup ACK of the probe RTT: exactly one self-clocked packet,
  // no state regression.
  EXPECT_TRUE(h.sender().in_probe());
  EXPECT_EQ(h.sender().actnum(), actnum);
  EXPECT_EQ(h.sender().ndup(), 1);
  EXPECT_TRUE(session.clean()) << session.violations().size() << " violations";
}

TEST_F(AckPathFixture, ReorderedStaleAckIsIgnored) {
  h.dupacks(3);
  h.ack(4000);  // una = 4000
  h.wire.clear();
  h.ack(2000);  // older ACK arrives late, out of order
  EXPECT_EQ(h.sender().snd_una(), 4000u);  // no regression
  EXPECT_TRUE(h.wire.packets.empty());     // and no transmission either
  EXPECT_TRUE(session.clean());
}

TEST_F(AckPathFixture, LostPartialAckDuringProbeIsAbsorbedByTheNext) {
  h.dupacks(3);  // holes at 0 and 4000
  h.dupacks(4);  // retreat: 2 new packets
  h.ack(4000);   // probe, actnum 2, rtx 4000
  h.dupacks(2);  // both retreat packets arrived
  // The partial ACK for 8000 is LOST in the reverse path. The rtx of the
  // next hole never happens off that ACK — but the following cumulative
  // ACK (receiver keeps ACKing as data lands) covers the same ground.
  h.ack(9000);  // skips the lost boundary, still < recover (10'000)
  EXPECT_TRUE(h.sender().in_recovery());
  EXPECT_EQ(h.sender().snd_una(), 9000u);
  h.dupacks(3);
  h.ack(14'000);  // beyond recover: exit
  EXPECT_FALSE(h.sender().in_recovery());
  EXPECT_TRUE(session.clean()) << session.violations().size() << " violations";
}

TEST_F(AckPathFixture, ExitCwndIsActnumTimesMssAfterMangledAcks) {
  h.dupacks(3);
  h.dupacks(4);   // retreat: 2 new packets
  h.ack(4000);    // probe, actnum 2
  h.ack(4000);    // duplicated partial ACK (re-delivered)
  h.dupacks(1);   // plus a genuine dup ACK
  h.ack(8000);    // clean boundary
  h.dupacks(3);
  const long actnum = h.sender().actnum();
  h.ack(14'000);  // exit
  EXPECT_FALSE(h.sender().in_recovery());
  EXPECT_EQ(h.sender().cwnd_bytes(),
            static_cast<std::uint64_t>(actnum) * h.sender().config().mss);
  EXPECT_TRUE(session.clean()) << session.violations().size() << " violations";
}

TEST_F(AckPathFixture, TotalAckLossFallsBackToRtoRecovery) {
  h.dupacks(3);  // in recovery, and then the ACK channel dies entirely
  h.sim.run_until(Time::seconds(20));  // nothing arrives; RTO must fire
  EXPECT_GE(h.sender().stats().timeouts, 1u);
  EXPECT_EQ(h.sender().cwnd_bytes(), h.sender().config().mss);
  EXPECT_FALSE(h.sender().in_recovery());  // timeout cleans RR state
  EXPECT_EQ(h.sender().phase(), tcp::TcpPhase::kRtoRecovery);
  EXPECT_TRUE(h.sender().rto_pending());  // escape hatch re-armed
  EXPECT_TRUE(session.clean()) << session.violations().size() << " violations";
}

TEST_F(AckPathFixture, DupAcksWhileInRtoRecoveryDoNotDerail) {
  h.dupacks(3);
  h.sim.run_until(Time::seconds(5));  // first timeout fired
  ASSERT_GE(h.sender().stats().timeouts, 1u);
  // Stragglers from the pre-timeout window arrive as dup ACKs.
  h.dupacks(4);
  EXPECT_TRUE(h.sender().rto_pending());
  h.ack(10'000);  // cumulative ACK finally covers everything outstanding
  EXPECT_EQ(h.sender().snd_una(), 10'000u);
  EXPECT_TRUE(session.clean()) << session.violations().size() << " violations";
}

}  // namespace
}  // namespace rrtcp::core
