// Tests for RR's hardening measures and their knobs (implementation
// notes 1-3 in core/rr_sender.cpp).
#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "core/rr_sender.hpp"

namespace rrtcp::core {
namespace {

using test::SenderHarness;

tcp::TcpConfig cwnd10() {
  tcp::TcpConfig cfg;
  cfg.init_cwnd_pkts = 10;
  return cfg;
}

// Drive into probe with a known actnum: window 10, holes at 0 and 4000.
template <typename H>
void enter_probe(H& h) {
  h.sender().start();
  h.dupacks(3);
  h.dupacks(5);   // retreat: sends 2 new packets
  h.ack(4000);    // probe, actnum = 2, rtx 4000
}

TEST(RrOrdering, ProbeFirstSendsProbeThenRetransmission) {
  SenderHarness<RrSender> h{cwnd10()};
  enter_probe(h);
  h.dupacks(2);
  h.wire.clear();
  h.ack(8000);  // clean boundary
  auto seqs = h.sent_seqs();
  ASSERT_EQ(seqs.size(), 2u);
  EXPECT_GT(seqs[0], seqs[1]);  // probe packet (new data) first
}

TEST(RrOrdering, NaiveOrderRetransmitsFirst) {
  auto cfg = cwnd10();
  cfg.rr_probe_packet_first = false;
  SenderHarness<RrSender> h{cfg};
  enter_probe(h);
  h.dupacks(2);
  h.wire.clear();
  h.ack(8000);
  auto seqs = h.sent_seqs();
  ASSERT_EQ(seqs.size(), 2u);
  EXPECT_LT(seqs[0], seqs[1]);  // hole retransmission first
}

TEST(RrBudget, LiteralModeRetransmitsAtEveryExtendedBoundary) {
  auto cfg = cwnd10();
  cfg.rr_budget_rtx = false;
  SenderHarness<RrSender> h{cfg};
  enter_probe(h);
  // Further loss: only 1 of 2 recovery packets delivered.
  h.dupacks(1);
  h.ack(10'000);  // detection: recover extends; rtx of 10000 (budget n/a)
  ASSERT_TRUE(h.sender().in_probe());
  h.wire.clear();
  // Now a clean boundary in EXTENDED territory (una >= entry recover):
  // with the budget off, the boundary retransmits snd_una even though
  // it may merely be in flight.
  h.dupacks(1);
  h.ack(12'000);
  auto seqs = h.sent_seqs();
  // probe extra (new data) + unconditional boundary rtx of 12000.
  ASSERT_GE(seqs.size(), 2u);
  EXPECT_NE(std::find(seqs.begin(), seqs.end(), 12'000u), seqs.end());
}

TEST(RrBudget, BudgetModeSuppressesUnfundedBoundaryRtx) {
  SenderHarness<RrSender> h{cwnd10()};
  enter_probe(h);
  h.dupacks(1);
  h.ack(10'000);  // detection consumes the single budgeted rtx
  ASSERT_TRUE(h.sender().in_probe());
  h.wire.clear();
  h.dupacks(1);
  h.ack(12'000);  // clean extended-territory boundary: no budget left
  for (auto s : h.sent_seqs()) EXPECT_NE(s, 12'000u);
}

TEST(RrRescue, RepairsLostRetransmissionFromDupAckCount) {
  SenderHarness<RrSender> h{cwnd10()};
  enter_probe(h);  // actnum = 2; the rtx of 4000 will be "lost"
  h.wire.clear();
  // Expected deliveries per RTT = actnum (2); after 2 + threshold (3) = 5
  // dup ACKs with snd_una unmoved, the rescue fires exactly once.
  h.dupacks(4);
  EXPECT_EQ(h.sender().rescue_retransmissions(), 0u);
  h.dupacks(1);
  EXPECT_EQ(h.sender().rescue_retransmissions(), 1u);
  auto seqs = h.sent_seqs();
  EXPECT_NE(std::find(seqs.begin(), seqs.end(), 4000u), seqs.end());
  // More dup ACKs in the same stall do not re-fire.
  h.dupacks(5);
  EXPECT_EQ(h.sender().rescue_retransmissions(), 1u);
}

TEST(RrRescue, DisabledByKnob) {
  auto cfg = cwnd10();
  cfg.rr_rescue_rtx = false;
  SenderHarness<RrSender> h{cfg};
  enter_probe(h);
  h.wire.clear();
  h.dupacks(12);
  EXPECT_EQ(h.sender().rescue_retransmissions(), 0u);
  for (auto s : h.sent_seqs()) EXPECT_NE(s, 4000u);  // never re-sent
}

TEST(RrRescue, AlsoCoversTheRetreatEntryRetransmission) {
  SenderHarness<RrSender> h{cwnd10()};
  h.sender().start();
  h.dupacks(3);  // entry rtx of 0 — assume it is lost
  h.wire.clear();
  // Expected dup ACKs in the retreat RTT ~ window (10); rescue after
  // 10 + 3 = 13 dup ACKs at the same snd_una (3 already counted).
  h.dupacks(9);  // dupacks() = 12
  EXPECT_EQ(h.sender().rescue_retransmissions(), 0u);
  h.dupacks(1);  // dupacks() = 13
  EXPECT_EQ(h.sender().rescue_retransmissions(), 1u);
  auto seqs = h.sent_seqs();
  EXPECT_NE(std::find(seqs.begin(), seqs.end(), 0u), seqs.end());
}

TEST(RrRescue, BoundaryResetsTheOncePerRttLatch) {
  SenderHarness<RrSender> h{cwnd10()};
  enter_probe(h);
  h.wire.clear();
  h.dupacks(5);  // rescue #1 fires
  ASSERT_EQ(h.sender().rescue_retransmissions(), 1u);
  h.ack(8000);   // a boundary opens a new RTT (further-loss branch here)
  ASSERT_TRUE(h.sender().in_probe());
  // A fresh stall in the new RTT can rescue again.
  h.dupacks(8);
  EXPECT_EQ(h.sender().rescue_retransmissions(), 2u);
}

}  // namespace
}  // namespace rrtcp::core
