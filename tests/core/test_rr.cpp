// State-machine tests for Robust Recovery — the paper's algorithm
// (Section 2, Figures 1-3). Each test hand-drives an ACK stream that
// corresponds to a concrete loss scenario and pins the transitions the
// paper specifies.
#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "core/rr_sender.hpp"

namespace rrtcp::core {
namespace {

using tcp::TcpPhase;
using test::SenderHarness;

tcp::TcpConfig cwnd(std::uint64_t pkts) {
  tcp::TcpConfig cfg;
  cfg.init_cwnd_pkts = pkts;
  return cfg;
}

// Common setup: window of 10 packets all in flight, then 3 dup ACKs as if
// segment 0 was lost and 1..3 arrived.
struct RrFixture : ::testing::Test {
  RrFixture() : h{cwnd(10)} {
    h.sender().start();
    EXPECT_EQ(h.wire.data().size(), 10u);
  }
  SenderHarness<RrSender> h;
};

TEST_F(RrFixture, EntryLeavesCwndUntouched) {
  h.wire.clear();
  h.dupacks(3);
  EXPECT_TRUE(h.sender().in_retreat());
  EXPECT_EQ(h.sender().phase(), TcpPhase::kRetreat);
  // The defining difference from Reno/New-Reno: cwnd is NOT the controller
  // during recovery and stays at its pre-loss value.
  EXPECT_EQ(h.sender().cwnd_bytes(), 10'000u);
  EXPECT_EQ(h.sender().ssthresh_bytes(), 5000u);  // win * 1/2
  EXPECT_EQ(h.sender().recover_point(), 10'000u); // maxseq at entry
  EXPECT_EQ(h.sender().actnum(), 0);              // zero through retreat
  EXPECT_EQ(h.sent_seqs(), (std::vector<std::uint64_t>{0}));  // first rtx
}

TEST_F(RrFixture, TwoDupAcksDoNotTrigger) {
  h.wire.clear();
  h.dupacks(2);
  EXPECT_FALSE(h.sender().in_recovery());
  EXPECT_TRUE(h.wire.packets.empty());
}

TEST_F(RrFixture, RetreatSendsOneNewPacketPerTwoDupAcks) {
  h.dupacks(3);
  h.wire.clear();
  // Five more dup ACKs arrive in the retreat RTT (segments 5..9 delivered
  // while 0 and 4 were lost): new data goes out on the 2nd and 4th.
  h.dupacks(5);
  EXPECT_EQ(h.sent_seqs(), (std::vector<std::uint64_t>{10'000, 11'000}));
  EXPECT_EQ(h.sender().ndup(), 5);
  EXPECT_EQ(h.sender().actnum(), 0);
  EXPECT_TRUE(h.sender().in_retreat());
}

TEST_F(RrFixture, FirstPartialAckStartsProbeWithMeasuredActnum) {
  h.dupacks(3);
  h.dupacks(5);  // 2 new packets sent during retreat
  h.wire.clear();
  h.ack(4000);  // first partial ACK: hole at 4000
  EXPECT_TRUE(h.sender().in_probe());
  EXPECT_EQ(h.sender().phase(), TcpPhase::kProbe);
  // actnum = new packets sent in the retreat RTT (= ndup/2).
  EXPECT_EQ(h.sender().actnum(), 2);
  EXPECT_EQ(h.sender().ndup(), 0);  // new RTT begins
  // The partial ACK triggers an immediate retransmission of the hole.
  EXPECT_EQ(h.sent_seqs(), (std::vector<std::uint64_t>{4000}));
  // cwnd is still not touched.
  EXPECT_EQ(h.sender().cwnd_bytes(), 10'000u);
}

TEST_F(RrFixture, ProbeSendsOneNewPacketPerDupAck) {
  h.dupacks(3);
  h.dupacks(5);
  h.ack(4000);
  h.wire.clear();
  // The two retreat packets (10000, 11000) arrive: one dup ACK each, and
  // RR answers each with one new packet (right-edge self-clocking).
  h.dupacks(2);
  EXPECT_EQ(h.sent_seqs(), (std::vector<std::uint64_t>{12'000, 13'000}));
  EXPECT_EQ(h.sender().ndup(), 2);
}

TEST_F(RrFixture, CleanPartialAckGrowsActnumLinearly) {
  h.dupacks(3);   // entry (holes at 0, 4000, 8000)
  h.dupacks(4);   // retreat: segments 5,6,7,9 arrive -> 2 new packets
  h.ack(4000);    // probe, actnum = 2
  h.dupacks(2);   // both new packets arrived: ndup = 2
  h.wire.clear();
  h.ack(8000);    // clean RTT boundary: ndup == actnum
  EXPECT_EQ(h.sender().actnum(), 3);  // linear growth, like CA
  EXPECT_EQ(h.sender().ndup(), 0);
  // ONE extra probe packet plus the retransmission of the hole. The probe
  // packet is serialized first so its dup ACK lands inside the closing
  // RTT (see the ordering note in rr_sender.cpp).
  auto seqs = h.sent_seqs();
  ASSERT_EQ(seqs.size(), 2u);
  EXPECT_EQ(seqs[0], 14'000u);
  EXPECT_EQ(seqs[1], 8000u);
  EXPECT_EQ(h.sender().further_loss_events(), 0u);
}

TEST_F(RrFixture, ExitRestoresCwndFromActnum) {
  h.dupacks(3);
  h.dupacks(4);
  h.ack(4000);   // probe, actnum 2
  h.dupacks(2);
  h.ack(8000);   // actnum 3
  h.dupacks(3);  // three new packets arrive
  h.wire.clear();
  h.ack(12'000);  // >= recover (10000): exit
  EXPECT_FALSE(h.sender().in_recovery());
  // cwnd = actnum * MSS: the accurate in-flight measurement. ssthresh
  // keeps its entry value (5000), so the sender slow-starts back up to it.
  EXPECT_EQ(h.sender().cwnd_bytes(), 3000u);
  EXPECT_EQ(h.sender().ssthresh_bytes(), 5000u);
  EXPECT_EQ(h.sender().phase(), TcpPhase::kSlowStart);
  EXPECT_EQ(h.sender().actnum(), 0);
  // No big-ACK burst: flight (15000-12000=3000) already fills cwnd, so the
  // exit ACK releases nothing here.
  EXPECT_TRUE(h.wire.data().empty());
}

TEST_F(RrFixture, SingleLossExitsAfterRetreat) {
  h.dupacks(3);   // entry, rtx 0
  h.dupacks(6);   // whole rest of the window arrives: 3 new packets sent
  h.wire.clear();
  h.ack(10'000);  // rtx delivered: everything covered, >= recover
  EXPECT_FALSE(h.sender().in_recovery());
  // actnum for the exit is what the retreat actually put in flight;
  // below the entry ssthresh (5000), so a short slow start follows.
  EXPECT_EQ(h.sender().cwnd_bytes(), 3000u);
  EXPECT_EQ(h.sender().phase(), TcpPhase::kSlowStart);
}

TEST_F(RrFixture, FurtherLossShrinksActnumAndExtendsExit) {
  h.dupacks(3);  // holes at 0 and 4000
  h.dupacks(5);  // retreat sends 10000, 11000 — and 10000 will be lost
  h.ack(4000);   // probe, actnum 2, rtx 4000
  h.dupacks(1);  // only 11000 arrived: ndup 1 < actnum 2; sends 12000
  h.wire.clear();
  // rtx of 4000 fills through 9999; 10000 is missing: partial ACK at the
  // ORIGINAL exit threshold. Must NOT exit — further loss detected.
  h.ack(10'000);
  EXPECT_TRUE(h.sender().in_probe());
  EXPECT_EQ(h.sender().further_loss_events(), 1u);
  EXPECT_EQ(h.sender().actnum(), 1);           // linear back-off to ndup
  EXPECT_EQ(h.sender().recover_point(), 13'000u);  // extended to maxseq
  // The new hole is retransmitted immediately — no 3-dupack wait.
  EXPECT_EQ(h.sent_seqs(), (std::vector<std::uint64_t>{10'000}));
}

TEST_F(RrFixture, RecoversFromFurtherLossAndExitsExtended) {
  h.dupacks(3);
  h.dupacks(5);
  h.ack(4000);
  h.dupacks(1);
  h.ack(10'000);  // further loss handling (tested above)
  h.wire.clear();
  h.dupacks(1);   // 12000 arrives: ndup 1, send 13000
  h.ack(13'000);  // rtx 10000 delivered; covers through extended recover
  EXPECT_FALSE(h.sender().in_recovery());
  EXPECT_EQ(h.sender().cwnd_bytes(), 1000u);  // actnum was 1 at exit
  // Below the entry ssthresh: slow start climbs back to it.
  EXPECT_EQ(h.sender().phase(), TcpPhase::kSlowStart);
  EXPECT_EQ(h.sender().ssthresh_bytes(), 5000u);
}

TEST_F(RrFixture, AckLossLooksLikeFurtherLossOnlyLinear) {
  // Pure ACK loss: data all arrives but one dup ACK is lost. RR reacts
  // with a linear (not multiplicative) decrease — paper Section 2.3.
  h.dupacks(3);
  h.dupacks(4);  // retreat: 2 new packets
  h.ack(4000);   // probe, actnum 2
  h.dupacks(1);  // one dup ACK lost in the network: ndup 1
  const auto ssthresh = h.sender().ssthresh_bytes();
  const auto cwnd = h.sender().cwnd_bytes();
  h.ack(8000);
  EXPECT_EQ(h.sender().actnum(), 1);  // ndup, linear shrink
  EXPECT_TRUE(h.sender().in_probe());
  // No multiplicative action: ssthresh and cwnd untouched.
  EXPECT_EQ(h.sender().ssthresh_bytes(), ssthresh);
  EXPECT_EQ(h.sender().cwnd_bytes(), cwnd);
}

TEST_F(RrFixture, ExitAckReleasesAtMostConservation) {
  // Construct an exit where cwnd(actnum) slightly exceeds flight so the
  // exit ACK releases exactly the conservation amount, never a burst.
  h.dupacks(3);
  h.dupacks(6);   // 3 new packets in retreat
  h.ack(4000);    // probe, actnum 3
  h.dupacks(3);   // ndup 3, sends 3 new
  h.wire.clear();
  h.ack(13'000);  // exit; una jumps 9 packets (the "big ACK")
  ASSERT_FALSE(h.sender().in_recovery());
  // New-Reno would blast out up to cwnd-flight here; RR's accurate cwnd
  // means at most ~1 packet of slack.
  EXPECT_LE(h.wire.data().size(), 1u);
}

TEST_F(RrFixture, TimeoutAbandonsRecovery) {
  h.dupacks(3);
  ASSERT_TRUE(h.sender().in_retreat());
  h.sim.run_until(sim::Time::seconds(5));
  EXPECT_GE(h.sender().stats().timeouts, 1u);
  EXPECT_FALSE(h.sender().in_recovery());
  EXPECT_EQ(h.sender().phase(), TcpPhase::kRtoRecovery);
  EXPECT_EQ(h.sender().cwnd_bytes(), 1000u);
  EXPECT_EQ(h.sender().actnum(), 0);
}

TEST_F(RrFixture, NoReentryForPreTimeoutDupAcks) {
  h.dupacks(3);
  h.sim.run_until(sim::Time::seconds(5));
  ASSERT_GE(h.sender().stats().timeouts, 1u);
  const auto episodes = h.sender().stats().fast_retransmits;
  h.dupacks(3);  // stale dup ACKs below the post-timeout recover point
  EXPECT_EQ(h.sender().stats().fast_retransmits, episodes);
  EXPECT_FALSE(h.sender().in_recovery());
}

TEST_F(RrFixture, SsthreshMatchesHalfWindowNotHalfFlight) {
  // With cwnd 10 but only 6 packets in flight (app-limited), the paper's
  // rule is ssthresh = win/2 where win is the window, bounded by flight
  // reality through the receiver window.
  SenderHarness<RrSender> h2{cwnd(10)};
  h2.sender().set_app_bytes(6000);
  h2.sender().start();  // sends only 6 packets
  h2.dupacks(3);
  EXPECT_EQ(h2.sender().ssthresh_bytes(), 5000u);  // min(cwnd,rwnd)/2
}

TEST(RrAppLimited, RecoversWithNoNewDataToSend) {
  // Finite 10-packet transfer, holes at 0 and 4000; the retreat and probe
  // have nothing new to send, so recovery rides on retransmissions alone.
  SenderHarness<RrSender> h{cwnd(10)};
  h.sender().set_app_bytes(10'000);
  h.sender().start();
  h.dupacks(3);   // entry, rtx 0
  h.dupacks(5);   // retreat: no new data available, nothing sent
  EXPECT_EQ(h.sender().in_retreat(), true);
  h.wire.clear();
  h.ack(4000);    // probe, actnum = 0 (nothing was sent)
  EXPECT_EQ(h.sender().actnum(), 0);
  EXPECT_EQ(h.sent_seqs(), (std::vector<std::uint64_t>{4000}));
  h.ack(10'000);  // rtx fills everything: exit + complete
  EXPECT_FALSE(h.sender().in_recovery());
  EXPECT_TRUE(h.sender().complete());
}

TEST(RrTinyWindow, FourPacketWindowStillEnters) {
  SenderHarness<RrSender> h{cwnd(4)};
  h.sender().start();
  h.dupacks(3);  // exactly the three dup ACKs a 4-window can produce
  EXPECT_TRUE(h.sender().in_retreat());
  EXPECT_EQ(h.sender().ssthresh_bytes(), 2000u);  // floor 2*MSS
  h.ack(4000);   // single loss: straight to exit
  EXPECT_FALSE(h.sender().in_recovery());
  // Nothing was sent in retreat; cwnd floors at 1 packet.
  EXPECT_EQ(h.sender().cwnd_bytes(), 1000u);
}

TEST(RrInvariant, ActnumNeverNegativeAndCwndUntouchedUntilExit) {
  SenderHarness<RrSender> h{cwnd(12)};
  h.sender().start();
  h.dupacks(3);
  for (int round = 0; round < 5; ++round) {
    h.dupacks(2);
    EXPECT_GE(h.sender().ndup(), 0);
    EXPECT_GE(h.sender().actnum(), 0);
    EXPECT_EQ(h.sender().cwnd_bytes(), 12'000u);  // untouched in recovery
    h.ack((round + 1) * 1000u);
    EXPECT_GE(h.sender().actnum(), 0);
  }
  EXPECT_TRUE(h.sender().in_recovery());
}

}  // namespace
}  // namespace rrtcp::core
