// Test-only liveness mutants: each breaks exactly one of the guarantees
// the chaos watchdog (and the audit layer's liveness invariants) exist to
// enforce. tests/chaos/test_watchdog.cpp and test_chaos_soak.cpp assert
// that every one is caught by its SPECIFIC report/invariant ID while the
// healthy senders stay spotless through the same journeys — the proof the
// watchdog has teeth.
#pragma once

#include "core/rr_sender.hpp"

namespace rrtcp::test {

// Bug: never re-arms the retransmission timer — after every processed ACK
// the escape hatch is disarmed. The first time the network eats the rest
// of a window, nothing is scheduled that could ever wake the flow.
// Expected catch: WD_SILENT_DEATH (watchdog) and RTO_ARMED (audit).
class DeadRtoSender : public core::RrSender {
 public:
  using core::RrSender::RrSender;
  const char* variant_name() const override { return "dead-rto"; }

 protected:
  void handle_new_ack(const net::TcpHeader& h,
                      std::uint64_t newly_acked) override {
    core::RrSender::handle_new_ack(h, newly_acked);
    stop_rto_timer();
  }
  void handle_dup_ack(const net::TcpHeader& h) override {
    core::RrSender::handle_dup_ack(h);
    stop_rto_timer();
  }
};

// Bug: retransmits the segment at snd_una on EVERY duplicate ACK, with no
// exponential spacing — busy, but going nowhere while the hole persists.
// Expected catch: WD_LIVELOCK (same-segment retransmissions faster than
// backoff can explain).
class LivelockRtxSender : public core::RrSender {
 public:
  using core::RrSender::RrSender;
  const char* variant_name() const override { return "livelock-rtx"; }

 protected:
  void handle_dup_ack(const net::TcpHeader& h) override {
    core::RrSender::handle_dup_ack(h);
    if (snd_una() < max_sent()) retransmit(snd_una());
  }
};

}  // namespace rrtcp::test
