// Fault-injection engine unit tests: every FaultKind behaves as specified,
// windows (one-shot and flapping) are respected, seeded streams replay
// byte-identically, and — the composition regressions — a delay-spiked
// packet can never be resurrected on the far side of a blackhole, and
// packets sent into an outage never re-emerge regardless of the wrapped
// link's own reorder model.
#include "chaos/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "../testutil.hpp"
#include "net/drop_tail.hpp"
#include "net/link.hpp"
#include "net/node.hpp"
#include "net/reorder.hpp"
#include "sim/simulator.hpp"

namespace rrtcp::chaos {
namespace {

using sim::Time;

constexpr net::FlowId kFlow = 7;

net::LinkConfig fast_link() {
  net::LinkConfig cfg;
  cfg.bandwidth_bps = 1'000'000'000;  // 8 us per 1000-byte packet
  cfg.prop_delay = Time::milliseconds(1);
  cfg.name = "faulted";
  return cfg;
}

// A source node whose default route runs through a FaultInjector wrapping
// a real Link into a capturing destination agent — the same interposition
// the chaos soak performs on the dumbbell gateways.
struct Rig {
  explicit Rig(FaultPlan plan, std::uint64_t seed = 42)
      : link{sim, fast_link(), std::make_unique<net::DropTailQueue>(64)},
        injector{sim, link, std::move(plan), seed, "test-fault"} {
    link.set_dst(&dst);
    src.set_default_route(&link);
    dst.attach_agent(kFlow, &sink);
    const int n = interpose(src, link, injector);
    EXPECT_EQ(n, 1);
  }

  void send_data_at(Time t, std::uint64_t seq) {
    sim.schedule_at(t, [this, seq] {
      src.inject(test::make_data(kFlow, seq, 1000));
    });
  }
  void send_ack_at(Time t, std::uint64_t ack) {
    sim.schedule_at(t, [this, ack] {
      src.inject(test::make_ack(kFlow, ack, {}, /*src=*/1, /*dst=*/2));
    });
  }

  std::vector<std::uint64_t> delivered_seqs() const {
    std::vector<std::uint64_t> out;
    for (const auto& p : sink.packets)
      out.push_back(p.is_data() ? p.tcp.seq : p.tcp.ack);
    return out;
  }

  sim::Simulator sim;
  net::Node src{1};
  net::Node dst{2};
  test::CaptureAgent sink;
  net::Link link;
  FaultInjector injector;
};

FaultPlan one(FaultSpec s) { return FaultPlan{{s}}; }

TEST(Fault, OutageDropsOnlyInsideWindow) {
  FaultSpec s;
  s.kind = FaultKind::kOutage;
  s.start = Time::milliseconds(100);
  s.duration = Time::milliseconds(100);
  Rig rig{one(s)};
  rig.send_data_at(Time::milliseconds(50), 0);    // before: delivered
  rig.send_data_at(Time::milliseconds(120), 1000);  // inside: dropped
  rig.send_data_at(Time::milliseconds(199), 2000);  // inside: dropped
  rig.send_data_at(Time::milliseconds(200), 3000);  // window is half-open
  rig.send_data_at(Time::milliseconds(250), 4000);  // after: delivered
  rig.sim.run();
  EXPECT_EQ(rig.delivered_seqs(), (std::vector<std::uint64_t>{0, 3000, 4000}));
  EXPECT_EQ(rig.injector.dropped(), 2u);
}

TEST(Fault, FlappingOutageRepeatsEveryPeriod) {
  FaultSpec s;
  s.kind = FaultKind::kOutage;
  s.start = Time::milliseconds(100);
  s.duration = Time::milliseconds(50);
  s.period = Time::milliseconds(200);  // down in [100,150), [300,350), ...
  Rig rig{one(s)};
  rig.send_data_at(Time::milliseconds(120), 0);  // first down window
  rig.send_data_at(Time::milliseconds(220), 1);  // up
  rig.send_data_at(Time::milliseconds(320), 2);  // second down window
  rig.send_data_at(Time::milliseconds(420), 3);  // up
  rig.send_data_at(Time::milliseconds(520), 4);  // third down window
  rig.sim.run();
  EXPECT_EQ(rig.delivered_seqs(), (std::vector<std::uint64_t>{1, 3}));
  EXPECT_EQ(rig.injector.dropped(), 3u);
}

TEST(Fault, AckLossDropsOnlyAcks) {
  FaultSpec s;
  s.kind = FaultKind::kAckLoss;
  s.path = FaultPath::kAck;
  s.start = Time::zero();
  s.duration = Time::seconds(10);
  s.probability = 1.0;
  Rig rig{one(s)};
  rig.send_data_at(Time::milliseconds(10), 0);
  rig.send_ack_at(Time::milliseconds(20), 1000);
  rig.send_data_at(Time::milliseconds(30), 1000);
  rig.send_ack_at(Time::milliseconds(40), 2000);
  rig.sim.run();
  EXPECT_EQ(rig.delivered_seqs(), (std::vector<std::uint64_t>{0, 1000}));
  EXPECT_EQ(rig.injector.dropped(), 2u);
}

TEST(Fault, AckDuplicateForwardsAcksTwice) {
  FaultSpec s;
  s.kind = FaultKind::kAckDuplicate;
  s.path = FaultPath::kAck;
  s.start = Time::zero();
  s.duration = Time::seconds(10);
  s.probability = 1.0;
  Rig rig{one(s)};
  rig.send_ack_at(Time::milliseconds(10), 1000);
  rig.send_data_at(Time::milliseconds(20), 0);
  rig.sim.run();
  EXPECT_EQ(rig.delivered_seqs(), (std::vector<std::uint64_t>{1000, 1000, 0}));
  EXPECT_EQ(rig.injector.duplicated(), 1u);
}

TEST(Fault, DelaySpikeHoldsThenDelivers) {
  FaultSpec s;
  s.kind = FaultKind::kDelaySpike;
  s.start = Time::zero();
  s.duration = Time::milliseconds(50);  // only the first packet is inside
  s.probability = 1.0;
  s.extra_delay = Time::milliseconds(80);
  Rig rig{one(s)};
  rig.send_data_at(Time::milliseconds(10), 0);    // spiked +80 ms
  rig.send_data_at(Time::milliseconds(60), 1000);  // outside the window
  rig.sim.run();
  // The later-sent packet overtakes the held one.
  EXPECT_EQ(rig.delivered_seqs(), (std::vector<std::uint64_t>{1000, 0}));
  EXPECT_EQ(rig.injector.delayed(), 1u);
  EXPECT_EQ(rig.injector.dropped(), 0u);
}

TEST(Fault, BurstLossReplaysByteIdenticallyFromSeed) {
  FaultSpec s;
  s.kind = FaultKind::kBurstLoss;
  s.start = Time::zero();
  s.duration = Time::seconds(10);
  s.p_enter_bad = 0.3;
  s.p_exit_bad = 0.4;
  s.loss_in_bad = 1.0;
  auto run = [&](std::uint64_t seed) {
    Rig rig{one(s), seed};
    for (int i = 0; i < 200; ++i)
      rig.send_data_at(Time::milliseconds(i + 1), 1000u * i);
    rig.sim.run();
    return rig.delivered_seqs();
  };
  const auto a = run(7);
  const auto b = run(7);
  const auto c = run(8);
  EXPECT_EQ(a, b);            // same seed: identical drop pattern
  EXPECT_NE(a, c);            // different seed: different pattern
  EXPECT_LT(a.size(), 200u);  // it did drop something
  EXPECT_GT(a.size(), 0u);    // and did deliver something
}

TEST(Fault, RandomPlanIsDeterministicInSeed) {
  const FaultPlan a = make_random_plan(123);
  const FaultPlan b = make_random_plan(123);
  const FaultPlan c = make_random_plan(124);
  EXPECT_EQ(a.describe(), b.describe());
  EXPECT_NE(a.describe(), c.describe());
  EXPECT_GE(a.faults.size(), 1u);
  EXPECT_LE(a.faults.size(), 3u);
}

// ---- Composition regressions (the wrapper must not create new packet
// ---- lifecycles the network could never produce). -----------------------

TEST(Fault, SpikedPacketCannotCrossBlackhole) {
  FaultSpec spike;
  spike.kind = FaultKind::kDelaySpike;
  spike.start = Time::zero();
  spike.duration = Time::milliseconds(50);
  spike.probability = 1.0;
  spike.extra_delay = Time::milliseconds(80);
  FaultSpec hole;
  hole.kind = FaultKind::kBlackhole;
  hole.start = Time::milliseconds(50);
  hole.duration = Time::milliseconds(100);
  Rig rig{FaultPlan{{spike, hole}}};
  // Sent at 10 ms (before the hole), would emerge at 90 ms — inside it.
  rig.send_data_at(Time::milliseconds(10), 0);
  rig.sim.run();
  EXPECT_TRUE(rig.sink.packets.empty());
  EXPECT_EQ(rig.injector.delayed(), 1u);
  EXPECT_EQ(rig.injector.dropped(), 1u);  // swallowed at emergence
}

TEST(Fault, SpikedPacketEmergingAfterBlackholeIsDelivered) {
  FaultSpec spike;
  spike.kind = FaultKind::kDelaySpike;
  spike.start = Time::zero();
  spike.duration = Time::milliseconds(50);
  spike.probability = 1.0;
  spike.extra_delay = Time::milliseconds(80);
  FaultSpec hole;
  hole.kind = FaultKind::kBlackhole;
  hole.start = Time::milliseconds(20);
  hole.duration = Time::milliseconds(40);  // over by 60 ms; emergence at 90 ms
  Rig rig{FaultPlan{{spike, hole}}};
  rig.send_data_at(Time::milliseconds(10), 0);
  rig.sim.run();
  EXPECT_EQ(rig.delivered_seqs(), (std::vector<std::uint64_t>{0}));
  EXPECT_EQ(rig.injector.dropped(), 0u);
}

TEST(Fault, NoReorderingResurrectsPacketsAcrossOutage) {
  FaultSpec s;
  s.kind = FaultKind::kOutage;
  s.start = Time::milliseconds(100);
  s.duration = Time::milliseconds(100);
  Rig rig{one(s)};
  // The wrapped link itself reorders aggressively: half of all packets get
  // an extra 30 ms. The injector acts strictly upstream, so reordering
  // must never leak a packet into, out of, or across the outage window.
  rig.link.set_reorder_model(
      std::make_unique<net::ReorderModel>(0.5, Time::milliseconds(30), 99));
  std::vector<std::uint64_t> in_outage;
  std::vector<std::uint64_t> outside;
  for (int i = 0; i < 30; ++i) {
    const Time t = Time::milliseconds(5 + 10 * i);
    const auto seq = static_cast<std::uint64_t>(1000 * i);
    rig.send_data_at(t, seq);
    (s.active_at(t) ? in_outage : outside).push_back(seq);
  }
  rig.sim.run();
  const auto got = rig.delivered_seqs();
  // Exactly the packets sent outside the outage arrive, each exactly once.
  std::vector<std::uint64_t> sorted = got;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, outside);
  EXPECT_EQ(rig.injector.dropped(), in_outage.size());
  // And no pre-outage packet is held so long it lands after a post-outage
  // one: the last pre-outage delivery precedes the first post-outage one.
  std::size_t last_pre = 0;
  std::size_t first_post = got.size();
  const std::uint64_t boundary = in_outage.front();
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (got[i] < boundary) last_pre = i;
  }
  for (std::size_t i = got.size(); i-- > 0;) {
    if (got[i] > in_outage.back()) first_post = i;
  }
  EXPECT_LT(last_pre, first_post);
}

}  // namespace
}  // namespace rrtcp::chaos
