// Chaos soak harness tests: healthy variants degrade gracefully under
// seeded fault schedules (zero dead flows, zero audit violations, zero
// watchdog reports), results are byte-identical across worker counts, and
// an intentionally broken sender pushed through the identical harness path
// is caught by the specific liveness checks the soak arms.
#include "harness/chaos_sweep.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "broken_liveness_senders.hpp"
#include "harness/result_sink.hpp"
#include "harness/sweep.hpp"
#include "tcp/receiver.hpp"

namespace rrtcp::harness {
namespace {

using sim::Time;

ChaosSoakOptions small_soak(int schedules) {
  ChaosSoakOptions opts;
  opts.n_schedules = schedules;
  return opts;
}

std::string run_soak_csv(const ChaosSoakOptions& opts, int threads) {
  const std::vector<SweepJob> jobs = make_chaos_jobs(opts, /*seed=*/1);
  ResultSink sink{jobs.size()};
  SweepOptions sweep;
  sweep.threads = threads;
  sweep.base_seed = 1;
  run_sweep(jobs, sink, sweep);
  return sink.to_csv();
}

TEST(ChaosSoak, HealthyVariantsDegradeGracefully) {
  const ChaosSoakOptions opts = small_soak(6);
  const std::vector<SweepJob> jobs = make_chaos_jobs(opts, /*seed=*/1);
  ResultSink sink{jobs.size()};
  SweepOptions sweep;
  sweep.base_seed = 1;
  run_sweep(jobs, sink, sweep);
  ASSERT_EQ(sink.size(), 6u * 4u);
  for (std::size_t i = 0; i < sink.size(); ++i) {
    const Record& row = sink.record(i);
    EXPECT_EQ(row.get("graceful"), "1")
        << row.get("id") << " plan " << row.get("plan") << ": dead="
        << row.get("dead") << " violations=" << row.get("audit_violations")
        << " watchdog=" << row.get("watchdog_reports");
    EXPECT_EQ(row.get("dead"), "0");
  }
}

TEST(ChaosSoak, CsvIsByteIdenticalAcrossThreadCounts) {
  const ChaosSoakOptions opts = small_soak(3);
  EXPECT_EQ(run_soak_csv(opts, 1), run_soak_csv(opts, 4));
}

TEST(ChaosSoak, VariantsOfOneScheduleShareThePlan) {
  const ChaosSoakOptions opts = small_soak(2);
  const std::vector<SweepJob> jobs = make_chaos_jobs(opts, /*seed=*/1);
  ResultSink sink{jobs.size()};
  SweepOptions sweep;
  sweep.base_seed = 1;
  run_sweep(jobs, sink, sweep);
  // Rows are schedule-major: all four variants of a schedule carry the
  // identical plan seed and description (the differential property).
  for (std::size_t i = 0; i < sink.size(); i += 4) {
    for (std::size_t j = 1; j < 4; ++j) {
      EXPECT_EQ(sink.record(i).get("plan_seed"), sink.record(i + j).get("plan_seed"));
      EXPECT_EQ(sink.record(i).get("plan"), sink.record(i + j).get("plan"));
    }
  }
  // Different schedules draw different plans.
  EXPECT_NE(sink.record(0).get("plan_seed"), sink.record(4).get("plan_seed"));
}

TEST(ChaosSoak, BrokenSenderIsCaughtThroughTheFullHarness) {
  // One flow whose sender never re-arms its RTO, pushed through the exact
  // soak path (dumbbell, injectors, audit, watchdog) under a mid-transfer
  // data outage long enough to eat an entire window: without the escape
  // hatch the flow dies, and the soak must say so — specifically.
  chaos::FaultSpec outage;
  outage.kind = chaos::FaultKind::kOutage;
  outage.path = chaos::FaultPath::kData;
  outage.start = Time::milliseconds(500);
  outage.duration = Time::seconds(2);

  ChaosRunConfig cfg;
  cfg.n_flows = 1;
  cfg.bytes_per_flow = 2'000'000;
  cfg.horizon = Time::seconds(30);
  cfg.flow_maker = [](sim::Simulator& sim, net::Node& snd, net::Node& rcv,
                      net::FlowId flow, const tcp::TcpConfig& tcp) {
    app::Flow f;
    f.sender = std::make_unique<test::DeadRtoSender>(sim, snd, flow, rcv.id(),
                                                     tcp);
    tcp::ReceiverConfig rcfg;
    rcfg.ack_bytes = tcp.ack_bytes;
    f.receiver =
        std::make_unique<tcp::TcpReceiver>(sim, rcv, flow, snd.id(), rcfg);
    return f;
  };

  std::vector<chaos::WatchdogReport> reports;
  std::vector<audit::Violation> violations;
  const ChaosRunOutcome out = run_chaos_schedule(
      chaos::FaultPlan{{outage}}, /*seed=*/11, cfg, &reports, &violations);

  EXPECT_FALSE(out.graceful);
  EXPECT_EQ(out.flows_dead, 1);
  EXPECT_EQ(out.flows_complete, 0);

  std::size_t silent_death = 0;
  for (const chaos::WatchdogReport& r : reports)
    if (r.id == chaos::WatchdogReportId::kSilentDeath) ++silent_death;
  EXPECT_GE(silent_death, 1u);

  std::size_t rto_armed = 0;
  for (const audit::Violation& v : violations)
    if (v.id == audit::InvariantId::kRtoArmed) ++rto_armed;
  EXPECT_GE(rto_armed, 1u);
}

TEST(ChaosSoak, HealthyControlSurvivesTheSameOutage) {
  // The identical schedule with the real RR sender recovers via RTO: no
  // dead flow, no report — the broken-sender catch above is not an
  // artifact of the outage itself.
  chaos::FaultSpec outage;
  outage.kind = chaos::FaultKind::kOutage;
  outage.path = chaos::FaultPath::kData;
  outage.start = Time::milliseconds(500);
  outage.duration = Time::seconds(2);

  ChaosRunConfig cfg;
  cfg.variant = app::Variant::kRr;
  cfg.n_flows = 1;
  cfg.bytes_per_flow = 2'000'000;
  cfg.horizon = Time::seconds(60);

  const ChaosRunOutcome out =
      run_chaos_schedule(chaos::FaultPlan{{outage}}, /*seed=*/11, cfg);
  EXPECT_TRUE(out.graceful) << "dead=" << out.flows_dead
                            << " violations=" << out.audit_violations
                            << " watchdog=" << out.watchdog_reports;
  EXPECT_GE(out.timeouts, 1u);  // the escape hatch actually fired
}

}  // namespace
}  // namespace rrtcp::harness
