// Liveness watchdog teeth tests: each broken sender from
// broken_liveness_senders.hpp is caught by its SPECIFIC WatchdogReportId
// (and, where applicable, the audit layer's liveness invariant), while the
// healthy RR sender driven through the same journeys — dup ACK storms,
// repeated RTO backoff, full recovery episodes — never produces a report.
#include "chaos/watchdog.hpp"

#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "audit/invariant_auditor.hpp"
#include "broken_liveness_senders.hpp"
#include "core/rr_sender.hpp"

namespace rrtcp::chaos {
namespace {

using sim::Time;
using test::SenderHarness;

tcp::TcpConfig cwnd(std::uint64_t pkts) {
  tcp::TcpConfig cfg;
  cfg.init_cwnd_pkts = pkts;
  return cfg;
}

template <typename SenderT>
struct WatchedHarness {
  explicit WatchedHarness(tcp::TcpConfig cfg = cwnd(10))
      : h{cfg}, wd{h.sim, WatchdogConfig{},
                   LivenessWatchdog::FailMode::kRecord} {
    wd.attach(h.sender());
  }
  SenderHarness<SenderT> h;
  LivenessWatchdog wd;
};

// ---- Broken senders are caught, by the right ID. ------------------------

TEST(Watchdog, DeadRtoSenderFlaggedSilentDeath) {
  WatchedHarness<test::DeadRtoSender> w;
  w.h.sender().start();
  w.h.ack(1000);  // mutant disarms its timer with data still outstanding
  EXPECT_FALSE(w.h.sender().rto_pending());
  w.h.sim.run_until(Time::seconds(3));
  EXPECT_GE(w.wd.count(WatchdogReportId::kSilentDeath), 1u);
  EXPECT_EQ(w.wd.count(WatchdogReportId::kLivelock), 0u);
}

TEST(Watchdog, DeadRtoSenderAlsoTripsAuditRtoArmed) {
  SenderHarness<test::DeadRtoSender> h{cwnd(10)};
  audit::AuditSession session{h.sim, audit::AuditSession::FailMode::kRecord};
  session.attach(h.sender());
  h.sender().start();
  h.ack(1000);  // audit checks liveness synchronously after each ACK
  EXPECT_GE(session.count(audit::InvariantId::kRtoArmed), 1u);
}

TEST(Watchdog, LivelockSenderFlaggedLivelock) {
  WatchedHarness<test::LivelockRtxSender> w;
  w.h.sender().start();
  w.h.dupacks(12);  // 12 same-segment retransmissions in zero elapsed time
  EXPECT_GE(w.wd.count(WatchdogReportId::kLivelock), 1u);
  EXPECT_EQ(w.wd.count(WatchdogReportId::kSilentDeath), 0u);
}

// ---- Healthy control: the same journeys produce zero reports. -----------

TEST(Watchdog, HealthyDupAckStormIsClean) {
  WatchedHarness<core::RrSender> w;
  w.h.sender().start();
  w.h.dupacks(12);  // entry rtx + at most one rescue: far below threshold
  w.h.ack(10'000);
  EXPECT_TRUE(w.wd.clean());
}

TEST(Watchdog, HealthyRtoBackoffGrindIsClean) {
  WatchedHarness<core::RrSender> w;
  w.h.sender().start();
  // Total ACK loss: the sender grinds through exponentially backed-off
  // timeouts. Same segment, many retransmissions — but spaced as backoff
  // demands, so neither livelock nor stall nor silent death may fire.
  w.h.sim.run_until(Time::seconds(60));
  EXPECT_GT(w.h.sender().stats().timeouts, 2u);
  EXPECT_TRUE(w.wd.clean());
}

TEST(Watchdog, HealthyCompletedTransferIsClean) {
  WatchedHarness<core::RrSender> w;
  w.h.sender().set_app_bytes(10'000);
  w.h.sender().start();
  w.h.ack(10'000);
  EXPECT_TRUE(w.h.sender().complete());
  w.h.sim.run_until(Time::seconds(5));  // ticks observe a finished flow
  EXPECT_TRUE(w.wd.clean());
}

// Regression for the RTO_BACKOFF invariant: when srtt is small the
// backed-off RTO can stay pinned at the min_rto floor (250 ms doubled is
// still below a 1 s floor), which must NOT read as "backoff skipped".
TEST(Watchdog, HealthyBackoffAtMinRtoFloorPassesAudit) {
  SenderHarness<core::RrSender> h{cwnd(10)};
  audit::AuditSession session{h.sim, audit::AuditSession::FailMode::kRecord};
  session.attach(h.sender());
  h.sender().start();
  h.sim.schedule_at(Time::milliseconds(10),
                    [&h] { h.ack(1000); });  // srtt ~10 ms, rto floors at 1 s
  h.sim.run_until(Time::seconds(10));        // several timeouts at the floor
  EXPECT_GT(h.sender().stats().timeouts, 2u);
  EXPECT_EQ(session.count(audit::InvariantId::kRtoBackoff), 0u);
  EXPECT_EQ(session.count(audit::InvariantId::kRtoArmed), 0u);
}

// ---- Stall ceiling (fuzz-facing knob): caps UNEXPLAINED silence only. ---

TEST(Watchdog, StallCeilingFlagsUnexplainedSilence) {
  // A dead-RTO sender goes quiet with nothing armed. RTO-relative stall
  // detection would wait stall_rto_factor x rto; the ceiling caps the
  // tolerated silence at an absolute bound because nothing explains it.
  WatchdogConfig cfg;
  cfg.stall_rto_factor = 1000;  // RTO-relative limit effectively infinite
  cfg.stall_ceiling = Time::seconds(2);
  SenderHarness<test::DeadRtoSender> h{cwnd(10)};
  LivenessWatchdog wd{h.sim, cfg, LivenessWatchdog::FailMode::kRecord};
  wd.attach(h.sender());
  h.sender().start();
  h.ack(1000);  // disarms the mutant's timer; silence starts here
  h.sim.run_until(Time::seconds(6));
  EXPECT_GE(wd.count(WatchdogReportId::kStall), 1u);
}

TEST(Watchdog, NoCeilingMeansRtoRelativeOnly) {
  // Same journey without the ceiling: the huge stall_rto_factor means the
  // stall detector stays quiet (silent death still fires — different ID).
  WatchdogConfig cfg;
  cfg.stall_rto_factor = 1000;
  SenderHarness<test::DeadRtoSender> h{cwnd(10)};
  LivenessWatchdog wd{h.sim, cfg, LivenessWatchdog::FailMode::kRecord};
  wd.attach(h.sender());
  h.sender().start();
  h.ack(1000);
  h.sim.run_until(Time::seconds(6));
  EXPECT_EQ(wd.count(WatchdogReportId::kStall), 0u);
  EXPECT_GE(wd.count(WatchdogReportId::kSilentDeath), 1u);
}

TEST(Watchdog, StallCeilingLeavesHealthyBackoffAlone) {
  // Total ACK loss: the healthy sender's silences reach far past the 2 s
  // ceiling, but every one is explained by a pending RTO expiry, so the
  // ceiling must not apply and the run stays clean.
  WatchdogConfig cfg;
  cfg.check_interval = Time::milliseconds(333);  // avoid expiry-tick ties
  cfg.stall_ceiling = Time::seconds(2);
  SenderHarness<core::RrSender> h{cwnd(10)};
  LivenessWatchdog wd{h.sim, cfg, LivenessWatchdog::FailMode::kRecord};
  wd.attach(h.sender());
  h.sender().start();
  h.sim.run_until(Time::seconds(20));
  // Two backed-off timeouts are enough: the silence between them already
  // exceeds the ceiling while the pending RTO explains it.
  EXPECT_GE(h.sender().stats().timeouts, 2u);
  EXPECT_TRUE(wd.clean());
}

}  // namespace
}  // namespace rrtcp::chaos
