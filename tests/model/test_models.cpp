// Analytic TCP throughput models: Mathis square-root bound (paper
// Section 4) and the Padhye et al. full model the paper cites as the
// better predictor at high loss.
#include <gtest/gtest.h>

#include <cmath>

#include "model/mathis.hpp"
#include "model/padhye.hpp"

namespace rrtcp::model {
namespace {

TEST(Mathis, WindowIsCOverSqrtP) {
  EXPECT_DOUBLE_EQ(window_packets(0.01, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(window_packets(0.04, 2.0), 10.0);
  EXPECT_NEAR(window_packets(0.01), 12.247, 0.001);  // C = sqrt(3/2)
}

TEST(Mathis, BandwidthScalesWithMssOverRtt) {
  const double bw1 = bandwidth_bps(1000, 0.2, 0.01);
  const double bw2 = bandwidth_bps(2000, 0.2, 0.01);
  const double bw3 = bandwidth_bps(1000, 0.4, 0.01);
  EXPECT_DOUBLE_EQ(bw2, 2 * bw1);
  EXPECT_DOUBLE_EQ(bw3, bw1 / 2);
  // Concrete value: 1000 B, 200 ms, p=0.01, C=sqrt(1.5):
  // 8000/0.2 * 12.247 = 489,898 bps.
  EXPECT_NEAR(bw1, 489'898, 10);
}

TEST(Mathis, LossRateInvertsWindow) {
  for (double p : {0.001, 0.01, 0.1}) {
    const double w = window_packets(p);
    EXPECT_NEAR(loss_rate_for_window(w), p, p * 1e-9);
  }
}

TEST(Mathis, ConstantsOrdered) {
  // Delayed ACKs halve the ACK clock: smaller constant.
  EXPECT_LT(kMathisCDelayedAck, kMathisCPerPacketAck);
  EXPECT_NEAR(kMathisCPerPacketAck, std::sqrt(1.5), 1e-12);
  EXPECT_NEAR(kMathisCDelayedAck, std::sqrt(0.75), 1e-12);
}

TEST(Padhye, ApproachesMathisAtLowLoss) {
  // With negligible timeout probability the PFTK model reduces to the
  // square-root law: BW ~ (1/RTT) * sqrt(3/(2bp)).
  PadhyeParams params;
  params.rtt_s = 0.2;
  params.t0_s = 1.0;
  const double p = 1e-5;
  const double pftk = padhye_throughput_pps(p, params);
  const double mathis = window_packets(p) / params.rtt_s;
  EXPECT_NEAR(pftk / mathis, 1.0, 0.05);
}

TEST(Padhye, TimeoutsDominateAtHighLoss) {
  // At p = 0.1 the timeout term must pull throughput well below the
  // square-root law.
  PadhyeParams params;
  params.rtt_s = 0.2;
  params.t0_s = 1.0;
  const double pftk = padhye_throughput_pps(0.1, params);
  const double mathis = window_packets(0.1) / params.rtt_s;
  EXPECT_LT(pftk, 0.5 * mathis);
}

TEST(Padhye, MonotoneDecreasingInLoss) {
  PadhyeParams params;
  double prev = 1e18;
  for (double p : {0.001, 0.003, 0.01, 0.03, 0.1, 0.3}) {
    const double bw = padhye_throughput_pps(p, params);
    EXPECT_LT(bw, prev) << "p=" << p;
    prev = bw;
  }
}

TEST(Padhye, LargerT0MeansLessThroughputAtHighLoss) {
  PadhyeParams fast, slow;
  fast.t0_s = 0.5;
  slow.t0_s = 4.0;
  EXPECT_GT(padhye_throughput_pps(0.05, fast),
            padhye_throughput_pps(0.05, slow));
}

TEST(Padhye, WindowCapBinds) {
  PadhyeParams capped;
  capped.wmax_pkts = 5;
  EXPECT_DOUBLE_EQ(padhye_window_packets(1e-6, capped), 5.0);
  // And is irrelevant when the loss-limited window is below the cap.
  PadhyeParams loose;
  loose.wmax_pkts = 1000;
  PadhyeParams unbounded;
  EXPECT_DOUBLE_EQ(padhye_window_packets(0.05, loose),
                   padhye_window_packets(0.05, unbounded));
}

TEST(Padhye, DelayedAcksHalveTheClock) {
  PadhyeParams b1, b2;
  b2.b = 2;
  EXPECT_GT(padhye_throughput_pps(0.01, b1), padhye_throughput_pps(0.01, b2));
}

}  // namespace
}  // namespace rrtcp::model
