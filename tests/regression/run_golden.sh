#!/bin/sh
# Byte-identity gate for the environment seam: re-run one bench family in
# quick mode (single-threaded, fixed seed) and require its CSV and JSON
# outputs byte-identical to the pinned goldens in tests/regression/golden/.
# Any drift — a reordered event, a perturbed timestamp, a changed trace —
# fails the cmp. Regenerate goldens only for an intentional, reviewed
# behavior change.
#
# usage: run_golden.sh <bench-binary> <golden-dir> <family> <out-dir>
set -eu

bench_bin=$1
golden_dir=$2
family=$3
out_dir=$4

mkdir -p "$out_dir"
"$bench_bin" --quick --threads=1 --seed=1 \
  --csv="$out_dir/$family.quick.csv" \
  --json="$out_dir/$family.quick.json"

cmp "$golden_dir/$family.quick.csv" "$out_dir/$family.quick.csv"
cmp "$golden_dir/$family.quick.json" "$out_dir/$family.quick.json"
echo "golden-ok $family"
