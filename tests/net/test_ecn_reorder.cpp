// ECN marking at the RED gateway and packet-reordering injection.
#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "net/drop_tail.hpp"
#include "net/link.hpp"
#include "net/red.hpp"
#include "net/reorder.hpp"

namespace rrtcp::net {
namespace {

using test::CaptureAgent;
using test::make_data;

Packet ect_packet(std::uint64_t seq) {
  Packet p = make_data(1, seq, 1000);
  p.tcp.ect = true;
  return p;
}

RedConfig marking_cfg() {
  RedConfig cfg;
  cfg.w_q = 1.0;  // avg == instantaneous
  cfg.min_th = 2;
  cfg.max_th = 50;
  cfg.max_p = 0.3;
  cfg.buffer_packets = 100;
  cfg.ecn = true;
  return cfg;
}

TEST(RedEcn, MarksInsteadOfEarlyDropping) {
  sim::Simulator sim;
  RedQueue q{sim, marking_cfg()};
  // Hold the queue around 6 packets (inside [min_th, max_th)) for many
  // arrivals: early actions must all become CE marks, never drops.
  int ce_seen = 0;
  for (int i = 0; i < 300; ++i) {
    q.enqueue(ect_packet(i * 1000));
    if (q.len_packets() > 6) {
      auto p = q.dequeue();
      if (p && p->tcp.ce) ++ce_seen;
    }
  }
  EXPECT_GT(q.ecn_marks(), 0u);
  EXPECT_EQ(q.stats().dropped, 0u);
  EXPECT_GT(ce_seen, 0);
}

TEST(RedEcn, NonEctPacketsStillDrop) {
  sim::Simulator sim;
  RedQueue q{sim, marking_cfg()};
  // Same regime but packets are not ECN-capable: early actions drop.
  for (int i = 0; i < 300; ++i) {
    q.enqueue(make_data(1, i * 1000, 1000));
    if (q.len_packets() > 6) q.dequeue();
  }
  EXPECT_GT(q.stats().dropped, 0u);
  EXPECT_EQ(q.ecn_marks(), 0u);
}

TEST(RedEcn, ForcedDropsIgnoreEct) {
  sim::Simulator sim;
  RedConfig cfg;
  cfg.buffer_packets = 3;
  cfg.min_th = 100;  // no early action
  cfg.max_th = 200;
  cfg.ecn = true;
  RedQueue q{sim, cfg};
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(q.enqueue(ect_packet(i * 1000)));
  EXPECT_FALSE(q.enqueue(ect_packet(99'000)));  // buffer full: drop
  EXPECT_EQ(q.ecn_marks(), 0u);
}

TEST(Reorder, ZeroProbabilityNeverDelays) {
  ReorderModel m{0.0, sim::Time::milliseconds(10), 1};
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(m.delay_for_next_packet(), sim::Time::zero());
  EXPECT_EQ(m.reordered(), 0u);
}

TEST(Reorder, DelaysAtConfiguredRate) {
  ReorderModel m{0.25, sim::Time::milliseconds(10), 7};
  int delayed = 0;
  const int n = 10'000;
  for (int i = 0; i < n; ++i)
    if (m.delay_for_next_packet() > sim::Time::zero()) ++delayed;
  EXPECT_NEAR(delayed / static_cast<double>(n), 0.25, 0.02);
  EXPECT_EQ(m.reordered(), static_cast<std::uint64_t>(delayed));
}

TEST(Reorder, LinkDeliversOutOfOrder) {
  sim::Simulator sim;
  Node dst{2};
  CaptureAgent agent;
  dst.attach_agent(1, &agent);
  Link link{sim,
            {10'000'000, sim::Time::milliseconds(1), "l"},
            std::make_unique<DropTailQueue>(100)};
  link.set_dst(&dst);
  // Delay only the first packet: install an always-delay model for it,
  // then remove the model before the second — the second overtakes.
  link.set_reorder_model(std::make_unique<ReorderModel>(
      1.0, sim::Time::milliseconds(10), 1));
  link.send(make_data(1, 0, 1000));  // delayed by 10 ms
  link.set_reorder_model(nullptr);   // subsequent packets undelayed
  link.send(make_data(1, 1000, 1000));
  sim.run();
  ASSERT_EQ(agent.packets.size(), 2u);
  // Packet 1000 (sent second) arrives first: genuine reordering.
  EXPECT_EQ(agent.packets[0].tcp.seq, 1000u);
  EXPECT_EQ(agent.packets[1].tcp.seq, 0u);
}

}  // namespace
}  // namespace rrtcp::net
