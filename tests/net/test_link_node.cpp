#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "net/drop_tail.hpp"
#include "net/dumbbell.hpp"
#include "net/link.hpp"
#include "net/node.hpp"

namespace rrtcp::net {
namespace {

using test::CaptureAgent;
using test::make_data;

std::unique_ptr<QueueDisc> big_queue() {
  return std::make_unique<DropTailQueue>(1000);
}

TEST(Link, DeliversAfterTxPlusPropagation) {
  sim::Simulator sim;
  Node dst{2};
  CaptureAgent agent;
  dst.attach_agent(1, &agent);
  // 1000 B at 0.8 Mbps = 10 ms tx; 100 ms propagation.
  Link link{sim, {800'000, sim::Time::milliseconds(100), "l"}, big_queue()};
  link.set_dst(&dst);

  link.send(make_data(1, 0, 1000, /*src=*/1, /*dst=*/2));
  sim.run();
  ASSERT_EQ(agent.packets.size(), 1u);
  EXPECT_EQ(sim.now(), sim::Time::milliseconds(110));
  EXPECT_EQ(agent.packets[0].hops, 1u);
}

TEST(Link, SerializesBackToBackPackets) {
  sim::Simulator sim;
  Node dst{2};
  CaptureAgent agent;
  dst.attach_agent(1, &agent);
  Link link{sim, {800'000, sim::Time::zero(), "l"}, big_queue()};
  link.set_dst(&dst);

  std::vector<sim::Time> arrivals;
  // Wrap: record arrival times via an observing agent.
  for (int i = 0; i < 3; ++i) link.send(make_data(1, i * 1000, 1000));
  sim.run();
  ASSERT_EQ(agent.packets.size(), 3u);
  // Each 1000 B packet takes 10 ms to serialize; delivery at 10/20/30 ms.
  EXPECT_EQ(sim.now(), sim::Time::milliseconds(30));
}

TEST(Link, CountsDeliveredBytes) {
  sim::Simulator sim;
  Node dst{2};
  CaptureAgent agent;
  dst.attach_agent(1, &agent);
  Link link{sim, {10'000'000, sim::Time::milliseconds(1), "l"}, big_queue()};
  link.set_dst(&dst);
  for (int i = 0; i < 4; ++i) link.send(make_data(1, i * 1000, 1000));
  sim.run();
  EXPECT_EQ(link.packets_delivered(), 4u);
  EXPECT_EQ(link.bytes_delivered(), 4000u);
}

TEST(Link, LossModelDropsBeforeQueue) {
  sim::Simulator sim;
  Node dst{2};
  CaptureAgent agent;
  dst.attach_agent(1, &agent);
  Link link{sim, {800'000, sim::Time::zero(), "l"}, big_queue()};
  link.set_dst(&dst);
  link.set_loss_model(std::make_unique<ListLossModel>(
      std::vector<std::pair<FlowId, std::uint64_t>>{{1, 1000}}));

  link.send(make_data(1, 0, 1000));
  link.send(make_data(1, 1000, 1000));  // dropped by the model
  link.send(make_data(1, 2000, 1000));
  sim.run();
  ASSERT_EQ(agent.packets.size(), 2u);
  EXPECT_EQ(agent.packets[0].tcp.seq, 0u);
  EXPECT_EQ(agent.packets[1].tcp.seq, 2000u);
  EXPECT_EQ(link.loss_model_drops(), 1u);
  EXPECT_EQ(link.queue().stats().dropped, 0u);
}

TEST(Link, UtilizationReflectsBusyTime) {
  sim::Simulator sim;
  Node dst{2};
  CaptureAgent agent;
  dst.attach_agent(1, &agent);
  Link link{sim, {800'000, sim::Time::zero(), "l"}, big_queue()};
  link.set_dst(&dst);
  for (int i = 0; i < 10; ++i) link.send(make_data(1, i * 1000, 1000));
  sim.run();  // 100 ms of transmission
  sim.run_until(sim::Time::milliseconds(200));
  EXPECT_NEAR(link.utilization(sim.now()), 0.5, 1e-9);
}

TEST(Node, DeliversToLocalAgentByFlow) {
  Node n{5};
  CaptureAgent a1, a2;
  n.attach_agent(1, &a1);
  n.attach_agent(2, &a2);
  n.receive(make_data(2, 0, 1000, /*src=*/1, /*dst=*/5));
  EXPECT_EQ(a1.packets.size(), 0u);
  EXPECT_EQ(a2.packets.size(), 1u);
}

TEST(Node, CountsOrphanPackets) {
  Node n{5};
  n.receive(make_data(9, 0, 1000, 1, /*dst=*/5));  // no agent for flow 9
  EXPECT_EQ(n.undeliverable(), 1u);
  n.receive(make_data(9, 0, 1000, 1, /*dst=*/77));  // no route to 77
  EXPECT_EQ(n.undeliverable(), 2u);
}

TEST(Node, ForwardsViaSpecificRouteOverDefault) {
  Node n{5};
  test::CaptureHandler specific, fallback;
  n.add_route(7, &specific);
  n.set_default_route(&fallback);
  n.receive(make_data(1, 0, 1000, 1, /*dst=*/7));
  n.receive(make_data(1, 0, 1000, 1, /*dst=*/8));
  EXPECT_EQ(specific.count(), 1u);
  EXPECT_EQ(fallback.count(), 1u);
  EXPECT_EQ(n.forwarded(), 2u);
}

TEST(Dumbbell, EndToEndPathWorksBothWays) {
  sim::Simulator sim;
  DumbbellConfig cfg;
  cfg.n_flows = 2;
  DumbbellTopology topo{sim, cfg};

  CaptureAgent rcv, snd;
  topo.receiver_node(1).attach_agent(3, &rcv);
  topo.sender_node(1).attach_agent(3, &snd);

  // Data S2 -> K2.
  topo.sender_node(1).inject(make_data(3, 0, 1000, topo.sender_node(1).id(),
                                       topo.receiver_node(1).id()));
  // ACK K2 -> S2.
  topo.receiver_node(1).inject(test::make_ack(3, 1000,
                                              {},
                                              topo.receiver_node(1).id(),
                                              topo.sender_node(1).id()));
  sim.run();
  ASSERT_EQ(rcv.packets.size(), 1u);
  ASSERT_EQ(snd.packets.size(), 1u);
  EXPECT_EQ(rcv.packets[0].hops, 3u);  // S->R1, R1->R2, R2->K
  EXPECT_EQ(snd.packets[0].hops, 3u);
}

TEST(Dumbbell, BaseRttMatchesHandComputation) {
  sim::Simulator sim;
  DumbbellConfig cfg;  // defaults: 0.8 Mbps/100 ms bottleneck, 10 Mbps sides
  cfg.side_delay = sim::Time::zero();
  DumbbellTopology topo{sim, cfg};
  // Data: 2*0.8ms side tx + 10ms bneck tx + 100ms;
  // ACK: 2*0.032ms + 0.4ms + 100ms.
  const double expect_s = (0.0008 * 2 + 0.010 + 0.100) +
                          (0.000032 * 2 + 0.0004 + 0.100);
  EXPECT_NEAR(topo.base_rtt(1000, 40).to_seconds(), expect_s, 1e-9);
}

TEST(Dumbbell, DefaultBottleneckQueueIsEightPackets) {
  sim::Simulator sim;
  DumbbellConfig cfg;
  DumbbellTopology topo{sim, cfg};
  auto& q = topo.bottleneck().queue();
  for (int i = 0; i < 12; ++i) q.enqueue(make_data(1, i * 1000, 1000));
  EXPECT_EQ(q.len_packets(), 8u);  // Table 3: buffer size 8 packets
}

}  // namespace
}  // namespace rrtcp::net
