// SegmentLossModel (repeated loss of one segment) and the receiver
// progress callback — the pieces the retransmission-loss experiments and
// the recovery-goodput measurements are built on.
#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "net/loss_model.hpp"
#include "net/node.hpp"
#include "tcp/receiver.hpp"

namespace rrtcp::net {
namespace {

using test::make_data;

TEST(SegmentLoss, DropsExactlyTheFirstNTransmissions) {
  SegmentLossModel m{1, 5000, 2};
  const sim::Time now = sim::Time::zero();
  EXPECT_TRUE(m.should_drop(make_data(1, 5000, 1000), now));   // original
  EXPECT_TRUE(m.should_drop(make_data(1, 5000, 1000), now));   // 1st rtx
  EXPECT_FALSE(m.should_drop(make_data(1, 5000, 1000), now));  // 2nd rtx
  EXPECT_EQ(m.drops(), 2u);
}

TEST(SegmentLoss, OtherSegmentsAndFlowsPass) {
  SegmentLossModel m{1, 5000, 5};
  const sim::Time now = sim::Time::zero();
  EXPECT_FALSE(m.should_drop(make_data(1, 4000, 1000), now));
  EXPECT_FALSE(m.should_drop(make_data(2, 5000, 1000), now));
  EXPECT_FALSE(m.should_drop(test::make_ack(1, 5000), now));
}

TEST(ReceiverProgress, CallbackFiresOnlyOnNewUniqueBytes) {
  sim::Simulator sim;
  Node node{2};
  test::CaptureHandler wire;
  node.set_default_route(&wire);
  tcp::TcpReceiver rcv{sim, node, 7, /*peer=*/1};

  std::vector<std::uint64_t> progress;
  rcv.set_progress_callback(
      [&](sim::Time, std::uint64_t bytes) { progress.push_back(bytes); });

  rcv.receive(make_data(7, 0, 1000));     // +1000 in order
  rcv.receive(make_data(7, 2000, 1000));  // +1000 out of order
  rcv.receive(make_data(7, 2000, 1000));  // duplicate: NO progress
  rcv.receive(make_data(7, 1000, 1000));  // fills the hole: +1000
  ASSERT_EQ(progress.size(), 3u);
  EXPECT_EQ(progress[0], 1000u);
  EXPECT_EQ(progress[1], 2000u);
  EXPECT_EQ(progress[2], 3000u);
  EXPECT_EQ(rcv.unique_bytes(), 3000u);
}

TEST(ReceiverProgress, UniqueBytesCountsBufferedData) {
  sim::Simulator sim;
  Node node{2};
  test::CaptureHandler wire;
  node.set_default_route(&wire);
  tcp::TcpReceiver rcv{sim, node, 7, 1};
  rcv.receive(make_data(7, 5000, 1000));
  EXPECT_EQ(rcv.bytes_in_order(), 0u);
  EXPECT_EQ(rcv.unique_bytes(), 1000u);  // dormant data still counts
}

}  // namespace
}  // namespace rrtcp::net
