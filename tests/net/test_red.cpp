#include "net/red.hpp"

#include <gtest/gtest.h>

#include "../testutil.hpp"

namespace rrtcp::net {
namespace {

using test::make_data;

RedConfig paper_config() {
  RedConfig cfg;  // Table 4 values are the defaults
  cfg.buffer_packets = 25;
  cfg.min_th = 5;
  cfg.max_th = 20;
  cfg.max_p = 0.02;
  cfg.w_q = 0.002;
  return cfg;
}

TEST(Red, NoDropsWhileAverageBelowMinThreshold) {
  sim::Simulator sim;
  RedQueue q{sim, paper_config()};
  // Alternate enqueue/dequeue: instantaneous queue stays at 1, the EWMA
  // never approaches min_th=5.
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(q.enqueue(make_data(1, i * 1000, 1000)));
    q.dequeue();
  }
  EXPECT_EQ(q.stats().dropped, 0u);
  EXPECT_LT(q.avg_queue(), 5.0);
}

TEST(Red, AverageTracksPersistentQueue) {
  sim::Simulator sim;
  auto cfg = paper_config();
  cfg.w_q = 0.2;   // fast EWMA for a short test
  cfg.min_th = 50; // disable early drops so the queue really holds at 10
  cfg.max_th = 60;
  RedQueue q{sim, cfg};
  // Hold the instantaneous queue at 10 by refilling after each dequeue.
  for (int i = 0; i < 10; ++i) q.enqueue(make_data(1, i * 1000, 1000));
  for (int i = 0; i < 200; ++i) {
    q.dequeue();
    q.enqueue(make_data(1, (10 + i) * 1000, 1000));
  }
  EXPECT_NEAR(q.avg_queue(), 10.0, 1.5);
}

TEST(Red, EarlyDropsOccurBetweenThresholds) {
  sim::Simulator sim;
  auto cfg = paper_config();
  cfg.w_q = 0.2;
  cfg.max_p = 0.5;  // aggressive so the test is fast
  RedQueue q{sim, cfg};
  int early = 0;
  for (int i = 0; i < 500; ++i) {
    if (!q.enqueue(make_data(1, i * 1000, 1000))) ++early;
    if (q.len_packets() > 10) q.dequeue();  // hold around 10 (in [5,20))
  }
  EXPECT_GT(early, 0);
  EXPECT_GT(q.early_drops(), 0u);
}

TEST(Red, ForcedDropWhenBufferFull) {
  sim::Simulator sim;
  auto cfg = paper_config();
  cfg.buffer_packets = 5;
  cfg.min_th = 100;  // disable early dropping
  cfg.max_th = 200;
  RedQueue q{sim, cfg};
  for (int i = 0; i < 10; ++i) q.enqueue(make_data(1, i * 1000, 1000));
  EXPECT_EQ(q.len_packets(), 5u);
  EXPECT_EQ(q.forced_drops(), 5u);
  EXPECT_EQ(q.early_drops(), 0u);
}

TEST(Red, AlwaysDropsAboveMaxThreshold) {
  sim::Simulator sim;
  auto cfg = paper_config();
  cfg.w_q = 1.0;  // avg == instantaneous queue
  RedQueue q{sim, cfg};
  // Fill to 21 > max_th=20. With w_q=1 the 22nd arrival sees avg >= 20.
  for (int i = 0; i < 21; ++i)
    ASSERT_TRUE(q.enqueue(make_data(1, i * 1000, 1000)) || true);
  const auto before = q.stats().dropped;
  EXPECT_FALSE(q.enqueue(make_data(1, 999'000, 1000)));
  EXPECT_EQ(q.stats().dropped, before + 1);
}

TEST(Red, IdleDecayReducesAverage) {
  sim::Simulator sim;
  auto cfg = paper_config();
  cfg.w_q = 0.2;
  cfg.mean_pkt_tx = sim::Time::milliseconds(10);
  RedQueue q{sim, cfg};
  for (int i = 0; i < 15; ++i) q.enqueue(make_data(1, i * 1000, 1000));
  while (q.dequeue().has_value()) {
  }
  const double avg_before = q.avg_queue();
  ASSERT_GT(avg_before, 1.0);
  // One simulated second of idle = 100 packet-times of decay.
  sim.run_until(sim::Time::seconds(1));
  q.enqueue(make_data(1, 999'000, 1000));
  EXPECT_LT(q.avg_queue(), avg_before / 2);
}

TEST(Red, GentleModeSoftensOverMaxth) {
  sim::Simulator sim;
  auto cfg = paper_config();
  cfg.w_q = 1.0;
  cfg.gentle = true;
  cfg.seed = 99;
  RedQueue q{sim, cfg};
  for (int i = 0; i < 21; ++i) q.enqueue(make_data(1, i * 1000, 1000));
  // avg ~21, just above max_th: gentle RED drops with p ~ max_p + small,
  // i.e. NOT always. Try many arrivals; some must get through.
  int admitted = 0;
  for (int i = 0; i < 50; ++i) {
    q.dequeue();  // keep space so only RED (not the buffer) decides
    if (q.enqueue(make_data(1, (100 + i) * 1000, 1000))) ++admitted;
  }
  EXPECT_GT(admitted, 25);
}

TEST(Red, DeterministicForSameSeed) {
  auto run = [](std::uint64_t seed) {
    sim::Simulator sim;
    auto cfg = paper_config();
    cfg.w_q = 0.1;
    cfg.seed = seed;
    RedQueue q{sim, cfg};
    std::uint64_t drops = 0;
    for (int i = 0; i < 2000; ++i) {
      if (!q.enqueue(make_data(1, i * 1000, 1000))) ++drops;
      if (q.len_packets() > 12) q.dequeue();
    }
    return drops;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));  // different seed, different drop pattern
}

TEST(RedDeath, BadThresholdsRejected) {
  sim::Simulator sim;
  auto cfg = paper_config();
  cfg.min_th = 20;
  cfg.max_th = 5;
  EXPECT_DEATH(RedQueue(sim, cfg), "max_th");
}

}  // namespace
}  // namespace rrtcp::net
