#include "net/red.hpp"

#include <gtest/gtest.h>

#include "../testutil.hpp"

namespace rrtcp::net {
namespace {

using test::make_data;

RedConfig paper_config() {
  RedConfig cfg;  // Table 4 values are the defaults
  cfg.buffer_packets = 25;
  cfg.min_th = 5;
  cfg.max_th = 20;
  cfg.max_p = 0.02;
  cfg.w_q = 0.002;
  return cfg;
}

TEST(Red, NoDropsWhileAverageBelowMinThreshold) {
  sim::Simulator sim;
  RedQueue q{sim, paper_config()};
  // Alternate enqueue/dequeue: instantaneous queue stays at 1, the EWMA
  // never approaches min_th=5.
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(q.enqueue(make_data(1, i * 1000, 1000)));
    q.dequeue();
  }
  EXPECT_EQ(q.stats().dropped, 0u);
  EXPECT_LT(q.avg_queue(), 5.0);
}

TEST(Red, AverageTracksPersistentQueue) {
  sim::Simulator sim;
  auto cfg = paper_config();
  cfg.w_q = 0.2;   // fast EWMA for a short test
  cfg.min_th = 50; // disable early drops so the queue really holds at 10
  cfg.max_th = 60;
  RedQueue q{sim, cfg};
  // Hold the instantaneous queue at 10 by refilling after each dequeue.
  for (int i = 0; i < 10; ++i) q.enqueue(make_data(1, i * 1000, 1000));
  for (int i = 0; i < 200; ++i) {
    q.dequeue();
    q.enqueue(make_data(1, (10 + i) * 1000, 1000));
  }
  EXPECT_NEAR(q.avg_queue(), 10.0, 1.5);
}

TEST(Red, EarlyDropsOccurBetweenThresholds) {
  sim::Simulator sim;
  auto cfg = paper_config();
  cfg.w_q = 0.2;
  cfg.max_p = 0.5;  // aggressive so the test is fast
  RedQueue q{sim, cfg};
  int early = 0;
  for (int i = 0; i < 500; ++i) {
    if (!q.enqueue(make_data(1, i * 1000, 1000))) ++early;
    if (q.len_packets() > 10) q.dequeue();  // hold around 10 (in [5,20))
  }
  EXPECT_GT(early, 0);
  EXPECT_GT(q.early_drops(), 0u);
}

TEST(Red, ForcedDropWhenBufferFull) {
  sim::Simulator sim;
  auto cfg = paper_config();
  cfg.buffer_packets = 5;
  cfg.min_th = 100;  // disable early dropping
  cfg.max_th = 200;
  RedQueue q{sim, cfg};
  for (int i = 0; i < 10; ++i) q.enqueue(make_data(1, i * 1000, 1000));
  EXPECT_EQ(q.len_packets(), 5u);
  EXPECT_EQ(q.forced_drops(), 5u);
  EXPECT_EQ(q.early_drops(), 0u);
}

TEST(Red, AlwaysDropsAboveMaxThreshold) {
  sim::Simulator sim;
  auto cfg = paper_config();
  cfg.w_q = 1.0;  // avg == instantaneous queue
  RedQueue q{sim, cfg};
  // Fill to 21 > max_th=20. With w_q=1 the 22nd arrival sees avg >= 20.
  for (int i = 0; i < 21; ++i)
    ASSERT_TRUE(q.enqueue(make_data(1, i * 1000, 1000)) || true);
  const auto before = q.stats().dropped;
  EXPECT_FALSE(q.enqueue(make_data(1, 999'000, 1000)));
  EXPECT_EQ(q.stats().dropped, before + 1);
}

TEST(Red, SaturatedRedDropsCountAsEarlyNotForced) {
  // Non-gentle mode, avg >= max_th: the drop is RED's decision (pa
  // saturates at 1), not a buffer overflow — it must be classified as an
  // early drop. Parameters make every step deterministic: w_q = 1 pins
  // avg to the instantaneous queue, and the thin [1,2) band is crossed
  // with p_b = 0 so no RNG draw ever happens.
  sim::Simulator sim;
  auto cfg = paper_config();
  cfg.buffer_packets = 25;
  cfg.min_th = 1;
  cfg.max_th = 2;
  cfg.w_q = 1.0;
  cfg.gentle = false;
  RedQueue q{sim, cfg};
  EXPECT_TRUE(q.enqueue(make_data(1, 0, 1000)));      // avg 0 < min_th
  EXPECT_TRUE(q.enqueue(make_data(1, 1000, 1000)));   // avg 1: p_b = 0
  for (int i = 0; i < 8; ++i)                         // avg 2 >= max_th
    EXPECT_FALSE(q.enqueue(make_data(1, (2 + i) * 1000, 1000)));
  EXPECT_EQ(q.early_drops(), 8u);
  EXPECT_EQ(q.forced_drops(), 0u);  // buffer (25) never filled
}

TEST(Red, GentleSaturatedDropsCountAsEarlyNotForced) {
  // Gentle mode, avg >= 2*max_th: same classification requirement. With
  // max_p = 1 the gentle band [2,4) already drops with p_b = 1, so the
  // run is deterministic.
  sim::Simulator sim;
  auto cfg = paper_config();
  cfg.buffer_packets = 25;
  cfg.min_th = 1;
  cfg.max_th = 2;
  cfg.max_p = 1.0;
  cfg.w_q = 1.0;
  cfg.gentle = true;
  RedQueue q{sim, cfg};
  EXPECT_TRUE(q.enqueue(make_data(1, 0, 1000)));
  EXPECT_TRUE(q.enqueue(make_data(1, 1000, 1000)));
  for (int i = 0; i < 8; ++i)
    EXPECT_FALSE(q.enqueue(make_data(1, (2 + i) * 1000, 1000)));
  EXPECT_EQ(q.early_drops(), 8u);
  EXPECT_EQ(q.forced_drops(), 0u);
}

TEST(Red, BufferFullDropIsForcedAndRestartsSpacing) {
  // A buffer overflow is a forced drop AND restarts the count-based
  // inter-drop spacing. With min_th 2 / max_th 4 / max_p 1 / w_q 1 an
  // arrival that sees avg = 3 has p_b = 0.5, so after one admission at
  // that level (count_ = 1), pa = p_b / (1 - count_*p_b) saturates to 1:
  // without the overflow reset the post-overflow probe below would be
  // dropped unconditionally; with the reset (count_ = 0) it faces
  // pa = 0.5 and the seed chosen here admits it.
  //
  // The queue's stream draws one uniform per non-trivial bernoulli trial
  // (bernoulli(0) consumes nothing); the run below needs draws #1 and #2
  // to land >= 0.5. Pick the first such seed explicitly so the test
  // documents — and does not silently depend on — the draw layout.
  std::uint64_t seed = 0;
  for (std::uint64_t s = 1; s < 200; ++s) {
    sim::Rng probe{s, "red-queue"};
    if (probe.uniform01() >= 0.5 && probe.uniform01() >= 0.5) {
      seed = s;
      break;
    }
  }
  ASSERT_NE(seed, 0u);

  sim::Simulator sim;
  auto cfg = paper_config();
  cfg.buffer_packets = 4;
  cfg.min_th = 2;
  cfg.max_th = 4;
  cfg.max_p = 1.0;
  cfg.w_q = 1.0;
  cfg.gentle = false;
  cfg.seed = seed;
  RedQueue q{sim, cfg};
  ASSERT_TRUE(q.enqueue(make_data(1, 0, 1000)));     // avg 0 < min_th
  ASSERT_TRUE(q.enqueue(make_data(1, 1000, 1000)));  // avg 1 < min_th
  ASSERT_TRUE(q.enqueue(make_data(1, 2000, 1000)));  // avg 2: p_b = 0
  ASSERT_TRUE(q.enqueue(make_data(1, 3000, 1000)));  // avg 3: draw #1
  // Queue is at the 4-packet limit: a buffer overflow, i.e. forced.
  EXPECT_FALSE(q.enqueue(make_data(1, 4000, 1000)));
  EXPECT_EQ(q.forced_drops(), 1u);
  EXPECT_EQ(q.early_drops(), 0u);
  // Probe: drain one, the arrival sees avg = 3 again (draw #2).
  q.dequeue();
  EXPECT_TRUE(q.enqueue(make_data(1, 5000, 1000)));
  EXPECT_EQ(q.forced_drops(), 1u);
  EXPECT_EQ(q.early_drops(), 0u);
}

TEST(Red, IdleDecayReducesAverage) {
  sim::Simulator sim;
  auto cfg = paper_config();
  cfg.w_q = 0.2;
  cfg.mean_pkt_tx = sim::Time::milliseconds(10);
  RedQueue q{sim, cfg};
  for (int i = 0; i < 15; ++i) q.enqueue(make_data(1, i * 1000, 1000));
  while (q.dequeue().has_value()) {
  }
  const double avg_before = q.avg_queue();
  ASSERT_GT(avg_before, 1.0);
  // One simulated second of idle = 100 packet-times of decay.
  sim.run_until(sim::Time::seconds(1));
  q.enqueue(make_data(1, 999'000, 1000));
  EXPECT_LT(q.avg_queue(), avg_before / 2);
}

TEST(Red, GentleModeSoftensOverMaxth) {
  sim::Simulator sim;
  auto cfg = paper_config();
  cfg.w_q = 1.0;
  cfg.gentle = true;
  cfg.seed = 99;
  RedQueue q{sim, cfg};
  for (int i = 0; i < 21; ++i) q.enqueue(make_data(1, i * 1000, 1000));
  // avg ~21, just above max_th: gentle RED drops with p ~ max_p + small,
  // i.e. NOT always. Try many arrivals; some must get through.
  int admitted = 0;
  for (int i = 0; i < 50; ++i) {
    q.dequeue();  // keep space so only RED (not the buffer) decides
    if (q.enqueue(make_data(1, (100 + i) * 1000, 1000))) ++admitted;
  }
  EXPECT_GT(admitted, 25);
}

TEST(Red, DeterministicForSameSeed) {
  auto run = [](std::uint64_t seed) {
    sim::Simulator sim;
    auto cfg = paper_config();
    cfg.w_q = 0.1;
    cfg.seed = seed;
    RedQueue q{sim, cfg};
    std::uint64_t drops = 0;
    for (int i = 0; i < 2000; ++i) {
      if (!q.enqueue(make_data(1, i * 1000, 1000))) ++drops;
      if (q.len_packets() > 12) q.dequeue();
    }
    return drops;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));  // different seed, different drop pattern
}

TEST(RedDeath, BadThresholdsRejected) {
  sim::Simulator sim;
  auto cfg = paper_config();
  cfg.min_th = 20;
  cfg.max_th = 5;
  EXPECT_DEATH(RedQueue(sim, cfg), "max_th");
}

}  // namespace
}  // namespace rrtcp::net
