#include "net/loss_model.hpp"

#include <gtest/gtest.h>

#include "../testutil.hpp"

namespace rrtcp::net {
namespace {

using test::make_ack;
using test::make_data;

const sim::Time kNow = sim::Time::zero();

TEST(UniformLoss, ZeroRateNeverDrops) {
  UniformLossModel m{0.0, 1};
  for (int i = 0; i < 1000; ++i)
    EXPECT_FALSE(m.should_drop(make_data(1, i * 1000, 1000), kNow));
  EXPECT_EQ(m.drops(), 0u);
}

TEST(UniformLoss, FullRateAlwaysDropsData) {
  UniformLossModel m{1.0, 1};
  for (int i = 0; i < 100; ++i)
    EXPECT_TRUE(m.should_drop(make_data(1, i * 1000, 1000), kNow));
  EXPECT_EQ(m.drops(), 100u);
}

TEST(UniformLoss, DataOnlySparesAcks) {
  UniformLossModel m{1.0, 1, /*data_only=*/true};
  EXPECT_FALSE(m.should_drop(make_ack(1, 1000), kNow));
  EXPECT_TRUE(m.should_drop(make_data(1, 0, 1000), kNow));
}

TEST(UniformLoss, CanDropAcksWhenAsked) {
  UniformLossModel m{1.0, 1, /*data_only=*/false};
  EXPECT_TRUE(m.should_drop(make_ack(1, 1000), kNow));
}

TEST(UniformLoss, EmpiricalRateMatches) {
  UniformLossModel m{0.05, 42};
  int drops = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i)
    if (m.should_drop(make_data(1, i * 1000, 1000), kNow)) ++drops;
  EXPECT_NEAR(drops / static_cast<double>(n), 0.05, 0.005);
}

TEST(ListLoss, DropsListedSegmentsExactlyOnce) {
  ListLossModel m{{{1, 4000}, {1, 7000}}};
  EXPECT_FALSE(m.should_drop(make_data(1, 3000, 1000), kNow));
  EXPECT_TRUE(m.should_drop(make_data(1, 4000, 1000), kNow));
  // Retransmission of the same segment passes.
  EXPECT_FALSE(m.should_drop(make_data(1, 4000, 1000), kNow));
  EXPECT_TRUE(m.should_drop(make_data(1, 7000, 1000), kNow));
  EXPECT_EQ(m.remaining(), 0u);
  EXPECT_EQ(m.drops(), 2u);
}

TEST(ListLoss, FlowScoped) {
  ListLossModel m{{{1, 4000}}};
  EXPECT_FALSE(m.should_drop(make_data(2, 4000, 1000), kNow));
  EXPECT_TRUE(m.should_drop(make_data(1, 4000, 1000), kNow));
}

TEST(ListLoss, IgnoresAcks) {
  ListLossModel m{{{1, 4000}}};
  EXPECT_FALSE(m.should_drop(make_ack(1, 4000), kNow));
  EXPECT_EQ(m.remaining(), 1u);
}

TEST(CountedLoss, DropsTheNthBurst) {
  CountedLossModel m{1, /*first=*/3, /*burst=*/2};  // drop arrivals 3 and 4
  EXPECT_FALSE(m.should_drop(make_data(1, 0, 1000), kNow));
  EXPECT_FALSE(m.should_drop(make_data(1, 1000, 1000), kNow));
  EXPECT_TRUE(m.should_drop(make_data(1, 2000, 1000), kNow));
  EXPECT_TRUE(m.should_drop(make_data(1, 3000, 1000), kNow));
  EXPECT_FALSE(m.should_drop(make_data(1, 4000, 1000), kNow));
  EXPECT_EQ(m.drops(), 2u);
}

TEST(CountedLoss, CountsOnlyMatchingFlow) {
  CountedLossModel m{1, 1, 1};  // drop flow 1's first arrival
  EXPECT_FALSE(m.should_drop(make_data(9, 0, 1000), kNow));
  EXPECT_TRUE(m.should_drop(make_data(1, 0, 1000), kNow));
}

TEST(CompositeLoss, AnyConstituentDrops) {
  auto c = std::make_unique<CompositeLossModel>();
  c->add(std::make_unique<ListLossModel>(
      std::vector<std::pair<FlowId, std::uint64_t>>{{1, 1000}}));
  c->add(std::make_unique<ListLossModel>(
      std::vector<std::pair<FlowId, std::uint64_t>>{{1, 2000}}));
  EXPECT_TRUE(c->should_drop(make_data(1, 1000, 1000), kNow));
  EXPECT_TRUE(c->should_drop(make_data(1, 2000, 1000), kNow));
  EXPECT_FALSE(c->should_drop(make_data(1, 3000, 1000), kNow));
  EXPECT_EQ(c->drops(), 2u);
}

TEST(CompositeLoss, AllConstituentsSeeEveryPacket) {
  // Even when the first model drops, the second's counter must advance.
  auto c = std::make_unique<CompositeLossModel>();
  c->add(std::make_unique<CountedLossModel>(1, 1, 1));  // drops arrival 1
  c->add(std::make_unique<CountedLossModel>(1, 2, 1));  // drops arrival 2
  EXPECT_TRUE(c->should_drop(make_data(1, 0, 1000), kNow));
  EXPECT_TRUE(c->should_drop(make_data(1, 1000, 1000), kNow));
  EXPECT_FALSE(c->should_drop(make_data(1, 2000, 1000), kNow));
}

}  // namespace
}  // namespace rrtcp::net
