#include "net/drop_tail.hpp"

#include <gtest/gtest.h>

#include "../testutil.hpp"

namespace rrtcp::net {
namespace {

using test::make_data;

TEST(DropTail, FifoOrder) {
  DropTailQueue q{10};
  for (int i = 0; i < 5; ++i) q.enqueue(make_data(1, i * 1000, 1000));
  for (int i = 0; i < 5; ++i) {
    auto p = q.dequeue();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->tcp.seq, static_cast<std::uint64_t>(i) * 1000);
  }
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(DropTail, DropsWhenFullPacketsMode) {
  DropTailQueue q{3};
  EXPECT_TRUE(q.enqueue(make_data(1, 0, 1000)));
  EXPECT_TRUE(q.enqueue(make_data(1, 1000, 1000)));
  EXPECT_TRUE(q.enqueue(make_data(1, 2000, 1000)));
  EXPECT_FALSE(q.enqueue(make_data(1, 3000, 1000)));
  EXPECT_EQ(q.len_packets(), 3u);
  EXPECT_EQ(q.stats().dropped, 1u);
  EXPECT_EQ(q.stats().enqueued, 3u);
}

TEST(DropTail, OccupancyNeverExceedsCapacity) {
  DropTailQueue q{8};
  for (int i = 0; i < 100; ++i) {
    q.enqueue(make_data(1, i * 1000, 1000));
    EXPECT_LE(q.len_packets(), 8u);
  }
}

TEST(DropTail, DequeueFreesSpace) {
  DropTailQueue q{1};
  EXPECT_TRUE(q.enqueue(make_data(1, 0, 1000)));
  EXPECT_FALSE(q.enqueue(make_data(1, 1000, 1000)));
  q.dequeue();
  EXPECT_TRUE(q.enqueue(make_data(1, 2000, 1000)));
}

TEST(DropTail, BytesModeCountsBytes) {
  DropTailQueue q{2500, DropTailQueue::Mode::kBytes};
  EXPECT_TRUE(q.enqueue(make_data(1, 0, 1000)));      // 1000 B
  EXPECT_TRUE(q.enqueue(make_data(1, 1000, 1000)));   // 2000 B
  EXPECT_FALSE(q.enqueue(make_data(1, 2000, 1000)));  // would be 3000 B
  EXPECT_EQ(q.len_bytes(), 2000u);
  EXPECT_EQ(q.stats().bytes_dropped, 1000u);
}

TEST(DropTail, LenBytesTracksDequeue) {
  DropTailQueue q{10};
  q.enqueue(make_data(1, 0, 1000));
  q.enqueue(make_data(1, 1000, 1000));
  EXPECT_EQ(q.len_bytes(), 2000u);
  q.dequeue();
  EXPECT_EQ(q.len_bytes(), 1000u);
  q.dequeue();
  EXPECT_EQ(q.len_bytes(), 0u);
  EXPECT_TRUE(q.empty());
}

TEST(DropTailDeath, ZeroCapacityRejected) {
  EXPECT_DEATH(DropTailQueue q(0), "capacity");
}

}  // namespace
}  // namespace rrtcp::net
