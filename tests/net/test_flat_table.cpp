// FlatTable32 — the open-addressed table behind Node's route/agent lookup.

#include "net/flat_table.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "net/node.hpp"
#include "net/packet.hpp"

namespace rrtcp::net {
namespace {

TEST(FlatTable, EmptyFindsNothing) {
  FlatTable32<int> t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.find(0), nullptr);
  EXPECT_EQ(t.find(12345), nullptr);
  EXPECT_FALSE(t.erase(7));
}

TEST(FlatTable, InsertFindEraseRoundTrip) {
  FlatTable32<int> t;
  t.insert_or_assign(3, 30);
  t.insert_or_assign(1, 10);
  t.insert_or_assign(2, 20);
  EXPECT_EQ(t.size(), 3u);
  ASSERT_NE(t.find(1), nullptr);
  EXPECT_EQ(*t.find(1), 10);
  EXPECT_EQ(*t.find(2), 20);
  EXPECT_EQ(*t.find(3), 30);
  EXPECT_EQ(t.find(4), nullptr);

  EXPECT_TRUE(t.erase(2));
  EXPECT_FALSE(t.erase(2));
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.find(2), nullptr);
  EXPECT_EQ(*t.find(1), 10);
  EXPECT_EQ(*t.find(3), 30);
}

TEST(FlatTable, InsertOverwritesExistingKey) {
  FlatTable32<int> t;
  t.insert_or_assign(5, 1);
  t.insert_or_assign(5, 2);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(*t.find(5), 2);
}

TEST(FlatTable, GrowthRehashKeepsEveryEntry) {
  FlatTable32<std::uint32_t> t;
  for (std::uint32_t k = 0; k < 1000; ++k) t.insert_or_assign(k, k * 7);
  EXPECT_EQ(t.size(), 1000u);
  for (std::uint32_t k = 0; k < 1000; ++k) {
    ASSERT_NE(t.find(k), nullptr) << "lost key " << k;
    EXPECT_EQ(*t.find(k), k * 7);
  }
  EXPECT_EQ(t.find(1000), nullptr);
}

TEST(FlatTable, BackwardShiftEraseKeepsProbeChainsIntact) {
  // Dense consecutive ids (the NodeId pattern) force shared cache lines
  // and, past the load cap, genuine probe chains. Deleting every third key
  // must leave the rest findable — the property tombstone-free backward
  // shift has to preserve.
  FlatTable32<std::uint32_t> t;
  for (std::uint32_t k = 0; k < 300; ++k) t.insert_or_assign(k, k);
  for (std::uint32_t k = 0; k < 300; k += 3) EXPECT_TRUE(t.erase(k));
  EXPECT_EQ(t.size(), 200u);
  for (std::uint32_t k = 0; k < 300; ++k) {
    if (k % 3 == 0) {
      EXPECT_EQ(t.find(k), nullptr) << k;
    } else {
      ASSERT_NE(t.find(k), nullptr) << k;
      EXPECT_EQ(*t.find(k), k);
    }
  }
}

TEST(FlatTable, RandomizedAgainstReferenceMap) {
  // Deterministic LCG workload mixing inserts, overwrites, and erases,
  // cross-checked against std::map after every batch.
  FlatTable32<std::uint64_t> t;
  std::map<std::uint32_t, std::uint64_t> ref;
  std::uint64_t x = 0x243F6A8885A308D3ULL;
  auto next = [&x] {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<std::uint32_t>(x >> 33);
  };
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 500; ++i) {
      const std::uint32_t key = next() % 257;  // force collisions + reuse
      if (next() % 4 == 0) {
        EXPECT_EQ(t.erase(key), ref.erase(key) > 0);
      } else {
        const std::uint64_t v = next();
        t.insert_or_assign(key, v);
        ref[key] = v;
      }
    }
    ASSERT_EQ(t.size(), ref.size());
    for (const auto& [k, v] : ref) {
      ASSERT_NE(t.find(k), nullptr) << "round " << round << " key " << k;
      EXPECT_EQ(*t.find(k), v);
    }
    for (std::uint32_t k = 0; k < 257; ++k)
      if (ref.count(k) == 0) EXPECT_EQ(t.find(k), nullptr);
  }
}

TEST(FlatTable, IterationOrderIsAFunctionOfHistory) {
  // Two tables built with the same insert/erase history must iterate
  // identically — the determinism contract replace_route_target leans on.
  auto build = [] {
    FlatTable32<std::uint32_t> t;
    for (std::uint32_t k = 0; k < 64; ++k) t.insert_or_assign(k * 5, k);
    for (std::uint32_t k = 0; k < 64; k += 2) t.erase(k * 5);
    t.insert_or_assign(1000, 99);
    return t;
  };
  FlatTable32<std::uint32_t> a = build();
  FlatTable32<std::uint32_t> b = build();
  std::vector<std::uint32_t> ka;
  std::vector<std::uint32_t> kb;
  a.for_each([&](std::uint32_t k, std::uint32_t&) { ka.push_back(k); });
  b.for_each([&](std::uint32_t k, std::uint32_t&) { kb.push_back(k); });
  EXPECT_EQ(ka, kb);
  EXPECT_EQ(ka.size(), 33u);
}

TEST(FlatTable, ForEachMutatesValuesInPlace) {
  FlatTable32<int> t;
  for (std::uint32_t k = 1; k <= 10; ++k) t.insert_or_assign(k, 1);
  t.for_each([](std::uint32_t, int& v) { v *= 2; });
  for (std::uint32_t k = 1; k <= 10; ++k) EXPECT_EQ(*t.find(k), 2);
}

TEST(FlatTable, ReservePreallocatesWithoutChangingContents) {
  FlatTable32<int> t;
  t.insert_or_assign(1, 1);
  t.reserve(500);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(*t.find(1), 1);
  for (std::uint32_t k = 2; k <= 300; ++k) t.insert_or_assign(k, 0);
  EXPECT_EQ(t.size(), 300u);
}

TEST(FlatTable, MaxValidKeyWorks) {
  // kInvalidNode (all ones) is the empty sentinel; all-ones-minus-one is
  // the largest legal key and must behave like any other.
  FlatTable32<int> t;
  const std::uint32_t big = 0xFFFFFFFEu;
  t.insert_or_assign(big, 42);
  ASSERT_NE(t.find(big), nullptr);
  EXPECT_EQ(*t.find(big), 42);
  EXPECT_TRUE(t.erase(big));
  EXPECT_EQ(t.find(big), nullptr);
}

// Node-level behavior on top of the table.

class CountingHandler final : public PacketHandler {
 public:
  void send(Packet p) override {
    ++sent;
    last = p;
  }
  int sent = 0;
  Packet last;
};

TEST(NodeRouting, RouteLookupPrefersSpecificOverDefault) {
  Node n{NodeId{0}};
  CountingHandler specific;
  CountingHandler fallback;
  n.add_route(NodeId{7}, &specific);
  n.set_default_route(&fallback);

  Packet p;
  p.src = NodeId{0};
  p.dst = NodeId{7};
  n.receive(p);
  p.dst = NodeId{8};
  n.receive(p);

  EXPECT_EQ(specific.sent, 1);
  EXPECT_EQ(fallback.sent, 1);
  EXPECT_EQ(n.forwarded(), 2u);
}

TEST(NodeRouting, ReplaceRouteTargetRewritesAllMatchingEntries) {
  Node n{NodeId{0}};
  CountingHandler old_h;
  CountingHandler new_h;
  CountingHandler other;
  n.add_route(NodeId{1}, &old_h);
  n.add_route(NodeId{2}, &old_h);
  n.add_route(NodeId{3}, &other);
  n.set_default_route(&old_h);

  EXPECT_EQ(n.replace_route_target(&old_h, &new_h), 3);

  Packet p;
  p.src = NodeId{0};
  for (std::uint32_t d : {1u, 2u, 3u, 9u}) {
    p.dst = NodeId{d};
    n.receive(p);
  }
  EXPECT_EQ(new_h.sent, 3);  // dst 1, 2, and the default route (9)
  EXPECT_EQ(other.sent, 1);
  EXPECT_EQ(old_h.sent, 0);
}

TEST(NodeRouting, ManyRoutesAllResolve) {
  // A gateway in a large graph topology: hundreds of per-destination
  // entries, each resolving to its own handler through table growth.
  Node n{NodeId{0}};
  std::vector<CountingHandler> handlers(400);
  for (std::uint32_t d = 1; d <= 400; ++d)
    n.add_route(NodeId{d}, &handlers[d - 1]);
  Packet p;
  p.src = NodeId{0};
  for (std::uint32_t d = 1; d <= 400; ++d) {
    p.dst = NodeId{d};
    n.receive(p);
  }
  for (std::uint32_t d = 1; d <= 400; ++d)
    EXPECT_EQ(handlers[d - 1].sent, 1) << "dst " << d;
}

}  // namespace
}  // namespace rrtcp::net
