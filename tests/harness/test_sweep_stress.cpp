// Multi-producer stress test for the sweep harness — the scenario the
// RRTCP_SANITIZE_THREAD CI job runs under TSan. Every worker thread builds
// complete audited simulations concurrently: each job owns a simulator, a
// dumbbell, and an AuditSession (which installs/restores the thread-local
// assert-context hook), so races in the harness, the RNG seeding, or the
// audit layer's thread-local handoff surface here.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "app/flow_factory.hpp"
#include "app/ftp.hpp"
#include "audit/invariant_auditor.hpp"
#include "harness/result_sink.hpp"
#include "harness/sweep.hpp"
#include "net/dumbbell.hpp"
#include "net/loss_model.hpp"
#include "sim/simulator.hpp"

namespace rrtcp::harness {
namespace {

// One job = one fully audited mini-experiment: RR over the dumbbell with
// seed-dependent random loss, recording violations and final progress.
std::vector<SweepJob> make_audited_jobs(std::size_t n) {
  std::vector<SweepJob> jobs;
  for (std::size_t j = 0; j < n; ++j) {
    jobs.push_back(
        {"audited=" + std::to_string(j), [](const JobContext& ctx) {
           sim::Simulator sim;
           net::DumbbellTopology topo{sim, {}};
           topo.bottleneck().set_loss_model(
               std::make_unique<net::UniformLossModel>(0.02, ctx.seed));
           app::Flow flow =
               app::make_flow(app::Variant::kRr, sim, topo.sender_node(0),
                              topo.receiver_node(0), 1, {});
           app::FtpSource src{sim, *flow.sender, sim::Time::zero(),
                              std::nullopt};

           audit::AuditSession session{
               sim, audit::AuditSession::FailMode::kRecord};
           session.attach_topology(topo);
           session.attach(*flow.sender, flow.receiver.get());

           sim.run_until(sim::Time::seconds(5));
           return Record{}
               .set("seed", ctx.seed)
               .set("acked", flow.sender->stats().bytes_acked)
               .set("rtx", flow.sender->stats().retransmissions)
               .set("violations", session.total_violations());
         }});
  }
  return jobs;
}

TEST(SweepStress, ConcurrentAuditedSimulationsAreCleanAndDeterministic) {
  const auto jobs = make_audited_jobs(24);
  std::string baseline;
  // Serial once for the reference output, then two saturated runs: the
  // parallel results must be byte-identical and violation-free.
  for (int threads : {1, 8, 8}) {
    ResultSink sink{jobs.size()};
    SweepOptions opts;
    opts.threads = threads;
    opts.base_seed = 1234;
    run_sweep(jobs, sink, opts);
    ASSERT_TRUE(sink.complete());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      EXPECT_EQ(sink.record(i).get("violations"), "0") << "job " << i;
      EXPECT_NE(sink.record(i).get("acked"), "0") << "job " << i;
    }
    if (baseline.empty())
      baseline = sink.to_csv();
    else
      EXPECT_EQ(sink.to_csv(), baseline);
  }
}

}  // namespace
}  // namespace rrtcp::harness
