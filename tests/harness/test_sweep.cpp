// Tests for the deterministic parallel sweep harness: seed derivation,
// thread-count resolution, result ordering, error capture, and the core
// guarantee — CSV/JSON output byte-identical across thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/result_sink.hpp"
#include "harness/sweep.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace rrtcp::harness {
namespace {

TEST(DeriveSeed, StableAndDecorrelated) {
  // Stateless: same inputs, same output.
  EXPECT_EQ(derive_seed(1, 0), derive_seed(1, 0));
  // Distinct indices and adjacent base seeds give distinct seeds.
  std::vector<std::uint64_t> seen;
  for (std::uint64_t base : {1ULL, 2ULL})
    for (std::uint64_t i = 0; i < 64; ++i) seen.push_back(derive_seed(base, i));
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

TEST(ResolveThreads, RequestedBeatsEnvAndFloorsAtOne) {
  EXPECT_EQ(resolve_threads(3), 3);
  EXPECT_EQ(resolve_threads(1), 1);
  ::setenv("RRTCP_SWEEP_THREADS", "5", 1);
  EXPECT_EQ(resolve_threads(0), 5);
  EXPECT_EQ(resolve_threads(2), 2);  // explicit request still wins
  ::setenv("RRTCP_SWEEP_THREADS", "0", 1);
  EXPECT_GE(resolve_threads(0), 1);  // junk env falls through, floor 1
  ::unsetenv("RRTCP_SWEEP_THREADS");
  EXPECT_GE(resolve_threads(0), 1);
}

// A grid of jobs that actually exercises the simulator and the per-job
// seed: each job runs a tiny event loop whose outcome depends on ctx.seed,
// with deliberately uneven amounts of work so completions interleave.
std::vector<SweepJob> make_jobs(std::size_t n) {
  std::vector<SweepJob> jobs;
  for (std::size_t j = 0; j < n; ++j) {
    jobs.push_back({"job=" + std::to_string(j), [j](const JobContext& ctx) {
                      sim::Simulator s;
                      sim::Rng rng{ctx.seed, "sweep-test"};
                      std::uint64_t hits = 0;
                      // More events for low-index jobs: uneven durations.
                      const std::uint64_t n_events = 50 * (ctx.index % 7 + 1);
                      for (std::uint64_t i = 0; i < n_events; ++i) {
                        s.schedule_at(sim::Time::milliseconds(i), [&] {
                          if (rng.bernoulli(0.5)) ++hits;
                        });
                      }
                      s.run_until(sim::Time::seconds(10));
                      return Record{}
                          .set("job", static_cast<std::uint64_t>(j))
                          .set("seed", ctx.seed)
                          .set("hits", hits)
                          .set("now_s", s.now().to_seconds());
                    }});
  }
  return jobs;
}

TEST(RunSweep, OutputIsByteIdenticalAcrossThreadCounts) {
  const auto jobs = make_jobs(21);
  std::string csv1, json1;
  for (int threads : {1, 8}) {
    ResultSink sink{jobs.size()};
    SweepOptions opts;
    opts.threads = threads;
    opts.base_seed = 42;
    run_sweep(jobs, sink, opts);
    ASSERT_TRUE(sink.complete());
    if (threads == 1) {
      csv1 = sink.to_csv();
      json1 = sink.to_json("sweep-test", opts.base_seed);
      // Sanity: header + one line per job, id column prepended.
      EXPECT_EQ(csv1.substr(0, csv1.find(',')), "id");
    } else {
      EXPECT_EQ(sink.to_csv(), csv1);
      EXPECT_EQ(sink.to_json("sweep-test", opts.base_seed), json1);
    }
  }
}

TEST(RunSweep, ResultsStoredInJobOrderNotCompletionOrder) {
  const auto jobs = make_jobs(12);
  ResultSink sink{jobs.size()};
  SweepOptions opts;
  opts.threads = 4;
  run_sweep(jobs, sink, opts);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(sink.record(i).get("id"), "job=" + std::to_string(i));
    EXPECT_EQ(sink.record(i).get("job"), std::to_string(i));
  }
}

TEST(RunSweep, SeedsFollowBaseSeedNotThreadSchedule) {
  const auto jobs = make_jobs(6);
  ResultSink sink{jobs.size()};
  SweepOptions opts;
  opts.threads = 3;
  opts.base_seed = 7;
  run_sweep(jobs, sink, opts);
  for (std::size_t i = 0; i < jobs.size(); ++i)
    EXPECT_EQ(sink.record(i).get("seed"), std::to_string(derive_seed(7, i)));
}

TEST(RunSweep, ThrowingJobYieldsErrorRecordAndSweepContinues) {
  std::vector<SweepJob> jobs = make_jobs(3);
  jobs.insert(jobs.begin() + 1,
              {"boom", [](const JobContext&) -> Record {
                 throw std::runtime_error("scenario exploded");
               }});
  ResultSink sink{jobs.size()};
  SweepOptions opts;
  opts.threads = 2;
  run_sweep(jobs, sink, opts);
  ASSERT_TRUE(sink.complete());
  EXPECT_EQ(sink.record(1).get("id"), "boom");
  EXPECT_EQ(sink.record(1).get("error"), "scenario exploded");
  EXPECT_EQ(sink.record(3).get("id"), "job=2");  // later jobs still ran
}

TEST(ResultSink, CsvEscapesDelimitersQuotesAndNewlines) {
  ResultSink sink{1};
  sink.submit(0,
              Record{}
                  .set("plain", "x")
                  .set("comma", "a,b")
                  .set("quote", "say \"hi\"")
                  .set("newline", std::string{"l1\nl2"}),
              0.0);
  EXPECT_EQ(sink.to_csv(),
            "plain,comma,quote,newline\n"
            "x,\"a,b\",\"say \"\"hi\"\"\",\"l1\nl2\"\n");
}

TEST(ResultSink, JsonQuotesTextAndLeavesNumbersBare) {
  ResultSink sink{1};
  sink.submit(0, Record{}.set("name", "tahoe").set("kbps", 12.5).set("n", 3),
              0.0);
  const std::string json = sink.to_json("unit", 9);
  EXPECT_NE(json.find("\"sweep\": \"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"base_seed\": 9"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"tahoe\""), std::string::npos);
  EXPECT_NE(json.find("\"kbps\": 12.5"), std::string::npos);
  EXPECT_NE(json.find("\"n\": 3"), std::string::npos);
}

TEST(ResultSink, MissingColumnsEmitEmptyCells) {
  ResultSink sink{2};
  sink.submit(0, Record{}.set("a", 1).set("b", 2), 0.0);
  sink.submit(1, Record{}.set("a", 3).set("c", 4), 0.0);
  EXPECT_EQ(sink.to_csv(), "a,b,c\n1,2,\n3,,4\n");
}

}  // namespace
}  // namespace rrtcp::harness
