// Graph partitioner invariants: every node in exactly one shard, links
// owned by their tail, zero-delay links never cut, lookahead = min cut
// delay, and full determinism of the assignment.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "topo/partition.hpp"
#include "topo/presets.hpp"

namespace rrtcp::topo {
namespace {

GraphSpec chain4(sim::Time delay) {
  GraphSpec g;
  for (int i = 0; i < 4; ++i) g.add_node("N" + std::to_string(i));
  for (int i = 0; i < 3; ++i) g.add_duplex(i, i + 1, 1'000'000, delay);
  return g;
}

void check_invariants(const GraphSpec& g, const Partition& p) {
  ASSERT_EQ(p.node_shard.size(), g.nodes.size());
  ASSERT_EQ(p.link_shard.size(), g.links.size());
  for (const int s : p.node_shard) {
    EXPECT_GE(s, 0);
    EXPECT_LT(s, p.n_shards);
  }
  // Links belong to their tail's shard; cut_links are exactly the links
  // whose head lives elsewhere, ascending and with positive delay.
  std::set<int> cuts(p.cut_links.begin(), p.cut_links.end());
  EXPECT_EQ(cuts.size(), p.cut_links.size());
  for (std::size_t li = 0; li < g.links.size(); ++li) {
    const LinkSpec& ls = g.links[li];
    EXPECT_EQ(p.link_shard[li],
              p.node_shard[static_cast<std::size_t>(ls.from)]);
    const bool is_cut = p.node_shard[static_cast<std::size_t>(ls.from)] !=
                        p.node_shard[static_cast<std::size_t>(ls.to)];
    EXPECT_EQ(cuts.count(static_cast<int>(li)) == 1, is_cut) << "link " << li;
    if (is_cut) {
      EXPECT_GT(ls.delay, sim::Time::zero()) << "zero-delay link cut";
      EXPECT_GE(ls.delay, p.lookahead);
    }
  }
  if (p.n_shards > 1) {
    EXPECT_GT(p.lookahead, sim::Time::zero());
  }
  // shard_nodes is the inverse of node_shard.
  ASSERT_EQ(p.shard_nodes.size(), static_cast<std::size_t>(p.n_shards));
  std::size_t total = 0;
  for (int s = 0; s < p.n_shards; ++s) {
    EXPECT_FALSE(p.shard_nodes[static_cast<std::size_t>(s)].empty());
    for (const int v : p.shard_nodes[static_cast<std::size_t>(s)])
      EXPECT_EQ(p.node_shard[static_cast<std::size_t>(v)], s);
    total += p.shard_nodes[static_cast<std::size_t>(s)].size();
  }
  EXPECT_EQ(total, g.nodes.size());
}

TEST(Partition, RequestOfOneIsTrivial) {
  const GraphSpec g = chain4(sim::Time::milliseconds(1));
  const Partition p = partition_graph(g, 1);
  EXPECT_EQ(p.n_shards, 1);
  EXPECT_TRUE(p.cut_links.empty());
  EXPECT_EQ(p.lookahead, sim::Time::zero());
  check_invariants(g, p);
}

TEST(Partition, ChainSplitsWithPositiveLookahead) {
  const GraphSpec g = chain4(sim::Time::milliseconds(2));
  const Partition p = partition_graph(g, 2);
  EXPECT_EQ(p.n_shards, 2);
  EXPECT_FALSE(p.cut_links.empty());
  EXPECT_EQ(p.lookahead, sim::Time::milliseconds(2));
  check_invariants(g, p);
}

TEST(Partition, ZeroDelayLinksAreNeverCut) {
  GraphSpec g;
  g.add_node("A");
  g.add_node("B");
  g.add_node("C");
  g.add_duplex(0, 1, 1'000'000, sim::Time::zero());  // A-B glued together
  g.add_duplex(1, 2, 1'000'000, sim::Time::milliseconds(3));
  const Partition p = partition_graph(g, 2);
  EXPECT_EQ(p.n_shards, 2);
  EXPECT_EQ(p.node_shard[0], p.node_shard[1]);
  EXPECT_NE(p.node_shard[1], p.node_shard[2]);
  EXPECT_EQ(p.lookahead, sim::Time::milliseconds(3));
  check_invariants(g, p);
}

TEST(Partition, AllZeroDelayCollapsesToOneShard) {
  GraphSpec g;
  g.add_node("A");
  g.add_node("B");
  g.add_node("C");
  g.add_duplex(0, 1, 1'000'000, sim::Time::zero());
  g.add_duplex(1, 2, 1'000'000, sim::Time::zero());
  const Partition p = partition_graph(g, 4);
  EXPECT_EQ(p.n_shards, 1);
  EXPECT_TRUE(p.cut_links.empty());
  check_invariants(g, p);
}

TEST(Partition, ShardCountCapsAtComponentCount) {
  GraphSpec g;
  g.add_node("A");
  g.add_node("B");
  g.add_duplex(0, 1, 1'000'000, sim::Time::milliseconds(1));
  const Partition p = partition_graph(g, 8);
  EXPECT_EQ(p.n_shards, 2);
  check_invariants(g, p);
}

TEST(Partition, DeterministicForSameInput) {
  MultiDumbbellConfig mdc;
  mdc.n_senders = 6;
  mdc.m_receivers = 3;
  mdc.side_delay = sim::Time::milliseconds(1);
  const MultiDumbbellLayout md = multi_dumbbell(mdc);
  const Partition a = partition_graph(md.spec, 4);
  const Partition b = partition_graph(md.spec, 4);
  EXPECT_EQ(a.n_shards, b.n_shards);
  EXPECT_EQ(a.node_shard, b.node_shard);
  EXPECT_EQ(a.link_shard, b.link_shard);
  EXPECT_EQ(a.cut_links, b.cut_links);
  EXPECT_EQ(a.lookahead, b.lookahead);
  EXPECT_EQ(a.shard_nodes, b.shard_nodes);
}

TEST(Partition, MultiDumbbellWithSideDelaySplitsWide) {
  MultiDumbbellConfig mdc;
  mdc.n_senders = 8;
  mdc.m_receivers = 4;
  mdc.side_delay = sim::Time::milliseconds(5);
  const MultiDumbbellLayout md = multi_dumbbell(mdc);
  for (const int want : {2, 4, 8}) {
    const Partition p = partition_graph(md.spec, want);
    EXPECT_EQ(p.n_shards, want);
    check_invariants(md.spec, p);
  }
}

TEST(RouteTable, EntriesLeaveTheirNode) {
  ParkingLotConfig plc;
  plc.n_bottlenecks = 3;
  const ParkingLotLayout lot = parking_lot(plc);
  const std::vector<int> table = compute_route_table(lot.spec);
  const int n = lot.spec.n_nodes();
  ASSERT_EQ(table.size(), static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  for (int at = 0; at < n; ++at) {
    for (int dst = 0; dst < n; ++dst) {
      const int li = table[static_cast<std::size_t>(at) *
                               static_cast<std::size_t>(n) +
                           static_cast<std::size_t>(dst)];
      if (at == dst) continue;
      // The parking lot is connected: every pair routes, and the chosen
      // link departs from `at` — the property sharded forwarding needs
      // (a node's next hop is always a link its own shard owns).
      ASSERT_GE(li, 0) << at << " -> " << dst;
      EXPECT_EQ(lot.spec.links[static_cast<std::size_t>(li)].from, at);
    }
  }
}

TEST(RouteTable, UnreachableIsMinusOne) {
  GraphSpec g;
  g.add_node("A");
  g.add_node("B");  // isolated
  const std::vector<int> table = compute_route_table(g);
  EXPECT_EQ(table[0 * 2 + 1], -1);
  EXPECT_EQ(table[1 * 2 + 0], -1);
}

}  // namespace
}  // namespace rrtcp::topo
