// The sharded conservative-PDES engine, end to end.
//
// The headline pin lives here: one ScenarioSpec run at shard counts
// {1, 2, 4, 8} must produce IDENTICAL per-flow trace digests, where the
// shard_count = 1 leg is the plain single-engine harness::Scenario (the
// delegation path) — i.e. sharding is invisible in every flow's trace.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fuzz/digest.hpp"
#include "harness/scenario.hpp"
#include "pdes/sharded.hpp"
#include "sim/simulator.hpp"
#include "topo/presets.hpp"

namespace rrtcp::pdes {
namespace {

using sim::Time;

TEST(RunBefore, FiresStrictlyBeforeDeadlineAndAdvancesClock) {
  sim::Simulator sim;
  std::vector<int> fired;
  sim.schedule_at(Time::milliseconds(1), [&] { fired.push_back(1); });
  sim.schedule_at(Time::milliseconds(2), [&] { fired.push_back(2); });
  sim.schedule_at(Time::milliseconds(3), [&] { fired.push_back(3); });

  // Half-open window [0, 2ms): the event AT 2 ms must stay pending.
  EXPECT_EQ(sim.run_before(Time::milliseconds(2)), 1u);
  EXPECT_EQ(fired, (std::vector<int>{1}));
  EXPECT_EQ(sim.now(), Time::milliseconds(2));

  // The boundary event fires in the next (inclusive) window.
  EXPECT_EQ(sim.run_until(Time::milliseconds(3)), 2u);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(RunBefore, EmptyWindowStillAdvancesClock) {
  sim::Simulator sim;
  EXPECT_EQ(sim.run_before(Time::milliseconds(5)), 0u);
  EXPECT_EQ(sim.now(), Time::milliseconds(5));
  // schedule_at at exactly now() is legal — merged cross-shard arrivals
  // can land on the boundary the clock just advanced to.
  bool ran = false;
  sim.schedule_at(Time::milliseconds(5), [&] { ran = true; });
  sim.run_until(Time::milliseconds(5));
  EXPECT_TRUE(ran);
}

TEST(FlowSet, ExpansionMaterializesStartsAndNodes) {
  harness::ScenarioSpec spec;
  harness::FlowSet set;
  set.count = 3;
  set.proto.start = Time::milliseconds(10);
  set.proto.src_node = 2;
  set.proto.dst_node = 7;
  set.stagger = Time::milliseconds(100);
  set.src_step = 1;
  set.dst_step = 2;
  spec.add_flow_set(set);
  spec.expand_flow_sets();
  ASSERT_EQ(spec.flows.size(), 3u);
  EXPECT_TRUE(spec.flow_sets.empty());
  for (int i = 0; i < 3; ++i) {
    const harness::FlowSpec& f = spec.flows[static_cast<std::size_t>(i)];
    EXPECT_EQ(f.start, Time::milliseconds(10) + Time::milliseconds(100) * i);
    EXPECT_EQ(f.src_node, 2 + i);
    EXPECT_EQ(f.dst_node, 7 + 2 * i);
  }
}

TEST(FlowSet, ValidateAndBuildSeeTheExpandedFlows) {
  topo::MultiDumbbellConfig mdc;
  mdc.n_senders = 3;
  mdc.m_receivers = 3;
  const topo::MultiDumbbellLayout md = topo::multi_dumbbell(mdc);

  harness::ScenarioSpec spec;
  spec.graph = md.spec;
  spec.horizon = Time::seconds(1);
  harness::FlowSet set;
  set.count = 3;
  set.proto.bytes = 1'000;
  set.proto.src_node = md.senders[0];
  set.proto.dst_node = md.receivers[0];
  set.src_step = 1;  // sender hosts are consecutive node indices
  set.dst_step = 1;
  spec.add_flow_set(set);

  EXPECT_FALSE(harness::Scenario::validate(spec).has_value());
  harness::Scenario sc{spec};
  EXPECT_EQ(sc.n_flows(), 3);
}

// ---------------------------------------------------------------------------
// ShardedScenario
// ---------------------------------------------------------------------------

// An N x M dumbbell whose access links carry real propagation delay, so the
// partitioner can cut them (multi_dumbbell's default side_delay of zero
// would glue each side into one component).
harness::ScenarioSpec sharded_md_spec(int shards, int n_flows = 8) {
  topo::MultiDumbbellConfig mdc;
  mdc.n_senders = n_flows;
  mdc.m_receivers = 4;
  mdc.side_delay = Time::milliseconds(5);
  mdc.bottleneck_delay = Time::milliseconds(20);
  const topo::MultiDumbbellLayout md = topo::multi_dumbbell(mdc);

  harness::ScenarioSpec spec;
  spec.name = "pdes-pin";
  spec.graph = md.spec;
  spec.shard_count = shards;
  spec.horizon = Time::seconds(12);
  spec.instruments.tracers = false;
  spec.instruments.audit = harness::AuditMode::kNone;
  spec.instruments.watchdog = false;

  static constexpr app::Variant kMix[] = {
      app::Variant::kRr, app::Variant::kNewReno, app::Variant::kSack,
      app::Variant::kReno};
  for (int i = 0; i < n_flows; ++i) {
    harness::FlowSpec f;
    f.variant = kMix[i % 4];
    f.start = Time::milliseconds(150) * i;
    f.bytes = 30'000;
    f.src_node = md.senders[static_cast<std::size_t>(i)];
    f.dst_node = md.receivers[static_cast<std::size_t>(i) % 4];
    spec.add_flow(f);
  }
  return spec;
}

std::vector<std::uint64_t> per_flow_digests(ShardedScenario& sc) {
  const int n = sc.n_flows();
  std::vector<fuzz::TraceDigest> digests(static_cast<std::size_t>(n));
  std::vector<std::unique_ptr<fuzz::DigestObserver>> observers;
  for (int i = 0; i < n; ++i) {
    observers.push_back(std::make_unique<fuzz::DigestObserver>(
        digests[static_cast<std::size_t>(i)], i));
    sc.sender(i).add_observer(observers.back().get());
  }
  sc.run();
  std::vector<std::uint64_t> out;
  for (int i = 0; i < n; ++i) {
    sc.sender(i).remove_observer(observers[static_cast<std::size_t>(i)].get());
    out.push_back(digests[static_cast<std::size_t>(i)].value());
  }
  return out;
}

TEST(ShardedScenario, SingleShardDelegatesToPlainScenario) {
  ShardedScenario sc{sharded_md_spec(/*shards=*/1)};
  EXPECT_FALSE(sc.sharded());
  EXPECT_NE(sc.single(), nullptr);
  EXPECT_EQ(sc.n_shards(), 1);
}

TEST(ShardedScenario, DumbbellModeDelegates) {
  harness::ScenarioSpec spec;  // graph empty => dumbbell mode
  spec.shard_count = 4;
  spec.horizon = Time::seconds(2);
  harness::FlowSpec f;
  f.bytes = 10'000;
  spec.add_flow(f);
  ShardedScenario sc{std::move(spec)};
  EXPECT_FALSE(sc.sharded());
  sc.run();
  EXPECT_TRUE(sc.sender(0).complete());
}

TEST(ShardedScenario, UnpartitionableGraphDelegates) {
  topo::GraphSpec g;
  g.add_node("A");
  g.add_node("B");
  g.add_duplex(0, 1, 10'000'000, Time::zero());  // zero delay: uncuttable
  harness::ScenarioSpec spec;
  spec.graph = std::move(g);
  spec.shard_count = 4;
  spec.horizon = Time::seconds(2);
  harness::FlowSpec f;
  f.bytes = 5'000;
  f.src_node = 0;
  f.dst_node = 1;
  spec.add_flow(f);
  ShardedScenario sc{std::move(spec)};
  EXPECT_FALSE(sc.sharded());
  sc.run();
  EXPECT_TRUE(sc.sender(0).complete());
}

TEST(ShardedScenario, ShardedRunMakesProgressAcrossShards) {
  ShardedScenario sc{sharded_md_spec(/*shards=*/4)};
  ASSERT_TRUE(sc.sharded());
  EXPECT_EQ(sc.n_shards(), 4);
  EXPECT_GT(sc.lookahead(), Time::zero());
  sc.run();
  EXPECT_GT(sc.rounds(), 0u);
  EXPECT_GT(sc.cross_shard_packets(), 0u);
  EXPECT_GT(sc.arena().objects(), 0u);
  for (int i = 0; i < sc.n_flows(); ++i) {
    EXPECT_TRUE(sc.sender(i).complete()) << "flow " << i;
  }
}

// The determinism contract (DESIGN.md §17): identical per-flow traces at
// every shard count, with the 1-shard leg being the plain single engine.
TEST(ShardedScenario, PerFlowTracesIdenticalAcrossShardCounts) {
  ShardedScenario single{sharded_md_spec(/*shards=*/1)};
  ASSERT_FALSE(single.sharded());
  const std::vector<std::uint64_t> baseline = per_flow_digests(single);

  for (const int shards : {2, 4, 8}) {
    ShardedScenario sc{sharded_md_spec(shards)};
    ASSERT_TRUE(sc.sharded()) << shards << " shards";
    EXPECT_EQ(sc.n_shards(), shards);
    EXPECT_EQ(per_flow_digests(sc), baseline) << shards << " shards";
  }
}

// Same engine, same shard count, two runs: thread scheduling must not be
// able to reorder anything observable.
TEST(ShardedScenario, RepeatedShardedRunsAreIdentical) {
  ShardedScenario a{sharded_md_spec(/*shards=*/4)};
  ShardedScenario b{sharded_md_spec(/*shards=*/4)};
  EXPECT_EQ(per_flow_digests(a), per_flow_digests(b));
}

// Final sender state must agree with the single engine too — digests pin
// the event stream, these pin the outcome a benchmark would report.
TEST(ShardedScenario, FinalSenderStateMatchesSingleEngine) {
  ShardedScenario single{sharded_md_spec(/*shards=*/1)};
  single.run();
  ShardedScenario sharded{sharded_md_spec(/*shards=*/4)};
  sharded.run();
  ASSERT_EQ(single.n_flows(), sharded.n_flows());
  for (int i = 0; i < single.n_flows(); ++i) {
    EXPECT_EQ(single.sender(i).complete(), sharded.sender(i).complete());
    EXPECT_EQ(single.sender(i).snd_una(), sharded.sender(i).snd_una());
    EXPECT_EQ(single.sender(i).max_sent(), sharded.sender(i).max_sent());
  }
}

TEST(ShardedScenario, TryBuildRejectsInvalidSpecs) {
  harness::ScenarioSpec spec = sharded_md_spec(4);
  spec.flows.clear();  // kNoFlows
  harness::SpecError err;
  EXPECT_EQ(ShardedScenario::try_build(std::move(spec), &err), nullptr);
  EXPECT_EQ(err.code, harness::SpecError::Code::kNoFlows);
}

TEST(ShardedScenario, FlowSetsExpandInShardedMode) {
  topo::MultiDumbbellConfig mdc;
  mdc.n_senders = 4;
  mdc.m_receivers = 4;
  mdc.side_delay = Time::milliseconds(5);
  const topo::MultiDumbbellLayout md = topo::multi_dumbbell(mdc);
  harness::ScenarioSpec spec;
  spec.graph = md.spec;
  spec.shard_count = 2;
  spec.horizon = Time::seconds(10);
  spec.instruments.tracers = false;
  spec.instruments.audit = harness::AuditMode::kNone;
  spec.instruments.watchdog = false;
  harness::FlowSet set;
  set.count = 4;
  set.proto.bytes = 8'000;
  set.proto.src_node = md.senders[0];
  set.proto.dst_node = md.receivers[0];
  set.stagger = Time::milliseconds(200);
  set.src_step = 1;
  set.dst_step = 1;
  spec.add_flow_set(set);

  ShardedScenario sc{std::move(spec)};
  ASSERT_TRUE(sc.sharded());
  EXPECT_EQ(sc.n_flows(), 4);
  sc.run();
  for (int i = 0; i < 4; ++i)
    EXPECT_TRUE(sc.sender(i).complete()) << "flow " << i;
}

}  // namespace
}  // namespace rrtcp::pdes
