// FlowArena semantics: bump allocation, reverse-order destruction, adopt()
// for externally placement-constructed objects, and block accounting.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "pdes/flow_arena.hpp"

namespace rrtcp::pdes {
namespace {

struct Tracked {
  explicit Tracked(std::vector<int>* log, int id) : log_{log}, id_{id} {}
  ~Tracked() { log_->push_back(id_); }
  std::vector<int>* log_;
  int id_;
};

TEST(FlowArena, DestroysInReverseConstructionOrder) {
  std::vector<int> destroyed;
  {
    FlowArena arena;
    arena.create<Tracked>(&destroyed, 1);
    arena.create<Tracked>(&destroyed, 2);
    arena.create<Tracked>(&destroyed, 3);
    EXPECT_EQ(arena.objects(), 3u);
    EXPECT_TRUE(destroyed.empty());
  }
  EXPECT_EQ(destroyed, (std::vector<int>{3, 2, 1}));
}

TEST(FlowArena, ResetRunsDestructorsAndReleasesBlocks) {
  std::vector<int> destroyed;
  FlowArena arena;
  arena.create<Tracked>(&destroyed, 7);
  arena.reset();
  EXPECT_EQ(destroyed, (std::vector<int>{7}));
  EXPECT_EQ(arena.objects(), 0u);
  EXPECT_EQ(arena.blocks(), 0u);
  EXPECT_EQ(arena.bytes_used(), 0u);
  // The arena is reusable after reset.
  arena.create<Tracked>(&destroyed, 8);
  EXPECT_EQ(arena.objects(), 1u);
}

TEST(FlowArena, AdoptRegistersDestructor) {
  std::vector<int> destroyed;
  FlowArena arena;
  void* mem = arena.allocate(sizeof(Tracked), alignof(Tracked));
  Tracked* obj = ::new (mem) Tracked(&destroyed, 42);
  arena.adopt(obj);
  arena.reset();
  EXPECT_EQ(destroyed, (std::vector<int>{42}));
}

TEST(FlowArena, AllocationsAreAligned) {
  FlowArena arena;
  // Interleave odd sizes with stricter alignments; every pointer must meet
  // its requested alignment.
  for (const std::size_t align : {1u, 2u, 8u, 16u}) {
    void* p = arena.allocate(3, align);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
        << "align " << align;
  }
}

TEST(FlowArena, ManySmallObjectsShareABlock) {
  FlowArena arena{4096};
  for (int i = 0; i < 32; ++i) arena.allocate(64, 8);
  EXPECT_EQ(arena.blocks(), 1u);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_used());
}

TEST(FlowArena, OversizedRequestGetsDedicatedBlock) {
  FlowArena arena{1024};
  arena.allocate(64, 8);
  void* big = arena.allocate(10'000, 8);
  EXPECT_NE(big, nullptr);
  EXPECT_EQ(arena.blocks(), 2u);
  EXPECT_GE(arena.bytes_reserved(), 1024u + 10'000u);
  // Only the newest block is bump-allocated from: the full dedicated block
  // retires, so the next small request opens a fresh normal-size block.
  arena.allocate(64, 8);
  EXPECT_EQ(arena.blocks(), 3u);
}

}  // namespace
}  // namespace rrtcp::pdes
