// Shared test utilities: packet factories, capturing fakes, and a sender
// harness that drives any TcpSenderBase variant with hand-crafted ACK
// streams so state-machine transitions can be asserted precisely.
#pragma once

#include <cstdint>
#include <vector>

#include "net/node.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "tcp/types.hpp"

namespace rrtcp::test {

// Records every packet offered to it (a stand-in for a Link).
class CaptureHandler final : public net::PacketHandler {
 public:
  void send(net::Packet p) override { packets.push_back(std::move(p)); }

  std::vector<net::Packet> packets;

  std::size_t count() const { return packets.size(); }
  const net::Packet& last() const { return packets.back(); }
  void clear() { packets.clear(); }

  // Data segments only, in send order.
  std::vector<net::Packet> data() const {
    std::vector<net::Packet> out;
    for (const auto& p : packets)
      if (p.is_data()) out.push_back(p);
    return out;
  }
};

// Records every packet delivered to it (a stand-in for an Agent).
class CaptureAgent final : public net::Agent {
 public:
  void receive(net::Packet p) override { packets.push_back(std::move(p)); }
  std::vector<net::Packet> packets;
};

inline net::Packet make_data(net::FlowId flow, std::uint64_t seq,
                             std::uint32_t len, net::NodeId src = 1,
                             net::NodeId dst = 2) {
  net::Packet p;
  p.uid = net::next_packet_uid();
  p.flow = flow;
  p.src = src;
  p.dst = dst;
  p.type = net::PacketType::kData;
  p.size_bytes = 1000;
  p.tcp.seq = seq;
  p.tcp.payload = len;
  return p;
}

inline net::Packet make_ack(net::FlowId flow, std::uint64_t ack,
                            std::vector<net::SackBlock> sacks = {},
                            net::NodeId src = 2, net::NodeId dst = 1) {
  net::Packet p;
  p.uid = net::next_packet_uid();
  p.flow = flow;
  p.src = src;
  p.dst = dst;
  p.type = net::PacketType::kAck;
  p.size_bytes = 40;
  p.tcp.ack = ack;
  p.tcp.n_sack = static_cast<std::uint8_t>(sacks.size());
  for (std::size_t i = 0; i < sacks.size() && i < net::kMaxSackBlocks; ++i)
    p.tcp.sack[i] = sacks[i];
  return p;
}

// Drives one sender variant directly: outgoing segments land in `wire`,
// ACKs are injected by the test. The harness node never forwards anything
// anywhere else, so every transition is observable and synchronous.
template <typename SenderT>
class SenderHarness {
 public:
  explicit SenderHarness(tcp::TcpConfig cfg = {})
      : node_{1}, sender_{sim, node_, kFlow, /*dst=*/2, cfg} {
    node_.set_default_route(&wire);
  }

  static constexpr net::FlowId kFlow = 7;

  SenderT& sender() { return sender_; }

  // Deliver a (possibly SACK-tagged) pure ACK to the sender.
  void ack(std::uint64_t ackno, std::vector<net::SackBlock> sacks = {}) {
    sender_.receive(make_ack(kFlow, ackno, std::move(sacks)));
  }
  // n duplicate ACKs at the current snd_una.
  void dupacks(int n, std::vector<net::SackBlock> sacks = {}) {
    for (int i = 0; i < n; ++i) ack(sender_.snd_una(), sacks);
  }

  // Sequence numbers (bytes) of data segments captured since last clear().
  std::vector<std::uint64_t> sent_seqs() const {
    std::vector<std::uint64_t> out;
    for (const auto& p : wire.packets)
      if (p.is_data()) out.push_back(p.tcp.seq);
    return out;
  }

  sim::Simulator sim;
  CaptureHandler wire;

 private:
  net::Node node_;
  SenderT sender_;
};

}  // namespace rrtcp::test
