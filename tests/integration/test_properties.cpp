// Property-style parameterized sweeps: for every (variant, loss-rate, seed)
// combination, run a full transfer through the simulated network and check
// the invariants that must hold regardless of congestion-control details.
#include <gtest/gtest.h>

#include <tuple>

#include "scenario.hpp"

namespace rrtcp::test {
namespace {

using app::Variant;

using SweepParam = std::tuple<Variant, double /*loss*/, std::uint64_t /*seed*/>;

class LossSweep : public ::testing::TestWithParam<SweepParam> {};

INSTANTIATE_TEST_SUITE_P(
    Grid, LossSweep,
    ::testing::Combine(::testing::ValuesIn(app::kExtendedVariants),
                       ::testing::Values(0.005, 0.02, 0.08),
                       ::testing::Values(1u, 2u, 3u)),
    [](const auto& info) {
      char buf[64];
      std::snprintf(
          buf, sizeof buf, "%s_p%d_s%llu",
          app::to_string(std::get<0>(info.param)),
          static_cast<int>(std::get<1>(info.param) * 1000),
          static_cast<unsigned long long>(std::get<2>(info.param)));
      return std::string(buf);
    });

TEST_P(LossSweep, ReliableInOrderDeliveryUnderRandomLoss) {
  const auto& [variant, rate, seed] = GetParam();
  ScenarioConfig cfg;
  cfg.variant = variant;
  cfg.bytes = 100'000;
  cfg.buffer_packets = 50;
  cfg.horizon = sim::Time::seconds(1200);  // generous: high loss is slow
  cfg.make_loss = [rate_ = rate, seed_ = seed] {
    return std::make_unique<net::UniformLossModel>(rate_, seed_);
  };
  auto r = run_scenario(cfg);
  ASSERT_TRUE(r.flows[0].complete)
      << "transfer did not finish within the horizon";
  // Exactness: every byte delivered in order, none invented.
  EXPECT_EQ(r.flows[0].rcv_bytes, 100'000u);
  // Conservation: 100 first transmissions, and at least one retransmission
  // per loss-model drop of this flow's data.
  EXPECT_EQ(r.flows[0].stats.data_packets_sent, 100u);
  EXPECT_GE(r.flows[0].stats.retransmissions + r.flows[0].stats.timeouts,
            r.loss_model_drops > 0 ? 1u : 0u);
}

// Network-level invariants sampled while a transfer runs.
class QueueInvariants : public ::testing::TestWithParam<Variant> {};

INSTANTIATE_TEST_SUITE_P(Variants, QueueInvariants,
                         ::testing::ValuesIn(app::kExtendedVariants),
                         [](const auto& info) {
                           return app::to_string(info.param);
                         });

TEST_P(QueueInvariants, OccupancyBoundedAndFlightCapped) {
  sim::Simulator sim;
  net::DumbbellConfig netcfg;
  netcfg.n_flows = 2;
  netcfg.make_bottleneck_queue = [] {
    return std::make_unique<net::DropTailQueue>(8);
  };
  net::DumbbellTopology topo{sim, netcfg};

  tcp::TcpConfig tcfg;
  std::vector<app::Flow> flows;
  std::vector<std::unique_ptr<app::FtpSource>> srcs;
  for (int i = 0; i < 2; ++i) {
    flows.push_back(app::make_flow(GetParam(), sim, topo.sender_node(i),
                                   topo.receiver_node(i), i + 1, tcfg));
    srcs.push_back(std::make_unique<app::FtpSource>(
        sim, *flows.back().sender, sim::Time::zero(), std::nullopt));
  }

  // Sample invariants every 10 ms of simulated time.
  bool violated = false;
  std::function<void()> probe = [&] {
    if (topo.bottleneck().queue().len_packets() > 8) violated = true;
    for (auto& f : flows) {
      if (f.sender->flight_bytes() >
          tcfg.max_window_pkts * static_cast<std::uint64_t>(tcfg.mss))
        violated = true;
      if (f.sender->snd_una() > f.sender->snd_nxt()) violated = true;
    }
    if (sim.now() < sim::Time::seconds(30))
      sim.schedule_in(sim::Time::milliseconds(10), probe);
  };
  sim.schedule_at(sim::Time::zero(), probe);
  sim.run_until(sim::Time::seconds(30));
  EXPECT_FALSE(violated);
  // Both flows made progress.
  for (auto& f : flows) EXPECT_GT(f.receiver->bytes_in_order(), 100'000u);
}

TEST_P(QueueInvariants, CumulativeAckMonotone) {
  sim::Simulator sim;
  net::DumbbellConfig netcfg;
  netcfg.n_flows = 1;
  net::DumbbellTopology topo{sim, netcfg};
  auto flow = app::make_flow(GetParam(), sim, topo.sender_node(0),
                             topo.receiver_node(0), 1);

  struct Monotone : tcp::SenderObserver {
    std::uint64_t last = 0;
    bool ok = true;
    void on_ack(sim::Time, std::uint64_t ack, bool dup) override {
      if (!dup) {
        if (ack < last) ok = false;
        last = ack;
      }
    }
  } mono;
  flow.sender->add_observer(&mono);
  app::FtpSource src{sim, *flow.sender, sim::Time::zero(), std::nullopt};
  sim.run_until(sim::Time::seconds(20));
  EXPECT_TRUE(mono.ok);
}

// Two same-variant flows with equal RTTs should converge to a reasonable
// bandwidth split (AIMD fairness); RR claims to preserve this.
class Fairness : public ::testing::TestWithParam<Variant> {};

INSTANTIATE_TEST_SUITE_P(Variants, Fairness,
                         ::testing::ValuesIn(app::kAllVariants),
                         [](const auto& info) {
                           return app::to_string(info.param);
                         });

TEST_P(Fairness, TwoFlowsShareWithinFactorOfThree) {
  sim::Simulator sim;
  net::DumbbellConfig netcfg;
  netcfg.n_flows = 2;
  netcfg.make_bottleneck_queue = [] {
    return std::make_unique<net::DropTailQueue>(20);
  };
  net::DumbbellTopology topo{sim, netcfg};
  std::vector<app::Flow> flows;
  std::vector<std::unique_ptr<app::FtpSource>> srcs;
  for (int i = 0; i < 2; ++i) {
    flows.push_back(app::make_flow(GetParam(), sim, topo.sender_node(i),
                                   topo.receiver_node(i), i + 1));
    srcs.push_back(std::make_unique<app::FtpSource>(
        sim, *flows.back().sender, sim::Time::milliseconds(100) * i,
        std::nullopt));
  }
  sim.run_until(sim::Time::seconds(120));
  const double a = static_cast<double>(flows[0].receiver->bytes_in_order());
  const double b = static_cast<double>(flows[1].receiver->bytes_in_order());
  EXPECT_GT(a, 0);
  EXPECT_GT(b, 0);
  const double ratio = a > b ? a / b : b / a;
  EXPECT_LT(ratio, 3.0) << "a=" << a << " b=" << b;
  // And together they should use most of the 0.8 Mbps pipe over 120 s.
  EXPECT_GT(a + b, 0.7 * (800'000.0 / 8) * 120);
}

}  // namespace
}  // namespace rrtcp::test
