// Shared scenario runner for integration tests: one or more flows over the
// paper's dumbbell with an arbitrary loss model at the bottleneck.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "app/flow_factory.hpp"
#include "app/ftp.hpp"
#include "audit/audit.hpp"
#include "net/drop_tail.hpp"
#include "net/dumbbell.hpp"
#include "sim/simulator.hpp"
#include "stats/throughput.hpp"
#include "stats/tracer.hpp"

namespace rrtcp::test {

struct ScenarioConfig {
  app::Variant variant = app::Variant::kRr;
  int n_flows = 1;
  // Bytes per flow; nullopt = unbounded.
  std::optional<std::uint64_t> bytes = 100'000;
  sim::Time stagger = sim::Time::zero();  // start offset between flows
  sim::Time horizon = sim::Time::seconds(120);
  std::uint64_t buffer_packets = 8;  // bottleneck drop-tail buffer
  std::function<std::unique_ptr<net::LossModel>()> make_loss;        // fwd
  std::function<std::unique_ptr<net::LossModel>()> make_ack_loss;    // rev
  tcp::TcpConfig tcp;
};

struct FlowResult {
  bool complete = false;
  double completion_s = 0.0;
  std::uint64_t rcv_bytes = 0;
  tcp::SenderStats stats;
};

struct ScenarioResult {
  std::vector<FlowResult> flows;
  std::uint64_t bottleneck_drops = 0;
  std::uint64_t loss_model_drops = 0;
  double now_s = 0.0;
};

inline ScenarioResult run_scenario(const ScenarioConfig& cfg) {
  sim::Simulator sim;
  net::DumbbellConfig netcfg;
  netcfg.n_flows = cfg.n_flows;
  netcfg.make_bottleneck_queue = [&] {
    return std::make_unique<net::DropTailQueue>(cfg.buffer_packets);
  };
  net::DumbbellTopology topo{sim, netcfg};
  if (cfg.make_loss) topo.bottleneck().set_loss_model(cfg.make_loss());
  if (cfg.make_ack_loss)
    topo.reverse_bottleneck().set_loss_model(cfg.make_ack_loss());

  std::vector<app::Flow> flows;
  std::vector<std::unique_ptr<app::FtpSource>> sources;
  for (int i = 0; i < cfg.n_flows; ++i) {
    flows.push_back(app::make_flow(cfg.variant, sim, topo.sender_node(i),
                                   topo.receiver_node(i),
                                   static_cast<net::FlowId>(i + 1), cfg.tcp));
    sources.push_back(std::make_unique<app::FtpSource>(
        sim, *flows.back().sender, cfg.stagger * i, cfg.bytes));
  }

  // Build-gated protocol auditing (RRTCP_AUDIT=ON): every integration
  // scenario then runs under the full invariant set, abort-on-violation.
  audit::ScopedAudit audit{sim};
  audit.attach_topology(topo);
  for (auto& f : flows) audit.attach(*f.sender, f.receiver.get());

  sim.run_until(cfg.horizon);

  ScenarioResult out;
  out.now_s = sim.now().to_seconds();
  out.bottleneck_drops = topo.bottleneck().queue().stats().dropped;
  if (auto* lm = topo.bottleneck().loss_model()) out.loss_model_drops = lm->drops();
  for (auto& f : flows) {
    FlowResult r;
    r.complete = f.sender->complete();
    r.completion_s = f.sender->completion_time().to_seconds();
    r.rcv_bytes = f.receiver->bytes_in_order();
    r.stats = f.sender->stats();
    out.flows.push_back(r);
  }
  return out;
}

}  // namespace rrtcp::test
