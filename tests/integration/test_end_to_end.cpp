// End-to-end integration tests: every variant, over the real simulated
// dumbbell, against the loss patterns the paper cares about. The anchor
// invariant everywhere: RELIABLE IN-ORDER DELIVERY — the receiver ends with
// exactly the transferred byte count, no matter what was dropped.
#include <gtest/gtest.h>

#include "scenario.hpp"

namespace rrtcp::test {
namespace {

using app::Variant;

class AllVariants : public ::testing::TestWithParam<Variant> {};

// The full set including the related-work schemes: reliability and
// recovery invariants must hold for every sender in the library.
INSTANTIATE_TEST_SUITE_P(Variants, AllVariants,
                         ::testing::ValuesIn(app::kExtendedVariants),
                         [](const auto& info) {
                           return app::to_string(info.param);
                         });

TEST_P(AllVariants, LosslessTransferCompletes) {
  ScenarioConfig cfg;
  cfg.variant = GetParam();
  cfg.bytes = 100'000;
  cfg.buffer_packets = 100;  // no congestion drops
  auto r = run_scenario(cfg);
  ASSERT_TRUE(r.flows[0].complete);
  EXPECT_EQ(r.flows[0].rcv_bytes, 100'000u);
  EXPECT_EQ(r.flows[0].stats.retransmissions, 0u);
  EXPECT_EQ(r.flows[0].stats.timeouts, 0u);
  EXPECT_EQ(r.bottleneck_drops, 0u);
}

TEST_P(AllVariants, SingleLossRecoveredWithoutTimeout) {
  ScenarioConfig cfg;
  cfg.variant = GetParam();
  cfg.bytes = 100'000;
  cfg.buffer_packets = 100;
  cfg.make_loss = [] {
    return std::make_unique<net::ListLossModel>(
        std::vector<std::pair<net::FlowId, std::uint64_t>>{{1, 20'000}});
  };
  auto r = run_scenario(cfg);
  ASSERT_TRUE(r.flows[0].complete);
  EXPECT_EQ(r.flows[0].rcv_bytes, 100'000u);
  EXPECT_EQ(r.loss_model_drops, 1u);
  EXPECT_GE(r.flows[0].stats.retransmissions, 1u);
  // By the time packet #20 is in flight the window is ~14: plenty of dup
  // ACKs, so fast retransmit (not a timeout) must do the job.
  EXPECT_EQ(r.flows[0].stats.timeouts, 0u);
}

// Drop `burst` consecutive segments from one window (starting at packet
// number `first_pkt` of flow 1).
ScenarioConfig burst_cfg(Variant v, int first_pkt, int burst) {
  ScenarioConfig cfg;
  cfg.variant = v;
  cfg.bytes = 100'000;
  cfg.buffer_packets = 100;
  cfg.make_loss = [=] {
    std::vector<std::pair<net::FlowId, std::uint64_t>> losses;
    for (int i = 0; i < burst; ++i)
      losses.push_back({1, static_cast<std::uint64_t>(first_pkt + i) * 1000});
    return std::make_unique<net::ListLossModel>(losses);
  };
  return cfg;
}

TEST_P(AllVariants, ThreeDropBurstDeliversEverything) {
  auto r = run_scenario(burst_cfg(GetParam(), 20, 3));
  ASSERT_TRUE(r.flows[0].complete);
  EXPECT_EQ(r.flows[0].rcv_bytes, 100'000u);
  EXPECT_EQ(r.loss_model_drops, 3u);
}

TEST_P(AllVariants, SixDropBurstDeliversEverything) {
  auto r = run_scenario(burst_cfg(GetParam(), 20, 6));
  ASSERT_TRUE(r.flows[0].complete);
  EXPECT_EQ(r.flows[0].rcv_bytes, 100'000u);
  EXPECT_EQ(r.loss_model_drops, 6u);
}

TEST(BurstRecovery, RrAndSackSurviveSixDropsWithoutTimeout) {
  // The paper's headline: bursty loss within one window is recoverable
  // without losing self-clocking. New-Reno is expected to stall into an
  // RTO here; RR and SACK must not.
  for (Variant v : {Variant::kSack, Variant::kRr}) {
    auto r = run_scenario(burst_cfg(v, 20, 6));
    EXPECT_EQ(r.flows[0].stats.timeouts, 0u) << app::to_string(v);
  }
}

TEST(BurstRecovery, RrBeatsNewRenoOnHeavyBursts) {
  // The paper's comparison: at heavy in-window burst loss New-Reno's
  // one-hole-per-RTT recovery decays toward stall while RR keeps probing.
  auto rr = run_scenario(burst_cfg(Variant::kRr, 20, 6));
  auto nr = run_scenario(burst_cfg(Variant::kNewReno, 20, 6));
  ASSERT_TRUE(rr.flows[0].complete);
  ASSERT_TRUE(nr.flows[0].complete);
  EXPECT_LT(rr.flows[0].completion_s, nr.flows[0].completion_s);
}

TEST(BurstRecovery, RrCompetitiveWithNewRenoOnLightBursts) {
  // At 3 drops both recover without timeout; RR's accurate (conservative)
  // exit cwnd may cost a whisker of tail time on a short transfer, but
  // must stay within 15% of New-Reno.
  auto rr = run_scenario(burst_cfg(Variant::kRr, 20, 3));
  auto nr = run_scenario(burst_cfg(Variant::kNewReno, 20, 3));
  ASSERT_TRUE(rr.flows[0].complete);
  ASSERT_TRUE(nr.flows[0].complete);
  EXPECT_LT(rr.flows[0].completion_s, nr.flows[0].completion_s * 1.15);
}

TEST(BurstRecovery, RrRetransmitsExactlyTheLostSegments) {
  // No spurious retransmissions: k drops -> exactly k retransmissions
  // (every hole repaired once, nothing resent needlessly).
  for (int burst : {1, 3, 6}) {
    auto r = run_scenario(burst_cfg(Variant::kRr, 20, burst));
    ASSERT_TRUE(r.flows[0].complete);
    EXPECT_EQ(r.flows[0].stats.retransmissions,
              static_cast<std::uint64_t>(burst))
        << "burst=" << burst;
    EXPECT_EQ(r.flows[0].stats.timeouts, 0u) << "burst=" << burst;
  }
}

TEST(BurstRecovery, RrDetectsLossOfRecoveryPackets) {
  // Drop a burst AND one of the new packets RR sends during recovery: the
  // further-loss machinery must still deliver everything without waiting
  // for another fast retransmit.
  ScenarioConfig cfg = burst_cfg(Variant::kRr, 20, 4);
  auto base = cfg.make_loss;
  cfg.make_loss = [base] {
    auto comp = std::make_unique<net::CompositeLossModel>();
    comp->add(base());
    // Packet #40 will be fresh data sent while recovering.
    comp->add(std::make_unique<net::ListLossModel>(
        std::vector<std::pair<net::FlowId, std::uint64_t>>{{1, 40'000}}));
    return comp;
  };
  auto r = run_scenario(cfg);
  ASSERT_TRUE(r.flows[0].complete);
  EXPECT_EQ(r.flows[0].rcv_bytes, 100'000u);
}

TEST_P(AllVariants, RetransmissionLossFallsBackToTimeout) {
  ScenarioConfig cfg;
  cfg.variant = GetParam();
  cfg.bytes = 100'000;
  cfg.buffer_packets = 100;
  cfg.horizon = sim::Time::seconds(300);
  cfg.make_loss = [] {
    // The original transmission of packet #20 AND its first retransmission
    // both die.
    return std::make_unique<net::SegmentLossModel>(1, 20'000, 2);
  };
  auto r = run_scenario(cfg);
  ASSERT_TRUE(r.flows[0].complete);
  EXPECT_EQ(r.flows[0].rcv_bytes, 100'000u);
  if (GetParam() == Variant::kRr) {
    // RR's rescue retransmission (rr_sender.cpp, note 3) detects the lost
    // retransmission from the dup-ACK count and repairs it WITHOUT the
    // coarse timeout every other variant pays.
    EXPECT_EQ(r.flows[0].stats.timeouts, 0u);
  } else {
    EXPECT_GE(r.flows[0].stats.timeouts, 1u);  // rtx loss costs an RTO
  }
}

TEST_P(AllVariants, SurvivesHeavyAckLoss) {
  ScenarioConfig cfg;
  cfg.variant = GetParam();
  cfg.bytes = 50'000;
  cfg.buffer_packets = 100;
  cfg.horizon = sim::Time::seconds(600);
  cfg.make_ack_loss = [] {
    return std::make_unique<net::UniformLossModel>(0.2, 1234,
                                                   /*data_only=*/false);
  };
  auto r = run_scenario(cfg);
  ASSERT_TRUE(r.flows[0].complete);
  EXPECT_EQ(r.flows[0].rcv_bytes, 50'000u);
}

TEST_P(AllVariants, CongestionDropsFromTinyBufferStillDeliver) {
  ScenarioConfig cfg;
  cfg.variant = GetParam();
  cfg.bytes = 200'000;
  cfg.buffer_packets = 4;  // brutal: frequent overflow bursts
  cfg.horizon = sim::Time::seconds(600);
  auto r = run_scenario(cfg);
  ASSERT_TRUE(r.flows[0].complete);
  EXPECT_EQ(r.flows[0].rcv_bytes, 200'000u);
  EXPECT_GT(r.bottleneck_drops, 0u);
}

TEST_P(AllVariants, ThreeCompetingFlowsAllComplete) {
  ScenarioConfig cfg;
  cfg.variant = GetParam();
  cfg.n_flows = 3;
  cfg.bytes = 100'000;
  cfg.stagger = sim::Time::milliseconds(300);
  cfg.buffer_packets = 8;  // paper's Table 3 buffer
  cfg.horizon = sim::Time::seconds(600);
  auto r = run_scenario(cfg);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(r.flows[i].complete) << "flow " << i;
    EXPECT_EQ(r.flows[i].rcv_bytes, 100'000u);
  }
}

TEST(Determinism, IdenticalConfigsProduceIdenticalRuns) {
  auto run = [] {
    ScenarioConfig cfg;
    cfg.variant = Variant::kRr;
    cfg.n_flows = 2;
    cfg.bytes = 150'000;
    cfg.buffer_packets = 8;
    cfg.horizon = sim::Time::seconds(300);
    cfg.make_loss = [] {
      return std::make_unique<net::UniformLossModel>(0.02, 777);
    };
    return run_scenario(cfg);
  };
  auto a = run();
  auto b = run();
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].completion_s, b.flows[i].completion_s);
    EXPECT_EQ(a.flows[i].stats.data_packets_sent,
              b.flows[i].stats.data_packets_sent);
    EXPECT_EQ(a.flows[i].stats.retransmissions,
              b.flows[i].stats.retransmissions);
  }
  EXPECT_EQ(a.bottleneck_drops, b.bottleneck_drops);
}

}  // namespace
}  // namespace rrtcp::test
