// Heterogeneous-RTT scenarios: AIMD's known bias toward short-RTT flows,
// and reordering robustness — exercising the per-flow access-delay and
// reorder-injection features of the substrate.
#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "scenario.hpp"

namespace rrtcp::test {
namespace {

using app::Variant;

class RttBias : public ::testing::TestWithParam<Variant> {};

INSTANTIATE_TEST_SUITE_P(Variants, RttBias,
                         ::testing::ValuesIn(app::kAllVariants),
                         [](const auto& info) {
                           return app::to_string(info.param);
                         });

TEST_P(RttBias, ShortRttFlowGetsAtLeastItsShare) {
  // Flow 0: base RTT ~200 ms. Flow 1: +200 ms access delay (~600 ms RTT).
  // AIMD grows per-RTT, so the short-RTT flow must end up with at least
  // half the bandwidth — typically much more. Both must still progress.
  sim::Simulator sim;
  net::DumbbellConfig netcfg;
  netcfg.n_flows = 2;
  netcfg.make_bottleneck_queue = [] {
    return std::make_unique<net::DropTailQueue>(20);
  };
  netcfg.side_delay_for = [](int i) -> std::optional<sim::Time> {
    if (i == 1) return sim::Time::milliseconds(200);
    return std::nullopt;
  };
  net::DumbbellTopology topo{sim, netcfg};

  std::vector<app::Flow> flows;
  std::vector<std::unique_ptr<app::FtpSource>> srcs;
  for (int i = 0; i < 2; ++i) {
    flows.push_back(app::make_flow(GetParam(), sim, topo.sender_node(i),
                                   topo.receiver_node(i), i + 1));
    srcs.push_back(std::make_unique<app::FtpSource>(
        sim, *flows.back().sender, sim::Time::zero(), std::nullopt));
  }
  sim.run_until(sim::Time::seconds(120));

  const double fast = static_cast<double>(flows[0].receiver->bytes_in_order());
  const double slow = static_cast<double>(flows[1].receiver->bytes_in_order());
  EXPECT_GE(fast, slow) << "short-RTT flow must not lose to the long one";
  EXPECT_GT(slow, 0.05 * fast) << "long-RTT flow must not starve";
}

class ReorderRobust : public ::testing::TestWithParam<Variant> {};

INSTANTIATE_TEST_SUITE_P(Variants, ReorderRobust,
                         ::testing::ValuesIn(app::kExtendedVariants),
                         [](const auto& info) {
                           return app::to_string(info.param);
                         });

TEST_P(ReorderRobust, DeliversEverythingUnderReordering) {
  sim::Simulator sim;
  net::DumbbellConfig netcfg;
  netcfg.n_flows = 1;
  netcfg.make_bottleneck_queue = [] {
    return std::make_unique<net::DropTailQueue>(100);
  };
  net::DumbbellTopology topo{sim, netcfg};
  topo.bottleneck().set_reorder_model(std::make_unique<net::ReorderModel>(
      0.1, sim::Time::milliseconds(150), 5));

  auto flow = app::make_flow(GetParam(), sim, topo.sender_node(0),
                             topo.receiver_node(0), 1);
  app::FtpSource src{sim, *flow.sender, sim::Time::zero(), 100'000};
  sim.run_until(sim::Time::seconds(120));

  ASSERT_TRUE(flow.sender->complete());
  EXPECT_EQ(flow.receiver->bytes_in_order(), 100'000u);
  // No data was lost, so any retransmissions were spurious (reordering
  // mistaken for loss) — tolerated, but bounded.
  EXPECT_LT(flow.sender->stats().retransmissions, 40u);
  EXPECT_EQ(flow.sender->stats().timeouts, 0u);
}

TEST(RttBias, PerFlowDelayChangesPacketTiming) {
  sim::Simulator sim;
  net::DumbbellConfig netcfg;
  netcfg.n_flows = 2;
  netcfg.side_delay_for = [](int i) -> std::optional<sim::Time> {
    if (i == 1) return sim::Time::milliseconds(50);
    return std::nullopt;
  };
  net::DumbbellTopology topo{sim, netcfg};

  struct StampAgent final : net::Agent {
    sim::Simulator& sim;
    sim::Time arrived = sim::Time::zero();
    explicit StampAgent(sim::Simulator& s) : sim{s} {}
    void receive(net::Packet) override { arrived = sim.now(); }
  } a0{sim}, a1{sim};
  topo.receiver_node(0).attach_agent(10, &a0);
  topo.receiver_node(1).attach_agent(11, &a1);

  topo.sender_node(0).inject(test::make_data(10, 0, 1000,
                                             topo.sender_node(0).id(),
                                             topo.receiver_node(0).id()));
  topo.sender_node(1).inject(test::make_data(11, 0, 1000,
                                             topo.sender_node(1).id(),
                                             topo.receiver_node(1).id()));
  sim.run();
  // Flow 1's access link adds exactly 50 ms of one-way propagation.
  EXPECT_EQ(a1.arrived - a0.arrived, sim::Time::milliseconds(50));
}

}  // namespace
}  // namespace rrtcp::test
