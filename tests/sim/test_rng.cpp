#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace rrtcp::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NamedStreamsAreIndependent) {
  Rng a{7, "loss"}, b{7, "red"};
  EXPECT_NE(a.next_u64(), b.next_u64());
  // Same name, same seed: identical stream.
  Rng c{7, "loss"}, d{7, "loss"};
  for (int i = 0; i < 16; ++i) EXPECT_EQ(c.next_u64(), d.next_u64());
}

TEST(Rng, Uniform01InRange) {
  Rng r{3};
  for (int i = 0; i < 10'000; ++i) {
    const double u = r.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng r{11};
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += r.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng r{5};
  for (int i = 0; i < 10'000; ++i) {
    const auto v = r.uniform_int(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformIntSingleton) {
  Rng r{5};
  EXPECT_EQ(r.uniform_int(9, 9), 9u);
}

TEST(Rng, UniformIntCoversRange) {
  Rng r{6};
  std::vector<int> seen(4, 0);
  for (int i = 0; i < 4000; ++i) ++seen[r.uniform_int(0, 3)];
  for (int c : seen) EXPECT_GT(c, 800);  // ~1000 expected each
}

TEST(Rng, BernoulliEdges) {
  Rng r{8};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng r{9};
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i)
    if (r.bernoulli(0.02)) ++hits;
  EXPECT_NEAR(hits / static_cast<double>(n), 0.02, 0.003);
}

TEST(Rng, ExponentialMean) {
  Rng r{10};
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += r.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, HashNameStableAndDistinct) {
  EXPECT_EQ(hash_name("abc"), hash_name("abc"));
  EXPECT_NE(hash_name("abc"), hash_name("abd"));
  EXPECT_NE(hash_name(""), hash_name("a"));
}

}  // namespace
}  // namespace rrtcp::sim
