// Timer-churn differential + two-tier scheduler introspection tests.
//
// The timer-wheel tier (DESIGN.md §11) must be semantically invisible:
// RTO-style arm/cancel/re-arm storms have to execute in exactly the order
// the legacy engine and the heap-only pooled engine produce, including
// same-instant FIFO across the wheel/heap boundary. As in the scheduler
// equivalence suite, every random decision is drawn *inside* a callback so
// any ordering divergence desynchronizes the PRNG stream and cascades into
// the trace. On top of the differential, this file pins the observable
// two-tier invariants directly: pending_events() counts live events (not
// stale heap residue), far-future cancels are O(1) wheel unlinks, cancel
// storms keep the heap compacted, and a same-tick chain still fires one
// event per step().
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sim/legacy_scheduler.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace rrtcp {
namespace {

// The pooled engine with the wheel tier disabled: everything — near and
// far — goes through the 4-ary heap, isolating wheel-specific behavior in
// the three-way differential below.
class HeapOnlySimulator : public sim::Simulator {
 public:
  HeapOnlySimulator() { set_timer_wheel_enabled(false); }
};

constexpr int kSeeds = 16;
constexpr int kFlows = 12;
constexpr int kRounds = 220;

// An RTO-shaped workload: a near-time tick loop (heap territory) churns a
// set of far-future timers (wheel territory on the pooled engine). Each
// tick picks a flow and either arms, re-arms, or cancels its timer, with
// delays spanning the wheel levels; timers that survive fire long after
// the ticks stop. Pooled engines re-arm through reschedule_in (the fast
// path); the legacy engine cancels and re-schedules — the traces must be
// byte-identical anyway, which is exactly the reschedule contract.
template <typename Sim>
class ChurnWorkload {
 public:
  explicit ChurnWorkload(std::uint64_t seed) : rnd_{seed, "timer-churn"} {}

  std::string run() {
    handles_.resize(kFlows);
    sim_.schedule_in(sim::Time::microseconds(40), [this] { tick(); });
    // Split across run_until and run so the deadline-peek path sees wheel
    // flushes too, then drain the surviving far timers.
    sim_.run_until(sim::Time::milliseconds(4));
    trace_ += "|";
    sim_.run();
    char tail[64];
    std::snprintf(tail, sizeof tail, "#exec=%llu,end=%s",
                  static_cast<unsigned long long>(sim_.events_executed()),
                  sim_.now().to_string().c_str());
    trace_ += tail;
    return std::move(trace_);
  }

 private:
  using Handle = decltype(std::declval<Sim&>().schedule_in(
      std::declval<sim::Time>(), std::declval<std::function<void()>>()));

  // 100 us .. ~1.6 s in coarse steps: spans wheel levels 1-3 on the pooled
  // engine and lands plenty of same-instant collisions.
  sim::Time rto_delay() {
    return sim::Time::microseconds(100) * (1 + rnd_.uniform_int(0, 127)) *
           128;
  }

  void arm(int f) {
    const sim::Time d = rto_delay();
    if (handles_[f].pending()) {
      if constexpr (requires { sim_.reschedule_in(handles_[f], d); }) {
        handles_[f] = sim_.reschedule_in(handles_[f], d);
      } else {
        handles_[f].cancel();
        handles_[f] = sim_.schedule_in(d, [this, f] { fire(f); });
      }
      trace_ += 'r';
    } else {
      handles_[f] = sim_.schedule_in(d, [this, f] { fire(f); });
      trace_ += 'a';
    }
    trace_ += std::to_string(f) + ";";
  }

  void tick() {
    const int f = static_cast<int>(rnd_.uniform_int(0, kFlows - 1));
    if (handles_[f].pending() && rnd_.bernoulli(0.25)) {
      trace_ += handles_[f].cancel() ? "x!;" : "x-;";
    } else {
      arm(f);
    }
    if (++rounds_ < kRounds)
      sim_.schedule_in(sim::Time::microseconds(40), [this] { tick(); });
  }

  void fire(int f) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "F%d@%s;", f,
                  sim_.now().to_string().c_str());
    trace_ += buf;
    // Surviving timers sometimes re-arm from their own callback — the
    // firing-handle-is-dead re-arm path — keeping the storm going a bit.
    if (rnd_.bernoulli(0.3) && rounds_ < kRounds + kFlows) arm(f);
  }

  Sim sim_;
  sim::Rng rnd_;
  std::vector<Handle> handles_;
  std::string trace_;
  int rounds_ = 0;
};

TEST(TimerChurn, ThreeEnginesProduceIdenticalTraces) {
  for (int s = 0; s < kSeeds; ++s) {
    const auto seed = static_cast<std::uint64_t>(7000 + s);
    const std::string legacy =
        ChurnWorkload<sim::LegacySimulator>{seed}.run();
    const std::string pooled = ChurnWorkload<sim::Simulator>{seed}.run();
    const std::string heap_only =
        ChurnWorkload<HeapOnlySimulator>{seed}.run();
    EXPECT_EQ(legacy, pooled) << "seed " << seed;
    EXPECT_EQ(legacy, heap_only) << "seed " << seed;
  }
}

// Same-instant FIFO across the wheel/heap boundary: an event staged in the
// wheel long in advance must still fire before events scheduled for the
// same instant later (from close range, where they go straight to the
// heap). Insertion order is the only order.
template <typename Sim>
std::string boundary_order() {
  Sim sim;
  std::string order;
  const auto at = sim::Time::seconds(1);
  sim.schedule_at(at, [&] { order += 'a'; });  // far: wheel on pooled
  sim.schedule_at(at - sim::Time::nanoseconds(1), [&] {
    // Fires after the wheel has flushed instant `at` into the heap; these
    // same-instant latecomers must still run behind 'a'.
    sim.schedule_at(at, [&] { order += 'b'; });
    sim.schedule_at(at, [&] { order += 'c'; });
  });
  sim.run();
  return order;
}

TEST(TimerChurn, SameInstantFifoAcrossWheelHeapBoundary) {
  EXPECT_EQ(boundary_order<sim::LegacySimulator>(), "abc");
  EXPECT_EQ(boundary_order<sim::Simulator>(), "abc");
  EXPECT_EQ(boundary_order<HeapOnlySimulator>(), "abc");
}

// The nastiest same-instant ordering on the pooled engine: three events at
// one instant T arrive by three different routes — L staged far (coarse
// wheel level), M direct-inserted into the fine level while L still sits
// at the coarse level, H direct-inserted after L has cascaded down. The
// flush then walks the bucket in list order [M, L, H], i.e. NON-monotone
// seq order — and must still fire in seq (= insertion) order. A flush that
// tracked only one open run would re-open at L's low key and batch H
// behind it, firing H before M.
template <typename Sim>
std::string cascade_interleave_order() {
  Sim sim;
  std::string order;
  constexpr std::int64_t g0 = std::int64_t{1} << 26;  // level-0 granule, ps
  const auto instant = sim::Time::picoseconds(100 * g0);
  sim.schedule_at(instant, [&] { order += 'L'; });  // coarse-level staging
  // A filler the wheel flushes mid-way: advances the wheel horizon so the
  // NEXT same-instant schedule is within the fine level's span.
  sim.schedule_at(sim::Time::picoseconds(50 * g0), [&] { order += '.'; });
  sim.run_until(sim::Time::picoseconds(55 * g0));
  sim.schedule_at(instant, [&] { order += 'M'; });  // direct, before cascade
  sim.schedule_at(sim::Time::picoseconds(65 * g0), [&] {
    // Fires after L has cascaded to the fine level (the 64*g0 boundary).
    sim.schedule_at(instant, [&] { order += 'H'; });
  });
  sim.run();
  return order;
}

TEST(TimerChurn, CascadeInterleavedSameInstantStaysInInsertionOrder) {
  EXPECT_EQ(cascade_interleave_order<sim::LegacySimulator>(), ".LMH");
  EXPECT_EQ(cascade_interleave_order<sim::Simulator>(), ".LMH");
  EXPECT_EQ(cascade_interleave_order<HeapOnlySimulator>(), ".LMH");
}

// pending_events() counts live events — schedules minus cancels minus
// fires — regardless of which tier holds them or how much stale residue
// the lazy-cancellation heap carries.
TEST(TimerChurn, PendingEventsTracksLiveCount) {
  sim::Simulator sim;
  EXPECT_EQ(sim.pending_events(), 0u);
  std::vector<sim::EventHandle> hs;
  for (int i = 0; i < 100; ++i) {
    // Alternate near (heap) and far (wheel) so both tiers are counted.
    const auto d = i % 2 == 0 ? sim::Time::microseconds(i)
                              : sim::Time::milliseconds(200 + i);
    hs.push_back(sim.schedule_in(d, [] {}));
  }
  EXPECT_EQ(sim.pending_events(), 100u);
  for (int i = 0; i < 30; ++i) EXPECT_TRUE(hs[i * 3].cancel());
  EXPECT_EQ(sim.pending_events(), 70u);
  std::size_t fired = 0;
  while (sim.step()) {
    ++fired;
    EXPECT_EQ(sim.pending_events(), 70u - fired);
  }
  EXPECT_EQ(fired, 70u);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.events_executed(), 70u);
}

// Cancelling a wheel-resident event is an O(1) unlink: it leaves no stale
// heap entry behind (the lazy-cancellation path is heap-only).
TEST(TimerChurn, FarFutureCancelUnlinksFromWheelWithNoStaleResidue) {
  sim::Simulator sim;
  auto h = sim.schedule_in(sim::Time::seconds(2), [] {});
  ASSERT_TRUE(sim.timer_wheel_enabled());
  EXPECT_EQ(sim.wheel_events(), 1u);
  EXPECT_EQ(sim.heap_entries(), 0u);
  EXPECT_TRUE(h.cancel());
  EXPECT_EQ(sim.wheel_events(), 0u);
  EXPECT_EQ(sim.heap_entries(), 0u);
  EXPECT_EQ(sim.stale_heap_entries(), 0u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

// A cancel storm over heap-resident events must not leave the heap full of
// corpses: compaction keeps the physical heap bounded by the stale
// majority threshold, and settling drains the rest without executing
// anything.
TEST(TimerChurn, CancelStormKeepsHeapCompacted) {
  sim::Simulator sim;
  std::vector<sim::EventHandle> hs;
  constexpr int kN = 8192;
  hs.reserve(kN);
  // Distinct sub-wheel-granule instants: all heap, no same-tick chains.
  for (int i = 0; i < kN; ++i)
    hs.push_back(sim.schedule_in(sim::Time::nanoseconds(i * 8), [] {}));
  EXPECT_EQ(sim.heap_entries(), static_cast<std::size_t>(kN));
  for (auto& h : hs) EXPECT_TRUE(h.cancel());
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_LT(sim.heap_entries(), static_cast<std::size_t>(kN) / 4)
      << "compaction never reclaimed the cancelled majority";
  sim.run();
  EXPECT_EQ(sim.events_executed(), 0u);
  EXPECT_EQ(sim.heap_entries(), 0u);
  EXPECT_EQ(sim.stale_heap_entries(), 0u);
}

// A burst staged at one far-future instant collapses into a same-tick
// chain behind a single heap entry — but step() still fires exactly one
// event at a time, in insertion order.
TEST(TimerChurn, ChainedBurstFiresOneEventPerStep) {
  sim::Simulator sim;
  const auto at = sim::Time::seconds(1);
  std::string order;
  for (char c : {'a', 'b', 'c', 'd', 'e'})
    sim.schedule_at(at, [&order, c] { order += c; });
  EXPECT_EQ(sim.pending_events(), 5u);
  sim.run_until(at - sim::Time::nanoseconds(1));
  for (int i = 1; i <= 5; ++i) {
    EXPECT_TRUE(sim.step());
    EXPECT_EQ(order.size(), static_cast<std::size_t>(i));
    EXPECT_EQ(sim.pending_events(), static_cast<std::size_t>(5 - i));
    EXPECT_EQ(sim.now(), at);
  }
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(order, "abcde");
}

// reschedule_at is semantically cancel + schedule: the event moves behind
// everything already queued for the destination instant, the old handle
// dies, and the new one fires exactly once.
TEST(TimerChurn, RescheduleMatchesCancelPlusScheduleSemantics) {
  sim::Simulator sim;
  std::string order;
  const auto at = sim::Time::microseconds(10);
  auto x = sim.schedule_at(at, [&] { order += 'x'; });
  sim.schedule_at(at, [&] { order += 'y'; });
  auto x2 = sim.reschedule_at(x, at);  // same instant: moves x behind y
  EXPECT_FALSE(x.pending());
  EXPECT_FALSE(x.cancel());
  EXPECT_TRUE(x2.pending());
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.run();
  EXPECT_EQ(order, "yx");
  EXPECT_FALSE(x2.pending());
}

// Rescheduling moves events across the tiers in both directions: a
// wheel-staged timer pulled to a near instant, and a near event pushed
// far. Both fire exactly once, at the final time.
TEST(TimerChurn, RescheduleCrossesWheelHeapBoundaryBothWays) {
  sim::Simulator sim;
  std::vector<sim::Time> fired;
  auto far = sim.schedule_in(sim::Time::seconds(5),
                             [&] { fired.push_back(sim.now()); });
  EXPECT_EQ(sim.wheel_events(), 1u);
  far = sim.reschedule_in(far, sim::Time::microseconds(3));  // wheel -> heap
  EXPECT_EQ(sim.wheel_events(), 0u);
  auto near = sim.schedule_in(sim::Time::microseconds(7),
                              [&] { fired.push_back(sim.now()); });
  near = sim.reschedule_in(near, sim::Time::seconds(1));  // heap -> wheel
  EXPECT_EQ(sim.wheel_events(), 1u);
  sim.run();
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], sim::Time::microseconds(3));
  EXPECT_EQ(fired[1], sim::Time::seconds(1));
  EXPECT_EQ(sim.events_executed(), 2u);
}

}  // namespace
}  // namespace rrtcp
