// Old-vs-new scheduler equivalence.
//
// The pooled 4-ary heap engine (sim/simulator.hpp) must execute events in
// exactly the order the pre-pool engine (sim/legacy_scheduler.hpp) did:
// ascending time, FIFO among events scheduled for the same instant, with
// identical cancellation semantics. This file drives both engines through
// the same randomized schedule/cancel/re-entrancy workloads — every random
// decision is drawn *inside* an event callback, so the PRNG stream itself
// verifies ordering: any divergence in execution order desynchronizes the
// stream and cascades into the trace — and asserts byte-identical traces
// for 32 seeds, emitted through the same ResultSink CSV path the sweep
// harness uses.
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "harness/result_sink.hpp"
#include "sim/legacy_scheduler.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace rrtcp {
namespace {

constexpr int kSeeds = 32;
constexpr int kMaxEventsPerSeed = 400;

// Drives one engine through the seed's workload. Each fired event appends
// "<id>@<ns>" to the trace, schedules 0–2 children at coarse delays (the
// coarse grid forces plenty of same-instant ties, exercising the FIFO
// rule), and sometimes cancels a uniformly chosen earlier handle (which
// may already have fired — both engines must agree on the outcome, which
// the trace records).
template <typename Sim>
class Workload {
 public:
  explicit Workload(std::uint64_t seed) : rnd_{seed, "sched-equiv"} {}

  std::string run() {
    for (int i = 0; i < 8; ++i) schedule_one();
    // Split the run across run_until and run so the deadline-peek path is
    // part of the contract, not just step().
    sim_.run_until(sim::Time::microseconds(50));
    trace_ += "|";
    sim_.run();
    char tail[64];
    std::snprintf(tail, sizeof tail, "#exec=%llu,end=%s",
                  static_cast<unsigned long long>(sim_.events_executed()),
                  sim_.now().to_string().c_str());
    trace_ += tail;
    return std::move(trace_);
  }

 private:
  using Handle = decltype(std::declval<Sim&>().schedule_in(
      std::declval<sim::Time>(), std::declval<std::function<void()>>()));

  void schedule_one() {
    if (next_id_ >= kMaxEventsPerSeed) return;
    const int id = next_id_++;
    // 0–40 us in 10 us steps: ~5 distinct instants per generation.
    const auto delay =
        sim::Time::microseconds(rnd_.uniform_int(0, 4) * 10);
    handles_.push_back(sim_.schedule_in(delay, [this, id] { fire(id); }));
  }

  void fire(int id) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%d@%s;", id,
                  sim_.now().to_string().c_str());
    trace_ += buf;
    const auto kids = rnd_.uniform_int(0, 2);
    for (std::uint64_t k = 0; k < kids; ++k) schedule_one();
    if (!handles_.empty() && rnd_.bernoulli(0.3)) {
      const auto victim = rnd_.uniform_int(0, handles_.size() - 1);
      trace_ += handles_[victim].cancel() ? "c!;" : "c-;";
    }
  }

  Sim sim_;
  sim::Rng rnd_;
  std::vector<Handle> handles_;
  std::string trace_;
  int next_id_ = 0;
};

harness::Record record_for(std::uint64_t seed, std::string trace) {
  harness::Record r;
  r.set("seed", seed);
  r.set("trace", std::move(trace));
  return r;
}

TEST(SchedulerEquivalence, IdenticalTracesAndCsvFor32Seeds) {
  harness::ResultSink legacy_sink{kSeeds};
  harness::ResultSink pooled_sink{kSeeds};
  for (int s = 0; s < kSeeds; ++s) {
    const auto seed = static_cast<std::uint64_t>(1000 + s);
    const std::string legacy = Workload<sim::LegacySimulator>{seed}.run();
    const std::string pooled = Workload<sim::Simulator>{seed}.run();
    EXPECT_EQ(legacy, pooled) << "seed " << seed;
    legacy_sink.submit(static_cast<std::size_t>(s),
                       record_for(seed, legacy), 0.0);
    pooled_sink.submit(static_cast<std::size_t>(s),
                       record_for(seed, pooled), 0.0);
  }
  // The sweep-level guarantee: the emitted CSVs are byte-identical.
  EXPECT_EQ(legacy_sink.to_csv(), pooled_sink.to_csv());
}

// The FIFO tie-break rule, pinned directly: events scheduled for the same
// instant — including from inside a callback at the current time — fire in
// insertion order on both engines.
template <typename Sim>
std::string same_instant_order() {
  Sim sim;
  std::string order;
  const auto at = sim::Time::milliseconds(5);
  sim.schedule_at(at, [&] { order += 'a'; });
  sim.schedule_at(at, [&] {
    order += 'b';
    // Re-entrant: scheduled *at the current instant* while firing; must
    // run after everything already queued for that instant.
    sim.schedule_at(at, [&] { order += 'e'; });
  });
  sim.schedule_at(at, [&] { order += 'c'; });
  sim.schedule_at(at, [&] { order += 'd'; });
  sim.run();
  return order;
}

TEST(SchedulerEquivalence, SameInstantFifoIncludingReentrant) {
  EXPECT_EQ(same_instant_order<sim::LegacySimulator>(), "abcde");
  EXPECT_EQ(same_instant_order<sim::Simulator>(), "abcde");
}

// Cancellation semantics: cancelling a pending event returns true exactly
// once, a fired event cannot be cancelled, and a self-cancel from inside
// the firing callback is a no-op — on both engines.
template <typename Sim>
std::string cancel_semantics() {
  Sim sim;
  std::string log;
  auto doomed = sim.schedule_in(sim::Time::milliseconds(2),
                                [&] { log += "DOOMED;"; });
  decltype(doomed) self{};
  self = sim.schedule_in(sim::Time::milliseconds(3), [&] {
    log += self.cancel() ? "self!;" : "self-;";
  });
  sim.schedule_in(sim::Time::milliseconds(1), [&] {
    log += doomed.cancel() ? "c1!;" : "c1-;";
    log += doomed.cancel() ? "c2!;" : "c2-;";
  });
  sim.run();
  log += doomed.pending() ? "pend" : "done";
  return log;
}

TEST(SchedulerEquivalence, CancelSemanticsMatch) {
  const std::string legacy = cancel_semantics<sim::LegacySimulator>();
  const std::string pooled = cancel_semantics<sim::Simulator>();
  EXPECT_EQ(legacy, pooled);
  EXPECT_EQ(legacy, "c1!;c2-;self-;done");
}

}  // namespace
}  // namespace rrtcp
