#include "sim/timer.hpp"

#include <gtest/gtest.h>

namespace rrtcp::sim {
namespace {

TEST(Timer, FiresOnceAfterDelay) {
  Simulator sim;
  int fires = 0;
  Timer t{sim, [&] { ++fires; }};
  t.schedule(Time::seconds(2));
  EXPECT_TRUE(t.pending());
  EXPECT_EQ(t.expiry(), Time::seconds(2));
  sim.run();
  EXPECT_EQ(fires, 1);
  EXPECT_FALSE(t.pending());
}

TEST(Timer, RescheduleReplacesPendingExpiry) {
  Simulator sim;
  Time fired_at = Time::zero();
  Timer t{sim, [&] { fired_at = sim.now(); }};
  t.schedule(Time::seconds(1));
  t.schedule(Time::seconds(5));  // supersedes the first
  sim.run();
  EXPECT_EQ(fired_at, Time::seconds(5));
}

TEST(Timer, CancelPreventsFire) {
  Simulator sim;
  int fires = 0;
  Timer t{sim, [&] { ++fires; }};
  t.schedule(Time::seconds(1));
  t.cancel();
  sim.run();
  EXPECT_EQ(fires, 0);
}

TEST(Timer, CallbackMayRearm) {
  Simulator sim;
  int fires = 0;
  Timer t{sim, [&] {
            if (++fires < 3) t.schedule(Time::seconds(1));
          }};
  t.schedule(Time::seconds(1));
  sim.run();
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(sim.now(), Time::seconds(3));
}

TEST(Timer, DestructionCancelsCleanly) {
  Simulator sim;
  int fires = 0;
  {
    Timer t{sim, [&] { ++fires; }};
    t.schedule(Time::seconds(1));
  }  // destroyed while pending
  sim.run();
  EXPECT_EQ(fires, 0);
}

TEST(Timer, ReuseAfterFire) {
  Simulator sim;
  int fires = 0;
  Timer t{sim, [&] { ++fires; }};
  t.schedule(Time::seconds(1));
  sim.run();
  t.schedule(Time::seconds(1));
  sim.run();
  EXPECT_EQ(fires, 2);
}

}  // namespace
}  // namespace rrtcp::sim
