#include "sim/timer.hpp"

#include <gtest/gtest.h>

namespace rrtcp::sim {
namespace {

TEST(Timer, FiresOnceAfterDelay) {
  Simulator sim;
  int fires = 0;
  Timer t{sim, [&] { ++fires; }};
  t.schedule(Time::seconds(2));
  EXPECT_TRUE(t.pending());
  EXPECT_EQ(t.expiry(), Time::seconds(2));
  sim.run();
  EXPECT_EQ(fires, 1);
  EXPECT_FALSE(t.pending());
}

TEST(Timer, RescheduleReplacesPendingExpiry) {
  Simulator sim;
  Time fired_at = Time::zero();
  Timer t{sim, [&] { fired_at = sim.now(); }};
  t.schedule(Time::seconds(1));
  t.schedule(Time::seconds(5));  // supersedes the first
  sim.run();
  EXPECT_EQ(fired_at, Time::seconds(5));
}

TEST(Timer, CancelPreventsFire) {
  Simulator sim;
  int fires = 0;
  Timer t{sim, [&] { ++fires; }};
  t.schedule(Time::seconds(1));
  t.cancel();
  sim.run();
  EXPECT_EQ(fires, 0);
}

TEST(Timer, CallbackMayRearm) {
  Simulator sim;
  int fires = 0;
  Timer t{sim, [&] {
            if (++fires < 3) t.schedule(Time::seconds(1));
          }};
  t.schedule(Time::seconds(1));
  sim.run();
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(sim.now(), Time::seconds(3));
}

TEST(Timer, DestructionCancelsCleanly) {
  Simulator sim;
  int fires = 0;
  {
    Timer t{sim, [&] { ++fires; }};
    t.schedule(Time::seconds(1));
  }  // destroyed while pending
  sim.run();
  EXPECT_EQ(fires, 0);
}

TEST(Timer, ReuseAfterFire) {
  Simulator sim;
  int fires = 0;
  Timer t{sim, [&] { ++fires; }};
  t.schedule(Time::seconds(1));
  sim.run();
  t.schedule(Time::seconds(1));
  sim.run();
  EXPECT_EQ(fires, 2);
}

// The RTO shape: re-armed on every "transmission", it must fire exactly
// once, at the expiry of the LAST schedule() — and the re-arm fast path
// (reschedule, keeping the pooled slot) must not leak live events.
TEST(Timer, ManyRearmsFireOnceAtTheLastExpiry) {
  Simulator sim;
  Time fired_at = Time::zero();
  int fires = 0;
  Timer t{sim, [&] {
            ++fires;
            fired_at = sim.now();
          }};
  for (int i = 1; i <= 100; ++i) {
    t.schedule(Time::milliseconds(100 + i));
    EXPECT_TRUE(t.pending());
    EXPECT_EQ(t.expiry(), Time::milliseconds(100 + i));
  }
  EXPECT_EQ(sim.pending_events(), 1u);  // re-arms moved, never duplicated
  sim.run();
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(fired_at, Time::milliseconds(200));
  EXPECT_FALSE(t.pending());
}

// A fired timer's handle is consumed: its cancel is a no-op (the invariant
// Timer::schedule() asserts before taking the fresh-schedule path), and
// re-arming from that state works — including from inside the callback at
// the instant of firing.
TEST(Timer, FiredHandleCancelIsANoOpAndRearmWorks) {
  Simulator sim;
  int fires = 0;
  Timer t{sim, [&] { ++fires; }};
  t.schedule(Time::seconds(1));
  sim.run();
  EXPECT_FALSE(t.pending());
  t.cancel();  // consumed handle: must be a harmless no-op
  EXPECT_FALSE(t.pending());
  t.schedule(Time::seconds(1));
  EXPECT_TRUE(t.pending());
  sim.run();
  EXPECT_EQ(fires, 2);
}

}  // namespace
}  // namespace rrtcp::sim
