#include "sim/time.hpp"

#include <gtest/gtest.h>

namespace rrtcp::sim {
namespace {

TEST(Time, NamedConstructorsAgree) {
  EXPECT_EQ(Time::seconds(1.0), Time::milliseconds(1000));
  EXPECT_EQ(Time::milliseconds(1), Time::microseconds(1000));
  EXPECT_EQ(Time::microseconds(1), Time::nanoseconds(1000));
  EXPECT_EQ(Time::nanoseconds(1), Time::picoseconds(1000));
}

TEST(Time, DefaultIsZero) {
  Time t;
  EXPECT_EQ(t, Time::zero());
  EXPECT_EQ(t.ps(), 0);
}

TEST(Time, SecondsRoundTrip) {
  EXPECT_DOUBLE_EQ(Time::seconds(0.123456789).to_seconds(), 0.123456789);
  EXPECT_DOUBLE_EQ(Time::seconds(100.0).to_seconds(), 100.0);
}

TEST(Time, Arithmetic) {
  const Time a = Time::milliseconds(300);
  const Time b = Time::milliseconds(200);
  EXPECT_EQ(a + b, Time::milliseconds(500));
  EXPECT_EQ(a - b, Time::milliseconds(100));
  EXPECT_EQ(a * 3, Time::milliseconds(900));
  EXPECT_EQ(a / 3, Time::milliseconds(100));
  EXPECT_EQ(a / b, 1);  // integer ratio
}

TEST(Time, CompoundAssignment) {
  Time t = Time::seconds(1);
  t += Time::seconds(2);
  EXPECT_EQ(t, Time::seconds(3));
  t -= Time::seconds(1);
  EXPECT_EQ(t, Time::seconds(2));
}

TEST(Time, Ordering) {
  EXPECT_LT(Time::milliseconds(1), Time::milliseconds(2));
  EXPECT_LE(Time::zero(), Time::zero());
  EXPECT_GT(Time::seconds(1), Time::milliseconds(999));
  EXPECT_LT(Time::seconds(1e6), Time::infinity());
}

TEST(Time, TransmissionTime) {
  // 1000 bytes at 0.8 Mbps = 8000 bits / 800000 bps = 10 ms exactly.
  EXPECT_EQ(Time::transmission(1000, 800'000), Time::milliseconds(10));
  // 40 bytes at 10 Mbps = 320 / 1e7 s = 32 us.
  EXPECT_EQ(Time::transmission(40, 10'000'000), Time::microseconds(32));
  // Non-divisible case is exact in picoseconds: 1 byte at 3 bps.
  EXPECT_EQ(Time::transmission(1, 3).ps(), 8'000'000'000'000 / 3);
}

TEST(Time, TransmissionAtHighRateIsExact) {
  // 40-byte ACK on 10 Gbps: 32 ns — representable without rounding.
  EXPECT_EQ(Time::transmission(40, 10'000'000'000LL),
            Time::nanoseconds(32));
}

TEST(Time, InfinityIsSticky) {
  EXPECT_TRUE(Time::infinity().is_infinite());
  EXPECT_FALSE(Time::seconds(1).is_infinite());
}

TEST(Time, ToString) {
  EXPECT_EQ(Time::seconds(1.5).to_string(), "1.500000000s");
  EXPECT_EQ(Time::infinity().to_string(), "+inf");
}

}  // namespace
}  // namespace rrtcp::sim
