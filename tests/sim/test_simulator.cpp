#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rrtcp::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), Time::zero());
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(Time::seconds(3), [&] { order.push_back(3); });
  sim.schedule_at(Time::seconds(1), [&] { order.push_back(1); });
  sim.schedule_at(Time::seconds(2), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), Time::seconds(3));
}

TEST(Simulator, FifoTieBreakAtSameInstant) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    sim.schedule_at(Time::seconds(1), [&order, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  Time fired = Time::zero();
  sim.schedule_at(Time::seconds(5), [&] {
    sim.schedule_in(Time::seconds(2), [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, Time::seconds(7));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int count = 0;
  // A self-rescheduling event every second, forever.
  std::function<void()> tick = [&] {
    ++count;
    sim.schedule_in(Time::seconds(1), tick);
  };
  sim.schedule_at(Time::seconds(1), tick);
  sim.run_until(Time::seconds(10));
  EXPECT_EQ(count, 10);            // events at 1..10 inclusive
  EXPECT_EQ(sim.now(), Time::seconds(10));
  sim.run_until(Time::seconds(12));
  EXPECT_EQ(count, 12);
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator sim;
  sim.run_until(Time::seconds(42));
  EXPECT_EQ(sim.now(), Time::seconds(42));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  EventHandle h = sim.schedule_at(Time::seconds(1), [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  EXPECT_TRUE(h.cancel());
  EXPECT_FALSE(h.pending());
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelTwiceIsNoop) {
  Simulator sim;
  EventHandle h = sim.schedule_at(Time::seconds(1), [] {});
  EXPECT_TRUE(h.cancel());
  EXPECT_FALSE(h.cancel());
}

TEST(Simulator, HandleNotPendingAfterFire) {
  Simulator sim;
  EventHandle h = sim.schedule_at(Time::seconds(1), [] {});
  sim.run();
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(h.cancel());
}

TEST(Simulator, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  EXPECT_FALSE(h.cancel());
}

TEST(Simulator, StopHaltsRun) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 100; ++i)
    sim.schedule_at(Time::seconds(i), [&] {
      if (++count == 5) sim.stop();
    });
  sim.run();
  EXPECT_EQ(count, 5);
  // Remaining events still pending; a fresh run() resumes.
  sim.run();
  EXPECT_EQ(count, 100);
}

TEST(Simulator, RunUntilStoppedLeavesClockAtStoppingEvent) {
  Simulator sim;
  sim.schedule_at(Time::seconds(3), [&] { sim.stop(); });
  sim.schedule_at(Time::seconds(7), [] {});
  sim.run_until(Time::seconds(10));
  // A stopped run must NOT jump ahead to the deadline: the stop happened
  // at t=3 and the caller may want to resume from exactly there.
  EXPECT_EQ(sim.now(), Time::seconds(3));
  // Resuming picks up the remaining event and then advances to deadline.
  sim.run_until(Time::seconds(10));
  EXPECT_EQ(sim.now(), Time::seconds(10));
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 50) sim.schedule_in(Time::milliseconds(1), recurse);
  };
  sim.schedule_at(Time::zero(), recurse);
  sim.run();
  EXPECT_EQ(depth, 50);
}

TEST(Simulator, StepExecutesExactlyOne) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(Time::seconds(1), [&] { ++count; });
  sim.schedule_at(Time::seconds(2), [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_in(Time::seconds(i + 1), [] {});
  EXPECT_EQ(sim.run(), 7u);
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(SimulatorDeath, SchedulingInThePastAborts) {
  Simulator sim;
  sim.schedule_at(Time::seconds(5), [] {});
  sim.run();
  EXPECT_DEATH(sim.schedule_at(Time::seconds(1), [] {}), "past");
}

}  // namespace
}  // namespace rrtcp::sim
