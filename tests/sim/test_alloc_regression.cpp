// Allocation-count regression tests for the pooled hot path.
//
// This binary overrides global operator new/delete with a counting
// wrapper (which is why it is its own test binary — the override is
// program-wide) and asserts the PR's core perf claim as a testable
// invariant: once the event pool, heap array, and packet rings are warm,
// forwarding a packet — scheduler event, link transmit/deliver, queue
// enqueue/dequeue — performs ZERO heap allocations. If a future change
// reintroduces a per-event or per-packet allocation, these tests fail
// with the alloc count rather than a silent throughput regression.
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>

#include <gtest/gtest.h>

#include "net/drop_tail.hpp"
#include "net/link.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "net/red.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "topo/graph.hpp"

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  std::abort();
}
void* operator new[](std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  std::abort();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace rrtcp {
namespace {

net::Packet make_test_packet(std::uint32_t bytes) {
  net::Packet p;
  p.flow = 1;
  p.src = 0;
  p.dst = 1;
  p.size_bytes = bytes;
  return p;
}

// A forwarding-shaped event chain: each callback captures a full Packet
// (the largest hot-path capture) and reschedules itself, exactly like a
// link delivery handing off to the next hop.
TEST(AllocRegression, SchedulerSteadyStateIsAllocationFree) {
  sim::Simulator sim;
  struct Chain {
    sim::Simulator* sim;
    std::uint64_t remaining = 0;
    void hop(net::Packet pkt) {
      if (remaining == 0) return;
      --remaining;
      auto next = [this, pkt]() mutable { hop(pkt); };
      static_assert(sim::Simulator::fits_inline<decltype(next)>());
      sim->schedule_in(sim::Time::microseconds(10), std::move(next));
    }
  };
  Chain chain{&sim};

  // Warm-up: grow the pool chunk, the heap vector, and the free list.
  chain.remaining = 2048;
  chain.hop(make_test_packet(1000));
  sim.run();

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  constexpr std::uint64_t kEvents = 100'000;
  chain.remaining = kEvents;
  chain.hop(make_test_packet(1000));
  sim.run();
  const std::uint64_t delta =
      g_allocs.load(std::memory_order_relaxed) - before;

  EXPECT_EQ(delta, 0u) << "allocations per event: "
                       << static_cast<double>(delta) / kEvents;
  EXPECT_EQ(sim.callback_heap_fallbacks(), 0u);
}

// End-to-end forwarding: Node -> Link (DropTail queue, tx + prop delay)
// -> Node -> sink Agent. After one warm pass, every forwarded packet must
// cost zero allocations.
TEST(AllocRegression, LinkForwardingSteadyStateIsAllocationFree) {
  sim::Simulator sim;
  struct Sink final : net::Agent {
    std::uint64_t received = 0;
    void receive(net::Packet) override { ++received; }
  };
  net::LinkConfig lcfg;
  lcfg.bandwidth_bps = 100'000'000;
  lcfg.prop_delay = sim::Time::microseconds(100);
  net::Link link{sim, lcfg, std::make_unique<net::DropTailQueue>(64)};
  net::Node dst{1};
  Sink sink;
  dst.attach_agent(1, &sink);
  link.set_dst(&dst);

  auto pump = [&](std::uint64_t packets) {
    for (std::uint64_t i = 0; i < packets; ++i) {
      link.send(make_test_packet(1000));
      if (i % 32 == 31) sim.run();  // drain in bursts to exercise queueing
    }
    sim.run();
  };

  pump(256);  // warm: pool chunk, heap vector, packet ring

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  constexpr std::uint64_t kPackets = 10'000;
  pump(kPackets);
  const std::uint64_t delta =
      g_allocs.load(std::memory_order_relaxed) - before;

  EXPECT_EQ(delta, 0u) << "allocations per packet: "
                       << static_cast<double>(delta) / kPackets;
  EXPECT_EQ(sink.received, 256u + kPackets);
  EXPECT_EQ(sim.callback_heap_fallbacks(), 0u);
}

// Multi-hop forwarding through a TopologyGraph: BFS route tables resolve
// to the same per-node table lookups the dumbbell used, so a packet
// crossing a graph-routed chain (host -> router -> router -> host) must
// cost zero allocations once warm — the DESIGN.md §11 guarantee holds for
// arbitrary graphs, not just the hand-built dumbbell.
TEST(AllocRegression, GraphRoutingSteadyStateIsAllocationFree) {
  sim::Simulator sim;
  topo::GraphSpec g;
  const int a = g.add_node("A");
  const int r1 = g.add_node("R1");
  const int r2 = g.add_node("R2");
  const int b = g.add_node("B");
  g.add_duplex(a, r1, 100'000'000, sim::Time::microseconds(50), 64);
  g.add_duplex(r1, r2, 100'000'000, sim::Time::microseconds(50), 64);
  g.add_duplex(r2, b, 100'000'000, sim::Time::microseconds(50), 64);
  topo::TopologyGraph topo{sim, g};

  struct Sink final : net::Agent {
    std::uint64_t received = 0;
    void receive(net::Packet) override { ++received; }
  };
  Sink sink;
  topo.node(b).attach_agent(1, &sink);

  auto pump = [&](std::uint64_t packets) {
    for (std::uint64_t i = 0; i < packets; ++i) {
      net::Packet p = make_test_packet(1000);
      p.dst = static_cast<net::NodeId>(b);
      topo.node(a).inject(std::move(p));
      if (i % 32 == 31) sim.run();
    }
    sim.run();
  };

  pump(256);  // warm: pool chunk, heap vector, the three hop rings

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  constexpr std::uint64_t kPackets = 10'000;
  pump(kPackets);
  const std::uint64_t delta =
      g_allocs.load(std::memory_order_relaxed) - before;

  EXPECT_EQ(delta, 0u) << "allocations per packet: "
                       << static_cast<double>(delta) / kPackets;
  EXPECT_EQ(sink.received, 256u + kPackets);
  EXPECT_EQ(sim.callback_heap_fallbacks(), 0u);
}

// RTO-style timer churn: arm, re-arm (the reschedule fast path, which
// keeps the pooled slot and its stored capture), and cancel across
// far-future delays that live in the timer wheel. Once the pool is warm,
// none of it may allocate — this is the per-transmission cost of every
// TCP sender in the simulation.
TEST(AllocRegression, TimerChurnSteadyStateIsAllocationFree) {
  sim::Simulator sim;
  constexpr int kFlows = 64;
  sim::EventHandle handles[kFlows];
  std::uint64_t fired = 0;

  auto churn = [&](std::uint64_t rounds) {
    for (std::uint64_t r = 0; r < rounds; ++r) {
      for (int f = 0; f < kFlows; ++f) {
        const auto rto = sim::Time::seconds(1) +
                         sim::Time::microseconds((f * 31 + r * 7) % 997);
        if (handles[f].pending()) {
          handles[f] = sim.reschedule_in(handles[f], rto);
        } else {
          auto cb = [&fired] { ++fired; };
          static_assert(sim::Simulator::fits_inline<decltype(cb)>());
          handles[f] = sim.schedule_in(rto, cb);
        }
        if ((f + r) % 5 == 0) handles[f].cancel();
      }
      sim.run_until(sim.now() + sim::Time::milliseconds(1));
    }
    sim.run();
  };

  churn(64);  // warm: pool chunk, heap vector, chain table

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  constexpr std::uint64_t kRounds = 2'000;
  churn(kRounds);
  const std::uint64_t delta =
      g_allocs.load(std::memory_order_relaxed) - before;

  EXPECT_EQ(delta, 0u) << "allocations per re-arm round: "
                       << static_cast<double>(delta) / kRounds;
  EXPECT_GT(fired, 0u);
  EXPECT_EQ(sim.callback_heap_fallbacks(), 0u);
}

// The packet rings behind both queue disciplines never allocate once
// their buffers have grown to the working set.
TEST(AllocRegression, QueueRingsSteadyStateAreAllocationFree) {
  sim::Simulator sim;
  net::DropTailQueue dt{64};
  net::RedConfig rc;
  rc.buffer_packets = 64;
  rc.max_th = 48;
  net::RedQueue red{sim, rc};

  auto cycle = [](net::QueueDisc& q, std::uint64_t rounds) {
    for (std::uint64_t i = 0; i < rounds; ++i) {
      for (int b = 0; b < 32; ++b) q.enqueue(make_test_packet(1000));
      while (q.dequeue().has_value()) {
      }
    }
  };

  cycle(dt, 4);  // warm both rings past the working set
  cycle(red, 4);

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  cycle(dt, 512);
  cycle(red, 512);
  const std::uint64_t delta =
      g_allocs.load(std::memory_order_relaxed) - before;
  EXPECT_EQ(delta, 0u);
}

}  // namespace
}  // namespace rrtcp
