// Tests for the application layer: FTP sources and the flow factory.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "app/flow_factory.hpp"
#include "app/sender_factory.hpp"
#include "app/ftp.hpp"
#include "core/rr_sender.hpp"
#include "net/dumbbell.hpp"
#include "net/red.hpp"
#include "tcp/related_work.hpp"
#include "tcp/sack.hpp"

namespace rrtcp::app {
namespace {

TEST(VariantNames, RoundTrip) {
  for (Variant v : kExtendedVariants)
    EXPECT_EQ(variant_from_string(to_string(v)), v);
}

TEST(VariantNames, UnknownThrows) {
  EXPECT_THROW(variant_from_string("cubic"), std::invalid_argument);
  EXPECT_THROW(variant_from_string(""), std::invalid_argument);
  EXPECT_THROW(variant_from_string("RR"), std::invalid_argument);  // case
}

TEST(VariantNames, RegistryPrintsAlphabetically) {
  // --list-variants output is a stable surface: alphabetical, one line
  // per variant, independent of enum registration order.
  char* buf = nullptr;
  std::size_t len = 0;
  std::FILE* mem = open_memstream(&buf, &len);
  ASSERT_NE(mem, nullptr);
  SenderFactory::instance().print_registry(mem);
  std::fclose(mem);
  const std::string got{buf, len};
  std::free(buf);

  EXPECT_EQ(got,
            "registered TCP sender variants:\n"
            "  linkung    (cumulative-ACK receiver)\n"
            "  newreno    (cumulative-ACK receiver)\n"
            "  reno       (cumulative-ACK receiver)\n"
            "  rightedge  (cumulative-ACK receiver)\n"
            "  rr         (cumulative-ACK receiver)\n"
            "  sack       (SACK receiver)\n"
            "  tahoe      (cumulative-ACK receiver)\n");
}

TEST(FlowFactory, BuildsTheRightSenderType) {
  sim::Simulator sim;
  net::DumbbellConfig cfg;
  cfg.n_flows = 1;
  net::DumbbellTopology topo{sim, cfg};
  auto rr = make_flow(Variant::kRr, sim, topo.sender_node(0),
                      topo.receiver_node(0), 1);
  EXPECT_NE(dynamic_cast<core::RrSender*>(rr.sender.get()), nullptr);
  EXPECT_STREQ(rr.sender->variant_name(), "rr");

  auto re = make_flow(Variant::kRightEdge, sim, topo.sender_node(0),
                      topo.receiver_node(0), 2);
  EXPECT_NE(dynamic_cast<tcp::RightEdgeSender*>(re.sender.get()), nullptr);
}

TEST(FlowFactory, OnlySackGetsSackReceiver) {
  sim::Simulator sim;
  net::DumbbellConfig cfg;
  cfg.n_flows = 2;
  net::DumbbellTopology topo{sim, cfg};
  // SACK flow: receiver generates SACK blocks; plain flow: it must not —
  // observable through the sender: a SACK sender paired by the factory
  // receives blocks (scoreboard fills during recovery). Here we check
  // construction succeeded for both; block generation is covered by
  // receiver tests.
  auto sack = make_flow(Variant::kSack, sim, topo.sender_node(0),
                        topo.receiver_node(0), 1);
  auto reno = make_flow(Variant::kReno, sim, topo.sender_node(1),
                        topo.receiver_node(1), 2);
  EXPECT_NE(dynamic_cast<tcp::SackSender*>(sack.sender.get()), nullptr);
  EXPECT_EQ(dynamic_cast<tcp::SackSender*>(reno.sender.get()), nullptr);
}

TEST(Ftp, StartsAtTheConfiguredTime) {
  sim::Simulator sim;
  net::DumbbellConfig cfg;
  cfg.n_flows = 1;
  net::DumbbellTopology topo{sim, cfg};
  auto flow = make_flow(Variant::kNewReno, sim, topo.sender_node(0),
                        topo.receiver_node(0), 1);
  FtpSource ftp{sim, *flow.sender, sim::Time::seconds(2), 5000};
  sim.run_until(sim::Time::seconds(1.9));
  EXPECT_FALSE(flow.sender->started());
  EXPECT_EQ(flow.receiver->bytes_in_order(), 0u);
  sim.run_until(sim::Time::seconds(10));
  EXPECT_TRUE(flow.sender->started());
  EXPECT_EQ(flow.sender->start_time(), sim::Time::seconds(2));
  EXPECT_TRUE(flow.sender->complete());
  EXPECT_EQ(flow.receiver->bytes_in_order(), 5000u);
}

TEST(Ftp, UnboundedKeepsSending) {
  sim::Simulator sim;
  net::DumbbellConfig cfg;
  cfg.n_flows = 1;
  net::DumbbellTopology topo{sim, cfg};
  auto flow = make_flow(Variant::kNewReno, sim, topo.sender_node(0),
                        topo.receiver_node(0), 1);
  FtpSource ftp{sim, *flow.sender, sim::Time::zero(), std::nullopt};
  sim.run_until(sim::Time::seconds(30));
  EXPECT_FALSE(flow.sender->complete());
  // 0.8 Mbps for 30 s = 3 MB ceiling; should be well past 1 MB.
  EXPECT_GT(flow.receiver->bytes_in_order(), 1'000'000u);
}

TEST(EcnEndToEnd, MarksReduceWindowWithoutRetransmissions) {
  // An RR flow through an ECN-marking RED gateway: congestion is signalled
  // by marks, the sender reduces once per window, and — with the queue
  // never overflowing — no packet is ever lost or retransmitted.
  sim::Simulator sim;
  net::DumbbellConfig netcfg;
  netcfg.n_flows = 1;
  net::RedQueue* red = nullptr;
  netcfg.make_bottleneck_queue = [&] {
    net::RedConfig rc;
    rc.buffer_packets = 60;
    rc.min_th = 5;
    rc.max_th = 40;     // generous: early marks long before overflow
    rc.max_p = 0.2;
    rc.w_q = 0.05;
    rc.ecn = true;
    rc.mean_pkt_tx = sim::Time::transmission(1000, 800'000);
    auto q = std::make_unique<net::RedQueue>(sim, rc);
    red = q.get();
    return q;
  };
  net::DumbbellTopology topo{sim, netcfg};
  tcp::TcpConfig tcfg;
  tcfg.ecn_enabled = true;
  auto flow = make_flow(Variant::kRr, sim, topo.sender_node(0),
                        topo.receiver_node(0), 1, tcfg);
  FtpSource ftp{sim, *flow.sender, sim::Time::zero(), std::nullopt};
  sim.run_until(sim::Time::seconds(30));

  EXPECT_GT(red->ecn_marks(), 0u);
  EXPECT_GT(flow.sender->stats().ecn_reductions, 0u);
  EXPECT_EQ(flow.sender->stats().retransmissions, 0u);
  EXPECT_EQ(flow.sender->stats().timeouts, 0u);
  // And the link still gets used properly.
  EXPECT_GT(flow.receiver->bytes_in_order(), 1'500'000u);
}

TEST(EcnEndToEnd, ReductionIsOncePerWindow) {
  // Feed a sender two ECE acks covering the same window: one reduction.
  sim::Simulator sim;
  net::DumbbellConfig netcfg;
  netcfg.n_flows = 1;
  net::DumbbellTopology topo{sim, netcfg};
  tcp::TcpConfig tcfg;
  tcfg.ecn_enabled = true;
  tcfg.init_cwnd_pkts = 8;
  auto flow = make_flow(Variant::kNewReno, sim, topo.sender_node(0),
                        topo.receiver_node(0), 1, tcfg);
  flow.sender->set_app_bytes(std::nullopt);
  flow.sender->start();
  const auto cwnd0 = flow.sender->cwnd_bytes();

  net::Packet e1;
  e1.type = net::PacketType::kAck;
  e1.flow = 1;
  e1.size_bytes = 40;
  e1.tcp.ack = 0;
  e1.tcp.ece = true;
  // Two back-to-back ECE dup-acks: only the first may reduce.
  auto e2 = e1;
  flow.sender->receive(std::move(e1));
  const auto cwnd1 = flow.sender->cwnd_bytes();
  flow.sender->receive(std::move(e2));
  EXPECT_LT(cwnd1, cwnd0);
  EXPECT_EQ(flow.sender->cwnd_bytes(), cwnd1);
  EXPECT_EQ(flow.sender->stats().ecn_reductions, 1u);
}

}  // namespace
}  // namespace rrtcp::app
