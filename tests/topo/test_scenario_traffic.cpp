// Scenario-level cross-traffic behavior: CBR load costs goodput but never
// breaks protocol invariants, reverse bulk flows congest the ACK path for
// real, and graph-mode (parking lot) scenarios stay deterministic and
// audit-clean.
#include <cstdint>

#include <gtest/gtest.h>

#include "harness/scenario.hpp"
#include "net/drop_tail.hpp"
#include "topo/presets.hpp"

namespace rrtcp {
namespace {

tcp::TcpConfig tuned_tcp() {
  tcp::TcpConfig tcfg;
  tcfg.max_window_pkts = 20;
  tcfg.init_ssthresh_pkts = 20;
  return tcfg;
}

harness::ScenarioSpec cbr_spec(double load) {
  harness::ScenarioSpec spec;
  spec.name = "cbr-test";
  spec.seed = 5;
  spec.horizon = sim::Time::seconds(10);
  spec.instruments.audit = harness::AuditMode::kRecord;
  spec.add_flow({.variant = app::Variant::kNewReno, .tcp = tuned_tcp()});
  if (load > 0) spec.add_cbr({.load_fraction = load});
  return spec;
}

double goodput_kbps(harness::Scenario& sc) {
  return sc.instruments(0).meter->throughput_bps(sim::Time::zero(),
                                                 sc.spec().horizon) /
         1e3;
}

TEST(ScenarioCbr, UnresponsiveLoadCostsGoodput) {
  harness::Scenario clean{cbr_spec(0.0)};
  harness::Scenario loaded{cbr_spec(0.5)};
  clean.run();
  loaded.run();

  EXPECT_EQ(clean.n_cbr(), 0);
  ASSERT_EQ(loaded.n_cbr(), 1);
  // The CBR stream claims real bottleneck share: it delivers bytes, and
  // the TCP flow keeps clearly less than its clean-path goodput.
  EXPECT_GT(loaded.cbr_sink(0).bytes_received(), 0u);
  EXPECT_LT(goodput_kbps(loaded), 0.8 * goodput_kbps(clean));
  // CBR claims at most its configured fraction (400 kbit/s here).
  EXPECT_LE(loaded.cbr(0).bytes_sent() * 8.0 / 10.0, 400'000.0 * 1.01);
}

TEST(ScenarioCbr, AuditStaysCleanUnderCbrLoad) {
  // kCbr packets are not "data" to the audit layer: bottleneck CBR drops
  // must not show up as TCP pipe-conservation violations.
  harness::Scenario sc{cbr_spec(0.5)};
  sc.run();
  EXPECT_GT(sc.topology().bottleneck().queue().stats().dropped, 0u);
  EXPECT_EQ(sc.instrumentation().audit_violations(), 0u);
}

TEST(ScenarioReverse, BulkFlowCongestsTheAckPath) {
  harness::ScenarioSpec spec;
  spec.name = "ackpath-test";
  spec.seed = 5;
  spec.horizon = sim::Time::seconds(10);
  spec.instruments.audit = harness::AuditMode::kRecord;
  spec.reverse_bottleneck = harness::QueueSpec::drop_tail(8);
  spec.add_flow({.variant = app::Variant::kNewReno, .tcp = tuned_tcp()});
  spec.add_flow({.variant = app::Variant::kNewReno, .tcp = tuned_tcp(),
                 .reverse = true});
  harness::Scenario sc{spec};
  sc.run();

  // The reverse bulk flow's DATA shares the 8-packet reverse buffer with
  // flow 0's ACKs: the queue drops for real, yet both flows make progress
  // and no protocol invariant breaks.
  EXPECT_GT(sc.topology().reverse_bottleneck().queue().stats().dropped, 0u);
  EXPECT_GT(sc.sender(0).snd_una(), 0u);
  EXPECT_GT(sc.sender(1).snd_una(), 0u);
  EXPECT_EQ(sc.instrumentation().audit_violations(), 0u);
}

TEST(ScenarioReverse, ReverseQueueSpecReplacesTheDeepDefault) {
  harness::ScenarioSpec spec;
  spec.horizon = sim::Time::seconds(1);
  spec.reverse_bottleneck = harness::QueueSpec::drop_tail(8);
  spec.add_flow({.variant = app::Variant::kNewReno});
  harness::Scenario sc{spec};
  auto* dt = dynamic_cast<net::DropTailQueue*>(
      &sc.topology().reverse_bottleneck().queue());
  ASSERT_NE(dt, nullptr);
  EXPECT_EQ(dt->capacity(), 8u);
  EXPECT_EQ(sc.reverse_red(), nullptr);
}

TEST(ScenarioReverse, RedReverseBottleneckIsExposed) {
  net::RedConfig rc;
  rc.mean_pkt_tx = sim::Time::transmission(1000, 800'000);
  harness::ScenarioSpec spec;
  spec.horizon = sim::Time::seconds(1);
  spec.reverse_bottleneck = harness::QueueSpec::red_queue(rc);
  spec.add_flow({.variant = app::Variant::kNewReno});
  harness::Scenario sc{spec};
  EXPECT_NE(sc.reverse_red(), nullptr);
  EXPECT_EQ(sc.red(), nullptr);  // forward bottleneck stayed drop-tail
}

harness::ScenarioSpec parking_lot_spec(std::uint64_t seed, int hops) {
  topo::ParkingLotConfig plc;
  plc.n_bottlenecks = hops;
  const topo::ParkingLotLayout lay = topo::parking_lot(plc);

  harness::ScenarioSpec spec;
  spec.name = "parkinglot-test";
  spec.seed = seed;
  spec.horizon = sim::Time::seconds(10);
  spec.instruments.audit = harness::AuditMode::kRecord;
  spec.graph = lay.spec;
  spec.audited_links.assign(lay.bottleneck_links.begin(),
                            lay.bottleneck_links.end());
  spec.add_flow({.variant = app::Variant::kRr, .tcp = tuned_tcp(),
                 .src_node = lay.long_src, .dst_node = lay.long_dst});
  for (int i = 0; i < hops; ++i)
    spec.add_cbr({.rate_bps = 200'000,
                  .src_node = lay.cross_src[static_cast<std::size_t>(i)],
                  .dst_node = lay.cross_dst[static_cast<std::size_t>(i)]});
  return spec;
}

TEST(ScenarioGraph, ParkingLotRunsAndStaysAuditClean) {
  harness::Scenario sc{parking_lot_spec(5, 3)};
  EXPECT_TRUE(sc.graph_mode());
  sc.run();

  EXPECT_EQ(sc.n_cbr(), 3);
  EXPECT_GT(sc.sender(0).snd_una(), 0u);
  for (int i = 0; i < sc.n_cbr(); ++i)
    EXPECT_GT(sc.cbr_sink(i).bytes_received(), 0u);
  EXPECT_EQ(sc.instrumentation().audit_violations(), 0u);
}

TEST(ScenarioGraph, ParkingLotIsDeterministic) {
  harness::Scenario a{parking_lot_spec(11, 2)};
  harness::Scenario b{parking_lot_spec(11, 2)};
  a.run();
  b.run();
  EXPECT_EQ(a.sender(0).stats().data_packets_sent,
            b.sender(0).stats().data_packets_sent);
  EXPECT_EQ(a.sender(0).stats().retransmissions,
            b.sender(0).stats().retransmissions);
  EXPECT_EQ(a.sender(0).snd_una(), b.sender(0).snd_una());
  for (int i = 0; i < a.n_cbr(); ++i)
    EXPECT_EQ(a.cbr_sink(i).packets_received(),
              b.cbr_sink(i).packets_received());
}

}  // namespace
}  // namespace rrtcp
