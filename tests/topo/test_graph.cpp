// TopologyGraph: spec building, BFS routing (with the deterministic
// lowest-link-index tie-break), explicit route overrides, and the pinned
// dumbbell-on-graph layout that the byte-identity guarantee rests on.
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "net/dumbbell.hpp"
#include "sim/simulator.hpp"
#include "topo/graph.hpp"
#include "topo/presets.hpp"

namespace rrtcp {
namespace {

using topo::GraphSpec;
using topo::TopologyGraph;

TEST(GraphSpec, DuplexAddsTwoLinksAndAutoNames) {
  GraphSpec g;
  const int a = g.add_node("A");
  const int b = g.add_node("B");
  const int fwd = g.add_duplex(a, b, 1'000'000, sim::Time::milliseconds(5));
  EXPECT_EQ(g.n_nodes(), 2);
  ASSERT_EQ(g.links.size(), 2u);
  EXPECT_EQ(g.links[0].from, a);
  EXPECT_EQ(g.links[0].to, b);
  EXPECT_EQ(g.links[1].from, b);
  EXPECT_EQ(g.links[1].to, a);
  EXPECT_EQ(fwd, 0);

  sim::Simulator sim;
  TopologyGraph topo{sim, g};
  EXPECT_EQ(topo.spec().links[0].name, "A->B");
  EXPECT_EQ(topo.spec().links[1].name, "B->A");
}

TEST(TopologyGraph, ChainRoutesFollowTheOnlyPath) {
  GraphSpec g;
  const int a = g.add_node("A");
  const int b = g.add_node("B");
  const int c = g.add_node("C");
  g.add_link({.from = a, .to = b});  // link 0
  g.add_link({.from = b, .to = c});  // link 1

  sim::Simulator sim;
  TopologyGraph topo{sim, g};
  EXPECT_EQ(topo.route(a, c), 0);
  EXPECT_EQ(topo.route(b, c), 1);
  EXPECT_EQ(topo.path_links(a, c), (std::vector<int>{0, 1}));
  EXPECT_EQ(topo.route(a, a), -1);  // no self route
}

TEST(TopologyGraph, BfsBreaksTiesByLowestLinkIndex) {
  // Diamond: two equal-hop paths A->D; BFS must pick the one through the
  // lower-indexed first link so the same spec always routes identically.
  GraphSpec g;
  const int a = g.add_node("A");
  const int b = g.add_node("B");
  const int c = g.add_node("C");
  const int d = g.add_node("D");
  g.add_link({.from = a, .to = b});  // 0
  g.add_link({.from = a, .to = c});  // 1
  g.add_link({.from = b, .to = d});  // 2
  g.add_link({.from = c, .to = d});  // 3

  sim::Simulator sim;
  TopologyGraph topo{sim, g};
  EXPECT_EQ(topo.path_links(a, d), (std::vector<int>{0, 2}));
}

TEST(TopologyGraph, ExplicitRouteOverridesShortestPath) {
  GraphSpec g;
  const int a = g.add_node("A");
  const int b = g.add_node("B");
  const int c = g.add_node("C");
  const int d = g.add_node("D");
  g.add_link({.from = a, .to = b});  // 0
  g.add_link({.from = a, .to = c});  // 1
  g.add_link({.from = b, .to = d});  // 2
  g.add_link({.from = c, .to = d});  // 3
  g.add_route(a, d, 1);  // force the C branch at A

  sim::Simulator sim;
  TopologyGraph topo{sim, g};
  EXPECT_EQ(topo.path_links(a, d), (std::vector<int>{1, 3}));
  // Other destinations are untouched by the override.
  EXPECT_EQ(topo.route(a, b), 0);
}

TEST(TopologyGraph, UnreachableDestinationRoutesNowhere) {
  GraphSpec g;
  const int a = g.add_node("A");
  const int b = g.add_node("B");
  const int island = g.add_node("X");  // no links at all
  g.add_link({.from = a, .to = b});

  sim::Simulator sim;
  TopologyGraph topo{sim, g};
  EXPECT_EQ(topo.route(a, island), -1);
  EXPECT_TRUE(topo.path_links(a, island).empty());
  EXPECT_EQ(topo.route(b, a), -1);  // directed: no reverse link exists
}

TEST(TopologyGraph, LinkBetweenFindsFirstMatch) {
  GraphSpec g;
  const int a = g.add_node("A");
  const int b = g.add_node("B");
  g.add_duplex(a, b, 1'000'000, sim::Time::zero());

  sim::Simulator sim;
  TopologyGraph topo{sim, g};
  EXPECT_EQ(topo.link_between(a, b), &topo.link(0));
  EXPECT_EQ(topo.link_between(b, a), &topo.link(1));
  EXPECT_EQ(topo.link_between(a, a), nullptr);
}

// The dumbbell preset's node/link layout is load-bearing: seed-trace
// byte-identity depends on R1, R2, senders, receivers getting the exact
// node ids (and the bottleneck pair the exact link ids) the hand-built
// topology used. Pin them.
TEST(DumbbellOnGraph, SeedLayoutIsPinned) {
  sim::Simulator sim;
  net::DumbbellConfig cfg;
  cfg.n_flows = 2;
  net::DumbbellTopology dumbbell{sim, cfg};
  TopologyGraph& g = dumbbell.graph();

  EXPECT_EQ(g.n_nodes(), 2 + 2 * 2);
  EXPECT_EQ(g.n_links(), 2 + 4 * 2);
  EXPECT_EQ(&dumbbell.bottleneck(), &g.link(0));          // R1 -> R2
  EXPECT_EQ(&dumbbell.reverse_bottleneck(), &g.link(1));  // R2 -> R1
  EXPECT_EQ(dumbbell.sender_index(0), 2);
  EXPECT_EQ(dumbbell.receiver_index(0), 4);

  // Data path S1 -> K1: access link, forward bottleneck, exit link;
  // ACK path K1 -> S1: the mirror through the reverse bottleneck.
  EXPECT_EQ(g.path_links(dumbbell.sender_index(0), dumbbell.receiver_index(0)),
            (std::vector<int>{2, 0, 4}));
  EXPECT_EQ(g.path_links(dumbbell.receiver_index(0), dumbbell.sender_index(0)),
            (std::vector<int>{5, 1, 3}));
}

TEST(DumbbellOnGraph, ReverseBottleneckOverridesApply) {
  sim::Simulator sim;
  net::DumbbellConfig cfg;
  cfg.n_flows = 1;
  cfg.reverse_bps = 200'000;
  cfg.reverse_delay = sim::Time::milliseconds(40);
  net::DumbbellTopology dumbbell{sim, cfg};

  EXPECT_EQ(dumbbell.reverse_bottleneck().config().bandwidth_bps, 200'000);
  EXPECT_EQ(dumbbell.reverse_bottleneck().config().prop_delay,
            sim::Time::milliseconds(40));
  // Forward bottleneck keeps the Table 3 defaults.
  EXPECT_EQ(dumbbell.bottleneck().config().bandwidth_bps, 800'000);
}

TEST(ParkingLot, LongPathCrossesEveryBottleneck) {
  topo::ParkingLotConfig cfg;
  cfg.n_bottlenecks = 3;
  const topo::ParkingLotLayout lay = topo::parking_lot(cfg);
  ASSERT_EQ(lay.routers.size(), 4u);       // R0..R3
  ASSERT_EQ(lay.bottleneck_links.size(), 3u);
  ASSERT_EQ(lay.cross_src.size(), 3u);

  sim::Simulator sim;
  TopologyGraph g{sim, lay.spec};
  const std::vector<int> path = g.path_links(lay.long_src, lay.long_dst);
  for (int l : lay.bottleneck_links)
    EXPECT_NE(std::find(path.begin(), path.end(), l), path.end())
        << "long path misses bottleneck link " << l;

  // Cross flow i crosses ONLY its own bottleneck.
  for (std::size_t i = 0; i < lay.cross_src.size(); ++i) {
    const std::vector<int> cross = g.path_links(
        lay.cross_src[i], lay.cross_dst[i]);
    for (std::size_t j = 0; j < lay.bottleneck_links.size(); ++j) {
      const bool on_path =
          std::find(cross.begin(), cross.end(), lay.bottleneck_links[j]) !=
          cross.end();
      EXPECT_EQ(on_path, i == j) << "cross " << i << " vs bottleneck " << j;
    }
  }
}

TEST(MultiDumbbell, EveryPairCrossesTheBottleneck) {
  topo::MultiDumbbellConfig cfg;
  cfg.n_senders = 4;
  cfg.m_receivers = 2;
  const topo::MultiDumbbellLayout lay = topo::multi_dumbbell(cfg);
  ASSERT_EQ(lay.senders.size(), 4u);
  ASSERT_EQ(lay.receivers.size(), 2u);

  sim::Simulator sim;
  TopologyGraph g{sim, lay.spec};
  for (int s : lay.senders)
    for (int r : lay.receivers) {
      const std::vector<int> path = g.path_links(s, r);
      EXPECT_NE(std::find(path.begin(), path.end(), lay.bottleneck_link),
                path.end())
          << "path " << s << " -> " << r << " avoids the bottleneck";
      const std::vector<int> back = g.path_links(r, s);
      EXPECT_NE(std::find(back.begin(), back.end(),
                          lay.reverse_bottleneck_link),
                back.end());
    }
}

}  // namespace
}  // namespace rrtcp
