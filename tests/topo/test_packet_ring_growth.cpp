// PacketRing growth under pressure: unit-level wraparound + doubling with
// contents preserved, and a scenario where sustained reverse-path
// saturation forces the deep reverse-bottleneck ring to grow past its
// minimum capacity mid-simulation without losing a packet.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "harness/scenario.hpp"
#include "net/drop_tail.hpp"
#include "net/packet_ring.hpp"
#include "testutil.hpp"

namespace rrtcp {
namespace {

TEST(PacketRing, GrowPreservesFifoAcrossWraparound) {
  net::PacketRing ring;
  EXPECT_EQ(ring.capacity(), 0u);  // lazily allocated

  // Rotate head away from slot 0 so growth happens on a WRAPPED ring.
  for (std::uint64_t s = 0; s < 10; ++s)
    ring.push_back(test::make_data(1, s, 1000));
  EXPECT_EQ(ring.capacity(), 16u);
  for (std::uint64_t s = 0; s < 10; ++s)
    EXPECT_EQ(ring.pop_front().tcp.seq, s);

  // Fill to capacity (physically wrapping), then push one more: the ring
  // must double and re-linearize without reordering.
  for (std::uint64_t s = 100; s < 116; ++s)
    ring.push_back(test::make_data(1, s, 1000));
  EXPECT_EQ(ring.size(), 16u);
  EXPECT_EQ(ring.capacity(), 16u);
  ring.push_back(test::make_data(1, 116, 1000));
  EXPECT_EQ(ring.capacity(), 32u);

  EXPECT_EQ(ring.front().tcp.seq, 100u);
  EXPECT_EQ(ring.back().tcp.seq, 116u);
  for (std::uint64_t s = 100; s <= 116; ++s)
    EXPECT_EQ(ring.pop_front().tcp.seq, s);
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.capacity(), 32u);  // grow-only: never shrinks
}

TEST(PacketRing, ReservePresizesToPowerOfTwo) {
  net::PacketRing ring;
  ring.reserve(100);
  EXPECT_EQ(ring.capacity(), 128u);
  for (std::uint64_t s = 0; s < 128; ++s)
    ring.push_back(test::make_data(1, s, 1000));
  EXPECT_EQ(ring.capacity(), 128u);  // exactly filled, no growth
}

TEST(DropTail, RingIsPreSizedToTheBufferCapacity) {
  // A packet-capacity queue reserves its whole (power-of-two-rounded)
  // depth at construction, so enqueue never allocates — even for a queue
  // whose first packet arrives mid-run.
  net::DropTailQueue q{1'000};
  EXPECT_EQ(q.ring_capacity(), 1024u);
  for (std::uint64_t s = 0; s < 20; ++s)
    ASSERT_TRUE(q.enqueue(test::make_data(1, s, 1000)));
  EXPECT_EQ(q.len_packets(), 20u);
  EXPECT_EQ(q.ring_capacity(), 1024u);  // no growth on use
  while (q.dequeue().has_value()) {
  }
  EXPECT_EQ(q.ring_capacity(), 1024u);
}

TEST(DropTail, HugeNominalCapacityCapsTheReservation) {
  // Beyond the reservation cap the ring falls back to amortized doubling,
  // so a nominally enormous buffer doesn't pin memory it never uses.
  net::DropTailQueue q{1'000'000};
  EXPECT_EQ(q.ring_capacity(), 1024u);
  for (std::uint64_t s = 0; s < 1025; ++s)
    ASSERT_TRUE(q.enqueue(test::make_data(1, s, 1000)));
  EXPECT_EQ(q.ring_capacity(), 2048u);  // doubled past the cap
}

// Reverse-path saturation: a reverse bulk flow with a large window parks
// window-minus-BDP packets (~100 here) in the deep reverse drop-tail
// buffer while the forward flow's ACKs thread through the same queue. The
// ring is pre-sized at construction, so even this standing queue — far
// past the old 16-slot minimum — never allocates mid-simulation: counters
// reconcile exactly and both flows keep moving.
TEST(PacketRingGrowth, ReverseSaturationNeverGrowsThePreSizedRing) {
  harness::ScenarioSpec spec;
  spec.name = "ring-growth";
  spec.seed = 5;
  spec.horizon = sim::Time::seconds(10);
  spec.instruments.audit = harness::AuditMode::kRecord;
  spec.add_flow({.variant = app::Variant::kNewReno});
  // Default TcpConfig: max_window_pkts = 128 >> the ~20-packet reverse
  // BDP, so the standing reverse queue far exceeds kMinCapacity = 16.
  spec.add_flow({.variant = app::Variant::kNewReno, .reverse = true});
  harness::Scenario sc{spec};

  auto* dt = dynamic_cast<net::DropTailQueue*>(
      &sc.topology().reverse_bottleneck().queue());
  ASSERT_NE(dt, nullptr);
  const std::size_t reserved = dt->ring_capacity();
  EXPECT_GT(reserved, 16u);  // pre-sized well past the old minimum

  sc.run();

  EXPECT_EQ(dt->ring_capacity(), reserved)
      << "the pre-sized reverse ring should never grow mid-simulation";
  EXPECT_GT(dt->len_packets(), 16u) << "reverse queue never built a deep "
                                       "standing backlog; saturation missing";
  // Deep buffer: nothing dropped, every enqueue accounted for.
  const auto& st = dt->stats();
  EXPECT_EQ(st.dropped, 0u);
  EXPECT_EQ(st.enqueued, st.dequeued + dt->len_packets());
  // Both directions survived the squeeze, and the audit saw no violation.
  EXPECT_GT(sc.sender(0).snd_una(), 0u);
  EXPECT_GT(sc.sender(1).snd_una(), 0u);
  EXPECT_EQ(sc.instrumentation().audit_violations(), 0u);
}

}  // namespace
}  // namespace rrtcp
