// Traffic sources: CBR rate/stop/sink accounting, ON/OFF determinism via
// named RNG streams, and the TcpSenderBase::app_enqueue contract the
// ON/OFF source is built on.
#include <gtest/gtest.h>

#include "harness/scenario.hpp"
#include "sim/simulator.hpp"
#include "tcp/newreno.hpp"
#include "testutil.hpp"
#include "topo/graph.hpp"
#include "traffic/cbr.hpp"
#include "traffic/onoff.hpp"

namespace rrtcp {
namespace {

// Two hosts on a fast duplex link — enough topology for a CBR stream.
struct CbrRig {
  sim::Simulator sim;
  topo::TopologyGraph topo;
  traffic::CbrSink sink;

  explicit CbrRig(traffic::CbrConfig cfg)
      : topo{sim, make_spec()},
        sink{topo.node(1), /*flow=*/1},
        source{sim, topo.node(0), /*flow=*/1, /*dst=*/1, cfg} {}

  traffic::CbrSource source;

  static topo::GraphSpec make_spec() {
    topo::GraphSpec g;
    const int a = g.add_node("A");
    const int b = g.add_node("B");
    g.add_duplex(a, b, 10'000'000, sim::Time::milliseconds(1));
    return g;
  }
};

TEST(Cbr, RateSetsThePacketClock) {
  traffic::CbrConfig cfg;
  cfg.rate_bps = 800'000;    // 1000 B packets -> one every 10 ms
  cfg.packet_bytes = 1'000;
  CbrRig rig{cfg};
  rig.sim.run_until(sim::Time::seconds(10));

  // Ticks at t = 0, 10ms, ... : 100 packets/s over 10 s, +-1 for the
  // endpoints.
  EXPECT_GE(rig.source.packets_sent(), 1000u);
  EXPECT_LE(rig.source.packets_sent(), 1001u);
  EXPECT_EQ(rig.source.bytes_sent(), rig.source.packets_sent() * 1000u);
  // The fast link delivers everything (modulo the last packet in flight).
  EXPECT_GE(rig.sink.packets_received(), rig.source.packets_sent() - 1);
  EXPECT_EQ(rig.sink.bytes_received(), rig.sink.packets_received() * 1000u);
}

TEST(Cbr, StopDisarmsTheSource) {
  traffic::CbrConfig cfg;
  cfg.rate_bps = 800'000;
  cfg.stop = sim::Time::seconds(5);
  CbrRig rig{cfg};
  rig.sim.run_until(sim::Time::seconds(20));

  // ~500 packets in [0, 5s) and not one more over the remaining 15 s.
  EXPECT_GE(rig.source.packets_sent(), 499u);
  EXPECT_LE(rig.source.packets_sent(), 501u);
}

TEST(Cbr, DelayedStartShiftsTheClock) {
  traffic::CbrConfig cfg;
  cfg.rate_bps = 800'000;
  cfg.start = sim::Time::seconds(5);
  CbrRig rig{cfg};
  rig.sim.run_until(sim::Time::seconds(4));
  EXPECT_EQ(rig.source.packets_sent(), 0u);
  rig.sim.run_until(sim::Time::seconds(10));
  EXPECT_GE(rig.source.packets_sent(), 500u);
  EXPECT_LE(rig.source.packets_sent(), 501u);
}

harness::ScenarioSpec onoff_spec(std::uint64_t seed) {
  traffic::OnOffConfig oc;
  oc.mean_on_s = 0.3;
  oc.mean_off_s = 0.3;
  harness::ScenarioSpec spec;
  spec.name = "onoff-test";
  spec.seed = seed;
  spec.horizon = sim::Time::seconds(20);
  spec.add_flow({.variant = app::Variant::kNewReno, .onoff = oc});
  return spec;
}

TEST(OnOff, GeneratesBurstsAndDeliversData) {
  harness::Scenario sc{onoff_spec(7)};
  sc.run();
  ASSERT_NE(sc.onoff(0), nullptr);
  EXPECT_EQ(sc.source(0), nullptr);  // ON/OFF flows have no FTP source
  EXPECT_GT(sc.onoff(0)->bursts(), 1);
  EXPECT_GT(sc.onoff(0)->bytes_generated(), 0u);
  // The sender actually moved the generated data.
  EXPECT_GT(sc.sender(0).snd_una(), 0u);
  EXPECT_LE(sc.sender(0).snd_una(), sc.onoff(0)->bytes_generated());
}

TEST(OnOff, SameSeedReproducesTheRun) {
  harness::Scenario a{onoff_spec(42)};
  harness::Scenario b{onoff_spec(42)};
  a.run();
  b.run();
  EXPECT_EQ(a.onoff(0)->bytes_generated(), b.onoff(0)->bytes_generated());
  EXPECT_EQ(a.onoff(0)->bursts(), b.onoff(0)->bursts());
  EXPECT_EQ(a.sender(0).stats().data_packets_sent,
            b.sender(0).stats().data_packets_sent);
  EXPECT_EQ(a.sender(0).snd_una(), b.sender(0).snd_una());
}

TEST(OnOff, DifferentSeedPerturbsTheDraws) {
  harness::Scenario a{onoff_spec(42)};
  harness::Scenario b{onoff_spec(43)};
  a.run();
  b.run();
  // Heavy-tailed draws from distinct streams: byte totals colliding would
  // require identical ON/OFF sequences.
  EXPECT_NE(a.onoff(0)->bytes_generated(), b.onoff(0)->bytes_generated());
}

// The contract ON/OFF sources depend on: an empty finite backlog sender
// can be started idle, fed by app_enqueue, complete, then resume when more
// data arrives — re-arming its own RTO protection.
TEST(AppEnqueue, ResumesAnIdleSender) {
  test::SenderHarness<tcp::NewRenoSender> h;
  h.sender().set_app_bytes(0);
  h.sender().start();
  EXPECT_TRUE(h.sent_seqs().empty());  // nothing to send yet
  EXPECT_TRUE(h.sender().complete());  // trivially: 0 of 0 bytes

  h.sender().app_enqueue(2'000);
  EXPECT_FALSE(h.sender().complete());
  EXPECT_EQ(h.sent_seqs(), (std::vector<std::uint64_t>{0}));  // init cwnd 1
  EXPECT_TRUE(h.sender().rto_pending());

  h.ack(1'000);
  h.ack(2'000);
  EXPECT_TRUE(h.sender().complete());
  EXPECT_FALSE(h.sender().rto_pending());

  // New data after completion: transmission resumes and the timer re-arms.
  h.wire.clear();
  h.sender().app_enqueue(1'000);
  EXPECT_FALSE(h.sender().complete());
  EXPECT_EQ(h.sent_seqs(), (std::vector<std::uint64_t>{2'000}));
  EXPECT_TRUE(h.sender().rto_pending());
  h.ack(3'000);
  EXPECT_TRUE(h.sender().complete());
}

TEST(AppEnqueue, ZeroBytesIsANoOp) {
  test::SenderHarness<tcp::NewRenoSender> h;
  h.sender().set_app_bytes(0);
  h.sender().start();
  h.sender().app_enqueue(0);
  EXPECT_TRUE(h.sent_seqs().empty());
  EXPECT_TRUE(h.sender().complete());
}

}  // namespace
}  // namespace rrtcp
