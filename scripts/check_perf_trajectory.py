#!/usr/bin/env python3
"""Gate bench_micro results against the committed perf baseline.

CI runs ``bench_micro --json=current.json`` on whatever machine it gets,
then calls this script with the committed ``BENCH_micro.json`` as the
baseline. Raw events/s are not comparable across machines, so the check
is two-layered:

1. **Calibrated throughput gate.** The legacy binary-heap engine is
   frozen code — it only changes if someone edits it deliberately — so
   the median of ``current/baseline`` over the legacy rows estimates the
   machine-speed ratio between the CI runner and the machine that wrote
   the baseline. Every row must then hit
   ``baseline_rate * scale * (1 - tolerance)``. A real regression slows
   pooled rows but not the legacy yardstick, so it cannot hide behind a
   slow runner.

2. **Machine-independent ratio gates.** Within a single run the
   pooled/legacy ratio cancels machine speed entirely: forward must stay
   >= 2x legacy and every churn-shaped bench >= 1x legacy (the churn
   regression this PR fixed must not come back), each with the same
   relative tolerance.

Allocation gates are absolute: pooled scheduler rows, the queue rings,
and e2e steady state must stay allocation-free (a tiny epsilon per unit
absorbs one-off container growth landing inside a measured window).

Exit status: 0 = pass, 1 = regression (or malformed input). Only stdlib.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys

# Per-unit allocation budget for rows that must be allocation-free in
# steady state. 1e-4 allocs/event tolerates a stray container doubling
# (a handful of allocs per million events) without letting a real
# per-event allocation (>= 1.0/event) anywhere near the gate.
ALLOC_EPSILON = 1e-4

# (bench, numerator engine, denominator engine, required ratio)
RATIO_GATES = [
    ("forward", "pooled", "legacy", 2.0),
    ("churn", "pooled", "legacy", 1.0),
    ("churn_far", "pooled", "legacy", 1.0),
    ("reschedule", "pooled", "legacy", 1.0),
]

# Rows whose steady-state alloc rate must be ~zero.
ZERO_ALLOC_ROWS = [
    ("forward", "pooled"),
    ("churn", "pooled"),
    ("churn_far", "pooled"),
    ("reschedule", "pooled"),
    ("droptail_queue", "ring"),
    ("red_queue", "ring"),
    ("route_forward", "flat_table"),
    ("flow_arena_churn", "arena"),
]

# Rows whose rate depends on real parallelism (thread scheduling, core
# count): run-to-run spread exceeds the tolerance band even on one
# machine, and CI runners differ in core count, so the calibrated floor
# would flake. They must still be PRESENT (coverage check applies); only
# the throughput floor is skipped. The sharded engine's correctness is
# pinned by tests/pdes, not by this gate.
FLOOR_EXEMPT_ROWS = [
    ("shard_scaling", "shard4"),
]


def load_rows(path):
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    rows = data["jobs"] if isinstance(data, dict) else data
    return {(r["bench"], r["engine"]): r for r in rows}


def rate_of(row):
    """Primary throughput of a row, in its own unit (events|packets|rearms)/s."""
    return row[f"{row['unit']}_per_sec"]


def alloc_rate_of(row):
    return row[f"allocs_per_{row['unit']}"]


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True,
                    help="committed BENCH_micro.json (the trajectory anchor)")
    ap.add_argument("--current", required=True,
                    help="freshly produced bench_micro JSON")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="relative slack on every gate (default 0.15)")
    args = ap.parse_args()

    try:
        baseline = load_rows(args.baseline)
        current = load_rows(args.current)
    except (OSError, KeyError, json.JSONDecodeError) as e:
        print(f"FAIL: cannot load bench JSON: {e}")
        return 1

    tol = args.tolerance
    failures = []
    notes = []

    # -- machine-speed calibration over the frozen legacy rows ------------
    legacy_ratios = []
    for key, base_row in baseline.items():
        if key[1] != "legacy":
            continue
        cur_row = current.get(key)
        if cur_row is None:
            continue
        b, c = rate_of(base_row), rate_of(cur_row)
        if b > 0 and c > 0:
            legacy_ratios.append(c / b)
    if not legacy_ratios:
        print("FAIL: no legacy rows shared between baseline and current — "
              "cannot calibrate machine speed")
        return 1
    # One-sided clamp: a slower runner lowers every floor, but a faster
    # runner never raises them. Raising floors on a fast machine turns
    # benign per-bench noise into failures; hiding behind machine speed
    # is already impossible for relative regressions because the ratio
    # gates below cancel machine speed entirely.
    scale = min(statistics.median(legacy_ratios), 1.0)
    print(f"machine calibration: median legacy current/baseline = "
          f"{statistics.median(legacy_ratios):.3f} over {len(legacy_ratios)} "
          f"rows -> floor scale {scale:.3f}, tolerance {tol:.0%}")

    # -- per-row calibrated throughput gate -------------------------------
    for key, base_row in sorted(baseline.items()):
        cur_row = current.get(key)
        if cur_row is None:
            failures.append(f"row {key} present in baseline but missing from "
                            f"current run — bench coverage shrank")
            continue
        if key in FLOOR_EXEMPT_ROWS:
            print(f"  {key[0]:<15} {key[1]:<7} {rate_of(cur_row):>14,.0f} "
                  f"{base_row['unit']}/s  (floor exempt: parallel wall-clock)")
            continue
        floor = rate_of(base_row) * scale * (1.0 - tol)
        got = rate_of(cur_row)
        verdict = "ok" if got >= floor else "REGRESSION"
        line = (f"  {key[0]:<15} {key[1]:<7} {got:>14,.0f} {base_row['unit']}/s"
                f"  (floor {floor:>14,.0f})  {verdict}")
        print(line)
        if got < floor:
            failures.append(f"{key[0]}/{key[1]}: {got:,.0f} {base_row['unit']}/s "
                            f"< calibrated floor {floor:,.0f}")
    for key in sorted(set(current) - set(baseline)):
        notes.append(f"new bench row {key} (not in baseline; not gated)")

    # -- machine-independent ratio gates ----------------------------------
    for bench, num_eng, den_eng, need in RATIO_GATES:
        num = current.get((bench, num_eng))
        den = current.get((bench, den_eng))
        if num is None or den is None:
            failures.append(f"ratio gate {bench}: missing "
                            f"{num_eng if num is None else den_eng} row")
            continue
        ratio = rate_of(num) / rate_of(den)
        floor = need * (1.0 - tol)
        verdict = "ok" if ratio >= floor else "REGRESSION"
        print(f"  ratio {bench:<15} {num_eng}/{den_eng} = {ratio:5.2f}x "
              f"(floor {floor:.2f}x)  {verdict}")
        if ratio < floor:
            failures.append(f"{bench}: {num_eng} only {ratio:.2f}x {den_eng}, "
                            f"needs >= {floor:.2f}x")

    # -- allocation gates --------------------------------------------------
    for key in ZERO_ALLOC_ROWS:
        row = current.get(key)
        if row is None:
            failures.append(f"alloc gate: row {key} missing from current run")
            continue
        per_unit = alloc_rate_of(row)
        verdict = "ok" if per_unit <= ALLOC_EPSILON else "REGRESSION"
        print(f"  allocs {key[0]:<15} {key[1]:<7} {per_unit:.6f}/"
              f"{row['unit'][:-1]}  {verdict}")
        if per_unit > ALLOC_EPSILON:
            failures.append(f"{key[0]}/{key[1]}: {per_unit:.6f} allocs per "
                            f"{row['unit'][:-1]} (must be ~0)")
    for key, row in sorted(current.items()):
        if "steady_allocs_per_packet" not in row:
            continue
        steady = row["steady_allocs_per_packet"]
        verdict = "ok" if steady <= ALLOC_EPSILON else "REGRESSION"
        print(f"  allocs {key[0]:<15} steady  {steady:.6f}/packet  {verdict}")
        if steady > ALLOC_EPSILON:
            failures.append(f"{key[0]}: {steady:.6f} steady allocs/packet "
                            f"(must be ~0)")

    for n in notes:
        print(f"note: {n}")
    if failures:
        print(f"\nFAIL: {len(failures)} perf-trajectory gate(s) tripped:")
        for f in failures:
            print(f"  - {f}")
        print("\nIf the change is an intentional trade-off, refresh the "
              "committed BENCH_micro.json in the same PR and justify the "
              "delta in EXPERIMENTS.md.")
        return 1
    print("\nPASS: perf trajectory holds "
          f"({len(baseline)} rows, {len(RATIO_GATES)} ratio gates, "
          "alloc gates clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
