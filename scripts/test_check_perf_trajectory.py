#!/usr/bin/env python3
"""Unit tests for check_perf_trajectory.py (stdlib unittest — no pytest).

The gating logic has sharp edges worth pinning: the one-sided machine
calibration clamp, the machine-independent ratio floors, the absolute
allocation epsilon, and the row-coverage rules (a baseline row vanishing
must fail; a brand-new row must not). Each test builds small JSON files
and runs main() via argv patching, asserting on the exit status.

Run directly (``python3 scripts/test_check_perf_trajectory.py``) or via
ctest (``ctest -R perf_script``).
"""

import json
import os
import sys
import tempfile
import unittest
from unittest import mock

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import check_perf_trajectory as cpt  # noqa: E402  (path fixed up above)


def row(bench, engine, rate, allocs_per_unit=0.0, unit="events", **extra):
    r = {
        "bench": bench,
        "engine": engine,
        "unit": unit,
        f"{unit}_per_sec": rate,
        "wall_s": 1.0,
        "units": int(rate),
        "allocs": int(allocs_per_unit * rate),
        f"allocs_per_{unit}": allocs_per_unit,
    }
    r.update(extra)
    return r


def full_rowset(scale=1.0, forward_pooled_factor=2.5, alloc_overrides=None,
                steady=0.0):
    """A healthy bench result, all gates passing at scale=1.0.

    ``scale`` multiplies every rate (simulating a faster/slower machine);
    ``forward_pooled_factor`` sets forward pooled relative to legacy;
    ``alloc_overrides`` maps (bench, engine) -> allocs/unit.
    """
    allocs = alloc_overrides or {}

    def a(bench, engine):
        return allocs.get((bench, engine), 0.0)

    legacy_rate = 1e7 * scale
    rows = [
        row("forward", "legacy", legacy_rate, 2.0),
        row("forward", "pooled", legacy_rate * forward_pooled_factor,
            a("forward", "pooled")),
        row("churn", "legacy", 5e6 * scale, 1.5),
        row("churn", "pooled", 6e6 * scale, a("churn", "pooled")),
        row("churn_far", "legacy", 4e6 * scale, 1.5),
        row("churn_far", "pooled", 5e6 * scale, a("churn_far", "pooled")),
        row("reschedule", "legacy", 1.5e7 * scale, 2.0, unit="rearms"),
        row("reschedule", "pooled", 6e7 * scale,
            a("reschedule", "pooled"), unit="rearms"),
        row("droptail_queue", "ring", 3e7 * scale,
            a("droptail_queue", "ring"), unit="packets"),
        row("red_queue", "ring", 2.5e7 * scale,
            a("red_queue", "ring"), unit="packets"),
        row("route_forward", "flat_table", 5e7 * scale,
            a("route_forward", "flat_table"), unit="hops"),
        row("e2e_1flow", "pooled", 2e4 * scale, 0.1, unit="packets",
            steady_allocs_per_packet=steady),
        row("flow_arena_churn", "heap", 1e7 * scale, 1.0, unit="objects"),
        row("flow_arena_churn", "arena", 3e8 * scale,
            a("flow_arena_churn", "arena"), unit="objects"),
        row("shard_scaling", "single", 1e7 * scale, 0.0),
        row("shard_scaling", "shard4", 8e6 * scale, 0.001),
    ]
    return rows


class GateHarness(unittest.TestCase):
    """Writes baseline/current JSON to temp files and runs cpt.main()."""

    def run_gate(self, baseline_rows, current_rows, tolerance=0.15):
        with tempfile.TemporaryDirectory() as td:
            base = os.path.join(td, "baseline.json")
            cur = os.path.join(td, "current.json")
            with open(base, "w", encoding="utf-8") as f:
                json.dump({"jobs": baseline_rows}, f)
            with open(cur, "w", encoding="utf-8") as f:
                json.dump({"jobs": current_rows}, f)
            argv = ["check_perf_trajectory.py", "--baseline", base,
                    "--current", cur, "--tolerance", str(tolerance)]
            with mock.patch.object(sys, "argv", argv), \
                    mock.patch("sys.stdout"):
                return cpt.main()


class CalibrationTests(GateHarness):
    def test_identical_runs_pass(self):
        rows = full_rowset()
        self.assertEqual(self.run_gate(rows, rows), 0)

    def test_slow_machine_lowers_floors(self):
        # Current machine is uniformly 2x slower: the legacy yardstick
        # scales every floor down, so nothing trips.
        self.assertEqual(
            self.run_gate(full_rowset(), full_rowset(scale=0.5)), 0)

    def test_fast_machine_does_not_raise_floors(self):
        # Runner is 3x faster overall but one row merely matched the
        # baseline rate. With the clamp at 1.0 that row still passes;
        # without the clamp the 3x scale would fail it. (route_forward
        # has no in-run ratio gate, so only the calibrated floor sees it.)
        current = full_rowset(scale=3.0)
        for r in current:
            if r["bench"] == "route_forward":
                r["hops_per_sec"] = 5e7  # baseline-speed, not 3x
        self.assertEqual(self.run_gate(full_rowset(), current), 0)

    def test_genuine_slowdown_fails_even_on_slow_machine(self):
        # Machine is 2x slower AND the pooled forward row lost another
        # 3x on top: the calibrated floor catches it because legacy rows
        # only explain the 2x.
        current = full_rowset(scale=0.5)
        for r in current:
            if r["bench"] == "forward" and r["engine"] == "pooled":
                r["events_per_sec"] /= 3.0
        self.assertEqual(self.run_gate(full_rowset(), current), 1)

    def test_no_shared_legacy_rows_fails(self):
        # Without a yardstick there is no calibration — must fail loudly,
        # not silently skip the throughput gates.
        current = [r for r in full_rowset() if r["engine"] != "legacy"]
        self.assertEqual(self.run_gate(full_rowset(), current), 1)


class RatioGateTests(GateHarness):
    def test_forward_speedup_below_2x_fails(self):
        # 1.5x pooled/legacy is below the 2.0x floor even with 15% slack,
        # on any machine (ratio gates ignore calibration entirely).
        current = full_rowset(forward_pooled_factor=1.5)
        self.assertEqual(self.run_gate(current, current), 1)

    def test_forward_speedup_within_tolerance_passes(self):
        # 1.75x >= 2.0 * (1 - 0.15) = 1.70x: inside the slack band.
        current = full_rowset(forward_pooled_factor=1.75)
        self.assertEqual(self.run_gate(current, current), 0)

    def test_churn_regression_fails(self):
        # The churn-below-legacy regression this harness exists to catch:
        # pooled at 0.5x legacy must trip the >= 1.0x gate.
        current = full_rowset()
        for r in current:
            if r["bench"] == "churn" and r["engine"] == "pooled":
                r["events_per_sec"] = 2.5e6  # legacy is 5e6
        self.assertEqual(self.run_gate(current, current), 1)

    def test_missing_ratio_row_fails(self):
        current = [r for r in full_rowset()
                   if not (r["bench"] == "reschedule"
                           and r["engine"] == "pooled")]
        self.assertEqual(self.run_gate(full_rowset(), current), 1)


class AllocGateTests(GateHarness):
    def test_epsilon_absorbs_stray_container_growth(self):
        # A handful of allocs per million events (5e-5/event) is below
        # ALLOC_EPSILON: pool growth landing inside a measured window
        # must not flake the gate.
        current = full_rowset(
            alloc_overrides={("churn", "pooled"): cpt.ALLOC_EPSILON / 2})
        self.assertEqual(self.run_gate(current, current), 0)

    def test_per_event_allocation_fails(self):
        # A real regression allocates >= 1/event — four orders of
        # magnitude above epsilon.
        current = full_rowset(alloc_overrides={("forward", "pooled"): 1.0})
        self.assertEqual(self.run_gate(current, current), 1)

    def test_route_forward_is_alloc_gated(self):
        # The FlatTable32 lookup row joined ZERO_ALLOC_ROWS: an alloc on
        # the per-hop path must fail.
        self.assertIn(("route_forward", "flat_table"), cpt.ZERO_ALLOC_ROWS)
        current = full_rowset(
            alloc_overrides={("route_forward", "flat_table"): 0.5})
        self.assertEqual(self.run_gate(current, current), 1)

    def test_flow_arena_is_alloc_gated(self):
        # The FlowArena bump path joined ZERO_ALLOC_ROWS: steady-state
        # arena construction must never reach operator new.
        self.assertIn(("flow_arena_churn", "arena"), cpt.ZERO_ALLOC_ROWS)
        current = full_rowset(
            alloc_overrides={("flow_arena_churn", "arena"): 0.5})
        self.assertEqual(self.run_gate(current, current), 1)

    def test_e2e_steady_state_gated_separately_from_setup(self):
        # e2e rows carry setup allocs (0.1/packet overall) legitimately;
        # only steady_allocs_per_packet is gated.
        ok = full_rowset(steady=0.0)
        self.assertEqual(self.run_gate(ok, ok), 0)
        bad = full_rowset(steady=0.01)
        self.assertEqual(self.run_gate(bad, bad), 1)


class CoverageTests(GateHarness):
    def test_baseline_row_missing_from_current_fails(self):
        # Bench coverage must not silently shrink.
        current = [r for r in full_rowset()
                   if r["bench"] != "route_forward"]
        self.assertEqual(self.run_gate(full_rowset(), current), 1)

    def test_new_row_in_current_is_not_gated(self):
        # The reverse direction is fine: adding a bench before its
        # baseline lands must not fail the older baseline.
        baseline = [r for r in full_rowset()
                    if r["bench"] != "route_forward"]
        self.assertEqual(self.run_gate(baseline, full_rowset()), 0)

    def test_floor_exempt_row_may_slow_but_not_vanish(self):
        # shard_scaling/shard4 measures parallel wall-clock: its rate is
        # scheduling noise on a shared runner, so the calibrated floor
        # skips it — but dropping the row entirely still shrinks coverage.
        self.assertIn(("shard_scaling", "shard4"), cpt.FLOOR_EXEMPT_ROWS)
        slow = full_rowset()
        for r in slow:
            if r["bench"] == "shard_scaling" and r["engine"] == "shard4":
                r["events_per_sec"] /= 10.0
        self.assertEqual(self.run_gate(full_rowset(), slow), 0)
        gone = [r for r in full_rowset()
                if not (r["bench"] == "shard_scaling"
                        and r["engine"] == "shard4")]
        self.assertEqual(self.run_gate(full_rowset(), gone), 1)

    def test_malformed_json_fails_cleanly(self):
        with tempfile.TemporaryDirectory() as td:
            base = os.path.join(td, "baseline.json")
            cur = os.path.join(td, "current.json")
            with open(base, "w", encoding="utf-8") as f:
                f.write("{not json")
            with open(cur, "w", encoding="utf-8") as f:
                json.dump({"jobs": full_rowset()}, f)
            argv = ["check_perf_trajectory.py", "--baseline", base,
                    "--current", cur]
            with mock.patch.object(sys, "argv", argv), \
                    mock.patch("sys.stdout"):
                self.assertEqual(cpt.main(), 1)


if __name__ == "__main__":
    unittest.main()
