// Table 5 — fairness/interoperability of RR with TCP Reno.
//
// Setup per Section 5: drop-tail dumbbell with a 25-packet buffer, 0.8
// Mbps bottleneck shared by 20 connections. Nineteen background flows
// with infinite data start staggered 0.5 s apart (first at t=0); the
// targeted connection transfers 100 KB from S20 to K20 starting at 4.8 s.
// Four cases by (target, background) TCP implementation; the measured
// quantities are the targeted flow's transfer delay and packet-loss rate.
//
// Expected shape (paper): a Reno target does NOT get hurt when the
// background switches from Reno to RR (Case 2 <= Case 1 in delay/loss —
// RR reduces global synchronization); an RR target among Reno background
// (Case 4) finishes faster with less loss, by using bandwidth Reno leaves
// idle rather than by stealing.
#include "bench_common.hpp"

namespace rrtcp::bench {
namespace {

struct CaseResult {
  double delay_s;
  double loss_rate;
  bool complete;
};

CaseResult run_case_once(app::Variant target, app::Variant background,
                         sim::Time target_start) {
  harness::ScenarioSpec spec;
  spec.name = "table5";
  spec.bottleneck = harness::QueueSpec::drop_tail(25);
  spec.horizon = sim::Time::seconds(200);
  // Nineteen background flows staggered 0.5 s apart, then the target.
  spec.add_flows(19, {.variant = background},
                 sim::Time::milliseconds(500));
  spec.add_flow({.variant = target, .start = target_start, .bytes = 100'000});
  harness::Scenario sc{spec};

  // Per-flow drop accounting at the shared bottleneck.
  std::uint64_t target_drops = 0;
  const net::FlowId target_flow = 20;
  sc.topology().bottleneck().queue().set_drop_callback(
      [&](const net::Packet& p) {
        if (p.flow == target_flow) ++target_drops;
      });

  sc.run();

  tcp::TcpSenderBase& ts = sc.sender(19);
  CaseResult r{};
  r.complete = ts.complete();
  r.delay_s = r.complete
                  ? ts.completion_time().to_seconds() - target_start.to_seconds()
                  : -1.0;
  const auto& st = ts.stats();
  const double offered =
      static_cast<double>(st.data_packets_sent + st.retransmissions);
  r.loss_rate = offered > 0 ? target_drops / offered : 0.0;
  return r;
}

// The 20-flow drop-tail system is chaotic: a single run's transfer delay
// swings by 3x with a 200 ms shift of the target's start. The paper
// reports one run; we average over six staggered starts around the
// paper's 4.8 s so the table reflects the systematic effect, not the
// draw (EXPERIMENTS.md discusses the spread). Each (case, start) pair is
// one sweep job; the averaging happens after the sweep completes.
constexpr double kStarts[] = {4.4, 4.6, 4.8, 5.0, 5.2, 5.6};

CaseResult mean_of(const std::vector<CaseResult>& runs) {
  CaseResult mean{0.0, 0.0, true};
  int n = 0;
  for (const CaseResult& r : runs) {
    if (!r.complete) continue;
    mean.delay_s += r.delay_s;
    mean.loss_rate += r.loss_rate;
    ++n;
  }
  if (n == 0) return {-1.0, 0.0, false};
  mean.delay_s /= n;
  mean.loss_rate /= n;
  return mean;
}

}  // namespace
}  // namespace rrtcp::bench

int main(int argc, char** argv) {
  using namespace rrtcp::bench;
  using rrtcp::app::Variant;
  namespace sim = rrtcp::sim;
  const auto cli = rrtcp::harness::SweepCli::parse(argc, argv);
  if (handle_list_variants(cli)) return 0;

  struct Case {
    int id;
    Variant target;
    Variant background;
  };
  const Case cases[] = {
      {1, Variant::kReno, Variant::kReno},
      {2, Variant::kReno, Variant::kRr},
      {3, Variant::kRr, Variant::kRr},
      {4, Variant::kRr, Variant::kReno},
  };

  const std::size_t n_starts = std::size(kStarts);
  std::vector<rrtcp::harness::SweepJob> jobs;
  std::vector<CaseResult> runs(std::size(cases) * n_starts);
  for (const Case& c : cases) {
    for (double start : kStarts) {
      jobs.push_back(
          {rrtcp::stats::Table::cell("case=%d/start=%.1f", c.id, start),
           [&runs, c, start](const rrtcp::harness::JobContext& ctx) {
             const CaseResult r = run_case_once(c.target, c.background,
                                                sim::Time::seconds(start));
             runs[ctx.index] = r;
             return rrtcp::harness::Record{}
                 .set("case", c.id)
                 .set("target", rrtcp::app::to_string(c.target))
                 .set("background", rrtcp::app::to_string(c.background))
                 .set("start_s", start)
                 .set("complete", r.complete)
                 .set("delay_s", r.delay_s)
                 .set("loss_rate", r.loss_rate);
           }});
    }
  }
  rrtcp::harness::ResultSink sink{jobs.size()};
  const auto timing = rrtcp::harness::run_sweep(jobs, sink, cli.options);

  print_header("Table 5 — fairness of RR competing with TCP Reno",
               "Wang & Shin 2001, Table 5 (targeted 100 KB transfer)");
  rrtcp::stats::Table table{{"case", "target TCP", "background TCPs",
                             "transfer delay (s)", "packet loss rate"}};
  for (std::size_t ci = 0; ci < std::size(cases); ++ci) {
    const Case& c = cases[ci];
    const CaseResult r = mean_of({runs.begin() + ci * n_starts,
                                  runs.begin() + (ci + 1) * n_starts});
    table.add_row(
        {rrtcp::stats::Table::cell("%d", c.id),
         rrtcp::app::to_string(c.target),
         rrtcp::stats::Table::cell("%ss", rrtcp::app::to_string(c.background)),
         r.complete ? rrtcp::stats::Table::cell("%.1f", r.delay_s)
                    : std::string("did not finish"),
         rrtcp::stats::Table::cell("%.0f%%", r.loss_rate * 100)});
  }
  table.print();
  std::printf(
      "\nshape check: switching the BACKGROUND from Reno to RR helps a\n"
      "Reno target (case 2 < case 1 — less synchronization), and an RR\n"
      "target among Renos (case 4) beats the all-Reno baseline by using\n"
      "bandwidth Reno leaves idle. Values are means over six staggered\n"
      "target starts; single runs of this chaotic 20-flow system swing by\n"
      "3x (see EXPERIMENTS.md).\n");
  rrtcp::harness::report("table5_fairness", cli, sink, timing);
  return 0;
}
