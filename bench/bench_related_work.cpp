// Related-work comparison (extends the paper's Section 1 discussion with
// measurements): RR against right-edge recovery and the Lin-Kung scheme,
// plus the paper's baselines, on
//   (a) the burst-loss recovery scenarios of Figure 5, and
//   (b) a pure-reordering path, where dup ACKs are false alarms — the
//       case Lin-Kung optimizes for and aggressive recovery schemes pay
//       for.
#include "bench_common.hpp"

namespace rrtcp::bench {
namespace {

constexpr app::Variant kSet[] = {app::Variant::kNewReno,
                                 app::Variant::kRightEdge,
                                 app::Variant::kLinKung, app::Variant::kSack,
                                 app::Variant::kRr};

struct Out {
  double completion_s;
  std::uint64_t rtx;       // burst tables
  std::uint64_t timeouts;  // burst tables
  std::uint64_t spurious;  // reordering table (receiver dups)
  std::uint64_t fast_rtx;  // reordering table
};

Out run_burst(app::Variant v, int burst) {
  tcp::TcpConfig tcfg;
  tcfg.init_ssthresh_pkts = 10;

  harness::ScenarioSpec spec;
  spec.name = std::string{"related/burst/"} + app::to_string(v);
  spec.bottleneck = harness::QueueSpec::drop_tail(100);
  spec.add_flow({.variant = v, .bytes = 100'000, .tcp = tcfg});
  harness::Scenario sc{spec};

  std::vector<std::pair<net::FlowId, std::uint64_t>> losses;
  for (int i = 0; i < burst; ++i)
    losses.push_back({1, static_cast<std::uint64_t>(30 + i) * 1000});
  sc.topology().bottleneck().set_loss_model(
      std::make_unique<net::ListLossModel>(losses));
  sc.run();

  Out o{};
  o.completion_s = sc.sender(0).completion_time().to_seconds();
  o.rtx = sc.sender(0).stats().retransmissions;
  o.timeouts = sc.sender(0).stats().timeouts;
  return o;
}

Out run_reordering(app::Variant v) {
  tcp::TcpConfig tcfg;
  tcfg.init_ssthresh_pkts = 10;

  harness::ScenarioSpec spec;
  spec.name = std::string{"related/reorder/"} + app::to_string(v);
  spec.bottleneck = harness::QueueSpec::drop_tail(100);
  spec.horizon = sim::Time::seconds(120);
  spec.add_flow({.variant = v, .bytes = 200'000, .tcp = tcfg});
  harness::Scenario sc{spec};
  sc.topology().bottleneck().set_reorder_model(
      std::make_unique<net::ReorderModel>(0.05, sim::Time::milliseconds(300),
                                          11));
  sc.run();

  Out o{};
  o.completion_s = sc.sender(0).completion_time().to_seconds();
  o.spurious = sc.flow(0).receiver->stats().duplicates;
  o.fast_rtx = sc.sender(0).stats().fast_retransmits;
  return o;
}

void print_burst_table(int burst, const std::vector<Out>& outs,
                       std::size_t first) {
  std::printf("\n--- %d-packet burst in one window ---\n", burst);
  stats::Table table{{"scheme", "completion (s)", "rtx", "timeouts"}};
  for (std::size_t i = 0; i < std::size(kSet); ++i) {
    const Out& o = outs[first + i];
    table.add_row(
        {app::to_string(kSet[i]), stats::Table::cell("%.3f", o.completion_s),
         stats::Table::cell("%llu", static_cast<unsigned long long>(o.rtx)),
         stats::Table::cell("%llu", static_cast<unsigned long long>(o.timeouts))});
  }
  table.print();
}

void print_reordering_table(const std::vector<Out>& outs, std::size_t first) {
  std::printf("\n--- no loss, 5%% of data packets delayed by 1.5 RTT ---\n");
  stats::Table table{{"scheme", "completion (s)", "spurious rtx",
                      "fast rtx episodes"}};
  for (std::size_t i = 0; i < std::size(kSet); ++i) {
    const Out& o = outs[first + i];
    table.add_row(
        {app::to_string(kSet[i]), stats::Table::cell("%.3f", o.completion_s),
         stats::Table::cell("%llu", static_cast<unsigned long long>(o.spurious)),
         stats::Table::cell("%llu", static_cast<unsigned long long>(o.fast_rtx))});
  }
  table.print();
}

}  // namespace
}  // namespace rrtcp::bench

int main(int argc, char** argv) {
  using namespace rrtcp::bench;
  namespace app = rrtcp::app;
  const auto cli = rrtcp::harness::SweepCli::parse(argc, argv);
  if (handle_list_variants(cli)) return 0;

  // Grid: burst=3 x schemes, burst=6 x schemes, reordering x schemes.
  // All three scenarios are deterministic given their fixed model seeds,
  // so the per-job sweep seed is unused.
  std::vector<rrtcp::harness::SweepJob> jobs;
  std::vector<Out> outs(3 * std::size(kSet));
  for (int burst : {3, 6}) {
    for (app::Variant v : kSet) {
      jobs.push_back({std::string{"burst="} + std::to_string(burst) +
                          "/scheme=" + app::to_string(v),
                      [v, burst, &outs](const rrtcp::harness::JobContext& ctx) {
                        const Out o = run_burst(v, burst);
                        outs[ctx.index] = o;
                        return rrtcp::harness::Record{}
                            .set("scenario", "burst")
                            .set("burst", burst)
                            .set("scheme", app::to_string(v))
                            .set("completion_s", o.completion_s)
                            .set("rtx", o.rtx)
                            .set("timeouts", o.timeouts);
                      }});
    }
  }
  for (app::Variant v : kSet) {
    jobs.push_back({std::string{"reorder/scheme="} + app::to_string(v),
                    [v, &outs](const rrtcp::harness::JobContext& ctx) {
                      const Out o = run_reordering(v);
                      outs[ctx.index] = o;
                      return rrtcp::harness::Record{}
                          .set("scenario", "reorder")
                          .set("scheme", app::to_string(v))
                          .set("completion_s", o.completion_s)
                          .set("spurious", o.spurious)
                          .set("fast_rtx", o.fast_rtx);
                    }});
  }
  rrtcp::harness::ResultSink sink{jobs.size()};
  const auto timing = rrtcp::harness::run_sweep(jobs, sink, cli.options);

  print_header("Related-work comparison — RR vs right-edge and Lin-Kung",
               "extends paper Section 1 (Balakrishnan et al.; Lin & Kung)");
  print_burst_table(3, outs, 0);
  print_burst_table(6, outs, std::size(kSet));
  print_reordering_table(outs, 2 * std::size(kSet));
  std::printf(
      "\nreading: on bursts, right-edge/Lin-Kung track New-Reno (their\n"
      "one-hole-per-RTT ceiling) while SACK repairs several holes per\n"
      "RTT. Under pure reordering every scheme takes spurious fast\n"
      "retransmits; RR completes fastest (fewest multiplicative\n"
      "back-offs) but pays the most duplicate retransmissions — its\n"
      "partial-ACK boundaries misread late packets as holes, a real\n"
      "sensitivity of the algorithm worth knowing about.\n");
  rrtcp::harness::report("related_work", cli, sink, timing);
  return 0;
}
