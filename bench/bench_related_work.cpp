// Related-work comparison (extends the paper's Section 1 discussion with
// measurements): RR against right-edge recovery and the Lin-Kung scheme,
// plus the paper's baselines, on
//   (a) the burst-loss recovery scenarios of Figure 5, and
//   (b) a pure-reordering path, where dup ACKs are false alarms — the
//       case Lin-Kung optimizes for and aggressive recovery schemes pay
//       for.
#include "bench_common.hpp"

namespace rrtcp::bench {
namespace {

constexpr app::Variant kSet[] = {app::Variant::kNewReno,
                                 app::Variant::kRightEdge,
                                 app::Variant::kLinKung, app::Variant::kSack,
                                 app::Variant::kRr};

void burst_table(int burst) {
  std::printf("\n--- %d-packet burst in one window ---\n", burst);
  stats::Table table{{"scheme", "completion (s)", "rtx", "timeouts"}};
  for (app::Variant v : kSet) {
    sim::Simulator sim;
    net::DumbbellConfig netcfg;
    netcfg.n_flows = 1;
    netcfg.make_bottleneck_queue = [] {
      return std::make_unique<net::DropTailQueue>(100);
    };
    net::DumbbellTopology topo{sim, netcfg};
    std::vector<std::pair<net::FlowId, std::uint64_t>> losses;
    for (int i = 0; i < burst; ++i)
      losses.push_back({1, static_cast<std::uint64_t>(30 + i) * 1000});
    topo.bottleneck().set_loss_model(
        std::make_unique<net::ListLossModel>(losses));
    tcp::TcpConfig tcfg;
    tcfg.init_ssthresh_pkts = 10;
    auto f = make_instrumented_flow(v, sim, topo, 0, sim::Time::zero(),
                                    100'000, tcfg);
    sim.run_until(sim::Time::seconds(60));
    table.add_row(
        {app::to_string(v),
         stats::Table::cell("%.3f",
                            f.flow.sender->completion_time().to_seconds()),
         stats::Table::cell("%llu", (unsigned long long)
                                        f.flow.sender->stats().retransmissions),
         stats::Table::cell("%llu",
                            (unsigned long long)f.flow.sender->stats().timeouts)});
  }
  table.print();
}

void reordering_table() {
  std::printf("\n--- no loss, 5%% of data packets delayed by 1.5 RTT ---\n");
  stats::Table table{{"scheme", "completion (s)", "spurious rtx",
                      "fast rtx episodes"}};
  for (app::Variant v : kSet) {
    sim::Simulator sim;
    net::DumbbellConfig netcfg;
    netcfg.n_flows = 1;
    netcfg.make_bottleneck_queue = [] {
      return std::make_unique<net::DropTailQueue>(100);
    };
    net::DumbbellTopology topo{sim, netcfg};
    topo.bottleneck().set_reorder_model(std::make_unique<net::ReorderModel>(
        0.05, sim::Time::milliseconds(300), 11));
    tcp::TcpConfig tcfg;
    tcfg.init_ssthresh_pkts = 10;
    auto f = make_instrumented_flow(v, sim, topo, 0, sim::Time::zero(),
                                    200'000, tcfg);
    sim.run_until(sim::Time::seconds(120));
    table.add_row(
        {app::to_string(v),
         stats::Table::cell("%.3f",
                            f.flow.sender->completion_time().to_seconds()),
         stats::Table::cell("%llu", (unsigned long long)
                                        f.flow.receiver->stats().duplicates),
         stats::Table::cell("%llu", (unsigned long long)f.flow.sender->stats()
                                        .fast_retransmits)});
  }
  table.print();
}

}  // namespace
}  // namespace rrtcp::bench

int main() {
  using namespace rrtcp::bench;
  print_header("Related-work comparison — RR vs right-edge and Lin-Kung",
               "extends paper Section 1 (Balakrishnan et al.; Lin & Kung)");
  burst_table(3);
  burst_table(6);
  reordering_table();
  std::printf(
      "\nreading: on bursts, right-edge/Lin-Kung track New-Reno (their\n"
      "one-hole-per-RTT ceiling) while SACK repairs several holes per\n"
      "RTT. Under pure reordering every scheme takes spurious fast\n"
      "retransmits; RR completes fastest (fewest multiplicative\n"
      "back-offs) but pays the most duplicate retransmissions — its\n"
      "partial-ACK boundaries misread late packets as holes, a real\n"
      "sensitivity of the algorithm worth knowing about.\n");
  return 0;
}
