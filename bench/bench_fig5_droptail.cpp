// Figure 5 — effective throughput during congestion recovery with
// drop-tail gateways: (left) 3 packet losses, (right) 6 packet losses
// within one window of data. Variants: Tahoe, New-Reno, SACK, RR (Reno
// included as an extra reference row).
//
// Setup per Table 3: 0.8 Mbps / 100 ms bottleneck, 10 Mbps side links,
// 1000 B data packets, 40 B ACKs, drop-tail gateways. The paper shapes
// its k-drop patterns with two background connections and a 8-packet
// buffer; we carve the identical pattern deterministically with a
// ListLossModel at R1 (see EXPERIMENTS.md, substitution S2) so the burst
// size is exact for every variant.
//
// Expected shape (paper): RR >= SACK > Tahoe >= New-Reno at 3 drops; at 6
// drops New-Reno degrades sharply (self-clocking decay) while RR and SACK
// stay close to their 3-drop throughput.
#include "bench_common.hpp"

namespace rrtcp::bench {
namespace {

struct Row {
  const char* name;
  double recovery_s;
  double recovery_kbps;
  double completion_s;
  std::uint64_t rtx;
  std::uint64_t timeouts;
};

harness::Record to_record(app::Variant v, int burst, const Row& r) {
  return harness::Record{}
      .set("variant", app::to_string(v))
      .set("burst", burst)
      .set("recovery_s", r.recovery_s)
      .set("recovery_kbps", r.recovery_kbps)
      .set("completion_s", r.completion_s)
      .set("rtx", r.rtx)
      .set("timeouts", r.timeouts);
}

Row run_one(app::Variant v, int burst) {
  // The paper's first connection has "a limited amount of data": 100 kB.
  // ssthresh 10: slow start hands over to congestion avoidance around 10
  // packets, so the burst lands in a ~12-16 packet window — the regime of
  // the paper's runs (its Fig. 6 shows losses as cwnd passes 16). Without
  // this, slow-start overshoot would put the burst into a ~35 packet
  // window and soften every variant's recovery problem.
  tcp::TcpConfig tcfg;
  tcfg.init_ssthresh_pkts = 10;

  harness::ScenarioSpec spec;  // Table 3 topology values are the defaults
  spec.name = std::string{"fig5/"} + app::to_string(v);
  // Large enough that the only drops are the injected pattern.
  spec.bottleneck = harness::QueueSpec::drop_tail(100);
  spec.add_flow({.variant = v, .bytes = 100'000, .tcp = tcfg});
  harness::Scenario sc{spec};

  // The k-burst: packets 30..30+k-1 of flow 1 vanish at R1.
  std::vector<std::pair<net::FlowId, std::uint64_t>> losses;
  for (int i = 0; i < burst; ++i)
    losses.push_back({1, static_cast<std::uint64_t>(30 + i) * 1000});
  sc.topology().bottleneck().set_loss_model(
      std::make_unique<net::ListLossModel>(losses));

  // Receiver-side goodput samples: (time, unique bytes received). The
  // paper's metric credits new data *delivered* during recovery even
  // though the cumulative ACK only covers it at the end — this is exactly
  // the utilization RR is designed to preserve.
  std::vector<std::pair<sim::Time, std::uint64_t>> delivered;
  sc.flow(0).receiver->set_progress_callback(
      [&](sim::Time t, std::uint64_t bytes) { delivered.emplace_back(t, bytes); });
  sc.run();

  Row r{};
  r.name = app::to_string(v);
  // Recovery window, defined uniformly across variants: from the first
  // retransmission until every byte outstanding at that moment has been
  // cumulatively ACKed. (Tahoe has no distinct "recovery" phase — its
  // recovery IS a slow start — so a phase-based window would not compare.)
  sim::Time t0 = sim::Time::infinity();
  std::uint64_t outstanding_pkts = 0;
  for (const auto& s : sc.instruments(0).seq->sends()) {
    if (s.rtx) {
      t0 = s.t;
      break;
    }
    outstanding_pkts = std::max(outstanding_pkts, s.seq_pkts + 1);
  }
  const sim::Time t1 = sc.instruments(0).meter->time_to_ack(outstanding_pkts * 1000);
  r.recovery_s = t1.to_seconds() - t0.to_seconds();
  // Goodput over (t0, t1]: unique bytes that reached the receiver.
  std::uint64_t at_t0 = 0, at_t1 = 0;
  for (const auto& [t, bytes] : delivered) {
    if (t <= t0) at_t0 = bytes;
    if (t <= t1) at_t1 = bytes;
  }
  r.recovery_kbps = (at_t1 - at_t0) * 8.0 / (t1 - t0).to_seconds() / 1e3;
  r.completion_s = sc.sender(0).completion_time().to_seconds();
  r.rtx = sc.sender(0).stats().retransmissions;
  r.timeouts = sc.sender(0).stats().timeouts;
  return r;
}

void print_table(int burst, const std::vector<Row>& rows) {
  std::printf("\n--- %d packet losses within a window of data ---\n", burst);
  stats::Table table{{"variant", "recovery period (s)",
                      "eff. throughput in recovery (kbit/s)",
                      "total transfer (s)", "rtx", "timeouts"}};
  for (const Row& r : rows) {
    table.add_row({r.name, stats::Table::cell("%.3f", r.recovery_s),
                   stats::Table::cell("%.1f", r.recovery_kbps),
                   stats::Table::cell("%.3f", r.completion_s),
                   stats::Table::cell("%llu", static_cast<unsigned long long>(r.rtx)),
                   stats::Table::cell("%llu", static_cast<unsigned long long>(r.timeouts))});
  }
  table.print();
}

}  // namespace
}  // namespace rrtcp::bench

int main(int argc, char** argv) {
  using namespace rrtcp::bench;
  namespace app = rrtcp::app;
  const auto cli = rrtcp::harness::SweepCli::parse(argc, argv);
  if (handle_list_variants(cli)) return 0;

  // The grid: burst size x variant. Scenarios are fully deterministic
  // (injected loss lists, no RNG), so the per-job seed is unused.
  const int bursts[] = {3, 6};
  std::vector<rrtcp::harness::SweepJob> jobs;
  std::vector<std::pair<int, app::Variant>> grid;
  std::vector<Row> rows;
  for (int burst : bursts)
    for (app::Variant v : app::kAllVariants) grid.emplace_back(burst, v);
  rows.resize(grid.size());
  for (const auto& [burst, v] : grid) {
    jobs.push_back({std::string{"burst="} + std::to_string(burst) +
                        "/variant=" + app::to_string(v),
                    [&rows, burst = burst,
                     v = v](const rrtcp::harness::JobContext& ctx) {
                      rows[ctx.index] = run_one(v, burst);
                      return to_record(v, burst, rows[ctx.index]);
                    }});
  }
  rrtcp::harness::ResultSink sink{jobs.size()};
  const auto timing = rrtcp::harness::run_sweep(jobs, sink, cli.options);

  print_header("Figure 5 — recovery throughput under drop-tail gateways",
               "Wang & Shin 2001, Fig. 5 (left: 3 drops, right: 6 drops)");
  const std::size_t per_table = std::size(app::kAllVariants);
  print_table(3, {rows.begin(), rows.begin() + per_table});
  print_table(6, {rows.begin() + per_table, rows.end()});
  std::printf(
      "\nshape check: RR/SACK sustain recovery throughput and avoid\n"
      "timeouts at both burst sizes; Reno halves repeatedly or times out;\n"
      "Tahoe survives via go-back-N at the cost of extra retransmissions.\n");
  rrtcp::harness::report("fig5_droptail", cli, sink, timing);
  return 0;
}
