// Microbenchmark / perf-regression harness for the simulator substrate.
//
// Self-contained (no external benchmark framework): each benchmark times a
// fixed workload with std::chrono and counts heap traffic through this
// binary's global operator new/delete overrides. Two engines run the same
// forwarding-shaped workloads:
//
//   legacy — the pre-pooling scheduler preserved verbatim in
//            sim/legacy_scheduler.hpp (shared_ptr event states +
//            std::function callbacks);
//   pooled — the production Simulator (chunked slot pool, SmallFn inline
//            captures, 4-ary heap).
//
// The headline row is `forward`: a link-delivery-shaped event chain whose
// callbacks capture a full 1000 B Packet — the exact shape of the hot
// path in src/net/link.cpp. The pooled engine's speedup over legacy and
// both raw events/sec numbers land in BENCH_micro.json, the baseline
// artifact EXPERIMENTS.md §"Performance baselines" explains how to record
// and compare.
//
// Flags:
//   --quick        ~10x smaller workloads (CI smoke)
//   --repeat=N     best-of-N timing per benchmark (default 3)
//   --json=PATH    where to write the JSON (default BENCH_micro.json)
//   --no-json      skip the artifact
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "app/sender_factory.hpp"
#include "env/sim_env.hpp"
#include "harness/result_sink.hpp"
#include "harness/scenario.hpp"
#include "net/drop_tail.hpp"
#include "net/node.hpp"
#include "net/red.hpp"
#include "pdes/flow_arena.hpp"
#include "pdes/sharded.hpp"
#include "sim/legacy_scheduler.hpp"
#include "sim/simulator.hpp"
#include "stats/table.hpp"
#include "tcp/receiver.hpp"
#include "topo/presets.hpp"

// ---------------------------------------------------------------------------
// Global allocation counters. Every heap round-trip in this process passes
// through here; benchmarks snapshot the counter around their measured
// region, so allocs/event is exact, not sampled.
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace rrtcp::bench {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

net::Packet bench_packet(std::uint64_t seq) {
  net::Packet p;
  p.flow = 1;
  p.type = net::PacketType::kData;
  p.size_bytes = 1000;
  p.tcp.seq = seq;
  p.tcp.payload = 1000;
  return p;
}

struct Measure {
  double wall_s = 0.0;
  std::uint64_t units = 0;   // events or packets
  std::uint64_t allocs = 0;  // heap round-trips in the measured region
  double per_sec() const { return wall_s > 0 ? units / wall_s : 0.0; }
  double allocs_per_unit() const {
    return units > 0 ? static_cast<double>(allocs) / units : 0.0;
  }
};

// Keeps the better (higher-throughput) of two attempts.
void keep_best(Measure& best, const Measure& m) {
  if (best.units == 0 || m.per_sec() > best.per_sec()) best = m;
}

// ---------------------------------------------------------------------------
// forward: link-delivery-shaped event chains. Each callback captures a
// Packet by value and schedules the next hop — what Link::try_transmit
// does per packet. `chains` concurrent chains share one budget; the
// warmup pass sizes the event pool / heap so the measured pass sees the
// steady state.
template <typename SimT>
struct ForwardChain {
  SimT* sim;
  std::uint64_t remaining = 0;

  void hop(net::Packet pkt) {
    // Per-hop delays vary as real serialization/propagation times do;
    // lockstep identical timestamps would exercise only the FIFO
    // tie-break, which real forwarding almost never hits.
    const auto jitter = static_cast<std::int64_t>(++pkt.tcp.seq * 7919 % 997);
    sim->schedule_in(sim::Time::microseconds(10) + sim::Time::nanoseconds(jitter),
                     [this, pkt]() mutable {
                       if (remaining == 0) return;
                       --remaining;
                       hop(pkt);
                     });
  }
};

template <typename SimT>
Measure run_forward(std::uint64_t warmup_events, std::uint64_t events,
                    int chains, int repeat) {
  Measure best;
  for (int r = 0; r < repeat; ++r) {
    SimT sim;
    ForwardChain<SimT> chain{&sim};
    auto pump = [&](std::uint64_t n) {
      chain.remaining = n;
      for (int c = 0; c < chains; ++c) chain.hop(bench_packet(c));
      sim.run();
    };
    pump(warmup_events);

    const std::uint64_t events0 = sim.events_executed();
    const std::uint64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
    const auto t0 = Clock::now();
    pump(events);
    Measure m;
    m.wall_s = seconds_since(t0);
    m.units = sim.events_executed() - events0;
    m.allocs = g_allocs.load(std::memory_order_relaxed) - allocs0;
    keep_best(best, m);
  }
  return best;
}

// ---------------------------------------------------------------------------
// churn: schedule a batch, cancel every other handle, drain. Exercises the
// handle/cancellation path both engines share. Delays are relative
// (schedule_in) so the identical pattern can run twice per repeat: once
// unmeasured to grow the event pool / heap / wheel to their working set,
// then the measured steady-state pass — allocs/event is a real steady-
// state number, not pool-growth noise. `scale_delay` spreads the batch
// over near-horizon (heap) or RTO-like far-future (wheel) instants.
template <typename SimT>
Measure run_churn(std::uint64_t n, sim::Time (*delay_of)(std::uint64_t),
                  int repeat) {
  Measure best;
  std::vector<decltype(std::declval<SimT&>().schedule_at(
      sim::Time::zero(), []() {}))> handles;
  for (int r = 0; r < repeat; ++r) {
    SimT sim;
    handles.clear();
    handles.reserve(n);
    auto pass = [&] {
      handles.clear();
      for (std::uint64_t i = 0; i < n; ++i)
        handles.push_back(sim.schedule_in(delay_of(i), []() {}));
      for (std::uint64_t i = 0; i < n; i += 2) handles[i].cancel();
      sim.run();
    };
    pass();  // warm: pool chunks, heap/wheel arrays, handle vector
    const std::uint64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
    const auto t0 = Clock::now();
    pass();
    Measure m;
    m.wall_s = seconds_since(t0);
    m.units = n;  // scheduled events (half execute, half cancel)
    m.allocs = g_allocs.load(std::memory_order_relaxed) - allocs0;
    keep_best(best, m);
  }
  return best;
}

sim::Time churn_near_delay(std::uint64_t i) {
  return sim::Time::microseconds(static_cast<std::int64_t>(i % 997));
}

// RTO-scale arming: 500 ms .. 4 s out, the band src/tcp's retransmission
// timers live in. On the pooled engine these land in the timer wheel and
// the cancelled half never touches the heap at all.
sim::Time churn_far_delay(std::uint64_t i) {
  return sim::Time::milliseconds(500 + static_cast<std::int64_t>(i % 29) * 125);
}

// ---------------------------------------------------------------------------
// reschedule: the RTO re-arm storm. A fixed population of pending timers is
// repeatedly moved to a new expiry — what TcpSenderBase::restart_rto_timer()
// does on every transmission. The pooled engine takes reschedule_at (slot
// and stored callable reused); legacy emulates with cancel + schedule, which
// is also what the pooled engine did before reschedule_at existed.
template <typename SimT>
Measure run_reschedule(std::uint64_t rearms, int repeat) {
  constexpr std::uint64_t kFlows = 64;
  Measure best;
  for (int r = 0; r < repeat; ++r) {
    SimT sim;
    using Handle = decltype(sim.schedule_at(sim::Time::zero(), []() {}));
    std::vector<Handle> timers(kFlows);
    auto rearm = [&](std::uint64_t flow, std::uint64_t round) {
      // ~1 s RTO with per-flow jitter so expiries spread across buckets.
      const auto rto = sim::Time::seconds(1) +
                       sim::Time::microseconds(
                           static_cast<std::int64_t>((flow * 31 + round) % 997));
      Handle& h = timers[flow];
      if constexpr (requires { sim.reschedule_in(h, rto); }) {
        if (h.pending()) {
          h = sim.reschedule_in(h, rto);
          return;
        }
      } else {
        h.cancel();
      }
      h = sim.schedule_in(rto, []() {});
    };
    auto pass = [&](std::uint64_t rounds) {
      for (std::uint64_t round = 0; round < rounds; ++round) {
        for (std::uint64_t f = 0; f < kFlows; ++f) rearm(f, round);
        // Advance a little between rounds: arms happen at moving "now",
        // as ACK-clocked transmissions do.
        sim.run_until(sim.now() + sim::Time::microseconds(100));
      }
    };
    pass(2);  // warm pool/heap/wheel
    const std::uint64_t rounds = rearms / kFlows;
    const std::uint64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
    const auto t0 = Clock::now();
    pass(rounds);
    Measure m;
    m.wall_s = seconds_since(t0);
    m.units = rounds * kFlows;
    m.allocs = g_allocs.load(std::memory_order_relaxed) - allocs0;
    keep_best(best, m);
    for (auto& h : timers) h.cancel();
    sim.run();
  }
  return best;
}

// ---------------------------------------------------------------------------
// route_forward: the per-hop routing decision in isolation — a gateway's
// FlatTable32 route lookup plus the virtual egress dispatch, no event
// loop. The table carries 64 destinations (a sweep-scale topology), and
// every 7th packet misses the table to exercise the default-route path a
// real edge gateway takes for off-mesh traffic. units = hops; the steady
// state must never touch the allocator.
struct CountingHandler final : net::PacketHandler {
  std::uint64_t delivered = 0;
  void send(net::Packet) override { ++delivered; }
};

Measure run_route_forward(std::uint64_t hops, int repeat) {
  constexpr std::uint32_t kDests = 64;
  constexpr net::NodeId kOffMesh = 5000;  // not in the table -> default route
  Measure best;
  for (int r = 0; r < repeat; ++r) {
    net::Node gw{1000};
    std::vector<CountingHandler> sinks(kDests);
    for (std::uint32_t d = 0; d < kDests; ++d) gw.add_route(d + 1, &sinks[d]);
    CountingHandler fallback;
    gw.set_default_route(&fallback);

    net::Packet p = bench_packet(0);
    auto hop = [&](std::uint64_t i) {
      // Scramble the destination so successive probes don't stay pinned
      // to one slot run; the multiplier is Knuth's 2^32 golden-ratio hash.
      p.dst = i % 7 == 6
                  ? kOffMesh
                  : 1 + static_cast<net::NodeId>((i * 2654435761u) % kDests);
      gw.receive(p);
    };
    for (std::uint64_t i = 0; i < 4096; ++i) hop(i);  // warm table + caches

    const std::uint64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < hops; ++i) hop(i);
    Measure m;
    m.wall_s = seconds_since(t0);
    m.units = hops;
    m.allocs = g_allocs.load(std::memory_order_relaxed) - allocs0;
    keep_best(best, m);
  }
  return best;
}

// ---------------------------------------------------------------------------
// Queue disciplines: enqueue/dequeue round-trips through a warm queue.
// After the warmup cycle fills the PacketRing to its working depth, the
// steady state should touch the allocator zero times per packet.
template <typename MakeQueue>
Measure run_queue(MakeQueue make_queue, std::uint64_t ops, int repeat) {
  Measure best;
  for (int r = 0; r < repeat; ++r) {
    auto q = make_queue();
    std::uint64_t seq = 0;
    for (int i = 0; i < 64; ++i) {  // warm the ring past its depth
      q->enqueue(bench_packet(seq++));
      (void)q->dequeue();
    }
    const std::uint64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < ops; ++i) {
      q->enqueue(bench_packet(seq++));
      (void)q->dequeue();
    }
    Measure m;
    m.wall_s = seconds_since(t0);
    m.units = ops;
    m.allocs = g_allocs.load(std::memory_order_relaxed) - allocs0;
    keep_best(best, m);
  }
  return best;
}

// ---------------------------------------------------------------------------
// Whole-stack rate through the declarative scenario API: RR flow(s)
// saturating the paper's dumbbell, no tracers, no audit. units = packets
// delivered at the bottleneck; events/sec reported alongside.
struct EndToEnd {
  Measure packets;
  double events_per_sec = 0.0;
  double pool_slots = 0.0;
  double callback_heap_fallbacks = 0.0;
  // Setup-phase vs steady-state allocation split: connection setup, pool
  // growth, scoreboard/stat vector sizing all happen early, so the first
  // quarter of the horizon absorbs them; the remaining three quarters are
  // what the 0-allocs/packet claim is measured on.
  std::uint64_t setup_allocs = 0;
  std::uint64_t steady_allocs = 0;
  std::uint64_t steady_packets = 0;
  double steady_allocs_per_packet() const {
    return steady_packets > 0
               ? static_cast<double>(steady_allocs) / steady_packets
               : 0.0;
  }
};

EndToEnd run_end_to_end(int n_flows, sim::Time horizon, int repeat) {
  EndToEnd best;
  for (int r = 0; r < repeat; ++r) {
    harness::ScenarioSpec spec;
    spec.name = "bench_micro/e2e";
    spec.horizon = horizon;
    spec.instruments.tracers = false;
    spec.instruments.audit = harness::AuditMode::kNone;
    spec.bottleneck = harness::QueueSpec::drop_tail(8);
    spec.add_flows(n_flows, {.variant = app::Variant::kRr});
    harness::Scenario sc{spec};

    const std::uint64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
    const auto t0 = Clock::now();
    sc.run_until(horizon / 4);
    const std::uint64_t allocs_mid =
        g_allocs.load(std::memory_order_relaxed);
    const std::uint64_t pkts_mid =
        sc.topology().bottleneck().packets_delivered();
    sc.run();
    Measure m;
    m.wall_s = seconds_since(t0);
    m.units = sc.topology().bottleneck().packets_delivered();
    m.allocs = g_allocs.load(std::memory_order_relaxed) - allocs0;
    if (best.packets.units == 0 ||
        m.per_sec() > best.packets.per_sec()) {
      best.packets = m;
      best.events_per_sec =
          m.wall_s > 0 ? sc.sim().events_executed() / m.wall_s : 0.0;
      best.pool_slots = static_cast<double>(sc.sim().event_pool_slots());
      best.callback_heap_fallbacks =
          static_cast<double>(sc.sim().callback_heap_fallbacks());
      best.setup_allocs = allocs_mid - allocs0;
      best.steady_allocs =
          g_allocs.load(std::memory_order_relaxed) - allocs_mid;
      best.steady_packets = m.units - pkts_mid;
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// flow_arena_churn: building and tearing down per-flow endpoint state at
// scale — each flow's concrete sender (footprints straight from the
// SenderFactory registry's arena vtable), its receiver and the two
// environment seams. Engine "heap" pays one operator new/delete per object
// (the unique_ptr soup the plain Scenario builds); engine "arena" bumps
// through one pre-faulted pdes::FlowArena block and must stay at exactly
// 0 allocs/object in the measured region — the steady-state claim in
// flow_arena.hpp, enforced by scripts/check_perf_trajectory.py.
std::vector<std::pair<std::size_t, std::size_t>> flow_footprints(int flows) {
  static constexpr app::Variant kMix[] = {
      app::Variant::kRr, app::Variant::kNewReno, app::Variant::kSack,
      app::Variant::kReno};
  const app::SenderFactory& reg = app::SenderFactory::instance();
  std::vector<std::pair<std::size_t, std::size_t>> fp;
  fp.reserve(static_cast<std::size_t>(flows) * 4);
  for (int i = 0; i < flows; ++i) {
    const app::SenderFactory::Entry& e = reg.at(kMix[i % 4]);
    fp.emplace_back(e.size, e.align);
    fp.emplace_back(sizeof(tcp::TcpReceiver), alignof(tcp::TcpReceiver));
    fp.emplace_back(sizeof(env::SimEnvironment), alignof(env::SimEnvironment));
    fp.emplace_back(sizeof(env::SimEnvironment), alignof(env::SimEnvironment));
  }
  return fp;
}

Measure run_arena_churn(bool use_arena, int flows, int repeat) {
  const auto fp = flow_footprints(flows);
  std::size_t total = 0;
  for (const auto& [size, align] : fp) total += size + align;
  Measure best;
  for (int r = 0; r < repeat; ++r) {
    Measure m;
    if (use_arena) {
      // One block holds the whole fleet; the pre-fault allocation maps it
      // before the snapshot so the measured bump pointer never calls new.
      pdes::FlowArena arena{total + 64};
      arena.allocate(8, 8);
      const std::uint64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
      const auto t0 = Clock::now();
      for (const auto& [size, align] : fp) arena.allocate(size, align);
      arena.reset();  // teardown frees the block; it never allocates
      m.wall_s = seconds_since(t0);
      m.allocs = g_allocs.load(std::memory_order_relaxed) - allocs0;
    } else {
      std::vector<void*> ptrs;
      ptrs.reserve(fp.size());
      for (const auto& f : fp) ptrs.push_back(::operator new(f.first));
      for (void* p : ptrs) ::operator delete(p);  // warm the allocator
      ptrs.clear();
      const std::uint64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
      const auto t0 = Clock::now();
      for (const auto& f : fp) ptrs.push_back(::operator new(f.first));
      for (void* p : ptrs) ::operator delete(p);
      ptrs.clear();
      m.wall_s = seconds_since(t0);
      m.allocs = g_allocs.load(std::memory_order_relaxed) - allocs0;
    }
    m.units = fp.size();
    keep_best(best, m);
  }
  return best;
}

// ---------------------------------------------------------------------------
// shard_scaling: the sharded conservative-PDES engine against the single
// engine on the same multi-dumbbell scenario (graph-mode FlowSet, RR
// senders saturating the shared bottleneck). units = events executed
// across all shards. The speedup is whatever the machine's cores can fund
// — on a 1-core box the barrier overhead makes it < 1x, and the row
// reports that honestly (hardware_threads lands in the JSON); neither
// direction is ratio-gated.
struct ShardScaling {
  Measure m;
  std::uint64_t rounds = 0;
  std::uint64_t cross_shard_packets = 0;
};

harness::ScenarioSpec shard_bench_spec(int shards, int n_flows,
                                       sim::Time horizon) {
  topo::MultiDumbbellConfig mdc;
  mdc.n_senders = n_flows;
  mdc.m_receivers = n_flows;
  mdc.side_delay = sim::Time::milliseconds(5);  // cuttable access links
  mdc.bottleneck_delay = sim::Time::milliseconds(20);
  // A fat pipe and a deep queue: the default 800 kbps dumbbell would park
  // the whole fleet in RTO backoff and leave nothing to measure.
  mdc.bottleneck_bps = 100'000'000;
  mdc.side_bps = 1'000'000'000;
  mdc.queue_packets = 128;
  const topo::MultiDumbbellLayout md = topo::multi_dumbbell(mdc);

  harness::ScenarioSpec spec;
  spec.name = "bench_micro/shard";
  spec.graph = md.spec;
  spec.shard_count = shards;
  spec.horizon = horizon;
  spec.instruments.tracers = false;
  spec.instruments.audit = harness::AuditMode::kNone;
  spec.instruments.watchdog = false;
  harness::FlowSet set;
  set.count = n_flows;
  set.proto.variant = app::Variant::kRr;
  set.proto.bytes = 10'000'000;  // backlog outlives the horizon: always busy
  set.proto.src_node = md.senders[0];
  set.proto.dst_node = md.receivers[0];
  set.stagger = sim::Time::milliseconds(40);
  set.src_step = 1;
  set.dst_step = 1;
  spec.add_flow_set(set);
  return spec;
}

ShardScaling run_shard_scaling(int shards, int n_flows, sim::Time horizon,
                               int repeat) {
  ShardScaling best;
  for (int r = 0; r < repeat; ++r) {
    pdes::ShardedScenario sc{shard_bench_spec(shards, n_flows, horizon)};
    const std::uint64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
    const auto t0 = Clock::now();
    const std::uint64_t events = sc.run();
    Measure m;
    m.wall_s = seconds_since(t0);
    m.units = events;
    m.allocs = g_allocs.load(std::memory_order_relaxed) - allocs0;
    if (best.m.units == 0 || m.per_sec() > best.m.per_sec()) {
      best.m = m;
      best.rounds = sc.rounds();
      best.cross_shard_packets = sc.cross_shard_packets();
    }
  }
  return best;
}

harness::Record row(const char* bench, const char* engine, const Measure& m,
                    const char* unit) {
  harness::Record rec;
  rec.set("bench", bench);
  rec.set("engine", engine);
  rec.set("unit", unit);
  rec.set(std::string{unit} + "_per_sec", m.per_sec());
  rec.set("wall_s", m.wall_s);
  rec.set("units", m.units);
  rec.set("allocs", m.allocs);
  rec.set(std::string{"allocs_per_"} + unit, m.allocs_per_unit());
  return rec;
}

}  // namespace
}  // namespace rrtcp::bench

int main(int argc, char** argv) {
  using namespace rrtcp;
  using namespace rrtcp::bench;

  bool quick = false;
  bool write_json = true;
  int repeat = 3;
  std::string json_path = "BENCH_micro.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--repeat=", 9) == 0) {
      repeat = std::atoi(argv[i] + 9);
      if (repeat < 1) repeat = 1;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--no-json") == 0) {
      write_json = false;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--repeat=N] [--json=PATH] "
                   "[--no-json]\n",
                   argv[0]);
      return 2;
    }
  }

  const std::uint64_t fwd_events = quick ? 100'000 : 1'000'000;
  const std::uint64_t fwd_warmup = fwd_events / 10;
  const std::uint64_t churn_n = quick ? 20'000 : 200'000;
  const std::uint64_t queue_ops = quick ? 200'000 : 2'000'000;
  const sim::Time e2e_horizon = sim::Time::seconds(quick ? 5 : 20);
  const int chains = 128;  // ~a ten-flow sweep's worth of in-flight events

  // The headline comparison: identical forwarding workload, both engines.
  const Measure fwd_legacy =
      run_forward<sim::LegacySimulator>(fwd_warmup, fwd_events, chains, repeat);
  const Measure fwd_pooled =
      run_forward<sim::Simulator>(fwd_warmup, fwd_events, chains, repeat);
  const double speedup =
      fwd_legacy.per_sec() > 0 ? fwd_pooled.per_sec() / fwd_legacy.per_sec()
                               : 0.0;

  const Measure churn_legacy =
      run_churn<sim::LegacySimulator>(churn_n, churn_near_delay, repeat);
  const Measure churn_pooled =
      run_churn<sim::Simulator>(churn_n, churn_near_delay, repeat);
  const Measure churn_far_legacy =
      run_churn<sim::LegacySimulator>(churn_n, churn_far_delay, repeat);
  const Measure churn_far_pooled =
      run_churn<sim::Simulator>(churn_n, churn_far_delay, repeat);
  const Measure resched_legacy =
      run_reschedule<sim::LegacySimulator>(churn_n, repeat);
  const Measure resched_pooled =
      run_reschedule<sim::Simulator>(churn_n, repeat);

  const Measure droptail = run_queue(
      [] { return std::make_unique<net::DropTailQueue>(64); }, queue_ops,
      repeat);
  // RED needs a simulator for its idle-time clock; keep it outside the
  // measured region.
  sim::Simulator red_sim;
  const Measure red = run_queue(
      [&red_sim] {
        net::RedConfig rc;
        rc.buffer_packets = 64;
        rc.max_th = 48.0;  // keep the EWMA below the drop region
        return std::make_unique<net::RedQueue>(red_sim, rc);
      },
      queue_ops, repeat);

  const Measure route_fwd = run_route_forward(queue_ops, repeat);

  const EndToEnd e2e_one = run_end_to_end(1, e2e_horizon, repeat);
  const EndToEnd e2e_ten = run_end_to_end(10, e2e_horizon, repeat);

  const int arena_flows = quick ? 1'000 : 10'000;
  const Measure arena_heap = run_arena_churn(false, arena_flows, repeat);
  const Measure arena_pool = run_arena_churn(true, arena_flows, repeat);

  const int shard_flows = quick ? 8 : 32;
  const sim::Time shard_horizon = sim::Time::seconds(quick ? 3 : 8);
  const ShardScaling shard_single =
      run_shard_scaling(1, shard_flows, shard_horizon, repeat);
  const ShardScaling shard_multi =
      run_shard_scaling(4, shard_flows, shard_horizon, repeat);
  const double shard_speedup =
      shard_single.m.per_sec() > 0
          ? shard_multi.m.per_sec() / shard_single.m.per_sec()
          : 0.0;

  // ------------------------------------------------------------------ report
  stats::Table table{{"benchmark", "engine", "rate", "allocs/unit"}};
  auto add = [&table](const char* b, const char* e, const Measure& m,
                      const char* unit) {
    table.add_row({b, e, stats::Table::cell("%.3g %s/s", m.per_sec(), unit),
                   stats::Table::cell("%.4f", m.allocs_per_unit())});
  };
  add("forward", "legacy", fwd_legacy, "events");
  add("forward", "pooled", fwd_pooled, "events");
  add("churn", "legacy", churn_legacy, "events");
  add("churn", "pooled", churn_pooled, "events");
  add("churn_far", "legacy", churn_far_legacy, "events");
  add("churn_far", "pooled", churn_far_pooled, "events");
  add("reschedule", "legacy", resched_legacy, "rearms");
  add("reschedule", "pooled", resched_pooled, "rearms");
  add("droptail_queue", "ring", droptail, "packets");
  add("red_queue", "ring", red, "packets");
  add("route_forward", "flat_table", route_fwd, "hops");
  add("e2e_1flow", "pooled", e2e_one.packets, "packets");
  add("e2e_10flow_rr", "pooled", e2e_ten.packets, "packets");
  add("flow_arena_churn", "heap", arena_heap, "objects");
  add("flow_arena_churn", "arena", arena_pool, "objects");
  add("shard_scaling", "single", shard_single.m, "events");
  add("shard_scaling", "shard4", shard_multi.m, "events");
  table.print();
  std::printf(
      "\nforward speedup (pooled vs legacy): %.2fx"
      "   [%.3g -> %.3g events/s]\n",
      speedup, fwd_legacy.per_sec(), fwd_pooled.per_sec());
  std::printf(
      "churn speedup (pooled vs legacy): near %.2fx, far %.2fx, "
      "reschedule %.2fx\n",
      churn_legacy.per_sec() > 0
          ? churn_pooled.per_sec() / churn_legacy.per_sec()
          : 0.0,
      churn_far_legacy.per_sec() > 0
          ? churn_far_pooled.per_sec() / churn_far_legacy.per_sec()
          : 0.0,
      resched_legacy.per_sec() > 0
          ? resched_pooled.per_sec() / resched_legacy.per_sec()
          : 0.0);
  std::printf(
      "e2e events/s: %.3g (1 flow), pool slots %g, heap-fallback "
      "callbacks %g\n",
      e2e_one.events_per_sec, e2e_one.pool_slots,
      e2e_one.callback_heap_fallbacks);
  std::printf(
      "e2e allocs: 1-flow setup %llu, steady %.4f/packet; 10-flow setup "
      "%llu, steady %.4f/packet\n",
      static_cast<unsigned long long>(e2e_one.setup_allocs),
      e2e_one.steady_allocs_per_packet(),
      static_cast<unsigned long long>(e2e_ten.setup_allocs),
      e2e_ten.steady_allocs_per_packet());
  std::printf(
      "flow_arena_churn speedup (arena vs heap): %.2fx, arena "
      "allocs/object %.4f\n",
      arena_heap.per_sec() > 0 ? arena_pool.per_sec() / arena_heap.per_sec()
                               : 0.0,
      arena_pool.allocs_per_unit());
  std::printf(
      "shard_scaling (4 shards vs single, %d flows): %.2fx on %u hardware "
      "thread(s); %llu rounds, %llu cross-shard packets\n",
      shard_flows, shard_speedup, std::thread::hardware_concurrency(),
      static_cast<unsigned long long>(shard_multi.rounds),
      static_cast<unsigned long long>(shard_multi.cross_shard_packets));

  if (write_json) {
    harness::ResultSink sink{17};
    auto put = [&sink](std::size_t i, harness::Record rec) {
      sink.submit(i, std::move(rec), 0.0);
    };
    put(0, row("forward", "legacy", fwd_legacy, "events"));
    put(1, row("forward", "pooled", fwd_pooled, "events")
               .set("speedup_vs_legacy", speedup));
    put(2, row("churn", "legacy", churn_legacy, "events"));
    put(3, row("churn", "pooled", churn_pooled, "events"));
    put(4, row("churn_far", "legacy", churn_far_legacy, "events"));
    put(5, row("churn_far", "pooled", churn_far_pooled, "events"));
    put(6, row("reschedule", "legacy", resched_legacy, "rearms"));
    put(7, row("reschedule", "pooled", resched_pooled, "rearms"));
    put(8, row("droptail_queue", "ring", droptail, "packets"));
    put(9, row("red_queue", "ring", red, "packets"));
    put(10, row("route_forward", "flat_table", route_fwd, "hops"));
    put(11, row("e2e_1flow", "pooled", e2e_one.packets, "packets")
                .set("events_per_sec", e2e_one.events_per_sec)
                .set("event_pool_slots", e2e_one.pool_slots)
                .set("callback_heap_fallbacks",
                     e2e_one.callback_heap_fallbacks)
                .set("setup_allocs", e2e_one.setup_allocs)
                .set("steady_allocs_per_packet",
                     e2e_one.steady_allocs_per_packet()));
    put(12, row("e2e_10flow_rr", "pooled", e2e_ten.packets, "packets")
                .set("events_per_sec", e2e_ten.events_per_sec)
                .set("setup_allocs", e2e_ten.setup_allocs)
                .set("steady_allocs_per_packet",
                     e2e_ten.steady_allocs_per_packet()));
    put(13, row("flow_arena_churn", "heap", arena_heap, "objects"));
    put(14, row("flow_arena_churn", "arena", arena_pool, "objects")
                .set("speedup_vs_heap",
                     arena_heap.per_sec() > 0
                         ? arena_pool.per_sec() / arena_heap.per_sec()
                         : 0.0));
    put(15, row("shard_scaling", "single", shard_single.m, "events"));
    put(16, row("shard_scaling", "shard4", shard_multi.m, "events")
                .set("speedup_vs_single", shard_speedup)
                .set("rounds", shard_multi.rounds)
                .set("cross_shard_packets", shard_multi.cross_shard_packets)
                .set("hardware_threads",
                     static_cast<int>(std::thread::hardware_concurrency())));
    harness::write_file(json_path, sink.to_json("bench_micro", 0));
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
