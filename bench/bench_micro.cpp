// Microbenchmarks of the simulator substrate (google-benchmark): event
// scheduling, queue disciplines, RNG, and whole-stack simulation rate.
// These quantify the cost of the infrastructure the experiments run on —
// useful when scaling to many flows or long horizons.
#include <benchmark/benchmark.h>

#include "app/flow_factory.hpp"
#include "app/ftp.hpp"
#include "net/drop_tail.hpp"
#include "net/dumbbell.hpp"
#include "net/red.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace rrtcp;

void BM_SchedulerScheduleAndRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < n; ++i)
      sim.schedule_at(sim::Time::microseconds(i % 997), [] {});
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SchedulerScheduleAndRun)->Arg(1000)->Arg(100000);

void BM_SchedulerCancelHalf(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    std::vector<sim::EventHandle> handles;
    handles.reserve(n);
    for (int i = 0; i < n; ++i)
      handles.push_back(sim.schedule_at(sim::Time::microseconds(i), [] {}));
    for (int i = 0; i < n; i += 2) handles[i].cancel();
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SchedulerCancelHalf)->Arg(10000);

void BM_RngUniform(benchmark::State& state) {
  sim::Rng rng{7};
  for (auto _ : state) benchmark::DoNotOptimize(rng.uniform01());
}
BENCHMARK(BM_RngUniform);

net::Packet bench_packet(std::uint64_t seq) {
  net::Packet p;
  p.flow = 1;
  p.type = net::PacketType::kData;
  p.size_bytes = 1000;
  p.tcp.seq = seq;
  p.tcp.payload = 1000;
  return p;
}

void BM_DropTailEnqueueDequeue(benchmark::State& state) {
  net::DropTailQueue q{64};
  std::uint64_t seq = 0;
  for (auto _ : state) {
    q.enqueue(bench_packet(seq++));
    benchmark::DoNotOptimize(q.dequeue());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DropTailEnqueueDequeue);

void BM_RedEnqueueDequeue(benchmark::State& state) {
  sim::Simulator sim;
  net::RedConfig rc;
  net::RedQueue q{sim, rc};
  std::uint64_t seq = 0;
  for (auto _ : state) {
    q.enqueue(bench_packet(seq++));
    benchmark::DoNotOptimize(q.dequeue());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RedEnqueueDequeue);

// Whole-stack rate: one RR flow saturating the paper's dumbbell. Reported
// items = simulated packet deliveries per wall second.
void BM_EndToEndSimulation(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    net::DumbbellConfig netcfg;
    netcfg.n_flows = 1;
    net::DumbbellTopology topo{sim, netcfg};
    auto flow = app::make_flow(app::Variant::kRr, sim, topo.sender_node(0),
                               topo.receiver_node(0), 1);
    app::FtpSource src{sim, *flow.sender, sim::Time::zero(), std::nullopt};
    sim.run_until(sim::Time::seconds(20));
    benchmark::DoNotOptimize(flow.receiver->bytes_in_order());
    state.SetItemsProcessed(state.items_processed() +
                            topo.bottleneck().packets_delivered());
  }
}
BENCHMARK(BM_EndToEndSimulation)->Unit(benchmark::kMillisecond);

void BM_TenFlowRedSimulation(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    net::DumbbellConfig netcfg;
    netcfg.n_flows = 10;
    netcfg.make_bottleneck_queue = [&sim] {
      net::RedConfig rc;
      rc.mean_pkt_tx = sim::Time::transmission(1000, 800'000);
      return std::make_unique<net::RedQueue>(sim, rc);
    };
    net::DumbbellTopology topo{sim, netcfg};
    std::vector<app::Flow> flows;
    std::vector<std::unique_ptr<app::FtpSource>> srcs;
    for (int i = 0; i < 10; ++i) {
      flows.push_back(app::make_flow(app::Variant::kRr, sim,
                                     topo.sender_node(i),
                                     topo.receiver_node(i), i + 1));
      srcs.push_back(std::make_unique<app::FtpSource>(
          sim, *flows.back().sender, sim::Time::zero(), std::nullopt));
    }
    sim.run_until(sim::Time::seconds(6));
    benchmark::DoNotOptimize(topo.bottleneck().packets_delivered());
  }
}
BENCHMARK(BM_TenFlowRedSimulation)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
