// Shared helpers for the experiment-reproduction harnesses in bench/.
// Each binary regenerates one table or figure of the paper (see
// EXPERIMENTS.md for the index and the expected shapes).
#pragma once

#include <cstdio>
#include <memory>
#include <optional>
#include <vector>

#include "app/flow_factory.hpp"
#include "app/ftp.hpp"
#include "audit/audit.hpp"
#include "harness/sweep.hpp"
#include "net/drop_tail.hpp"
#include "net/dumbbell.hpp"
#include "net/red.hpp"
#include "sim/simulator.hpp"
#include "stats/table.hpp"
#include "stats/throughput.hpp"
#include "stats/tracer.hpp"

namespace rrtcp::bench {

// One flow bundle with its instrumentation attached.
struct InstrumentedFlow {
  app::Flow flow;
  std::unique_ptr<stats::ThroughputMeter> meter;
  std::unique_ptr<stats::SeqTracer> seq;
  std::unique_ptr<stats::PhaseTracer> phases;
  std::unique_ptr<app::FtpSource> source;
};

inline InstrumentedFlow make_instrumented_flow(
    app::Variant v, sim::Simulator& sim, net::DumbbellTopology& topo, int i,
    sim::Time start, std::optional<std::uint64_t> bytes,
    tcp::TcpConfig cfg = {}) {
  InstrumentedFlow f;
  f.flow = app::make_flow(v, sim, topo.sender_node(i), topo.receiver_node(i),
                          static_cast<net::FlowId>(i + 1), cfg);
  f.meter = std::make_unique<stats::ThroughputMeter>();
  f.seq = std::make_unique<stats::SeqTracer>(cfg.mss);
  f.phases = std::make_unique<stats::PhaseTracer>();
  f.flow.sender->add_observer(f.meter.get());
  f.flow.sender->add_observer(f.seq.get());
  f.flow.sender->add_observer(f.phases.get());
  f.source = std::make_unique<app::FtpSource>(sim, *f.flow.sender, start, bytes);
  return f;
}

// Attach the build-gated invariant auditor to one instrumented flow
// (sender + peer receiver, enabling the cross-layer pipe checks). A no-op
// unless the build sets RRTCP_AUDIT=ON — see src/audit/audit.hpp.
inline void audit_flow(audit::ScopedAudit& a, InstrumentedFlow& f) {
  a.attach(*f.flow.sender, f.flow.receiver.get());
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("================================================================\n");
}

}  // namespace rrtcp::bench
