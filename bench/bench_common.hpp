// Shared helpers for the experiment-reproduction harnesses in bench/.
// Each binary regenerates one table or figure of the paper (see
// EXPERIMENTS.md for the index and the expected shapes).
//
// Scenario construction is declarative: describe the experiment as a
// harness::ScenarioSpec (topology + bottleneck queue + flows + seed) and
// let harness::Scenario build and instrument it — see
// src/harness/scenario.hpp.
#pragma once

#include <cstdio>
#include <memory>
#include <optional>
#include <vector>

#include "harness/scenario.hpp"
#include "harness/sweep.hpp"
#include "net/drop_tail.hpp"
#include "net/red.hpp"
#include "stats/table.hpp"

namespace rrtcp::bench {

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("================================================================\n");
}

}  // namespace rrtcp::bench
