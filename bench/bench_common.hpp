// Shared helpers for the experiment-reproduction harnesses in bench/.
// Each binary regenerates one table or figure of the paper (see
// EXPERIMENTS.md for the index and the expected shapes).
//
// Scenario construction is declarative: describe the experiment as a
// harness::ScenarioSpec (topology + bottleneck queue + flows + seed) and
// let harness::Scenario build and instrument it — see
// src/harness/scenario.hpp.
#pragma once

#include <cstdio>
#include <memory>
#include <optional>
#include <vector>

#include "app/sender_factory.hpp"
#include "harness/scenario.hpp"
#include "harness/sweep.hpp"
#include "net/drop_tail.hpp"
#include "net/red.hpp"
#include "stats/table.hpp"

namespace rrtcp::bench {

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("================================================================\n");
}

// Shared --list-variants handling: when the CLI asked for the registry,
// print it and tell the caller to exit (the harness itself cannot — it
// does not link the app layer).
inline bool handle_list_variants(const harness::SweepCli& cli) {
  if (!cli.list_variants) return false;
  app::SenderFactory::instance().print_registry(stdout);
  return true;
}

}  // namespace rrtcp::bench
