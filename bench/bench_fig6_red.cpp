// Figure 6 — TCP sequence-number dynamics under RED gateways during heavy
// congestion: (a) New-Reno, (b) SACK, (c) Robust Recovery.
//
// Setup per Section 3.3 / Table 4: RED gateway with buffer 25, min_th 5,
// max_th 20, max_p 0.02, w_q 0.002; 10 flows over the 0.8 Mbps bottleneck;
// the first five start at t=0 and one more every 0.5 s until t=2.5 s; all
// flows are infinite FTP; 6 s simulated. All flows use the same variant;
// flow 1's sequence plot is reported, plus the per-variant effective
// throughput of flow 1 over the run.
//
// Expected shape (paper): the New-Reno plot stalls (flat segments ending
// in a coarse timeout) while SACK and RR keep advancing; RR ends with the
// highest sequence number, slightly above SACK.
#include "bench_common.hpp"

namespace rrtcp::bench {
namespace {

struct RunOut {
  std::vector<std::pair<double, std::uint64_t>> series;  // (t, acked pkts)
  double kbps;
  std::uint64_t timeouts;
  std::uint64_t rtx;
  std::uint64_t red_early, red_forced;
};

RunOut run_variant(app::Variant v) {
  sim::Simulator sim;
  net::DumbbellConfig netcfg;
  netcfg.n_flows = 10;
  net::RedQueue* red = nullptr;
  netcfg.make_bottleneck_queue = [&sim, &red] {
    net::RedConfig rc;  // Table 4 values are the defaults
    rc.mean_pkt_tx = sim::Time::transmission(1000, 800'000);
    rc.seed = 42;
    auto q = std::make_unique<net::RedQueue>(sim, rc);
    red = q.get();
    return q;
  };
  net::DumbbellTopology topo{sim, netcfg};

  // ns-2-style window bound: the paper's plots show cwnd topping out near
  // 16, consistent with the classic ns-2 script default of window_ = 20
  // (which also bounds the initial ssthresh). Without it, slow-start
  // overshoot to 60+ packet windows drives the RED gateway into forced-
  // drop storms no 2001-era run exhibited.
  tcp::TcpConfig tcfg;
  tcfg.max_window_pkts = 20;
  tcfg.init_ssthresh_pkts = 20;

  std::vector<InstrumentedFlow> flows;
  for (int i = 0; i < 10; ++i) {
    // Flows 1-5 start at 0; flows 6-10 at 0.5 s intervals up to 2.5 s.
    const sim::Time start =
        i < 5 ? sim::Time::zero() : sim::Time::milliseconds(500) * (i - 4);
    flows.push_back(make_instrumented_flow(v, sim, topo, i, start,
                                           std::nullopt, tcfg));
  }
  const sim::Time horizon = sim::Time::seconds(6);
  sim.run_until(horizon);

  RunOut out;
  out.series = flows[0].seq->ack_series(sim::Time::milliseconds(250), horizon);
  out.kbps = flows[0].meter->throughput_bps(sim::Time::zero(), horizon) / 1e3;
  out.timeouts = flows[0].flow.sender->stats().timeouts;
  out.rtx = flows[0].flow.sender->stats().retransmissions;
  out.red_early = red->early_drops();
  out.red_forced = red->forced_drops();
  return out;
}

}  // namespace
}  // namespace rrtcp::bench

int main() {
  using namespace rrtcp::bench;
  using rrtcp::app::Variant;
  print_header("Figure 6 — sequence-number dynamics under RED gateways",
               "Wang & Shin 2001, Fig. 6(a) New-Reno, (b) SACK, (c) RR");

  const Variant panel[] = {Variant::kNewReno, Variant::kSack, Variant::kRr,
                           Variant::kTahoe};
  std::vector<RunOut> outs;
  for (Variant v : panel) outs.push_back(run_variant(v));

  // Sequence plots, gnuplot-ready: one x column, one y column per variant.
  std::vector<std::vector<double>> cols;
  std::vector<std::string> names{"time_s"};
  cols.emplace_back();
  for (const auto& [t, s] : outs[0].series) cols.back().push_back(t);
  for (std::size_t i = 0; i < outs.size(); ++i) {
    names.push_back(rrtcp::app::to_string(panel[i]));
    cols.emplace_back();
    for (const auto& [t, s] : outs[i].series)
      cols.back().push_back(static_cast<double>(s));
  }
  rrtcp::stats::print_series("flow 1 cumulative ACK (packets) vs time",
                             names, cols);

  rrtcp::stats::Table table{{"variant", "flow-1 eff. throughput (kbit/s)",
                             "flow-1 timeouts", "flow-1 rtx",
                             "RED early drops", "RED forced drops"}};
  for (std::size_t i = 0; i < outs.size(); ++i) {
    const auto& o = outs[i];
    table.add_row({rrtcp::app::to_string(panel[i]),
                   rrtcp::stats::Table::cell("%.1f", o.kbps),
                   rrtcp::stats::Table::cell("%llu", (unsigned long long)o.timeouts),
                   rrtcp::stats::Table::cell("%llu", (unsigned long long)o.rtx),
                   rrtcp::stats::Table::cell("%llu", (unsigned long long)o.red_early),
                   rrtcp::stats::Table::cell("%llu", (unsigned long long)o.red_forced)});
  }
  table.print();
  std::printf(
      "\nshape check: RR's flow-1 effective throughput exceeds New-Reno's\n"
      "and Tahoe's without any timeout. Note: our SACK baseline implements\n"
      "the RFC 3517 pipe algorithm (multiple hole repairs per RTT), which\n"
      "is stronger than the 2001-era sack1 the paper compared against —\n"
      "it tops this chart; the paper's RR >= SACK held against sack1.\n"
      "See EXPERIMENTS.md.\n");
  return 0;
}
