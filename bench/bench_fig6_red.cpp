// Figure 6 — TCP sequence-number dynamics under RED gateways during heavy
// congestion: (a) New-Reno, (b) SACK, (c) Robust Recovery.
//
// Setup per Section 3.3 / Table 4: RED gateway with buffer 25, min_th 5,
// max_th 20, max_p 0.02, w_q 0.002; 10 flows over the 0.8 Mbps bottleneck;
// the first five start at t=0 and one more every 0.5 s until t=2.5 s; all
// flows are infinite FTP; 6 s simulated. All flows use the same variant;
// flow 1's sequence plot is reported, plus the per-variant effective
// throughput of flow 1 over the run.
//
// Expected shape (paper): the New-Reno plot stalls (flat segments ending
// in a coarse timeout) while SACK and RR keep advancing; RR ends with the
// highest sequence number, slightly above SACK.
#include "bench_common.hpp"

namespace rrtcp::bench {
namespace {

struct RunOut {
  std::vector<std::pair<double, std::uint64_t>> series;  // (t, acked pkts)
  double kbps;
  std::uint64_t timeouts;
  std::uint64_t rtx;
  std::uint64_t red_early, red_forced;
};

RunOut run_variant(app::Variant v, std::uint64_t seed) {
  // ns-2-style window bound: the paper's plots show cwnd topping out near
  // 16, consistent with the classic ns-2 script default of window_ = 20
  // (which also bounds the initial ssthresh). Without it, slow-start
  // overshoot to 60+ packet windows drives the RED gateway into forced-
  // drop storms no 2001-era run exhibited.
  tcp::TcpConfig tcfg;
  tcfg.max_window_pkts = 20;
  tcfg.init_ssthresh_pkts = 20;

  net::RedConfig rc;  // Table 4 values are the defaults
  rc.mean_pkt_tx = sim::Time::transmission(1000, 800'000);

  harness::ScenarioSpec spec;
  spec.name = std::string{"fig6/"} + app::to_string(v);
  spec.bottleneck = harness::QueueSpec::red_queue(rc);
  spec.seed = seed;  // per-job, derived from the sweep's base seed
  spec.horizon = sim::Time::seconds(6);
  // Flows 1-5 start at 0; flows 6-10 at 0.5 s intervals up to 2.5 s.
  spec.add_flows(5, {.variant = v, .tcp = tcfg});
  spec.add_flows(5,
                 {.variant = v, .start = sim::Time::milliseconds(500),
                  .tcp = tcfg},
                 sim::Time::milliseconds(500));
  harness::Scenario sc{spec};
  sc.run();

  const sim::Time horizon = spec.horizon;
  RunOut out;
  out.series =
      sc.instruments(0).seq->ack_series(sim::Time::milliseconds(250), horizon);
  out.kbps =
      sc.instruments(0).meter->throughput_bps(sim::Time::zero(), horizon) / 1e3;
  out.timeouts = sc.sender(0).stats().timeouts;
  out.rtx = sc.sender(0).stats().retransmissions;
  out.red_early = sc.red()->early_drops();
  out.red_forced = sc.red()->forced_drops();
  return out;
}

}  // namespace
}  // namespace rrtcp::bench

int main(int argc, char** argv) {
  using namespace rrtcp::bench;
  using rrtcp::app::Variant;
  const auto cli = rrtcp::harness::SweepCli::parse(argc, argv);
  if (handle_list_variants(cli)) return 0;

  const Variant panel[] = {Variant::kNewReno, Variant::kSack, Variant::kRr,
                           Variant::kTahoe};
  // A single 6 s RED run is seed-sensitive (flow-1 throughput swings ~20%
  // with the gateway's drop draws), so each job averages kNumSubSeeds runs
  // over sub-seeds derived from its sweep seed; the sequence plot shows
  // the first sub-seed's trace, as the paper plots one run.
  constexpr int kNumSubSeeds = 8;
  std::vector<RunOut> outs(std::size(panel));
  std::vector<rrtcp::harness::SweepJob> jobs;
  for (Variant v : panel) {
    jobs.push_back(
        {std::string{"variant="} + rrtcp::app::to_string(v),
         [&outs, v](const rrtcp::harness::JobContext& ctx) {
           RunOut mean{};
           for (int k = 0; k < kNumSubSeeds; ++k) {
             const RunOut o =
                 run_variant(v, rrtcp::harness::derive_seed(ctx.seed, k));
             if (k == 0) mean.series = o.series;
             mean.kbps += o.kbps / kNumSubSeeds;
             mean.timeouts += o.timeouts;
             mean.rtx += o.rtx;
             mean.red_early += o.red_early;
             mean.red_forced += o.red_forced;
           }
           mean.timeouts /= kNumSubSeeds;
           mean.rtx /= kNumSubSeeds;
           mean.red_early /= kNumSubSeeds;
           mean.red_forced /= kNumSubSeeds;
           outs[ctx.index] = mean;
           return rrtcp::harness::Record{}
               .set("variant", rrtcp::app::to_string(v))
               .set("kbps", mean.kbps)
               .set("timeouts", mean.timeouts)
               .set("rtx", mean.rtx)
               .set("red_early_drops", mean.red_early)
               .set("red_forced_drops", mean.red_forced);
         }});
  }
  rrtcp::harness::ResultSink sink{jobs.size()};
  const auto timing = rrtcp::harness::run_sweep(jobs, sink, cli.options);

  print_header("Figure 6 — sequence-number dynamics under RED gateways",
               "Wang & Shin 2001, Fig. 6(a) New-Reno, (b) SACK, (c) RR");

  // Sequence plots, gnuplot-ready: one x column, one y column per variant.
  std::vector<std::vector<double>> cols;
  std::vector<std::string> names{"time_s"};
  cols.emplace_back();
  for (const auto& [t, s] : outs[0].series) cols.back().push_back(t);
  for (std::size_t i = 0; i < outs.size(); ++i) {
    names.push_back(rrtcp::app::to_string(panel[i]));
    cols.emplace_back();
    for (const auto& [t, s] : outs[i].series)
      cols.back().push_back(static_cast<double>(s));
  }
  rrtcp::stats::print_series("flow 1 cumulative ACK (packets) vs time",
                             names, cols);

  rrtcp::stats::Table table{{"variant", "flow-1 eff. throughput (kbit/s)",
                             "flow-1 timeouts", "flow-1 rtx",
                             "RED early drops", "RED forced drops"}};
  for (std::size_t i = 0; i < outs.size(); ++i) {
    const auto& o = outs[i];
    table.add_row({rrtcp::app::to_string(panel[i]),
                   rrtcp::stats::Table::cell("%.1f", o.kbps),
                   rrtcp::stats::Table::cell("%llu", static_cast<unsigned long long>(o.timeouts)),
                   rrtcp::stats::Table::cell("%llu", static_cast<unsigned long long>(o.rtx)),
                   rrtcp::stats::Table::cell("%llu", static_cast<unsigned long long>(o.red_early)),
                   rrtcp::stats::Table::cell("%llu", static_cast<unsigned long long>(o.red_forced))});
  }
  table.print();
  std::printf(
      "\nshape check (means over %d seeds): RR advances without any timeout\n"
      "and with the fewest retransmissions, beats Tahoe, and matches\n"
      "New-Reno's mean throughput within the seed noise; its sequence plot\n"
      "climbs steadily where New-Reno's flattens during recovery. Note: our\n"
      "SACK baseline implements the RFC 3517 pipe algorithm (multiple hole\n"
      "repairs per RTT), stronger than the 2001-era sack1 the paper\n"
      "compared against — it tops this chart; the paper's RR >= SACK held\n"
      "against sack1. See EXPERIMENTS.md.\n",
      kNumSubSeeds);
  rrtcp::harness::report("fig6_red", cli, sink, timing);
  return 0;
}
