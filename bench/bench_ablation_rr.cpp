// Ablation study of Robust Recovery's design choices (DESIGN.md §4).
//
// Not a paper figure: this bench isolates the contribution of
//  (a) the retransmission BUDGET for extended-territory boundaries
//      (rr_budget_rtx; off = the paper-literal "retransmit at every
//      partial ACK", which resends in-flight data after an exit
//      extension), and
//  (b) the RESCUE retransmission (rr_rescue_rtx; off = the paper's
//      position that a lost retransmission costs a coarse timeout).
//
// Two workloads: a clean burst+recovery-loss scenario (where the budget
// matters) and a lost-retransmission scenario (where rescue matters).
#include "bench_common.hpp"
#include "core/rr_sender.hpp"

namespace rrtcp::bench {
namespace {

struct Out {
  double completion_s;
  std::uint64_t rtx;
  std::uint64_t timeouts;
  std::uint64_t spurious;  // duplicate data packets seen by the receiver
};

Out run(bool ordering, bool budget, bool rescue,
        const std::function<std::unique_ptr<net::LossModel>()>& loss,
        double ack_loss = 0.0) {
  tcp::TcpConfig tcfg;
  tcfg.rr_probe_packet_first = ordering;
  tcfg.rr_budget_rtx = budget;
  tcfg.rr_rescue_rtx = rescue;

  harness::ScenarioSpec spec;
  spec.name = "ablation_rr";
  spec.bottleneck = harness::QueueSpec::drop_tail(100);
  spec.horizon = sim::Time::seconds(120);
  spec.add_flow(
      {.variant = app::Variant::kRr, .bytes = 100'000, .tcp = tcfg});
  harness::Scenario sc{spec};
  sc.topology().bottleneck().set_loss_model(loss());
  if (ack_loss > 0.0)
    sc.topology().reverse_bottleneck().set_loss_model(
        std::make_unique<net::UniformLossModel>(ack_loss, 77,
                                                /*data_only=*/false));
  sc.run();

  Out o{};
  o.completion_s = sc.sender(0).completion_time().to_seconds();
  o.rtx = sc.sender(0).stats().retransmissions;
  o.timeouts = sc.sender(0).stats().timeouts;
  o.spurious = sc.flow(0).receiver->stats().duplicates;
  return o;
}

struct Knobs {
  bool ordering, budget, rescue;
};

// The 8 knob combinations, in the row order the tables have always used.
std::vector<Knobs> knob_grid() {
  std::vector<Knobs> grid;
  for (bool ordering : {true, false})
    for (bool budget : {true, false})
      for (bool rescue : {true, false}) grid.push_back({ordering, budget, rescue});
  return grid;
}

void print_table(const char* title, const std::vector<Knobs>& grid,
                 const std::vector<Out>& outs, std::size_t first) {
  std::printf("\n--- %s ---\n", title);
  stats::Table table{{"probe-first", "budget", "rescue", "completion (s)",
                      "rtx", "timeouts", "spurious rtx (receiver dups)"}};
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const Knobs& k = grid[i];
    const Out& o = outs[first + i];
    table.add_row({k.ordering ? "on" : "off", k.budget ? "on" : "off",
                   k.rescue ? "on" : "off",
                   stats::Table::cell("%.3f", o.completion_s),
                   stats::Table::cell("%llu", static_cast<unsigned long long>(o.rtx)),
                   stats::Table::cell("%llu", static_cast<unsigned long long>(o.timeouts)),
                   stats::Table::cell("%llu", static_cast<unsigned long long>(o.spurious))});
  }
  table.print();
}

}  // namespace
}  // namespace rrtcp::bench

int main(int argc, char** argv) {
  using namespace rrtcp::bench;
  const auto cli = rrtcp::harness::SweepCli::parse(argc, argv);
  if (handle_list_variants(cli)) return 0;

  // Workload A: a 3-packet burst inside a large (slow-start-overshoot)
  // window. With the naive rtx-first ordering, ndup systematically
  // undercounts by one: the further-loss detector fires at every clean
  // RTT boundary, the exit threshold keeps extending, and each post-hole
  // boundary ACK spuriously retransmits in-flight data. probe-first
  // ordering removes the undercount; the budget bounds the damage when
  // an extension does happen.
  //
  // Workload B: the first retransmission of the lost segment dies too —
  // without rescue this is an unavoidable coarse timeout.
  struct Workload {
    const char* key;
    const char* title;
    std::function<std::unique_ptr<rrtcp::net::LossModel>()> loss;
  };
  const Workload workloads[] = {
      {"burst3", "3-packet burst in a ~35-packet window (no other loss)",
       [] {
         std::vector<std::pair<rrtcp::net::FlowId, std::uint64_t>> burst;
         for (int i = 0; i < 3; ++i)
           burst.push_back({1, static_cast<std::uint64_t>(20 + i) * 1000});
         return std::make_unique<rrtcp::net::ListLossModel>(burst);
       }},
      {"rtx-loss", "single loss whose retransmission is also lost",
       [] { return std::make_unique<rrtcp::net::SegmentLossModel>(1, 30'000, 2); }},
  };

  const auto grid = knob_grid();
  std::vector<rrtcp::harness::SweepJob> jobs;
  std::vector<Out> outs(std::size(workloads) * grid.size());
  for (const Workload& w : workloads) {
    for (const Knobs& k : grid) {
      jobs.push_back(
          {rrtcp::stats::Table::cell("%s/probe=%d/budget=%d/rescue=%d", w.key,
                                     k.ordering, k.budget, k.rescue),
           [&outs, &w, k](const rrtcp::harness::JobContext& ctx) {
             const Out o = run(k.ordering, k.budget, k.rescue, w.loss);
             outs[ctx.index] = o;
             return rrtcp::harness::Record{}
                 .set("workload", w.key)
                 .set("probe_first", k.ordering)
                 .set("budget", k.budget)
                 .set("rescue", k.rescue)
                 .set("completion_s", o.completion_s)
                 .set("rtx", o.rtx)
                 .set("timeouts", o.timeouts)
                 .set("spurious", o.spurious);
           }});
    }
  }
  rrtcp::harness::ResultSink sink{jobs.size()};
  const auto timing = rrtcp::harness::run_sweep(jobs, sink, cli.options);

  print_header("RR ablation — boundary-retransmission budget and rescue",
               "design-choice study (not a paper figure); see DESIGN.md");
  for (std::size_t wi = 0; wi < std::size(workloads); ++wi)
    print_table(workloads[wi].title, grid, outs, wi * grid.size());

  std::printf(
      "\nreading: probe-first ordering is load-bearing (3 vs 36-48 rtx);\n"
      "the budget bounds the damage when ordering is naive (36 vs 48) and\n"
      "is nearly free otherwise; rescue converts a lost retransmission\n"
      "from a coarse timeout into one extra retransmission (~0.75 s saved\n"
      "on a 100-packet transfer).\n");
  rrtcp::harness::report("ablation_rr", cli, sink, timing);
  return 0;
}
