// Shard-scaling curve for the conservative-PDES engine (src/pdes).
//
// Builds one large graph-mode scenario — a multi-dumbbell whose access
// links carry real propagation delay, with --flows TCP flows (default
// 10'000) packed onto 64 sender hosts via FlowSets — and runs it at shard
// counts {1, 2, 4, 8}. The shards=1 leg is the plain single-engine
// harness::Scenario (the delegation path), so the speedup column is a
// true before/after.
//
// The speedup is whatever the machine can fund: each shard runs on its
// own thread, so on an N-core box the curve should rise until the
// cut-link lookahead rounds stop amortizing the barrier; on a 1-core box
// it sits below 1x (barrier + merge are pure overhead) — the report
// prints hardware_concurrency so the numbers read honestly. Determinism
// is NOT re-checked here (tests/pdes pins per-flow trace equality across
// shard counts); this binary only measures rate. Its deliberately
// symmetric fleet (identical rates, delays and sizes) manufactures
// same-picosecond arrival ties, so flows_done may differ by a hair across
// shard counts — the tie caveat DESIGN.md §17 spells out.
//
// Flags:
//   --quick        1'000 flows on 16 hosts, 2 s horizon (smoke)
//   --flows=N      override the flow count
//   --json=PATH    write the scaling table as JSON (off by default)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <string>
#include <thread>

#include "harness/result_sink.hpp"
#include "harness/scenario.hpp"
#include "pdes/sharded.hpp"
#include "stats/table.hpp"
#include "topo/presets.hpp"

namespace rrtcp::bench {
namespace {

using Clock = std::chrono::steady_clock;

harness::ScenarioSpec make_spec(int shards, int flows, int hosts,
                                sim::Time horizon) {
  topo::MultiDumbbellConfig mdc;
  mdc.n_senders = hosts;
  mdc.m_receivers = hosts / 2;
  mdc.side_delay = sim::Time::milliseconds(5);  // cuttable access links
  mdc.bottleneck_delay = sim::Time::milliseconds(20);
  // Enough capacity that a 10k-flow fleet actually moves bytes: the
  // default 800 kbps bottleneck would park everyone in RTO backoff and the
  // "benchmark" would measure an idle event loop.
  mdc.bottleneck_bps = 1'000'000'000;
  mdc.side_bps = 100'000'000;
  mdc.queue_packets = 256;
  const topo::MultiDumbbellLayout md = topo::multi_dumbbell(mdc);

  harness::ScenarioSpec spec;
  spec.name = "bench_shard";
  spec.graph = md.spec;
  spec.shard_count = shards;
  spec.horizon = horizon;
  spec.instruments.tracers = false;
  spec.instruments.audit = harness::AuditMode::kNone;
  spec.instruments.watchdog = false;

  // One FlowSet per sender host (src_step = 0: the set's flows share the
  // host), variants mixed across hosts, starts staggered so the fleet does
  // not fire as one synchronized burst.
  static constexpr app::Variant kMix[] = {
      app::Variant::kRr, app::Variant::kNewReno, app::Variant::kSack,
      app::Variant::kReno};
  const int per_host = (flows + hosts - 1) / hosts;
  int remaining = flows;
  for (int h = 0; h < hosts && remaining > 0; ++h) {
    harness::FlowSet set;
    set.count = std::min(per_host, remaining);
    set.proto.variant = kMix[h % 4];
    set.proto.bytes = 50'000;
    set.proto.start = sim::Time::milliseconds(h % 7);
    set.proto.src_node = md.senders[static_cast<std::size_t>(h)];
    set.proto.dst_node =
        md.receivers[static_cast<std::size_t>(h % (hosts / 2))];
    set.stagger = sim::Time::milliseconds(1);
    set.src_step = 0;
    set.dst_step = 0;
    spec.add_flow_set(set);
    remaining -= set.count;
  }
  return spec;
}

struct Leg {
  int requested = 0;
  int n_shards = 0;
  double wall_s = 0.0;
  std::uint64_t events = 0;
  std::uint64_t rounds = 0;
  std::uint64_t cross_shard_packets = 0;
  std::uint64_t flows_complete = 0;
  std::size_t arena_objects = 0;
  double events_per_sec() const { return wall_s > 0 ? events / wall_s : 0.0; }
};

Leg run_one(int shards, int flows, int hosts, sim::Time horizon) {
  pdes::ShardedScenario sc{make_spec(shards, flows, hosts, horizon)};
  const auto t0 = Clock::now();
  const std::uint64_t events = sc.run();
  Leg leg;
  leg.requested = shards;
  leg.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  leg.events = events;
  leg.n_shards = sc.n_shards();
  leg.rounds = sc.rounds();
  leg.cross_shard_packets = sc.cross_shard_packets();
  leg.arena_objects = sc.arena().objects();
  for (int i = 0; i < sc.n_flows(); ++i)
    if (sc.sender(i).complete()) ++leg.flows_complete;
  return leg;
}

}  // namespace
}  // namespace rrtcp::bench

int main(int argc, char** argv) {
  using namespace rrtcp;
  using namespace rrtcp::bench;

  bool quick = false;
  int flows = 0;  // 0: pick from quick
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--flows=", 8) == 0) {
      flows = std::atoi(argv[i] + 8);
      if (flows < 1) flows = 1;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--flows=N] [--json=PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  const int hosts = quick ? 16 : 64;
  if (flows == 0) flows = quick ? 1'000 : 10'000;
  const sim::Time horizon = sim::Time::seconds(quick ? 2 : 5);

  std::printf("bench_shard: %d flows on %d sender hosts, %s horizon, %u "
              "hardware thread(s)\n\n",
              flows, hosts, quick ? "2 s" : "5 s",
              std::thread::hardware_concurrency());

  constexpr int kShardCounts[] = {1, 2, 4, 8};
  Leg legs[std::size(kShardCounts)];
  for (std::size_t i = 0; i < std::size(kShardCounts); ++i)
    legs[i] = run_one(kShardCounts[i], flows, hosts, horizon);
  const double base = legs[0].events_per_sec();

  stats::Table table{{"shards", "events/s", "speedup", "rounds",
                      "cross_pkts", "flows_done"}};
  for (const Leg& leg : legs) {
    table.add_row({stats::Table::cell("%d", leg.n_shards),
                   stats::Table::cell("%.3g", leg.events_per_sec()),
                   stats::Table::cell("%.2fx",
                                      base > 0 ? leg.events_per_sec() / base
                                               : 0.0),
                   stats::Table::cell("%llu",
                                      (unsigned long long)leg.rounds),
                   stats::Table::cell(
                       "%llu", (unsigned long long)leg.cross_shard_packets),
                   stats::Table::cell("%llu",
                                      (unsigned long long)leg.flows_complete)});
  }
  table.print();

  if (!json_path.empty()) {
    harness::ResultSink sink{std::size(kShardCounts)};
    for (std::size_t i = 0; i < std::size(kShardCounts); ++i) {
      const Leg& leg = legs[i];
      harness::Record rec;
      rec.set("shards", leg.n_shards);
      rec.set("flows", flows);
      rec.set("events", leg.events);
      rec.set("wall_s", leg.wall_s);
      rec.set("events_per_sec", leg.events_per_sec());
      rec.set("speedup_vs_single",
              base > 0 ? leg.events_per_sec() / base : 0.0);
      rec.set("rounds", leg.rounds);
      rec.set("cross_shard_packets", leg.cross_shard_packets);
      rec.set("flows_complete", leg.flows_complete);
      rec.set("arena_objects",
              static_cast<std::uint64_t>(leg.arena_objects));
      rec.set("hardware_threads",
              static_cast<int>(std::thread::hardware_concurrency()));
      sink.submit(i, std::move(rec), 0.0);
    }
    harness::write_file(json_path, sink.to_json("bench_shard", 0));
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
