// Figure 7 — fitness of RR (vs SACK) to the square-root model of Mathis
// et al.: steady-state window BW*RTT/MSS against uniform random loss rate
// p, compared with the model bound C/sqrt(p).
//
// Setup per Section 4: same dumbbell, one flow, 100 s simulation with the
// start-up phase ignored, artificial uniform losses injected at R1,
// MSS = 1000 B, RTT = 200 ms, an ACK per data packet. The paper states
// "C is set to 4"; the Mathis constant for per-packet ACKs is
// sqrt(3/2) ~ 1.22, and the paper's plotted bound (max ~15 at p = 0.01)
// is only consistent with the latter, so we print the sqrt(3/2) bound and
// note the discrepancy in EXPERIMENTS.md.
//
// Expected shape (paper): both RR and SACK track the bound from below,
// with RR at least as close as SACK; both fall away at high p where small
// windows force retransmission timeouts.
#include "bench_common.hpp"
#include "model/mathis.hpp"
#include "model/padhye.hpp"

namespace rrtcp::bench {
namespace {

struct Sample {
  double window_pkts;
  std::uint64_t timeouts;
};

Sample run_one(app::Variant v, double p, std::uint64_t seed) {
  harness::ScenarioSpec spec;
  spec.name = std::string{"fig7/"} + app::to_string(v);
  spec.topology.side_delay = sim::Time::zero();  // RTT = 2 * 100 ms + tx
  // Deep buffer so that *only* the artificial uniform losses matter
  // (the paper's "random packet-loss rate" is the controlled variable).
  spec.bottleneck = harness::QueueSpec::drop_tail(200);
  spec.horizon = sim::Time::seconds(110);
  spec.add_flow({.variant = v});
  harness::Scenario sc{spec};
  sc.topology().bottleneck().set_loss_model(
      std::make_unique<net::UniformLossModel>(p, seed));
  const sim::Time warmup = sim::Time::seconds(10);  // start-up ignored
  sc.run();

  const double bw_bps =
      sc.instruments(0).meter->throughput_bps(warmup, spec.horizon);
  Sample s;
  s.window_pkts = bw_bps * 0.2 / (1000.0 * 8.0);  // BW*RTT/MSS
  s.timeouts = sc.sender(0).stats().timeouts;
  return s;
}

}  // namespace
}  // namespace rrtcp::bench

int main() {
  using namespace rrtcp::bench;
  using rrtcp::app::Variant;
  print_header("Figure 7 — fitness to the square-root model",
               "Wang & Shin 2001, Fig. 7 (window vs loss rate, RR vs SACK)");

  const double rates[] = {0.001, 0.002, 0.005, 0.01, 0.02,
                          0.03,  0.05,  0.07,  0.1};
  const int kSeeds = 3;  // averaged; the paper plots single runs

  // The paper's Section 4 closes by noting the Padhye et al. model, which
  // includes timeout effects, predicts the high-loss regime better: we
  // print it as a second reference curve.
  rrtcp::model::PadhyeParams pftk;
  pftk.rtt_s = 0.2;
  pftk.t0_s = 1.0;

  std::vector<double> xs, bound, pftk_w, rr_w, sack_w;
  rrtcp::stats::Table table{{"loss rate p", "Mathis C/sqrt(p)",
                             "Padhye (w/ timeouts)", "RR window",
                             "SACK window", "RR timeouts", "SACK timeouts"}};
  for (double p : rates) {
    double rr_sum = 0, sack_sum = 0;
    std::uint64_t rr_to = 0, sack_to = 0;
    for (int s = 0; s < kSeeds; ++s) {
      auto a = run_one(Variant::kRr, p, 100 + s);
      auto b = run_one(Variant::kSack, p, 100 + s);
      rr_sum += a.window_pkts;
      sack_sum += b.window_pkts;
      rr_to += a.timeouts;
      sack_to += b.timeouts;
    }
    const double model = rrtcp::model::window_packets(p);
    const double padhye = rrtcp::model::padhye_window_packets(p, pftk);
    xs.push_back(p);
    bound.push_back(model);
    pftk_w.push_back(padhye);
    rr_w.push_back(rr_sum / kSeeds);
    sack_w.push_back(sack_sum / kSeeds);
    table.add_row({rrtcp::stats::Table::cell("%.3f", p),
                   rrtcp::stats::Table::cell("%.2f", model),
                   rrtcp::stats::Table::cell("%.2f", padhye),
                   rrtcp::stats::Table::cell("%.2f", rr_w.back()),
                   rrtcp::stats::Table::cell("%.2f", sack_w.back()),
                   rrtcp::stats::Table::cell("%.1f", rr_to / double(kSeeds)),
                   rrtcp::stats::Table::cell("%.1f", sack_to / double(kSeeds))});
  }
  table.print();
  rrtcp::stats::print_series(
      "window (BW*RTT/MSS, packets) vs loss rate; C = sqrt(3/2)",
      {"p", "mathis_bound", "padhye", "rr", "sack"},
      {xs, bound, pftk_w, rr_w, sack_w});
  std::printf(
      "\nshape check: both variants sit at or below the bound, flattened\n"
      "at low p by the 0.8 Mbps link capacity (window <= ~20 packets) and\n"
      "dropping away at high p as timeouts take over; RR tracks the bound\n"
      "at least as closely as SACK.\n");
  return 0;
}
