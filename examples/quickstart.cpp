// Quickstart: one Robust Recovery TCP flow over the paper's dumbbell.
//
// Builds the Table-3 topology (0.8 Mbps / 100 ms bottleneck, drop-tail
// buffer of 8 packets), runs a single RR flow for 20 simulated seconds,
// and prints what happened. Run with --verbose for a per-event trace, or
// with a variant name (tahoe|reno|newreno|sack|rr) to compare.
#include <cstdio>
#include <cstring>

#include "app/flow_factory.hpp"
#include "app/ftp.hpp"
#include "net/drop_tail.hpp"
#include "net/dumbbell.hpp"
#include "sim/log.hpp"
#include "sim/simulator.hpp"
#include "stats/throughput.hpp"
#include "stats/tracer.hpp"

int main(int argc, char** argv) {
  using namespace rrtcp;

  app::Variant variant = app::Variant::kRr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verbose") == 0) {
      sim::Log::set_level(sim::LogLevel::kDebug);
    } else {
      variant = app::variant_from_string(argv[i]);
    }
  }

  sim::Simulator sim;

  net::DumbbellConfig netcfg;
  netcfg.n_flows = 1;
  net::DumbbellTopology topo{sim, netcfg};

  app::Flow flow = app::make_flow(variant, sim, topo.sender_node(0),
                                  topo.receiver_node(0), /*flow=*/1);
  stats::ThroughputMeter meter;
  stats::PhaseTracer phases;
  flow.sender->add_observer(&meter);
  flow.sender->add_observer(&phases);

  // Unbounded FTP transfer starting at t=0.
  app::FtpSource ftp{sim, *flow.sender, sim::Time::zero(), std::nullopt};

  const sim::Time horizon = sim::Time::seconds(20);
  sim.run_until(horizon);

  const auto& st = flow.sender->stats();
  std::printf("variant:            %s\n", flow.sender->variant_name());
  std::printf("simulated time:     %.1f s\n", horizon.to_seconds());
  std::printf("goodput:            %.1f kbit/s (bottleneck 800 kbit/s)\n",
              meter.throughput_bps(sim::Time::zero(), horizon) / 1e3);
  std::printf("data packets sent:  %llu (+%llu retransmissions)\n",
              static_cast<unsigned long long>(st.data_packets_sent),
              static_cast<unsigned long long>(st.retransmissions));
  std::printf("fast retransmits:   %llu\n",
              static_cast<unsigned long long>(st.fast_retransmits));
  std::printf("timeouts:           %llu\n", static_cast<unsigned long long>(st.timeouts));
  std::printf("bottleneck drops:   %llu\n",
              static_cast<unsigned long long>(topo.bottleneck().queue().stats().dropped));
  std::printf("time in recovery:   %.2f s\n",
              phases.time_in_recovery(horizon).to_seconds());
  std::printf("final cwnd:         %.1f packets\n",
              flow.sender->cwnd_packets());
  return 0;
}
