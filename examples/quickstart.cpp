// Quickstart: one Robust Recovery TCP flow over the paper's dumbbell.
//
// Builds the Table-3 topology (0.8 Mbps / 100 ms bottleneck, drop-tail
// buffer of 8 packets), runs a single RR flow for 20 simulated seconds,
// and prints what happened. Run with --verbose for a per-event trace,
// with a variant name (see --list-variants) to compare, or with
// --list-variants to print the sender registry and exit. --shards=N
// routes the run through the sharded PDES engine (src/pdes); the Table-3
// dumbbell is too small to partition, so it demonstrates the delegation
// path — the engine falls back to the single simulator, byte-identically.
//
// The whole experiment is one declarative ScenarioSpec — see
// src/harness/scenario.hpp for everything a spec can express.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "app/sender_factory.hpp"
#include "harness/scenario.hpp"
#include "pdes/sharded.hpp"
#include "sim/log.hpp"

int main(int argc, char** argv) {
  using namespace rrtcp;

  app::Variant variant = app::Variant::kRr;
  int shards = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verbose") == 0) {
      sim::Log::set_level(sim::LogLevel::kDebug);
    } else if (std::strcmp(argv[i], "--list-variants") == 0) {
      app::SenderFactory::instance().print_registry(stdout);
      return 0;
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      char* end = nullptr;
      shards = static_cast<int>(std::strtol(argv[i] + 9, &end, 10));
      if (end == argv[i] + 9 || *end != '\0' || shards < 1 ||
          shards > harness::kMaxShardCount) {
        // Mirror the unknown-variant path: a bad value prints what IS valid.
        std::fprintf(stderr,
                     "invalid shard count: %s\n"
                     "valid range: --shards=1..%d (1 = single engine)\n",
                     argv[i], harness::kMaxShardCount);
        return 2;
      }
    } else {
      try {
        variant = app::variant_from_string(argv[i]);
      } catch (const std::invalid_argument&) {
        std::fprintf(stderr, "unknown variant '%s'\n", argv[i]);
        app::SenderFactory::instance().print_registry(stderr);
        return 2;
      }
    }
  }

  harness::ScenarioSpec spec;  // Table 3 topology + 8-packet drop-tail
  spec.name = "quickstart";
  spec.horizon = sim::Time::seconds(20);
  spec.shard_count = shards;
  spec.add_flow({.variant = variant});  // unbounded FTP starting at t=0
  pdes::ShardedScenario runner{spec};
  runner.run();
  // The dumbbell never partitions, so the delegate is always present.
  harness::Scenario& sc = *runner.single();

  const sim::Time horizon = spec.horizon;
  const auto& st = sc.sender(0).stats();
  const harness::FlowInstruments& fi = sc.instruments(0);
  std::printf("variant:            %s\n", sc.sender(0).variant_name());
  if (shards > 1)
    std::printf("engine:             single (%d shards requested; the "
                "dumbbell does not partition)\n", shards);
  std::printf("simulated time:     %.1f s\n", horizon.to_seconds());
  std::printf("goodput:            %.1f kbit/s (bottleneck 800 kbit/s)\n",
              fi.meter->throughput_bps(sim::Time::zero(), horizon) / 1e3);
  std::printf("data packets sent:  %llu (+%llu retransmissions)\n",
              static_cast<unsigned long long>(st.data_packets_sent),
              static_cast<unsigned long long>(st.retransmissions));
  std::printf("fast retransmits:   %llu\n",
              static_cast<unsigned long long>(st.fast_retransmits));
  std::printf("timeouts:           %llu\n", static_cast<unsigned long long>(st.timeouts));
  std::printf("bottleneck drops:   %llu\n",
              static_cast<unsigned long long>(sc.topology().bottleneck().queue().stats().dropped));
  std::printf("time in recovery:   %.2f s\n",
              fi.phases->time_in_recovery(horizon).to_seconds());
  std::printf("final cwnd:         %.1f packets\n",
              sc.sender(0).cwnd_packets());
  return 0;
}
