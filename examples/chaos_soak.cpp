// Chaos soak: randomized-but-reproducible fault schedules against every
// sender variant, with the protocol-invariant auditor and the liveness
// watchdog armed. The acceptance gate for the chaos engine:
//
//   * every flow completes or stays alive (RTO armed) — graceful
//     degradation under outages, ACK loss/duplication, burst loss and
//     delay spikes;
//   * zero audit violations, zero watchdog reports.
//
// Usage:
//   chaos_soak [--schedules=N] [--seed=S] [--threads=N]
//              [--csv=PATH] [--json=PATH]
//   chaos_soak --replay=0xSEED          # re-run one schedule, verbose
//   chaos_soak --replay=PATH            # re-run a fuzz repro file
//
// Every row of the sweep carries its plan seed; a failing schedule is
// replayed byte-identically with --replay=<that seed>, independent of
// --schedules/--seed/thread count. The replay path is shared with
// tools/fuzz_soak (src/fuzz/replay.hpp): an integer operand is a chaos
// plan seed, anything else a rrtcp-fuzz-repro-v1 file.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "fuzz/replay.hpp"
#include "harness/chaos_sweep.hpp"
#include "harness/sweep.hpp"

namespace {

using namespace rrtcp;  // NOLINT(google-build-using-namespace)

[[noreturn]] void usage(const char* bad) {
  std::fprintf(
      stderr,
      "unknown argument: %s\n"
      "usage: chaos_soak [--schedules=N] [--seed=S] [--threads=N]\n"
      "                  [--csv=PATH] [--json=PATH] [--replay=0xS|PATH]\n",
      bad);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  harness::ChaosSoakOptions opts;
  harness::SweepCli cli;
  std::string replay_arg;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    char* end = nullptr;
    if (const char* v = value_of("--schedules=")) {
      opts.n_schedules = static_cast<int>(std::strtol(v, &end, 10));
      if (end == v || *end != '\0' || opts.n_schedules < 1) usage(argv[i]);
    } else if (const char* v = value_of("--seed=")) {
      cli.options.base_seed = std::strtoull(v, &end, 0);
      if (end == v || *end != '\0') usage(argv[i]);
    } else if (const char* v = value_of("--threads=")) {
      cli.options.threads = static_cast<int>(std::strtol(v, &end, 10));
      if (end == v || *end != '\0') usage(argv[i]);
    } else if (const char* v = value_of("--csv=")) {
      cli.csv_path = v;
    } else if (const char* v = value_of("--json=")) {
      cli.json_path = v;
    } else if (const char* v = value_of("--replay=")) {
      replay_arg = v;  // seed (0x or decimal) or repro-file path
      if (replay_arg.empty()) usage(argv[i]);
    } else {
      usage(argv[i]);
    }
  }

  if (!replay_arg.empty()) return fuzz::replay_main(replay_arg, opts);

  const std::vector<harness::SweepJob> jobs =
      harness::make_chaos_jobs(opts, cli.options.base_seed);
  harness::ResultSink sink{jobs.size()};
  const harness::SweepTiming timing =
      harness::run_sweep(jobs, sink, cli.options);
  harness::report("chaos_soak", cli, sink, timing);

  // Verdict + differential summary.
  int failures = 0;
  for (std::size_t i = 0; i < sink.size(); ++i) {
    const harness::Record& row = sink.record(i);
    if (row.get("graceful") != "1") {
      ++failures;
      std::printf("FAILING schedule %s (plan %s)\n  replay: chaos_soak "
                  "--replay=%s\n",
                  std::string{row.get("id")}.c_str(),
                  std::string{row.get("plan")}.c_str(),
                  std::string{row.get("plan_seed")}.c_str());
    }
  }
  std::printf("\nchaos soak: %d schedules x %zu variants, %d failure(s)\n",
              opts.n_schedules, opts.variants.size(), failures);
  for (const app::Variant v : opts.variants) {
    int complete = 0;
    int rows = 0;
    double worst = 0.0;
    for (std::size_t i = 0; i < sink.size(); ++i) {
      const harness::Record& row = sink.record(i);
      if (row.get("variant") != app::to_string(v)) continue;
      ++rows;
      complete += std::atoi(std::string{row.get("complete")}.c_str());
      worst = std::max(
          worst, std::atof(std::string{row.get("last_completion_s")}.c_str()));
    }
    std::printf("  %-8s %3d/%d flows complete, worst completion %.2fs\n",
                app::to_string(v), complete, rows * opts.base.n_flows, worst);
  }
  return failures == 0 ? 0 : 1;
}
