// Bursty-loss recovery, narrated: inject a 6-packet burst into one window
// and watch New-Reno and Robust Recovery handle it side by side.
//
// This is the paper's core story in one terminal screen: New-Reno fishes
// out one hole per RTT while its per-RTT transmission count decays; RR
// treats the burst as a single congestion signal, keeps the ACK clock
// spinning, probes the new equilibrium while repairing, and leaves
// recovery with an accurate congestion window.
//
// Usage: bursty_loss_recovery [burst_size] (default 6)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "app/flow_factory.hpp"
#include "app/ftp.hpp"
#include "core/rr_sender.hpp"
#include "net/drop_tail.hpp"
#include "net/dumbbell.hpp"
#include "sim/simulator.hpp"
#include "stats/tracer.hpp"

namespace {

using namespace rrtcp;

// Prints one line per interesting sender event.
class Narrator final : public tcp::SenderObserver {
 public:
  explicit Narrator(const char* tag) : tag_{tag} {}

  void on_send(sim::Time now, std::uint64_t seq, std::uint32_t,
               bool rtx) override {
    if (rtx)
      std::printf("%8.3fs  %-8s retransmit pkt %llu\n", now.to_seconds(),
                  tag_, static_cast<unsigned long long>(seq / 1000));
  }
  void on_phase(sim::Time now, tcp::TcpPhase p) override {
    std::printf("%8.3fs  %-8s phase -> %s\n", now.to_seconds(), tag_,
                tcp::to_string(p));
  }
  void on_timeout(sim::Time now) override {
    std::printf("%8.3fs  %-8s *** COARSE TIMEOUT ***\n", now.to_seconds(),
                tag_);
  }

 private:
  const char* tag_;
};

void run(app::Variant v, int burst) {
  std::printf("\n===== %s, %d-packet burst loss =====\n", app::to_string(v),
              burst);
  sim::Simulator sim;
  net::DumbbellConfig netcfg;
  netcfg.n_flows = 1;
  netcfg.make_bottleneck_queue = [] {
    return std::make_unique<net::DropTailQueue>(100);
  };
  net::DumbbellTopology topo{sim, netcfg};

  std::vector<std::pair<net::FlowId, std::uint64_t>> losses;
  for (int i = 0; i < burst; ++i)
    losses.push_back({1, static_cast<std::uint64_t>(30 + i) * 1000});
  topo.bottleneck().set_loss_model(
      std::make_unique<net::ListLossModel>(losses));

  tcp::TcpConfig tcfg;
  tcfg.init_ssthresh_pkts = 10;
  auto flow = app::make_flow(v, sim, topo.sender_node(0),
                             topo.receiver_node(0), 1, tcfg);
  Narrator narrator{app::to_string(v)};
  flow.sender->add_observer(&narrator);
  app::FtpSource ftp{sim, *flow.sender, sim::Time::zero(), 100'000};

  sim.run_until(sim::Time::seconds(30));

  const auto& st = flow.sender->stats();
  std::printf("  -> transfer of 100 packets finished at %.3f s "
              "(%llu rtx, %llu timeouts)\n",
              flow.sender->completion_time().to_seconds(),
              static_cast<unsigned long long>(st.retransmissions),
              static_cast<unsigned long long>(st.timeouts));
  if (v == app::Variant::kRr) {
    auto* rr = static_cast<core::RrSender*>(flow.sender.get());
    std::printf("  -> RR detected %llu further losses inside recovery and "
                "issued %llu rescue retransmissions\n",
                static_cast<unsigned long long>(rr->further_loss_events()),
                static_cast<unsigned long long>(rr->rescue_retransmissions()));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int burst = argc > 1 ? std::atoi(argv[1]) : 6;
  if (burst < 1 || burst > 20) {
    std::fprintf(stderr, "burst size must be in 1..20\n");
    return 1;
  }
  std::printf("Dropping packets 30..%d of a 100-packet transfer\n"
              "(0.8 Mbps / 100 ms bottleneck, drop-tail, window ~12)\n",
              29 + burst);
  run(rrtcp::app::Variant::kNewReno, burst);
  run(rrtcp::app::Variant::kRr, burst);
  return 0;
}
