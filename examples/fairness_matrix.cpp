// Fairness matrix: a targeted finite transfer competing against a wall of
// background flows, for every (target, background) TCP-variant pair — a
// generalization of the paper's Table 5 beyond {Reno, RR}.
//
// Usage: fairness_matrix [n_background] [target_kbytes]
//   defaults: 19 background flows, 100 KB target (the paper's setup)
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "app/flow_factory.hpp"
#include "app/ftp.hpp"
#include "net/drop_tail.hpp"
#include "net/dumbbell.hpp"
#include "sim/simulator.hpp"
#include "stats/table.hpp"

namespace {

using namespace rrtcp;

struct Outcome {
  double delay_s = -1;
  double loss_pct = 0;
};

Outcome run_pair(app::Variant target, app::Variant background, int n_bg,
                 std::uint64_t target_bytes) {
  sim::Simulator sim;
  net::DumbbellConfig netcfg;
  netcfg.n_flows = n_bg + 1;
  netcfg.make_bottleneck_queue = [] {
    return std::make_unique<net::DropTailQueue>(25);
  };
  net::DumbbellTopology topo{sim, netcfg};

  const net::FlowId target_flow = n_bg + 1;
  std::uint64_t target_drops = 0;
  topo.bottleneck().queue().set_drop_callback([&](const net::Packet& p) {
    if (p.flow == target_flow) ++target_drops;
  });

  std::vector<app::Flow> flows;
  std::vector<std::unique_ptr<app::FtpSource>> sources;
  for (int i = 0; i < n_bg; ++i) {
    flows.push_back(app::make_flow(background, sim, topo.sender_node(i),
                                   topo.receiver_node(i), i + 1));
    sources.push_back(std::make_unique<app::FtpSource>(
        sim, *flows.back().sender, sim::Time::milliseconds(500) * i,
        std::nullopt));
  }
  flows.push_back(app::make_flow(target, sim, topo.sender_node(n_bg),
                                 topo.receiver_node(n_bg), target_flow));
  sources.push_back(std::make_unique<app::FtpSource>(
      sim, *flows.back().sender, sim::Time::milliseconds(4800),
      target_bytes));
  auto& tf = *flows.back().sender;

  sim.run_until(sim::Time::seconds(180));

  Outcome out;
  if (tf.complete()) out.delay_s = tf.completion_time().to_seconds() - 4.8;
  const double offered = static_cast<double>(tf.stats().data_packets_sent +
                                             tf.stats().retransmissions);
  if (offered > 0) out.loss_pct = 100.0 * target_drops / offered;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int n_bg = argc > 1 ? std::atoi(argv[1]) : 19;
  const std::uint64_t kb = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 100;
  std::printf("targeted %llu KB transfer vs %d background flows "
              "(0.8 Mbps bottleneck, drop-tail 25)\n",
              static_cast<unsigned long long>(kb), n_bg);
  std::printf("cells: transfer delay (s) / loss rate of the target flow\n");

  rrtcp::stats::Table table{{"target \\ background", "tahoe", "reno",
                             "newreno", "sack", "rr"}};
  for (rrtcp::app::Variant target : rrtcp::app::kAllVariants) {
    std::vector<std::string> row{rrtcp::app::to_string(target)};
    for (rrtcp::app::Variant bg : rrtcp::app::kAllVariants) {
      const Outcome o = run_pair(target, bg, n_bg, kb * 1000);
      row.push_back(o.delay_s < 0
                        ? "stalled"
                        : rrtcp::stats::Table::cell("%.1fs / %.0f%%",
                                                    o.delay_s, o.loss_pct));
    }
    table.add_row(std::move(row));
  }
  table.print();
  return 0;
}
