// rrtcp_sim — a small command-line driver over the public API: build a
// dumbbell, run any mix of TCP variants over a drop-tail or RED (optionally
// ECN) bottleneck with optional random loss, and print per-flow results.
//
//   rrtcp_sim [options]
//     --variant V       tahoe|reno|newreno|sack|rr|rightedge|linkung (rr)
//     --flows N         number of flows (2)
//     --time SECONDS    simulated horizon (30)
//     --buffer PKTS     bottleneck buffer (8)
//     --red             RED gateway instead of drop-tail
//     --ecn             RED marks instead of dropping (implies --red)
//     --loss P          uniform random data loss at R1 (0)
//     --ack-loss P      uniform random ACK loss at R2->R1 (0)
//     --reorder P       fraction of data packets delayed 1.5 RTT (0)
//     --bytes N         finite transfer size per flow (unbounded)
//     --seed S          RNG seed (1)
//     --verbose         per-event debug trace
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <vector>

#include "app/flow_factory.hpp"
#include "app/ftp.hpp"
#include "net/drop_tail.hpp"
#include "net/dumbbell.hpp"
#include "net/red.hpp"
#include "sim/log.hpp"
#include "sim/simulator.hpp"
#include "stats/table.hpp"

namespace {

struct Options {
  rrtcp::app::Variant variant = rrtcp::app::Variant::kRr;
  int flows = 2;
  double time_s = 30;
  std::uint64_t buffer = 8;
  bool red = false;
  bool ecn = false;
  double loss = 0;
  double ack_loss = 0;
  double reorder = 0;
  std::optional<std::uint64_t> bytes;
  std::uint64_t seed = 1;
};

[[noreturn]] void usage() {
  std::fprintf(stderr, "see the header of examples/rrtcp_sim.cpp\n");
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        usage();
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--variant"))
      o.variant = rrtcp::app::variant_from_string(need("--variant"));
    else if (!std::strcmp(argv[i], "--flows"))
      o.flows = std::atoi(need("--flows"));
    else if (!std::strcmp(argv[i], "--time"))
      o.time_s = std::atof(need("--time"));
    else if (!std::strcmp(argv[i], "--buffer"))
      o.buffer = std::strtoull(need("--buffer"), nullptr, 10);
    else if (!std::strcmp(argv[i], "--red"))
      o.red = true;
    else if (!std::strcmp(argv[i], "--ecn"))
      o.red = o.ecn = true;
    else if (!std::strcmp(argv[i], "--loss"))
      o.loss = std::atof(need("--loss"));
    else if (!std::strcmp(argv[i], "--ack-loss"))
      o.ack_loss = std::atof(need("--ack-loss"));
    else if (!std::strcmp(argv[i], "--reorder"))
      o.reorder = std::atof(need("--reorder"));
    else if (!std::strcmp(argv[i], "--bytes"))
      o.bytes = std::strtoull(need("--bytes"), nullptr, 10);
    else if (!std::strcmp(argv[i], "--seed"))
      o.seed = std::strtoull(need("--seed"), nullptr, 10);
    else if (!std::strcmp(argv[i], "--verbose"))
      rrtcp::sim::Log::set_level(rrtcp::sim::LogLevel::kDebug);
    else
      usage();
  }
  if (o.flows < 1 || o.time_s <= 0) usage();
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rrtcp;
  const Options o = parse(argc, argv);

  sim::Simulator sim;
  net::DumbbellConfig netcfg;
  netcfg.n_flows = o.flows;
  net::RedQueue* red = nullptr;
  if (o.red) {
    netcfg.make_bottleneck_queue = [&]() -> std::unique_ptr<net::QueueDisc> {
      net::RedConfig rc;
      rc.buffer_packets = std::max<std::uint64_t>(o.buffer, 3);
      rc.max_th = rc.buffer_packets * 0.8;
      rc.min_th = rc.buffer_packets * 0.2;
      rc.ecn = o.ecn;
      rc.seed = o.seed;
      rc.mean_pkt_tx = sim::Time::transmission(1000, 800'000);
      auto q = std::make_unique<net::RedQueue>(sim, rc);
      red = q.get();
      return q;
    };
  } else {
    netcfg.make_bottleneck_queue = [&] {
      return std::make_unique<net::DropTailQueue>(o.buffer);
    };
  }
  net::DumbbellTopology topo{sim, netcfg};
  if (o.loss > 0)
    topo.bottleneck().set_loss_model(
        std::make_unique<net::UniformLossModel>(o.loss, o.seed));
  if (o.ack_loss > 0)
    topo.reverse_bottleneck().set_loss_model(
        std::make_unique<net::UniformLossModel>(o.ack_loss, o.seed + 1,
                                                /*data_only=*/false));
  if (o.reorder > 0)
    topo.bottleneck().set_reorder_model(std::make_unique<net::ReorderModel>(
        o.reorder, sim::Time::milliseconds(300), o.seed + 2));

  tcp::TcpConfig tcfg;
  tcfg.ecn_enabled = o.ecn;

  std::vector<app::Flow> flows;
  std::vector<std::unique_ptr<app::FtpSource>> sources;
  for (int i = 0; i < o.flows; ++i) {
    flows.push_back(app::make_flow(o.variant, sim, topo.sender_node(i),
                                   topo.receiver_node(i), i + 1, tcfg));
    sources.push_back(std::make_unique<app::FtpSource>(
        sim, *flows.back().sender, sim::Time::milliseconds(200) * i,
        o.bytes));
  }

  const sim::Time horizon = sim::Time::seconds(o.time_s);
  sim.run_until(horizon);

  stats::Table table{{"flow", "goodput (kbit/s)", "done", "rtx", "timeouts",
                      "ecn reductions"}};
  double total = 0;
  for (int i = 0; i < o.flows; ++i) {
    const auto& st = flows[i].sender->stats();
    const double kbps =
        flows[i].receiver->bytes_in_order() * 8.0 / o.time_s / 1e3;
    total += kbps;
    table.add_row({stats::Table::cell("%d", i + 1),
                   stats::Table::cell("%.1f", kbps),
                   flows[i].sender->complete() ? "yes" : "-",
                   stats::Table::cell("%llu",
                                      static_cast<unsigned long long>(st.retransmissions)),
                   stats::Table::cell("%llu", static_cast<unsigned long long>(st.timeouts)),
                   stats::Table::cell("%llu",
                                      static_cast<unsigned long long>(st.ecn_reductions))});
  }
  std::printf("%s x%d over %s (buffer %llu pkts), %.0f s\n",
              app::to_string(o.variant), o.flows,
              o.red ? (o.ecn ? "RED+ECN" : "RED") : "drop-tail",
              static_cast<unsigned long long>(o.buffer), o.time_s);
  table.print();
  std::printf("aggregate: %.1f of 800 kbit/s; bottleneck drops %llu%s\n",
              total,
              static_cast<unsigned long long>(topo.bottleneck().queue().stats().dropped),
              red ? stats::Table::cell(", ECN marks %llu",
                                       static_cast<unsigned long long>(red->ecn_marks()))
                        .c_str()
                  : "");
  return 0;
}
