// RED gateway dynamics: ten staggered FTP/TCP flows share the paper's
// 0.8 Mbps bottleneck behind a RED queue (Table 4 parameters). Prints the
// RED average-queue trajectory alongside per-flow goodput — the
// environment of the paper's Figure 6.
//
// Usage: red_dynamics [variant] (default rr)
#include <cstdio>
#include <vector>

#include "app/flow_factory.hpp"
#include "app/ftp.hpp"
#include "net/dumbbell.hpp"
#include "net/red.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace rrtcp;

  const app::Variant variant =
      argc > 1 ? app::variant_from_string(argv[1]) : app::Variant::kRr;

  sim::Simulator sim;
  net::DumbbellConfig netcfg;
  netcfg.n_flows = 10;
  net::RedQueue* red = nullptr;
  netcfg.make_bottleneck_queue = [&] {
    net::RedConfig rc;  // Table 4 defaults: 25/5/20/0.02/0.002
    rc.mean_pkt_tx = sim::Time::transmission(1000, 800'000);
    auto q = std::make_unique<net::RedQueue>(sim, rc);
    red = q.get();
    return q;
  };
  net::DumbbellTopology topo{sim, netcfg};

  tcp::TcpConfig tcfg;
  tcfg.max_window_pkts = 20;
  tcfg.init_ssthresh_pkts = 20;

  std::vector<app::Flow> flows;
  std::vector<std::unique_ptr<app::FtpSource>> sources;
  for (int i = 0; i < 10; ++i) {
    const sim::Time start =
        i < 5 ? sim::Time::zero() : sim::Time::milliseconds(500) * (i - 4);
    flows.push_back(app::make_flow(variant, sim, topo.sender_node(i),
                                   topo.receiver_node(i), i + 1, tcfg));
    sources.push_back(std::make_unique<app::FtpSource>(
        sim, *flows[i].sender, start, std::nullopt));
  }

  // Sample the RED average queue every 100 ms.
  std::printf("# time_s  red_avg_queue  instantaneous_queue\n");
  std::function<void()> probe = [&] {
    std::printf("  %5.2f    %6.2f         %zu\n", sim.now().to_seconds(),
                red->avg_queue(), red->len_packets());
    if (sim.now() < sim::Time::seconds(6))
      sim.schedule_in(sim::Time::milliseconds(100), probe);
  };
  sim.schedule_at(sim::Time::zero(), probe);

  const sim::Time horizon = sim::Time::seconds(6);
  sim.run_until(horizon);

  std::printf("\nper-flow goodput after %.0f s (%s):\n", horizon.to_seconds(),
              app::to_string(variant));
  double total = 0;
  for (int i = 0; i < 10; ++i) {
    const double kbps =
        flows[i].receiver->bytes_in_order() * 8.0 / horizon.to_seconds() / 1e3;
    total += kbps;
    std::printf("  flow %2d: %6.1f kbit/s (%llu timeouts)\n", i + 1, kbps,
                static_cast<unsigned long long>(flows[i].sender->stats().timeouts));
  }
  std::printf("  total:   %6.1f kbit/s of 800 (early drops %llu, forced %llu)\n",
              total, static_cast<unsigned long long>(red->early_drops()),
              static_cast<unsigned long long>(red->forced_drops()));
  return 0;
}
