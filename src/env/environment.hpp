// The environment seam: everything a TCP endpoint needs from the world.
//
// TcpSenderBase/TcpReceiver and every congestion-control variant are written
// against this interface instead of sim::Simulator directly, so the same
// algorithm object runs unchanged inside the discrete-event simulator
// (env::SimEnvironment, src/env/sim_env.hpp) and over real UDP sockets
// (live::LiveEnvironment, src/live/live_env.hpp). The surface is
// deliberately narrow — five capabilities, nothing else:
//
//   clock      now() — monotonic, sim::Time-valued. In the simulator this
//              is virtual time; live it is CLOCK_MONOTONIC rebased to zero
//              at environment construction. Never wall time (the
//              rrtcp-wall-clock tidy check enforces that outside src/live).
//   address    local_id()/peer_id() — the endpoint's own net::NodeId and
//              its peer's. An Environment is PER-ENDPOINT: it knows who it
//              is and who it talks to, so transport code never sees
//              sockets, routes, or topology.
//   packets    attach()/detach() register the endpoint for ingress under a
//              FlowId; send() hands an egress packet to the environment.
//   timers     a small registry of restartable one-shot timers. Callbacks
//              are fixed at timer_create() (cold path, may allocate);
//              arm/cancel are the hot path and must not allocate. Use the
//              env::Timer wrapper below rather than raw TimerIds.
//   trace      a printf-style sink stamped with the environment clock; the
//              default forwards to sim::Log so sim traces are byte-for-byte
//              what they were before this seam existed.
//
// Ordering contract (what makes differential sim-vs-live testing honest):
// timers armed for the same instant fire in arm order; receive callbacks
// and timer callbacks never overlap (single-threaded dispatch in both
// implementations); now() is non-decreasing across all callbacks.
#pragma once

#include <cstdarg>
#include <cstdint>
#include <functional>
#include <utility>

#include "net/node.hpp"
#include "net/packet.hpp"
#include "sim/assert.hpp"
#include "sim/log.hpp"
#include "sim/time.hpp"

namespace rrtcp::env {

class Environment {
 public:
  using TimerId = std::uint32_t;
  static constexpr TimerId kInvalidTimer = ~TimerId{0};

  virtual ~Environment() = default;

  // ---- Clock -----------------------------------------------------------
  virtual sim::Time now() const = 0;

  // ---- Addressing ------------------------------------------------------
  virtual net::NodeId local_id() const = 0;
  virtual net::NodeId peer_id() const = 0;

  // ---- Packet I/O ------------------------------------------------------
  // Register `agent` to receive packets addressed to `flow` at this
  // endpoint. One agent per flow; re-attaching replaces.
  virtual void attach(net::FlowId flow, net::Agent* agent) = 0;
  virtual void detach(net::FlowId flow) = 0;
  // Hand an egress packet to the environment (synchronous: the packet has
  // left the endpoint when this returns; delivery latency is the
  // environment's business).
  virtual void send(net::Packet p) = 0;

  // ---- Timers ----------------------------------------------------------
  // Create a restartable one-shot timer with a fixed callback. Cold path.
  virtual TimerId timer_create(std::function<void()> on_fire) = 0;
  virtual void timer_destroy(TimerId id) = 0;
  // Arm — or re-arm, superseding a pending expiry — to fire `delay` from
  // now(). Hot path: must not allocate.
  virtual void timer_arm(TimerId id, sim::Time delay) = 0;
  // Disarm; no-op if not pending.
  virtual void timer_cancel(TimerId id) = 0;
  virtual bool timer_pending(TimerId id) const = 0;

  // ---- Trace sink ------------------------------------------------------
  // Stamped with now(); the default implementation forwards to sim::Log so
  // existing trace output is unchanged. Call through the RRTCP_ENV_* macros
  // (below) so the level check precedes any formatting work.
  virtual void vtrace(sim::LogLevel level, const char* component,
                      const char* fmt, std::va_list args) {
    sim::Log::vwrite(level, now(), component, fmt, args);
  }
  void trace(sim::LogLevel level, const char* component, const char* fmt, ...)
      __attribute__((format(printf, 4, 5))) {
    std::va_list args;
    va_start(args, fmt);
    vtrace(level, component, fmt, args);
    va_end(args);
  }
};

// Value-type handle over the environment's timer registry, mirroring
// sim::Timer's shape (the RTO idiom: fixed callback, schedule()/cancel()
// control firing). Destroying the Timer destroys the underlying slot, so a
// Timer must not outlive its Environment.
class Timer {
 public:
  Timer(Environment& env, std::function<void()> on_fire)
      : env_{env}, id_{env.timer_create(std::move(on_fire))} {
    RRTCP_ASSERT(id_ != Environment::kInvalidTimer);
  }

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  ~Timer() { env_.timer_destroy(id_); }

  // Arm (or re-arm) to fire `delay` from now. A pending expiry is
  // superseded.
  void schedule(sim::Time delay) {
    expiry_ = env_.now() + delay;
    env_.timer_arm(id_, delay);
  }

  void cancel() { env_.timer_cancel(id_); }

  bool pending() const { return env_.timer_pending(id_); }

  // Absolute expiry of the last schedule() call; meaningful only while
  // pending().
  sim::Time expiry() const { return expiry_; }

 private:
  Environment& env_;
  Environment::TimerId id_;
  sim::Time expiry_ = sim::Time::zero();
};

}  // namespace rrtcp::env

// Environment-clocked trace macros: same shape as RRTCP_TRACE/DEBUG/INFO
// but routed through the environment's sink, which stamps now() itself.
#define RRTCP_ENV_LOG(level, env, component, ...)               \
  do {                                                          \
    if (::rrtcp::sim::Log::enabled(level))                      \
      (env).trace(level, component, __VA_ARGS__);               \
  } while (0)

#define RRTCP_ENV_INFO(env, component, ...) \
  RRTCP_ENV_LOG(::rrtcp::sim::LogLevel::kInfo, env, component, __VA_ARGS__)
#define RRTCP_ENV_DEBUG(env, component, ...) \
  RRTCP_ENV_LOG(::rrtcp::sim::LogLevel::kDebug, env, component, __VA_ARGS__)
#define RRTCP_ENV_TRACE(env, component, ...) \
  RRTCP_ENV_LOG(::rrtcp::sim::LogLevel::kTrace, env, component, __VA_ARGS__)
