#include "env/sim_env.hpp"

#include <utility>

#include "sim/assert.hpp"

namespace rrtcp::env {

Environment::TimerId SimEnvironment::timer_create(
    std::function<void()> on_fire) {
  if (!free_.empty()) {
    const TimerId id = free_.back();
    free_.pop_back();
    timers_[id] = std::make_unique<sim::Timer>(sim_, std::move(on_fire));
    return id;
  }
  timers_.push_back(std::make_unique<sim::Timer>(sim_, std::move(on_fire)));
  return static_cast<TimerId>(timers_.size() - 1);
}

void SimEnvironment::timer_destroy(TimerId id) {
  RRTCP_ASSERT(id < timers_.size() && timers_[id] != nullptr);
  timers_[id].reset();  // sim::Timer's destructor cancels any pending fire
  free_.push_back(id);
}

void SimEnvironment::timer_arm(TimerId id, sim::Time delay) {
  RRTCP_DASSERT(id < timers_.size() && timers_[id] != nullptr);
  timers_[id]->schedule(delay);
}

void SimEnvironment::timer_cancel(TimerId id) {
  RRTCP_DASSERT(id < timers_.size() && timers_[id] != nullptr);
  timers_[id]->cancel();
}

bool SimEnvironment::timer_pending(TimerId id) const {
  RRTCP_DASSERT(id < timers_.size() && timers_[id] != nullptr);
  return timers_[id]->pending();
}

}  // namespace rrtcp::env
