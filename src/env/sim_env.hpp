// The simulator embodiment of env::Environment.
//
// One SimEnvironment wraps one endpoint's view of a simulation: the shared
// sim::Simulator clock/event queue, the net::Node the endpoint lives on,
// and the NodeId of its peer. Every operation is a thin forward — attach is
// a flat-table insert, send is a synchronous Node::inject, timers are
// pooled sim::Timer slots — so introducing this seam adds no scheduler
// events and reorders nothing: traces are byte-identical to the
// pre-Environment code (tests/regression pins that).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "env/environment.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace rrtcp::env {

class SimEnvironment final : public Environment {
 public:
  SimEnvironment(sim::Simulator& sim, net::Node& node, net::NodeId peer)
      : sim_{sim}, node_{node}, peer_{peer} {}

  sim::Time now() const override { return sim_.now(); }

  net::NodeId local_id() const override { return node_.id(); }
  net::NodeId peer_id() const override { return peer_; }

  void attach(net::FlowId flow, net::Agent* agent) override {
    node_.attach_agent(flow, agent);
  }
  void detach(net::FlowId flow) override { node_.detach_agent(flow); }
  void send(net::Packet p) override { node_.inject(std::move(p)); }

  TimerId timer_create(std::function<void()> on_fire) override;
  void timer_destroy(TimerId id) override;
  void timer_arm(TimerId id, sim::Time delay) override;
  void timer_cancel(TimerId id) override;
  bool timer_pending(TimerId id) const override;

  // Escape hatches for harness/instrumentation code that genuinely lives
  // in the simulator (NOT for transport algorithms — those see only the
  // Environment base).
  sim::Simulator& simulator() { return sim_; }
  net::Node& node() { return node_; }

 private:
  sim::Simulator& sim_;
  net::Node& node_;
  net::NodeId peer_;

  // Timer slots. unique_ptr, not value storage: sim::Timer pins its `this`
  // inside the scheduled event's capture, so slots must be address-stable
  // across vector growth. Destroyed slots go on the free list; an endpoint
  // owns O(1) timers, so this never grows past a handful.
  std::vector<std::unique_ptr<sim::Timer>> timers_;
  std::vector<TimerId> free_;
};

}  // namespace rrtcp::env
