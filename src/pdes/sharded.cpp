#include "pdes/sharded.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "app/sender_factory.hpp"
#include "net/drop_tail.hpp"
#include "sim/assert.hpp"

namespace rrtcp::pdes {

ShardedScenario::ShardedScenario(harness::ScenarioSpec spec)
    : spec_{std::move(spec)} {
  spec_.expand_flow_sets();

  // Dumbbell mode, an explicit single shard, or a graph the partitioner
  // cannot split (all nodes reachable over zero-delay links) all run the
  // plain engine: shards=1 is not a special case of the PDES loop, it IS
  // the existing Scenario — byte-identical to every pinned trace.
  const bool want_pdes = spec_.shard_count > 1 && !spec_.graph.empty();
  if (want_pdes)
    part_ = topo::partition_graph(spec_.graph, spec_.shard_count);
  if (!want_pdes || part_.n_shards <= 1) {
    single_ = std::make_unique<harness::Scenario>(std::move(spec_));
    // Keep the stored spec readable through spec() even after delegating.
    spec_ = single_->spec();
    return;
  }

  RRTCP_ASSERT_MSG(!spec_.flow_maker,
                   "flow_maker hooks are not supported in sharded mode");
  table_ = topo::compute_route_table(spec_.graph);
  build_shards();
  build_flows();
  start_workers();
}

ShardedScenario::~ShardedScenario() {
  stop_workers();
  // Tracers detach before the senders they observe die with the arena.
  for (auto& fi : instruments_) {
    if (fi->sender == nullptr) continue;
    if (fi->phases) fi->sender->remove_observer(fi->phases.get());
    if (fi->seq) fi->sender->remove_observer(fi->seq.get());
    if (fi->meter) fi->sender->remove_observer(fi->meter.get());
  }
}

std::unique_ptr<ShardedScenario> ShardedScenario::try_build(
    harness::ScenarioSpec spec, harness::SpecError* err) {
  if (std::optional<harness::SpecError> e = harness::Scenario::validate(spec)) {
    if (err != nullptr) *err = std::move(*e);
    return nullptr;
  }
  return std::make_unique<ShardedScenario>(std::move(spec));
}

void ShardedScenario::build_shards() {
  const topo::GraphSpec& g = spec_.graph;

  shards_.reserve(static_cast<std::size_t>(part_.n_shards));
  for (int s = 0; s < part_.n_shards; ++s) {
    auto sh = std::make_unique<Shard>();
    // Engine-tier selection must precede every schedule, as in Scenario.
    if (!spec_.timer_wheel) sh->sim.set_timer_wheel_enabled(false);
    shards_.push_back(std::move(sh));
  }
  merge_scratch_.resize(static_cast<std::size_t>(part_.n_shards));

  // Nodes carry their GLOBAL ids — flow/route addressing is identical to
  // the single-engine build; sharding only decides which simulator runs
  // each node's events.
  nodes_.reserve(g.nodes.size());
  for (std::size_t i = 0; i < g.nodes.size(); ++i)
    nodes_.push_back(std::make_unique<net::Node>(static_cast<net::NodeId>(i)));

  // Links are owned by their tail's shard and scheduled on its simulator.
  // A cut link (head on another shard) delivers into its Channel instead
  // of a destination node.
  links_.reserve(g.links.size());
  for (std::size_t li = 0; li < g.links.size(); ++li) {
    const topo::LinkSpec& ls = g.links[li];
    Shard& owner = *shards_[static_cast<std::size_t>(part_.link_shard[li])];
    net::LinkConfig lc{ls.bandwidth_bps, ls.delay, ls.name};
    auto queue = ls.make_queue
                     ? ls.make_queue(owner.sim)
                     : std::make_unique<net::DropTailQueue>(ls.queue_packets);
    auto link =
        std::make_unique<net::Link>(owner.sim, std::move(lc), std::move(queue));
    link->set_dst(nodes_[static_cast<std::size_t>(ls.to)].get());
    links_.push_back(std::move(link));
  }
  for (const int li : part_.cut_links) {
    const topo::LinkSpec& ls = g.links[static_cast<std::size_t>(li)];
    auto ch = std::make_unique<Channel>(li);
    links_[static_cast<std::size_t>(li)]->set_remote_sink(ch.get());
    channels_.push_back(std::move(ch));
    channel_dst_.push_back(nodes_[static_cast<std::size_t>(ls.to)].get());
    channel_dst_shard_.push_back(
        part_.node_shard[static_cast<std::size_t>(ls.to)]);
  }

  // Install the GLOBAL next-hop table. Every route entry at node v names a
  // link leaving v, which v's shard owns — so each shard's forwarding is
  // self-contained.
  const int n = g.n_nodes();
  for (int at = 0; at < n; ++at) {
    for (int dst = 0; dst < n; ++dst) {
      const int li = table_[static_cast<std::size_t>(at) *
                                static_cast<std::size_t>(n) +
                            static_cast<std::size_t>(dst)];
      if (li >= 0)
        nodes_[static_cast<std::size_t>(at)]->add_route(
            static_cast<net::NodeId>(dst),
            links_[static_cast<std::size_t>(li)].get());
    }
  }
}

void ShardedScenario::build_flows() {
  const app::SenderFactory& factory = app::SenderFactory::instance();

  flows_.reserve(spec_.flows.size());
  instruments_.reserve(spec_.flows.size());
  for (std::size_t i = 0; i < spec_.flows.size(); ++i) {
    const harness::FlowSpec& fs = spec_.flows[i];
    RRTCP_ASSERT_MSG(fs.src_node >= 0 && fs.dst_node >= 0,
                     "graph-mode flows need src_node/dst_node");
    const auto id = static_cast<net::FlowId>(i + 1);
    net::Node& snd = *nodes_[static_cast<std::size_t>(fs.src_node)];
    net::Node& rcv = *nodes_[static_cast<std::size_t>(fs.dst_node)];
    Shard& snd_shard =
        *shards_[static_cast<std::size_t>(
            part_.node_shard[static_cast<std::size_t>(fs.src_node)])];
    Shard& rcv_shard =
        *shards_[static_cast<std::size_t>(
            part_.node_shard[static_cast<std::size_t>(fs.dst_node)])];

    ShardedFlow f;
    // Endpoints live on their own shard's simulator; a flow whose data
    // path crosses a cut simply has its two environments on different
    // engines (the env seam from PR 9 is what makes this a local choice).
    f.snd_env = arena_.create<env::SimEnvironment>(snd_shard.sim, snd,
                                                   rcv.id());
    f.rcv_env = arena_.create<env::SimEnvironment>(rcv_shard.sim, rcv,
                                                   snd.id());
    const app::SenderFactory::Entry& entry = factory.at(fs.variant);
    void* mem = arena_.allocate(entry.size, entry.align);
    f.sender = arena_.adopt(
        factory.make_in(mem, fs.variant, *f.snd_env, id, fs.tcp));
    f.receiver = arena_.create<tcp::TcpReceiver>(
        *f.rcv_env, id, app::receiver_config_for(fs.variant, fs.tcp));

    if (fs.onoff) {
      traffic::OnOffConfig oc = *fs.onoff;
      oc.start = fs.start;
      f.onoff = arena_.create<traffic::OnOffSource>(
          snd_shard.sim, *f.sender, oc, spec_.seed,
          "onoff/" + std::to_string(i));
    } else {
      f.ftp = arena_.create<app::FtpSource>(snd_shard.sim, *f.sender,
                                            fs.start, fs.bytes);
    }
    flows_.push_back(f);

    // Tracer bundle (audit/watchdog are forced off in sharded mode — see
    // the header). Observers are shard-local: they hang off the sender.
    auto fi = std::make_unique<harness::FlowInstruments>();
    fi->sender = f.sender;
    if (spec_.instruments.tracers) {
      fi->meter = std::make_unique<stats::ThroughputMeter>();
      fi->seq = std::make_unique<stats::SeqTracer>(f.sender->config().mss);
      fi->phases = std::make_unique<stats::PhaseTracer>();
      f.sender->add_observer(fi->meter.get());
      f.sender->add_observer(fi->seq.get());
      f.sender->add_observer(fi->phases.get());
    }
    instruments_.push_back(std::move(fi));
  }

  for (std::size_t j = 0; j < spec_.cross_traffic.size(); ++j) {
    const harness::CbrSpec& cs = spec_.cross_traffic[j];
    RRTCP_ASSERT_MSG(cs.src_node >= 0 && cs.dst_node >= 0,
                     "graph-mode CBR streams need src_node/dst_node");
    RRTCP_ASSERT_MSG(cs.rate_bps > 0,
                     "graph-mode CBR streams need an explicit rate_bps");
    Shard& src_shard =
        *shards_[static_cast<std::size_t>(
            part_.node_shard[static_cast<std::size_t>(cs.src_node)])];
    traffic::CbrConfig cc;
    cc.rate_bps = cs.rate_bps;
    cc.packet_bytes = cs.packet_bytes;
    cc.start = cs.start;
    cc.stop = cs.stop;
    const auto flow_id = static_cast<net::FlowId>(spec_.flows.size() + j + 1);
    net::Node& dst = *nodes_[static_cast<std::size_t>(cs.dst_node)];
    cbr_sinks_.push_back(arena_.create<traffic::CbrSink>(dst, flow_id));
    cbr_sources_.push_back(arena_.create<traffic::CbrSource>(
        src_shard.sim, *nodes_[static_cast<std::size_t>(cs.src_node)],
        flow_id, dst.id(), cc));
  }
}

void ShardedScenario::start_workers() {
  workers_.reserve(shards_.size());
  for (int s = 0; s < static_cast<int>(shards_.size()); ++s)
    workers_.emplace_back([this, s] { worker_loop(s); });
}

void ShardedScenario::stop_workers() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

void ShardedScenario::worker_loop(int shard) {
  Shard& sh = *shards_[static_cast<std::size_t>(shard)];
  std::uint64_t seen = 0;
  for (;;) {
    sim::Time deadline;
    bool inclusive;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [&] { return shutdown_ || round_gen_ > seen; });
      if (shutdown_) return;
      seen = round_gen_;
      deadline = round_deadline_;
      inclusive = round_inclusive_;
    }
    // The shard event loop proper — runs outside the lock; all
    // cross-shard effects land in Channel buffers read only after the
    // barrier below.
    const std::uint64_t n = inclusive ? sh.sim.run_until(deadline)
                                      : sh.sim.run_before(deadline);
    {
      std::lock_guard<std::mutex> lk(mu_);
      sh.executed += n;
      if (--workers_running_ == 0) cv_done_.notify_all();
    }
  }
}

void ShardedScenario::parallel_window(sim::Time deadline, bool inclusive) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    workers_running_ = static_cast<int>(workers_.size());
    round_deadline_ = deadline;
    round_inclusive_ = inclusive;
    ++round_gen_;
  }
  cv_work_.notify_all();
  std::unique_lock<std::mutex> lk(mu_);
  cv_done_.wait(lk, [&] { return workers_running_ == 0; });
  ++rounds_;
}

std::size_t ShardedScenario::merge_channels(sim::Time count_upto) {
  for (auto& scratch : merge_scratch_) scratch.clear();
  for (std::size_t c = 0; c < channels_.size(); ++c) {
    Channel& ch = *channels_[c];
    std::vector<Channel::Msg>& inbox = ch.inbox();
    if (inbox.empty()) continue;
    auto& scratch =
        merge_scratch_[static_cast<std::size_t>(channel_dst_shard_[c])];
    for (Channel::Msg& m : inbox)
      scratch.push_back(Pending{m.arrival_ps, ch.link_index(), m.seq,
                                channel_dst_[c], std::move(m.pkt)});
    inbox.clear();
  }

  std::size_t due = 0;
  for (std::size_t s = 0; s < merge_scratch_.size(); ++s) {
    auto& scratch = merge_scratch_[s];
    if (scratch.empty()) continue;
    // Canonical cross-shard delivery order: arrival instant, then cut-link
    // index, then each link's FIFO sequence. Identical for every shard
    // count and thread schedule — this sort is the determinism contract.
    std::sort(scratch.begin(), scratch.end(),
              [](const Pending& a, const Pending& b) {
                if (a.arrival_ps != b.arrival_ps)
                  return a.arrival_ps < b.arrival_ps;
                if (a.link != b.link) return a.link < b.link;
                return a.seq < b.seq;
              });
    sim::Simulator& sim = shards_[s]->sim;
    for (Pending& p : scratch) {
      const sim::Time at = sim::Time::picoseconds(p.arrival_ps);
      if (at <= count_upto) ++due;
      net::Node* dst = p.dst;
      sim.schedule_at(at, [dst, pkt = std::move(p.pkt)]() mutable {
        dst->receive(std::move(pkt));
      });
    }
    scratch.clear();
  }
  return due;
}

std::uint64_t ShardedScenario::run() {
  if (single_) return single_->run();
  RRTCP_ASSERT_MSG(!ran_, "ShardedScenario::run is single-shot");
  ran_ = true;

  const sim::Time horizon = spec_.horizon;
  const sim::Time la = part_.lookahead;
  RRTCP_ASSERT(la > sim::Time::zero());

  // Conservative rounds over half-open windows [t, t+LA): no shard may
  // execute the boundary instant until the inboxes feeding it have merged.
  sim::Time t = sim::Time::zero();
  while (t + la < horizon) {
    t = t + la;
    parallel_window(t, /*inclusive=*/false);
    merge_channels(horizon);
  }
  // Terminal windows, deadline-inclusive like Scenario::run ==
  // run_until(horizon). A delivery can land exactly ON the horizon (send
  // at t, arrival t+LA == horizon), and executing it can emit nothing
  // earlier than horizon + serialization time — so the loop drains after
  // at most two passes; the count guards the general case.
  for (;;) {
    parallel_window(horizon, /*inclusive=*/true);
    if (merge_channels(horizon) == 0) break;
  }
  return events_executed();
}

std::uint64_t ShardedScenario::cross_shard_packets() const {
  std::uint64_t n = 0;
  for (const auto& ch : channels_) n += ch->total_pushed();
  return n;
}

std::uint64_t ShardedScenario::events_executed() const {
  std::uint64_t n = 0;
  for (const auto& sh : shards_) n += sh->executed;
  return n;
}

int ShardedScenario::n_flows() const {
  return single_ ? single_->n_flows() : static_cast<int>(flows_.size());
}

tcp::TcpSenderBase& ShardedScenario::sender(int i) {
  return single_ ? single_->sender(i)
                 : *flows_.at(static_cast<std::size_t>(i)).sender;
}

tcp::TcpReceiver& ShardedScenario::receiver(int i) {
  return single_ ? *single_->flow(i).receiver
                 : *flows_.at(static_cast<std::size_t>(i)).receiver;
}

app::FtpSource* ShardedScenario::source(int i) {
  return single_ ? single_->source(i)
                 : flows_.at(static_cast<std::size_t>(i)).ftp;
}

harness::FlowInstruments& ShardedScenario::instruments(int i) {
  return single_ ? single_->instruments(i)
                 : *instruments_.at(static_cast<std::size_t>(i));
}

int ShardedScenario::n_cbr() const {
  return single_ ? single_->n_cbr() : static_cast<int>(cbr_sinks_.size());
}

traffic::CbrSink& ShardedScenario::cbr_sink(int i) {
  return single_ ? single_->cbr_sink(i)
                 : *cbr_sinks_.at(static_cast<std::size_t>(i));
}

net::Link& ShardedScenario::link(int i) {
  return single_ ? single_->graph().link(i)
                 : *links_.at(static_cast<std::size_t>(i));
}

}  // namespace rrtcp::pdes
