// Sharded conservative-synchronization simulation engine.
//
// One scenario, many cores: the topology graph is partitioned into
// per-shard subgraphs (topo/partition.hpp — cut only at links, zero-delay
// links never cut), each shard runs its own pooled wheel+heap
// sim::Simulator on a dedicated thread, and the shards synchronize with
// classic conservative lookahead (null-message/barrier PDES):
//
//   lookahead LA = min propagation delay over all cut links (> 0).
//   Round k covers the half-open window [k*LA, (k+1)*LA): every shard
//   calls Simulator::run_before((k+1)*LA), so no event at or past the
//   boundary fires early. A packet crossing a cut link is handed off at
//   its serialization end t_done (net::RemoteSink), stamped with its
//   arrival time t_done + prop_delay + jitter >= t_done + LA >= (k+1)*LA —
//   i.e. every cross-shard packet produced in round k arrives at or after
//   the next boundary, so merging inboxes AT the boundary can never
//   deliver into a shard's past. That is the whole causality proof: the
//   propagation pipe of the cut links funds the lookahead.
//
// Between rounds the coordinator thread (the caller of run()) drains every
// channel and schedules the arrivals into the destination shards in one
// canonical order — (arrival time, cut-link index, per-channel sequence) —
// so the merge is deterministic for ANY shard count and thread timing.
// Determinism contract (DESIGN.md §17): a fixed spec at a fixed shard
// count is bit-repeatable regardless of thread scheduling, and across
// shard counts 1, 2, 4, 8, ... the same ScenarioSpec produces identical
// per-flow traces for tie-free workloads — no two packets arriving at one
// node at the same picosecond via different links. (At such a tie the
// single engine orders deliveries by serialization-end insertion order,
// which a shard cannot observe across the cut; symmetric topologies with
// identical rates and delays can manufacture ties, see DESIGN.md §17 for
// the exact condition and which presets are tie-safe by construction.)
// With shard_count <= 1 (or a graph that does not partition)
// ShardedScenario delegates to the plain harness::Scenario, byte-identical
// to today's single-engine runs by construction.
//
// Thread-safety model: there are no locks on the packet path. Channel
// buffers are written only by the owning source shard DURING a round and
// read only by the coordinator BETWEEN rounds; the round barrier (one
// mutex + condvars) provides the happens-before edges. Audit and watchdog
// are forced off in sharded mode (an AuditSession spans both endpoints of
// a flow, which may live on different shards); per-flow tracers are plain
// sender observers and stay shard-local.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "app/flow_factory.hpp"
#include "app/ftp.hpp"
#include "env/sim_env.hpp"
#include "harness/instrumentation.hpp"
#include "harness/scenario.hpp"
#include "net/link.hpp"
#include "net/node.hpp"
#include "pdes/flow_arena.hpp"
#include "sim/hot.hpp"
#include "sim/simulator.hpp"
#include "topo/partition.hpp"
#include "traffic/cbr.hpp"
#include "traffic/onoff.hpp"

namespace rrtcp::pdes {

// One cut link's cross-shard mailbox. push() runs on the source shard's
// thread during a round; the buffer is drained by the coordinator between
// rounds (phase separation — no lock). The per-channel sequence number
// makes the canonical merge order total: (arrival, link index, seq), with
// seq preserving each link's FIFO delivery order.
class Channel final : public net::RemoteSink {
 public:
  struct Msg {
    std::int64_t arrival_ps;
    std::uint64_t seq;
    net::Packet pkt;
  };

  explicit Channel(int link_index) : link_{link_index} {}

  RRTCP_HOT void push(sim::Time arrival, net::Packet p) override {
    // The coordinator's drain clear()s the buffer but keeps its capacity,
    // so growth amortizes away after the first few rounds.
    // NOLINTNEXTLINE(rrtcp-hot-path-alloc)
    buf_.push_back(Msg{arrival.ps(), seq_++, std::move(p)});
  }

  int link_index() const { return link_; }
  std::vector<Msg>& inbox() { return buf_; }
  std::uint64_t total_pushed() const { return seq_; }

 private:
  int link_;
  std::uint64_t seq_ = 0;
  std::vector<Msg> buf_;
};

// Sharded counterpart of harness::Scenario. Graph-mode specs with
// spec.shard_count > 1 run on the PDES engine; everything else (dumbbell
// mode, shard_count <= 1, or a graph the partitioner cannot split) runs on
// an embedded plain Scenario — the byte-identical legacy path.
class ShardedScenario {
 public:
  explicit ShardedScenario(harness::ScenarioSpec spec);
  ~ShardedScenario();
  ShardedScenario(const ShardedScenario&) = delete;
  ShardedScenario& operator=(const ShardedScenario&) = delete;

  // Scenario::validate + construct, mirroring Scenario::try_build.
  static std::unique_ptr<ShardedScenario> try_build(
      harness::ScenarioSpec spec, harness::SpecError* err = nullptr);

  // Runs the whole horizon (single shot). Returns events executed across
  // all shards, including the merged cross-shard deliveries.
  std::uint64_t run();

  // True when the PDES engine is active (false = delegated to Scenario).
  bool sharded() const { return single_ == nullptr; }
  // The delegate, present only when !sharded().
  harness::Scenario* single() { return single_.get(); }

  int n_shards() const { return sharded() ? part_.n_shards : 1; }
  sim::Time lookahead() const { return part_.lookahead; }
  const topo::Partition& partition() const { return part_; }
  std::uint64_t rounds() const { return rounds_; }
  std::uint64_t cross_shard_packets() const;
  std::uint64_t events_executed() const;

  int n_flows() const;
  tcp::TcpSenderBase& sender(int i);
  tcp::TcpReceiver& receiver(int i);
  int n_cbr() const;
  traffic::CbrSink& cbr_sink(int i);
  // Graph-mode link by GLOBAL index (the GraphSpec's numbering) — the same
  // index space as Scenario::graph().link(i), whichever shard owns it.
  net::Link& link(int i);
  // The FTP source of flow i; null for ON/OFF flows.
  app::FtpSource* source(int i);
  harness::FlowInstruments& instruments(int i);

  const harness::ScenarioSpec& spec() const { return spec_; }
  FlowArena& arena() { return arena_; }

 private:
  struct Shard {
    sim::Simulator sim;
    std::uint64_t executed = 0;
  };
  // One cross-shard packet in flight during a merge, with its canonical
  // sort key.
  struct Pending {
    std::int64_t arrival_ps;
    int link;
    std::uint64_t seq;
    net::Node* dst;
    net::Packet pkt;
  };
  struct ShardedFlow {
    env::SimEnvironment* snd_env = nullptr;
    env::SimEnvironment* rcv_env = nullptr;
    tcp::TcpSenderBase* sender = nullptr;
    tcp::TcpReceiver* receiver = nullptr;
    app::FtpSource* ftp = nullptr;
    traffic::OnOffSource* onoff = nullptr;
  };

  void build_shards();
  void build_flows();
  void start_workers();
  void stop_workers();
  void worker_loop(int shard);
  // Dispatch one synchronized window to every shard and wait for the
  // barrier: run_before(deadline) when !inclusive, run_until(deadline)
  // (events at the deadline fire) for the terminal window(s).
  void parallel_window(sim::Time deadline, bool inclusive);
  // Drain every channel into the destination shards in canonical order.
  // Returns how many merged arrivals are at or before `count_upto` — the
  // terminal loop repeats inclusive windows until this reaches zero, so
  // deliveries landing exactly on the horizon fire just as they do in a
  // single-engine run_until(horizon).
  std::size_t merge_channels(sim::Time count_upto);

  harness::ScenarioSpec spec_;
  std::unique_ptr<harness::Scenario> single_;  // delegate when !sharded()

  topo::Partition part_;
  std::vector<int> table_;  // global next-hop table (topo::compute_route_table)
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<net::Node>> nodes_;   // global node index
  std::vector<std::unique_ptr<net::Link>> links_;   // global link index
  std::vector<std::unique_ptr<Channel>> channels_;  // one per cut link
  std::vector<net::Node*> channel_dst_;             // cut link's head node
  std::vector<int> channel_dst_shard_;
  std::vector<std::vector<Pending>> merge_scratch_;  // per dest shard

  // Arena-backed per-flow state. Declared after the shards/nodes/links so
  // it is destroyed FIRST: endpoint destructors detach from nodes and
  // release timers into their shard's simulator, which must still exist.
  FlowArena arena_;
  std::vector<ShardedFlow> flows_;
  std::vector<traffic::CbrSource*> cbr_sources_;  // arena-owned
  std::vector<traffic::CbrSink*> cbr_sinks_;      // arena-owned
  std::vector<std::unique_ptr<harness::FlowInstruments>> instruments_;

  // Round barrier. Workers wait for round_gen_ to advance, run their
  // window, then the last one to finish wakes the coordinator.
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t round_gen_ = 0;
  sim::Time round_deadline_ = sim::Time::zero();
  bool round_inclusive_ = false;
  bool shutdown_ = false;
  int workers_running_ = 0;
  std::vector<std::thread> workers_;

  std::uint64_t rounds_ = 0;
  bool ran_ = false;
};

}  // namespace rrtcp::pdes
