// Arena-backed per-flow object pool.
//
// A scenario with 100k+ flows pays twice for per-flow unique_ptr soup:
// every sender/receiver/environment is its own heap allocation (slow to
// build, slow to tear down) and the objects end up scattered across the
// heap, so the per-ACK working set misses cache. FlowArena packs them into
// large contiguous blocks: construction is a bump-pointer placement-new,
// objects of one flow sit next to each other, and teardown is one walk of
// the destructor list. Steady state is 0 allocs/packet by construction —
// the arena only ever allocates when a new object is created, never when
// packets move (pinned by the flow_arena_churn bench row).
//
// Objects are NOT individually destroyable: the arena destroys everything
// in reverse construction order when it dies (or on reset()). That is
// exactly the lifetime the scenario layer needs — flows live for the whole
// run — and what makes the bookkeeping one pointer per object.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace rrtcp::pdes {

class FlowArena {
 public:
  // `block_bytes` is the granularity of the backing allocations; one block
  // holds many flows' objects. Oversized requests get a dedicated block.
  explicit FlowArena(std::size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_{block_bytes} {}
  ~FlowArena() { reset(); }
  FlowArena(const FlowArena&) = delete;
  FlowArena& operator=(const FlowArena&) = delete;

  // Raw aligned storage; valid until reset()/destruction. The caller owns
  // construction and destruction of whatever it places there.
  void* allocate(std::size_t size, std::size_t align);

  // Construct a T in the arena. Its destructor runs at reset() time, in
  // reverse construction order (so later objects may reference earlier
  // ones, mirroring member-order teardown in a struct).
  template <typename T, typename... Args>
  T* create(Args&&... args) {
    void* mem = allocate(sizeof(T), alignof(T));
    T* obj = ::new (mem) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      dtors_.push_back({obj, [](void* p) { static_cast<T*>(p)->~T(); }});
    }
    ++objects_;
    return obj;
  }

  // Adopt an externally placement-constructed object (the SenderFactory
  // arena path: the registry knows the concrete type, we only see the
  // base). `mem` must have come from allocate() on this arena.
  template <typename T>
  T* adopt(T* obj) {
    if constexpr (!std::is_trivially_destructible_v<T>) {
      dtors_.push_back({obj, [](void* p) { static_cast<T*>(p)->~T(); }});
    }
    ++objects_;
    return obj;
  }

  // Destroy every object (reverse construction order) and release the
  // blocks.
  void reset();

  std::size_t objects() const { return objects_; }
  std::size_t blocks() const { return blocks_.size(); }
  std::size_t bytes_used() const { return bytes_used_; }
  std::size_t bytes_reserved() const { return bytes_reserved_; }

  static constexpr std::size_t kDefaultBlockBytes = 1u << 20;

 private:
  struct Dtor {
    void* obj;
    void (*fn)(void*);
  };
  struct Block {
    std::unique_ptr<std::byte[]> mem;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  std::size_t block_bytes_;
  std::vector<Block> blocks_;
  std::vector<Dtor> dtors_;
  std::size_t objects_ = 0;
  std::size_t bytes_used_ = 0;
  std::size_t bytes_reserved_ = 0;
};

}  // namespace rrtcp::pdes
