#include "pdes/flow_arena.hpp"

#include "sim/assert.hpp"

namespace rrtcp::pdes {

void* FlowArena::allocate(std::size_t size, std::size_t align) {
  RRTCP_ASSERT(size > 0 && align > 0 && (align & (align - 1)) == 0);
  if (!blocks_.empty()) {
    Block& b = blocks_.back();
    const std::size_t aligned = (b.used + align - 1) & ~(align - 1);
    if (aligned + size <= b.size) {
      b.used = aligned + size;
      bytes_used_ += size;
      return b.mem.get() + aligned;
    }
  }
  // Fresh block. operator new[] storage for std::byte is aligned to
  // __STDCPP_DEFAULT_NEW_ALIGNMENT__ (>= 16); nothing we pool needs more.
  RRTCP_ASSERT(align <= __STDCPP_DEFAULT_NEW_ALIGNMENT__);
  const std::size_t bsize = size > block_bytes_ ? size : block_bytes_;
  Block b;
  b.mem = std::make_unique<std::byte[]>(bsize);
  b.size = bsize;
  b.used = size;
  bytes_used_ += size;
  bytes_reserved_ += bsize;
  blocks_.push_back(std::move(b));
  return blocks_.back().mem.get();
}

void FlowArena::reset() {
  for (auto it = dtors_.rbegin(); it != dtors_.rend(); ++it) it->fn(it->obj);
  dtors_.clear();
  blocks_.clear();
  objects_ = 0;
  bytes_used_ = 0;
  bytes_reserved_ = 0;
}

}  // namespace rrtcp::pdes
