// ON/OFF (Pareto) web-like traffic source.
//
// The standard short-flow workload model: a TCP connection whose
// application alternates between ON periods — data arriving at a constant
// rate, chunk by chunk — and silent OFF periods, with both durations drawn
// from a Pareto distribution (heavy-tailed ON periods superpose into
// long-range-dependent aggregate traffic; Willinger et al.). Unlike the
// paper's FTP sources, the connection regularly runs out of data, so the
// sender keeps restarting from an idle window — exactly the regime where
// recovery behavior after small bursts matters.
//
// The source drives TcpSenderBase::app_enqueue() on an initially-empty
// finite backlog; it owns the sender's start. Randomness comes from one
// named RNG stream per source, so adding an ON/OFF flow never perturbs any
// other stochastic component of a scenario.
#pragma once

#include <cstdint>
#include <string_view>

#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "tcp/sender_base.hpp"

namespace rrtcp::traffic {

struct OnOffConfig {
  double mean_on_s = 0.5;   // mean ON duration, seconds
  double mean_off_s = 0.5;  // mean OFF duration, seconds
  double shape = 1.5;       // Pareto shape alpha; must be > 1 (finite mean)
  std::int64_t on_rate_bps = 400'000;  // application arrival rate while ON
  std::uint32_t chunk_bytes = 1'000;   // enqueue granularity
  sim::Time start = sim::Time::zero();
};

class OnOffSource {
 public:
  // Arms `sender` with an empty finite backlog and starts it at
  // cfg.start, entering the first ON period immediately. `seed` + `stream`
  // name the RNG stream (use a per-flow stream name).
  OnOffSource(sim::Simulator& sim, tcp::TcpSenderBase& sender, OnOffConfig cfg,
              std::uint64_t seed, std::string_view stream = "onoff");

  std::uint64_t bytes_generated() const { return bytes_generated_; }
  int bursts() const { return bursts_; }
  bool on() const { return on_; }

 private:
  void fire();
  void enter_on();
  void enter_off();
  void emit_chunk();
  // Pareto draw with the configured shape and the given mean.
  sim::Time pareto(double mean_s);

  sim::Simulator& sim_;
  tcp::TcpSenderBase& sender_;
  OnOffConfig cfg_;
  sim::Rng rng_;
  sim::Time chunk_interval_;
  sim::Time on_deadline_ = sim::Time::zero();
  bool on_ = false;
  int bursts_ = 0;
  std::uint64_t bytes_generated_ = 0;
  sim::Timer timer_;
};

}  // namespace rrtcp::traffic
