#include "traffic/onoff.hpp"

#include <cmath>

#include "sim/assert.hpp"

namespace rrtcp::traffic {

OnOffSource::OnOffSource(sim::Simulator& sim, tcp::TcpSenderBase& sender,
                         OnOffConfig cfg, std::uint64_t seed,
                         std::string_view stream)
    : sim_{sim},
      sender_{sender},
      cfg_{cfg},
      rng_{seed, stream},
      chunk_interval_{
          sim::Time::transmission(cfg.chunk_bytes, cfg.on_rate_bps)},
      timer_{sim, [this] { fire(); }} {
  RRTCP_ASSERT_MSG(cfg_.shape > 1.0, "Pareto shape must exceed 1");
  RRTCP_ASSERT(cfg_.mean_on_s > 0 && cfg_.mean_off_s > 0);
  RRTCP_ASSERT(cfg_.on_rate_bps > 0 && cfg_.chunk_bytes > 0);
  sender_.set_app_bytes(0);  // empty backlog; app_enqueue() feeds it
  sim_.schedule_at(cfg_.start, [this] {
    sender_.start();
    enter_on();
  });
}

void OnOffSource::fire() {
  if (!on_) {
    enter_on();
    return;
  }
  if (sim_.now() >= on_deadline_) {
    enter_off();
    return;
  }
  emit_chunk();
  timer_.schedule(chunk_interval_);
}

void OnOffSource::enter_on() {
  on_ = true;
  ++bursts_;
  on_deadline_ = sim_.now() + pareto(cfg_.mean_on_s);
  emit_chunk();  // a burst always carries at least one chunk
  timer_.schedule(chunk_interval_);
}

void OnOffSource::enter_off() {
  on_ = false;
  timer_.schedule(pareto(cfg_.mean_off_s));
}

void OnOffSource::emit_chunk() {
  sender_.app_enqueue(cfg_.chunk_bytes);
  bytes_generated_ += cfg_.chunk_bytes;
}

sim::Time OnOffSource::pareto(double mean_s) {
  // Pareto(x_m, alpha) has mean x_m * alpha / (alpha - 1); invert for x_m,
  // then draw by inversion: x = x_m * (1 - u)^(-1/alpha), u ~ U[0,1).
  const double alpha = cfg_.shape;
  const double x_m = mean_s * (alpha - 1.0) / alpha;
  const double u = rng_.uniform01();
  return sim::Time::seconds(x_m * std::pow(1.0 - u, -1.0 / alpha));
}

}  // namespace rrtcp::traffic
