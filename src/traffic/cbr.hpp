// Constant-bit-rate datagram cross-traffic.
//
// A CbrSource injects fixed-size PacketType::kCbr datagrams at a constant
// rate from its node toward a destination, with no congestion control and
// no retransmission — the classic unresponsive UDP load used to study how
// much of a bottleneck TCP cedes to traffic that never backs off. The
// matching CbrSink is a counting Agent on the destination node; loss is
// simply sent minus received.
//
// Determinism: the source is a pure clock — one timer, one packet per
// tick, interval = serialization time of one packet at the configured
// rate. No RNG, no allocation per packet (the timer callback fits the
// simulator's inline event storage), so CBR keeps the forwarding path's
// 0-allocs/packet guarantee intact.
#pragma once

#include <cstdint>
#include <optional>

#include "net/node.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace rrtcp::traffic {

struct CbrConfig {
  std::int64_t rate_bps = 200'000;  // steady injection rate
  std::uint32_t packet_bytes = 1'000;
  sim::Time start = sim::Time::zero();
  std::optional<sim::Time> stop;  // nullopt = run to the horizon
};

class CbrSource {
 public:
  // Emits from `node` toward `dst`; `flow` must be unique within the
  // scenario (the sink dispatches on it).
  CbrSource(sim::Simulator& sim, net::Node& node, net::FlowId flow,
            net::NodeId dst, CbrConfig cfg);

  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t bytes_sent() const {
    return packets_sent_ * cfg_.packet_bytes;
  }
  const CbrConfig& config() const { return cfg_; }

 private:
  void tick();

  sim::Simulator& sim_;
  net::Node& node_;
  net::FlowId flow_;
  net::NodeId dst_;
  CbrConfig cfg_;
  sim::Time interval_;
  std::uint64_t packets_sent_ = 0;
  sim::Timer timer_;
};

class CbrSink : public net::Agent {
 public:
  CbrSink(net::Node& node, net::FlowId flow) : node_{node}, flow_{flow} {
    node_.attach_agent(flow_, this);
  }
  ~CbrSink() override { node_.detach_agent(flow_); }

  void receive(net::Packet p) override;

  std::uint64_t packets_received() const { return packets_; }
  std::uint64_t bytes_received() const { return bytes_; }

 private:
  net::Node& node_;
  net::FlowId flow_;
  std::uint64_t packets_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace rrtcp::traffic
