#include "traffic/cbr.hpp"

#include "sim/assert.hpp"

namespace rrtcp::traffic {

CbrSource::CbrSource(sim::Simulator& sim, net::Node& node, net::FlowId flow,
                     net::NodeId dst, CbrConfig cfg)
    : sim_{sim},
      node_{node},
      flow_{flow},
      dst_{dst},
      cfg_{cfg},
      interval_{sim::Time::transmission(cfg.packet_bytes, cfg.rate_bps)},
      timer_{sim, [this] { tick(); }} {
  RRTCP_ASSERT(cfg_.rate_bps > 0);
  RRTCP_ASSERT(cfg_.packet_bytes > 0);
  const sim::Time delay = cfg_.start > sim_.now() ? cfg_.start - sim_.now()
                                                  : sim::Time::zero();
  timer_.schedule(delay);
}

void CbrSource::tick() {
  if (cfg_.stop && sim_.now() >= *cfg_.stop) return;  // disarm
  net::Packet p;
  p.uid = net::next_packet_uid();
  p.flow = flow_;
  p.src = node_.id();
  p.dst = dst_;
  p.type = net::PacketType::kCbr;
  p.size_bytes = cfg_.packet_bytes;
  p.sent_at = sim_.now();
  ++packets_sent_;
  node_.inject(std::move(p));
  timer_.schedule(interval_);
}

void CbrSink::receive(net::Packet p) {
  ++packets_;
  bytes_ += p.size_bytes;
}

}  // namespace rrtcp::traffic
