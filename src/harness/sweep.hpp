// Deterministic parallel sweep harness.
//
// Every experiment binary in bench/ runs a grid of independent scenarios —
// each one constructs its own Simulator, topology and flows, runs it to a
// horizon, and reports a handful of numbers. The harness executes such a
// grid on a fixed-size pool of worker threads while keeping the results
// bit-identical to a serial run:
//
//  * Seeds: each job's RNG seed is derived by SplitMix64-style hashing of
//    (base_seed, job_index), never from thread identity, completion order
//    or wall-clock time. The same grid with the same base seed produces
//    the same per-job seeds under any thread count.
//  * Isolation: a job must touch nothing outside its own stack — the
//    SweepJob callback builds the whole simulation locally. The only
//    shared object is the mutex-guarded ResultSink.
//  * Ordering: the sink stores results by job index, so CSV/JSON emission
//    is byte-identical no matter how completions interleave.
//
// Thread count resolution: --threads=N beats RRTCP_SWEEP_THREADS beats
// std::thread::hardware_concurrency(); --threads=1 is the serial fallback
// (jobs run inline on the calling thread, no pool is created).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "harness/result_sink.hpp"

namespace rrtcp::harness {

struct JobContext {
  std::size_t index;   // position of the job in the sweep's vector
  std::uint64_t seed;  // derive_seed(base_seed, index)
};

// One independent scenario. `run` is called exactly once, possibly on a
// worker thread; it must build its own Simulator and use ctx.seed for any
// randomness. Its Record becomes one row of the sweep's CSV/JSON (the
// harness prepends an "id" column).
struct SweepJob {
  std::string id;
  std::function<Record(const JobContext&)> run;
};

struct SweepOptions {
  int threads = 0;  // <= 0: resolve from RRTCP_SWEEP_THREADS / hardware
  std::uint64_t base_seed = 1;
};

struct SweepTiming {
  int threads = 1;
  double wall_seconds = 0.0;  // whole sweep, as observed by the caller
  double job_seconds = 0.0;   // sum of per-job wall clocks (serial cost)
  double speedup() const {
    return wall_seconds > 0.0 ? job_seconds / wall_seconds : 1.0;
  }
};

// Stateless SplitMix64 hash of (base_seed, index). Distinct indices give
// decorrelated seeds even for adjacent base seeds.
std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t index);

// Applies the resolution chain above; always returns >= 1.
int resolve_threads(int requested);

// Runs all jobs and fills `sink` (which must have size jobs.size()) in job
// order. Blocks until every job has finished. A job that throws
// std::exception submits a Record with an "error" field instead of
// propagating — one bad scenario does not tear down the sweep.
SweepTiming run_sweep(const std::vector<SweepJob>& jobs, ResultSink& sink,
                      const SweepOptions& opts = {});

// Command-line front end shared by the bench binaries:
//   --threads=N       worker threads (default: env/hardware as above)
//   --seed=S          base seed for per-job seed derivation (default 1)
//   --shards=N        engine shards per scenario, 1..kMaxShardCount
//                     (pdes::ShardedScenario; dumbbell-mode and
//                     unpartitionable specs delegate to the single
//                     engine, so 1 — the default — is always safe)
//   --csv=PATH        write the sweep's CSV to PATH
//   --json=PATH       write the sweep's JSON to PATH
//   --list-variants   ask the binary to print the sender registry and exit
//   --quick           ask the binary to run a reduced grid (perf smoke)
// Unknown arguments abort with a usage message on stderr; an out-of-range
// --shards prints the valid range (mirroring how an unknown variant prints
// the registry). Like --list-variants and --quick, --shards is a request
// the harness itself cannot act on (it does not build the specs); binaries
// honor it by stamping ScenarioSpec::shard_count — see bench/.
struct SweepCli {
  SweepOptions options;
  std::string csv_path;
  std::string json_path;
  int shards = 1;
  bool list_variants = false;
  bool quick = false;

  static SweepCli parse(int argc, char** argv);
};

// Prints the per-job wall-clock table and aggregate speedup to stdout and
// writes the CSV/JSON files if the CLI asked for them.
void report(const char* sweep_name, const SweepCli& cli,
            const ResultSink& sink, const SweepTiming& timing);

}  // namespace rrtcp::harness
