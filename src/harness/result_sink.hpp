// Ordered result records for the sweep harness and their machine-readable
// emission (CSV / JSON).
//
// A Record is a flat, ordered list of (key, value) fields whose values
// remember whether they were numeric: CSV emits the formatted text, JSON
// emits numeric fields unquoted. A ResultSink collects one Record per job
// under a mutex but stores them by JOB index, not completion order, so the
// emitted files are byte-identical regardless of how many worker threads
// produced the records or how their completions interleaved. Per-job
// wall-clock times are collected alongside for the timing report, but are
// deliberately excluded from both file formats — they are the one
// nondeterministic quantity in a sweep.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace rrtcp::harness {

class Record {
 public:
  struct Field {
    std::string key;
    std::string text;
    bool numeric;
  };

  Record& set(std::string key, std::string value);
  Record& set(std::string key, const char* value);
  Record& set(std::string key, double value);  // formatted with "%.10g"
  Record& set(std::string key, std::uint64_t value);
  Record& set(std::string key, int value);
  Record& set(std::string key, bool value);  // numeric 1 / 0

  // Appends all of `other`'s fields after this record's.
  Record& merge(const Record& other);

  const std::vector<Field>& fields() const { return fields_; }
  // Text of the first field named `key`; empty string if absent.
  std::string_view get(std::string_view key) const;

 private:
  std::vector<Field> fields_;
};

class ResultSink {
 public:
  explicit ResultSink(std::size_t n_jobs);

  // Thread-safe. Stores job `index`'s record and its wall-clock cost;
  // submitting the same index twice or an index out of range aborts.
  void submit(std::size_t index, Record record, double wall_seconds);

  std::size_t size() const { return records_.size(); }
  bool complete() const;  // every job submitted
  const Record& record(std::size_t i) const { return records_[i]; }
  double wall_seconds(std::size_t i) const { return wall_[i]; }
  // Sum of per-job wall clocks — the "serial equivalent" cost.
  double total_job_seconds() const;

  // Machine-readable emission, jobs in index order. The column set is the
  // union of the records' keys in first-appearance order; records missing
  // a column emit an empty cell (CSV) / omit the member (JSON).
  std::string to_csv() const;
  std::string to_json(std::string_view sweep_name,
                      std::uint64_t base_seed) const;

 private:
  std::vector<std::string> column_order() const;

  std::mutex mu_;
  std::vector<Record> records_;
  std::vector<double> wall_;
  std::vector<bool> done_;
};

// Writes `contents` to `path` (truncating); aborts on I/O failure so a
// sweep cannot silently lose its results.
void write_file(const std::string& path, std::string_view contents);

}  // namespace rrtcp::harness
