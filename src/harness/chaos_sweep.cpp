#include "harness/chaos_sweep.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>

#include "app/ftp.hpp"
#include "harness/instrumentation.hpp"
#include "net/drop_tail.hpp"
#include "net/dumbbell.hpp"
#include "sim/assert.hpp"
#include "sim/simulator.hpp"

namespace rrtcp::harness {

ChaosRunOutcome run_chaos_schedule(const chaos::FaultPlan& plan,
                                   std::uint64_t seed,
                                   const ChaosRunConfig& cfg,
                                   std::vector<chaos::WatchdogReport>* reports,
                                   std::vector<audit::Violation>* violations) {
  RRTCP_ASSERT(cfg.n_flows >= 1);
  sim::Simulator sim;

  net::DumbbellConfig netcfg;
  netcfg.n_flows = cfg.n_flows;
  netcfg.make_bottleneck_queue = [&cfg] {
    return std::make_unique<net::DropTailQueue>(cfg.buffer_packets);
  };
  net::DumbbellTopology topo{sim, netcfg};

  // Interpose one injector per direction; each applies its path's subset
  // of the plan. Both draw from the same plan seed via distinct stream
  // names, so the pair replays from the single printed number.
  chaos::FaultInjector fwd_injector{sim, topo.bottleneck(),
                                    plan.subset(chaos::FaultPath::kData), seed,
                                    "chaos-fwd"};
  chaos::FaultInjector rev_injector{sim, topo.reverse_bottleneck(),
                                    plan.subset(chaos::FaultPath::kAck), seed,
                                    "chaos-rev"};
  chaos::interpose(topo.r1(), topo.bottleneck(), fwd_injector);
  chaos::interpose(topo.r2(), topo.reverse_bottleneck(), rev_injector);

  std::vector<app::Flow> flows;
  flows.reserve(static_cast<std::size_t>(cfg.n_flows));
  for (int i = 0; i < cfg.n_flows; ++i) {
    const auto id = static_cast<net::FlowId>(i + 1);
    flows.push_back(cfg.flow_maker
                        ? cfg.flow_maker(sim, topo.sender_node(i),
                                         topo.receiver_node(i), id, cfg.tcp)
                        : app::make_flow(cfg.variant, sim, topo.sender_node(i),
                                         topo.receiver_node(i), id, cfg.tcp));
  }

  std::vector<app::FtpSource> sources;
  sources.reserve(flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    sources.emplace_back(sim, *flows[i].sender,
                         cfg.start_stagger * static_cast<std::int64_t>(i),
                         cfg.bytes_per_flow);
  }

  // Audit + watchdog attach AFTER the flows so they detach first on the
  // way out (observer lifetime, same pattern as the scenario runner).
  // kRecord audit mode: the soak inspects counts in every build
  // configuration. No per-flow tracers — the soak grades outcomes, not
  // throughput curves.
  InstrumentationOptions iopts;
  iopts.tracers = false;
  iopts.audit = AuditMode::kRecord;
  iopts.watchdog = true;
  iopts.watchdog_config = cfg.watchdog;
  Instrumentation inst{sim, iopts};
  inst.attach_topology(topo);
  for (app::Flow& f : flows) inst.attach(f);
  audit::AuditSession& audit = *inst.recording_session();
  chaos::LivenessWatchdog& watchdog = *inst.watchdog();

  sim.run_until(cfg.horizon);

  ChaosRunOutcome out;
  for (app::Flow& f : flows) {
    const tcp::TcpSenderBase& s = *f.sender;
    if (s.complete()) {
      ++out.flows_complete;
      out.last_completion = std::max(out.last_completion, s.completion_time());
    } else if (s.rto_pending()) {
      ++out.flows_alive;  // the escape hatch will fire; recovery continues
    } else {
      ++out.flows_dead;
    }
    out.timeouts += s.stats().timeouts;
    out.retransmissions += s.stats().retransmissions;
  }
  out.fault_drops = fwd_injector.dropped() + rev_injector.dropped();
  out.fault_duplicates = fwd_injector.duplicated() + rev_injector.duplicated();
  out.fault_delays = fwd_injector.delayed() + rev_injector.delayed();
  out.audit_violations = audit.total_violations();
  out.watchdog_reports = watchdog.reports().size();
  out.graceful = out.flows_dead == 0 && out.audit_violations == 0 &&
                 out.watchdog_reports == 0;

  if (reports != nullptr) *reports = watchdog.reports();
  if (violations != nullptr) *violations = audit.violations();
  return out;
}

std::vector<SweepJob> make_chaos_jobs(const ChaosSoakOptions& opts,
                                          std::uint64_t base_seed) {
  RRTCP_ASSERT(opts.n_schedules >= 1);
  RRTCP_ASSERT(!opts.variants.empty());
  std::vector<SweepJob> jobs;
  jobs.reserve(static_cast<std::size_t>(opts.n_schedules) *
               opts.variants.size());
  for (int sched = 0; sched < opts.n_schedules; ++sched) {
    // Plan seed keyed by schedule index: every variant of schedule `sched`
    // replays the byte-identical fault sequence (differential soak).
    const std::uint64_t plan_seed =
        derive_seed(base_seed, static_cast<std::uint64_t>(sched));
    for (const app::Variant v : opts.variants) {
      char id[64];
      std::snprintf(id, sizeof id, "chaos/%03d/%s", sched, app::to_string(v));
      SweepJob spec;
      spec.id = id;
      spec.run = [opts, sched, plan_seed, v](const JobContext&) {
        const chaos::FaultPlan plan =
            chaos::make_random_plan(plan_seed, opts.bounds);
        ChaosRunConfig cfg = opts.base;
        cfg.variant = v;
        const ChaosRunOutcome out = run_chaos_schedule(plan, plan_seed, cfg);
        Record row;
        row.set("schedule", sched);
        row.set("variant", app::to_string(v));
        char seed_hex[24];
        std::snprintf(seed_hex, sizeof seed_hex, "0x%016llx",
                      static_cast<unsigned long long>(plan_seed));
        row.set("plan_seed", seed_hex);
        row.set("n_faults", static_cast<int>(plan.faults.size()));
        row.set("plan", plan.describe());
        row.set("complete", out.flows_complete);
        row.set("alive", out.flows_alive);
        row.set("dead", out.flows_dead);
        row.set("timeouts", out.timeouts);
        row.set("rtx", out.retransmissions);
        row.set("fault_drops", out.fault_drops);
        row.set("fault_dups", out.fault_duplicates);
        row.set("fault_delays", out.fault_delays);
        row.set("audit_violations", out.audit_violations);
        row.set("watchdog_reports", out.watchdog_reports);
        row.set("last_completion_s", out.last_completion.to_seconds());
        row.set("graceful", out.graceful);
        return row;
      };
      jobs.push_back(std::move(spec));
    }
  }
  return jobs;
}

}  // namespace rrtcp::harness
