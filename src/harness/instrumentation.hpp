// One entry point for observer attachment.
//
// Every driver used to hand-wire the same observer stack — throughput /
// sequence / phase tracers, the build-gated invariant audit, optionally
// the liveness watchdog — with the same easy-to-get-wrong rules (attach
// after the flows exist, detach before they die, record vs abort mode by
// context). Instrumentation owns that stack: construct it AFTER the flows
// it will watch (so it destructs — and detaches — first), call
// attach(flow) per flow and attach_topology(topo) once, and read the
// per-flow tracers back by index.
//
// Audit modes:
//   kBuildGated — audit::ScopedAudit: a real AuditSession in abort mode
//                 when the build sets RRTCP_AUDIT=ON, free otherwise.
//                 The benches' default.
//   kRecord     — audit::AuditSession in record mode in EVERY build:
//                 violations are collected, not fatal. The chaos soak's
//                 mode (it grades outcomes on the violation count).
//   kNone       — no audit objects at all.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "app/flow_factory.hpp"
#include "audit/audit.hpp"
#include "audit/invariant_auditor.hpp"
#include "chaos/watchdog.hpp"
#include "net/dumbbell.hpp"
#include "sim/simulator.hpp"
#include "topo/graph.hpp"
#include "stats/throughput.hpp"
#include "stats/tracer.hpp"

namespace rrtcp::harness {

enum class AuditMode {
  kNone,
  kBuildGated,
  kRecord,
};

struct InstrumentationOptions {
  // Per-flow tracers (ThroughputMeter + SeqTracer + PhaseTracer).
  bool tracers = true;
  AuditMode audit = AuditMode::kBuildGated;
  bool watchdog = false;
  chaos::WatchdogConfig watchdog_config = {};
};

// The tracer bundle attached to one flow (empty unless options.tracers).
struct FlowInstruments {
  std::unique_ptr<stats::ThroughputMeter> meter;
  std::unique_ptr<stats::SeqTracer> seq;
  std::unique_ptr<stats::PhaseTracer> phases;
  tcp::TcpSenderBase* sender = nullptr;  // for detach on teardown
};

class Instrumentation {
 public:
  explicit Instrumentation(sim::Simulator& sim,
                           InstrumentationOptions opts = {});
  ~Instrumentation();
  Instrumentation(const Instrumentation&) = delete;
  Instrumentation& operator=(const Instrumentation&) = delete;

  // Attaches the whole configured stack to one flow: tracers on the
  // sender, the auditor on sender + receiver (cross-layer pipe checks),
  // the watchdog monitor. Returns the flow's tracer bundle.
  FlowInstruments& attach(app::Flow& flow);

  // Queue/topology-level audit checks (conservation, capacity). Call once.
  void attach_topology(net::DumbbellTopology& topo);

  // Graph-mode equivalent: audit the queues of the listed links, labeled
  // with the links' names (owned by the graph, which must outlive this).
  // Call once.
  void attach_queues(topo::TopologyGraph& graph,
                     const std::vector<int>& links);

  // Tracers of the i-th attached flow, in attach() order.
  FlowInstruments& flow(std::size_t i) { return *flows_.at(i); }
  std::size_t flows_attached() const { return flows_.size(); }

  // Violations recorded so far; 0 unless AuditMode::kRecord (kBuildGated
  // aborts at the first violation instead of counting).
  std::size_t audit_violations() const;
  // The recording session, present only in AuditMode::kRecord.
  audit::AuditSession* recording_session() { return recording_.get(); }

  // Present only when options.watchdog.
  chaos::LivenessWatchdog* watchdog() { return watchdog_.get(); }

  const InstrumentationOptions& options() const { return opts_; }

 private:
  sim::Simulator& sim_;
  InstrumentationOptions opts_;
  std::vector<std::unique_ptr<FlowInstruments>> flows_;
  // Observers detach in reverse construction order on destruction; all of
  // these must die before the senders they watch (construct the
  // Instrumentation after the flows).
  std::unique_ptr<audit::ScopedAudit> gated_;
  std::unique_ptr<audit::AuditSession> recording_;
  std::unique_ptr<chaos::LivenessWatchdog> watchdog_;
};

}  // namespace rrtcp::harness
