#include "harness/scenario.hpp"

#include "app/flow_factory.hpp"
#include "net/drop_tail.hpp"
#include "sim/assert.hpp"

namespace rrtcp::harness {

Scenario::Scenario(ScenarioSpec spec) : spec_{std::move(spec)} {
  RRTCP_ASSERT_MSG(!spec_.flows.empty(), "scenario needs at least one flow");

  net::DumbbellConfig netcfg = spec_.topology;
  netcfg.n_flows = static_cast<int>(spec_.flows.size());
  switch (spec_.bottleneck.kind) {
    case QueueSpec::Kind::kDropTail:
      netcfg.make_bottleneck_queue = [cap = spec_.bottleneck.capacity_packets] {
        return std::make_unique<net::DropTailQueue>(cap);
      };
      break;
    case QueueSpec::Kind::kRed:
      netcfg.make_bottleneck_queue = [this] {
        net::RedConfig rc = spec_.bottleneck.red;
        rc.seed = spec_.seed;
        auto q = std::make_unique<net::RedQueue>(sim_, rc);
        red_ = q.get();
        return q;
      };
      break;
  }
  topo_ = std::make_unique<net::DumbbellTopology>(sim_, netcfg);

  flows_.reserve(spec_.flows.size());
  for (std::size_t i = 0; i < spec_.flows.size(); ++i) {
    const FlowSpec& fs = spec_.flows[i];
    flows_.push_back(app::make_flow(
        fs.variant, sim_, topo_->sender_node(static_cast<int>(i)),
        topo_->receiver_node(static_cast<int>(i)),
        static_cast<net::FlowId>(i + 1), fs.tcp));
  }

  sources_.reserve(spec_.flows.size());
  for (std::size_t i = 0; i < spec_.flows.size(); ++i) {
    sources_.push_back(std::make_unique<app::FtpSource>(
        sim_, *flows_[i].sender, spec_.flows[i].start, spec_.flows[i].bytes));
  }

  instrumentation_ = std::make_unique<Instrumentation>(sim_, spec_.instruments);
  for (app::Flow& f : flows_) instrumentation_->attach(f);
  instrumentation_->attach_topology(*topo_);
}

}  // namespace rrtcp::harness
