#include "harness/scenario.hpp"

#include <string>
#include <utility>

#include "app/flow_factory.hpp"
#include "harness/sweep.hpp"
#include "net/drop_tail.hpp"
#include "sim/assert.hpp"

namespace rrtcp::harness {

namespace {

// Translates a QueueSpec into the sim-capturing factory DumbbellConfig
// wants. `red_out`, when the spec picks RED, receives the built queue.
std::function<std::unique_ptr<net::QueueDisc>()> make_queue_factory(
    const QueueSpec& qs, sim::Simulator& sim, std::uint64_t seed,
    net::RedQueue** red_out) {
  switch (qs.kind) {
    case QueueSpec::Kind::kDropTail:
      return [cap = qs.capacity_packets] {
        return std::make_unique<net::DropTailQueue>(cap);
      };
    case QueueSpec::Kind::kRed:
      return [&sim, rc = qs.red, seed, red_out]() mutable {
        rc.seed = seed;
        auto q = std::make_unique<net::RedQueue>(sim, rc);
        if (red_out) *red_out = q.get();
        return q;
      };
  }
  RRTCP_ASSERT_MSG(false, "unreachable");
  return {};
}

}  // namespace

Scenario::Scenario(ScenarioSpec spec) : spec_{std::move(spec)} {
  RRTCP_ASSERT_MSG(!spec_.flows.empty(), "scenario needs at least one flow");

  if (spec_.graph.empty()) {
    build_dumbbell();
  } else {
    build_graph();
  }

  // Traffic sources (FTP or ON/OFF), one per flow. ON/OFF sources derive
  // their RNG stream from the scenario seed and the flow index, so adding
  // or reordering other stochastic components never perturbs them.
  sources_.reserve(spec_.flows.size());
  onoffs_.reserve(spec_.flows.size());
  for (std::size_t i = 0; i < spec_.flows.size(); ++i) {
    const FlowSpec& fs = spec_.flows[i];
    if (fs.onoff) {
      traffic::OnOffConfig oc = *fs.onoff;
      oc.start = fs.start;
      sources_.push_back(nullptr);
      onoffs_.push_back(std::make_unique<traffic::OnOffSource>(
          sim_, *flows_[i].sender, oc, spec_.seed,
          "onoff/" + std::to_string(i)));
    } else {
      sources_.push_back(std::make_unique<app::FtpSource>(
          sim_, *flows_[i].sender, fs.start, fs.bytes));
      onoffs_.push_back(nullptr);
    }
  }

  instrumentation_ = std::make_unique<Instrumentation>(sim_, spec_.instruments);
  for (app::Flow& f : flows_) instrumentation_->attach(f);
  if (topo_) {
    instrumentation_->attach_topology(*topo_);
  } else {
    instrumentation_->attach_queues(*graph_, spec_.audited_links);
  }
}

void Scenario::build_dumbbell() {
  // CBR streams ride extra host pairs appended after the TCP flows', so
  // a spec without cross-traffic builds the exact seed topology.
  const int n_tcp = static_cast<int>(spec_.flows.size());
  const int n_cbr = static_cast<int>(spec_.cross_traffic.size());

  net::DumbbellConfig netcfg = spec_.topology;
  netcfg.n_flows = n_tcp + n_cbr;
  netcfg.make_bottleneck_queue =
      make_queue_factory(spec_.bottleneck, sim_, spec_.seed, &red_);
  if (spec_.reverse_bottleneck) {
    // A distinct derived seed keeps a reverse RED queue's drop RNG
    // independent of the forward one's.
    netcfg.make_reverse_queue =
        make_queue_factory(*spec_.reverse_bottleneck, sim_,
                           derive_seed(spec_.seed, 1), &reverse_red_);
  }
  topo_ = std::make_unique<net::DumbbellTopology>(sim_, netcfg);

  flows_.reserve(spec_.flows.size());
  for (int i = 0; i < n_tcp; ++i) {
    const FlowSpec& fs = spec_.flows[static_cast<std::size_t>(i)];
    net::Node& snd = fs.reverse ? topo_->receiver_node(i)
                                : topo_->sender_node(i);
    net::Node& rcv = fs.reverse ? topo_->sender_node(i)
                                : topo_->receiver_node(i);
    flows_.push_back(app::make_flow(fs.variant, sim_, snd, rcv,
                                    static_cast<net::FlowId>(i + 1),
                                    fs.tcp));
  }

  const std::int64_t rev_bps = netcfg.reverse_bps > 0
                                   ? netcfg.reverse_bps
                                   : netcfg.bottleneck_bps;
  for (int j = 0; j < n_cbr; ++j) {
    const CbrSpec& cs = spec_.cross_traffic[static_cast<std::size_t>(j)];
    const int pair = n_tcp + j;
    net::Node& src = cs.reverse ? topo_->receiver_node(pair)
                                : topo_->sender_node(pair);
    net::Node& dst = cs.reverse ? topo_->sender_node(pair)
                                : topo_->receiver_node(pair);
    traffic::CbrConfig cc;
    cc.rate_bps = cs.load_fraction > 0
                      ? static_cast<std::int64_t>(
                            cs.load_fraction *
                            static_cast<double>(cs.reverse
                                                    ? rev_bps
                                                    : netcfg.bottleneck_bps))
                      : cs.rate_bps;
    cc.packet_bytes = cs.packet_bytes;
    cc.start = cs.start;
    cc.stop = cs.stop;
    const auto flow_id = static_cast<net::FlowId>(n_tcp + j + 1);
    cbr_sinks_.push_back(std::make_unique<traffic::CbrSink>(dst, flow_id));
    cbr_sources_.push_back(std::make_unique<traffic::CbrSource>(
        sim_, src, flow_id, dst.id(), cc));
  }
}

void Scenario::build_graph() {
  // The GraphSpec carries its own per-link queue factories, so
  // spec_.bottleneck / spec_.reverse_bottleneck do not apply here.
  graph_ = std::make_unique<topo::TopologyGraph>(sim_, spec_.graph);

  flows_.reserve(spec_.flows.size());
  for (std::size_t i = 0; i < spec_.flows.size(); ++i) {
    const FlowSpec& fs = spec_.flows[i];
    RRTCP_ASSERT_MSG(fs.src_node >= 0 && fs.dst_node >= 0,
                     "graph-mode flows need src_node/dst_node");
    flows_.push_back(app::make_flow(
        fs.variant, sim_, graph_->node(fs.src_node),
        graph_->node(fs.dst_node), static_cast<net::FlowId>(i + 1),
        fs.tcp));
  }

  for (std::size_t j = 0; j < spec_.cross_traffic.size(); ++j) {
    const CbrSpec& cs = spec_.cross_traffic[j];
    RRTCP_ASSERT_MSG(cs.src_node >= 0 && cs.dst_node >= 0,
                     "graph-mode CBR streams need src_node/dst_node");
    RRTCP_ASSERT_MSG(cs.rate_bps > 0,
                     "graph-mode CBR streams need an explicit rate_bps");
    traffic::CbrConfig cc;
    cc.rate_bps = cs.rate_bps;
    cc.packet_bytes = cs.packet_bytes;
    cc.start = cs.start;
    cc.stop = cs.stop;
    const auto flow_id =
        static_cast<net::FlowId>(spec_.flows.size() + j + 1);
    cbr_sinks_.push_back(std::make_unique<traffic::CbrSink>(
        graph_->node(cs.dst_node), flow_id));
    cbr_sources_.push_back(std::make_unique<traffic::CbrSource>(
        sim_, graph_->node(cs.src_node), flow_id,
        graph_->node(cs.dst_node).id(), cc));
  }
}

}  // namespace rrtcp::harness
