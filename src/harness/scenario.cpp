#include "harness/scenario.hpp"

#include <string>
#include <utility>

#include "app/flow_factory.hpp"
#include "harness/sweep.hpp"
#include "net/drop_tail.hpp"
#include "sim/assert.hpp"

namespace rrtcp::harness {

namespace {

// Translates a QueueSpec into the sim-capturing factory DumbbellConfig
// wants. `red_out`, when the spec picks RED, receives the built queue.
std::function<std::unique_ptr<net::QueueDisc>()> make_queue_factory(
    const QueueSpec& qs, sim::Simulator& sim, std::uint64_t seed,
    net::RedQueue** red_out) {
  switch (qs.kind) {
    case QueueSpec::Kind::kDropTail:
      return [cap = qs.capacity_packets] {
        return std::make_unique<net::DropTailQueue>(cap);
      };
    case QueueSpec::Kind::kRed:
      return [&sim, rc = qs.red, seed, red_out]() mutable {
        rc.seed = seed;
        auto q = std::make_unique<net::RedQueue>(sim, rc);
        if (red_out) *red_out = q.get();
        return q;
      };
  }
  RRTCP_ASSERT_MSG(false, "unreachable");
  return {};
}

// Breadth-first reachability over a GraphSpec's directed links — the same
// connectivity TopologyGraph's shortest-path routing will find, computable
// without materializing nodes or a simulator.
bool reachable(const topo::GraphSpec& g, int from, int to) {
  if (from == to) return true;
  std::vector<char> seen(static_cast<std::size_t>(g.n_nodes()), 0);
  std::vector<int> frontier{from};
  seen[static_cast<std::size_t>(from)] = 1;
  while (!frontier.empty()) {
    std::vector<int> next;
    for (const int at : frontier) {
      for (const topo::LinkSpec& l : g.links) {
        if (l.from != at || seen[static_cast<std::size_t>(l.to)] != 0)
          continue;
        if (l.to == to) return true;
        seen[static_cast<std::size_t>(l.to)] = 1;
        next.push_back(l.to);
      }
    }
    frontier = std::move(next);
  }
  return false;
}

}  // namespace

const char* to_string(SpecError::Code c) {
  switch (c) {
    case SpecError::Code::kNoFlows:
      return "no-flows";
    case SpecError::Code::kBadHorizon:
      return "bad-horizon";
    case SpecError::Code::kBadRate:
      return "bad-rate";
    case SpecError::Code::kBadLink:
      return "bad-link";
    case SpecError::Code::kBadEndpoint:
      return "bad-endpoint";
    case SpecError::Code::kUnroutable:
      return "unroutable";
    case SpecError::Code::kBadCbr:
      return "bad-cbr";
  }
  return "?";
}

std::optional<SpecError> Scenario::validate(const ScenarioSpec& spec) {
  auto fail = [](SpecError::Code c, std::string d) {
    return std::optional<SpecError>{SpecError{c, std::move(d)}};
  };

  if (!spec.flow_sets.empty()) {
    // Validate what will actually be built.
    ScenarioSpec expanded = spec;
    expanded.expand_flow_sets();
    return validate(expanded);
  }

  if (spec.flows.empty())
    return fail(SpecError::Code::kNoFlows, "scenario has no flows");
  if (spec.horizon <= sim::Time::zero())
    return fail(SpecError::Code::kBadHorizon, "horizon must be > 0");

  if (spec.graph.empty()) {
    // Dumbbell mode: the preset wires the graph itself, so only the rate
    // knobs can be structurally wrong.
    if (spec.topology.bottleneck_bps <= 0)
      return fail(SpecError::Code::kBadRate, "bottleneck_bps must be > 0");
    if (spec.topology.side_bps <= 0)
      return fail(SpecError::Code::kBadRate, "side_bps must be > 0");
    if (spec.topology.reverse_bps < 0)
      return fail(SpecError::Code::kBadRate, "reverse_bps must be >= 0");
    for (std::size_t j = 0; j < spec.cross_traffic.size(); ++j) {
      const CbrSpec& cs = spec.cross_traffic[j];
      if (cs.packet_bytes == 0)
        return fail(SpecError::Code::kBadCbr,
                    "cbr " + std::to_string(j) + ": packet_bytes must be > 0");
      if (cs.load_fraction <= 0.0 && cs.rate_bps <= 0)
        return fail(SpecError::Code::kBadCbr,
                    "cbr " + std::to_string(j) +
                        ": needs load_fraction or rate_bps > 0");
    }
    return std::nullopt;
  }

  // Graph mode.
  const topo::GraphSpec& g = spec.graph;
  const int n = g.n_nodes();
  for (std::size_t i = 0; i < g.links.size(); ++i) {
    const topo::LinkSpec& l = g.links[i];
    if (l.from < 0 || l.from >= n || l.to < 0 || l.to >= n || l.from == l.to)
      return fail(SpecError::Code::kBadLink,
                  "link " + std::to_string(i) + ": endpoints out of range");
    if (l.bandwidth_bps <= 0)
      return fail(SpecError::Code::kBadRate,
                  "link " + std::to_string(i) + ": bandwidth must be > 0");
  }
  for (std::size_t i = 0; i < g.routes.size(); ++i) {
    const topo::RouteSpec& r = g.routes[i];
    if (r.at < 0 || r.at >= n || r.dst < 0 || r.dst >= n || r.link < 0 ||
        r.link >= static_cast<int>(g.links.size()))
      return fail(SpecError::Code::kBadLink,
                  "route " + std::to_string(i) + ": indices out of range");
  }
  for (const int link : spec.audited_links) {
    if (link < 0 || link >= static_cast<int>(g.links.size()))
      return fail(SpecError::Code::kBadLink,
                  "audited link " + std::to_string(link) + " out of range");
  }
  for (std::size_t i = 0; i < spec.flows.size(); ++i) {
    const FlowSpec& fs = spec.flows[i];
    if (fs.src_node < 0 || fs.src_node >= n || fs.dst_node < 0 ||
        fs.dst_node >= n || fs.src_node == fs.dst_node)
      return fail(SpecError::Code::kBadEndpoint,
                  "flow " + std::to_string(i) + ": src/dst node invalid");
    // Data must reach the receiver AND its ACKs must get home.
    if (!reachable(g, fs.src_node, fs.dst_node) ||
        !reachable(g, fs.dst_node, fs.src_node))
      return fail(SpecError::Code::kUnroutable,
                  "flow " + std::to_string(i) + ": no path " +
                      std::to_string(fs.src_node) + "<->" +
                      std::to_string(fs.dst_node));
  }
  for (std::size_t j = 0; j < spec.cross_traffic.size(); ++j) {
    const CbrSpec& cs = spec.cross_traffic[j];
    if (cs.src_node < 0 || cs.src_node >= n || cs.dst_node < 0 ||
        cs.dst_node >= n || cs.src_node == cs.dst_node)
      return fail(SpecError::Code::kBadCbr,
                  "cbr " + std::to_string(j) + ": src/dst node invalid");
    if (cs.rate_bps <= 0)
      return fail(SpecError::Code::kBadCbr,
                  "cbr " + std::to_string(j) +
                      ": graph mode needs explicit rate_bps > 0");
    if (cs.packet_bytes == 0)
      return fail(SpecError::Code::kBadCbr,
                  "cbr " + std::to_string(j) + ": packet_bytes must be > 0");
    if (!reachable(g, cs.src_node, cs.dst_node))
      return fail(SpecError::Code::kUnroutable,
                  "cbr " + std::to_string(j) + ": no path " +
                      std::to_string(cs.src_node) + "->" +
                      std::to_string(cs.dst_node));
  }
  return std::nullopt;
}

std::unique_ptr<Scenario> Scenario::try_build(ScenarioSpec spec,
                                              SpecError* err) {
  if (std::optional<SpecError> e = validate(spec)) {
    if (err != nullptr) *err = std::move(*e);
    return nullptr;
  }
  return std::make_unique<Scenario>(std::move(spec));
}

Scenario::Scenario(ScenarioSpec spec) : spec_{std::move(spec)} {
  spec_.expand_flow_sets();
  RRTCP_ASSERT_MSG(!spec_.flows.empty(), "scenario needs at least one flow");

  // Engine-tier selection must precede every schedule (the hook asserts
  // the wheel is empty); the fuzzer's equivalence oracle builds the same
  // spec with the wheel off and expects byte-identical traces.
  if (!spec_.timer_wheel) sim_.set_timer_wheel_enabled(false);

  if (spec_.graph.empty()) {
    build_dumbbell();
  } else {
    build_graph();
  }

  // Traffic sources (FTP or ON/OFF), one per flow. ON/OFF sources derive
  // their RNG stream from the scenario seed and the flow index, so adding
  // or reordering other stochastic components never perturbs them.
  sources_.reserve(spec_.flows.size());
  onoffs_.reserve(spec_.flows.size());
  for (std::size_t i = 0; i < spec_.flows.size(); ++i) {
    const FlowSpec& fs = spec_.flows[i];
    if (fs.onoff) {
      traffic::OnOffConfig oc = *fs.onoff;
      oc.start = fs.start;
      sources_.push_back(nullptr);
      onoffs_.push_back(std::make_unique<traffic::OnOffSource>(
          sim_, *flows_[i].sender, oc, spec_.seed,
          "onoff/" + std::to_string(i)));
    } else {
      sources_.push_back(std::make_unique<app::FtpSource>(
          sim_, *flows_[i].sender, fs.start, fs.bytes));
      onoffs_.push_back(nullptr);
    }
  }

  instrumentation_ = std::make_unique<Instrumentation>(sim_, spec_.instruments);
  for (app::Flow& f : flows_) instrumentation_->attach(f);
  if (topo_) {
    instrumentation_->attach_topology(*topo_);
  } else {
    instrumentation_->attach_queues(*graph_, spec_.audited_links);
  }
}

void Scenario::build_dumbbell() {
  // CBR streams ride extra host pairs appended after the TCP flows', so
  // a spec without cross-traffic builds the exact seed topology.
  const int n_tcp = static_cast<int>(spec_.flows.size());
  const int n_cbr = static_cast<int>(spec_.cross_traffic.size());

  net::DumbbellConfig netcfg = spec_.topology;
  netcfg.n_flows = n_tcp + n_cbr;
  netcfg.make_bottleneck_queue =
      make_queue_factory(spec_.bottleneck, sim_, spec_.seed, &red_);
  if (spec_.reverse_bottleneck) {
    // A distinct derived seed keeps a reverse RED queue's drop RNG
    // independent of the forward one's.
    netcfg.make_reverse_queue =
        make_queue_factory(*spec_.reverse_bottleneck, sim_,
                           derive_seed(spec_.seed, 1), &reverse_red_);
  }
  topo_ = std::make_unique<net::DumbbellTopology>(sim_, netcfg);

  flows_.reserve(spec_.flows.size());
  for (int i = 0; i < n_tcp; ++i) {
    const FlowSpec& fs = spec_.flows[static_cast<std::size_t>(i)];
    net::Node& snd = fs.reverse ? topo_->receiver_node(i)
                                : topo_->sender_node(i);
    net::Node& rcv = fs.reverse ? topo_->sender_node(i)
                                : topo_->receiver_node(i);
    const auto id = static_cast<net::FlowId>(i + 1);
    flows_.push_back(spec_.flow_maker
                         ? spec_.flow_maker(sim_, snd, rcv, id, fs)
                         : app::make_flow(fs.variant, sim_, snd, rcv, id,
                                          fs.tcp));
  }

  const std::int64_t rev_bps = netcfg.reverse_bps > 0
                                   ? netcfg.reverse_bps
                                   : netcfg.bottleneck_bps;
  for (int j = 0; j < n_cbr; ++j) {
    const CbrSpec& cs = spec_.cross_traffic[static_cast<std::size_t>(j)];
    const int pair = n_tcp + j;
    net::Node& src = cs.reverse ? topo_->receiver_node(pair)
                                : topo_->sender_node(pair);
    net::Node& dst = cs.reverse ? topo_->sender_node(pair)
                                : topo_->receiver_node(pair);
    traffic::CbrConfig cc;
    cc.rate_bps = cs.load_fraction > 0
                      ? static_cast<std::int64_t>(
                            cs.load_fraction *
                            static_cast<double>(cs.reverse
                                                    ? rev_bps
                                                    : netcfg.bottleneck_bps))
                      : cs.rate_bps;
    cc.packet_bytes = cs.packet_bytes;
    cc.start = cs.start;
    cc.stop = cs.stop;
    const auto flow_id = static_cast<net::FlowId>(n_tcp + j + 1);
    cbr_sinks_.push_back(std::make_unique<traffic::CbrSink>(dst, flow_id));
    cbr_sources_.push_back(std::make_unique<traffic::CbrSource>(
        sim_, src, flow_id, dst.id(), cc));
  }
}

void Scenario::build_graph() {
  // The GraphSpec carries its own per-link queue factories, so
  // spec_.bottleneck / spec_.reverse_bottleneck do not apply here.
  graph_ = std::make_unique<topo::TopologyGraph>(sim_, spec_.graph);

  flows_.reserve(spec_.flows.size());
  for (std::size_t i = 0; i < spec_.flows.size(); ++i) {
    const FlowSpec& fs = spec_.flows[i];
    RRTCP_ASSERT_MSG(fs.src_node >= 0 && fs.dst_node >= 0,
                     "graph-mode flows need src_node/dst_node");
    const auto id = static_cast<net::FlowId>(i + 1);
    flows_.push_back(
        spec_.flow_maker
            ? spec_.flow_maker(sim_, graph_->node(fs.src_node),
                               graph_->node(fs.dst_node), id, fs)
            : app::make_flow(fs.variant, sim_, graph_->node(fs.src_node),
                             graph_->node(fs.dst_node), id, fs.tcp));
  }

  for (std::size_t j = 0; j < spec_.cross_traffic.size(); ++j) {
    const CbrSpec& cs = spec_.cross_traffic[j];
    RRTCP_ASSERT_MSG(cs.src_node >= 0 && cs.dst_node >= 0,
                     "graph-mode CBR streams need src_node/dst_node");
    RRTCP_ASSERT_MSG(cs.rate_bps > 0,
                     "graph-mode CBR streams need an explicit rate_bps");
    traffic::CbrConfig cc;
    cc.rate_bps = cs.rate_bps;
    cc.packet_bytes = cs.packet_bytes;
    cc.start = cs.start;
    cc.stop = cs.stop;
    const auto flow_id =
        static_cast<net::FlowId>(spec_.flows.size() + j + 1);
    cbr_sinks_.push_back(std::make_unique<traffic::CbrSink>(
        graph_->node(cs.dst_node), flow_id));
    cbr_sources_.push_back(std::make_unique<traffic::CbrSource>(
        sim_, graph_->node(cs.src_node), flow_id,
        graph_->node(cs.dst_node).id(), cc));
  }
}

}  // namespace rrtcp::harness
