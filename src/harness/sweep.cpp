#include "harness/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string_view>
#include <thread>

#include "harness/scenario.hpp"
#include "sim/assert.hpp"

namespace rrtcp::harness {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void run_one_job(const SweepJob& job, std::size_t index,
                 std::uint64_t base_seed, ResultSink& sink) {
  const auto t0 = std::chrono::steady_clock::now();
  const JobContext ctx{index, derive_seed(base_seed, index)};
  Record row;
  row.set("id", job.id);
  try {
    RRTCP_ASSERT_MSG(static_cast<bool>(job.run), "scenario callback empty");
    row.merge(job.run(ctx));
  } catch (const std::exception& e) {
    row.set("error", e.what());
  }
  sink.submit(index, std::move(row), seconds_since(t0));
}

[[noreturn]] void usage_error(const char* arg) {
  std::fprintf(stderr,
               "unknown argument: %s\n"
               "usage: <bench> [--threads=N] [--seed=S] [--shards=N] "
               "[--csv=PATH] [--json=PATH] [--list-variants] [--quick]\n",
               arg);
  std::exit(2);
}

// Out-of-range --shards gets its own message: like an unknown variant
// printing the registry, a bad value prints the valid range.
[[noreturn]] void shards_range_error(const char* arg) {
  std::fprintf(stderr,
               "invalid shard count: %s\n"
               "valid range: --shards=1..%d (1 = single engine; graph-mode "
               "scenarios partition, everything else delegates)\n",
               arg, kMaxShardCount);
  std::exit(2);
}

}  // namespace

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t index) {
  // SplitMix64 finalizer over a golden-ratio-spaced combination of base
  // seed and index; stateless, so job i's seed never depends on which
  // thread ran jobs 0..i-1.
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("RRTCP_SWEEP_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

SweepTiming run_sweep(const std::vector<SweepJob>& jobs, ResultSink& sink,
                      const SweepOptions& opts) {
  RRTCP_ASSERT_MSG(sink.size() == jobs.size(),
                   "sink size must match job count");
  SweepTiming timing;
  timing.threads = resolve_threads(opts.threads);
  const auto t0 = std::chrono::steady_clock::now();

  if (timing.threads == 1 || jobs.size() <= 1) {
    // Serial fallback: no pool, jobs run inline on the calling thread.
    for (std::size_t i = 0; i < jobs.size(); ++i)
      run_one_job(jobs[i], i, opts.base_seed, sink);
  } else {
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= jobs.size()) return;
        run_one_job(jobs[i], i, opts.base_seed, sink);
      }
    };
    const std::size_t n_workers =
        std::min<std::size_t>(timing.threads, jobs.size());
    std::vector<std::thread> pool;
    pool.reserve(n_workers - 1);
    for (std::size_t t = 0; t + 1 < n_workers; ++t)
      pool.emplace_back(worker);
    worker();  // the calling thread is worker n_workers-1
    for (std::thread& t : pool) t.join();
  }

  timing.wall_seconds = seconds_since(t0);
  timing.job_seconds = sink.total_job_seconds();
  RRTCP_ASSERT_MSG(sink.complete(), "sweep finished with missing results");
  return timing;
}

SweepCli SweepCli::parse(int argc, char** argv) {
  SweepCli cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      const std::size_t n = std::string_view{prefix}.size();
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    // Numeric values must parse in full: "--threads=abc" or "--seed="
    // silently meaning "default" would hide typos in scripted runs.
    char* end = nullptr;
    if (const char* threads = value_of("--threads=")) {
      cli.options.threads = static_cast<int>(std::strtol(threads, &end, 10));
      if (end == threads || *end != '\0') usage_error(argv[i]);
    } else if (const char* seed = value_of("--seed=")) {
      cli.options.base_seed = std::strtoull(seed, &end, 10);
      if (end == seed || *end != '\0') usage_error(argv[i]);
    } else if (const char* shards = value_of("--shards=")) {
      cli.shards = static_cast<int>(std::strtol(shards, &end, 10));
      if (end == shards || *end != '\0' || cli.shards < 1 ||
          cli.shards > kMaxShardCount)
        shards_range_error(argv[i]);
    } else if (const char* csv = value_of("--csv=")) {
      cli.csv_path = csv;
    } else if (const char* json = value_of("--json=")) {
      cli.json_path = json;
    } else if (arg == "--list-variants") {
      cli.list_variants = true;
    } else if (arg == "--quick") {
      cli.quick = true;
    } else {
      usage_error(argv[i]);
    }
  }
  return cli;
}

void report(const char* sweep_name, const SweepCli& cli,
            const ResultSink& sink, const SweepTiming& timing) {
  std::printf("\nsweep timing (%s): %zu jobs on %d thread%s\n", sweep_name,
              sink.size(), timing.threads, timing.threads == 1 ? "" : "s");
  for (std::size_t i = 0; i < sink.size(); ++i) {
    const std::string id{sink.record(i).get("id")};
    std::printf("  %-44s %8.3f s\n", id.c_str(), sink.wall_seconds(i));
  }
  std::printf("  total job time %.3f s, sweep wall %.3f s, speedup %.2fx\n",
              timing.job_seconds, timing.wall_seconds, timing.speedup());
  if (!cli.csv_path.empty()) {
    write_file(cli.csv_path, sink.to_csv());
    std::printf("  wrote %s\n", cli.csv_path.c_str());
  }
  if (!cli.json_path.empty()) {
    write_file(cli.json_path,
               sink.to_json(sweep_name, cli.options.base_seed));
    std::printf("  wrote %s\n", cli.json_path.c_str());
  }
}

}  // namespace rrtcp::harness
