// Chaos soak harness: seeded fault schedules, run differentially across
// sender variants on the parallel sweep pool.
//
// One chaos *schedule* is a FaultPlan drawn from a seed. The soak runs the
// SAME plan against each variant (RR, New-Reno, Tahoe, SACK) so rows are
// directly comparable — the differential view the paper's robustness claim
// needs. Each run arms the full protocol-invariant audit session
// (FailMode::kRecord in every build configuration, not just RRTCP_AUDIT)
// and the liveness watchdog, then asserts graceful degradation:
//
//   * every flow either completes by the horizon or is still alive — its
//     retransmission timer armed, guaranteed to act again;
//   * zero audit violations;
//   * zero watchdog reports (stall / livelock / silent death).
//
// Determinism: a schedule is fully determined by derive_seed(base_seed,
// schedule_index), so a failing row is replayed byte-identically from the
// seed printed in its record (chaos_soak --replay=SEED).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "app/flow_factory.hpp"
#include "audit/invariant_auditor.hpp"
#include "chaos/fault.hpp"
#include "chaos/watchdog.hpp"
#include "harness/sweep.hpp"
#include "tcp/types.hpp"

namespace rrtcp::harness {

// Scenario shape shared by every schedule: a dumbbell with n finite FTP
// flows of one variant, fault injectors interposed on both bottlenecks.
struct ChaosRunConfig {
  app::Variant variant = app::Variant::kRr;
  int n_flows = 2;
  std::uint64_t bytes_per_flow = 100'000;  // Table 5's targeted transfer
  sim::Time start_stagger = sim::Time::milliseconds(300);
  sim::Time horizon = sim::Time::seconds(120.0);
  std::uint64_t buffer_packets = 8;  // Table 3 bottleneck buffer
  tcp::TcpConfig tcp;
  chaos::WatchdogConfig watchdog;
  // Test hook: replaces app::make_flow for every flow, letting tests drive
  // intentionally broken senders through the identical harness path.
  std::function<app::Flow(sim::Simulator&, net::Node& snd, net::Node& rcv,
                          net::FlowId, const tcp::TcpConfig&)>
      flow_maker;
};

struct ChaosRunOutcome {
  int flows_complete = 0;
  int flows_alive = 0;  // incomplete at the horizon, but RTO armed
  int flows_dead = 0;   // incomplete AND nothing scheduled to act
  std::uint64_t timeouts = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t fault_drops = 0;
  std::uint64_t fault_duplicates = 0;
  std::uint64_t fault_delays = 0;
  std::uint64_t audit_violations = 0;
  std::uint64_t watchdog_reports = 0;
  sim::Time last_completion = sim::Time::zero();
  // The soak verdict: no dead flow, no violation, no watchdog report.
  bool graceful = false;
};

// Builds one simulation under `plan` and runs it to cfg.horizon. `seed`
// feeds the injectors' per-spec streams (use the plan's own seed so the
// whole row replays from one number). Optional outputs receive the
// watchdog reports / audit violations for inspection.
ChaosRunOutcome run_chaos_schedule(
    const chaos::FaultPlan& plan, std::uint64_t seed, const ChaosRunConfig& cfg,
    std::vector<chaos::WatchdogReport>* reports = nullptr,
    std::vector<audit::Violation>* violations = nullptr);

struct ChaosSoakOptions {
  int n_schedules = 64;
  std::vector<app::Variant> variants = {app::Variant::kRr,
                                        app::Variant::kNewReno,
                                        app::Variant::kTahoe,
                                        app::Variant::kSack};
  ChaosRunConfig base;  // variant field is overridden per job
  chaos::PlanBounds bounds;
};

// The soak's job grid: n_schedules x variants, in schedule-major order so
// one schedule's rows (same plan, different variants) are adjacent in the
// output. Schedule i's plan seed is derive_seed(base_seed, i) — note:
// keyed by SCHEDULE index, not job index, so all variants of a schedule
// face the byte-identical fault sequence. Each record carries the plan
// seed, its description, and the ChaosRunOutcome fields.
std::vector<SweepJob> make_chaos_jobs(const ChaosSoakOptions& opts,
                                          std::uint64_t base_seed);

}  // namespace rrtcp::harness
