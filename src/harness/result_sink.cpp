#include "harness/result_sink.hpp"

#include <cmath>
#include <cstdio>

#include "sim/assert.hpp"

namespace rrtcp::harness {

namespace {

// CSV: quote a cell only when it needs it (comma, quote, newline), with
// embedded quotes doubled per RFC 4180.
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

// JSON string body escaping (quotes, backslash, control characters).
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// A numeric field whose text is nan/inf is not valid JSON; quote it.
bool json_safe_number(const std::string& text) {
  return text.find_first_not_of("0123456789+-.eE") == std::string::npos &&
         !text.empty();
}

}  // namespace

Record& Record::set(std::string key, std::string value) {
  fields_.push_back({std::move(key), std::move(value), /*numeric=*/false});
  return *this;
}

Record& Record::set(std::string key, const char* value) {
  return set(std::move(key), std::string{value});
}

Record& Record::set(std::string key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", value);
  fields_.push_back({std::move(key), buf, /*numeric=*/true});
  return *this;
}

Record& Record::set(std::string key, std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(value));
  fields_.push_back({std::move(key), buf, /*numeric=*/true});
  return *this;
}

Record& Record::set(std::string key, int value) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%d", value);
  fields_.push_back({std::move(key), buf, /*numeric=*/true});
  return *this;
}

Record& Record::set(std::string key, bool value) {
  fields_.push_back({std::move(key), value ? "1" : "0", /*numeric=*/true});
  return *this;
}

Record& Record::merge(const Record& other) {
  fields_.insert(fields_.end(), other.fields_.begin(), other.fields_.end());
  return *this;
}

std::string_view Record::get(std::string_view key) const {
  for (const Field& f : fields_)
    if (f.key == key) return f.text;
  return {};
}

ResultSink::ResultSink(std::size_t n_jobs)
    : records_(n_jobs), wall_(n_jobs, 0.0), done_(n_jobs, false) {}

void ResultSink::submit(std::size_t index, Record record,
                        double wall_seconds) {
  std::lock_guard<std::mutex> lock{mu_};
  RRTCP_ASSERT_MSG(index < records_.size(), "job index out of range");
  RRTCP_ASSERT_MSG(!done_[index], "job result submitted twice");
  records_[index] = std::move(record);
  wall_[index] = wall_seconds;
  done_[index] = true;
}

bool ResultSink::complete() const {
  for (bool d : done_)
    if (!d) return false;
  return true;
}

double ResultSink::total_job_seconds() const {
  double total = 0.0;
  for (double w : wall_) total += w;
  return total;
}

std::vector<std::string> ResultSink::column_order() const {
  std::vector<std::string> cols;
  for (const Record& r : records_) {
    for (const Record::Field& f : r.fields()) {
      bool seen = false;
      for (const std::string& c : cols)
        if (c == f.key) {
          seen = true;
          break;
        }
      if (!seen) cols.push_back(f.key);
    }
  }
  return cols;
}

std::string ResultSink::to_csv() const {
  const std::vector<std::string> cols = column_order();
  std::string out;
  for (std::size_t c = 0; c < cols.size(); ++c) {
    if (c) out += ',';
    out += csv_escape(cols[c]);
  }
  out += '\n';
  for (const Record& r : records_) {
    for (std::size_t c = 0; c < cols.size(); ++c) {
      if (c) out += ',';
      out += csv_escape(std::string{r.get(cols[c])});
    }
    out += '\n';
  }
  return out;
}

std::string ResultSink::to_json(std::string_view sweep_name,
                                std::uint64_t base_seed) const {
  char buf[64];
  std::string out = "{\n  \"sweep\": \"";
  out += json_escape(sweep_name);
  std::snprintf(buf, sizeof buf, "\",\n  \"base_seed\": %llu,\n",
                static_cast<unsigned long long>(base_seed));
  out += buf;
  out += "  \"jobs\": [\n";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    out += "    {";
    const auto& fields = records_[i].fields();
    for (std::size_t f = 0; f < fields.size(); ++f) {
      if (f) out += ", ";
      out += '"';
      out += json_escape(fields[f].key);
      out += "\": ";
      if (fields[f].numeric && json_safe_number(fields[f].text)) {
        out += fields[f].text;
      } else {
        out += '"';
        out += json_escape(fields[f].text);
        out += '"';
      }
    }
    out += i + 1 < records_.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

void write_file(const std::string& path, std::string_view contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  RRTCP_ASSERT_MSG(f != nullptr, "cannot open sweep output file");
  const std::size_t n = std::fwrite(contents.data(), 1, contents.size(), f);
  RRTCP_ASSERT_MSG(n == contents.size(), "short write to sweep output file");
  RRTCP_ASSERT_MSG(std::fclose(f) == 0, "close failed on sweep output file");
}

}  // namespace rrtcp::harness
