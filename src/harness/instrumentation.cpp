#include "harness/instrumentation.hpp"

namespace rrtcp::harness {

Instrumentation::Instrumentation(sim::Simulator& sim,
                                 InstrumentationOptions opts)
    : sim_{sim}, opts_{opts} {
  switch (opts_.audit) {
    case AuditMode::kNone:
      break;
    case AuditMode::kBuildGated:
      gated_ = std::make_unique<audit::ScopedAudit>(sim_);
      break;
    case AuditMode::kRecord:
      recording_ = std::make_unique<audit::AuditSession>(
          sim_, audit::AuditSession::FailMode::kRecord);
      break;
  }
  if (opts_.watchdog) {
    watchdog_ = std::make_unique<chaos::LivenessWatchdog>(
        sim_, opts_.watchdog_config, chaos::LivenessWatchdog::FailMode::kRecord);
  }
}

Instrumentation::~Instrumentation() {
  for (auto& fi : flows_) {
    if (fi->sender == nullptr) continue;
    if (fi->phases) fi->sender->remove_observer(fi->phases.get());
    if (fi->seq) fi->sender->remove_observer(fi->seq.get());
    if (fi->meter) fi->sender->remove_observer(fi->meter.get());
  }
}

FlowInstruments& Instrumentation::attach(app::Flow& flow) {
  auto fi = std::make_unique<FlowInstruments>();
  fi->sender = flow.sender.get();
  if (opts_.tracers) {
    fi->meter = std::make_unique<stats::ThroughputMeter>();
    fi->seq = std::make_unique<stats::SeqTracer>(flow.sender->config().mss);
    fi->phases = std::make_unique<stats::PhaseTracer>();
    flow.sender->add_observer(fi->meter.get());
    flow.sender->add_observer(fi->seq.get());
    flow.sender->add_observer(fi->phases.get());
  }
  if (gated_) gated_->attach(*flow.sender, flow.receiver.get());
  if (recording_) recording_->attach(*flow.sender, flow.receiver.get());
  if (watchdog_) watchdog_->attach(*flow.sender);
  flows_.push_back(std::move(fi));
  return *flows_.back();
}

void Instrumentation::attach_topology(net::DumbbellTopology& topo) {
  if (gated_) gated_->attach_topology(topo);
  if (recording_) recording_->attach_topology(topo);
}

void Instrumentation::attach_queues(topo::TopologyGraph& graph,
                                    const std::vector<int>& links) {
  for (int l : links) {
    const char* name = graph.spec().links.at(static_cast<std::size_t>(l))
                           .name.c_str();
    if (gated_) gated_->attach_queue(graph.link(l).queue(), name);
    if (recording_) recording_->attach_queue(graph.link(l).queue(), name);
  }
}

std::size_t Instrumentation::audit_violations() const {
  return recording_ ? recording_->total_violations() : 0;
}

}  // namespace rrtcp::harness
