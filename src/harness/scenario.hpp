// Declarative scenario description + runner.
//
// A ScenarioSpec is a plain value: topology, bottleneck queue choice, the
// list of flows (variant, start time, transfer size, TCP config), optional
// cross-traffic, instrumentation options, a seed and a horizon. Because it
// is data, a spec can be built once and handed to a sweep job, mutated per
// grid point, or printed; the imperative build-everything-by-hand dance
// the bench binaries used to repeat lives in ONE place, the Scenario
// constructor.
//
//   harness::ScenarioSpec spec;
//   spec.name = "fig5/newreno";
//   spec.bottleneck = harness::QueueSpec::drop_tail(100);
//   spec.add_flow({.variant = app::Variant::kNewReno,
//                  .bytes = 100'000, .tcp = tcfg});
//   harness::Scenario sc{spec};
//   sc.topology().bottleneck().set_loss_model(...);   // optional knobs
//   sc.run();
//   ... sc.instruments(0).meter->throughput_bps(...) ...
//
// Two topology modes:
//   Dumbbell (default, spec.graph empty) — the paper's Figure 4 around
//   spec.topology; flows are placed on consecutive host pairs. The reverse
//   bottleneck is first-class: spec.reverse_bottleneck picks its queue, and
//   FlowSpec.reverse / CbrSpec.reverse place load on the ACK path.
//   Graph (spec.graph non-empty) — any topo::GraphSpec (parking lot, N x M
//   dumbbell, hand-built). Flows and CBR streams name their src/dst node
//   indices; spec.audited_links lists the link queues the audit layer
//   watches. Queue disciplines ride inside the GraphSpec's per-link
//   factories, so spec.bottleneck is ignored in this mode.
//
// Member order in Scenario is its teardown contract: instrumentation
// detaches first, then traffic sources stop, then flows die, then the
// topology, then the simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "app/flow_factory.hpp"
#include "app/ftp.hpp"
#include "app/variant.hpp"
#include "harness/instrumentation.hpp"
#include "net/dumbbell.hpp"
#include "net/red.hpp"
#include "sim/simulator.hpp"
#include "tcp/types.hpp"
#include "topo/graph.hpp"
#include "traffic/cbr.hpp"
#include "traffic/onoff.hpp"

namespace rrtcp::harness {

// Bottleneck queue selection, as data. The sim-capturing factory function
// in DumbbellConfig cannot live in a value-type spec (it would dangle);
// Scenario translates this into one at build time.
struct QueueSpec {
  enum class Kind { kDropTail, kRed };
  Kind kind = Kind::kDropTail;
  std::uint64_t capacity_packets = 8;  // drop-tail (Table 3 default)
  net::RedConfig red = {};             // used when kind == kRed

  static QueueSpec drop_tail(std::uint64_t capacity) {
    QueueSpec q;
    q.kind = Kind::kDropTail;
    q.capacity_packets = capacity;
    return q;
  }
  static QueueSpec red_queue(net::RedConfig cfg) {
    QueueSpec q;
    q.kind = Kind::kRed;
    q.red = cfg;
    return q;
  }
};

struct FlowSpec {
  app::Variant variant = app::Variant::kRr;
  sim::Time start = sim::Time::zero();
  // Transfer size; nullopt = unbounded FTP. Ignored when `onoff` is set.
  std::optional<std::uint64_t> bytes = std::nullopt;
  tcp::TcpConfig tcp = {};
  // Dumbbell mode: run this flow K_i -> S_i instead of S_i -> K_i, so its
  // DATA crosses the reverse bottleneck and its ACKs the forward one — the
  // reverse-path bulk flow that queues/compresses the other flows' ACKs.
  bool reverse = false;
  // Web-like ON/OFF source instead of FTP; `start` below overrides the
  // embedded OnOffConfig::start.
  std::optional<traffic::OnOffConfig> onoff = std::nullopt;
  // Graph mode: endpoint node indices into the GraphSpec (required there,
  // ignored in dumbbell mode).
  int src_node = -1;
  int dst_node = -1;
};

// N identical-config flows as ONE spec entry. A million-flow scenario must
// not carry a million FlowSpecs: the set stores one prototype plus an
// expansion rule, and expand_flow_sets() materializes the members at build
// time. Expansion is purely mechanical — member i starts at
// proto.start + stagger*i and (graph mode) runs
// proto.src_node + src_step*i -> proto.dst_node + dst_step*i — so a spec
// written with flow sets is byte-equivalent to the same spec written with
// the expanded flow list.
struct FlowSet {
  int count = 0;
  FlowSpec proto = {};
  sim::Time stagger = sim::Time::zero();
  // Graph mode: node-index strides, letting one set cover "flow i runs
  // host_i -> sink_i" placements. 0 keeps every member on proto's nodes.
  int src_step = 0;
  int dst_step = 0;
};

// Unresponsive constant-bit-rate cross-traffic stream. In dumbbell mode it
// gets its own host pair (forward: extra S -> K across the bottleneck;
// reverse = true: K -> S across the ACK path). In graph mode it runs
// src_node -> dst_node and rate_bps must be set explicitly.
struct CbrSpec {
  std::int64_t rate_bps = 0;   // absolute rate, bits/s
  // Dumbbell-mode convenience: when > 0, rate = fraction x the crossed
  // bottleneck's bandwidth (forward or reverse as placed); wins over
  // rate_bps.
  double load_fraction = 0.0;
  std::uint32_t packet_bytes = 1'000;
  sim::Time start = sim::Time::zero();
  std::optional<sim::Time> stop = std::nullopt;
  bool reverse = false;
  int src_node = -1;  // graph mode placement
  int dst_node = -1;
};

// Why a spec could not be built. `code` is the machine-checkable class
// (what a generator switches on to discard-and-resample); `detail` names
// the offending flow/link/field for humans. Returned by Scenario::validate
// and Scenario::try_build instead of tripping the constructor's asserts.
struct SpecError {
  enum class Code {
    kNoFlows,       // empty flow list
    kBadHorizon,    // horizon <= 0
    kBadRate,       // a link/topology bandwidth <= 0
    kBadLink,       // link or route endpoints outside the node set
    kBadEndpoint,   // flow src/dst missing or outside the node set
    kUnroutable,    // no path between a flow's endpoints (either direction)
    kBadCbr,        // cross-traffic endpoints/rate/packet size invalid
  };
  Code code;
  std::string detail;
};

const char* to_string(SpecError::Code c);

// Upper bound CLI front ends accept for ScenarioSpec::shard_count. Purely
// a sanity rail for --shards typos: the partitioner itself clamps to the
// subgraph count, so any larger value could only waste idle worker
// threads.
inline constexpr int kMaxShardCount = 64;

struct ScenarioSpec {
  std::string name = "scenario";
  // Dumbbell-mode topology knobs (bandwidths, delays, side buffers,
  // per-flow RTT overrides). n_flows and make_bottleneck_queue are
  // overwritten at build time from the flow/cross-traffic lists and
  // `bottleneck`.
  net::DumbbellConfig topology = {};
  QueueSpec bottleneck = {};
  // Dumbbell mode: queue discipline of the reverse (ACK-path) bottleneck.
  // nullopt keeps the deep default drop-tail buffer
  // (topology.reverse_queue_packets); set it to make ACK-path drops real.
  std::optional<QueueSpec> reverse_bottleneck = std::nullopt;
  // Graph mode: a non-empty GraphSpec replaces the dumbbell entirely.
  topo::GraphSpec graph;
  // Graph mode: link indices whose queues the audit layer should watch.
  std::vector<int> audited_links;
  std::vector<FlowSpec> flows;
  // Aggregate flow groups, expanded (appended to `flows`, in order) by
  // expand_flow_sets() before validation/build.
  std::vector<FlowSet> flow_sets;
  std::vector<CbrSpec> cross_traffic;
  InstrumentationOptions instruments = {};
  // Engine shards for the pdes::ShardedScenario runner (graph mode only;
  // requires every cut to have positive delay — see topo/partition.hpp).
  // The plain Scenario runner ignores it: 1 means "today's single engine",
  // and pdes delegates to exactly that path, byte-identically. CLI front
  // ends (--shards) accept 1..kMaxShardCount; the partitioner clamps to
  // the number of subgraphs the topology actually yields.
  int shard_count = 1;
  // Seeds randomized components (RED drop RNG, ON/OFF sources); pass the
  // sweep's derived per-job seed here.
  std::uint64_t seed = 1;
  sim::Time horizon = sim::Time::seconds(60);
  // Test/fuzz hook: when set, builds flow i in place of app::make_flow —
  // the scenario-level twin of ChaosRunConfig::flow_maker, letting
  // campaigns drive intentionally broken senders through the standard
  // build path (mutant self-tests of the fuzz oracles).
  std::function<app::Flow(sim::Simulator&, net::Node& snd, net::Node& rcv,
                          net::FlowId id, const FlowSpec& fs)>
      flow_maker;
  // False runs the simulation with the hierarchical timer-wheel tier
  // disabled (heap-only scheduling, the pre-wheel engine shape). Traces
  // must be byte-identical either way; the fuzzer's engine-equivalence
  // oracle flips this and compares digests.
  bool timer_wheel = true;

  ScenarioSpec& add_flow(FlowSpec f) {
    flows.push_back(std::move(f));
    return *this;
  }
  // n identical flows whose starts are staggered `stagger` apart.
  ScenarioSpec& add_flows(int n, FlowSpec f,
                          sim::Time stagger = sim::Time::zero()) {
    const sim::Time base = f.start;
    for (int i = 0; i < n; ++i) {
      f.start = base + stagger * i;
      flows.push_back(f);
    }
    return *this;
  }
  ScenarioSpec& add_cbr(CbrSpec c) {
    cross_traffic.push_back(std::move(c));
    return *this;
  }
  ScenarioSpec& add_flow_set(FlowSet s) {
    flow_sets.push_back(std::move(s));
    return *this;
  }

  // Materialize flow_sets into `flows` (appended in set order, members in
  // index order) and clear the set list. Idempotent; called by
  // Scenario::validate / the builders, so specs may carry sets right up to
  // build time.
  void expand_flow_sets() {
    for (const FlowSet& s : flow_sets) {
      flows.reserve(flows.size() + static_cast<std::size_t>(s.count > 0
                                                                ? s.count
                                                                : 0));
      for (int i = 0; i < s.count; ++i) {
        FlowSpec f = s.proto;
        f.start = s.proto.start + s.stagger * i;
        if (s.src_step != 0) f.src_node = s.proto.src_node + s.src_step * i;
        if (s.dst_step != 0) f.dst_node = s.proto.dst_node + s.dst_step * i;
        flows.push_back(std::move(f));
      }
    }
    flow_sets.clear();
  }
};

class Scenario {
 public:
  explicit Scenario(ScenarioSpec spec);

  // Structural validation of a spec WITHOUT building anything: empty flow
  // set, non-positive rates, out-of-range link/flow/CBR endpoints,
  // unroutable src/dst pairs (BFS over the GraphSpec, both directions —
  // ACKs must get home too). Returns nullopt when the spec is buildable.
  // The constructor still asserts on these as a backstop; generated specs
  // go through here (or try_build) so a bad sample is a discard, not a
  // crash.
  static std::optional<SpecError> validate(const ScenarioSpec& spec);

  // validate() + construct: nullptr (with *err filled when non-null) on a
  // rejected spec, the built scenario otherwise.
  static std::unique_ptr<Scenario> try_build(ScenarioSpec spec,
                                             SpecError* err = nullptr);

  sim::Simulator& sim() { return sim_; }
  // Dumbbell mode only.
  net::DumbbellTopology& topology() { return *topo_; }
  // The underlying graph, in either mode.
  topo::TopologyGraph& graph() {
    return graph_ ? *graph_ : topo_->graph();
  }
  bool graph_mode() const { return graph_ != nullptr; }

  int n_flows() const { return static_cast<int>(flows_.size()); }
  app::Flow& flow(int i) { return flows_.at(static_cast<std::size_t>(i)); }
  tcp::TcpSenderBase& sender(int i) { return *flow(i).sender; }
  // The FTP source of flow i; null for ON/OFF flows (see onoff()).
  app::FtpSource* source(int i) {
    return sources_.at(static_cast<std::size_t>(i)).get();
  }
  // The ON/OFF source of flow i; null for FTP flows.
  traffic::OnOffSource* onoff(int i) {
    return onoffs_.at(static_cast<std::size_t>(i)).get();
  }
  FlowInstruments& instruments(int i) {
    return instrumentation_->flow(static_cast<std::size_t>(i));
  }
  Instrumentation& instrumentation() { return *instrumentation_; }

  int n_cbr() const { return static_cast<int>(cbr_sources_.size()); }
  traffic::CbrSource& cbr(int i) {
    return *cbr_sources_.at(static_cast<std::size_t>(i));
  }
  traffic::CbrSink& cbr_sink(int i) {
    return *cbr_sinks_.at(static_cast<std::size_t>(i));
  }

  // The bottleneck RED queue, when the spec asked for one (else nullptr).
  net::RedQueue* red() { return red_; }
  // The reverse-bottleneck RED queue, when spec.reverse_bottleneck asked
  // for one (else nullptr).
  net::RedQueue* reverse_red() { return reverse_red_; }

  // Runs to the spec's horizon (or an explicit deadline); returns events
  // executed.
  std::uint64_t run() { return sim_.run_until(spec_.horizon); }
  std::uint64_t run_until(sim::Time deadline) {
    return sim_.run_until(deadline);
  }

  const ScenarioSpec& spec() const { return spec_; }

 private:
  void build_dumbbell();
  void build_graph();

  ScenarioSpec spec_;
  sim::Simulator sim_;
  std::unique_ptr<net::DumbbellTopology> topo_;   // dumbbell mode
  std::unique_ptr<topo::TopologyGraph> graph_;    // graph mode
  net::RedQueue* red_ = nullptr;
  net::RedQueue* reverse_red_ = nullptr;
  std::vector<app::Flow> flows_;
  std::vector<std::unique_ptr<app::FtpSource>> sources_;      // per flow
  std::vector<std::unique_ptr<traffic::OnOffSource>> onoffs_; // per flow
  std::vector<std::unique_ptr<traffic::CbrSource>> cbr_sources_;
  std::vector<std::unique_ptr<traffic::CbrSink>> cbr_sinks_;
  std::unique_ptr<Instrumentation> instrumentation_;
};

}  // namespace rrtcp::harness
