// Declarative scenario description + runner.
//
// A ScenarioSpec is a plain value: dumbbell topology, bottleneck queue
// choice, the list of flows (variant, start time, transfer size, TCP
// config), instrumentation options, a seed and a horizon. Because it is
// data, a spec can be built once and handed to a sweep job, mutated per
// grid point, or printed; the imperative build-everything-by-hand dance
// the bench binaries used to repeat lives in ONE place, the Scenario
// constructor.
//
//   harness::ScenarioSpec spec;
//   spec.name = "fig5/newreno";
//   spec.bottleneck = harness::QueueSpec::drop_tail(100);
//   spec.add_flow({.variant = app::Variant::kNewReno,
//                  .bytes = 100'000, .tcp = tcfg});
//   harness::Scenario sc{spec};
//   sc.topology().bottleneck().set_loss_model(...);   // optional knobs
//   sc.run();
//   ... sc.instruments(0).meter->throughput_bps(...) ...
//
// Member order in Scenario is its teardown contract: instrumentation
// detaches first, then sources stop, then flows die, then the topology,
// then the simulator.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "app/ftp.hpp"
#include "app/variant.hpp"
#include "harness/instrumentation.hpp"
#include "net/dumbbell.hpp"
#include "net/red.hpp"
#include "sim/simulator.hpp"
#include "tcp/types.hpp"

namespace rrtcp::harness {

// Bottleneck queue selection, as data. The sim-capturing factory function
// in DumbbellConfig cannot live in a value-type spec (it would dangle);
// Scenario translates this into one at build time.
struct QueueSpec {
  enum class Kind { kDropTail, kRed };
  Kind kind = Kind::kDropTail;
  std::uint64_t capacity_packets = 8;  // drop-tail (Table 3 default)
  net::RedConfig red = {};             // used when kind == kRed

  static QueueSpec drop_tail(std::uint64_t capacity) {
    QueueSpec q;
    q.kind = Kind::kDropTail;
    q.capacity_packets = capacity;
    return q;
  }
  static QueueSpec red_queue(net::RedConfig cfg) {
    QueueSpec q;
    q.kind = Kind::kRed;
    q.red = cfg;
    return q;
  }
};

struct FlowSpec {
  app::Variant variant = app::Variant::kRr;
  sim::Time start = sim::Time::zero();
  // Transfer size; nullopt = unbounded FTP.
  std::optional<std::uint64_t> bytes = std::nullopt;
  tcp::TcpConfig tcp = {};
};

struct ScenarioSpec {
  std::string name = "scenario";
  // Topology knobs (bandwidths, delays, side buffers, per-flow RTT
  // overrides). n_flows and make_bottleneck_queue are overwritten by
  // flows.size() and `bottleneck` at build time.
  net::DumbbellConfig topology = {};
  QueueSpec bottleneck = {};
  std::vector<FlowSpec> flows;
  InstrumentationOptions instruments = {};
  // Seeds randomized components (currently the RED drop RNG); pass the
  // sweep's derived per-job seed here.
  std::uint64_t seed = 1;
  sim::Time horizon = sim::Time::seconds(60);

  ScenarioSpec& add_flow(FlowSpec f) {
    flows.push_back(std::move(f));
    return *this;
  }
  // n identical flows whose starts are staggered `stagger` apart.
  ScenarioSpec& add_flows(int n, FlowSpec f,
                          sim::Time stagger = sim::Time::zero()) {
    const sim::Time base = f.start;
    for (int i = 0; i < n; ++i) {
      f.start = base + stagger * i;
      flows.push_back(f);
    }
    return *this;
  }
};

class Scenario {
 public:
  explicit Scenario(ScenarioSpec spec);

  sim::Simulator& sim() { return sim_; }
  net::DumbbellTopology& topology() { return *topo_; }

  int n_flows() const { return static_cast<int>(flows_.size()); }
  app::Flow& flow(int i) { return flows_.at(static_cast<std::size_t>(i)); }
  tcp::TcpSenderBase& sender(int i) { return *flow(i).sender; }
  app::FtpSource& source(int i) {
    return *sources_.at(static_cast<std::size_t>(i));
  }
  FlowInstruments& instruments(int i) {
    return instrumentation_->flow(static_cast<std::size_t>(i));
  }
  Instrumentation& instrumentation() { return *instrumentation_; }

  // The bottleneck RED queue, when the spec asked for one (else nullptr).
  net::RedQueue* red() { return red_; }

  // Runs to the spec's horizon (or an explicit deadline); returns events
  // executed.
  std::uint64_t run() { return sim_.run_until(spec_.horizon); }
  std::uint64_t run_until(sim::Time deadline) {
    return sim_.run_until(deadline);
  }

  const ScenarioSpec& spec() const { return spec_; }

 private:
  ScenarioSpec spec_;
  sim::Simulator sim_;
  std::unique_ptr<net::DumbbellTopology> topo_;
  net::RedQueue* red_ = nullptr;
  std::vector<app::Flow> flows_;
  std::vector<std::unique_ptr<app::FtpSource>> sources_;
  std::unique_ptr<Instrumentation> instrumentation_;
};

}  // namespace rrtcp::harness
