#include "audit/invariant_auditor.hpp"

#include <algorithm>
#include <cstdarg>

#include "net/drop_tail.hpp"
#include "net/red.hpp"
#include "sim/assert.hpp"

namespace rrtcp::audit {

namespace {

struct IdInfo {
  const char* name;
  const char* cite;
};

// Citations are sections of Wang & Shin, "Robust TCP Congestion Recovery",
// ICDCS 2001, unless another source is named.
constexpr IdInfo kIdInfo[] = {
    {"SEQ_ORDER", "§2.1 sequence conventions"},
    {"ACKED_TOTAL", "§2.1 cumulative ACKs"},
    {"WND_FLOOR", "§2.2 ssthresh=win/2 floor; RFC 5681 §3.1"},
    {"WND_GROWTH", "§2.2.2 linear probing"},
    {"TO_COLLAPSE", "§2 coarse timeout -> slow start"},
    {"RR_RECOVER_MONO", "§2.2.2 recover advances to maxseq"},
    {"RR_ACT_BOUND", "§2.2 Table 2: actnum counts packets in flight"},
    {"RR_ACT_LINEAR", "§2.2.2 actnum += 1 per clean RTT"},
    {"RR_RETREAT_HALF", "§2.2.1 one new packet per two dup ACKs"},
    {"RR_PROBE_CLOCK", "§2.2.2 one new packet per dup ACK"},
    {"RR_CWND_FROZEN", "§2.2 cwnd untouched during recovery"},
    {"RR_EXIT_CWND", "§2.2.2 exit: cwnd = actnum x MSS"},
    {"RR_EXIT_BURST", "§2.2.3 no big-ACK burst at exit"},
    {"RR_SSTHRESH_HALVE", "§2.2 entrance: ssthresh = win/2"},
    {"PIPE_ACCOUNT", "§2.1 conservation of packets"},
    {"PIPE_DORMANT", "§2.1 dormant packets parked at the receiver"},
    {"PIPE_CONSERVE", "§2.1 conservation of packets"},
    {"Q_CONSERVE", "Table 3 FIFO gateways: enq - deq = occupancy"},
    {"Q_CAPACITY", "Table 3 buffer sizes in packets"},
    {"RED_AVG_RANGE", "Floyd & Jacobson 1993 §4; Table 4"},
    {"RED_DROP_REGION", "Floyd & Jacobson 1993 §4: drop only if avg >= min_th"},
    {"RTO_ARMED", "§2 coarse timeout as last-resort recovery; RFC 6298 §5"},
    {"RTO_BACKOFF", "Karn & Partridge 1987; RFC 6298 §5.5 exponential backoff"},
};
static_assert(std::size(kIdInfo) == static_cast<std::size_t>(InvariantId::kCount));

// Cap on stored Violation entries in kRecord mode; a broken sender can
// violate on every packet of a long run and we only need enough to assert on.
constexpr std::size_t kMaxRecorded = 256;

}  // namespace

const char* to_string(InvariantId id) {
  return kIdInfo[static_cast<std::size_t>(id)].name;
}

const char* citation(InvariantId id) {
  return kIdInfo[static_cast<std::size_t>(id)].cite;
}

void EventRing::dump(std::FILE* out) const {
  // Entry values by kind — send/rtx: a=seq b=len c=snd_nxt; ack/dup: a=ackno
  // b=snd_una c=cwnd; phase: a=phase; cwnd: a=new bytes b=prev bytes;
  // timeout: a=snd_una; enq/deq/drop: a=pkt seq b=queue len c=uid.
  std::fprintf(out, "  last %zu audit events (oldest first):\n", size());
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) {
    const AuditEvent& e = ring_[(head_ - n + i) % kCapacity];
    std::fprintf(out, "    [%14.9fs] %-12s %-5s a=%llu b=%llu c=%llu\n",
                 e.t.to_seconds(), e.who, e.kind,
                 static_cast<unsigned long long>(e.a),
                 static_cast<unsigned long long>(e.b),
                 static_cast<unsigned long long>(e.c));
  }
}

// ---------------------------------------------------------------------------
// AuditSession

AuditSession::AuditSession(sim::Simulator& sim, FailMode mode)
    : sim_{sim}, mode_{mode} {
  prev_context_arg_ = detail::assert_context_arg;
  prev_context_ = set_assert_context(&AuditSession::dump_thunk, this);
}

AuditSession::~AuditSession() {
  set_assert_context(prev_context_, prev_context_arg_);
  for (auto& a : sender_auditors_) a->detach();
  for (auto& q : queue_auditors_) q->detach();
}

void AuditSession::dump_thunk(void* self, std::FILE* out) {
  static_cast<AuditSession*>(self)->dump(out);
}

void AuditSession::dump(std::FILE* out) const {
  std::fprintf(out, "audit session: t=%.9fs, %llu violation(s)\n",
               sim_.now().to_seconds(),
               static_cast<unsigned long long>(total_violations_));
  ring_.dump(out);
}

void AuditSession::fail(InvariantId id, sim::Time t, const char* fmt, ...) {
  char detail[512];
  std::va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(detail, sizeof detail, fmt, ap);
  va_end(ap);

  ++total_violations_;
  if (mode_ == FailMode::kAbort) {
    char msg[640];
    std::snprintf(msg, sizeof msg, "t=%.9fs: %s [%s]", t.to_seconds(), detail,
                  citation(id));
    RR_AUDIT_FAIL(to_string(id), msg);
  }
  if (violations_.size() < kMaxRecorded)
    violations_.push_back({id, t, detail});
}

std::size_t AuditSession::count(InvariantId id) const {
  return static_cast<std::size_t>(
      std::count_if(violations_.begin(), violations_.end(),
                    [id](const Violation& v) { return v.id == id; }));
}

void AuditSession::attach(tcp::TcpSenderBase& sender,
                          tcp::TcpReceiver* receiver) {
  sender_auditors_.push_back(
      std::make_unique<InvariantAuditor>(*this, sender, receiver));
  sender.add_observer(sender_auditors_.back().get());
  if (receiver != nullptr) {
    receivers_.push_back({receiver, receiver->stats().data_packets});
  } else {
    // Without the peer we cannot see this flow's deliveries, so the
    // aggregate send/deliver/drop balance is no longer computable.
    pipe_enabled_ = false;
  }
}

void AuditSession::attach_queue(net::QueueDisc& queue, const char* name) {
  queue_auditors_.push_back(
      std::make_unique<QueueAuditor>(*this, queue, name));
  queue.set_observer(queue_auditors_.back().get());
}

void AuditSession::attach_topology(net::DumbbellTopology& topo) {
  attach_queue(topo.bottleneck().queue(), "btl");
  attach_queue(topo.reverse_bottleneck().queue(), "rbtl");
  // Artificial (loss-model) drops on the data path also remove data copies
  // from the pipe. The reverse bottleneck carries only ACKs — not tracked.
  loss_links_.push_back(
      {&topo.bottleneck(), topo.bottleneck().loss_model_drops()});
}

void AuditSession::pipe_check(sim::Time t) {
  // Aggregate conservation over the attached flows: every data copy that
  // leaves the network was either delivered or dropped somewhere we watch,
  // so deliveries + watched drops can never exceed transmissions. Drops at
  // unwatched points only make the inequality slacker, never tighter —
  // attaching a subset of queues cannot produce a false positive. Requires
  // every sender in the simulation to be attached with its receiver
  // (AuditSession::attach pairs them; scenario/bench attach all flows).
  if (!pipe_enabled_ || sender_auditors_.empty()) return;
  std::uint64_t sent = 0, delivered = 0, dropped = 0;
  for (const auto& a : sender_auditors_) sent += a->data_sends();
  for (const auto& r : receivers_)
    delivered += r.receiver->stats().data_packets - r.base_data_packets;
  for (const auto& q : queue_auditors_) dropped += q->data_drops();
  for (const auto& l : loss_links_)
    dropped += l.link->loss_model_drops() - l.base_drops;
  if (delivered + dropped > sent) {
    fail(InvariantId::kPipeConserve, t,
         "delivered=%llu + dropped=%llu > sent=%llu",
         static_cast<unsigned long long>(delivered),
         static_cast<unsigned long long>(dropped),
         static_cast<unsigned long long>(sent));
  }
}

// ---------------------------------------------------------------------------
// InvariantAuditor (sender side)

InvariantAuditor::InvariantAuditor(AuditSession& session,
                                   tcp::TcpSenderBase& sender,
                                   tcp::TcpReceiver* receiver)
    : session_{session},
      sender_{sender},
      rr_{dynamic_cast<core::RrSender*>(&sender)},
      receiver_{receiver},
      last_una_{sender.snd_una()},
      last_cwnd_{sender.cwnd_bytes()} {}

void InvariantAuditor::detach() { sender_.remove_observer(this); }

bool InvariantAuditor::in_recovery_phase(tcp::TcpPhase p) const {
  return p == tcp::TcpPhase::kFastRecovery || p == tcp::TcpPhase::kRetreat ||
         p == tcp::TcpPhase::kProbe;
}

void InvariantAuditor::on_send(sim::Time now, std::uint64_t seq,
                               std::uint32_t len, bool rtx) {
  session_.note({now, rtx ? "rtx" : "send", sender_.variant_name(), seq, len,
                 sender_.snd_nxt()});
  ++data_sends_;

  // The base arms the retransmission timer before notifying, so any send
  // observed without a pending timer means the sender disarmed its own
  // escape hatch.
  if (!sender_.rto_pending()) {
    session_.fail(InvariantId::kRtoArmed, now,
                  "send at seq=%llu with no RTO timer pending",
                  static_cast<unsigned long long>(seq));
  }
  // The first send after a timeout is the go-back-N retransmission; by then
  // the back-off count must have grown, or rto() is already pinned at
  // max_rto where backoff() saturates by design. Comparing the count, not
  // rto(), because the min_rto floor can mask an early doubling (250ms
  // doubled to 500ms still clamps to a 1s floor).
  if (backoff_check_pending_) {
    const int after = sender_.rto_estimator().backoff_count();
    if (after <= pre_timeout_backoff_ &&
        sender_.rto_estimator().rto() < sender_.config().max_rto) {
      session_.fail(InvariantId::kRtoBackoff, now,
                    "backoff count %d -> %d across a timeout (RTO %.3fs, "
                    "max %.3fs)",
                    pre_timeout_backoff_, after,
                    sender_.rto_estimator().rto().to_seconds(),
                    sender_.config().max_rto.to_seconds());
    }
    backoff_check_pending_ = false;
  }

  // notify_send fires before snd_nxt advances: a first transmission starts
  // exactly at snd_nxt; a retransmission resends data below max_sent.
  if (!rtx) {
    if (seq != sender_.snd_nxt()) {
      session_.fail(InvariantId::kSeqOrder, now,
                    "new send at seq=%llu but snd_nxt=%llu",
                    static_cast<unsigned long long>(seq),
                    static_cast<unsigned long long>(sender_.snd_nxt()));
    }
  } else if (seq < sender_.snd_una() || seq >= sender_.max_sent()) {
    session_.fail(InvariantId::kSeqOrder, now,
                  "rtx at seq=%llu outside [una=%llu, max_sent=%llu)",
                  static_cast<unsigned long long>(seq),
                  static_cast<unsigned long long>(sender_.snd_una()),
                  static_cast<unsigned long long>(sender_.max_sent()));
  }

  if (rr_ == nullptr || rtx) return;
  if (rr_->in_recovery()) {
    // During recovery, transmission is actnum/self-clock controlled: each
    // ACK event may release at most one new packet (retreat: one per TWO
    // dup ACKs; probe: one per dup ACK or the +1 boundary probe).
    ++new_sends_this_event_;
    if (new_sends_this_event_ > 1) {
      session_.fail(InvariantId::kRrProbeClock, now,
                    "%d new packets released by one ACK during recovery",
                    new_sends_this_event_);
    }
    if (rr_->in_retreat()) {
      ++retreat_new_sends_;
      if (2 * retreat_new_sends_ > rr_->ndup()) {
        session_.fail(InvariantId::kRrRetreatHalf, now,
                      "retreat sent %ld new packets on only %ld dup ACKs",
                      retreat_new_sends_, rr_->ndup());
      }
    }
  } else if (exit_event_) {
    // Sends released by the ACK that exited recovery (after cwnd was handed
    // actnum x MSS): bounded by maxburst, the burst the accurate in-flight
    // count is meant to prevent.
    ++exit_sends_;
  }
}

void InvariantAuditor::on_ack(sim::Time now, std::uint64_t ack, bool dup) {
  session_.note({now, dup ? "dup" : "ack", sender_.variant_name(), ack,
                 sender_.snd_una(), sender_.cwnd_bytes()});
  new_sends_this_event_ = 0;
  exit_sends_ = 0;
  exit_event_ = false;
}

void InvariantAuditor::on_phase(sim::Time now, tcp::TcpPhase phase) {
  session_.note({now, "phase", sender_.variant_name(),
                 static_cast<std::uint64_t>(phase)});

  if (phase == tcp::TcpPhase::kRtoRecovery) {
    // End of the timeout action: cwnd must have collapsed to one segment
    // (and any recovery episode is abandoned without an exit assignment).
    if (sender_.cwnd_bytes() != sender_.config().mss) {
      session_.fail(InvariantId::kTimeoutCollapse, now,
                    "cwnd=%llu after RTO, expected 1 MSS",
                    static_cast<unsigned long long>(sender_.cwnd_bytes()));
    }
    timeout_pending_ = false;
    in_episode_ = false;
    was_in_probe_ = false;
    return;
  }

  if (rr_ == nullptr) return;

  if (phase == tcp::TcpPhase::kRetreat && !in_episode_) {
    // Recovery entrance (paper Fig. 2): by now ssthresh := win/2 must have
    // happened while cwnd stayed untouched, and recover := maxseq.
    in_episode_ = true;
    was_in_probe_ = false;
    seen_exit_cwnd_ = false;
    retreat_new_sends_ = 0;
    last_recover_ = rr_->recover_point();
    const std::uint64_t mss = sender_.config().mss;
    const std::uint64_t win = std::min(
        sender_.cwnd_bytes(), sender_.config().max_window_pkts * mss);
    const std::uint64_t expect = std::max<std::uint64_t>(2 * mss, win / 2);
    if (sender_.ssthresh_bytes() != expect) {
      session_.fail(InvariantId::kRrSsthreshHalve, now,
                    "entry ssthresh=%llu, expected max(2*MSS, win/2)=%llu",
                    static_cast<unsigned long long>(sender_.ssthresh_bytes()),
                    static_cast<unsigned long long>(expect));
    }
    entry_ssthresh_ = expect;
    if (rr_->recover_point() > sender_.max_sent()) {
      session_.fail(InvariantId::kRrRecoverMono, now,
                    "entry recover=%llu beyond maxseq=%llu",
                    static_cast<unsigned long long>(rr_->recover_point()),
                    static_cast<unsigned long long>(sender_.max_sent()));
    }
    return;
  }

  if (phase == tcp::TcpPhase::kProbe && in_episode_) {
    // Retreat -> probe boundary: actnum takes over from the retreat count.
    was_in_probe_ = true;
    last_probe_actnum_ = rr_->actnum();
    return;
  }

  if (in_episode_ && !in_recovery_phase(phase)) {
    // Recovery exit via an ACK past recover: the cwnd := actnum x MSS
    // assignment must have been observed on the way out.
    if (!seen_exit_cwnd_) {
      session_.fail(InvariantId::kRrExitCwnd, now,
                    "left recovery (phase=%s) without cwnd := actnum x MSS",
                    tcp::to_string(phase));
    }
    in_episode_ = false;
    was_in_probe_ = false;
  }
}

void InvariantAuditor::on_timeout(sim::Time now) {
  session_.note({now, "timeout", sender_.variant_name(), sender_.snd_una()});
  timeout_pending_ = true;
  pre_timeout_backoff_ = sender_.rto_estimator().backoff_count();
  backoff_check_pending_ = true;
}

void InvariantAuditor::on_cwnd(sim::Time now, double /*cwnd_packets*/) {
  const std::uint64_t cwnd = sender_.cwnd_bytes();
  const std::uint64_t mss = sender_.config().mss;
  session_.note({now, "cwnd", sender_.variant_name(), cwnd, last_cwnd_});
  const std::uint64_t prev = last_cwnd_;
  last_cwnd_ = cwnd;

  if (cwnd < mss) {
    session_.fail(InvariantId::kWndFloor, now, "cwnd=%llu < MSS",
                  static_cast<unsigned long long>(cwnd));
  }

  if (timeout_pending_) {
    // The first cwnd write after on_timeout is the collapse to one segment.
    // Resolve the pending timeout here, not at on_phase: a repeated RTO
    // while already in kRtoRecovery never produces a phase notification.
    if (cwnd != mss) {
      session_.fail(InvariantId::kTimeoutCollapse, now,
                    "RTO set cwnd=%llu, expected exactly 1 MSS",
                    static_cast<unsigned long long>(cwnd));
    }
    timeout_pending_ = false;
    in_episode_ = false;
    was_in_probe_ = false;
    return;
  }

  if (rr_ == nullptr) return;

  if (in_episode_ && rr_->in_recovery()) {
    // The only legitimate cwnd write inside an episode is the exit
    // assignment (exit_recovery sets cwnd while the RR state machine still
    // reads retreat/probe): exactly max(1, measured in-flight) x MSS.
    const long flight = std::max<long>(
        1, rr_->in_retreat() ? rr_->sent_in_retreat() : rr_->actnum());
    const std::uint64_t expect = static_cast<std::uint64_t>(flight) * mss;
    if (cwnd == expect) {
      seen_exit_cwnd_ = true;
      exit_event_ = true;
      exit_cwnd_pkts_ = flight;
    } else {
      session_.fail(InvariantId::kRrCwndFrozen, now,
                    "cwnd %llu -> %llu inside recovery (exit would be %llu)",
                    static_cast<unsigned long long>(prev),
                    static_cast<unsigned long long>(cwnd),
                    static_cast<unsigned long long>(expect));
    }
    return;
  }

  // Outside recovery RR grows like vanilla TCP: at most one MSS per event
  // (slow start +MSS, congestion avoidance less, ECN reduce never gains
  // more than the 2-MSS ssthresh floor allows). A jump bigger than that is
  // a window the algorithm never earned — e.g. restoring a stale pre-loss
  // cwnd after exit.
  if (cwnd > prev + mss) {
    session_.fail(InvariantId::kWndGrowth, now,
                  "cwnd %llu -> %llu (+%llu) in one event, limit +%llu",
                  static_cast<unsigned long long>(prev),
                  static_cast<unsigned long long>(cwnd),
                  static_cast<unsigned long long>(cwnd - prev),
                  static_cast<unsigned long long>(mss));
  }
}

void InvariantAuditor::on_ack_processed(sim::Time now, std::uint64_t ack,
                                        bool dup) {
  (void)ack;
  (void)dup;
  check_state(now);
  session_.pipe_check(now);

  // The exit ACK may release at most the measured in-flight count the exit
  // assignment put into cwnd (when that ACK also emptied the pipe), and
  // never the stale pre-loss window. maxburst is the floor so tiny actnum
  // exits are not over-constrained relative to the baselines' limit.
  if (rr_ != nullptr && exit_event_) {
    const long limit =
        std::max<long>(sender_.config().maxburst, exit_cwnd_pkts_);
    if (exit_sends_ > limit) {
      session_.fail(InvariantId::kRrExitBurst, now,
                    "exit ACK released %d new packets (limit %ld)",
                    exit_sends_, limit);
    }
  }
  exit_event_ = false;
}

void InvariantAuditor::check_state(sim::Time now) {
  const std::uint64_t una = sender_.snd_una();
  const std::uint64_t nxt = sender_.snd_nxt();
  const std::uint64_t maxs = sender_.max_sent();
  const std::uint64_t mss = sender_.config().mss;

  if (una < last_una_ || una > nxt || nxt > maxs) {
    session_.fail(InvariantId::kSeqOrder, now,
                  "una=%llu (prev %llu) nxt=%llu max_sent=%llu",
                  static_cast<unsigned long long>(una),
                  static_cast<unsigned long long>(last_una_),
                  static_cast<unsigned long long>(nxt),
                  static_cast<unsigned long long>(maxs));
  }
  last_una_ = una;

  // Liveness: with data outstanding the retransmission timer is the only
  // guaranteed way out of total ACK loss, so it must be pending after every
  // processed ACK. A sender that disarms it can die silently.
  if (una < maxs && !sender_.rto_pending()) {
    session_.fail(InvariantId::kRtoArmed, now,
                  "una=%llu < max_sent=%llu but no RTO timer pending",
                  static_cast<unsigned long long>(una),
                  static_cast<unsigned long long>(maxs));
  }

  if (sender_.stats().bytes_acked != una) {
    session_.fail(InvariantId::kAckedTotal, now,
                  "bytes_acked=%llu != snd_una=%llu",
                  static_cast<unsigned long long>(sender_.stats().bytes_acked),
                  static_cast<unsigned long long>(una));
  }

  if (sender_.cwnd_bytes() < mss || sender_.ssthresh_bytes() < 2 * mss) {
    session_.fail(InvariantId::kWndFloor, now, "cwnd=%llu ssthresh=%llu",
                  static_cast<unsigned long long>(sender_.cwnd_bytes()),
                  static_cast<unsigned long long>(sender_.ssthresh_bytes()));
  }

  if (receiver_ != nullptr) {
    // The receiver's cumulative point can only be AHEAD of what the sender
    // has learned (ACKs in flight), and dormant data is sent-but-undelivered
    // by definition.
    const std::uint64_t rcv = receiver_->rcv_nxt();
    if (una > rcv) {
      session_.fail(InvariantId::kPipeAccount, now,
                    "snd_una=%llu ahead of rcv_nxt=%llu",
                    static_cast<unsigned long long>(una),
                    static_cast<unsigned long long>(rcv));
    }
    const std::uint64_t dormant = receiver_->buffered_out_of_order();
    if (rcv > maxs || dormant > maxs - std::min(rcv, maxs)) {
      session_.fail(InvariantId::kPipeDormant, now,
                    "dormant=%llu rcv_nxt=%llu max_sent=%llu",
                    static_cast<unsigned long long>(dormant),
                    static_cast<unsigned long long>(rcv),
                    static_cast<unsigned long long>(maxs));
    }
  }

  if (rr_ == nullptr) return;

  if (!in_episode_ || !rr_->in_recovery()) return;

  const long actnum = rr_->actnum();
  const long ndup = rr_->ndup();
  const std::uint64_t recover = rr_->recover_point();

  if (recover < last_recover_ || recover > maxs) {
    session_.fail(InvariantId::kRrRecoverMono, now,
                  "recover=%llu (prev %llu, maxseq %llu)",
                  static_cast<unsigned long long>(recover),
                  static_cast<unsigned long long>(last_recover_),
                  static_cast<unsigned long long>(maxs));
  }
  last_recover_ = recover;

  if (sender_.ssthresh_bytes() != entry_ssthresh_) {
    session_.fail(InvariantId::kRrSsthreshHalve, now,
                  "ssthresh %llu != entry value %llu inside recovery",
                  static_cast<unsigned long long>(sender_.ssthresh_bytes()),
                  static_cast<unsigned long long>(entry_ssthresh_));
  }

  // actnum counts packets actually in flight: never negative, never more
  // than the (frozen) window it replaced allows.
  const long cwnd_pkts = static_cast<long>(sender_.cwnd_bytes() / mss);
  if (actnum < 0 || ndup < 0 || actnum > cwnd_pkts) {
    session_.fail(InvariantId::kRrActBound, now,
                  "actnum=%ld ndup=%ld cwnd=%ld pkts", actnum, ndup,
                  cwnd_pkts);
  }

  if (rr_->in_probe()) {
    if (was_in_probe_ && actnum > last_probe_actnum_ + 1) {
      session_.fail(InvariantId::kRrActLinear, now,
                    "actnum %ld -> %ld in one event (linear growth is +1)",
                    last_probe_actnum_, actnum);
    }
    was_in_probe_ = true;
    last_probe_actnum_ = actnum;
  }
}

// ---------------------------------------------------------------------------
// QueueAuditor (network side)

QueueAuditor::QueueAuditor(AuditSession& session, net::QueueDisc& queue,
                           const char* name)
    : session_{session},
      queue_{queue},
      name_{name},
      red_{dynamic_cast<const net::RedQueue*>(&queue)},
      base_enq_{queue.stats().enqueued},
      base_deq_{queue.stats().dequeued},
      base_drop_{queue.stats().dropped},
      base_len_{queue.len_packets()} {
  if (red_ != nullptr) {
    capacity_packets_ = red_->config().buffer_packets;
  } else if (const auto* dt =
                 dynamic_cast<const net::DropTailQueue*>(&queue)) {
    if (dt->mode() == net::DropTailQueue::Mode::kPackets)
      capacity_packets_ = dt->capacity();
    else
      capacity_bytes_ = dt->capacity();
  }
}

void QueueAuditor::detach() { queue_.set_observer(nullptr); }

void QueueAuditor::on_enqueue(const net::Packet& p, const net::QueueDisc& q) {
  const sim::Time now = session_.simulator().now();
  session_.note({now, "enq", name_, p.tcp.seq, q.len_packets(), p.uid});
  ++seen_enq_;
  check_accounting(q);
  check_red(now);
}

void QueueAuditor::on_dequeue(const net::Packet& p, const net::QueueDisc& q) {
  const sim::Time now = session_.simulator().now();
  session_.note({now, "deq", name_, p.tcp.seq, q.len_packets(), p.uid});
  ++seen_deq_;
  check_accounting(q);
}

void QueueAuditor::on_drop(const net::Packet& p, net::DropReason why,
                           const net::QueueDisc& q) {
  const sim::Time now = session_.simulator().now();
  session_.note({now, why == net::DropReason::kEarly ? "edrop" : "drop", name_,
                 p.tcp.seq, q.len_packets(), p.uid});
  ++seen_drop_;
  if (p.is_data()) ++data_drops_;
  check_accounting(q);
  check_red(now);
  if (red_ != nullptr && why == net::DropReason::kEarly &&
      red_->avg_queue() < red_->config().min_th) {
    session_.fail(InvariantId::kRedDropRegion, now,
                  "%s: early drop with avg=%.3f < min_th=%.3f", name_,
                  red_->avg_queue(), red_->config().min_th);
  }
  session_.pipe_check(now);
}

void QueueAuditor::check_accounting(const net::QueueDisc& q) {
  const sim::Time now = session_.simulator().now();
  const auto& s = q.stats();
  const bool counters_ok = s.enqueued - base_enq_ == seen_enq_ &&
                           s.dequeued - base_deq_ == seen_deq_ &&
                           s.dropped - base_drop_ == seen_drop_;
  const bool occupancy_ok =
      q.len_packets() == base_len_ + seen_enq_ - seen_deq_;
  if (!counters_ok || !occupancy_ok) {
    session_.fail(
        InvariantId::kQueueConserve, now,
        "%s: stats enq=%llu deq=%llu drop=%llu len=%zu vs observed "
        "enq=%llu deq=%llu drop=%llu len0=%zu",
        name_, static_cast<unsigned long long>(s.enqueued - base_enq_),
        static_cast<unsigned long long>(s.dequeued - base_deq_),
        static_cast<unsigned long long>(s.dropped - base_drop_),
        q.len_packets(), static_cast<unsigned long long>(seen_enq_),
        static_cast<unsigned long long>(seen_deq_),
        static_cast<unsigned long long>(seen_drop_), base_len_);
  }
  if ((capacity_packets_ > 0 && q.len_packets() > capacity_packets_) ||
      (capacity_bytes_ > 0 && q.len_bytes() > capacity_bytes_)) {
    session_.fail(InvariantId::kQueueCapacity, now,
                  "%s: occupancy %zu pkts / %llu B over capacity %llu/%llu",
                  name_, q.len_packets(),
                  static_cast<unsigned long long>(q.len_bytes()),
                  static_cast<unsigned long long>(capacity_packets_),
                  static_cast<unsigned long long>(capacity_bytes_));
  }
}

void QueueAuditor::check_red(sim::Time now) {
  if (red_ == nullptr) return;
  const double avg = red_->avg_queue();
  if (avg < 0.0 ||
      avg > static_cast<double>(red_->config().buffer_packets)) {
    session_.fail(InvariantId::kRedAvgRange, now,
                  "%s: avg=%.3f outside [0, %llu]", name_, avg,
                  static_cast<unsigned long long>(
                      red_->config().buffer_packets));
  }
}

}  // namespace rrtcp::audit
