// Protocol-invariant audit layer.
//
// The paper's central claims are conservation arguments: `actnum` tracks the
// data actually in flight while `cwnd` over-counts dormant and dropped
// packets; `ndup` vs `actnum` detects further loss without a timeout; and
// `cwnd := actnum × MSS` at exit prevents the big-ACK burst. Nothing in a
// simulation *output* reveals a silent accounting bug in any of these — so
// this layer checks them while the simulation runs.
//
// An AuditSession attaches lightweight observers to senders
// (tcp::SenderObserver) and queue disciplines (net::QueueObserver). Every
// send/ACK/drop/timer event is recorded in a ring buffer and followed by
// machine-checkable invariants, each with a stable ID and a paper citation
// (see DESIGN.md §9 for the full table). A violation either aborts loudly —
// printing the sim-time and the recent-event ring via the context hook in
// sim/assert.hpp — or is recorded for tests to inspect (FailMode::kRecord,
// which the mutation self-checks in tests/audit use).
//
// The observers are attach-only: no core protocol code depends on this
// library, and an unattached sender/queue pays one branch-on-null per event.
// Benches and the integration scenario runner attach sessions through
// audit::ScopedAudit (audit/audit.hpp), which compiles to a no-op unless the
// build sets RRTCP_AUDIT=ON.
#pragma once

#include <array>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "sim/assert.hpp"

#include "core/rr_sender.hpp"
#include "net/dumbbell.hpp"
#include "net/queue_disc.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "tcp/receiver.hpp"
#include "tcp/sender_base.hpp"
#include "tcp/types.hpp"

namespace rrtcp::net {
class RedQueue;  // net/red.hpp — only referenced, included by the .cpp
}

namespace rrtcp::audit {

// Stable identifiers for every checked invariant. to_string() gives the ID
// used in failure output; citation() names the paper section (Wang & Shin,
// ICDCS 2001 unless stated otherwise) the invariant encodes.
enum class InvariantId : std::uint8_t {
  // Generic sender invariants (all variants).
  kSeqOrder,         // snd_una <= snd_nxt <= max_sent, snd_una monotone
  kAckedTotal,       // stats.bytes_acked == snd_una
  kWndFloor,         // cwnd >= MSS, ssthresh >= 2*MSS
  kWndGrowth,        // per-event cwnd increase bounded (MSS for RR)
  kTimeoutCollapse,  // RTO collapses cwnd to exactly 1 MSS
  // Robust-Recovery invariants (RrSender only).
  kRrRecoverMono,    // recover non-decreasing within an episode, <= maxseq
  kRrActBound,       // 0 <= actnum <= cwnd/MSS and ndup >= 0
  kRrActLinear,      // actnum grows by at most +1 across probe boundaries
  kRrRetreatHalf,    // retreat sends <= ndup/2 new packets (half rate)
  kRrProbeClock,     // at most one new packet per ACK event in recovery
  kRrCwndFrozen,     // cwnd untouched between entry and exit
  kRrExitCwnd,       // exit hands cwnd exactly actnum * MSS
  kRrExitBurst,      // the exit ACK releases at most maxburst new packets
  kRrSsthreshHalve,  // entry sets ssthresh = max(2*MSS, win/2), then frozen
  // Cross-layer pipe accounting (needs the receiver / topology attached).
  kPipeAccount,      // snd_una <= rcv_nxt (sender never outruns delivery)
  kPipeDormant,      // dormant bytes <= max_sent - rcv_nxt
  kPipeConserve,     // data copies in flight = sent - delivered - dropped >= 0
  // Queue-discipline invariants.
  kQueueConserve,    // stats match observed events; len = enq - deq
  kQueueCapacity,    // occupancy never exceeds the configured buffer
  kRedAvgRange,      // RED avg in [0, buffer_packets]
  kRedDropRegion,    // RED early drops/marks only when avg >= min_th
  // Liveness invariants (chaos engine): the coarse timeout is the paper's
  // last-resort recovery, so the escape hatch must stay armed and back off.
  kRtoArmed,         // data outstanding => retransmission timer pending
  kRtoBackoff,       // RTO grows across a timeout (unless pinned at max_rto)
  kCount,
};

const char* to_string(InvariantId id);
const char* citation(InvariantId id);

// One entry of the recent-event ring: what happened, where, and up to three
// event-specific values (documented per kind in the .cpp dump routine).
struct AuditEvent {
  sim::Time t;
  const char* kind = "";  // "send" "rtx" "ack" "dup" "done" "phase" ...
  const char* who = "";   // sender variant name or queue label
  std::uint64_t a = 0, b = 0, c = 0;
};

// Fixed-size ring of recent events; dump() prints oldest-first.
class EventRing {
 public:
  static constexpr std::size_t kCapacity = 64;

  void push(const AuditEvent& e) {
    ring_[head_ % kCapacity] = e;
    ++head_;
  }
  std::size_t size() const { return head_ < kCapacity ? head_ : kCapacity; }
  void dump(std::FILE* out) const;

 private:
  std::array<AuditEvent, kCapacity> ring_{};
  std::size_t head_ = 0;
};

struct Violation {
  InvariantId id;
  sim::Time t;
  std::string detail;
};

class AuditSession;

// Sender-side invariant checks; one per attached sender. Pure observer —
// reads only the sender's public introspection surface.
class InvariantAuditor final : public tcp::SenderObserver {
 public:
  InvariantAuditor(AuditSession& session, tcp::TcpSenderBase& sender,
                   tcp::TcpReceiver* receiver);

  void on_send(sim::Time now, std::uint64_t seq, std::uint32_t len,
               bool rtx) override;
  void on_ack(sim::Time now, std::uint64_t ack, bool dup) override;
  void on_ack_processed(sim::Time now, std::uint64_t ack, bool dup) override;
  void on_phase(sim::Time now, tcp::TcpPhase phase) override;
  void on_timeout(sim::Time now) override;
  void on_cwnd(sim::Time now, double cwnd_packets) override;

  std::uint64_t data_sends() const { return data_sends_; }
  // Unregisters this observer from the sender (session teardown).
  void detach();

 private:
  bool in_recovery_phase(tcp::TcpPhase p) const;
  void check_state(sim::Time now);

  AuditSession& session_;
  tcp::TcpSenderBase& sender_;
  core::RrSender* rr_;  // non-null when the sender is the paper's RR
  tcp::TcpReceiver* receiver_;

  // Baselines / previous-event state.
  std::uint64_t last_una_;
  std::uint64_t last_cwnd_;
  long last_probe_actnum_ = 0;
  bool was_in_probe_ = false;
  std::uint64_t last_recover_ = 0;
  std::uint64_t entry_ssthresh_ = 0;  // expected (and frozen) episode value
  bool in_episode_ = false;
  bool seen_exit_cwnd_ = false;   // exit assignment observed this episode
  bool timeout_pending_ = false;  // between on_timeout and kRtoRecovery
  bool backoff_check_pending_ = false;  // between on_timeout and next send
  int pre_timeout_backoff_ = 0;
  bool exit_event_ = false;       // current ACK event exited recovery
  long exit_cwnd_pkts_ = 0;       // packets handed to cwnd at exit
  int new_sends_this_event_ = 0;
  int exit_sends_ = 0;
  long retreat_new_sends_ = 0;
  std::uint64_t data_sends_ = 0;  // all data transmissions (pipe accounting)
};

// Queue-side invariant checks; one per attached queue. Cross-checks the
// queue's own stats against the observed event stream and pins the RED
// average-queue range.
class QueueAuditor final : public net::QueueObserver {
 public:
  QueueAuditor(AuditSession& session, net::QueueDisc& queue, const char* name);

  void on_enqueue(const net::Packet& p, const net::QueueDisc& q) override;
  void on_dequeue(const net::Packet& p, const net::QueueDisc& q) override;
  void on_drop(const net::Packet& p, net::DropReason why,
               const net::QueueDisc& q) override;

  std::uint64_t data_drops() const { return data_drops_; }
  // Clears the queue's observer slot (session teardown).
  void detach();

 private:
  void check_accounting(const net::QueueDisc& q);
  void check_red(sim::Time now);

  AuditSession& session_;
  net::QueueDisc& queue_;
  const char* name_;
  const net::RedQueue* red_;             // non-null for RED queues
  std::uint64_t capacity_packets_ = 0;   // 0 = not packet-limited
  std::uint64_t capacity_bytes_ = 0;     // 0 = not byte-limited
  // Baselines at attach time, so late attachment stays exact.
  std::uint64_t base_enq_, base_deq_, base_drop_;
  std::size_t base_len_;
  std::uint64_t seen_enq_ = 0, seen_deq_ = 0, seen_drop_ = 0;
  std::uint64_t data_drops_ = 0;
};

// A session groups the auditors of one simulation: shared event ring,
// violation sink, fail mode, and the cross-flow pipe-conservation counters.
// While alive it registers itself as the thread's assert-context provider,
// so ANY failing RRTCP_ASSERT in an audited run also dumps the ring.
class AuditSession {
 public:
  enum class FailMode {
    kAbort,   // print sim-time + ring buffer, then abort (benches, CI)
    kRecord,  // collect violations for inspection (mutation self-checks)
  };

  explicit AuditSession(sim::Simulator& sim, FailMode mode = FailMode::kAbort);
  ~AuditSession();
  AuditSession(const AuditSession&) = delete;
  AuditSession& operator=(const AuditSession&) = delete;

  // Attach invariant checking to a sender (and, when available, the peer
  // receiver — enabling the cross-layer pipe checks for that flow).
  void attach(tcp::TcpSenderBase& sender, tcp::TcpReceiver* receiver = nullptr);
  // Attach accounting checks to a queue. `name` labels ring entries and must
  // outlive the session (string literals).
  void attach_queue(net::QueueDisc& queue, const char* name);
  // Convenience: audit both bottleneck queues of a dumbbell and register the
  // forward bottleneck's loss-model drops for pipe conservation.
  void attach_topology(net::DumbbellTopology& topo);

  // Results.
  bool clean() const { return violations_.empty(); }
  const std::vector<Violation>& violations() const { return violations_; }
  std::size_t count(InvariantId id) const;
  // Total violations (recorded entries are capped; this never saturates).
  std::uint64_t total_violations() const { return total_violations_; }
  void dump(std::FILE* out) const;

  sim::Simulator& simulator() { return sim_; }

 private:
  friend class InvariantAuditor;
  friend class QueueAuditor;

  void note(const AuditEvent& e) { ring_.push(e); }
  [[gnu::format(printf, 4, 5)]] void fail(InvariantId id, sim::Time t,
                                          const char* fmt, ...);
  // Cross-flow conservation: data copies in the network can never go
  // negative. Called from per-flow and per-queue event handlers.
  void pipe_check(sim::Time t);

  static void dump_thunk(void* self, std::FILE* out);

  // Per-receiver / per-link baselines so counts start at the attach point.
  struct ReceiverRef {
    const tcp::TcpReceiver* receiver;
    std::uint64_t base_data_packets;
  };
  struct LossLinkRef {
    const net::Link* link;
    std::uint64_t base_drops;
  };

  sim::Simulator& sim_;
  FailMode mode_;
  EventRing ring_;
  std::vector<Violation> violations_;
  std::uint64_t total_violations_ = 0;
  AssertContextFn prev_context_;
  void* prev_context_arg_ = nullptr;

  std::vector<std::unique_ptr<InvariantAuditor>> sender_auditors_;
  std::vector<std::unique_ptr<QueueAuditor>> queue_auditors_;
  std::vector<ReceiverRef> receivers_;
  std::vector<LossLinkRef> loss_links_;  // loss-model drops on data path
  bool pipe_enabled_ = true;  // false once a sender attaches w/o receiver
};

}  // namespace rrtcp::audit
