// Build-gated convenience wrapper around AuditSession.
//
// Benches and the integration scenario runner audit through ScopedAudit so
// that a default build pays nothing: unless the build defines
// RRTCP_AUDIT_ENABLED (CMake option RRTCP_AUDIT=ON), ScopedAudit is an empty
// struct whose methods compile to nothing, no audit object is constructed,
// and the only residual cost is the senders'/queues' branch-on-null observer
// dispatch. With the option ON, every attach becomes a real AuditSession in
// abort mode: the first violated invariant kills the run with the event ring.
//
// Tests that assert on violations use AuditSession (FailMode::kRecord)
// directly — the audit library itself is always compiled, only this attach
// layer is gated.
#pragma once

#ifdef RRTCP_AUDIT_ENABLED

#include "audit/invariant_auditor.hpp"

namespace rrtcp::audit {

class ScopedAudit {
 public:
  explicit ScopedAudit(sim::Simulator& sim)
      : session_{sim, AuditSession::FailMode::kAbort} {}

  void attach(tcp::TcpSenderBase& sender,
              tcp::TcpReceiver* receiver = nullptr) {
    session_.attach(sender, receiver);
  }
  void attach_queue(net::QueueDisc& queue, const char* name) {
    session_.attach_queue(queue, name);
  }
  void attach_topology(net::DumbbellTopology& topo) {
    session_.attach_topology(topo);
  }

  static constexpr bool enabled() { return true; }
  AuditSession& session() { return session_; }

 private:
  AuditSession session_;
};

}  // namespace rrtcp::audit

#else  // !RRTCP_AUDIT_ENABLED

namespace rrtcp::audit {

// No-op stand-in: templates keep the call sites compiling without pulling in
// (or even declaring) the audited types, so the default build stays free of
// any audit dependency.
class ScopedAudit {
 public:
  template <typename Sim>
  explicit ScopedAudit(Sim&) {}

  template <typename Sender>
  void attach(Sender&, void* receiver = nullptr) {
    (void)receiver;
  }
  template <typename Queue>
  void attach_queue(Queue&, const char*) {}
  template <typename Topo>
  void attach_topology(Topo&) {}

  static constexpr bool enabled() { return false; }
};

}  // namespace rrtcp::audit

#endif  // RRTCP_AUDIT_ENABLED
