// FTP traffic source.
//
// The paper's workload: bulk transfer over TCP, either a finite file
// (e.g. the 100 KB targeted transfer of Table 5) or an infinite backlog
// (the background flows). The source simply arms the sender's application
// buffer and schedules its start time; staggered starts are a one-liner.
#pragma once

#include <optional>

#include "sim/simulator.hpp"
#include "tcp/sender_base.hpp"

namespace rrtcp::app {

class FtpSource {
 public:
  // Transfer `bytes` (nullopt = unbounded) starting at absolute `start`.
  FtpSource(sim::Simulator& sim, tcp::TcpSenderBase& sender, sim::Time start,
            std::optional<std::uint64_t> bytes);

  sim::Time start_time() const { return start_; }

 private:
  sim::Time start_;
};

}  // namespace rrtcp::app
