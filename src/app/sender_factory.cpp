#include "app/sender_factory.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <new>
#include <stdexcept>
#include <string>
#include <type_traits>

#include "core/rr_sender.hpp"
#include "tcp/newreno.hpp"
#include "tcp/related_work.hpp"
#include "tcp/reno.hpp"
#include "tcp/sack.hpp"
#include "tcp/tahoe.hpp"

namespace rrtcp::app {

namespace {

template <typename Sender>
std::unique_ptr<tcp::TcpSenderBase> make_sender(env::Environment& env,
                                                net::FlowId flow,
                                                const tcp::TcpConfig& cfg) {
  return std::make_unique<Sender>(env, flow, cfg);
}

template <typename Sender>
tcp::TcpSenderBase* place_sender(void* mem, env::Environment& env,
                                 net::FlowId flow, const tcp::TcpConfig& cfg) {
  return ::new (mem) Sender(env, flow, cfg);
}

}  // namespace

SenderFactory::SenderFactory() {
  auto set = [this]<typename Sender>(Variant v, const char* name,
                                     std::type_identity<Sender>,
                                     bool sack_receiver) {
    entries_[static_cast<std::size_t>(v)] =
        Entry{name,           &make_sender<Sender>, sack_receiver,
              sizeof(Sender), alignof(Sender),      &place_sender<Sender>};
  };
  set(Variant::kTahoe, "tahoe", std::type_identity<tcp::TahoeSender>{}, false);
  set(Variant::kReno, "reno", std::type_identity<tcp::RenoSender>{}, false);
  set(Variant::kNewReno, "newreno", std::type_identity<tcp::NewRenoSender>{},
      false);
  set(Variant::kSack, "sack", std::type_identity<tcp::SackSender>{}, true);
  set(Variant::kRr, "rr", std::type_identity<core::RrSender>{}, false);
  set(Variant::kRightEdge, "rightedge",
      std::type_identity<tcp::RightEdgeSender>{}, false);
  set(Variant::kLinKung, "linkung", std::type_identity<tcp::LinKungSender>{},
      false);
}

const SenderFactory& SenderFactory::instance() {
  static const SenderFactory registry;
  return registry;
}

const SenderFactory::Entry& SenderFactory::at(Variant v) const {
  const auto i = static_cast<std::size_t>(v);
  if (i >= kVariantCount || entries_[i].make == nullptr)
    throw std::invalid_argument("variant not registered");
  return entries_[i];
}

std::unique_ptr<tcp::TcpSenderBase> SenderFactory::make(
    Variant v, env::Environment& env, net::FlowId flow,
    const tcp::TcpConfig& cfg) const {
  return at(v).make(env, flow, cfg);
}

void SenderFactory::print_registry(std::FILE* out) const {
  // Listed alphabetically, not in enum order: the output is part of the
  // CLIs' --list-variants surface (scripts grep it, docs quote it), so it
  // must not reshuffle when a variant is added mid-enum.
  std::array<std::size_t, kVariantCount> order{};
  std::size_t n = 0;
  for (std::size_t i = 0; i < kVariantCount; ++i)
    if (entries_[i].name != nullptr) order[n++] = i;
  std::sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(n),
            [this](std::size_t a, std::size_t b) {
              return std::strcmp(entries_[a].name, entries_[b].name) < 0;
            });
  std::fprintf(out, "registered TCP sender variants:\n");
  for (std::size_t k = 0; k < n; ++k) {
    const Entry& e = entries_[order[k]];
    std::fprintf(out, "  %-10s (%s receiver)\n", e.name,
                 e.sack_receiver ? "SACK" : "cumulative-ACK");
  }
}

Variant SenderFactory::parse(std::string_view name) const {
  for (std::size_t i = 0; i < kVariantCount; ++i) {
    if (entries_[i].name != nullptr && name == entries_[i].name)
      return static_cast<Variant>(i);
  }
  throw std::invalid_argument("unknown TCP variant: " + std::string(name));
}

const char* to_string(Variant v) { return SenderFactory::instance().name_of(v); }

Variant variant_from_string(std::string_view name) {
  return SenderFactory::instance().parse(name);
}

}  // namespace rrtcp::app
