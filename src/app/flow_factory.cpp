#include "app/flow_factory.hpp"

#include "app/sender_factory.hpp"

namespace rrtcp::app {

Flow make_flow(Variant v, sim::Simulator& sim, net::Node& snd_node,
               net::Node& rcv_node, net::FlowId flow, tcp::TcpConfig cfg) {
  const SenderFactory& registry = SenderFactory::instance();
  Flow f;
  f.sender = registry.make(v, sim, snd_node, flow, rcv_node.id(), cfg);
  tcp::ReceiverConfig rcfg;
  rcfg.ack_bytes = cfg.ack_bytes;
  rcfg.sack_enabled = registry.at(v).sack_receiver;
  rcfg.ecn_enabled = cfg.ecn_enabled;
  f.receiver = std::make_unique<tcp::TcpReceiver>(sim, rcv_node, flow,
                                                  snd_node.id(), rcfg);
  return f;
}

}  // namespace rrtcp::app
