#include "app/flow_factory.hpp"

#include <stdexcept>
#include <string>

#include "core/rr_sender.hpp"
#include "tcp/newreno.hpp"
#include "tcp/related_work.hpp"
#include "tcp/reno.hpp"
#include "tcp/sack.hpp"
#include "tcp/tahoe.hpp"

namespace rrtcp::app {

const char* to_string(Variant v) {
  switch (v) {
    case Variant::kTahoe:
      return "tahoe";
    case Variant::kReno:
      return "reno";
    case Variant::kNewReno:
      return "newreno";
    case Variant::kSack:
      return "sack";
    case Variant::kRr:
      return "rr";
    case Variant::kRightEdge:
      return "rightedge";
    case Variant::kLinKung:
      return "linkung";
  }
  return "?";
}

Variant variant_from_string(std::string_view name) {
  if (name == "tahoe") return Variant::kTahoe;
  if (name == "reno") return Variant::kReno;
  if (name == "newreno") return Variant::kNewReno;
  if (name == "sack") return Variant::kSack;
  if (name == "rr") return Variant::kRr;
  if (name == "rightedge") return Variant::kRightEdge;
  if (name == "linkung") return Variant::kLinKung;
  throw std::invalid_argument("unknown TCP variant: " + std::string(name));
}

Flow make_flow(Variant v, sim::Simulator& sim, net::Node& snd_node,
               net::Node& rcv_node, net::FlowId flow, tcp::TcpConfig cfg) {
  Flow f;
  switch (v) {
    case Variant::kTahoe:
      f.sender = std::make_unique<tcp::TahoeSender>(sim, snd_node, flow,
                                                    rcv_node.id(), cfg);
      break;
    case Variant::kReno:
      f.sender = std::make_unique<tcp::RenoSender>(sim, snd_node, flow,
                                                   rcv_node.id(), cfg);
      break;
    case Variant::kNewReno:
      f.sender = std::make_unique<tcp::NewRenoSender>(sim, snd_node, flow,
                                                      rcv_node.id(), cfg);
      break;
    case Variant::kSack:
      f.sender = std::make_unique<tcp::SackSender>(sim, snd_node, flow,
                                                   rcv_node.id(), cfg);
      break;
    case Variant::kRr:
      f.sender = std::make_unique<core::RrSender>(sim, snd_node, flow,
                                                  rcv_node.id(), cfg);
      break;
    case Variant::kRightEdge:
      f.sender = std::make_unique<tcp::RightEdgeSender>(sim, snd_node, flow,
                                                        rcv_node.id(), cfg);
      break;
    case Variant::kLinKung:
      f.sender = std::make_unique<tcp::LinKungSender>(sim, snd_node, flow,
                                                      rcv_node.id(), cfg);
      break;
  }
  tcp::ReceiverConfig rcfg;
  rcfg.ack_bytes = cfg.ack_bytes;
  rcfg.sack_enabled = (v == Variant::kSack);
  rcfg.ecn_enabled = cfg.ecn_enabled;
  f.receiver = std::make_unique<tcp::TcpReceiver>(sim, rcv_node, flow,
                                                  snd_node.id(), rcfg);
  return f;
}

}  // namespace rrtcp::app
