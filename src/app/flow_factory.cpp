#include "app/flow_factory.hpp"

#include "app/sender_factory.hpp"
#include "env/sim_env.hpp"

namespace rrtcp::app {

tcp::ReceiverConfig receiver_config_for(Variant v, const tcp::TcpConfig& cfg) {
  tcp::ReceiverConfig rcfg;
  rcfg.ack_bytes = cfg.ack_bytes;
  rcfg.sack_enabled = SenderFactory::instance().at(v).sack_receiver;
  rcfg.ecn_enabled = cfg.ecn_enabled;
  return rcfg;
}

Flow make_flow(Variant v, sim::Simulator& sim, net::Node& snd_node,
               net::Node& rcv_node, net::FlowId flow, tcp::TcpConfig cfg) {
  Flow f;
  f.snd_env =
      std::make_unique<env::SimEnvironment>(sim, snd_node, rcv_node.id());
  f.rcv_env =
      std::make_unique<env::SimEnvironment>(sim, rcv_node, snd_node.id());
  f.sender = SenderFactory::instance().make(v, *f.snd_env, flow, cfg);
  f.receiver = std::make_unique<tcp::TcpReceiver>(*f.rcv_env, flow,
                                                  receiver_config_for(v, cfg));
  return f;
}

Flow make_flow(Variant v, env::Environment& snd_env, env::Environment& rcv_env,
               net::FlowId flow, tcp::TcpConfig cfg) {
  Flow f;
  f.sender = SenderFactory::instance().make(v, snd_env, flow, cfg);
  f.receiver = std::make_unique<tcp::TcpReceiver>(rcv_env, flow,
                                                  receiver_config_for(v, cfg));
  return f;
}

}  // namespace rrtcp::app
