#include "app/ftp.hpp"

namespace rrtcp::app {

FtpSource::FtpSource(sim::Simulator& sim, tcp::TcpSenderBase& sender,
                     sim::Time start, std::optional<std::uint64_t> bytes)
    : start_{start} {
  sender.set_app_bytes(bytes);
  sim.schedule_at(start, [&sender] { sender.start(); });
}

}  // namespace rrtcp::app
