// Registry of TCP sender variants.
//
// One table maps a Variant to everything construction needs to know about
// it: its canonical name, a maker for the sender object, and whether its
// receiver must generate SACK blocks. make_flow(), the benches, the sweep
// harness, the chaos soak and the live UDP tool all construct senders
// through SenderFactory::make(), so adding a variant means adding ONE
// registry entry — not editing a switch in every driver.
//
// Makers are environment-based: they take the env::Environment the sender
// will live in, which is what lets one registry serve both the simulator
// (env::SimEnvironment) and the live UDP transport (live::LiveEnvironment).
#pragma once

#include <cstddef>
#include <cstdio>
#include <memory>
#include <string_view>

#include "app/variant.hpp"
#include "env/environment.hpp"
#include "tcp/sender_base.hpp"

namespace rrtcp::app {

class SenderFactory {
 public:
  using Maker = std::unique_ptr<tcp::TcpSenderBase> (*)(
      env::Environment& env, net::FlowId flow, const tcp::TcpConfig& cfg);
  // Placement flavor for arena-backed construction (pdes::FlowArena): the
  // registry is the only place that knows the concrete sender type, so it
  // publishes the type's size/alignment and a constructor that builds into
  // caller-provided storage. The caller owns running the destructor
  // (virtual ~TcpSenderBase dispatches to the concrete type).
  using PlacementMaker = tcp::TcpSenderBase* (*)(void* mem,
                                                 env::Environment& env,
                                                 net::FlowId flow,
                                                 const tcp::TcpConfig& cfg);

  struct Entry {
    const char* name = nullptr;  // canonical lowercase CLI/CSV name
    Maker make = nullptr;
    // True when the variant's receiver must generate SACK blocks (the
    // factory is the one place that knows this pairing — RR's headline
    // deployment property is that it does NOT need them).
    bool sack_receiver = false;
    // Arena vtable: concrete type footprint + placement constructor.
    std::size_t size = 0;
    std::size_t align = 0;
    PlacementMaker construct = nullptr;
  };

  // The process-wide registry, pre-populated with the paper's five
  // variants plus the related-work schemes.
  static const SenderFactory& instance();

  // Registry lookup; never fails for a valid Variant enumerator.
  const Entry& at(Variant v) const;

  // Constructs a sender of variant `v` living in `env`.
  std::unique_ptr<tcp::TcpSenderBase> make(Variant v, env::Environment& env,
                                           net::FlowId flow,
                                           const tcp::TcpConfig& cfg) const;

  // Placement-constructs a sender of variant `v` into `mem`, which must be
  // at least at(v).size bytes aligned to at(v).align. The caller owns the
  // storage and must invoke the (virtual) destructor itself — this is the
  // pdes::FlowArena construction path.
  tcp::TcpSenderBase* make_in(void* mem, Variant v, env::Environment& env,
                              net::FlowId flow,
                              const tcp::TcpConfig& cfg) const {
    return at(v).construct(mem, env, flow, cfg);
  }

  const char* name_of(Variant v) const { return at(v).name; }
  // One line per registered variant (canonical name + receiver pairing):
  // the CLIs' --list-variants output.
  void print_registry(std::FILE* out) const;
  // Parses a canonical name (case-sensitive); throws std::invalid_argument
  // for anything not in the registry.
  Variant parse(std::string_view name) const;

 private:
  SenderFactory();
  static constexpr std::size_t kVariantCount = 7;
  Entry entries_[kVariantCount];
};

}  // namespace rrtcp::app
