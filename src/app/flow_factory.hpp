// Flow construction: bundles a sender variant with its matching receiver.
//
// The factory is the one place that knows which receiver options a variant
// needs (SACK block generation for the SACK sender, plain cumulative ACKs
// for everything else — RR's headline deployment property).
#pragma once

#include <memory>
#include <string_view>

#include "net/node.hpp"
#include "sim/simulator.hpp"
#include "tcp/receiver.hpp"
#include "tcp/sender_base.hpp"

namespace rrtcp::app {

enum class Variant {
  kTahoe,
  kReno,
  kNewReno,
  kSack,
  kRr,
  // Related-work schemes from the paper's introduction (src/tcp/
  // related_work.hpp): not part of the paper's own comparison set.
  kRightEdge,
  kLinKung,
};

const char* to_string(Variant v);
// Parses "tahoe" | "reno" | "newreno" | "sack" | "rr" | "rightedge" |
// "linkung" (case-sensitive); throws std::invalid_argument otherwise.
Variant variant_from_string(std::string_view name);

// The five variants of the paper's evaluation, in the order it compares
// them.
inline constexpr Variant kAllVariants[] = {Variant::kTahoe, Variant::kReno,
                                           Variant::kNewReno, Variant::kSack,
                                           Variant::kRr};

// Everything, including the related-work schemes.
inline constexpr Variant kExtendedVariants[] = {
    Variant::kTahoe, Variant::kReno,      Variant::kNewReno, Variant::kSack,
    Variant::kRr,    Variant::kRightEdge, Variant::kLinKung};

struct Flow {
  std::unique_ptr<tcp::TcpSenderBase> sender;
  std::unique_ptr<tcp::TcpReceiver> receiver;
};

// Creates a sender of the given variant on `snd_node` and its receiver on
// `rcv_node`, wired to each other under `flow`.
Flow make_flow(Variant v, sim::Simulator& sim, net::Node& snd_node,
               net::Node& rcv_node, net::FlowId flow,
               tcp::TcpConfig cfg = {});

}  // namespace rrtcp::app
