// Flow construction: bundles a sender variant with its matching receiver.
//
// Sender construction and the variant→receiver pairing live in the
// SenderFactory registry (app/sender_factory.hpp); make_flow is the
// convenience that builds both ends of a connection and wires them
// together.
#pragma once

#include <memory>

#include "app/variant.hpp"
#include "net/node.hpp"
#include "sim/simulator.hpp"
#include "tcp/receiver.hpp"
#include "tcp/sender_base.hpp"

namespace rrtcp::app {

struct Flow {
  std::unique_ptr<tcp::TcpSenderBase> sender;
  std::unique_ptr<tcp::TcpReceiver> receiver;
};

// Creates a sender of the given variant on `snd_node` and its receiver on
// `rcv_node`, wired to each other under `flow`.
Flow make_flow(Variant v, sim::Simulator& sim, net::Node& snd_node,
               net::Node& rcv_node, net::FlowId flow,
               tcp::TcpConfig cfg = {});

}  // namespace rrtcp::app
