// Flow construction: bundles a sender variant with its matching receiver.
//
// Sender construction and the variant→receiver pairing live in the
// SenderFactory registry (app/sender_factory.hpp); make_flow is the
// convenience that builds both ends of a connection — each with its own
// explicit env::SimEnvironment — and wires them together.
#pragma once

#include <memory>

#include "app/variant.hpp"
#include "env/environment.hpp"
#include "net/node.hpp"
#include "sim/simulator.hpp"
#include "tcp/receiver.hpp"
#include "tcp/sender_base.hpp"

namespace rrtcp::app {

struct Flow {
  // Per-endpoint environments, declared before the endpoints they host so
  // teardown runs endpoint-first. Null when the endpoints were built
  // against an external environment the caller owns.
  std::unique_ptr<env::Environment> snd_env;
  std::unique_ptr<env::Environment> rcv_env;
  std::unique_ptr<tcp::TcpSenderBase> sender;
  std::unique_ptr<tcp::TcpReceiver> receiver;
};

// Creates a sender of the given variant on `snd_node` and its receiver on
// `rcv_node`, wired to each other under `flow`.
Flow make_flow(Variant v, sim::Simulator& sim, net::Node& snd_node,
               net::Node& rcv_node, net::FlowId flow,
               tcp::TcpConfig cfg = {});

// Environment-agnostic flavor: builds both endpoints against caller-owned
// environments (one per endpoint, already peered with each other). This is
// the path the live transport uses; in-sim callers can pass two
// env::SimEnvironments to the same effect as the overload above.
Flow make_flow(Variant v, env::Environment& snd_env, env::Environment& rcv_env,
               net::FlowId flow, tcp::TcpConfig cfg = {});

// The ReceiverConfig paired with a sender of variant `v` under `cfg` —
// notably whether the receiver generates SACK blocks (a registry fact).
// Exposed for construction paths that build receivers directly, e.g. the
// arena-backed flows of pdes::ShardedScenario.
tcp::ReceiverConfig receiver_config_for(Variant v, const tcp::TcpConfig& cfg);

}  // namespace rrtcp::app
