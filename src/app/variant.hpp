// The TCP sender variants the repo can construct.
//
// Kept in its own header so identity-level consumers (scenario specs,
// result records, CLIs) don't pull in sender/receiver construction; the
// registry that knows how to BUILD each variant is app/sender_factory.hpp.
#pragma once

#include <string_view>

namespace rrtcp::app {

enum class Variant {
  kTahoe,
  kReno,
  kNewReno,
  kSack,
  kRr,
  // Related-work schemes from the paper's introduction (src/tcp/
  // related_work.hpp): not part of the paper's own comparison set.
  kRightEdge,
  kLinKung,
};

const char* to_string(Variant v);
// Parses "tahoe" | "reno" | "newreno" | "sack" | "rr" | "rightedge" |
// "linkung" (case-sensitive); throws std::invalid_argument otherwise.
Variant variant_from_string(std::string_view name);

// The five variants of the paper's evaluation, in the order it compares
// them.
inline constexpr Variant kAllVariants[] = {Variant::kTahoe, Variant::kReno,
                                           Variant::kNewReno, Variant::kSack,
                                           Variant::kRr};

// Everything, including the related-work schemes.
inline constexpr Variant kExtendedVariants[] = {
    Variant::kTahoe, Variant::kReno,      Variant::kNewReno, Variant::kSack,
    Variant::kRr,    Variant::kRightEdge, Variant::kLinKung};

}  // namespace rrtcp::app
