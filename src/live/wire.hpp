// Wire codec for net::Packet over UDP datagrams.
//
// One datagram carries one packet: a fixed 48-byte little-endian header,
// n_sack 16-byte SACK blocks, then — for data packets — `payload` filler
// bytes so the datagram's size reflects the data volume the simulator
// models (the filler is zeros; the reproduction transfers byte counts, not
// application content). Every multi-byte field is serialized explicitly
// byte-by-byte, so the format is identical across host endianness.
//
// Layout (offsets in bytes):
//   0   u32  magic  "RRTP" (0x50545252 LE)
//   4   u8   version (kWireVersion)
//   5   u8   type    (net::PacketType)
//   6   u8   flags   bit0 ect, bit1 ce, bit2 ece, bit3 cwr
//   7   u8   n_sack  (<= net::kMaxSackBlocks)
//   8   u32  flow
//   12  u32  size_bytes
//   16  u64  uid
//   24  u64  seq
//   32  u64  ack
//   40  u32  payload
//   44  u32  reserved (zero)
//   48  n_sack x { u64 begin, u64 end }
//   ... payload filler (data packets only)
//
// decode() is strict: bad magic/version/type, an out-of-range n_sack, a
// truncated header or a trailing-length mismatch all reject the datagram
// (returns false, *out untouched). A transport exposed to a real network
// must treat every arriving datagram as hostile.
#pragma once

#include <cstddef>
#include <cstdint>

#include "net/packet.hpp"

namespace rrtcp::live {

inline constexpr std::uint32_t kWireMagic = 0x50545252;  // "RRTP" LE
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kWireHeaderBytes = 48;
inline constexpr std::size_t kWireSackBytes = 16;
// Largest datagram encode() can produce: header + max SACK blocks + the
// largest payload we ever pad out (jumbo-frame-sized; the paper's MSS is
// 1000 B). Callers size receive buffers with this.
inline constexpr std::size_t kMaxWirePayload = 9000;
inline constexpr std::size_t kMaxWireDatagram =
    kWireHeaderBytes + net::kMaxSackBlocks * kWireSackBytes + kMaxWirePayload;

// Serialized size of `p` (header + SACK blocks + data filler).
std::size_t wire_size(const net::Packet& p);

// Encodes `p` into `buf`; returns bytes written, or 0 when `cap` is too
// small, n_sack is out of range, or a data payload exceeds kMaxWirePayload.
std::size_t encode(const net::Packet& p, std::uint8_t* buf, std::size_t cap);

// Decodes one datagram. Returns false (out untouched) on any malformation.
// Fields the wire does not carry (sent_at, hops) are zero in *out; src/dst
// NodeIds are likewise not carried — addressing is the socket's business —
// so the caller stamps them from its environment.
bool decode(const std::uint8_t* buf, std::size_t len, net::Packet* out);

}  // namespace rrtcp::live
