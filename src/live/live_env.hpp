// The real-network embodiment of env::Environment.
//
// One LiveEnvironment is one endpoint of a UDP "connection": a nonblocking
// UDP socket, an epoll instance, and one CLOCK_MONOTONIC timerfd armed to
// the earliest pending deadline of the environment's timer registry. The
// clock is CLOCK_MONOTONIC rebased to zero at construction, so transport
// code sees the same near-zero sim::Time values it sees in the simulator —
// and never wall time (src/live is the only place the rrtcp-wall-clock
// tidy check permits a real clock, and even here it is the monotonic one).
//
// Threading model: single-threaded, pull-based. Nothing happens between
// poll() calls — arriving datagrams queue in the kernel socket buffer and
// expired timers latch in the timerfd until the owner polls. poll()
// dispatches, in epoll order, every due timer (deadline-then-arm order,
// matching the simulator's (time, insertion-seq) determinism) and every
// readable datagram. This is what lets a differential test drive two
// LiveEnvironments (client + server) from one thread, and what guarantees
// the interface contract that receive and timer callbacks never overlap.
//
// Peer addressing follows the classic UDP server idiom: a client is given
// the server's address at construction; a server binds and learns its
// peer from the first datagram that decodes. Until the peer is known,
// send() counts the packet as unroutable and drops it (TCP's RTO makes
// the loss recoverable, exactly as in the simulator).
//
// An optional ingress drop filter reuses chaos::FaultSpec windows against
// the environment clock: outage/blackhole windows drop every arrival,
// ack-loss and burst-loss apply their probabilistic kinds through the same
// seeded RNG streams the simulator's FaultInjector uses. Duplicate and
// delay-spike kinds need egress scheduling and are not applied live.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "chaos/fault.hpp"
#include "env/environment.hpp"
#include "net/flat_table.hpp"
#include "sim/rng.hpp"

namespace rrtcp::live {

struct LiveConfig {
  // Local UDP endpoint. Port 0 lets the kernel pick (clients).
  std::string bind_addr = "127.0.0.1";
  std::uint16_t bind_port = 0;
  // Peer endpoint. Empty addr = learn from the first arriving datagram
  // (server role).
  std::string peer_addr;
  std::uint16_t peer_port = 0;
  // NodeIds stamped onto decoded packets (the wire does not carry them).
  net::NodeId local_id = 0;
  net::NodeId peer_id = 1;
  // Ingress drop filter (see file comment). Empty = pass everything.
  chaos::FaultPlan faults;
  std::uint64_t fault_seed = 1;
};

class LiveEnvironment final : public env::Environment {
 public:
  // Binds the socket and sets up epoll + timerfd. Throws std::runtime_error
  // on any syscall failure (construction is cold; transport code never
  // sees exceptions after it).
  explicit LiveEnvironment(LiveConfig cfg);
  ~LiveEnvironment() override;

  LiveEnvironment(const LiveEnvironment&) = delete;
  LiveEnvironment& operator=(const LiveEnvironment&) = delete;

  // ---- env::Environment ------------------------------------------------
  sim::Time now() const override;
  net::NodeId local_id() const override { return cfg_.local_id; }
  net::NodeId peer_id() const override { return cfg_.peer_id; }
  void attach(net::FlowId flow, net::Agent* agent) override {
    agents_.insert_or_assign(flow, agent);
  }
  void detach(net::FlowId flow) override { agents_.erase(flow); }
  void send(net::Packet p) override;
  TimerId timer_create(std::function<void()> on_fire) override;
  void timer_destroy(TimerId id) override;
  void timer_arm(TimerId id, sim::Time delay) override;
  void timer_cancel(TimerId id) override;
  bool timer_pending(TimerId id) const override;

  // ---- Event loop ------------------------------------------------------
  // Wait up to `timeout_ms` (-1 = forever, 0 = nonblocking) for anything
  // to do, then dispatch every due timer and every readable datagram.
  // Returns the number of callbacks dispatched (0 = timed out idle).
  int poll(int timeout_ms);

  // poll() in a loop until `done` returns true or `deadline` (environment
  // clock) passes. Returns true if `done` turned true.
  bool run_until(const std::function<bool()>& done, sim::Time deadline);

  // The port the socket actually bound (useful with bind_port = 0).
  std::uint16_t local_port() const { return local_port_; }
  bool peer_known() const { return peer_known_; }

  // ---- Statistics ------------------------------------------------------
  std::uint64_t datagrams_sent() const { return sent_; }
  std::uint64_t datagrams_received() const { return received_; }
  std::uint64_t decode_failures() const { return decode_failures_; }
  std::uint64_t filtered_drops() const { return filtered_; }
  std::uint64_t unroutable() const { return unroutable_; }

 private:
  struct TimerSlot {
    std::function<void()> on_fire;
    bool live = false;     // slot allocated (vs on the free list)
    bool armed = false;
    sim::Time deadline = sim::Time::zero();
    std::uint64_t arm_seq = 0;  // FIFO tiebreak among equal deadlines
  };

  std::int64_t monotonic_ns() const;
  void rearm_timerfd();
  int fire_due_timers();
  int drain_socket();
  bool ingress_filtered(const net::Packet& p);

  LiveConfig cfg_;
  int sock_fd_ = -1;
  int epoll_fd_ = -1;
  int timer_fd_ = -1;
  std::int64_t epoch_ns_ = 0;  // CLOCK_MONOTONIC at construction
  std::uint16_t local_port_ = 0;

  bool peer_known_ = false;
  // struct sockaddr_in, kept opaque here so the header stays free of
  // <netinet/in.h> for non-Linux includers of the repo's headers.
  alignas(8) unsigned char peer_addr_[16] = {};
  std::uint32_t peer_addr_len_ = 0;

  net::FlatTable32<net::Agent*> agents_;
  std::vector<TimerSlot> timers_;
  std::vector<TimerId> free_;
  std::uint64_t next_arm_seq_ = 0;

  // Armed ingress filter state, one RNG stream per spec (same naming
  // convention as chaos::FaultInjector).
  struct ArmedFilter {
    chaos::FaultSpec spec;
    sim::Rng rng;
    bool bad = false;  // Gilbert-Elliott chain state
  };
  std::vector<ArmedFilter> filters_;

  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t decode_failures_ = 0;
  std::uint64_t filtered_ = 0;
  std::uint64_t unroutable_ = 0;
};

}  // namespace rrtcp::live
