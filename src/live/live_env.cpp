#include "live/live_env.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <ctime>
#include <stdexcept>
#include <string>
#include <utility>

#include "live/wire.hpp"
#include "sim/assert.hpp"

namespace rrtcp::live {

namespace {

[[noreturn]] void die(const char* what) {
  throw std::runtime_error(std::string("live: ") + what + ": " +
                           std::strerror(errno));
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in a{};
  a.sin_family = AF_INET;
  a.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &a.sin_addr) != 1)
    throw std::runtime_error("live: bad IPv4 address: " + host);
  return a;
}

}  // namespace

LiveEnvironment::LiveEnvironment(LiveConfig cfg) : cfg_{std::move(cfg)} {
  static_assert(sizeof(sockaddr_in) <= sizeof(peer_addr_));

  sock_fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (sock_fd_ < 0) die("socket");
  sockaddr_in bind_sa = make_addr(cfg_.bind_addr, cfg_.bind_port);
  if (::bind(sock_fd_, reinterpret_cast<sockaddr*>(&bind_sa),
             sizeof(bind_sa)) != 0)
    die("bind");
  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  if (::getsockname(sock_fd_, reinterpret_cast<sockaddr*>(&bound), &blen) != 0)
    die("getsockname");
  local_port_ = ntohs(bound.sin_port);

  if (!cfg_.peer_addr.empty()) {
    sockaddr_in peer = make_addr(cfg_.peer_addr, cfg_.peer_port);
    std::memcpy(peer_addr_, &peer, sizeof(peer));
    peer_addr_len_ = sizeof(peer);
    peer_known_ = true;
  }

  timer_fd_ = ::timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK | TFD_CLOEXEC);
  if (timer_fd_ < 0) die("timerfd_create");

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) die("epoll_create1");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = sock_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, sock_fd_, &ev) != 0)
    die("epoll_ctl(socket)");
  ev.data.fd = timer_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, timer_fd_, &ev) != 0)
    die("epoll_ctl(timerfd)");

  epoch_ns_ = monotonic_ns();

  filters_.reserve(cfg_.faults.faults.size());
  std::size_t i = 0;
  for (const chaos::FaultSpec& spec : cfg_.faults.faults) {
    // Same per-spec stream naming scheme as chaos::FaultInjector, so a
    // schedule printed by the soak is seed-replayable here.
    const std::string stream = "live-filter/" + std::to_string(i++);
    filters_.push_back(ArmedFilter{spec, sim::Rng{cfg_.fault_seed, stream},
                                   /*bad=*/false});
  }
}

LiveEnvironment::~LiveEnvironment() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (timer_fd_ >= 0) ::close(timer_fd_);
  if (sock_fd_ >= 0) ::close(sock_fd_);
}

std::int64_t LiveEnvironment::monotonic_ns() const {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

sim::Time LiveEnvironment::now() const {
  return sim::Time::nanoseconds(monotonic_ns() - epoch_ns_);
}

// ---------------------------------------------------------------------------
// Egress

void LiveEnvironment::send(net::Packet p) {
  if (!peer_known_) {
    ++unroutable_;  // the RTO will retry once the peer introduces itself
    return;
  }
  std::uint8_t buf[kMaxWireDatagram];
  const std::size_t n = encode(p, buf, sizeof buf);
  RRTCP_ASSERT_MSG(n > 0, "live: unencodable packet");
  const ssize_t rc =
      ::sendto(sock_fd_, buf, n, 0,
               reinterpret_cast<const sockaddr*>(peer_addr_), peer_addr_len_);
  // A full socket buffer (EAGAIN/ENOBUFS) is a legitimate packet drop: the
  // kernel queue is this transport's bottleneck queue. TCP recovers.
  if (rc >= 0) ++sent_;
}

// ---------------------------------------------------------------------------
// Timers

env::Environment::TimerId LiveEnvironment::timer_create(
    std::function<void()> on_fire) {
  TimerId id;
  if (!free_.empty()) {
    id = free_.back();
    free_.pop_back();
  } else {
    id = static_cast<TimerId>(timers_.size());
    timers_.emplace_back();
  }
  TimerSlot& slot = timers_[id];
  slot.on_fire = std::move(on_fire);
  slot.live = true;
  slot.armed = false;
  return id;
}

void LiveEnvironment::timer_destroy(TimerId id) {
  RRTCP_ASSERT(id < timers_.size() && timers_[id].live);
  timers_[id] = TimerSlot{};
  free_.push_back(id);
  rearm_timerfd();
}

void LiveEnvironment::timer_arm(TimerId id, sim::Time delay) {
  RRTCP_DASSERT(id < timers_.size() && timers_[id].live);
  TimerSlot& slot = timers_[id];
  slot.armed = true;
  slot.deadline = now() + delay;
  slot.arm_seq = next_arm_seq_++;
  rearm_timerfd();
}

void LiveEnvironment::timer_cancel(TimerId id) {
  RRTCP_DASSERT(id < timers_.size() && timers_[id].live);
  if (!timers_[id].armed) return;
  timers_[id].armed = false;
  rearm_timerfd();
}

bool LiveEnvironment::timer_pending(TimerId id) const {
  RRTCP_DASSERT(id < timers_.size() && timers_[id].live);
  return timers_[id].armed;
}

void LiveEnvironment::rearm_timerfd() {
  // Program the timerfd to the earliest armed deadline (absolute
  // CLOCK_MONOTONIC), or disarm it when nothing is pending.
  bool any = false;
  sim::Time earliest = sim::Time::infinity();
  for (const TimerSlot& s : timers_) {
    if (s.live && s.armed && s.deadline < earliest) {
      earliest = s.deadline;
      any = true;
    }
  }
  itimerspec its{};
  if (any) {
    std::int64_t ns = epoch_ns_ + earliest.ps() / 1'000;
    if (ns <= 0) ns = 1;  // already due: fire immediately
    its.it_value.tv_sec = ns / 1'000'000'000;
    its.it_value.tv_nsec = ns % 1'000'000'000;
  }
  // Zero it_value disarms — exactly what the !any case wants.
  if (::timerfd_settime(timer_fd_, TFD_TIMER_ABSTIME, &its, nullptr) != 0)
    die("timerfd_settime");
}

int LiveEnvironment::fire_due_timers() {
  // Drain the timerfd's expiry count, then fire every due timer in
  // (deadline, arm-order) — the simulator's determinism contract.
  std::uint64_t expirations = 0;
  const ssize_t drained = ::read(timer_fd_, &expirations, sizeof expirations);
  (void)drained;  // an empty timerfd (EAGAIN) is fine — we scan deadlines
  int fired = 0;
  for (;;) {
    const sim::Time t = now();
    TimerId best = env::Environment::kInvalidTimer;
    for (TimerId id = 0; id < timers_.size(); ++id) {
      const TimerSlot& s = timers_[id];
      if (!s.live || !s.armed || s.deadline > t) continue;
      if (best == env::Environment::kInvalidTimer ||
          s.deadline < timers_[best].deadline ||
          (s.deadline == timers_[best].deadline &&
           s.arm_seq < timers_[best].arm_seq))
        best = id;
    }
    if (best == env::Environment::kInvalidTimer) break;
    timers_[best].armed = false;
    timers_[best].on_fire();  // may re-arm, create, or destroy timers
    ++fired;
  }
  if (fired > 0) rearm_timerfd();
  return fired;
}

// ---------------------------------------------------------------------------
// Ingress

bool LiveEnvironment::ingress_filtered(const net::Packet& p) {
  const sim::Time t = now();
  for (ArmedFilter& f : filters_) {
    const bool in_window = f.spec.active_at(t);
    switch (f.spec.kind) {
      case chaos::FaultKind::kOutage:
      case chaos::FaultKind::kBlackhole:
        if (in_window) return true;
        break;
      case chaos::FaultKind::kAckLoss:
        if (in_window && p.is_ack() && f.rng.bernoulli(f.spec.probability))
          return true;
        break;
      case chaos::FaultKind::kBurstLoss: {
        if (!in_window) break;
        if (f.spec.data_only && !p.is_data()) break;
        // Gilbert-Elliott: advance the chain per arrival, drop in bad state.
        if (f.bad) {
          if (f.rng.bernoulli(f.spec.p_exit_bad)) f.bad = false;
        } else if (f.rng.bernoulli(f.spec.p_enter_bad)) {
          f.bad = true;
        }
        if (f.bad && f.rng.bernoulli(f.spec.loss_in_bad)) return true;
        break;
      }
      case chaos::FaultKind::kAckDuplicate:
      case chaos::FaultKind::kDelaySpike:
      case chaos::FaultKind::kCount:
        break;  // need egress scheduling; not applied live
    }
  }
  return false;
}

int LiveEnvironment::drain_socket() {
  int dispatched = 0;
  std::uint8_t buf[kMaxWireDatagram + 1];
  for (;;) {
    sockaddr_in from{};
    socklen_t from_len = sizeof(from);
    const ssize_t n = ::recvfrom(sock_fd_, buf, sizeof buf, 0,
                                 reinterpret_cast<sockaddr*>(&from), &from_len);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      // ECONNREFUSED from a previous send's ICMP error: ignore, keep going.
      continue;
    }
    net::Packet p;
    if (!decode(buf, static_cast<std::size_t>(n), &p)) {
      ++decode_failures_;
      continue;
    }
    if (!peer_known_) {
      // Server role: the first well-formed datagram names our peer.
      std::memcpy(peer_addr_, &from, sizeof(from));
      peer_addr_len_ = from_len;
      peer_known_ = true;
    }
    ++received_;
    if (ingress_filtered(p)) {
      ++filtered_;
      continue;
    }
    p.src = cfg_.peer_id;
    p.dst = cfg_.local_id;
    net::Agent** agent = agents_.find(p.flow);
    if (agent == nullptr) {
      ++unroutable_;
      continue;
    }
    (*agent)->receive(std::move(p));
    ++dispatched;
  }
  return dispatched;
}

// ---------------------------------------------------------------------------
// Event loop

int LiveEnvironment::poll(int timeout_ms) {
  epoll_event events[4];
  int n = ::epoll_wait(epoll_fd_, events, 4, timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return 0;
    die("epoll_wait");
  }
  int dispatched = 0;
  for (int i = 0; i < n; ++i) {
    if (events[i].data.fd == timer_fd_) dispatched += fire_due_timers();
    if (events[i].data.fd == sock_fd_) dispatched += drain_socket();
  }
  return dispatched;
}

bool LiveEnvironment::run_until(const std::function<bool()>& done,
                                sim::Time deadline) {
  while (!done()) {
    const sim::Time t = now();
    if (t >= deadline) return false;
    const std::int64_t budget_ms = (deadline - t).ps() / 1'000'000'000;
    poll(static_cast<int>(budget_ms) + 1);
  }
  return true;
}

}  // namespace rrtcp::live
