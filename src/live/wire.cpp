#include "live/wire.hpp"

#include <cstring>

namespace rrtcp::live {

namespace {

void put_u32(std::uint8_t* b, std::uint32_t v) {
  b[0] = static_cast<std::uint8_t>(v);
  b[1] = static_cast<std::uint8_t>(v >> 8);
  b[2] = static_cast<std::uint8_t>(v >> 16);
  b[3] = static_cast<std::uint8_t>(v >> 24);
}

void put_u64(std::uint8_t* b, std::uint64_t v) {
  put_u32(b, static_cast<std::uint32_t>(v));
  put_u32(b + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32(const std::uint8_t* b) {
  return static_cast<std::uint32_t>(b[0]) |
         static_cast<std::uint32_t>(b[1]) << 8 |
         static_cast<std::uint32_t>(b[2]) << 16 |
         static_cast<std::uint32_t>(b[3]) << 24;
}

std::uint64_t get_u64(const std::uint8_t* b) {
  return static_cast<std::uint64_t>(get_u32(b)) |
         static_cast<std::uint64_t>(get_u32(b + 4)) << 32;
}

std::size_t filler_bytes(const net::Packet& p) {
  return p.is_data() ? p.tcp.payload : 0;
}

}  // namespace

std::size_t wire_size(const net::Packet& p) {
  return kWireHeaderBytes + p.tcp.n_sack * kWireSackBytes + filler_bytes(p);
}

std::size_t encode(const net::Packet& p, std::uint8_t* buf, std::size_t cap) {
  if (p.tcp.n_sack > net::kMaxSackBlocks) return 0;
  if (filler_bytes(p) > kMaxWirePayload) return 0;
  const std::size_t need = wire_size(p);
  if (need > cap) return 0;

  put_u32(buf + 0, kWireMagic);
  buf[4] = kWireVersion;
  buf[5] = static_cast<std::uint8_t>(p.type);
  buf[6] = static_cast<std::uint8_t>((p.tcp.ect ? 1u : 0u) |
                                     (p.tcp.ce ? 2u : 0u) |
                                     (p.tcp.ece ? 4u : 0u) |
                                     (p.tcp.cwr ? 8u : 0u));
  buf[7] = p.tcp.n_sack;
  put_u32(buf + 8, p.flow);
  put_u32(buf + 12, p.size_bytes);
  put_u64(buf + 16, p.uid);
  put_u64(buf + 24, p.tcp.seq);
  put_u64(buf + 32, p.tcp.ack);
  put_u32(buf + 40, p.tcp.payload);
  put_u32(buf + 44, 0);

  std::uint8_t* w = buf + kWireHeaderBytes;
  for (int i = 0; i < p.tcp.n_sack; ++i) {
    put_u64(w, p.tcp.sack[static_cast<std::size_t>(i)].begin);
    put_u64(w + 8, p.tcp.sack[static_cast<std::size_t>(i)].end);
    w += kWireSackBytes;
  }
  std::memset(w, 0, filler_bytes(p));
  return need;
}

bool decode(const std::uint8_t* buf, std::size_t len, net::Packet* out) {
  if (len < kWireHeaderBytes) return false;
  if (get_u32(buf + 0) != kWireMagic) return false;
  if (buf[4] != kWireVersion) return false;
  const std::uint8_t type = buf[5];
  if (type > static_cast<std::uint8_t>(net::PacketType::kCbr)) return false;
  const std::uint8_t flags = buf[6];
  if ((flags & ~0x0fu) != 0) return false;
  const std::uint8_t n_sack = buf[7];
  if (n_sack > net::kMaxSackBlocks) return false;

  net::Packet p;
  p.type = static_cast<net::PacketType>(type);
  p.tcp.ect = (flags & 1u) != 0;
  p.tcp.ce = (flags & 2u) != 0;
  p.tcp.ece = (flags & 4u) != 0;
  p.tcp.cwr = (flags & 8u) != 0;
  p.tcp.n_sack = n_sack;
  p.flow = get_u32(buf + 8);
  p.size_bytes = get_u32(buf + 12);
  p.uid = get_u64(buf + 16);
  p.tcp.seq = get_u64(buf + 24);
  p.tcp.ack = get_u64(buf + 32);
  p.tcp.payload = get_u32(buf + 40);

  std::size_t off = kWireHeaderBytes;
  if (len < off + n_sack * kWireSackBytes) return false;
  for (int i = 0; i < n_sack; ++i) {
    p.tcp.sack[static_cast<std::size_t>(i)].begin = get_u64(buf + off);
    p.tcp.sack[static_cast<std::size_t>(i)].end = get_u64(buf + off + 8);
    off += kWireSackBytes;
  }
  const std::size_t filler = p.is_data() ? p.tcp.payload : 0;
  if (filler > kMaxWirePayload) return false;
  if (len != off + filler) return false;

  *out = p;
  return true;
}

}  // namespace rrtcp::live
