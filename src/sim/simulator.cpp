#include "sim/simulator.hpp"

#include <memory>

namespace rrtcp::sim {

void Simulator::grow_pool() {
  // Grow the pool by one chunk. Chunks are stable in memory (never moved
  // or released), so EventNode references held across callback-triggered
  // scheduling stay valid; the chunk directory and free list reserve up
  // front so steady-state alloc/free touches no allocator at all.
  const std::uint32_t base =
      static_cast<std::uint32_t>(chunks_.size() * kChunkSize);
  chunks_.push_back(std::make_unique<detail::EventNode[]>(kChunkSize));
  free_.reserve(chunks_.size() * kChunkSize);
  // Push in reverse so slots hand out in ascending index order.
  for (std::size_t i = kChunkSize; i-- > 0;)
    free_.push_back(base + static_cast<std::uint32_t>(i));
}

bool Simulator::cancel_event(std::uint32_t slot, std::uint64_t seq) {
  if (seq == 0) return false;
  detail::EventNode& n = node(slot);
  if (n.seq != seq) return false;  // already fired, cancelled, or recycled
  n.fn.reset();  // release captured resources eagerly
  n.seq = 0;
  // The slot is reusable immediately: its heap entry still carries the old
  // seq and is recognized as stale when it reaches the top.
  free_slot(slot);
  return true;
}

void Simulator::heap_pop_top() {
  const HeapEntry moved = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  std::size_t i = 0;
  for (;;) {
    const std::size_t first = (i << 2) + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = first + 4 < n ? first + 4 : n;
    for (std::size_t c = first + 1; c < last; ++c)
      if (before(heap_[c], heap_[best])) best = c;
    if (!before(heap_[best], moved)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = moved;
}

bool Simulator::heap_settle_top() {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_[0];
    if (node(top.slot).seq == top.seq) return true;
    heap_pop_top();  // stale: the event was cancelled (slot maybe recycled)
  }
  return false;
}

void Simulator::fire_top() {
  const HeapEntry top = heap_[0];
  heap_pop_top();
  detail::EventNode& n = node(top.slot);
  RRTCP_ASSERT(top.at >= now_);
  now_ = top.at;
  // Consume the occupancy before invoking so the handle reports "not
  // pending" and a self-cancel inside the callback is a no-op. The slot
  // returns to the free list only after the callback finishes — its
  // captures live in the slot's inline buffer.
  n.seq = 0;
  ++executed_;
  n.fn.consume();
  free_slot(top.slot);
}

bool Simulator::step() {
  // Entries cancelled after insertion are discarded lazily here.
  if (!heap_settle_top()) return false;
  fire_top();
  return true;
}

std::uint64_t Simulator::run() {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!stopped_ && heap_settle_top()) {
    fire_top();
    ++n;
  }
  return n;
}

std::uint64_t Simulator::run_until(Time deadline) {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!stopped_ && heap_settle_top()) {
    // Peek at the next live event without executing it.
    if (heap_[0].at > deadline) break;
    fire_top();
    ++n;
  }
  // Only a run that exhausted the work up to `deadline` advances the clock
  // there; a stopped run leaves now_ at the stopping event's time so the
  // caller can observe when the stop happened and resume from it.
  if (!stopped_ && now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace rrtcp::sim
