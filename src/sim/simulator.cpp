#include "sim/simulator.hpp"

#include <bit>
#include <memory>

namespace rrtcp::sim {

namespace {
// Rotate the occupancy bitmap so the current bucket is bit 0, then the
// count of trailing zeros is the forward distance to the nearest occupied
// bucket (all occupied buckets sit within one wheel revolution ahead).
inline int bucket_distance(std::uint64_t bits, unsigned cur) {
  return std::countr_zero(std::rotr(bits, cur));
}
}  // namespace

Simulator::Simulator() {
  for (int level = 0; level < kWheelLevels; ++level)
    for (int b = 0; b < kWheelSlots; ++b) {
      wheel_head_[level][b] = detail::kNilLink;
      wheel_tail_[level][b] = detail::kNilLink;
    }
  // Same-tick chains form lazily on the first timestamp collision, which
  // in a jittered workload can land long after warm-up. Reserve the chain
  // table (and free list) here so that first collision stays alloc-free
  // in steady state.
  chains_.reserve(16);
  free_chains_.reserve(16);
  // Pre-size the heap to a working floor (24 KiB). A chain upgrade adds
  // one entry on top of the warmed high-water mark; without slack that
  // single push can land exactly on a doubling boundary mid-measurement.
  heap_.reserve(1024);
}

void Simulator::grow_pool() {
  // Grow the pool by one chunk. Chunks are stable in memory (never moved
  // or released), so EventNode references held across callback-triggered
  // scheduling stay valid; the chunk directory and free list reserve up
  // front so steady-state alloc/free touches no allocator at all.
  const std::uint32_t base =
      static_cast<std::uint32_t>(chunks_.size() * kChunkSize);
  chunks_.push_back(std::make_unique<detail::EventNode[]>(kChunkSize));
  free_.reserve(chunks_.size() * kChunkSize);
  // Push in reverse so slots hand out in ascending index order.
  for (std::size_t i = kChunkSize; i-- > 0;)
    free_.push_back(base + static_cast<std::uint32_t>(i));
}

// ---------------------------------------------------------------------------
// Timer wheel

void Simulator::wheel_link(int level, std::uint32_t slot,
                           detail::EventNode& n) {
  const int shift = kWheelShift0 + level * kWheelSlotBits;
  const std::int64_t idx = n.at_ps >> shift;
  const unsigned b = static_cast<unsigned>(idx) & (kWheelSlots - 1);
  n.loc = static_cast<std::uint8_t>(detail::kLocWheel0 + level);
  n.bucket = static_cast<std::uint8_t>(b);
  n.next = detail::kNilLink;
  n.prev = wheel_tail_[level][b];
  if (n.prev == detail::kNilLink)
    wheel_head_[level][b] = slot;
  else
    node(n.prev).next = slot;
  wheel_tail_[level][b] = slot;
  wheel_bits_[level] |= std::uint64_t{1} << b;
  ++wheel_count_;
  const std::int64_t start = idx << shift;
  if (start < wheel_lb_ps_) wheel_lb_ps_ = start;
}

void Simulator::wheel_unlink(detail::EventNode& n) {
  const int level = n.loc - detail::kLocWheel0;
  const unsigned b = n.bucket;
  if (n.prev == detail::kNilLink)
    wheel_head_[level][b] = n.next;
  else
    node(n.prev).next = n.next;
  if (n.next == detail::kNilLink)
    wheel_tail_[level][b] = n.prev;
  else
    node(n.next).prev = n.prev;
  if (wheel_head_[level][b] == detail::kNilLink)
    wheel_bits_[level] &= ~(std::uint64_t{1} << b);
  // wheel_lb_ps_ may now under-estimate; advance_wheel_once() tolerates
  // that (it re-derives the true minimum from the bitmaps).
  if (--wheel_count_ == 0) wheel_lb_ps_ = kMaxPs;
}

void Simulator::insert_far(std::uint32_t slot, detail::EventNode& n) {
  const std::int64_t t = n.at_ps;
  for (int level = 0; level < kWheelLevels; ++level) {
    const int shift = kWheelShift0 + level * kWheelSlotBits;
    if ((t >> shift) - (wheel_now_ps_ >> shift) <
        static_cast<std::int64_t>(kWheelSlots)) {
      wheel_link(level, slot, n);
      // A wheel insert closes any open same-tick heap run: a later heap
      // insert at the same instant must not batch past this event. (This
      // only matters when the run's instant entered the wheel span after
      // its anchor overflowed to the heap — rare, but order-critical.)
      cache_at_ps_ = kNoCache;
      return;
    }
  }
  // Beyond the outermost wheel span (~18.8 min out): ordinary heap entry.
  insert_near(slot, n);
}

void Simulator::recompute_wheel_lb() {
  std::int64_t lb = kMaxPs;
  for (int level = 0; level < kWheelLevels; ++level) {
    const std::uint64_t bits = wheel_bits_[level];
    if (bits == 0) continue;
    const int shift = kWheelShift0 + level * kWheelSlotBits;
    const std::int64_t cur = wheel_now_ps_ >> shift;
    const int d = bucket_distance(bits, static_cast<unsigned>(cur) &
                                            (kWheelSlots - 1));
    const std::int64_t start = (cur + d) << shift;
    if (start < lb) lb = start;
  }
  wheel_lb_ps_ = lb;
}

void Simulator::advance_wheel_once() {
  // Find the occupied bucket with the smallest start time. Ties between
  // levels are taken at the *higher* level so a coarse bucket cascades
  // before a same-start fine bucket flushes (its events may sort earlier).
  std::int64_t best = kMaxPs;
  int best_level = -1;
  unsigned best_bucket = 0;
  for (int level = kWheelLevels - 1; level >= 0; --level) {
    const std::uint64_t bits = wheel_bits_[level];
    if (bits == 0) continue;
    const int shift = kWheelShift0 + level * kWheelSlotBits;
    const std::int64_t cur = wheel_now_ps_ >> shift;
    const unsigned cb = static_cast<unsigned>(cur) & (kWheelSlots - 1);
    const int d = bucket_distance(bits, cb);
    const std::int64_t start = (cur + d) << shift;
    if (start < best) {
      best = start;
      best_level = level;
      best_bucket = (cb + static_cast<unsigned>(d)) & (kWheelSlots - 1);
    }
  }
  RRTCP_ASSERT(best_level >= 0);
  // The horizon only moves forward: `best` is the minimum start over all
  // occupied buckets, and every event still in the wheel is >= its
  // bucket's start.
  wheel_now_ps_ = best;

  // Detach the whole bucket, then redistribute. Level 0 buckets are fully
  // inside the current coarse tick, so their events go straight to the
  // heap; coarser buckets cascade into strictly finer levels (every event
  // of a level-k bucket fits level k-1 once wheel_now_ sits at the bucket
  // start). List order is insertion order, so consecutive same-instant
  // events with ascending seq re-batch into chains as they flush.
  std::uint32_t s = wheel_head_[best_level][best_bucket];
  wheel_head_[best_level][best_bucket] = detail::kNilLink;
  wheel_tail_[best_level][best_bucket] = detail::kNilLink;
  wheel_bits_[best_level] &= ~(std::uint64_t{1} << best_bucket);

  // Open runs for this flush live in flush_runs_ (deliberately NOT the
  // schedule-time cache: a flushed run must never merge into a chain that
  // younger events already extend — seqs would interleave). See the table
  // declaration for the FIFO argument; the short version: an instant
  // claims a table slot at most once per flush, a node batches only when
  // its seq exceeds the instant's high-water mark, and everything else
  // becomes its own heap entry ordered by the (at, seq) tie-break.
  ++flush_epoch_;

  while (s != detail::kNilLink) {
    detail::EventNode& n = node(s);
    const std::uint32_t next = n.next;
    --wheel_count_;
    if ((n.at_ps >> kWheelShift0) > (wheel_now_ps_ >> kWheelShift0)) {
      // Still in a future coarse tick: re-stage at a finer level.
      for (int level = 0;; ++level) {
        RRTCP_DASSERT(level < best_level);
        const int shift = kWheelShift0 + level * kWheelSlotBits;
        if ((n.at_ps >> shift) - (wheel_now_ps_ >> shift) <
            static_cast<std::int64_t>(kWheelSlots)) {
          wheel_link(level, s, n);
          break;
        }
      }
      s = next;
      continue;
    }
    // Heap-bound. Find this instant's run: an exact match wins; otherwise
    // remember a free (stale-epoch) slot to claim.
    const std::uint32_t h = flush_slot_of(n.at_ps);
    FlushRun* run = nullptr;
    FlushRun* claim = nullptr;
    for (const std::uint32_t probe : {h, h ^ 1u}) {
      FlushRun& cand = flush_runs_[probe];
      if (cand.epoch == flush_epoch_) {
        if (cand.at_ps == n.at_ps) {
          run = &cand;
          break;
        }
      } else if (claim == nullptr) {
        claim = &cand;
      }
    }
    if (run != nullptr && n.seq > run->max_seq) {
      // Extends the instant's run: batch it behind one heap entry.
      if (!run->is_chain) {
        run->ref = upgrade_to_chain(run->ref);
        run->is_chain = true;
      }
      chain_append(run->ref, s, n);
      run->max_seq = n.seq;
    } else {
      n.loc = detail::kLocHeap;
      heap_push(HeapEntry{Time::picoseconds(n.at_ps), n.seq, s});
      if (run != nullptr) {
        // Below the instant's high-water mark (a cascade delivered this
        // node behind younger direct inserts): it sorts on its own entry —
        // batching it into the younger chain would jump the seq order. The
        // run itself stays open for later, higher seqs.
      } else if (claim != nullptr) {
        *claim = FlushRun{n.at_ps, flush_epoch_, n.seq, s, false};
      }
      // Both probe slots busy with other instants: stay un-batched.
    }
    s = next;
  }
  recompute_wheel_lb();
}

// ---------------------------------------------------------------------------
// Same-tick chains

std::uint32_t Simulator::alloc_chain(std::int64_t at_ps) {
  std::uint32_t ci;
  if (free_chains_.empty()) {
    ci = static_cast<std::uint32_t>(chains_.size());
    // chains_ is reserved in the constructor and only grows past that
    // under pathological same-tick nesting; steady state recycles through
    // free_chains_.
    // NOLINTNEXTLINE(rrtcp-hot-path-alloc)
    chains_.push_back(Chain{});
  } else {
    ci = free_chains_.back();
    free_chains_.pop_back();
  }
  Chain& c = chains_[ci];
  c.head = c.tail = detail::kNilLink;
  c.count = 0;
  c.at_ps = at_ps;
  return ci;
}

// Turn a single heap-resident event into the first member of a chain. The
// chain's heap entry inherits the anchor's (at, seq) key — its sort
// position is unchanged — and the anchor's old entry goes stale.
std::uint32_t Simulator::upgrade_to_chain(std::uint32_t anchor_slot) {
  detail::EventNode& a = node(anchor_slot);
  const std::uint32_t ci = alloc_chain(a.at_ps);
  Chain& c = chains_[ci];
  a.loc = detail::kLocChain;
  a.owner = ci;
  a.prev = detail::kNilLink;
  a.next = detail::kNilLink;
  c.head = c.tail = anchor_slot;
  c.count = 1;
  ++stale_heap_;  // the anchor's plain entry is now dead
  heap_push(HeapEntry{Time::picoseconds(a.at_ps), a.seq, kChainFlag | ci});
  return ci;
}

void Simulator::chain_append(std::uint32_t ci, std::uint32_t slot,
                             detail::EventNode& n) {
  Chain& c = chains_[ci];
  n.loc = detail::kLocChain;
  n.owner = ci;
  n.next = detail::kNilLink;
  n.prev = c.tail;
  node(c.tail).next = slot;
  c.tail = slot;
  ++c.count;
}

void Simulator::chain_unlink(detail::EventNode& n) {
  Chain& c = chains_[n.owner];
  if (n.prev == detail::kNilLink)
    c.head = n.next;
  else
    node(n.prev).next = n.next;
  if (n.next == detail::kNilLink)
    c.tail = n.prev;
  else
    node(n.next).prev = n.prev;
  // An emptied chain leaves its heap entry behind as a corpse; it is
  // reaped (and the chain index recycled) when it reaches the top or the
  // heap compacts.
  if (--c.count == 0) ++stale_heap_;
}

void Simulator::insert_same_tick(std::uint32_t slot, detail::EventNode& n) {
  const std::int64_t t = n.at_ps;
  if (cache_is_chain_) {
    Chain& c = chains_[cache_ref_];
    // The tail-seq check defeats ABA on recycled chain indexes: only the
    // chain whose tail is literally the previous insert may be extended.
    if (c.count > 0 && c.at_ps == t && node(c.tail).seq == cache_seq_) {
      chain_append(cache_ref_, slot, n);
      cache_seq_ = n.seq;
      return;
    }
  } else {
    detail::EventNode& a = node(cache_ref_);
    if (a.seq == cache_seq_ && a.loc == detail::kLocHeap && a.at_ps == t) {
      const std::uint32_t ci = upgrade_to_chain(cache_ref_);
      chain_append(ci, slot, n);
      cache_is_chain_ = true;
      cache_ref_ = ci;
      cache_seq_ = n.seq;
      return;
    }
  }
  // Anchor fired, cancelled, or moved since it was cached: start a fresh
  // run at the same instant (cache_at_ps_ already == t).
  n.loc = detail::kLocHeap;
  cache_ref_ = slot;
  cache_seq_ = n.seq;
  cache_is_chain_ = false;
  heap_push(HeapEntry{Time::picoseconds(t), n.seq, slot});
}

// ---------------------------------------------------------------------------
// Cancellation / reschedule

bool Simulator::cancel_event(std::uint32_t slot, std::uint64_t seq) {
  if (seq == 0) return false;
  detail::EventNode& n = node(slot);
  if (n.seq != seq) return false;  // already fired, cancelled, or recycled
  const std::uint8_t loc = n.loc;
  if (loc == detail::kLocChain)
    chain_unlink(n);
  else if (loc >= detail::kLocWheel0)
    wheel_unlink(n);
  n.fn.reset();  // release captured resources eagerly
  n.seq = 0;
  n.loc = detail::kLocFree;
  // The slot is reusable immediately: a heap resident's entry still
  // carries the old seq and is recognized as stale when it surfaces.
  free_slot(slot);
  --live_events_;
  if (loc == detail::kLocHeap) note_stale();
  return true;
}

EventHandle Simulator::reschedule_at(const EventHandle& h, Time at) {
  RRTCP_ASSERT(h.sim_ == this);
  RRTCP_ASSERT_MSG(at >= now_, "cannot schedule an event in the past");
  detail::EventNode& n = node(h.slot_);
  RRTCP_ASSERT_MSG(h.seq_ != 0 && n.seq == h.seq_,
                   "reschedule_at requires a pending event");
  const std::uint8_t loc = n.loc;
  if (loc == detail::kLocChain)
    chain_unlink(n);
  else if (loc >= detail::kLocWheel0)
    wheel_unlink(n);
  // Re-sequencing keeps FIFO semantics identical to cancel + schedule;
  // the stored callable and slot are reused untouched. A stale cache
  // pointing at the old identity self-invalidates via the seq change.
  n.seq = ++last_seq_;
  n.at_ps = at.ps();
  if (loc == detail::kLocHeap) note_stale();
  insert_event(h.slot_, n);
  return EventHandle{this, h.slot_, n.seq};
}

// ---------------------------------------------------------------------------
// Heap

void Simulator::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  const HeapEntry e = heap_[i];
  for (;;) {
    const std::size_t first = (i << 2) + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = first + 4 < n ? first + 4 : n;
    for (std::size_t c = first + 1; c < last; ++c)
      if (before(heap_[c], heap_[best])) best = c;
    if (!before(heap_[best], e)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

void Simulator::heap_pop_top() {
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

// Rebuild the heap without its corpses: filter live entries in place,
// then Floyd-heapify (bottom-up sift-down, O(n)).
void Simulator::compact_heap() {
  std::size_t w = 0;
  for (const HeapEntry& e : heap_) {
    if (e.slot & kChainFlag) {
      const std::uint32_t ci = e.slot & ~kChainFlag;
      if (chains_[ci].count > 0)
        heap_[w++] = e;
      else
        free_chain(ci);
    } else if (node(e.slot).seq == e.seq &&
               node(e.slot).loc == detail::kLocHeap) {
      heap_[w++] = e;
    }
  }
  heap_.resize(w);
  if (w > 1)
    for (std::size_t i = (w - 2) >> 2;; --i) {
      sift_down(i);
      if (i == 0) break;
    }
  stale_heap_ = 0;
}

bool Simulator::heap_settle_top() {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_[0];
    if (top.slot & kChainFlag) {
      const std::uint32_t ci = top.slot & ~kChainFlag;
      if (chains_[ci].count > 0) return true;
      free_chain(ci);  // fully cancelled chain
    } else if (node(top.slot).seq == top.seq &&
               node(top.slot).loc == detail::kLocHeap) {
      return true;
    }
    RRTCP_DASSERT(stale_heap_ > 0);
    --stale_heap_;
    heap_pop_top();
  }
  return false;
}

bool Simulator::settle_ready(std::int64_t limit_ps) {
  for (;;) {
    const bool live = heap_settle_top();
    if (wheel_count_ == 0) return live;
    // The wheel can only hold events at wheel_lb_ps_ or later, so a live
    // heap top strictly earlier than that is globally next already.
    if (live && heap_[0].at.ps() < wheel_lb_ps_) return true;
    // Nothing in the wheel is due within the limit: leave it staged.
    if (wheel_lb_ps_ > limit_ps) return live;
    advance_wheel_once();
  }
}

// ---------------------------------------------------------------------------
// Execution

void Simulator::fire_node(std::uint32_t slot, detail::EventNode& n) {
  RRTCP_ASSERT(n.at_ps >= now_.ps());
  now_ = Time::picoseconds(n.at_ps);
  // Consume the occupancy before invoking so the handle reports "not
  // pending" and a self-cancel inside the callback is a no-op. The slot
  // returns to the free list only after the callback finishes — its
  // captures live in the slot's inline buffer.
  n.seq = 0;
  n.loc = detail::kLocFree;
  --live_events_;
  ++executed_;
  n.fn.consume();
  free_slot(slot);
}

void Simulator::fire_next() {
  const HeapEntry top = heap_[0];
  if (top.slot & kChainFlag) {
    // Fire exactly one member (the head = smallest seq) per call, so
    // step()'s one-event contract holds. The shared entry is popped only
    // once its last member is gone — and is popped *before* the callback
    // runs, because the callback may cancel elsewhere and trigger a heap
    // compaction that would reap (and recycle) an empty chain itself.
    const std::uint32_t ci = top.slot & ~kChainFlag;
    Chain& c = chains_[ci];
    const std::uint32_t slot = c.head;
    detail::EventNode& n = node(slot);
    c.head = n.next;
    if (c.head == detail::kNilLink)
      c.tail = detail::kNilLink;
    else
      node(c.head).prev = detail::kNilLink;
    if (--c.count == 0) {
      heap_pop_top();
      free_chain(ci);
    }
    fire_node(slot, n);
  } else {
    heap_pop_top();
    fire_node(top.slot, node(top.slot));
  }
}

bool Simulator::step() {
  // Entries cancelled after insertion are discarded lazily here.
  if (!settle_ready(kMaxPs)) return false;
  fire_next();
  return true;
}

std::uint64_t Simulator::run() {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!stopped_ && settle_ready(kMaxPs)) {
    fire_next();
    ++n;
  }
  return n;
}

std::uint64_t Simulator::run_until(Time deadline) {
  stopped_ = false;
  const std::int64_t limit = deadline.ps();
  std::uint64_t n = 0;
  while (!stopped_ && settle_ready(limit)) {
    // Peek at the next live event without executing it. Wheel buckets
    // beyond the deadline stay staged (settle_ready never flushes them).
    if (heap_[0].at > deadline) break;
    fire_next();
    ++n;
  }
  // Only a run that exhausted the work up to `deadline` advances the clock
  // there; a stopped run leaves now_ at the stopping event's time so the
  // caller can observe when the stop happened and resume from it.
  if (!stopped_ && now_ < deadline) now_ = deadline;
  return n;
}

std::uint64_t Simulator::run_before(Time deadline) {
  stopped_ = false;
  const std::int64_t limit = deadline.ps();
  std::uint64_t n = 0;
  while (!stopped_ && settle_ready(limit)) {
    // Exclusive bound: an event at exactly `deadline` belongs to the next
    // window. settle_ready may have flushed it from the wheel into the
    // heap already; leaving it there is harmless.
    if (heap_[0].at >= deadline) break;
    fire_next();
    ++n;
  }
  if (!stopped_ && now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace rrtcp::sim
