#include "sim/simulator.hpp"

#include <utility>

#include "sim/assert.hpp"

namespace rrtcp::sim {

EventHandle Simulator::schedule_at(Time at, EventFn fn) {
  RRTCP_ASSERT_MSG(at >= now_, "cannot schedule an event in the past");
  RRTCP_ASSERT_MSG(static_cast<bool>(fn), "event callable must be non-empty");
  auto state = std::make_shared<detail::EventState>();
  state->fn = std::move(fn);
  EventHandle handle{state};
  heap_.push(HeapEntry{at, next_seq_++, std::move(state)});
  return handle;
}

bool Simulator::step() {
  // Entries cancelled after insertion are discarded lazily here.
  while (!heap_.empty()) {
    HeapEntry top = heap_.top();
    heap_.pop();
    if (top.state->cancelled) continue;
    RRTCP_ASSERT(top.at >= now_);
    now_ = top.at;
    EventFn fn = std::move(top.state->fn);
    top.state->cancelled = true;  // handle now reports "not pending"
    ++executed_;
    fn();
    return true;
  }
  return false;
}

std::uint64_t Simulator::run() {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!stopped_ && step()) ++n;
  return n;
}

std::uint64_t Simulator::run_until(Time deadline) {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!stopped_) {
    // Peek at the next live event without executing it.
    while (!heap_.empty() && heap_.top().state->cancelled) heap_.pop();
    if (heap_.empty()) break;
    if (heap_.top().at > deadline) break;
    if (step()) ++n;
  }
  // Only a run that exhausted the work up to `deadline` advances the clock
  // there; a stopped run leaves now_ at the stopping event's time so the
  // caller can observe when the stop happened and resume from it.
  if (!stopped_ && now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace rrtcp::sim
