// Inline-storage callable for the event pool.
//
// std::function heap-allocates any capture larger than its ~2-pointer SBO,
// which puts one malloc/free pair on every scheduled link delivery (the
// lambda captures a full ~128-byte Packet by value). SmallFn instead gives
// every pooled event node a fixed inline buffer sized for the largest
// hot-path capture; only pathologically large captures fall back to the
// heap, and that fallback is counted so the perf harness can assert it
// never happens on the forwarding path.
//
// SmallFn is deliberately neither copyable nor movable: instances live in
// stable pool slots (sim/simulator.hpp) and are emplaced/reset in place.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "sim/hot.hpp"

namespace rrtcp::sim {

template <std::size_t InlineBytes>
class SmallFn {
 public:
  SmallFn() = default;
  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;
  ~SmallFn() { reset(); }

  // True when a decayed `F` stores in the inline buffer (no allocation).
  template <typename F>
  static constexpr bool fits_inline() {
    using D = std::decay_t<F>;
    return sizeof(D) <= InlineBytes && alignof(D) <= alignof(std::max_align_t);
  }

  // Installs a new callable, destroying any previous one. Returns true if
  // the callable was stored inline (false = heap fallback).
  template <typename F>
  RRTCP_HOT bool emplace(F&& fn) {
    reset();
    using D = std::decay_t<F>;
    if constexpr (fits_inline<F>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
      consume_ = [](SmallFn* self) {
        D* t = self->inline_target<D>();
        (*t)();
        t->~D();
      };
      destroy_ = [](SmallFn* self) { self->inline_target<D>()->~D(); };
      return true;
    } else {
      // The counted escape hatch for oversized captures.
      // rrtcp-smallfn-inline flags the offending call site, and
      // callback_heap_fallbacks() == 0 is asserted by the alloc-regression
      // tests, so this branch is dead on the hot path.
      // NOLINTNEXTLINE(rrtcp-hot-path-alloc)
      heap_ = new D(std::forward<F>(fn));
      consume_ = [](SmallFn* self) {
        D* t = static_cast<D*>(self->heap_);
        (*t)();
        delete t;
      };
      destroy_ = [](SmallFn* self) { delete static_cast<D*>(self->heap_); };
      return false;
    }
  }

  // Destroys the stored callable (releasing captured resources eagerly).
  RRTCP_HOT void reset() {
    if (destroy_ != nullptr) {
      destroy_(this);
      destroy_ = nullptr;
      consume_ = nullptr;
      heap_ = nullptr;
    }
  }

  // Invokes the stored callable and destroys it afterwards — one indirect
  // call instead of operator() + reset(). An event fires exactly once, so
  // the scheduler's hot path never needs invoke and destroy separately.
  // The callable must not touch this SmallFn re-entrantly (the scheduler
  // guarantees that: the slot's seq is consumed before the call, so a
  // self-cancel is a no-op and the slot cannot be re-emplaced mid-call).
  RRTCP_HOT void consume() {
    auto f = consume_;
    consume_ = nullptr;
    destroy_ = nullptr;
    f(this);
    heap_ = nullptr;
  }

  explicit operator bool() const { return consume_ != nullptr; }

 private:
  template <typename D>
  D* inline_target() {
    return std::launder(reinterpret_cast<D*>(buf_));
  }

  void (*consume_)(SmallFn*) = nullptr;
  void (*destroy_)(SmallFn*) = nullptr;
  void* heap_ = nullptr;  // non-null only for oversized callables
  alignas(std::max_align_t) unsigned char buf_[InlineBytes];
};

// SmallFn's repeat-invocable sibling: a stored callback with arguments that
// may fire any number of times (completion/notify hooks), still inline-only
// and non-copyable. Unlike SmallFn there is NO heap fallback — emplace()
// static_asserts the capture fits, so a SmallCallable member is
// allocation-free by construction, not by convention.
template <typename Sig, std::size_t InlineBytes>
class SmallCallable;

template <typename R, typename... Args, std::size_t InlineBytes>
class SmallCallable<R(Args...), InlineBytes> {
 public:
  SmallCallable() = default;
  SmallCallable(const SmallCallable&) = delete;
  SmallCallable& operator=(const SmallCallable&) = delete;
  ~SmallCallable() { reset(); }

  // True when a decayed `F` stores in the inline buffer.
  template <typename F>
  static constexpr bool fits_inline() {
    using D = std::decay_t<F>;
    return sizeof(D) <= InlineBytes && alignof(D) <= alignof(std::max_align_t);
  }

  // Installs a new callable, destroying any previous one. Oversized
  // captures are a compile error — widen InlineBytes at the member, don't
  // silently allocate.
  template <typename F>
  void emplace(F&& fn) {
    using D = std::decay_t<F>;
    static_assert(fits_inline<F>(),
                  "capture exceeds SmallCallable's inline buffer");
    reset();
    ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
    invoke_ = [](SmallCallable* self, Args... args) -> R {
      return (*self->inline_target<D>())(std::forward<Args>(args)...);
    };
    destroy_ = [](SmallCallable* self) { self->inline_target<D>()->~D(); };
  }

  void reset() {
    if (destroy_ != nullptr) {
      destroy_(this);
      destroy_ = nullptr;
      invoke_ = nullptr;
    }
  }

  // Invoke the stored callable; it stays installed (unlike SmallFn's
  // consume()). The callable may reset() or re-emplace() this object only
  // after returning.
  R operator()(Args... args) {
    return invoke_(this, std::forward<Args>(args)...);
  }

  explicit operator bool() const { return invoke_ != nullptr; }

 private:
  template <typename D>
  D* inline_target() {
    return std::launder(reinterpret_cast<D*>(buf_));
  }

  R (*invoke_)(SmallCallable*, Args...) = nullptr;
  void (*destroy_)(SmallCallable*) = nullptr;
  alignas(std::max_align_t) unsigned char buf_[InlineBytes];
};

}  // namespace rrtcp::sim
