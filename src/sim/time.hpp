// Simulation time as a strong integer type.
//
// Time is stored in integer picoseconds so that event ordering is exact and
// runs are bit-reproducible; doubles appear only at the API edges
// (Time::seconds / Time::to_seconds). The picosecond granularity lets us
// represent the serialization time of a 40-byte ACK on a 10 Gbps link
// without rounding, while int64 still spans ~106 days of simulated time.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace rrtcp::sim {

class Time {
 public:
  constexpr Time() = default;

  // Named constructors -------------------------------------------------
  static constexpr Time picoseconds(std::int64_t ps) { return Time{ps}; }
  static constexpr Time nanoseconds(std::int64_t ns) {
    return Time{ns * 1'000};
  }
  static constexpr Time microseconds(std::int64_t us) {
    return Time{us * 1'000'000};
  }
  static constexpr Time milliseconds(std::int64_t ms) {
    return Time{ms * 1'000'000'000};
  }
  static constexpr Time seconds(double s) {
    return Time{static_cast<std::int64_t>(s * 1e12 + (s >= 0 ? 0.5 : -0.5))};
  }
  static constexpr Time zero() { return Time{0}; }
  static constexpr Time infinity() {
    return Time{std::numeric_limits<std::int64_t>::max()};
  }

  // Serialization time of `bytes` at `bits_per_second`.
  static constexpr Time transmission(std::int64_t bytes,
                                     std::int64_t bits_per_second) {
    // bytes*8*1e12 can overflow int64 for jumbo values; split the multiply.
    const std::int64_t bits = bytes * 8;
    const std::int64_t whole = bits / bits_per_second;
    const std::int64_t rem = bits % bits_per_second;
    return Time{whole * 1'000'000'000'000 +
                rem * 1'000'000'000'000 / bits_per_second};
  }

  // Accessors -----------------------------------------------------------
  constexpr std::int64_t ps() const { return ps_; }
  constexpr double to_seconds() const { return static_cast<double>(ps_) / 1e12; }
  constexpr bool is_infinite() const {
    return ps_ == std::numeric_limits<std::int64_t>::max();
  }

  // Arithmetic ----------------------------------------------------------
  friend constexpr Time operator+(Time a, Time b) { return Time{a.ps_ + b.ps_}; }
  friend constexpr Time operator-(Time a, Time b) { return Time{a.ps_ - b.ps_}; }
  friend constexpr Time operator*(Time a, std::int64_t k) {
    return Time{a.ps_ * k};
  }
  friend constexpr Time operator*(std::int64_t k, Time a) { return a * k; }
  friend constexpr Time operator/(Time a, std::int64_t k) {
    return Time{a.ps_ / k};
  }
  friend constexpr std::int64_t operator/(Time a, Time b) {
    return a.ps_ / b.ps_;
  }
  constexpr Time& operator+=(Time o) {
    ps_ += o.ps_;
    return *this;
  }
  constexpr Time& operator-=(Time o) {
    ps_ -= o.ps_;
    return *this;
  }

  friend constexpr auto operator<=>(Time, Time) = default;

  std::string to_string() const;

 private:
  explicit constexpr Time(std::int64_t ps) : ps_{ps} {}
  std::int64_t ps_{0};
};

inline std::string Time::to_string() const {
  if (is_infinite()) return "+inf";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9fs", to_seconds());
  return buf;
}

}  // namespace rrtcp::sim
