// Invariant checking for rrtcp.
//
// RRTCP_ASSERT is always compiled in (simulation correctness beats the
// negligible cost of a predictable branch); RRTCP_DASSERT compiles away in
// NDEBUG builds and is meant for hot-path checks.
//
// Context dumps: a failing check prints expr/file/line as usual, then — if a
// context provider is registered — whatever that provider knows about the
// recent past. The audit layer (src/audit) registers one per simulation that
// prints the current sim-time and its ring buffer of recent protocol events,
// so an aborting run ends with the event history that led to the violation
// instead of a bare expression. The provider slot is thread_local: parallel
// sweep workers each audit their own simulation without synchronizing.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace rrtcp {

// Thrown instead of aborting while an AssertTrapScope is armed on the
// current thread. `id()` is the stable failure identifier ("ASSERT" for
// plain assertion failures, the invariant ID for audit failures); `detail()`
// is the human-readable message. Derived from std::runtime_error so generic
// catch sites (the sweep pool's per-job try block) still contain it.
class TrappedAbort : public std::runtime_error {
 public:
  TrappedAbort(std::string id, std::string detail)
      : std::runtime_error("rrtcp trapped abort [" + id + "]: " + detail),
        id_{std::move(id)},
        detail_{std::move(detail)} {}
  const std::string& id() const { return id_; }
  const std::string& detail() const { return detail_; }

 private:
  std::string id_;
  std::string detail_;
};

// A context provider dumps human-readable state to `out`. `arg` is whatever
// was registered alongside the function (typically the auditor itself).
using AssertContextFn = void (*)(void* arg, std::FILE* out);

namespace detail {
inline thread_local AssertContextFn assert_context_fn = nullptr;
inline thread_local void* assert_context_arg = nullptr;
inline thread_local bool assert_trap_armed = false;
}  // namespace detail

// While alive, assertion and audit failures on THIS thread throw
// TrappedAbort instead of aborting the process. The scenario fuzzer's
// oracle stack runs each generated case under one of these so a tripped
// invariant becomes a machine-readable failure report (oracle kind +
// stable ID) that can be bucketed, shrunk and replayed — not a dead
// campaign. Scopes nest; the previous state is restored on destruction.
// Everything outside a scope keeps the fail-fast abort behavior.
class AssertTrapScope {
 public:
  AssertTrapScope() : prev_{detail::assert_trap_armed} {
    detail::assert_trap_armed = true;
  }
  ~AssertTrapScope() { detail::assert_trap_armed = prev_; }
  AssertTrapScope(const AssertTrapScope&) = delete;
  AssertTrapScope& operator=(const AssertTrapScope&) = delete;

  static bool armed() { return detail::assert_trap_armed; }

 private:
  bool prev_;
};

// Registers (or, with nullptr, clears) this thread's context provider.
// Returns the previous provider so scoped users can restore it.
inline AssertContextFn set_assert_context(AssertContextFn fn, void* arg) {
  AssertContextFn prev = detail::assert_context_fn;
  detail::assert_context_fn = fn;
  detail::assert_context_arg = arg;
  return prev;
}

inline void dump_assert_context(std::FILE* out) {
  if (detail::assert_context_fn != nullptr)
    detail::assert_context_fn(detail::assert_context_arg, out);
}

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  if (detail::assert_trap_armed) {
    std::string detail{expr};
    detail += " at ";
    detail += file;
    detail += ":";
    detail += std::to_string(line);
    if (msg != nullptr) {
      detail += " — ";
      detail += msg;
    }
    throw TrappedAbort{"ASSERT", std::move(detail)};
  }
  std::fprintf(stderr, "rrtcp assertion failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg ? msg : "");
  dump_assert_context(stderr);
  std::abort();
}

// Audit-layer failure: an invariant with a stable ID (see
// src/audit/invariant_auditor.hpp) was violated. Prints the ID, the
// human-readable detail, then the registered context (sim-time + recent
// protocol events) before aborting.
[[noreturn]] inline void audit_fail(const char* invariant_id,
                                    const char* detail, const char* file,
                                    int line) {
  if (detail::assert_trap_armed)
    throw TrappedAbort{invariant_id, detail != nullptr ? detail : ""};
  std::fprintf(stderr,
               "rrtcp protocol invariant violated: %s\n  at %s:%d\n  %s\n",
               invariant_id, file, line, detail ? detail : "");
  dump_assert_context(stderr);
  std::abort();
}

}  // namespace rrtcp

#define RRTCP_ASSERT(expr)                                          \
  do {                                                              \
    if (!(expr)) ::rrtcp::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define RRTCP_ASSERT_MSG(expr, msg)                              \
  do {                                                           \
    if (!(expr)) ::rrtcp::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)

// Unconditional audit failure with a stable invariant ID; used by the audit
// layer's abort mode. `id` and `detail` are C strings.
#define RR_AUDIT_FAIL(id, detail) \
  ::rrtcp::audit_fail((id), (detail), __FILE__, __LINE__)

#ifdef NDEBUG
#define RRTCP_DASSERT(expr) ((void)0)
#else
#define RRTCP_DASSERT(expr) RRTCP_ASSERT(expr)
#endif
