// Invariant checking for rrtcp.
//
// RRTCP_ASSERT is always compiled in (simulation correctness beats the
// negligible cost of a predictable branch); RRTCP_DASSERT compiles away in
// NDEBUG builds and is meant for hot-path checks.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace rrtcp {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "rrtcp assertion failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg ? msg : "");
  std::abort();
}

}  // namespace rrtcp

#define RRTCP_ASSERT(expr)                                          \
  do {                                                              \
    if (!(expr)) ::rrtcp::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define RRTCP_ASSERT_MSG(expr, msg)                              \
  do {                                                           \
    if (!(expr)) ::rrtcp::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define RRTCP_DASSERT(expr) ((void)0)
#else
#define RRTCP_DASSERT(expr) RRTCP_ASSERT(expr)
#endif
