#include "sim/log.hpp"

#include <cstdio>

namespace rrtcp::sim {

namespace {
LogLevel g_level = LogLevel::kOff;
}

void Log::set_level(LogLevel level) { g_level = level; }

LogLevel Log::level() { return g_level; }

void Log::write(LogLevel level, Time now, const char* component,
                const char* fmt, ...) {
  if (!enabled(level)) return;
  std::fprintf(stderr, "%12.6f [%-12s] ", now.to_seconds(), component);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace rrtcp::sim
