#include "sim/log.hpp"

#include <atomic>
#include <cstdio>

namespace rrtcp::sim {

namespace {
// Atomic: the sweep harness runs simulations on worker threads, and the
// level check sits on their hot paths.
std::atomic<LogLevel> g_level{LogLevel::kOff};
}

void Log::set_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel Log::level() { return g_level.load(std::memory_order_relaxed); }

void Log::write(LogLevel level, Time now, const char* component,
                const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  vwrite(level, now, component, fmt, args);
  va_end(args);
}

void Log::vwrite(LogLevel level, Time now, const char* component,
                 const char* fmt, std::va_list args) {
  if (!enabled(level)) return;
  std::fprintf(stderr, "%12.6f [%-12s] ", now.to_seconds(), component);
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
}

}  // namespace rrtcp::sim
