// Hot-path / cold-path annotations for the rrtcp-tidy static contracts.
//
// RRTCP_HOT marks a function as part of the per-event / per-packet hot
// path: the rrtcp-hot-path-alloc check (tools/tidy) walks everything a hot
// function transitively calls within its translation unit and turns any
// reachable allocation — operator new, make_unique/make_shared, allocating
// std container methods — into a diagnostic. The 0-allocs/event and
// 0-allocs/packet contracts (DESIGN.md §11) thereby become compile-time
// errors under the tidy-plugin CI job instead of runtime bench findings.
//
// RRTCP_COLD marks an *audited* cold path reachable from hot code: a
// function that may allocate, deliberately and rarely (pool/ring growth,
// heap compaction, diagnostics). The checker does not descend into cold
// functions. Marking something cold is a reviewed claim that its
// allocations are amortized away in steady state — the runtime gates
// (tests/sim/test_alloc_regression.cpp, bench_micro's alloc columns, and
// scripts/check_perf_trajectory.py) remain the ground truth that the
// claim holds.
//
// Allocating statements that stay *inside* a hot function because the
// backing container's capacity is provably pinned (reserved at
// construction, hard-capped) are suppressed in place with
//   // NOLINT(rrtcp-hot-path-alloc): <justification>
// — see DESIGN.md §14 for the suppression discipline.
//
// Under GCC the annotations expand to nothing: [[clang::annotate]] is a
// Clang extension, and -Wattributes + -Werror would otherwise reject it.
#pragma once

#if defined(__clang__)
#define RRTCP_HOT [[clang::annotate("rrtcp::hot")]]
#define RRTCP_COLD [[clang::annotate("rrtcp::cold")]]
#else
#define RRTCP_HOT
#define RRTCP_COLD
#endif
