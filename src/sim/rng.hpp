// Deterministic random number generation.
//
// xoshiro256** seeded through SplitMix64, following the reference
// implementations by Blackman & Vigna (public domain). Every stochastic
// component of a scenario takes its own named stream so that adding a new
// consumer of randomness does not perturb existing ones: the stream name is
// hashed into the seed.
#pragma once

#include <cstdint>
#include <string_view>

#include "sim/assert.hpp"

namespace rrtcp::sim {

class Rng {
 public:
  // A single global-looking default keeps tests terse; scenarios should use
  // the (seed, stream) form.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);
  Rng(std::uint64_t seed, std::string_view stream_name);

  // Raw 64 random bits.
  std::uint64_t next_u64();

  // Uniform double in [0, 1).
  double uniform01();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi);

  // Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  // Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

 private:
  void seed_from(std::uint64_t seed);
  std::uint64_t s_[4];
};

// FNV-1a, used to mix stream names into seeds; exposed for tests.
std::uint64_t hash_name(std::string_view name);

}  // namespace rrtcp::sim
