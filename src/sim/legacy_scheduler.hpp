// The pre-pooling event scheduler, preserved verbatim as a baseline.
//
// This is the engine the Simulator shipped with before the calendar/pool
// rework: a std::priority_queue binary heap whose entries own a
// shared_ptr<EventState> (one allocation per event) wrapping a
// std::function (a second allocation whenever the capture outgrows the
// small-buffer optimization — every link delivery, which captures a full
// Packet). It is kept for two consumers:
//
//   * tests/sim/test_scheduler_equivalence.cpp drives randomized
//     schedule/cancel/re-entrancy workloads through both engines and
//     asserts byte-identical execution traces — the proof that the pooled
//     4-ary heap preserved the (time, insertion-seq) FIFO ordering rule;
//   * bench/bench_micro.cpp measures both engines on the same
//     forwarding-shaped workload and records the speedup in
//     BENCH_micro.json (the perf-regression trajectory).
//
// Do not "optimize" this file; its value is being the fixed reference.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/assert.hpp"
#include "sim/time.hpp"

namespace rrtcp::sim {

namespace legacy_detail {
struct EventState {
  std::function<void()> fn;
  bool cancelled = false;
};
}  // namespace legacy_detail

class LegacySimulator;

class LegacyEventHandle {
 public:
  LegacyEventHandle() = default;

  bool cancel() {
    if (auto st = state_.lock(); st && !st->cancelled) {
      st->cancelled = true;
      st->fn = nullptr;
      return true;
    }
    return false;
  }

  bool pending() const {
    auto st = state_.lock();
    return st && !st->cancelled;
  }

 private:
  friend class LegacySimulator;
  explicit LegacyEventHandle(std::weak_ptr<legacy_detail::EventState> st)
      : state_{std::move(st)} {}
  std::weak_ptr<legacy_detail::EventState> state_;
};

class LegacySimulator {
 public:
  LegacySimulator() = default;
  LegacySimulator(const LegacySimulator&) = delete;
  LegacySimulator& operator=(const LegacySimulator&) = delete;

  Time now() const { return now_; }

  LegacyEventHandle schedule_at(Time at, std::function<void()> fn) {
    RRTCP_ASSERT_MSG(at >= now_, "cannot schedule an event in the past");
    RRTCP_ASSERT_MSG(static_cast<bool>(fn), "event callable must be non-empty");
    auto state = std::make_shared<legacy_detail::EventState>();
    state->fn = std::move(fn);
    LegacyEventHandle handle{state};
    heap_.push(HeapEntry{at, next_seq_++, std::move(state)});
    return handle;
  }

  LegacyEventHandle schedule_in(Time delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  std::uint64_t run() {
    stopped_ = false;
    std::uint64_t n = 0;
    while (!stopped_ && step()) ++n;
    return n;
  }

  std::uint64_t run_until(Time deadline) {
    stopped_ = false;
    std::uint64_t n = 0;
    while (!stopped_) {
      while (!heap_.empty() && heap_.top().state->cancelled) heap_.pop();
      if (heap_.empty()) break;
      if (heap_.top().at > deadline) break;
      if (step()) ++n;
    }
    if (!stopped_ && now_ < deadline) now_ = deadline;
    return n;
  }

  bool step() {
    while (!heap_.empty()) {
      HeapEntry top = heap_.top();
      heap_.pop();
      if (top.state->cancelled) continue;
      RRTCP_ASSERT(top.at >= now_);
      now_ = top.at;
      std::function<void()> fn = std::move(top.state->fn);
      top.state->cancelled = true;
      ++executed_;
      fn();
      return true;
    }
    return false;
  }

  void stop() { stopped_ = true; }

  std::size_t pending_events() const { return heap_.size(); }
  std::uint64_t events_executed() const { return executed_; }

 private:
  struct HeapEntry {
    Time at;
    std::uint64_t seq;
    std::shared_ptr<legacy_detail::EventState> state;
    friend bool operator<(const HeapEntry& a, const HeapEntry& b) {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<HeapEntry> heap_;
  Time now_ = Time::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
};

}  // namespace rrtcp::sim
