// Minimal structured trace logging.
//
// Components emit trace lines tagged with simulation time and a component
// name. Logging is off by default (benchmarks and tests stay quiet); the
// examples flip it on with --verbose. printf-style formatting keeps call
// sites compact and avoids iostream bloat in hot paths — the level check
// happens before any formatting work.
#pragma once

#include <cstdarg>
#include <string>

#include "sim/time.hpp"

namespace rrtcp::sim {

enum class LogLevel : int { kOff = 0, kInfo = 1, kDebug = 2, kTrace = 3 };

class Log {
 public:
  static void set_level(LogLevel level);
  static LogLevel level();
  static bool enabled(LogLevel level) { return level <= Log::level(); }

  // Emit one line: "<time> [component] message".
  static void write(LogLevel level, Time now, const char* component,
                    const char* fmt, ...) __attribute__((format(printf, 4, 5)));
  // va_list flavor, for sinks that forward their own variadic surface
  // (env::Environment::vtrace). Identical output to write().
  static void vwrite(LogLevel level, Time now, const char* component,
                     const char* fmt, std::va_list args);
};

}  // namespace rrtcp::sim

#define RRTCP_LOG(level, now, component, ...)                     \
  do {                                                            \
    if (::rrtcp::sim::Log::enabled(level))                        \
      ::rrtcp::sim::Log::write(level, now, component, __VA_ARGS__); \
  } while (0)

#define RRTCP_INFO(now, component, ...) \
  RRTCP_LOG(::rrtcp::sim::LogLevel::kInfo, now, component, __VA_ARGS__)
#define RRTCP_DEBUG(now, component, ...) \
  RRTCP_LOG(::rrtcp::sim::LogLevel::kDebug, now, component, __VA_ARGS__)
#define RRTCP_TRACE(now, component, ...) \
  RRTCP_LOG(::rrtcp::sim::LogLevel::kTrace, now, component, __VA_ARGS__)
