#include "sim/timer.hpp"

// Timer is header-only today; this TU anchors the library and is the home
// for any future out-of-line growth (e.g. timer wheels).
