// A restartable one-shot timer on top of the Simulator event queue.
//
// TCP uses exactly this shape: a retransmission timer that is (re)armed on
// every transmission and cancelled when the last outstanding byte is ACKed.
// The callback is fixed at construction; schedule()/cancel() control firing.
#pragma once

#include <functional>
#include <utility>

#include "sim/assert.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace rrtcp::sim {

class Timer {
 public:
  Timer(Simulator& sim, std::function<void()> on_fire)
      : sim_{sim}, on_fire_{std::move(on_fire)} {
    RRTCP_ASSERT(static_cast<bool>(on_fire_));
  }

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  ~Timer() { cancel(); }

  // Arm (or re-arm) the timer to fire `delay` from now. An already-pending
  // expiry is superseded.
  void schedule(Time delay) {
    expiry_ = sim_.now() + delay;
    if (handle_.pending()) {
      // Re-arm fast path: move the pending event instead of cancelling and
      // re-emplacing the same callable. This is the RTO shape — TCP re-arms
      // on every transmission — and it keeps the event's pooled slot and
      // stored capture; only the fire time and sequence change.
      handle_ = sim_.reschedule_in(handle_, delay);
      return;
    }
    // Dead handle (never armed, fired, or cancelled): no cancel round-trip
    // is needed. The invariant the wheel refactor leans on — a consumed
    // handle's cancel is a no-op, never a double-free — is asserted here.
    RRTCP_DASSERT(!handle_.cancel());
    handle_ = sim_.schedule_in(delay, [this] {
      // The handle is consumed by firing; it reports not-pending before the
      // callback is invoked, so the callback may re-arm the timer.
      on_fire_();
    });
  }

  // Disarm. No-op if not pending.
  void cancel() { handle_.cancel(); }

  bool pending() const { return handle_.pending(); }

  // Absolute expiry time of the last schedule() call. Meaningful only while
  // pending().
  Time expiry() const { return expiry_; }

 private:
  Simulator& sim_;
  std::function<void()> on_fire_;
  EventHandle handle_;
  Time expiry_ = Time::zero();
};

}  // namespace rrtcp::sim
