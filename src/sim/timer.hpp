// A restartable one-shot timer on top of the Simulator event queue.
//
// TCP uses exactly this shape: a retransmission timer that is (re)armed on
// every transmission and cancelled when the last outstanding byte is ACKed.
// The callback is fixed at construction; schedule()/cancel() control firing.
#pragma once

#include <functional>
#include <utility>

#include "sim/assert.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace rrtcp::sim {

class Timer {
 public:
  Timer(Simulator& sim, std::function<void()> on_fire)
      : sim_{sim}, on_fire_{std::move(on_fire)} {
    RRTCP_ASSERT(static_cast<bool>(on_fire_));
  }

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  ~Timer() { cancel(); }

  // Arm (or re-arm) the timer to fire `delay` from now. An already-pending
  // expiry is cancelled first.
  void schedule(Time delay) {
    cancel();
    expiry_ = sim_.now() + delay;
    handle_ = sim_.schedule_in(delay, [this] {
      // The handle is consumed by firing; mark not-pending before invoking
      // the callback so the callback may re-arm the timer.
      on_fire_();
    });
  }

  // Disarm. No-op if not pending.
  void cancel() { handle_.cancel(); }

  bool pending() const { return handle_.pending(); }

  // Absolute expiry time of the last schedule() call. Meaningful only while
  // pending().
  Time expiry() const { return expiry_; }

 private:
  Simulator& sim_;
  std::function<void()> on_fire_;
  EventHandle handle_;
  Time expiry_ = Time::zero();
};

}  // namespace rrtcp::sim
