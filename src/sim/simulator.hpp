// Discrete-event simulation engine.
//
// The Simulator keys its event queue by (time, insertion sequence): events
// scheduled for the same instant execute in the order they were scheduled,
// which makes every run deterministic. Events are arbitrary callables;
// cancellation is supported through EventHandle.
//
// Hot-path design (see DESIGN.md §11):
//
//  * Event callables live in pooled, chunk-allocated slots with a fixed
//    inline capture buffer (sim/small_fn.hpp) sized for the largest
//    forwarding-path lambda (a Link delivery capturing a full Packet).
//    Slots are recycled through a free list, so steady-state scheduling
//    performs zero allocations; only captures larger than
//    kEventInlineBytes fall back to the heap, and that fallback is
//    counted (callback_heap_fallbacks()).
//  * The queue is two-tiered. Near-horizon events go into an implicit
//    4-ary min-heap over 24-byte (time, seq, slot) entries. Far-future
//    events — RTO timers, fault-plan windows — go into a hierarchical
//    timer wheel (4 levels x 64 slots, level-0 granularity 2^26 ps
//    ~ 67 us, total span ~ 18.8 min) where insert AND cancel are O(1)
//    list operations that never leave stale entries behind. The wheel is
//    a staging area only: buckets are flushed into the heap before any
//    of their events can become the next to fire, so global (time, seq)
//    FIFO order is preserved exactly.
//  * Same-tick runs are batched: consecutive schedules for one instant
//    collapse into a single heap entry backed by an intrusive chain, so
//    one heap settle drains a whole burst (and a wheel bucket flush
//    re-batches the runs it pushes). Chain members cancel in O(1).
//  * A slot's occupancy is identified by the event's unique insertion
//    sequence number, so stale heap entries (cancelled events whose slot
//    was already recycled) are recognized and skipped on pop without any
//    generation-counter wraparound hazard. Stale entries are bounded: a
//    compaction pass rebuilds the heap when more than half of it is dead.
//
// The pre-pool engine is preserved in sim/legacy_scheduler.hpp; the
// scheduler-equivalence test pins the two to byte-identical execution
// traces (including a heap-only mode with the wheel disabled).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/assert.hpp"
#include "sim/hot.hpp"
#include "sim/small_fn.hpp"
#include "sim/time.hpp"

namespace rrtcp::sim {

// Convenience alias for storable event callbacks (the scheduler itself
// accepts any callable, not just std::function).
using EventFn = std::function<void()>;

// Inline capture budget per pooled event. Sized for the largest hot-path
// lambda: a chaos-injector delay capture of {this, Packet, bool} (~144
// bytes); Link's delivery capture {this, Packet} (~136 bytes) fits too.
// Call sites on the forwarding path static_assert that they stay inside
// this budget, so "allocation-free forwarding" is a compile-time property.
inline constexpr std::size_t kEventInlineBytes = 160;

namespace detail {

// Null link for the intrusive lists threaded through event slots.
inline constexpr std::uint32_t kNilLink = 0xFFFFFFFFu;

// Where an event currently lives. Cancellation and reschedule dispatch on
// this: heap residents are removed lazily (their entry goes stale), wheel
// and chain residents unlink in O(1).
enum : std::uint8_t {
  kLocFree = 0,    // slot unoccupied
  kLocHeap = 1,    // single heap entry carries it
  kLocChain = 2,   // member of a same-tick chain (one shared heap entry)
  kLocWheel0 = 3,  // wheel level = loc - kLocWheel0
};

struct EventNode {
  SmallFn<kEventInlineBytes> fn;
  // Insertion sequence of the occupying event; 0 = slot free (or the
  // event was cancelled/fired and the slot is back on the free list).
  std::uint64_t seq = 0;
  std::int64_t at_ps = 0;          // absolute fire time
  std::uint32_t next = kNilLink;   // intrusive wheel-bucket / chain list
  std::uint32_t prev = kNilLink;
  std::uint32_t owner = 0;         // chain index while loc == kLocChain
  std::uint8_t loc = kLocFree;
  std::uint8_t bucket = 0;         // wheel bucket while wheel-resident
};

}  // namespace detail

class Simulator;

// A cheap, copyable handle to a scheduled event. A default-constructed
// handle refers to no event. Cancelling an already-fired or already-
// cancelled event is a harmless no-op. Handles must not outlive the
// Simulator that issued them.
class EventHandle {
 public:
  EventHandle() = default;

  // Returns true if the event was pending and is now cancelled.
  bool cancel();

  // True while the event is still waiting to fire.
  bool pending() const;

 private:
  friend class Simulator;
  EventHandle(Simulator* sim, std::uint32_t slot, std::uint64_t seq)
      : sim_{sim}, slot_{slot}, seq_{seq} {}
  Simulator* sim_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint64_t seq_ = 0;
};

class Simulator {
 public:
  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Current simulation time. Monotonically non-decreasing.
  Time now() const { return now_; }

  // True when a callable of type F schedules without touching the heap
  // allocator — the compile-time check behind allocation-free forwarding.
  template <typename F>
  static constexpr bool fits_inline() {
    return SmallFn<kEventInlineBytes>::template fits_inline<F>();
  }

  // Schedule `fn` to run at absolute time `at` (must be >= now()).
  template <typename F>
  RRTCP_HOT EventHandle schedule_at(Time at, F&& fn) {
    RRTCP_ASSERT_MSG(at >= now_, "cannot schedule an event in the past");
    if constexpr (requires { static_cast<bool>(fn); }) {
      RRTCP_ASSERT_MSG(static_cast<bool>(fn),
                       "event callable must be non-empty");
    }
    const std::uint32_t slot = alloc_slot();
    detail::EventNode& n = node(slot);
    if (!n.fn.emplace(std::forward<F>(fn))) ++fallback_allocs_;
    n.seq = ++last_seq_;
    n.at_ps = at.ps();
    ++live_events_;
    insert_event(slot, n);
    return EventHandle{this, slot, n.seq};
  }

  // Schedule `fn` to run `delay` from now (delay must be >= 0).
  template <typename F>
  RRTCP_HOT EventHandle schedule_in(Time delay, F&& fn) {
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  // Move a pending event to a new fire time, keeping its slot and stored
  // callable (no capture destroy/re-emplace, no free-list round-trip).
  // The event is re-sequenced as if it had been cancelled and scheduled
  // afresh, so FIFO order among same-instant events is identical to a
  // cancel() + schedule_at() pair. The handle passed in is dead afterwards;
  // use the returned one. Asserts if `h` is not pending.
  RRTCP_HOT EventHandle reschedule_at(const EventHandle& h, Time at);
  RRTCP_HOT EventHandle reschedule_in(const EventHandle& h, Time delay) {
    return reschedule_at(h, now_ + delay);
  }

  // Run until the event queue drains or stop() is called.
  // Returns the number of events executed.
  RRTCP_HOT std::uint64_t run();

  // Run until simulation time reaches `deadline` (events at exactly
  // `deadline` are executed), the queue drains, or stop() is called.
  RRTCP_HOT std::uint64_t run_until(Time deadline);

  // Run events strictly before `deadline` (events at exactly `deadline`
  // stay pending), then advance the clock to `deadline`. This is the
  // half-open window primitive for conservative sharded execution: a
  // round covering [T_k, T_{k+1}) must leave events stamped T_{k+1} for
  // the next round, after cross-shard arrivals for T_{k+1} have merged.
  RRTCP_HOT std::uint64_t run_before(Time deadline);

  // Execute at most one pending event. Returns false if the queue is empty.
  RRTCP_HOT bool step();

  // Request that run()/run_until() return after the current event.
  void stop() { stopped_ = true; }

  // Number of live events waiting to fire. Cancelled events are excluded
  // immediately (even though a lazily-removed heap entry may still be
  // physically present — see heap_entries()/stale_heap_entries()).
  std::size_t pending_events() const {
    return static_cast<std::size_t>(live_events_);
  }

  std::uint64_t events_executed() const { return executed_; }

  // Pool introspection (perf harness / allocation-regression tests).
  // Total pooled event slots ever created (the pool never shrinks).
  std::size_t event_pool_slots() const { return chunks_.size() * kChunkSize; }
  // Events whose capture exceeded kEventInlineBytes and hit the heap.
  std::uint64_t callback_heap_fallbacks() const { return fallback_allocs_; }
  // Physical heap entries, including lazily-cancelled (stale) ones.
  std::size_t heap_entries() const { return heap_.size(); }
  std::size_t stale_heap_entries() const { return stale_heap_; }
  // Events currently staged in the timer wheel.
  std::size_t wheel_events() const { return wheel_count_; }

  // Test hook: route every event through the heap (the pre-wheel shape).
  // The differential suite runs the randomized workloads in both modes.
  // May only be toggled while the wheel is empty.
  void set_timer_wheel_enabled(bool on) {
    RRTCP_ASSERT_MSG(wheel_count_ == 0,
                     "cannot toggle the timer wheel while it holds events");
    wheel_enabled_ = on;
  }
  bool timer_wheel_enabled() const { return wheel_enabled_; }

 private:
  friend class EventHandle;

  struct HeapEntry {
    Time at;
    std::uint64_t seq;
    // Slot index of a single event, or kChainFlag | chain index for a
    // batched same-tick run.
    std::uint32_t slot;
  };
  static constexpr std::uint32_t kChainFlag = 0x80000000u;

  // A same-tick run: seq-contiguous events at one instant sharing a single
  // heap entry keyed by (at, seq of the first member). Members form an
  // intrusive doubly-linked list through their EventNodes and fire head-
  // first, which is exactly ascending-seq order.
  struct Chain {
    std::uint32_t head;
    std::uint32_t tail;
    std::uint32_t count;
    std::int64_t at_ps;
  };

  // Min-order on (at, seq): FIFO among events at the same instant.
  static bool before(const HeapEntry& a, const HeapEntry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  static constexpr std::size_t kChunkShift = 9;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;

  // Timer-wheel geometry. Level k buckets are 2^(kWheelShift0 + 6k) ps
  // wide: ~67 us, ~4.3 ms, ~275 ms, ~17.6 s — level 3 spans ~18.8 min.
  // Events past the whole span (rare: watchdog horizons) use the heap.
  static constexpr int kWheelLevels = 4;
  static constexpr int kWheelSlotBits = 6;
  static constexpr int kWheelSlots = 1 << kWheelSlotBits;
  static constexpr int kWheelShift0 = 26;
  static constexpr std::int64_t kMaxPs = INT64_MAX;
  static constexpr std::int64_t kNoCache = -1;

  // Compact the heap once it is more than half stale (and big enough for
  // the rebuild to be worth it). Bounds heap memory at ~2x the live count
  // under cancel storms.
  static constexpr std::size_t kCompactMin = 1024;

  detail::EventNode& node(std::uint32_t slot) {
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }
  const detail::EventNode& node(std::uint32_t slot) const {
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }

  // Slot alloc/free, classification, and heap_push are the per-schedule
  // fast path; they are defined inline (below the class) so schedule_at()
  // — itself a template instantiated at every call site — compiles down
  // to straight-line code with no out-of-line calls except when the pool
  // has to grow, a same-tick run forms, or the event is wheel-bound.
  RRTCP_HOT std::uint32_t alloc_slot() {
    if (free_.empty()) grow_pool();
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    return slot;
  }
  RRTCP_HOT void free_slot(std::uint32_t slot) {
    // free_ is reserved to the full pool size by grow_pool(), so this
    // push_back never reallocates.
    // NOLINTNEXTLINE(rrtcp-hot-path-alloc)
    free_.push_back(slot);
  }
  RRTCP_COLD void grow_pool();

  RRTCP_HOT bool cancel_event(std::uint32_t slot, std::uint64_t seq);
  bool event_pending(std::uint32_t slot, std::uint64_t seq) const {
    return seq != 0 && node(slot).seq == seq;
  }

  // Route a freshly-sequenced node into wheel, chain, or heap.
  RRTCP_HOT void insert_event(std::uint32_t slot, detail::EventNode& n) {
    if (wheel_enabled_ &&
        (n.at_ps >> kWheelShift0) > (wheel_now_ps_ >> kWheelShift0)) {
      insert_far(slot, n);
      return;
    }
    insert_near(slot, n);
  }

  // Near-horizon (or wheel-overflow): heap entry, with the same-tick run
  // cache deciding whether this event extends an open chain.
  RRTCP_HOT void insert_near(std::uint32_t slot, detail::EventNode& n) {
    if (n.at_ps == cache_at_ps_) {
      insert_same_tick(slot, n);
      return;
    }
    n.loc = detail::kLocHeap;
    cache_at_ps_ = n.at_ps;
    cache_ref_ = slot;
    cache_seq_ = n.seq;
    cache_is_chain_ = false;
    heap_push(HeapEntry{Time::picoseconds(n.at_ps), n.seq, slot});
  }

  RRTCP_HOT void insert_far(std::uint32_t slot, detail::EventNode& n);
  RRTCP_HOT void insert_same_tick(std::uint32_t slot, detail::EventNode& n);

  // Wheel internals (simulator.cpp).
  RRTCP_HOT void wheel_link(int level, std::uint32_t slot,
                            detail::EventNode& n);
  RRTCP_HOT void wheel_unlink(detail::EventNode& n);
  RRTCP_HOT void advance_wheel_once();
  RRTCP_HOT void recompute_wheel_lb();

  // Chain internals.
  RRTCP_HOT std::uint32_t alloc_chain(std::int64_t at_ps);
  RRTCP_HOT void free_chain(std::uint32_t ci) {
    // free_chains_ never outgrows chains_, whose growth is the audited
    // (reserved, amortized) path.
    // NOLINTNEXTLINE(rrtcp-hot-path-alloc)
    free_chains_.push_back(ci);
  }
  RRTCP_HOT std::uint32_t upgrade_to_chain(std::uint32_t anchor_slot);
  RRTCP_HOT void chain_append(std::uint32_t ci, std::uint32_t slot,
                              detail::EventNode& n);
  RRTCP_HOT void chain_unlink(detail::EventNode& n);

  RRTCP_HOT void heap_push(HeapEntry e) {
    std::size_t i = heap_.size();
    // heap_ is grow-only with a reserved floor; steady-state churn stays
    // within the warmed capacity (compaction bounds it at ~2x live), so
    // growth is amortized warm-up.
    // NOLINTNEXTLINE(rrtcp-hot-path-alloc)
    heap_.push_back(e);
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!before(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }
  RRTCP_HOT void sift_down(std::size_t i);
  RRTCP_HOT void heap_pop_top();
  // Drops stale (cancelled) entries off the top; true if a live top remains.
  RRTCP_HOT bool heap_settle_top();
  // Settles the heap against the wheel: flushes every wheel bucket that
  // could hold an event due at or before min(heap top, limit_ps), then
  // reports whether a live heap top exists. After it returns true,
  // heap_[0] is the globally next event in (at, seq) order.
  RRTCP_HOT bool settle_ready(std::int64_t limit_ps);
  // Executes the next event (one chain member at most per call); caller
  // must have settle_ready() == true.
  RRTCP_HOT void fire_next();
  RRTCP_HOT void fire_node(std::uint32_t slot, detail::EventNode& n);
  // Lazy-cancellation bookkeeping: count a newly-dead heap entry and
  // compact when the heap is mostly corpses.
  RRTCP_HOT void note_stale() {
    if (++stale_heap_ >= kCompactMin && stale_heap_ * 2 > heap_.size())
      compact_heap();
  }
  RRTCP_COLD void compact_heap();

  std::vector<HeapEntry> heap_;
  std::vector<std::unique_ptr<detail::EventNode[]>> chunks_;
  std::vector<std::uint32_t> free_;

  // Same-tick run cache: the instant and identity of the most recent heap
  // insert, so the next same-instant insert can extend it into / along a
  // chain. cache_seq_ is the seq of the single anchor, or of the chain's
  // tail member — a mismatch means the anchor fired/cancelled/moved (or
  // the chain index was recycled) and the cache is stale.
  std::int64_t cache_at_ps_ = kNoCache;
  std::uint32_t cache_ref_ = 0;
  std::uint64_t cache_seq_ = 0;
  bool cache_is_chain_ = false;

  std::vector<Chain> chains_;
  std::vector<std::uint32_t> free_chains_;

  // Open same-instant runs during a wheel flush, keyed by instant in a
  // small direct-mapped table (2-way probe, claim-once, never evicted
  // within a flush). A bucket flush visits instants in list order, which
  // interleaves arbitrarily — a single "current run" would only batch
  // consecutive same-instant nodes (and, worse, could re-open an instant
  // at a lower key and then absorb higher seqs past a mid-key entry,
  // breaking FIFO). The table keeps one run per instant alive for the
  // whole flush with a monotone seq high-water mark: a node batches only
  // if its seq exceeds everything already emitted for that instant, so
  // chain member ranges of same-instant heap entries never overlap and
  // the heap's (at, seq) tie-break yields exact insertion order.
  // `epoch` tags entries per advance_wheel_once() call; stale entries
  // from earlier flushes never match and need no clearing.
  struct FlushRun {
    std::int64_t at_ps = 0;
    std::uint64_t epoch = 0;
    std::uint64_t max_seq = 0;  // highest seq emitted for this instant
    std::uint32_t ref = 0;      // anchor slot, or chain index if is_chain
    bool is_chain = false;
  };
  static constexpr std::uint32_t kFlushRunSlots = 128;  // power of two
  static std::uint32_t flush_slot_of(std::int64_t at_ps) {
    return static_cast<std::uint32_t>(
               (static_cast<std::uint64_t>(at_ps) * 0x9E3779B97F4A7C15ULL) >>
               57) &
           (kFlushRunSlots - 1);
  }
  std::array<FlushRun, kFlushRunSlots> flush_runs_{};
  std::uint64_t flush_epoch_ = 0;

  // Timer wheel: per-level bucket lists + occupancy bitmaps. wheel_now_ps_
  // is the monotone "flushed up to" horizon (>= bucket start of everything
  // already moved to the heap, <= every event still in the wheel);
  // wheel_lb_ps_ caches a lower bound on the earliest wheel event (exact
  // after a flush; may be stale-low after cancellations, which only costs
  // a spurious flush, never a missed event).
  std::uint32_t wheel_head_[kWheelLevels][kWheelSlots];
  std::uint32_t wheel_tail_[kWheelLevels][kWheelSlots];
  std::uint64_t wheel_bits_[kWheelLevels] = {};
  std::int64_t wheel_now_ps_ = 0;
  std::int64_t wheel_lb_ps_ = kMaxPs;
  std::size_t wheel_count_ = 0;
  bool wheel_enabled_ = true;

  std::size_t stale_heap_ = 0;
  std::uint64_t live_events_ = 0;

  Time now_ = Time::zero();
  std::uint64_t last_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t fallback_allocs_ = 0;
  bool stopped_ = false;
};

inline bool EventHandle::cancel() {
  return sim_ != nullptr && sim_->cancel_event(slot_, seq_);
}

inline bool EventHandle::pending() const {
  return sim_ != nullptr && sim_->event_pending(slot_, seq_);
}

}  // namespace rrtcp::sim
