// Discrete-event simulation engine.
//
// The Simulator owns a binary-heap event queue keyed by (time, insertion
// sequence): events scheduled for the same instant execute in the order they
// were scheduled, which makes every run deterministic. Events are arbitrary
// callables; cancellation is supported through EventHandle without removing
// entries from the heap (lazy deletion).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace rrtcp::sim {

using EventFn = std::function<void()>;

namespace detail {
struct EventState {
  EventFn fn;
  bool cancelled = false;
};
}  // namespace detail

// A cheap, copyable handle to a scheduled event. A default-constructed
// handle refers to no event. Cancelling an already-fired or already-
// cancelled event is a harmless no-op.
class EventHandle {
 public:
  EventHandle() = default;

  // Returns true if the event was pending and is now cancelled.
  bool cancel() {
    if (auto st = state_.lock(); st && !st->cancelled) {
      st->cancelled = true;
      st->fn = nullptr;  // release captured resources eagerly
      return true;
    }
    return false;
  }

  // True while the event is still waiting to fire.
  bool pending() const {
    auto st = state_.lock();
    return st && !st->cancelled;
  }

 private:
  friend class Simulator;
  explicit EventHandle(std::weak_ptr<detail::EventState> st)
      : state_{std::move(st)} {}
  std::weak_ptr<detail::EventState> state_;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Current simulation time. Monotonically non-decreasing.
  Time now() const { return now_; }

  // Schedule `fn` to run at absolute time `at` (must be >= now()).
  EventHandle schedule_at(Time at, EventFn fn);

  // Schedule `fn` to run `delay` from now (delay must be >= 0).
  EventHandle schedule_in(Time delay, EventFn fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  // Run until the event queue drains or stop() is called.
  // Returns the number of events executed.
  std::uint64_t run();

  // Run until simulation time reaches `deadline` (events at exactly
  // `deadline` are executed), the queue drains, or stop() is called.
  std::uint64_t run_until(Time deadline);

  // Execute at most one pending event. Returns false if the queue is empty.
  bool step();

  // Request that run()/run_until() return after the current event.
  void stop() { stopped_ = true; }

  // Number of scheduled entries still in the queue. Entries cancelled via
  // EventHandle are removed lazily, so this is an upper bound on the number
  // of events that will actually fire.
  std::size_t pending_events() const { return heap_.size(); }

  std::uint64_t events_executed() const { return executed_; }

 private:
  struct HeapEntry {
    Time at;
    std::uint64_t seq;
    std::shared_ptr<detail::EventState> state;
    // Min-heap on (at, seq) via std::priority_queue's max-heap comparator.
    friend bool operator<(const HeapEntry& a, const HeapEntry& b) {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<HeapEntry> heap_;
  Time now_ = Time::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
};

}  // namespace rrtcp::sim
