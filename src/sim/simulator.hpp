// Discrete-event simulation engine.
//
// The Simulator keys its event queue by (time, insertion sequence): events
// scheduled for the same instant execute in the order they were scheduled,
// which makes every run deterministic. Events are arbitrary callables;
// cancellation is supported through EventHandle without removing entries
// from the heap (lazy deletion).
//
// Hot-path design (see DESIGN.md §11):
//
//  * Event callables live in pooled, chunk-allocated slots with a fixed
//    inline capture buffer (sim/small_fn.hpp) sized for the largest
//    forwarding-path lambda (a Link delivery capturing a full Packet).
//    Slots are recycled through a free list, so steady-state scheduling
//    performs zero allocations; only captures larger than
//    kEventInlineBytes fall back to the heap, and that fallback is
//    counted (callback_heap_fallbacks()).
//  * The priority queue is an implicit 4-ary min-heap over 24-byte
//    (time, seq, slot) entries — shallower than a binary heap and with
//    all child comparisons inside one or two cache lines, no per-entry
//    ownership or pointer chasing.
//  * A slot's occupancy is identified by the event's unique insertion
//    sequence number, so stale heap entries (cancelled events whose slot
//    was already recycled) are recognized and skipped on pop without any
//    generation-counter wraparound hazard.
//
// The pre-pool engine is preserved in sim/legacy_scheduler.hpp; the
// scheduler-equivalence test pins the two to byte-identical execution
// traces.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/assert.hpp"
#include "sim/small_fn.hpp"
#include "sim/time.hpp"

namespace rrtcp::sim {

// Convenience alias for storable event callbacks (the scheduler itself
// accepts any callable, not just std::function).
using EventFn = std::function<void()>;

// Inline capture budget per pooled event. Sized for the largest hot-path
// lambda: a chaos-injector delay capture of {this, Packet, bool} (~144
// bytes); Link's delivery capture {this, Packet} (~136 bytes) fits too.
// Call sites on the forwarding path static_assert that they stay inside
// this budget, so "allocation-free forwarding" is a compile-time property.
inline constexpr std::size_t kEventInlineBytes = 160;

namespace detail {
struct EventNode {
  SmallFn<kEventInlineBytes> fn;
  // Insertion sequence of the occupying event; 0 = slot free (or the
  // event was cancelled/fired and the slot is back on the free list).
  std::uint64_t seq = 0;
};
}  // namespace detail

class Simulator;

// A cheap, copyable handle to a scheduled event. A default-constructed
// handle refers to no event. Cancelling an already-fired or already-
// cancelled event is a harmless no-op. Handles must not outlive the
// Simulator that issued them.
class EventHandle {
 public:
  EventHandle() = default;

  // Returns true if the event was pending and is now cancelled.
  bool cancel();

  // True while the event is still waiting to fire.
  bool pending() const;

 private:
  friend class Simulator;
  EventHandle(Simulator* sim, std::uint32_t slot, std::uint64_t seq)
      : sim_{sim}, slot_{slot}, seq_{seq} {}
  Simulator* sim_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint64_t seq_ = 0;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Current simulation time. Monotonically non-decreasing.
  Time now() const { return now_; }

  // True when a callable of type F schedules without touching the heap
  // allocator — the compile-time check behind allocation-free forwarding.
  template <typename F>
  static constexpr bool fits_inline() {
    return SmallFn<kEventInlineBytes>::template fits_inline<F>();
  }

  // Schedule `fn` to run at absolute time `at` (must be >= now()).
  template <typename F>
  EventHandle schedule_at(Time at, F&& fn) {
    RRTCP_ASSERT_MSG(at >= now_, "cannot schedule an event in the past");
    if constexpr (requires { static_cast<bool>(fn); }) {
      RRTCP_ASSERT_MSG(static_cast<bool>(fn),
                       "event callable must be non-empty");
    }
    const std::uint32_t slot = alloc_slot();
    detail::EventNode& n = node(slot);
    if (!n.fn.emplace(std::forward<F>(fn))) ++fallback_allocs_;
    n.seq = ++last_seq_;
    heap_push(HeapEntry{at, n.seq, slot});
    return EventHandle{this, slot, n.seq};
  }

  // Schedule `fn` to run `delay` from now (delay must be >= 0).
  template <typename F>
  EventHandle schedule_in(Time delay, F&& fn) {
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  // Run until the event queue drains or stop() is called.
  // Returns the number of events executed.
  std::uint64_t run();

  // Run until simulation time reaches `deadline` (events at exactly
  // `deadline` are executed), the queue drains, or stop() is called.
  std::uint64_t run_until(Time deadline);

  // Execute at most one pending event. Returns false if the queue is empty.
  bool step();

  // Request that run()/run_until() return after the current event.
  void stop() { stopped_ = true; }

  // Number of scheduled entries still in the queue. Entries cancelled via
  // EventHandle are removed lazily, so this is an upper bound on the number
  // of events that will actually fire.
  std::size_t pending_events() const { return heap_.size(); }

  std::uint64_t events_executed() const { return executed_; }

  // Pool introspection (perf harness / allocation-regression tests).
  // Total pooled event slots ever created (the pool never shrinks).
  std::size_t event_pool_slots() const { return chunks_.size() * kChunkSize; }
  // Events whose capture exceeded kEventInlineBytes and hit the heap.
  std::uint64_t callback_heap_fallbacks() const { return fallback_allocs_; }

 private:
  friend class EventHandle;

  struct HeapEntry {
    Time at;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  // Min-order on (at, seq): FIFO among events at the same instant.
  static bool before(const HeapEntry& a, const HeapEntry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  static constexpr std::size_t kChunkShift = 9;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;

  detail::EventNode& node(std::uint32_t slot) {
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }
  const detail::EventNode& node(std::uint32_t slot) const {
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }

  // Slot alloc/free and heap_push are the per-schedule fast path; they are
  // defined inline (below the class) so schedule_at() — itself a template
  // instantiated at every call site — compiles down to straight-line code
  // with no out-of-line calls except when the pool has to grow.
  std::uint32_t alloc_slot() {
    if (free_.empty()) grow_pool();
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    return slot;
  }
  void free_slot(std::uint32_t slot) { free_.push_back(slot); }
  void grow_pool();

  bool cancel_event(std::uint32_t slot, std::uint64_t seq);
  bool event_pending(std::uint32_t slot, std::uint64_t seq) const {
    return seq != 0 && node(slot).seq == seq;
  }

  void heap_push(HeapEntry e) {
    std::size_t i = heap_.size();
    heap_.push_back(e);
    while (i > 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!before(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }
  void heap_pop_top();
  // Drops stale (cancelled) entries off the top; true if a live top remains.
  bool heap_settle_top();
  // Executes heap_[0]; caller must have settled the top first.
  void fire_top();

  std::vector<HeapEntry> heap_;
  std::vector<std::unique_ptr<detail::EventNode[]>> chunks_;
  std::vector<std::uint32_t> free_;

  Time now_ = Time::zero();
  std::uint64_t last_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t fallback_allocs_ = 0;
  bool stopped_ = false;
};

inline bool EventHandle::cancel() {
  return sim_ != nullptr && sim_->cancel_event(slot_, seq_);
}

inline bool EventHandle::pending() const {
  return sim_ != nullptr && sim_->event_pending(slot_, seq_);
}

}  // namespace rrtcp::sim
