#include "sim/rng.hpp"

#include <cmath>

namespace rrtcp::sim {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t hash_name(std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

Rng::Rng(std::uint64_t seed) { seed_from(seed); }

Rng::Rng(std::uint64_t seed, std::string_view stream_name) {
  seed_from(seed ^ hash_name(stream_name));
}

void Rng::seed_from(std::uint64_t seed) {
  // xoshiro state must not be all-zero; SplitMix64 never maps a fixed seed
  // to four zero outputs, so this is safe.
  for (auto& s : s_) s = splitmix64(seed);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() {
  // 53 high bits -> double in [0,1) with full mantissa resolution.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::uniform_int(std::uint64_t lo, std::uint64_t hi) {
  RRTCP_ASSERT(lo <= hi);
  const std::uint64_t span = hi - lo + 1;  // span==0 means the full 2^64 range
  if (span == 0) return next_u64();
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return lo + v % span;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double mean) {
  RRTCP_ASSERT(mean > 0.0);
  double u;
  do {
    u = uniform01();
  } while (u == 0.0);
  return -mean * std::log(u);
}

}  // namespace rrtcp::sim
