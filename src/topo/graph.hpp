// Declarative topology graph.
//
// A GraphSpec is a plain value: named nodes, directed links (bandwidth,
// propagation delay, queue), and optional explicit route entries. A
// TopologyGraph materializes the spec into net::Node / net::Link objects
// and installs STATIC routes: explicit entries win; everything else comes
// from deterministic shortest-path (BFS hop count, ties broken by lowest
// link index — the same spec always yields the same forwarding tables).
//
// This is the layer that generalizes the paper's two-router dumbbell into
// parking-lot / multi-bottleneck / NxM topologies; DumbbellTopology
// (net/dumbbell.hpp) is now a thin preset on top of it, and
// topo::ParkingLotTopology (topo/presets.hpp) is the canonical
// multi-bottleneck chain. Forwarding stays on the pooled simulator fast
// path: route resolution is the same per-destination table lookup in
// net::Node the dumbbell always used, so the 0-allocs/packet guarantee of
// DESIGN.md §11 holds for any graph.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "net/node.hpp"
#include "net/queue_disc.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace rrtcp::topo {

// One directed link of the spec. The queue defaults to a drop-tail buffer
// of `queue_packets`; `make_queue` overrides it (e.g. RED on a bottleneck).
struct LinkSpec {
  int from = -1;
  int to = -1;
  std::int64_t bandwidth_bps = 10'000'000;
  sim::Time delay = sim::Time::zero();
  std::uint64_t queue_packets = 10'000;
  // Optional queue factory; wins over queue_packets when set. Receives the
  // simulator so time-coupled disciplines (RED) can be built.
  std::function<std::unique_ptr<net::QueueDisc>(sim::Simulator&)> make_queue =
      {};
  std::string name = {};  // auto-generated "A->B" from node names when empty
};

// An explicit routing entry: at node `at`, packets for destination `dst`
// leave via link `link`. Overrides the shortest-path choice.
struct RouteSpec {
  int at = -1;
  int dst = -1;
  int link = -1;
};

struct GraphSpec {
  std::vector<std::string> nodes;
  std::vector<LinkSpec> links;
  std::vector<RouteSpec> routes;

  bool empty() const { return nodes.empty(); }
  int n_nodes() const { return static_cast<int>(nodes.size()); }

  // Adds a node; returns its index (== its net::NodeId).
  int add_node(std::string name = "");
  // Adds a directed link; returns its index.
  int add_link(LinkSpec l);
  // Adds the two directed links of a duplex pair (a->b first); returns the
  // index of the a->b link (the b->a link is that index + 1).
  int add_duplex(int a, int b, std::int64_t bandwidth_bps, sim::Time delay,
                 std::uint64_t queue_packets = 10'000);
  void add_route(int at, int dst, int link) { routes.push_back({at, dst, link}); }
};

class TopologyGraph {
 public:
  TopologyGraph(sim::Simulator& sim, GraphSpec spec);
  TopologyGraph(const TopologyGraph&) = delete;
  TopologyGraph& operator=(const TopologyGraph&) = delete;

  int n_nodes() const { return static_cast<int>(nodes_.size()); }
  int n_links() const { return static_cast<int>(links_.size()); }

  net::Node& node(int i) { return *nodes_.at(static_cast<std::size_t>(i)); }
  net::Link& link(int i) { return *links_.at(static_cast<std::size_t>(i)); }
  const std::string& node_name(int i) const {
    return spec_.nodes.at(static_cast<std::size_t>(i));
  }

  // First link from -> to, or nullptr.
  net::Link* link_between(int from, int to);

  // The link index a packet at `at` destined for `dst` departs on, or -1
  // if `dst` is unreachable from `at` (the node drops such packets).
  int route(int at, int dst) const {
    return table_[static_cast<std::size_t>(at) *
                      static_cast<std::size_t>(n_nodes()) +
                  static_cast<std::size_t>(dst)];
  }

  // The link indices of the (static) path from -> dst; empty when
  // unreachable. Convenience for tests and path-property assertions.
  std::vector<int> path_links(int from, int dst) const;

  const GraphSpec& spec() const { return spec_; }

 private:
  void compute_routes();

  sim::Simulator& sim_;
  GraphSpec spec_;
  std::vector<std::unique_ptr<net::Node>> nodes_;
  std::vector<std::unique_ptr<net::Link>> links_;
  std::vector<int> table_;  // n_nodes x n_nodes next-hop link index, -1 none
};

}  // namespace rrtcp::topo
