#include "topo/presets.hpp"

#include "sim/assert.hpp"

namespace rrtcp::topo {

namespace {

// Access pair between a host and its router: host->router carries data or
// ACKs into the core, router->host delivers; both fast and deep-buffered.
void add_access(GraphSpec& g, int host, int router, std::int64_t bps,
                sim::Time delay, std::uint64_t queue_pkts) {
  LinkSpec in;
  in.from = host;
  in.to = router;
  in.bandwidth_bps = bps;
  in.delay = delay;
  in.queue_packets = queue_pkts;
  g.add_link(std::move(in));
  LinkSpec out;
  out.from = router;
  out.to = host;
  out.bandwidth_bps = bps;
  out.delay = delay;
  out.queue_packets = queue_pkts;
  g.add_link(std::move(out));
}

}  // namespace

ParkingLotLayout parking_lot(const ParkingLotConfig& cfg) {
  RRTCP_ASSERT(cfg.n_bottlenecks >= 1);
  ParkingLotLayout lay;
  GraphSpec& g = lay.spec;

  for (int i = 0; i <= cfg.n_bottlenecks; ++i)
    lay.routers.push_back(g.add_node("R" + std::to_string(i)));
  lay.long_src = g.add_node("A");
  lay.long_dst = g.add_node("B");
  for (int i = 0; i < cfg.n_bottlenecks; ++i) {
    lay.cross_src.push_back(g.add_node("C" + std::to_string(i)));
    lay.cross_dst.push_back(g.add_node("D" + std::to_string(i)));
  }

  // The forward chain — every hop is a queue under test.
  for (int i = 0; i < cfg.n_bottlenecks; ++i) {
    LinkSpec fwd;
    fwd.from = lay.routers[static_cast<std::size_t>(i)];
    fwd.to = lay.routers[static_cast<std::size_t>(i) + 1];
    fwd.bandwidth_bps = cfg.bottleneck_bps;
    fwd.delay = cfg.hop_delay;
    fwd.queue_packets = cfg.queue_packets;
    fwd.make_queue = cfg.make_bottleneck_queue;
    lay.bottleneck_links.push_back(g.add_link(std::move(fwd)));
    LinkSpec rev;
    rev.from = lay.routers[static_cast<std::size_t>(i) + 1];
    rev.to = lay.routers[static_cast<std::size_t>(i)];
    rev.bandwidth_bps = cfg.bottleneck_bps;
    rev.delay = cfg.hop_delay;
    rev.queue_packets = cfg.reverse_queue_packets;
    g.add_link(std::move(rev));
  }

  add_access(g, lay.long_src, lay.routers.front(), cfg.side_bps,
             cfg.side_delay, cfg.side_queue_packets);
  add_access(g, lay.long_dst, lay.routers.back(), cfg.side_bps,
             cfg.side_delay, cfg.side_queue_packets);
  for (int i = 0; i < cfg.n_bottlenecks; ++i) {
    add_access(g, lay.cross_src[static_cast<std::size_t>(i)],
               lay.routers[static_cast<std::size_t>(i)], cfg.side_bps,
               cfg.side_delay, cfg.side_queue_packets);
    add_access(g, lay.cross_dst[static_cast<std::size_t>(i)],
               lay.routers[static_cast<std::size_t>(i) + 1], cfg.side_bps,
               cfg.side_delay, cfg.side_queue_packets);
  }
  return lay;
}

MultiDumbbellLayout multi_dumbbell(const MultiDumbbellConfig& cfg) {
  RRTCP_ASSERT(cfg.n_senders >= 1 && cfg.m_receivers >= 1);
  MultiDumbbellLayout lay;
  GraphSpec& g = lay.spec;

  lay.r1 = g.add_node("R1");
  lay.r2 = g.add_node("R2");
  for (int i = 0; i < cfg.n_senders; ++i)
    lay.senders.push_back(g.add_node("S" + std::to_string(i + 1)));
  for (int i = 0; i < cfg.m_receivers; ++i)
    lay.receivers.push_back(g.add_node("K" + std::to_string(i + 1)));

  LinkSpec fwd;
  fwd.from = lay.r1;
  fwd.to = lay.r2;
  fwd.bandwidth_bps = cfg.bottleneck_bps;
  fwd.delay = cfg.bottleneck_delay;
  fwd.queue_packets = cfg.queue_packets;
  fwd.make_queue = cfg.make_bottleneck_queue;
  lay.bottleneck_link = g.add_link(std::move(fwd));
  LinkSpec rev;
  rev.from = lay.r2;
  rev.to = lay.r1;
  rev.bandwidth_bps = cfg.bottleneck_bps;
  rev.delay = cfg.bottleneck_delay;
  rev.queue_packets = cfg.reverse_queue_packets;
  lay.reverse_bottleneck_link = g.add_link(std::move(rev));

  for (int s : lay.senders)
    add_access(g, s, lay.r1, cfg.side_bps, cfg.side_delay,
               cfg.side_queue_packets);
  for (int r : lay.receivers)
    add_access(g, r, lay.r2, cfg.side_bps, cfg.side_delay,
               cfg.side_queue_packets);
  return lay;
}

}  // namespace rrtcp::topo
