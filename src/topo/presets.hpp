// Canonical topology presets beyond the paper's dumbbell.
//
// Presets are spec factories: they return a GraphSpec plus the node/link
// indices a driver needs to place flows — a plain value that can ride
// inside a harness::ScenarioSpec, be mutated per grid point, or be built
// directly into a TopologyGraph. The dumbbell preset itself lives in
// net/dumbbell.hpp (kept there for source compatibility); these are the
// multi-bottleneck shapes the related work stresses RR with.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "topo/graph.hpp"

namespace rrtcp::topo {

// Parking lot: a chain of k bottlenecks with one end-to-end "long" path
// plus a one-hop cross path per bottleneck.
//
//   A --- R0 ==== R1 ==== R2 ... ==== Rk --- B        (long: A -> B)
//         |      /  \    /  \          |
//         C0 --/    D0  C1   D1 ...    Dk-1           (cross i: Ci -> Di)
//
// Every R_i -> R_{i+1} link carries the queue under test; reverse and
// access links are fast and effectively lossless, so all congestion lives
// on the forward chain — the multi-bottleneck generalization of Table 3.
struct ParkingLotConfig {
  int n_bottlenecks = 3;
  std::int64_t bottleneck_bps = 800'000;            // per hop, Table 3 rate
  sim::Time hop_delay = sim::Time::milliseconds(20);
  std::int64_t side_bps = 10'000'000;
  sim::Time side_delay = sim::Time::zero();
  std::uint64_t queue_packets = 8;  // each forward bottleneck buffer
  // Optional per-hop queue factory (e.g. RED); wins over queue_packets.
  std::function<std::unique_ptr<net::QueueDisc>(sim::Simulator&)>
      make_bottleneck_queue;
  std::uint64_t reverse_queue_packets = 10'000;
  std::uint64_t side_queue_packets = 10'000;
};

struct ParkingLotLayout {
  GraphSpec spec;
  std::vector<int> routers;           // node indices R0..Rk
  std::vector<int> bottleneck_links;  // link indices R_i -> R_{i+1}
  int long_src = -1;                  // host A
  int long_dst = -1;                  // host B
  std::vector<int> cross_src;         // host C_i (enters at R_i)
  std::vector<int> cross_dst;         // host D_i (exits at R_{i+1})
};

ParkingLotLayout parking_lot(const ParkingLotConfig& cfg);

// N x M dumbbell: N sender hosts and M receiver hosts (N need not equal M)
// around one bottleneck pair — the shape for many-flows-few-sinks
// aggregation scenarios (mean-field RED regimes run hundreds of senders
// into a handful of sinks).
struct MultiDumbbellConfig {
  int n_senders = 4;
  int m_receivers = 2;
  std::int64_t bottleneck_bps = 800'000;
  sim::Time bottleneck_delay = sim::Time::milliseconds(100);
  std::int64_t side_bps = 10'000'000;
  sim::Time side_delay = sim::Time::zero();
  std::uint64_t queue_packets = 8;
  std::function<std::unique_ptr<net::QueueDisc>(sim::Simulator&)>
      make_bottleneck_queue;
  std::uint64_t reverse_queue_packets = 10'000;
  std::uint64_t side_queue_packets = 10'000;
};

struct MultiDumbbellLayout {
  GraphSpec spec;
  int r1 = -1;
  int r2 = -1;
  int bottleneck_link = -1;          // R1 -> R2
  int reverse_bottleneck_link = -1;  // R2 -> R1
  std::vector<int> senders;          // N host indices behind R1
  std::vector<int> receivers;        // M host indices behind R2
};

MultiDumbbellLayout multi_dumbbell(const MultiDumbbellConfig& cfg);

}  // namespace rrtcp::topo
