// Graph partitioner for the sharded simulation engine (src/pdes).
//
// A GraphSpec is cut ONLY at links: every node lands in exactly one shard,
// and a link belongs to the shard of its tail (`from`) node. A link whose
// head lives in a different shard is a CUT link; the sharded engine turns
// it into a cross-shard channel (net::RemoteSink) and its propagation
// delay funds the conservative lookahead.
//
// Zero-delay links can never be cut — a cut with zero latency gives zero
// lookahead and the conservative scheduler could not advance. The
// partitioner therefore first contracts all zero-delay links (union-find),
// then balances the resulting components across shards with a
// deterministic greedy bin-packing (largest component first, ties by
// lowest node index; least-loaded shard wins, ties by lowest shard index).
// The same spec and shard count always produce the same partition.
#pragma once

#include <vector>

#include "sim/time.hpp"
#include "topo/graph.hpp"

namespace rrtcp::topo {

struct Partition {
  // Actual shard count: min(requested, number of contractable components),
  // never less than 1.
  int n_shards = 1;
  std::vector<int> node_shard;  // node index -> shard index
  std::vector<int> link_shard;  // link index -> owning shard (= tail's shard)
  // Links whose head is in a different shard than their tail, ascending.
  std::vector<int> cut_links;
  // min(delay) over cut_links; zero when there are no cut links. Strictly
  // positive whenever n_shards > 1 (zero-delay links are never cut).
  sim::Time lookahead = sim::Time::zero();
  // shard -> its node indices, ascending within each shard.
  std::vector<std::vector<int>> shard_nodes;
};

// Partition `spec` into at most `requested_shards` shards. A request of 1
// (or fewer) returns the trivial single-shard partition with no cut links.
Partition partition_graph(const GraphSpec& spec, int requested_shards);

// The n_nodes x n_nodes next-hop table for `spec`: entry [at*n + dst] is
// the link index a packet at `at` destined for `dst` departs on, or -1 when
// unreachable. Deterministic shortest path (BFS hop count, lowest link
// index wins ties) with explicit RouteSpec entries overriding. Shared by
// TopologyGraph and the sharded engine — sharded routing decisions are
// computed on the GLOBAL graph, so forwarding is identical at every shard
// count.
std::vector<int> compute_route_table(const GraphSpec& spec);

}  // namespace rrtcp::topo
