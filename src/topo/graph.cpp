#include "topo/graph.hpp"

#include "net/drop_tail.hpp"
#include "sim/assert.hpp"
#include "topo/partition.hpp"

namespace rrtcp::topo {

int GraphSpec::add_node(std::string name) {
  const int id = static_cast<int>(nodes.size());
  if (name.empty()) name = std::string{"N"}.append(std::to_string(id));
  nodes.push_back(std::move(name));
  return id;
}

int GraphSpec::add_link(LinkSpec l) {
  RRTCP_ASSERT(l.from >= 0 && l.from < n_nodes());
  RRTCP_ASSERT(l.to >= 0 && l.to < n_nodes());
  RRTCP_ASSERT(l.from != l.to);
  const int id = static_cast<int>(links.size());
  if (l.name.empty()) {
    // append() instead of operator+ chains: GCC 12 -O2 trips a -Wrestrict
    // false positive on the temporary-string concatenation.
    l.name = nodes[static_cast<std::size_t>(l.from)];
    l.name.append("->").append(nodes[static_cast<std::size_t>(l.to)]);
  }
  links.push_back(std::move(l));
  return id;
}

int GraphSpec::add_duplex(int a, int b, std::int64_t bandwidth_bps,
                          sim::Time delay, std::uint64_t queue_packets) {
  LinkSpec fwd;
  fwd.from = a;
  fwd.to = b;
  fwd.bandwidth_bps = bandwidth_bps;
  fwd.delay = delay;
  fwd.queue_packets = queue_packets;
  const int id = add_link(std::move(fwd));
  LinkSpec rev;
  rev.from = b;
  rev.to = a;
  rev.bandwidth_bps = bandwidth_bps;
  rev.delay = delay;
  rev.queue_packets = queue_packets;
  add_link(std::move(rev));
  return id;
}

TopologyGraph::TopologyGraph(sim::Simulator& sim, GraphSpec spec)
    : sim_{sim}, spec_{std::move(spec)} {
  RRTCP_ASSERT_MSG(!spec_.empty(), "topology graph needs at least one node");

  nodes_.reserve(spec_.nodes.size());
  for (std::size_t i = 0; i < spec_.nodes.size(); ++i)
    nodes_.push_back(std::make_unique<net::Node>(static_cast<net::NodeId>(i)));

  links_.reserve(spec_.links.size());
  for (const LinkSpec& ls : spec_.links) {
    net::LinkConfig lc{ls.bandwidth_bps, ls.delay, ls.name};
    auto queue = ls.make_queue
                     ? ls.make_queue(sim_)
                     : std::make_unique<net::DropTailQueue>(ls.queue_packets);
    auto link = std::make_unique<net::Link>(sim_, std::move(lc),
                                            std::move(queue));
    link->set_dst(nodes_[static_cast<std::size_t>(ls.to)].get());
    links_.push_back(std::move(link));
  }

  compute_routes();
}

void TopologyGraph::compute_routes() {
  const int n = n_nodes();
  // Shared with the sharded engine (topo/partition.hpp): both compute
  // next-hops on the full spec, so forwarding is identical at every shard
  // count.
  table_ = compute_route_table(spec_);

  // Install on the nodes.
  for (int at = 0; at < n; ++at) {
    for (int dst = 0; dst < n; ++dst) {
      const int li = route(at, dst);
      if (li >= 0)
        nodes_[static_cast<std::size_t>(at)]->add_route(
            static_cast<net::NodeId>(dst),
            links_[static_cast<std::size_t>(li)].get());
    }
  }
}

net::Link* TopologyGraph::link_between(int from, int to) {
  for (int li = 0; li < n_links(); ++li) {
    const LinkSpec& ls = spec_.links[static_cast<std::size_t>(li)];
    if (ls.from == from && ls.to == to)
      return links_[static_cast<std::size_t>(li)].get();
  }
  return nullptr;
}

std::vector<int> TopologyGraph::path_links(int from, int dst) const {
  std::vector<int> path;
  int at = from;
  while (at != dst) {
    const int li = route(at, dst);
    if (li < 0) return {};
    path.push_back(li);
    at = spec_.links[static_cast<std::size_t>(li)].to;
    // A routing loop would exceed the longest possible simple path.
    if (path.size() > static_cast<std::size_t>(n_links())) return {};
  }
  return path;
}

}  // namespace rrtcp::topo
