#include "topo/graph.hpp"

#include <queue>

#include "net/drop_tail.hpp"
#include "sim/assert.hpp"

namespace rrtcp::topo {

int GraphSpec::add_node(std::string name) {
  const int id = static_cast<int>(nodes.size());
  if (name.empty()) name = std::string{"N"}.append(std::to_string(id));
  nodes.push_back(std::move(name));
  return id;
}

int GraphSpec::add_link(LinkSpec l) {
  RRTCP_ASSERT(l.from >= 0 && l.from < n_nodes());
  RRTCP_ASSERT(l.to >= 0 && l.to < n_nodes());
  RRTCP_ASSERT(l.from != l.to);
  const int id = static_cast<int>(links.size());
  if (l.name.empty()) {
    // append() instead of operator+ chains: GCC 12 -O2 trips a -Wrestrict
    // false positive on the temporary-string concatenation.
    l.name = nodes[static_cast<std::size_t>(l.from)];
    l.name.append("->").append(nodes[static_cast<std::size_t>(l.to)]);
  }
  links.push_back(std::move(l));
  return id;
}

int GraphSpec::add_duplex(int a, int b, std::int64_t bandwidth_bps,
                          sim::Time delay, std::uint64_t queue_packets) {
  LinkSpec fwd;
  fwd.from = a;
  fwd.to = b;
  fwd.bandwidth_bps = bandwidth_bps;
  fwd.delay = delay;
  fwd.queue_packets = queue_packets;
  const int id = add_link(std::move(fwd));
  LinkSpec rev;
  rev.from = b;
  rev.to = a;
  rev.bandwidth_bps = bandwidth_bps;
  rev.delay = delay;
  rev.queue_packets = queue_packets;
  add_link(std::move(rev));
  return id;
}

TopologyGraph::TopologyGraph(sim::Simulator& sim, GraphSpec spec)
    : sim_{sim}, spec_{std::move(spec)} {
  RRTCP_ASSERT_MSG(!spec_.empty(), "topology graph needs at least one node");

  nodes_.reserve(spec_.nodes.size());
  for (std::size_t i = 0; i < spec_.nodes.size(); ++i)
    nodes_.push_back(std::make_unique<net::Node>(static_cast<net::NodeId>(i)));

  links_.reserve(spec_.links.size());
  for (const LinkSpec& ls : spec_.links) {
    net::LinkConfig lc{ls.bandwidth_bps, ls.delay, ls.name};
    auto queue = ls.make_queue
                     ? ls.make_queue(sim_)
                     : std::make_unique<net::DropTailQueue>(ls.queue_packets);
    auto link = std::make_unique<net::Link>(sim_, std::move(lc),
                                            std::move(queue));
    link->set_dst(nodes_[static_cast<std::size_t>(ls.to)].get());
    links_.push_back(std::move(link));
  }

  compute_routes();
}

void TopologyGraph::compute_routes() {
  const int n = n_nodes();
  table_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), -1);

  // Outgoing adjacency, in link-index order (the deterministic tie-break:
  // among equal-hop choices the lowest link index wins).
  std::vector<std::vector<int>> out(static_cast<std::size_t>(n));
  for (int li = 0; li < n_links(); ++li)
    out[static_cast<std::size_t>(spec_.links[static_cast<std::size_t>(li)].from)]
        .push_back(li);

  // One reverse BFS per destination gives hop counts; each node then picks
  // its lowest-indexed outgoing link that makes progress.
  std::vector<int> dist(static_cast<std::size_t>(n));
  for (int dst = 0; dst < n; ++dst) {
    std::fill(dist.begin(), dist.end(), -1);
    dist[static_cast<std::size_t>(dst)] = 0;
    std::queue<int> bfs;
    bfs.push(dst);
    while (!bfs.empty()) {
      const int v = bfs.front();
      bfs.pop();
      // Relax over links ENTERING v: their tail is one hop further out.
      for (int li = 0; li < n_links(); ++li) {
        const LinkSpec& ls = spec_.links[static_cast<std::size_t>(li)];
        if (ls.to != v) continue;
        if (dist[static_cast<std::size_t>(ls.from)] != -1) continue;
        dist[static_cast<std::size_t>(ls.from)] =
            dist[static_cast<std::size_t>(v)] + 1;
        bfs.push(ls.from);
      }
    }
    for (int at = 0; at < n; ++at) {
      if (at == dst || dist[static_cast<std::size_t>(at)] == -1) continue;
      for (int li : out[static_cast<std::size_t>(at)]) {
        const LinkSpec& ls = spec_.links[static_cast<std::size_t>(li)];
        if (dist[static_cast<std::size_t>(ls.to)] ==
            dist[static_cast<std::size_t>(at)] - 1) {
          table_[static_cast<std::size_t>(at) * static_cast<std::size_t>(n) +
                 static_cast<std::size_t>(dst)] = li;
          break;
        }
      }
    }
  }

  // Explicit entries override.
  for (const RouteSpec& r : spec_.routes) {
    RRTCP_ASSERT(r.at >= 0 && r.at < n && r.dst >= 0 && r.dst < n);
    RRTCP_ASSERT(r.link >= 0 && r.link < n_links());
    RRTCP_ASSERT_MSG(
        spec_.links[static_cast<std::size_t>(r.link)].from == r.at,
        "route entry names a link that does not leave its node");
    table_[static_cast<std::size_t>(r.at) * static_cast<std::size_t>(n) +
           static_cast<std::size_t>(r.dst)] = r.link;
  }

  // Install on the nodes.
  for (int at = 0; at < n; ++at) {
    for (int dst = 0; dst < n; ++dst) {
      const int li = route(at, dst);
      if (li >= 0)
        nodes_[static_cast<std::size_t>(at)]->add_route(
            static_cast<net::NodeId>(dst),
            links_[static_cast<std::size_t>(li)].get());
    }
  }
}

net::Link* TopologyGraph::link_between(int from, int to) {
  for (int li = 0; li < n_links(); ++li) {
    const LinkSpec& ls = spec_.links[static_cast<std::size_t>(li)];
    if (ls.from == from && ls.to == to)
      return links_[static_cast<std::size_t>(li)].get();
  }
  return nullptr;
}

std::vector<int> TopologyGraph::path_links(int from, int dst) const {
  std::vector<int> path;
  int at = from;
  while (at != dst) {
    const int li = route(at, dst);
    if (li < 0) return {};
    path.push_back(li);
    at = spec_.links[static_cast<std::size_t>(li)].to;
    // A routing loop would exceed the longest possible simple path.
    if (path.size() > static_cast<std::size_t>(n_links())) return {};
  }
  return path;
}

}  // namespace rrtcp::topo
