#include "topo/partition.hpp"

#include <algorithm>
#include <queue>

#include "sim/assert.hpp"

namespace rrtcp::topo {
namespace {

// Plain union-find with path halving; union by attaching the larger root
// index under the smaller so component representatives are stable.
int uf_find(std::vector<int>& parent, int x) {
  while (parent[static_cast<std::size_t>(x)] != x) {
    parent[static_cast<std::size_t>(x)] =
        parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
    x = parent[static_cast<std::size_t>(x)];
  }
  return x;
}

void uf_union(std::vector<int>& parent, int a, int b) {
  a = uf_find(parent, a);
  b = uf_find(parent, b);
  if (a == b) return;
  if (a < b)
    parent[static_cast<std::size_t>(b)] = a;
  else
    parent[static_cast<std::size_t>(a)] = b;
}

}  // namespace

Partition partition_graph(const GraphSpec& spec, int requested_shards) {
  RRTCP_ASSERT_MSG(!spec.empty(), "cannot partition an empty graph");
  const int n = spec.n_nodes();

  Partition part;
  part.node_shard.assign(static_cast<std::size_t>(n), 0);
  part.link_shard.assign(spec.links.size(), 0);

  if (requested_shards <= 1) {
    part.shard_nodes.resize(1);
    for (int v = 0; v < n; ++v) part.shard_nodes[0].push_back(v);
    return part;
  }

  // Contract zero-delay links: their endpoints must share a shard.
  std::vector<int> parent(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) parent[static_cast<std::size_t>(v)] = v;
  for (const LinkSpec& ls : spec.links)
    if (ls.delay <= sim::Time::zero()) uf_union(parent, ls.from, ls.to);

  // Components keyed by representative (the lowest node index in each).
  std::vector<int> comp_of(static_cast<std::size_t>(n));
  std::vector<int> reps;
  for (int v = 0; v < n; ++v) {
    const int r = uf_find(parent, v);
    if (r == v) reps.push_back(v);
  }
  std::vector<int> comp_index(static_cast<std::size_t>(n), -1);
  for (std::size_t c = 0; c < reps.size(); ++c)
    comp_index[static_cast<std::size_t>(reps[c])] = static_cast<int>(c);
  std::vector<int> comp_size(reps.size(), 0);
  for (int v = 0; v < n; ++v) {
    const int c = comp_index[static_cast<std::size_t>(uf_find(parent, v))];
    comp_of[static_cast<std::size_t>(v)] = c;
    ++comp_size[static_cast<std::size_t>(c)];
  }

  const int n_comps = static_cast<int>(reps.size());
  part.n_shards = std::min(requested_shards, n_comps);

  // Greedy balanced assignment: largest component first (ties broken by
  // lower representative node index — reps[] is already ascending, and
  // stable_sort keeps that order among equals), into the least-loaded
  // shard (ties to the lowest shard index).
  std::vector<int> order(static_cast<std::size_t>(n_comps));
  for (int c = 0; c < n_comps; ++c) order[static_cast<std::size_t>(c)] = c;
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return comp_size[static_cast<std::size_t>(a)] >
           comp_size[static_cast<std::size_t>(b)];
  });
  std::vector<int> comp_shard(static_cast<std::size_t>(n_comps), 0);
  std::vector<int> load(static_cast<std::size_t>(part.n_shards), 0);
  for (int c : order) {
    int best = 0;
    for (int s = 1; s < part.n_shards; ++s)
      if (load[static_cast<std::size_t>(s)] <
          load[static_cast<std::size_t>(best)])
        best = s;
    comp_shard[static_cast<std::size_t>(c)] = best;
    load[static_cast<std::size_t>(best)] +=
        comp_size[static_cast<std::size_t>(c)];
  }

  part.shard_nodes.resize(static_cast<std::size_t>(part.n_shards));
  for (int v = 0; v < n; ++v) {
    const int s =
        comp_shard[static_cast<std::size_t>(comp_of[static_cast<std::size_t>(v)])];
    part.node_shard[static_cast<std::size_t>(v)] = s;
    part.shard_nodes[static_cast<std::size_t>(s)].push_back(v);
  }

  bool have_cut = false;
  for (std::size_t li = 0; li < spec.links.size(); ++li) {
    const LinkSpec& ls = spec.links[li];
    const int s_from = part.node_shard[static_cast<std::size_t>(ls.from)];
    const int s_to = part.node_shard[static_cast<std::size_t>(ls.to)];
    part.link_shard[li] = s_from;
    if (s_from == s_to) continue;
    RRTCP_ASSERT_MSG(ls.delay > sim::Time::zero(),
                     "cut link with zero delay (lookahead would be zero)");
    part.cut_links.push_back(static_cast<int>(li));
    if (!have_cut || ls.delay < part.lookahead) part.lookahead = ls.delay;
    have_cut = true;
  }
  return part;
}

std::vector<int> compute_route_table(const GraphSpec& spec) {
  const int n = spec.n_nodes();
  const int n_links = static_cast<int>(spec.links.size());
  std::vector<int> table(
      static_cast<std::size_t>(n) * static_cast<std::size_t>(n), -1);

  // Outgoing adjacency, in link-index order (the deterministic tie-break:
  // among equal-hop choices the lowest link index wins).
  std::vector<std::vector<int>> out(static_cast<std::size_t>(n));
  for (int li = 0; li < n_links; ++li)
    out[static_cast<std::size_t>(spec.links[static_cast<std::size_t>(li)].from)]
        .push_back(li);
  // Incoming adjacency for the reverse BFS relaxation.
  std::vector<std::vector<int>> in(static_cast<std::size_t>(n));
  for (int li = 0; li < n_links; ++li)
    in[static_cast<std::size_t>(spec.links[static_cast<std::size_t>(li)].to)]
        .push_back(li);

  // One reverse BFS per destination gives hop counts; each node then picks
  // its lowest-indexed outgoing link that makes progress.
  std::vector<int> dist(static_cast<std::size_t>(n));
  for (int dst = 0; dst < n; ++dst) {
    std::fill(dist.begin(), dist.end(), -1);
    dist[static_cast<std::size_t>(dst)] = 0;
    std::queue<int> bfs;
    bfs.push(dst);
    while (!bfs.empty()) {
      const int v = bfs.front();
      bfs.pop();
      // Relax over links ENTERING v: their tail is one hop further out.
      for (int li : in[static_cast<std::size_t>(v)]) {
        const LinkSpec& ls = spec.links[static_cast<std::size_t>(li)];
        if (dist[static_cast<std::size_t>(ls.from)] != -1) continue;
        dist[static_cast<std::size_t>(ls.from)] =
            dist[static_cast<std::size_t>(v)] + 1;
        bfs.push(ls.from);
      }
    }
    for (int at = 0; at < n; ++at) {
      if (at == dst || dist[static_cast<std::size_t>(at)] == -1) continue;
      for (int li : out[static_cast<std::size_t>(at)]) {
        const LinkSpec& ls = spec.links[static_cast<std::size_t>(li)];
        if (dist[static_cast<std::size_t>(ls.to)] ==
            dist[static_cast<std::size_t>(at)] - 1) {
          table[static_cast<std::size_t>(at) * static_cast<std::size_t>(n) +
                static_cast<std::size_t>(dst)] = li;
          break;
        }
      }
    }
  }

  // Explicit entries override.
  for (const RouteSpec& r : spec.routes) {
    RRTCP_ASSERT(r.at >= 0 && r.at < n && r.dst >= 0 && r.dst < n);
    RRTCP_ASSERT(r.link >= 0 && r.link < n_links);
    RRTCP_ASSERT_MSG(spec.links[static_cast<std::size_t>(r.link)].from == r.at,
                     "route entry names a link that does not leave its node");
    table[static_cast<std::size_t>(r.at) * static_cast<std::size_t>(n) +
          static_cast<std::size_t>(r.dst)] = r.link;
  }
  return table;
}

}  // namespace rrtcp::topo
