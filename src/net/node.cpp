#include "net/node.hpp"

#include "net/link.hpp"
#include "sim/log.hpp"

namespace rrtcp::net {

void Node::receive(Packet p) {
  if (p.dst == id_) {
    auto it = agents_.find(p.flow);
    if (it == agents_.end()) {
      ++undeliverable_;
      return;
    }
    it->second->receive(std::move(p));
    return;
  }
  // Forward.
  PacketHandler* out = default_route_;
  if (auto it = routes_.find(p.dst); it != routes_.end()) out = it->second;
  if (out == nullptr) {
    ++undeliverable_;
    return;
  }
  ++forwarded_;
  out->send(std::move(p));
}

int Node::replace_route_target(PacketHandler* from, PacketHandler* to) {
  int replaced = 0;
  for (auto& [dst, handler] : routes_) {
    if (handler == from) {
      handler = to;
      ++replaced;
    }
  }
  if (default_route_ == from) {
    default_route_ = to;
    ++replaced;
  }
  return replaced;
}

}  // namespace rrtcp::net
