#include "net/node.hpp"

#include "net/link.hpp"
#include "sim/log.hpp"

namespace rrtcp::net {

void Node::receive(Packet p) {
  if (p.dst == id_) {
    Agent** agent = agents_.find(p.flow);
    if (agent == nullptr) {
      ++undeliverable_;
      return;
    }
    (*agent)->receive(std::move(p));
    return;
  }
  // Forward.
  PacketHandler* out = default_route_;
  if (PacketHandler** hit = routes_.find(p.dst); hit != nullptr) out = *hit;
  if (out == nullptr) {
    ++undeliverable_;
    return;
  }
  ++forwarded_;
  out->send(std::move(p));
}

int Node::replace_route_target(PacketHandler* from, PacketHandler* to) {
  int replaced = 0;
  routes_.for_each([&](NodeId /*dst*/, PacketHandler*& handler) {
    if (handler == from) {
      handler = to;
      ++replaced;
    }
  });
  if (default_route_ == from) {
    default_route_ = to;
    ++replaced;
  }
  return replaced;
}

}  // namespace rrtcp::net
