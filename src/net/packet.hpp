// Packet model.
//
// A Packet is a small value type: moving it through queues and links copies
// ~100 bytes and never allocates. Sequence and ACK numbers are 64-bit byte
// offsets — simulations never wrap, which keeps the transport logic free of
// modular arithmetic (wrap-aware 32-bit sequence arithmetic is provided and
// tested separately in tcp/seq.hpp as the production-sized variant).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace rrtcp::net {

using NodeId = std::uint32_t;
using FlowId = std::uint32_t;

inline constexpr NodeId kInvalidNode = ~NodeId{0};

// kCbr is unresponsive datagram cross-traffic (src/traffic/cbr.hpp). It is
// deliberately NOT "data" to the audit layer: pipe-conservation accounting
// (audit/invariant_auditor.hpp) counts TCP segments only, so CBR drops at a
// shared queue do not show up as phantom TCP losses.
enum class PacketType : std::uint8_t { kData, kAck, kCbr };

// One SACK block: [begin, end) in byte offsets.
struct SackBlock {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  friend bool operator==(const SackBlock&, const SackBlock&) = default;
};

inline constexpr int kMaxSackBlocks = 3;

// Transport header carried by both data and ACK packets.
struct TcpHeader {
  std::uint64_t seq = 0;      // data: first byte of this segment
  std::uint64_t ack = 0;      // ack: next byte expected by the receiver
  std::uint32_t payload = 0;  // data: payload length in bytes
  std::uint8_t n_sack = 0;    // ack: number of valid SACK blocks
  std::array<SackBlock, kMaxSackBlocks> sack{};
  // Explicit Congestion Notification (RFC 3168) bits.
  bool ect = false;  // data: ECN-capable transport
  bool ce = false;   // data: congestion experienced (set by a gateway)
  bool ece = false;  // ack: ECN echo (receiver -> sender)
  bool cwr = false;  // data: congestion window reduced (sender -> receiver)
};

struct Packet {
  std::uint64_t uid = 0;  // globally unique, assigned by make_packet()
  FlowId flow = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  PacketType type = PacketType::kData;
  std::uint32_t size_bytes = 0;  // on-wire size incl. headers
  TcpHeader tcp;
  sim::Time sent_at = sim::Time::zero();  // stamped by the first link
  std::uint32_t hops = 0;

  bool is_data() const { return type == PacketType::kData; }
  bool is_ack() const { return type == PacketType::kAck; }
  bool is_cbr() const { return type == PacketType::kCbr; }
  std::string to_string() const;
};

// Allocates the next globally unique packet uid. Uids exist purely for
// tracing/debugging; simulation behavior never depends on them.
std::uint64_t next_packet_uid();

}  // namespace rrtcp::net
