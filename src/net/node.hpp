// Network node: hosts agents (transport endpoints) and forwards packets.
//
// Routing is static: a table mapping destination NodeId -> egress Link,
// plus an optional default route. End hosts typically have only a default
// route; gateways have per-destination entries. Local delivery dispatches
// on FlowId, so multiple connections can terminate on one node.
//
// Both tables are open-addressed flat arrays (net/flat_table.hpp): the
// per-packet lookup is a Fibonacci-hash probe over contiguous slots, and
// every iteration the node performs is in deterministic slot order.
#pragma once

#include <cstdint>

#include "net/flat_table.hpp"
#include "net/packet.hpp"
#include "sim/hot.hpp"

namespace rrtcp::net {

// Anything that can carry a packet away from a node. Link is the real
// implementation; tests substitute capturing fakes.
class PacketHandler {
 public:
  virtual ~PacketHandler() = default;
  virtual void send(Packet p) = 0;
};

// A transport endpoint attached to a Node.
class Agent {
 public:
  virtual ~Agent() = default;
  virtual void receive(Packet p) = 0;
};

class Node {
 public:
  explicit Node(NodeId id) : id_{id} {}
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }

  // Attach `agent` as the local endpoint for `flow`. One agent per flow per
  // node; re-attaching replaces (used by tests).
  void attach_agent(FlowId flow, Agent* agent) {
    agents_.insert_or_assign(flow, agent);
  }
  void detach_agent(FlowId flow) { agents_.erase(flow); }

  void add_route(NodeId dst, PacketHandler* link) {
    routes_.insert_or_assign(dst, link);
  }
  void set_default_route(PacketHandler* link) { default_route_ = link; }

  // Swap every route (and the default) currently pointing at `from` to
  // point at `to` instead. This is how wrappers interpose on an existing
  // topology — e.g. the chaos fault injector (src/chaos/fault.hpp) slides
  // itself between a gateway and its bottleneck link without the topology
  // knowing. Returns the number of entries rewritten.
  int replace_route_target(PacketHandler* from, PacketHandler* to);

  // Packet arriving at this node (from a link, or injected by a local
  // agent). Locally-addressed packets go to the matching agent; everything
  // else is forwarded. Packets with no agent/route are counted and dropped.
  RRTCP_HOT void receive(Packet p);

  // Convenience for agents: identical to receive(), reads as "transmit".
  RRTCP_HOT void inject(Packet p) { receive(std::move(p)); }

  std::uint64_t undeliverable() const { return undeliverable_; }
  std::uint64_t forwarded() const { return forwarded_; }

 private:
  NodeId id_;
  FlatTable32<Agent*> agents_;
  FlatTable32<PacketHandler*> routes_;
  PacketHandler* default_route_ = nullptr;
  std::uint64_t undeliverable_ = 0;
  std::uint64_t forwarded_ = 0;
};

}  // namespace rrtcp::net
