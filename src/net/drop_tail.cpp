#include "net/drop_tail.hpp"

#include "sim/assert.hpp"

namespace rrtcp::net {

DropTailQueue::DropTailQueue(std::uint64_t capacity, Mode mode)
    : capacity_{capacity}, mode_{mode} {
  RRTCP_ASSERT_MSG(capacity > 0, "drop-tail queue needs capacity >= 1");
}

bool DropTailQueue::enqueue(Packet p) {
  const bool full = mode_ == Mode::kPackets
                        ? q_.size() >= capacity_
                        : bytes_ + p.size_bytes > capacity_;
  if (full) {
    note_drop(p);
    return false;
  }
  bytes_ += p.size_bytes;
  q_.push_back(std::move(p));
  ++stats_.enqueued;
  note_enqueue(q_.back());
  return true;
}

std::optional<Packet> DropTailQueue::dequeue() {
  if (q_.empty()) return std::nullopt;
  Packet p = std::move(q_.front());
  q_.pop_front();
  RRTCP_DASSERT(bytes_ >= p.size_bytes);
  bytes_ -= p.size_bytes;
  ++stats_.dequeued;
  note_dequeue(p);
  return p;
}

}  // namespace rrtcp::net
