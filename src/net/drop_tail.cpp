#include "net/drop_tail.hpp"

#include <algorithm>

#include "sim/assert.hpp"

namespace rrtcp::net {

namespace {
// Smallest packet a byte-capacity queue plausibly holds — used only to
// convert a byte capacity into a ring pre-reservation, so an underestimate
// merely shifts a doubling or two back onto the (amortized) grow path.
constexpr std::uint64_t kMinPacketBytes = 64;
}  // namespace

DropTailQueue::DropTailQueue(std::uint64_t capacity, Mode mode)
    : capacity_{capacity}, mode_{mode} {
  RRTCP_ASSERT_MSG(capacity > 0, "drop-tail queue needs capacity >= 1");
  // Pre-size the ring at construction so even a queue whose first packet
  // arrives deep into a run never allocates on the hot path. In packet mode
  // the capacity bounds the depth exactly; cap the reservation so a
  // nominally huge buffer doesn't pin memory it will never use (beyond the
  // cap, amortized doubling takes over).
  const std::uint64_t depth =
      mode_ == Mode::kPackets ? capacity_ : capacity_ / kMinPacketBytes + 1;
  q_.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(depth, 1024)));
}

bool DropTailQueue::enqueue(Packet p) {
  const bool full = mode_ == Mode::kPackets
                        ? q_.size() >= capacity_
                        : bytes_ + p.size_bytes > capacity_;
  if (full) {
    note_drop(p);
    return false;
  }
  bytes_ += p.size_bytes;
  // q_ is a PacketRing (pre-reserved, cold amortized growth), not a std
  // container; the suppression is for the type-blind lite checker.
  // NOLINTNEXTLINE(rrtcp-hot-path-alloc)
  q_.push_back(std::move(p));
  ++stats_.enqueued;
  note_enqueue(q_.back());
  return true;
}

std::optional<Packet> DropTailQueue::dequeue() {
  if (q_.empty()) return std::nullopt;
  Packet p = std::move(q_.front());
  q_.pop_front();
  RRTCP_DASSERT(bytes_ >= p.size_bytes);
  bytes_ -= p.size_bytes;
  ++stats_.dequeued;
  note_dequeue(p);
  return p;
}

}  // namespace rrtcp::net
