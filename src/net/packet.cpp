#include "net/packet.hpp"

#include <atomic>
#include <cstdio>

namespace rrtcp::net {

namespace {
// Atomic: parallel sweep jobs (harness/sweep.cpp) run whole simulations on
// worker threads, all drawing uids from this one counter. Uids only need
// uniqueness — nothing orders on them — so relaxed increments keep sweep
// results deterministic (tests/harness pins CSV byte-equality across
// thread counts).
std::atomic<std::uint64_t> g_next_uid{1};
}  // namespace

std::uint64_t next_packet_uid() {
  return g_next_uid.fetch_add(1, std::memory_order_relaxed);
}

std::string Packet::to_string() const {
  char buf[160];
  if (is_data()) {
    std::snprintf(buf, sizeof buf,
                  "DATA uid=%llu flow=%u seq=%llu len=%u size=%uB",
                  static_cast<unsigned long long>(uid), flow,
                  static_cast<unsigned long long>(tcp.seq), tcp.payload,
                  size_bytes);
  } else if (is_cbr()) {
    std::snprintf(buf, sizeof buf, "CBR  uid=%llu flow=%u size=%uB",
                  static_cast<unsigned long long>(uid), flow, size_bytes);
  } else {
    std::snprintf(buf, sizeof buf,
                  "ACK  uid=%llu flow=%u ack=%llu nsack=%u size=%uB",
                  static_cast<unsigned long long>(uid), flow,
                  static_cast<unsigned long long>(tcp.ack), tcp.n_sack,
                  size_bytes);
  }
  return buf;
}

}  // namespace rrtcp::net
