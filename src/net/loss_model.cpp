#include "net/loss_model.hpp"

#include "sim/assert.hpp"

namespace rrtcp::net {

UniformLossModel::UniformLossModel(double rate, std::uint64_t seed,
                                   bool data_only)
    : rate_{rate}, data_only_{data_only}, rng_{seed, "uniform-loss"} {
  RRTCP_ASSERT(rate >= 0.0 && rate <= 1.0);
}

bool UniformLossModel::should_drop(const Packet& p, sim::Time) {
  if (data_only_ && !p.is_data()) return false;
  if (rng_.bernoulli(rate_)) {
    count_drop();
    return true;
  }
  return false;
}

ListLossModel::ListLossModel(
    std::vector<std::pair<FlowId, std::uint64_t>> losses)
    : pending_{losses.begin(), losses.end()} {}

bool ListLossModel::should_drop(const Packet& p, sim::Time) {
  if (!p.is_data()) return false;
  auto it = pending_.find({p.flow, p.tcp.seq});
  if (it == pending_.end()) return false;
  pending_.erase(it);
  count_drop();
  return true;
}

SegmentLossModel::SegmentLossModel(FlowId flow, std::uint64_t seq,
                                   std::uint64_t times)
    : flow_{flow}, seq_{seq}, remaining_{times} {
  RRTCP_ASSERT(times >= 1);
}

bool SegmentLossModel::should_drop(const Packet& p, sim::Time) {
  if (!p.is_data() || p.flow != flow_ || p.tcp.seq != seq_) return false;
  if (remaining_ == 0) return false;
  --remaining_;
  count_drop();
  return true;
}

CountedLossModel::CountedLossModel(FlowId flow, std::uint64_t first,
                                   std::uint64_t burst)
    : flow_{flow}, first_{first}, last_{first + burst - 1} {
  RRTCP_ASSERT(first >= 1 && burst >= 1);
}

bool CountedLossModel::should_drop(const Packet& p, sim::Time) {
  if (!p.is_data() || p.flow != flow_) return false;
  ++seen_;
  if (seen_ >= first_ && seen_ <= last_) {
    count_drop();
    return true;
  }
  return false;
}

bool CompositeLossModel::should_drop(const Packet& p, sim::Time now) {
  bool drop = false;
  for (auto& m : models_) drop = m->should_drop(p, now) || drop;
  if (drop) count_drop();
  return drop;
}

}  // namespace rrtcp::net
