#include "net/red.hpp"

#include <algorithm>
#include <cmath>

#include "sim/assert.hpp"

namespace rrtcp::net {

RedQueue::RedQueue(sim::Simulator& sim, RedConfig cfg)
    : sim_{sim}, cfg_{cfg}, rng_{cfg.seed, "red-queue"} {
  RRTCP_ASSERT(cfg.buffer_packets > 0);
  RRTCP_ASSERT(cfg.min_th >= 0 && cfg.max_th > cfg.min_th);
  RRTCP_ASSERT(cfg.max_p > 0 && cfg.max_p <= 1.0);
  RRTCP_ASSERT(cfg.w_q > 0 && cfg.w_q <= 1.0);
  idle_since_ = sim.now();
  // Pre-size the ring to the physical buffer so the enqueue path never
  // allocates, even for a queue first touched mid-run (capped as in
  // DropTailQueue — beyond it, amortized doubling takes over).
  q_.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(cfg_.buffer_packets, 1024)));
}

void RedQueue::update_average() {
  if (!idle_) {
    avg_ = (1.0 - cfg_.w_q) * avg_ + cfg_.w_q * static_cast<double>(q_.size());
    return;
  }
  // The queue has been idle: pretend m small packets departed, each taking
  // mean_pkt_tx, so the average decays as if the queue had drained.
  double m = 0.0;
  if (cfg_.mean_pkt_tx > sim::Time::zero()) {
    const sim::Time idle = sim_.now() - idle_since_;
    m = idle.to_seconds() / cfg_.mean_pkt_tx.to_seconds();
  }
  avg_ *= std::pow(1.0 - cfg_.w_q, m);
}

double RedQueue::drop_probability() const {
  if (avg_ < cfg_.min_th) return 0.0;
  double p_b;
  if (avg_ < cfg_.max_th) {
    p_b = cfg_.max_p * (avg_ - cfg_.min_th) / (cfg_.max_th - cfg_.min_th);
  } else if (cfg_.gentle && avg_ < 2.0 * cfg_.max_th) {
    p_b = cfg_.max_p +
          (1.0 - cfg_.max_p) * (avg_ - cfg_.max_th) / cfg_.max_th;
  } else {
    return 1.0;
  }
  // Spread drops out: with `count_` packets since the last drop, the
  // effective probability makes inter-drop gaps roughly uniform.
  const double denom = 1.0 - static_cast<double>(std::max(count_, 0L)) * p_b;
  if (denom <= p_b) return 1.0;
  return p_b / denom;
}

bool RedQueue::enqueue(Packet p) {
  update_average();
  idle_ = false;

  bool drop = false;
  bool early = false;

  if (q_.size() >= cfg_.buffer_packets) {
    drop = true;   // physical buffer exhausted — the only forced drop
    count_ = 0;    // a drop occurred: restart the inter-drop spacing
  } else if (avg_ >= cfg_.min_th) {
    const double pa = drop_probability();
    if (pa >= 1.0 || rng_.bernoulli(pa)) {
      // Any drop decided by RED is an "early" drop in the statistics,
      // including the deterministic ones where pa saturates at 1
      // (avg_ >= max_th non-gentle, avg_ >= 2*max_th gentle); forced
      // drops are buffer overflows only.
      early = true;
      // ECN marking stays restricted to the probabilistic region: at
      // avg_ >= max_th RED is meant to drop, not mark (RFC 3168 §7).
      const bool markable = avg_ < cfg_.max_th || cfg_.gentle;
      if (cfg_.ecn && markable && p.tcp.ect) {
        // Mark instead of dropping: the congestion signal still reaches
        // the sender, the packet still reaches the receiver.
        p.tcp.ce = true;
        ++ecn_marks_;
      } else {
        drop = true;
      }
      count_ = 0;
    } else {
      ++count_;
    }
  } else {
    count_ = -1;
  }

  if (drop) {
    note_drop(p, early ? DropReason::kEarly : DropReason::kOverflow);
    if (early)
      ++early_drops_;
    else
      ++forced_drops_;
    if (q_.empty()) {
      idle_ = true;
      idle_since_ = sim_.now();
    }
    return false;
  }

  bytes_ += p.size_bytes;
  // q_ is a PacketRing (pre-reserved, cold amortized growth), not a std
  // container; the suppression is for the type-blind lite checker.
  // NOLINTNEXTLINE(rrtcp-hot-path-alloc)
  q_.push_back(std::move(p));
  ++stats_.enqueued;
  note_enqueue(q_.back());
  return true;
}

std::optional<Packet> RedQueue::dequeue() {
  if (q_.empty()) return std::nullopt;
  Packet p = std::move(q_.front());
  q_.pop_front();
  bytes_ -= p.size_bytes;
  ++stats_.dequeued;
  note_dequeue(p);
  if (q_.empty()) {
    idle_ = true;
    idle_since_ = sim_.now();
  }
  return p;
}

}  // namespace rrtcp::net
