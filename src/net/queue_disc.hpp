// Queue discipline interface.
//
// A QueueDisc decides, packet by packet, whether to admit an arrival and in
// what order to release departures. Implementations: DropTailQueue (FIFO,
// finite buffer) and RedQueue (Random Early Detection). Links own exactly
// one QueueDisc for their egress buffer.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "net/packet.hpp"

namespace rrtcp::net {

struct QueueStats {
  std::uint64_t enqueued = 0;   // packets admitted
  std::uint64_t dequeued = 0;   // packets released to the link
  std::uint64_t dropped = 0;    // packets rejected (any reason)
  std::uint64_t bytes_dropped = 0;
};

class QueueDisc {
 public:
  virtual ~QueueDisc() = default;

  // Offer a packet to the queue. Returns true if admitted; false if dropped
  // (the packet is simply discarded — the caller keeps no copy).
  virtual bool enqueue(Packet p) = 0;

  // Remove and return the next packet, or nullopt if empty.
  virtual std::optional<Packet> dequeue() = 0;

  // Current occupancy.
  virtual std::size_t len_packets() const = 0;
  virtual std::uint64_t len_bytes() const = 0;

  bool empty() const { return len_packets() == 0; }

  const QueueStats& stats() const { return stats_; }

  // Invoked for every dropped packet (before it is discarded); used for
  // per-flow loss accounting in the experiment harnesses.
  void set_drop_callback(std::function<void(const Packet&)> fn) {
    drop_fn_ = std::move(fn);
  }

 protected:
  // Implementations call this for every rejected packet.
  void note_drop(const Packet& p) {
    ++stats_.dropped;
    stats_.bytes_dropped += p.size_bytes;
    if (drop_fn_) drop_fn_(p);
  }

  QueueStats stats_;

 private:
  std::function<void(const Packet&)> drop_fn_;
};

}  // namespace rrtcp::net
