// Queue discipline interface.
//
// A QueueDisc decides, packet by packet, whether to admit an arrival and in
// what order to release departures. Implementations: DropTailQueue (FIFO,
// finite buffer) and RedQueue (Random Early Detection). Links own exactly
// one QueueDisc for their egress buffer.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "net/packet.hpp"

namespace rrtcp::net {

struct QueueStats {
  std::uint64_t enqueued = 0;   // packets admitted
  std::uint64_t dequeued = 0;   // packets released to the link
  std::uint64_t dropped = 0;    // packets rejected (any reason)
  std::uint64_t bytes_dropped = 0;
};

// Why a packet was rejected: a physical buffer overflow, or a drop the
// discipline chose (RED's probabilistic / threshold drops). DropTail only
// ever overflows.
enum class DropReason : std::uint8_t { kOverflow, kEarly };

class QueueDisc;

// Per-event observer for queue disciplines; used by the protocol-invariant
// auditor (src/audit) to cross-check a queue's own accounting against the
// event stream. All methods have empty defaults. Dispatch is a single
// branch-on-null per operation when no observer is attached.
class QueueObserver {
 public:
  virtual ~QueueObserver() = default;
  virtual void on_enqueue(const Packet& /*p*/, const QueueDisc& /*q*/) {}
  virtual void on_dequeue(const Packet& /*p*/, const QueueDisc& /*q*/) {}
  virtual void on_drop(const Packet& /*p*/, DropReason /*why*/,
                       const QueueDisc& /*q*/) {}
};

class QueueDisc {
 public:
  virtual ~QueueDisc() = default;

  // Offer a packet to the queue. Returns true if admitted; false if dropped
  // (the packet is simply discarded — the caller keeps no copy).
  virtual bool enqueue(Packet p) = 0;

  // Remove and return the next packet, or nullopt if empty.
  virtual std::optional<Packet> dequeue() = 0;

  // Current occupancy.
  virtual std::size_t len_packets() const = 0;
  virtual std::uint64_t len_bytes() const = 0;

  bool empty() const { return len_packets() == 0; }

  const QueueStats& stats() const { return stats_; }

  // Invoked for every dropped packet (before it is discarded); used for
  // per-flow loss accounting in the experiment harnesses.
  void set_drop_callback(std::function<void(const Packet&)> fn) {
    drop_fn_ = std::move(fn);
  }

  // Attach (or, with nullptr, detach) a per-event observer. One observer
  // per queue; the caller keeps ownership.
  void set_observer(QueueObserver* obs) { observer_ = obs; }

 protected:
  // Implementations call this for every rejected packet.
  void note_drop(const Packet& p, DropReason why = DropReason::kOverflow) {
    ++stats_.dropped;
    stats_.bytes_dropped += p.size_bytes;
    if (drop_fn_) drop_fn_(p);
    if (observer_ != nullptr) observer_->on_drop(p, why, *this);
  }

  // Implementations call these for every admitted / released packet, after
  // updating their occupancy and stats.
  void note_enqueue(const Packet& p) {
    if (observer_ != nullptr) observer_->on_enqueue(p, *this);
  }
  void note_dequeue(const Packet& p) {
    if (observer_ != nullptr) observer_->on_dequeue(p, *this);
  }

  QueueStats stats_;

 private:
  std::function<void(const Packet&)> drop_fn_;
  QueueObserver* observer_ = nullptr;
};

}  // namespace rrtcp::net
