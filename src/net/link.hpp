// Unidirectional point-to-point link.
//
// A Link models an output buffer (its QueueDisc), a transmitter that
// serializes one packet at a time at `bandwidth_bps`, and a propagation
// pipe of fixed delay. An optional LossModel is consulted *before* the
// queue — that is where a gateway's "artificial losses" live.
//
// Timing of a packet that arrives at an idle link:
//   t0                 enqueue
//   t0 + tx            last bit leaves (tx = size*8/bandwidth)
//   t0 + tx + delay    delivered to the destination node
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/loss_model.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "net/queue_disc.hpp"
#include "net/reorder.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace rrtcp::net {

// Cross-engine delivery target for a link whose destination node lives in
// another simulation shard. When installed, the link hands the packet off
// at serialization end (the earliest instant the sending engine knows the
// full arrival schedule), stamped with the absolute arrival time
// (serialization end + propagation + reorder jitter), instead of calling
// dst()->receive() locally. push() runs on the sending shard's thread; the
// receiving shard drains it only at synchronization barriers.
class RemoteSink {
 public:
  virtual ~RemoteSink() = default;
  virtual void push(sim::Time arrival, Packet p) = 0;
};

struct LinkConfig {
  std::int64_t bandwidth_bps = 10'000'000;
  sim::Time prop_delay = sim::Time::milliseconds(1);
  std::string name = "link";
};

class Link final : public PacketHandler {
 public:
  Link(sim::Simulator& sim, LinkConfig cfg, std::unique_ptr<QueueDisc> queue);
  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  // Wiring (done once by the topology builder).
  void set_dst(Node* dst) { dst_ = dst; }
  Node* dst() const { return dst_; }

  // Route deliveries to another shard instead of dst(). Set once by the
  // sharded engine's builder; mutually exclusive with local delivery.
  void set_remote_sink(RemoteSink* sink) { remote_ = sink; }
  RemoteSink* remote_sink() const { return remote_; }

  // Install/replace the ingress loss model (may be null).
  void set_loss_model(std::unique_ptr<LossModel> model) {
    loss_ = std::move(model);
  }
  LossModel* loss_model() const { return loss_.get(); }

  // Install/replace a reordering model: selected packets are delivered
  // with an extra delay, letting later packets overtake them.
  void set_reorder_model(std::unique_ptr<ReorderModel> model) {
    reorder_ = std::move(model);
  }
  ReorderModel* reorder_model() const { return reorder_.get(); }

  // Offer a packet to the link. It may be dropped by the loss model or the
  // queue; otherwise it is delivered to dst() after queueing + tx + delay.
  RRTCP_HOT void send(Packet p) override;

  QueueDisc& queue() { return *queue_; }
  const QueueDisc& queue() const { return *queue_; }
  const LinkConfig& config() const { return cfg_; }

  // Serialization time of one packet of `bytes` on this link.
  sim::Time tx_time(std::uint32_t bytes) const {
    return sim::Time::transmission(bytes, cfg_.bandwidth_bps);
  }

  // Statistics.
  std::uint64_t packets_delivered() const { return delivered_; }
  std::uint64_t bytes_delivered() const { return bytes_delivered_; }
  std::uint64_t loss_model_drops() const { return loss_drops_; }
  // Fraction of [0, now] the transmitter spent busy.
  double utilization(sim::Time now) const;

 private:
  RRTCP_HOT void try_transmit();

  sim::Simulator& sim_;
  LinkConfig cfg_;
  std::unique_ptr<QueueDisc> queue_;
  std::unique_ptr<LossModel> loss_;
  std::unique_ptr<ReorderModel> reorder_;
  Node* dst_ = nullptr;
  RemoteSink* remote_ = nullptr;

  bool busy_ = false;
  std::uint64_t delivered_ = 0;
  std::uint64_t bytes_delivered_ = 0;
  std::uint64_t loss_drops_ = 0;
  sim::Time busy_time_ = sim::Time::zero();
};

}  // namespace rrtcp::net
