// Growable ring buffer of Packets — the pooled backing store for queue
// disciplines.
//
// std::deque allocates and frees its block map as a queue breathes, which
// puts allocator traffic on every sustained burst. PacketRing keeps one
// flat power-of-two array that doubles on overflow and NEVER shrinks: after
// the first few RTTs warm it to the queue's working depth, enqueue/dequeue
// are index arithmetic only — the allocation-free steady state the
// forwarding path promises (see DESIGN.md §11).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "net/packet.hpp"
#include "sim/assert.hpp"
#include "sim/hot.hpp"

namespace rrtcp::net {

class PacketRing {
 public:
  PacketRing() = default;

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }
  // Slots currently held (high-water mark of the queue, rounded up).
  std::size_t capacity() const { return buf_.size(); }

  RRTCP_HOT void push_back(Packet p) {
    if (count_ == buf_.size()) grow();
    buf_[(head_ + count_) & mask_] = std::move(p);
    ++count_;
  }

  Packet& front() {
    RRTCP_DASSERT(count_ > 0);
    return buf_[head_];
  }
  const Packet& front() const {
    RRTCP_DASSERT(count_ > 0);
    return buf_[head_];
  }

  Packet& back() {
    RRTCP_DASSERT(count_ > 0);
    return buf_[(head_ + count_ - 1) & mask_];
  }
  const Packet& back() const {
    RRTCP_DASSERT(count_ > 0);
    return buf_[(head_ + count_ - 1) & mask_];
  }

  RRTCP_HOT Packet pop_front() {
    RRTCP_DASSERT(count_ > 0);
    Packet p = std::move(buf_[head_]);
    head_ = (head_ + 1) & mask_;
    --count_;
    return p;
  }

  // Pre-size to at least `n` slots (rounded up to a power of two) so even
  // the first burst allocates nothing.
  void reserve(std::size_t n) {
    if (n > buf_.size()) grow_to(ceil_pow2(n));
  }

 private:
  static std::size_t ceil_pow2(std::size_t n) {
    std::size_t c = kMinCapacity;
    while (c < n) c <<= 1;
    return c;
  }

  RRTCP_COLD void grow() {
    grow_to(buf_.empty() ? kMinCapacity : buf_.size() * 2);
  }

  RRTCP_COLD void grow_to(std::size_t new_cap) {
    std::vector<Packet> next(new_cap);
    for (std::size_t i = 0; i < count_; ++i)
      next[i] = std::move(buf_[(head_ + i) & mask_]);
    buf_ = std::move(next);
    head_ = 0;
    mask_ = new_cap - 1;
  }

  static constexpr std::size_t kMinCapacity = 16;

  std::vector<Packet> buf_;
  std::size_t mask_ = 0;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace rrtcp::net
