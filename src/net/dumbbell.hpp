// Dumbbell topology preset (the paper's Figure 4).
//
//   S1 ---\                      /--- K1
//   S2 ----+-- R1 ======= R2 ---+---- K2
//   Sn ---/    (bottleneck)      \--- Kn
//
// n sender hosts S_i and receiver hosts K_i around two gateways. The
// forward bottleneck R1->R2 carries data; the reverse bottleneck R2->R1
// carries ACKs. The queue discipline *under test* sits on the forward
// bottleneck; every other buffer is a large drop-tail queue (effectively
// lossless), matching the paper's setup where all drops happen at R1.
//
// Since the topology-graph subsystem landed, DumbbellTopology is a thin
// preset over topo::TopologyGraph: it emits a GraphSpec (same node ids,
// same link order, same queues as the original hand-built wiring — traces
// are byte-identical) and keeps its familiar accessor surface. The
// reverse bottleneck is first-class: rate, delay and queue are
// configurable so ACK-path congestion is reachable (reverse bulk flows,
// ACK compression — see src/traffic/).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "net/link.hpp"
#include "net/node.hpp"
#include "sim/simulator.hpp"
#include "topo/graph.hpp"

namespace rrtcp::net {

struct DumbbellConfig {
  int n_flows = 3;
  std::int64_t bottleneck_bps = 800'000;                     // Table 3
  sim::Time bottleneck_delay = sim::Time::milliseconds(100); // one-way
  std::int64_t side_bps = 10'000'000;                        // Table 3
  sim::Time side_delay = sim::Time::zero();
  // Optional per-flow override of the sender-side access delay (S_i<->R1,
  // both directions): lets scenarios give flows heterogeneous RTTs (the
  // classic AIMD RTT-unfairness setup). Takes precedence over side_delay
  // for the flows it returns a value for.
  std::function<std::optional<sim::Time>(int flow_index)> side_delay_for;
  // Factory for the forward-bottleneck queue (the device under test).
  // Default: drop-tail with 8-packet buffer (Table 3).
  std::function<std::unique_ptr<QueueDisc>()> make_bottleneck_queue;
  // Buffers everywhere else — large enough to be lossless.
  std::uint64_t side_queue_packets = 10'000;
  std::uint64_t reverse_queue_packets = 10'000;
  // Reverse-bottleneck overrides (R2->R1, the ACK path). Defaults mirror
  // the forward bottleneck's rate/delay with the deep drop-tail buffer
  // above — the paper's effectively-uncongested ACK path. Set a slower
  // rate / smaller queue (or a factory) to make ACK-path congestion real.
  std::int64_t reverse_bps = 0;                 // 0 = bottleneck_bps
  std::optional<sim::Time> reverse_delay;       // nullopt = bottleneck_delay
  std::function<std::unique_ptr<QueueDisc>()> make_reverse_queue;
};

class DumbbellTopology {
 public:
  DumbbellTopology(sim::Simulator& sim, DumbbellConfig cfg);

  int n_flows() const { return cfg_.n_flows; }

  Node& sender_node(int i) { return graph_->node(sender_index(i)); }
  Node& receiver_node(int i) { return graph_->node(receiver_index(i)); }
  Node& r1() { return graph_->node(kR1); }
  Node& r2() { return graph_->node(kR2); }

  // The links hosting the shared queues.
  Link& bottleneck() { return graph_->link(0); }          // R1 -> R2 (data)
  Link& reverse_bottleneck() { return graph_->link(1); }  // R2 -> R1 (ACKs)

  // The underlying graph (node indices via *_index below).
  topo::TopologyGraph& graph() { return *graph_; }
  int sender_index(int i) const { return kHosts + i; }
  int receiver_index(int i) const { return kHosts + cfg_.n_flows + i; }

  // Round-trip propagation+transmission baseline for a 1000 B packet (no
  // queueing), useful for sanity checks in tests.
  sim::Time base_rtt(std::uint32_t data_bytes, std::uint32_t ack_bytes) const;

  const DumbbellConfig& config() const { return cfg_; }

 private:
  // Node-id layout, matching the original hand-built wiring: R1, R2, the n
  // sender hosts, then the n receiver hosts.
  static constexpr int kR1 = 0;
  static constexpr int kR2 = 1;
  static constexpr int kHosts = 2;

  DumbbellConfig cfg_;
  std::unique_ptr<topo::TopologyGraph> graph_;
};

}  // namespace rrtcp::net
