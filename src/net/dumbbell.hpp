// Dumbbell topology builder (the paper's Figure 4).
//
//   S1 ---\                      /--- K1
//   S2 ----+-- R1 ======= R2 ---+---- K2
//   Sn ---/    (bottleneck)      \--- Kn
//
// n sender hosts S_i and receiver hosts K_i around two gateways. The
// forward bottleneck R1->R2 carries data; the reverse bottleneck R2->R1
// carries ACKs. The queue discipline *under test* sits on the forward
// bottleneck; every other buffer is a large drop-tail queue (effectively
// lossless), matching the paper's setup where all drops happen at R1.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "net/link.hpp"
#include "net/node.hpp"
#include "sim/simulator.hpp"

namespace rrtcp::net {

struct DumbbellConfig {
  int n_flows = 3;
  std::int64_t bottleneck_bps = 800'000;                     // Table 3
  sim::Time bottleneck_delay = sim::Time::milliseconds(100); // one-way
  std::int64_t side_bps = 10'000'000;                        // Table 3
  sim::Time side_delay = sim::Time::zero();
  // Optional per-flow override of the sender-side access delay (S_i<->R1,
  // both directions): lets scenarios give flows heterogeneous RTTs (the
  // classic AIMD RTT-unfairness setup). Takes precedence over side_delay
  // for the flows it returns a value for.
  std::function<std::optional<sim::Time>(int flow_index)> side_delay_for;
  // Factory for the forward-bottleneck queue (the device under test).
  // Default: drop-tail with 8-packet buffer (Table 3).
  std::function<std::unique_ptr<QueueDisc>()> make_bottleneck_queue;
  // Buffers everywhere else — large enough to be lossless.
  std::uint64_t side_queue_packets = 10'000;
  std::uint64_t reverse_queue_packets = 10'000;
};

class DumbbellTopology {
 public:
  DumbbellTopology(sim::Simulator& sim, DumbbellConfig cfg);

  int n_flows() const { return cfg_.n_flows; }

  Node& sender_node(int i) { return *senders_.at(i); }
  Node& receiver_node(int i) { return *receivers_.at(i); }
  Node& r1() { return *r1_; }
  Node& r2() { return *r2_; }

  // The links hosting the shared queues.
  Link& bottleneck() { return *fwd_bottleneck_; }        // R1 -> R2 (data)
  Link& reverse_bottleneck() { return *rev_bottleneck_; }  // R2 -> R1 (ACKs)

  // Round-trip propagation+transmission baseline for a 1000 B packet (no
  // queueing), useful for sanity checks in tests.
  sim::Time base_rtt(std::uint32_t data_bytes, std::uint32_t ack_bytes) const;

  const DumbbellConfig& config() const { return cfg_; }

 private:
  Node* make_node();
  Link* make_link(LinkConfig lc, std::uint64_t queue_pkts, Node& dst);

  sim::Simulator& sim_;
  DumbbellConfig cfg_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  Node* r1_ = nullptr;
  Node* r2_ = nullptr;
  std::vector<Node*> senders_;
  std::vector<Node*> receivers_;
  Link* fwd_bottleneck_ = nullptr;
  Link* rev_bottleneck_ = nullptr;
};

}  // namespace rrtcp::net
