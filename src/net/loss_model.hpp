// Loss models: deterministic and random packet-drop injection.
//
// The paper introduces losses two ways: implicitly (buffer overflow at a
// drop-tail/RED gateway) and explicitly ("artificial losses are introduced
// at the gateway R1", Section 4). A LossModel attached to a Link is
// consulted before the egress queue; it realizes the explicit kind, and —
// for the Figure 5 scenarios — lets us reproduce the exact "3 drops / 6
// drops within one window" patterns deterministically.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "net/packet.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace rrtcp::net {

class LossModel {
 public:
  virtual ~LossModel() = default;
  // Return true to drop this packet (consulted once per link arrival).
  virtual bool should_drop(const Packet& p, sim::Time now) = 0;

  std::uint64_t drops() const { return drops_; }

 protected:
  void count_drop() { ++drops_; }

 private:
  std::uint64_t drops_ = 0;
};

// Drops each data packet independently with fixed probability. ACKs pass
// through unless data_only is false.
class UniformLossModel final : public LossModel {
 public:
  UniformLossModel(double rate, std::uint64_t seed, bool data_only = true);
  bool should_drop(const Packet& p, sim::Time now) override;

  double rate() const { return rate_; }

 private:
  double rate_;
  bool data_only_;
  sim::Rng rng_;
};

// Drops specific (flow, seq) data segments exactly once each — later
// retransmissions of the same seq pass. This is how the Figure 5 scenarios
// carve an exact k-packet burst out of one window.
class ListLossModel final : public LossModel {
 public:
  // losses: pairs of (flow, first byte of the segment to drop)
  explicit ListLossModel(
      std::vector<std::pair<FlowId, std::uint64_t>> losses);
  bool should_drop(const Packet& p, sim::Time now) override;

  std::size_t remaining() const { return pending_.size(); }

 private:
  std::set<std::pair<FlowId, std::uint64_t>> pending_;
};

// Drops the first `times` transmissions of one specific segment (flow,
// seq): with times >= 2 this models retransmission loss, which forces the
// sender onto the coarse-timeout path.
class SegmentLossModel final : public LossModel {
 public:
  SegmentLossModel(FlowId flow, std::uint64_t seq, std::uint64_t times);
  bool should_drop(const Packet& p, sim::Time now) override;

 private:
  FlowId flow_;
  std::uint64_t seq_;
  std::uint64_t remaining_;
};

// Drops the n-th..(n+burst-1)-th *data* arrivals of one flow (1-based count
// of arrivals at this link, counting retransmissions). Useful for loss
// patterns positioned by packet count rather than byte offset.
class CountedLossModel final : public LossModel {
 public:
  CountedLossModel(FlowId flow, std::uint64_t first, std::uint64_t burst);
  bool should_drop(const Packet& p, sim::Time now) override;

 private:
  FlowId flow_;
  std::uint64_t first_;
  std::uint64_t last_;
  std::uint64_t seen_ = 0;
};

// Composes several models: a packet is dropped if any constituent says so.
// Constituents are always all consulted so their arrival counters advance
// consistently.
class CompositeLossModel final : public LossModel {
 public:
  void add(std::unique_ptr<LossModel> m) { models_.push_back(std::move(m)); }
  bool should_drop(const Packet& p, sim::Time now) override;

 private:
  std::vector<std::unique_ptr<LossModel>> models_;
};

}  // namespace rrtcp::net
