#include "net/dumbbell.hpp"

#include "net/drop_tail.hpp"
#include "sim/assert.hpp"

namespace rrtcp::net {

DumbbellTopology::DumbbellTopology(sim::Simulator& sim, DumbbellConfig cfg)
    : sim_{sim}, cfg_{std::move(cfg)} {
  RRTCP_ASSERT(cfg_.n_flows >= 1);
  if (!cfg_.make_bottleneck_queue) {
    cfg_.make_bottleneck_queue = [] {
      return std::make_unique<DropTailQueue>(8);
    };
  }

  r1_ = make_node();
  r2_ = make_node();
  for (int i = 0; i < cfg_.n_flows; ++i) senders_.push_back(make_node());
  for (int i = 0; i < cfg_.n_flows; ++i) receivers_.push_back(make_node());

  // Bottleneck pair. The forward direction gets the queue under test.
  {
    LinkConfig lc{cfg_.bottleneck_bps, cfg_.bottleneck_delay, "R1->R2"};
    auto link = std::make_unique<Link>(sim_, lc, cfg_.make_bottleneck_queue());
    link->set_dst(r2_);
    fwd_bottleneck_ = link.get();
    links_.push_back(std::move(link));
  }
  {
    LinkConfig lc{cfg_.bottleneck_bps, cfg_.bottleneck_delay, "R2->R1"};
    auto link = std::make_unique<Link>(
        sim_, lc, std::make_unique<DropTailQueue>(cfg_.reverse_queue_packets));
    link->set_dst(r1_);
    rev_bottleneck_ = link.get();
    links_.push_back(std::move(link));
  }

  for (int i = 0; i < cfg_.n_flows; ++i) {
    Node& s = *senders_[i];
    Node& k = *receivers_[i];
    char name[32];

    sim::Time sender_side_delay = cfg_.side_delay;
    if (cfg_.side_delay_for) {
      if (auto d = cfg_.side_delay_for(i)) sender_side_delay = *d;
    }

    std::snprintf(name, sizeof name, "S%d->R1", i + 1);
    Link* s_r1 = make_link({cfg_.side_bps, sender_side_delay, name},
                           cfg_.side_queue_packets, *r1_);
    std::snprintf(name, sizeof name, "R1->S%d", i + 1);
    Link* r1_s = make_link({cfg_.side_bps, sender_side_delay, name},
                           cfg_.side_queue_packets, s);
    std::snprintf(name, sizeof name, "R2->K%d", i + 1);
    Link* r2_k = make_link({cfg_.side_bps, cfg_.side_delay, name},
                           cfg_.side_queue_packets, k);
    std::snprintf(name, sizeof name, "K%d->R2", i + 1);
    Link* k_r2 = make_link({cfg_.side_bps, cfg_.side_delay, name},
                           cfg_.side_queue_packets, *r2_);

    // Hosts: everything goes to their gateway.
    s.set_default_route(s_r1);
    k.set_default_route(k_r2);
    // Gateways: receivers are across the bottleneck, senders are local.
    r1_->add_route(k.id(), fwd_bottleneck_);
    r1_->add_route(s.id(), r1_s);
    r2_->add_route(k.id(), r2_k);
    r2_->add_route(s.id(), rev_bottleneck_);
  }
}

Node* DumbbellTopology::make_node() {
  nodes_.push_back(std::make_unique<Node>(static_cast<NodeId>(nodes_.size())));
  return nodes_.back().get();
}

Link* DumbbellTopology::make_link(LinkConfig lc, std::uint64_t queue_pkts,
                                  Node& dst) {
  auto link = std::make_unique<Link>(
      sim_, std::move(lc), std::make_unique<DropTailQueue>(queue_pkts));
  link->set_dst(&dst);
  links_.push_back(std::move(link));
  return links_.back().get();
}

sim::Time DumbbellTopology::base_rtt(std::uint32_t data_bytes,
                                     std::uint32_t ack_bytes) const {
  using sim::Time;
  const Time fwd = Time::transmission(data_bytes, cfg_.side_bps) * 2 +
                   Time::transmission(data_bytes, cfg_.bottleneck_bps) +
                   cfg_.side_delay * 2 + cfg_.bottleneck_delay;
  const Time rev = Time::transmission(ack_bytes, cfg_.side_bps) * 2 +
                   Time::transmission(ack_bytes, cfg_.bottleneck_bps) +
                   cfg_.side_delay * 2 + cfg_.bottleneck_delay;
  return fwd + rev;
}

}  // namespace rrtcp::net
