#include "net/dumbbell.hpp"

#include <cstdio>

#include "net/drop_tail.hpp"
#include "sim/assert.hpp"

namespace rrtcp::net {

DumbbellTopology::DumbbellTopology(sim::Simulator& sim, DumbbellConfig cfg)
    : cfg_{std::move(cfg)} {
  RRTCP_ASSERT(cfg_.n_flows >= 1);
  if (!cfg_.make_bottleneck_queue) {
    cfg_.make_bottleneck_queue = [] {
      return std::make_unique<DropTailQueue>(8);
    };
  }

  // Emit the graph spec in the exact order the hand-built topology used:
  // nodes R1, R2, S1..Sn, K1..Kn; links fwd bottleneck, rev bottleneck,
  // then per flow S->R1, R1->S, R2->K, K->R2. Node ids and queue
  // construction order — and therefore traces — match the original.
  topo::GraphSpec g;
  g.add_node("R1");
  g.add_node("R2");
  for (int i = 0; i < cfg_.n_flows; ++i)
    g.add_node("S" + std::to_string(i + 1));
  for (int i = 0; i < cfg_.n_flows; ++i)
    g.add_node("K" + std::to_string(i + 1));

  {
    topo::LinkSpec fwd;
    fwd.from = kR1;
    fwd.to = kR2;
    fwd.bandwidth_bps = cfg_.bottleneck_bps;
    fwd.delay = cfg_.bottleneck_delay;
    fwd.name = "R1->R2";
    fwd.make_queue = [make = cfg_.make_bottleneck_queue](sim::Simulator&) {
      return make();
    };
    g.add_link(std::move(fwd));
  }
  {
    topo::LinkSpec rev;
    rev.from = kR2;
    rev.to = kR1;
    rev.bandwidth_bps = cfg_.reverse_bps > 0 ? cfg_.reverse_bps
                                             : cfg_.bottleneck_bps;
    rev.delay = cfg_.reverse_delay.value_or(cfg_.bottleneck_delay);
    rev.queue_packets = cfg_.reverse_queue_packets;
    rev.name = "R2->R1";
    if (cfg_.make_reverse_queue) {
      rev.make_queue = [make = cfg_.make_reverse_queue](sim::Simulator&) {
        return make();
      };
    }
    g.add_link(std::move(rev));
  }

  for (int i = 0; i < cfg_.n_flows; ++i) {
    const int s = sender_index(i);
    const int k = receiver_index(i);
    char name[32];

    sim::Time sender_side_delay = cfg_.side_delay;
    if (cfg_.side_delay_for) {
      if (auto d = cfg_.side_delay_for(i)) sender_side_delay = *d;
    }

    auto side = [&](int from, int to, sim::Time delay, const char* fmt) {
      topo::LinkSpec ls;
      ls.from = from;
      ls.to = to;
      ls.bandwidth_bps = cfg_.side_bps;
      ls.delay = delay;
      ls.queue_packets = cfg_.side_queue_packets;
      std::snprintf(name, sizeof name, fmt, i + 1);
      ls.name = name;
      g.add_link(std::move(ls));
    };
    side(s, kR1, sender_side_delay, "S%d->R1");
    side(kR1, s, sender_side_delay, "R1->S%d");
    side(kR2, k, cfg_.side_delay, "R2->K%d");
    side(k, kR2, cfg_.side_delay, "K%d->R2");
  }

  graph_ = std::make_unique<topo::TopologyGraph>(sim, std::move(g));
}

sim::Time DumbbellTopology::base_rtt(std::uint32_t data_bytes,
                                     std::uint32_t ack_bytes) const {
  using sim::Time;
  const std::int64_t rev_bps =
      cfg_.reverse_bps > 0 ? cfg_.reverse_bps : cfg_.bottleneck_bps;
  const Time rev_delay = cfg_.reverse_delay.value_or(cfg_.bottleneck_delay);
  const Time fwd = Time::transmission(data_bytes, cfg_.side_bps) * 2 +
                   Time::transmission(data_bytes, cfg_.bottleneck_bps) +
                   cfg_.side_delay * 2 + cfg_.bottleneck_delay;
  const Time rev = Time::transmission(ack_bytes, cfg_.side_bps) * 2 +
                   Time::transmission(ack_bytes, rev_bps) +
                   cfg_.side_delay * 2 + rev_delay;
  return fwd + rev;
}

}  // namespace rrtcp::net
