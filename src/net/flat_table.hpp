// Open-addressed flat hash table for the per-node forwarding state.
//
// Node used to key its route and agent tables with std::unordered_map,
// which costs a pointer chase per bucket hop on every forwarded packet
// and — worse for this repo — iterates in hash-bucket order, which is
// the canonical nondeterminism hazard the rrtcp-nondeterministic-
// iteration check exists to catch. FlatTable32 replaces it with a single
// contiguous slot array:
//
//  * keys are 32-bit ids (NodeId / FlowId); the all-ones value
//    (net::kInvalidNode / kInvalidFlow) doubles as the empty-slot
//    sentinel, so a slot is exactly {key, value} with no metadata byte;
//  * lookup is Fibonacci-hash + linear probing over a power-of-two
//    array — one cache line covers four slots, and the expected probe
//    length at the 0.75 load cap is ~1.5;
//  * erase uses backward-shift deletion (no tombstones), so probe
//    chains never degrade over interpose/detach churn;
//  * iteration (for_each) walks slots in array order. That order is a
//    pure function of the insertion/erase history, never of pointer
//    values or a hash-seed — identical runs iterate identically, which
//    is what makes replace_route_target() trace-safe.
//
// The table only allocates in reserve()/grow (amortized, setup-time);
// find() is allocation-free and lives on the per-packet forwarding path.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/assert.hpp"
#include "sim/hot.hpp"

namespace rrtcp::net {

template <typename V>
class FlatTable32 {
 public:
  // All-ones key marks an empty slot; ids never take this value
  // (it is net::kInvalidNode / the invalid flow id).
  static constexpr std::uint32_t kEmptyKey = 0xFFFFFFFFu;

  FlatTable32() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Pre-size for at least `n` entries without rehashing.
  void reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (cap * 3 < n * 4) cap <<= 1;  // keep load <= 0.75
    if (cap > capacity()) rehash(cap);
  }

  // Insert `key` -> `value`, overwriting any existing entry.
  void insert_or_assign(std::uint32_t key, V value) {
    RRTCP_DASSERT(key != kEmptyKey);
    if (slots_.empty() || (size_ + 1) * 4 > capacity() * 3)
      rehash(slots_.empty() ? kMinCapacity : capacity() * 2);
    std::uint32_t i = index_of(key);
    while (slots_[i].key != kEmptyKey && slots_[i].key != key)
      i = (i + 1) & mask_;
    if (slots_[i].key == kEmptyKey) ++size_;
    slots_[i] = Slot{key, value};
  }

  // Pointer to the value for `key`, or nullptr. Allocation-free.
  RRTCP_HOT V* find(std::uint32_t key) {
    if (size_ == 0) return nullptr;
    std::uint32_t i = index_of(key);
    while (slots_[i].key != kEmptyKey) {
      if (slots_[i].key == key) return &slots_[i].value;
      i = (i + 1) & mask_;
    }
    return nullptr;
  }
  RRTCP_HOT const V* find(std::uint32_t key) const {
    return const_cast<FlatTable32*>(this)->find(key);
  }

  // Remove `key` if present; true if an entry was removed. Backward-shift
  // deletion keeps every remaining probe chain contiguous (no tombstones).
  bool erase(std::uint32_t key) {
    if (size_ == 0) return false;
    std::uint32_t i = index_of(key);
    while (slots_[i].key != key) {
      if (slots_[i].key == kEmptyKey) return false;
      i = (i + 1) & mask_;
    }
    std::uint32_t hole = i;
    for (std::uint32_t j = (hole + 1) & mask_; slots_[j].key != kEmptyKey;
         j = (j + 1) & mask_) {
      // Shift j back into the hole unless its home position lies beyond
      // the hole (cyclically) — the standard backward-shift condition.
      const std::uint32_t home = index_of(slots_[j].key);
      const std::uint32_t dist = (j - home) & mask_;
      if (dist >= ((j - hole) & mask_)) {
        slots_[hole] = slots_[j];
        hole = j;
      }
    }
    slots_[hole].key = kEmptyKey;
    slots_[hole].value = V{};
    --size_;
    return true;
  }

  // Visit every (key, value&) in slot-array order — deterministic across
  // runs with the same insertion/erase history. The callback may mutate
  // the value but must not insert or erase.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (Slot& s : slots_)
      if (s.key != kEmptyKey) fn(s.key, s.value);
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& s : slots_)
      if (s.key != kEmptyKey) fn(s.key, s.value);
  }

 private:
  struct Slot {
    std::uint32_t key = kEmptyKey;
    V value{};
  };
  static constexpr std::size_t kMinCapacity = 8;

  std::size_t capacity() const { return slots_.size(); }

  // Fibonacci hashing: golden-ratio multiply spreads consecutive ids
  // (the common NodeId pattern 0,1,2,...) across the table.
  std::uint32_t index_of(std::uint32_t key) const {
    return static_cast<std::uint32_t>(
               (static_cast<std::uint64_t>(key) * 0x9E3779B97F4A7C15ULL) >>
               32) &
           mask_;
  }

  void rehash(std::size_t new_cap) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_cap, Slot{});
    mask_ = static_cast<std::uint32_t>(new_cap - 1);
    size_ = 0;
    for (const Slot& s : old)
      if (s.key != kEmptyKey) insert_or_assign(s.key, s.value);
  }

  std::vector<Slot> slots_;
  std::uint32_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace rrtcp::net
