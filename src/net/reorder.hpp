// Packet-reordering injection.
//
// A ReorderingLink wraps delivery with a random extra delay applied to a
// fraction of packets, so a later-sent packet can overtake an earlier one
// — the network pathology that makes duplicate ACKs an ambiguous loss
// signal (the reason for the 3-dupack threshold, and the situation the
// Lin-Kung scheme optimizes for). Implemented as a LossModel-independent
// decorator: attach to any Link via set_reorder_model().
#pragma once

#include <cstdint>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace rrtcp::net {

class ReorderModel {
 public:
  // probability: fraction of packets delayed; extra_delay: how much later
  // a delayed packet is handed to the destination node.
  ReorderModel(double probability, sim::Time extra_delay, std::uint64_t seed);

  // Extra delivery delay for this packet (zero for most).
  sim::Time delay_for_next_packet();

  std::uint64_t reordered() const { return reordered_; }

 private:
  double probability_;
  sim::Time extra_delay_;
  sim::Rng rng_;
  std::uint64_t reordered_ = 0;
};

}  // namespace rrtcp::net
