#include "net/reorder.hpp"

#include "sim/assert.hpp"

namespace rrtcp::net {

ReorderModel::ReorderModel(double probability, sim::Time extra_delay,
                           std::uint64_t seed)
    : probability_{probability},
      extra_delay_{extra_delay},
      rng_{seed, "reorder"} {
  RRTCP_ASSERT(probability >= 0.0 && probability <= 1.0);
  RRTCP_ASSERT(extra_delay >= sim::Time::zero());
}

sim::Time ReorderModel::delay_for_next_packet() {
  if (probability_ > 0.0 && rng_.bernoulli(probability_)) {
    ++reordered_;
    return extra_delay_;
  }
  return sim::Time::zero();
}

}  // namespace rrtcp::net
