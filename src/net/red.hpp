// Random Early Detection (RED) gateway queue.
//
// Implements Floyd & Jacobson, "Random Early Detection Gateways for
// Congestion Avoidance" (ToN 1993), with the count-based drop spreading of
// the original paper and the idle-period compensation of the ns-2
// implementation. The queue length is measured in packets, as in the
// paper's evaluation (Table 4: buffer 25 pkts, min_th 5, max_th 20,
// max_p 0.02, w_q 0.002).
#pragma once

#include "net/packet_ring.hpp"
#include "net/queue_disc.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace rrtcp::net {

struct RedConfig {
  std::uint64_t buffer_packets = 25;  // hard limit
  double min_th = 5.0;                // packets
  double max_th = 20.0;               // packets
  double max_p = 0.02;                // drop probability at max_th
  double w_q = 0.002;                 // EWMA weight for the average queue
  // "Gentle" RED: between max_th and 2*max_th the drop probability rises
  // linearly from max_p to 1 instead of jumping to 1. Off by default to
  // match the original algorithm used in the paper's era.
  bool gentle = false;
  // ECN marking (RFC 3168): an early "drop" of an ECN-capable packet sets
  // its CE bit and admits it instead. Forced drops (buffer exhausted or
  // avg >= max_th) still drop. Off by default — the paper's RED drops.
  bool ecn = false;
  // Typical transmission time of one packet on the outgoing link; used to
  // age the average queue across idle periods (m = idle / mean_pkt_tx).
  // Time::zero() disables idle compensation.
  sim::Time mean_pkt_tx = sim::Time::zero();
  std::uint64_t seed = 1;  // seed for the drop-decision RNG stream
};

class RedQueue final : public QueueDisc {
 public:
  RedQueue(sim::Simulator& sim, RedConfig cfg);

  RRTCP_HOT bool enqueue(Packet p) override;
  RRTCP_HOT std::optional<Packet> dequeue() override;
  std::size_t len_packets() const override { return q_.size(); }
  std::uint64_t len_bytes() const override { return bytes_; }

  // Current EWMA of the queue length, in packets.
  double avg_queue() const { return avg_; }

  const RedConfig& config() const { return cfg_; }

  std::uint64_t early_drops() const { return early_drops_; }
  std::uint64_t forced_drops() const { return forced_drops_; }
  std::uint64_t ecn_marks() const { return ecn_marks_; }

 private:
  // Updates avg_ for an arrival at the current time.
  void update_average();
  // Probability with which this arrival should be dropped early.
  double drop_probability() const;

  sim::Simulator& sim_;
  RedConfig cfg_;
  sim::Rng rng_;

  PacketRing q_;
  std::uint64_t bytes_ = 0;

  double avg_ = 0.0;
  // Packets admitted since the last early drop while avg in [min,max);
  // -1 encodes "avg below min_th", per the original pseudocode.
  long count_ = -1;
  // Time at which the queue last went idle (valid while empty).
  sim::Time idle_since_ = sim::Time::zero();
  bool idle_ = true;

  std::uint64_t early_drops_ = 0;
  std::uint64_t forced_drops_ = 0;
  std::uint64_t ecn_marks_ = 0;
};

}  // namespace rrtcp::net
