#include "net/link.hpp"

#include "net/node.hpp"
#include "sim/assert.hpp"
#include "sim/log.hpp"

namespace rrtcp::net {

Link::Link(sim::Simulator& sim, LinkConfig cfg,
           std::unique_ptr<QueueDisc> queue)
    : sim_{sim}, cfg_{std::move(cfg)}, queue_{std::move(queue)} {
  RRTCP_ASSERT(cfg_.bandwidth_bps > 0);
  RRTCP_ASSERT(cfg_.prop_delay >= sim::Time::zero());
  RRTCP_ASSERT(queue_ != nullptr);
}

void Link::send(Packet p) {
  if (loss_ && loss_->should_drop(p, sim_.now())) {
    ++loss_drops_;
    RRTCP_TRACE(sim_.now(), cfg_.name.c_str(), "loss-model drop %s",
                p.to_string().c_str());
    return;
  }
  if (!queue_->enqueue(std::move(p))) {
    RRTCP_TRACE(sim_.now(), cfg_.name.c_str(), "queue drop (len=%zu)",
                queue_->len_packets());
    return;
  }
  try_transmit();
}

void Link::try_transmit() {
  if (busy_) return;
  auto next = queue_->dequeue();
  if (!next) return;

  busy_ = true;
  const sim::Time tx = tx_time(next->size_bytes);
  busy_time_ += tx;
  // Deliver after serialization + propagation (+ any reordering delay);
  // free the transmitter after serialization alone.
  Packet pkt = std::move(*next);
  ++pkt.hops;
  const sim::Time jitter =
      reorder_ ? reorder_->delay_for_next_packet() : sim::Time::zero();
  // The forwarding path must stay allocation-free: the rrtcp-smallfn-inline
  // check verifies at every schedule call site that the capture fits the
  // scheduler's inline buffer.
  // Absolute serialization-end computed once for both events. Scheduling
  // deliver *before* release is load-bearing: the insertion-sequence order
  // is part of the pinned legacy-equivalence traces, and the scheduler's
  // same-tick batching (DESIGN.md §11) relies on same-instant schedules
  // arriving in ascending sequence to chain a burst of deliveries behind
  // one heap entry.
  const sim::Time done = sim_.now() + tx;
  if (remote_ != nullptr) {
    // Cut link: the destination node lives in another shard. Hand off at
    // serialization end — the propagation pipe is the lookahead window the
    // conservative scheduler relies on, so the receiving shard sees the
    // packet a full prop_delay before its arrival instant.
    const sim::Time arrival = done + cfg_.prop_delay + jitter;
    auto hand_off = [this, pkt, arrival]() mutable {
      ++delivered_;
      bytes_delivered_ += pkt.size_bytes;
      remote_->push(arrival, std::move(pkt));
    };
    sim_.schedule_at(done, std::move(hand_off));
  } else {
    auto deliver = [this, pkt]() mutable {
      ++delivered_;
      bytes_delivered_ += pkt.size_bytes;
      RRTCP_ASSERT_MSG(dst_ != nullptr, "link has no destination node");
      dst_->receive(std::move(pkt));
    };
    sim_.schedule_at(done + cfg_.prop_delay + jitter, std::move(deliver));
  }
  auto release = [this] {
    busy_ = false;
    try_transmit();
  };
  sim_.schedule_at(done, std::move(release));
}

double Link::utilization(sim::Time now) const {
  if (now <= sim::Time::zero()) return 0.0;
  return busy_time_.to_seconds() / now.to_seconds();
}

}  // namespace rrtcp::net
