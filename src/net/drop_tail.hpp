// Drop-tail (FIFO, finite buffer) queue discipline.
//
// Capacity is expressed in packets, matching the paper's convention ("the
// window size and buffer space at the gateways are measured in number of
// fixed-size packets"). A byte-capacity mode is available for scenarios
// with heterogeneous packet sizes.
#pragma once

#include "net/packet_ring.hpp"
#include "net/queue_disc.hpp"
#include "sim/hot.hpp"

namespace rrtcp::net {

class DropTailQueue final : public QueueDisc {
 public:
  enum class Mode { kPackets, kBytes };

  // capacity: max packets (kPackets) or max bytes (kBytes).
  explicit DropTailQueue(std::uint64_t capacity, Mode mode = Mode::kPackets);

  RRTCP_HOT bool enqueue(Packet p) override;
  RRTCP_HOT std::optional<Packet> dequeue() override;
  std::size_t len_packets() const override { return q_.size(); }
  std::uint64_t len_bytes() const override { return bytes_; }

  std::uint64_t capacity() const { return capacity_; }
  Mode mode() const { return mode_; }
  // Slots the backing PacketRing currently holds — the ring's grow-only
  // high-water mark, exposed so tests can pin when growth happens (and
  // that steady state stops allocating).
  std::size_t ring_capacity() const { return q_.capacity(); }

 private:
  PacketRing q_;
  std::uint64_t bytes_ = 0;
  std::uint64_t capacity_;
  Mode mode_;
};

}  // namespace rrtcp::net
