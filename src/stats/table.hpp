// Plain-text table/series printers for the benchmark harnesses, so every
// bench binary reports its figure/table in the same aligned format.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace rrtcp::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);
  // Convenience: printf-style cell.
  static std::string cell(const char* fmt, ...)
      __attribute__((format(printf, 1, 2)));

  void print(std::FILE* out = stdout) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Prints "# <title>" followed by x y1 y2... columns, gnuplot-ready.
void print_series(const std::string& title,
                  const std::vector<std::string>& column_names,
                  const std::vector<std::vector<double>>& columns,
                  std::FILE* out = stdout);

}  // namespace rrtcp::stats
