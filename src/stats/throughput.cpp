#include "stats/throughput.hpp"

#include <algorithm>

#include "sim/assert.hpp"

namespace rrtcp::stats {

std::uint64_t ThroughputMeter::bytes_acked_at(sim::Time t) const {
  // Binary search for the last sample at or before t.
  auto it = std::upper_bound(
      samples_.begin(), samples_.end(), t,
      [](sim::Time lhs, const Sample& s) { return lhs < s.t; });
  if (it == samples_.begin()) return 0;
  return std::prev(it)->acked;
}

sim::Time ThroughputMeter::time_to_ack(std::uint64_t bytes) const {
  // Zero bytes are trivially acknowledged before the first sample.
  if (bytes == 0) return sim::Time::zero();
  // samples_ is time-ordered with monotone acked values.
  auto it = std::lower_bound(
      samples_.begin(), samples_.end(), bytes,
      [](const Sample& s, std::uint64_t b) { return s.acked < b; });
  return it == samples_.end() ? sim::Time::infinity() : it->t;
}

double ThroughputMeter::throughput_bps(sim::Time t0, sim::Time t1) const {
  RRTCP_ASSERT(t1 > t0);
  const double seconds = (t1 - t0).to_seconds();
  return static_cast<double>(bytes_acked_between(t0, t1)) * 8.0 / seconds;
}

}  // namespace rrtcp::stats
